file(REMOVE_RECURSE
  "CMakeFiles/warm_cache_study.dir/warm_cache_study.cpp.o"
  "CMakeFiles/warm_cache_study.dir/warm_cache_study.cpp.o.d"
  "warm_cache_study"
  "warm_cache_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warm_cache_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
