# Empty compiler generated dependencies file for warm_cache_study.
# This may be replaced when dependencies are built.
