# Empty dependencies file for line_size_study.
# This may be replaced when dependencies are built.
