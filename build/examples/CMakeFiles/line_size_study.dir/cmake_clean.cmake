file(REMOVE_RECURSE
  "CMakeFiles/line_size_study.dir/line_size_study.cpp.o"
  "CMakeFiles/line_size_study.dir/line_size_study.cpp.o.d"
  "line_size_study"
  "line_size_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/line_size_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
