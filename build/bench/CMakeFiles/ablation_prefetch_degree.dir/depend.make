# Empty dependencies file for ablation_prefetch_degree.
# This may be replaced when dependencies are built.
