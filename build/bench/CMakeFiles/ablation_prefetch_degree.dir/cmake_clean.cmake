file(REMOVE_RECURSE
  "CMakeFiles/ablation_prefetch_degree.dir/ablation_prefetch_degree.cc.o"
  "CMakeFiles/ablation_prefetch_degree.dir/ablation_prefetch_degree.cc.o.d"
  "ablation_prefetch_degree"
  "ablation_prefetch_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prefetch_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
