file(REMOVE_RECURSE
  "CMakeFiles/fig13_prefetch.dir/fig13_prefetch.cc.o"
  "CMakeFiles/fig13_prefetch.dir/fig13_prefetch.cc.o.d"
  "fig13_prefetch"
  "fig13_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
