# Empty dependencies file for fig13_prefetch.
# This may be replaced when dependencies are built.
