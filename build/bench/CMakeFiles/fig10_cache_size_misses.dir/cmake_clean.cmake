file(REMOVE_RECURSE
  "CMakeFiles/fig10_cache_size_misses.dir/fig10_cache_size_misses.cc.o"
  "CMakeFiles/fig10_cache_size_misses.dir/fig10_cache_size_misses.cc.o.d"
  "fig10_cache_size_misses"
  "fig10_cache_size_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cache_size_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
