# Empty compiler generated dependencies file for fig10_cache_size_misses.
# This may be replaced when dependencies are built.
