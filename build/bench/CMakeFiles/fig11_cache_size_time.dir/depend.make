# Empty dependencies file for fig11_cache_size_time.
# This may be replaced when dependencies are built.
