# Empty dependencies file for fig8_line_size_misses.
# This may be replaced when dependencies are built.
