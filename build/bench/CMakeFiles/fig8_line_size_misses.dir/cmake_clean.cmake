file(REMOVE_RECURSE
  "CMakeFiles/fig8_line_size_misses.dir/fig8_line_size_misses.cc.o"
  "CMakeFiles/fig8_line_size_misses.dir/fig8_line_size_misses.cc.o.d"
  "fig8_line_size_misses"
  "fig8_line_size_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_line_size_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
