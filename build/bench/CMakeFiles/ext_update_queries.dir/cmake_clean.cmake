file(REMOVE_RECURSE
  "CMakeFiles/ext_update_queries.dir/ext_update_queries.cc.o"
  "CMakeFiles/ext_update_queries.dir/ext_update_queries.cc.o.d"
  "ext_update_queries"
  "ext_update_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_update_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
