# Empty compiler generated dependencies file for ext_update_queries.
# This may be replaced when dependencies are built.
