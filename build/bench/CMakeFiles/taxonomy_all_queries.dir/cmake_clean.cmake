file(REMOVE_RECURSE
  "CMakeFiles/taxonomy_all_queries.dir/taxonomy_all_queries.cc.o"
  "CMakeFiles/taxonomy_all_queries.dir/taxonomy_all_queries.cc.o.d"
  "taxonomy_all_queries"
  "taxonomy_all_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxonomy_all_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
