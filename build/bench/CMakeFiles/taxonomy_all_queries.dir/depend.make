# Empty dependencies file for taxonomy_all_queries.
# This may be replaced when dependencies are built.
