# Empty dependencies file for fig12_inter_query_reuse.
# This may be replaced when dependencies are built.
