file(REMOVE_RECURSE
  "CMakeFiles/fig12_inter_query_reuse.dir/fig12_inter_query_reuse.cc.o"
  "CMakeFiles/fig12_inter_query_reuse.dir/fig12_inter_query_reuse.cc.o.d"
  "fig12_inter_query_reuse"
  "fig12_inter_query_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_inter_query_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
