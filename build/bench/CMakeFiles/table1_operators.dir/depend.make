# Empty dependencies file for table1_operators.
# This may be replaced when dependencies are built.
