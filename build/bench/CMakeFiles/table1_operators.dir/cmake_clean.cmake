file(REMOVE_RECURSE
  "CMakeFiles/table1_operators.dir/table1_operators.cc.o"
  "CMakeFiles/table1_operators.dir/table1_operators.cc.o.d"
  "table1_operators"
  "table1_operators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
