# Empty compiler generated dependencies file for fig9_line_size_time.
# This may be replaced when dependencies are built.
