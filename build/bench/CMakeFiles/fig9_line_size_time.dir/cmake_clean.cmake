file(REMOVE_RECURSE
  "CMakeFiles/fig9_line_size_time.dir/fig9_line_size_time.cc.o"
  "CMakeFiles/fig9_line_size_time.dir/fig9_line_size_time.cc.o.d"
  "fig9_line_size_time"
  "fig9_line_size_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_line_size_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
