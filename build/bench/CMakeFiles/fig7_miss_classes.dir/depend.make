# Empty dependencies file for fig7_miss_classes.
# This may be replaced when dependencies are built.
