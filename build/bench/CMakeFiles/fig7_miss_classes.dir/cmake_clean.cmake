file(REMOVE_RECURSE
  "CMakeFiles/fig7_miss_classes.dir/fig7_miss_classes.cc.o"
  "CMakeFiles/fig7_miss_classes.dir/fig7_miss_classes.cc.o.d"
  "fig7_miss_classes"
  "fig7_miss_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_miss_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
