# Empty compiler generated dependencies file for ext_intra_query.
# This may be replaced when dependencies are built.
