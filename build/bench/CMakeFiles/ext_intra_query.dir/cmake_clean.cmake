file(REMOVE_RECURSE
  "CMakeFiles/ext_intra_query.dir/ext_intra_query.cc.o"
  "CMakeFiles/ext_intra_query.dir/ext_intra_query.cc.o.d"
  "ext_intra_query"
  "ext_intra_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_intra_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
