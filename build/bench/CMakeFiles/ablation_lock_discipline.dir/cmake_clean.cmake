file(REMOVE_RECURSE
  "CMakeFiles/ablation_lock_discipline.dir/ablation_lock_discipline.cc.o"
  "CMakeFiles/ablation_lock_discipline.dir/ablation_lock_discipline.cc.o.d"
  "ablation_lock_discipline"
  "ablation_lock_discipline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lock_discipline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
