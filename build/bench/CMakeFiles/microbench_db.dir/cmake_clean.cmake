file(REMOVE_RECURSE
  "CMakeFiles/microbench_db.dir/microbench_db.cc.o"
  "CMakeFiles/microbench_db.dir/microbench_db.cc.o.d"
  "microbench_db"
  "microbench_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
