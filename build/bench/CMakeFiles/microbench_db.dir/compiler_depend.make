# Empty compiler generated dependencies file for microbench_db.
# This may be replaced when dependencies are built.
