# Empty dependencies file for ext_nested_query.
# This may be replaced when dependencies are built.
