file(REMOVE_RECURSE
  "CMakeFiles/ext_nested_query.dir/ext_nested_query.cc.o"
  "CMakeFiles/ext_nested_query.dir/ext_nested_query.cc.o.d"
  "ext_nested_query"
  "ext_nested_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_nested_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
