file(REMOVE_RECURSE
  "libdss_tpcd.a"
)
