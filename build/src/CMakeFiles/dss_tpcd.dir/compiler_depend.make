# Empty compiler generated dependencies file for dss_tpcd.
# This may be replaced when dependencies are built.
