file(REMOVE_RECURSE
  "CMakeFiles/dss_tpcd.dir/tpcd/dbgen.cc.o"
  "CMakeFiles/dss_tpcd.dir/tpcd/dbgen.cc.o.d"
  "CMakeFiles/dss_tpcd.dir/tpcd/queries.cc.o"
  "CMakeFiles/dss_tpcd.dir/tpcd/queries.cc.o.d"
  "CMakeFiles/dss_tpcd.dir/tpcd/updates.cc.o"
  "CMakeFiles/dss_tpcd.dir/tpcd/updates.cc.o.d"
  "libdss_tpcd.a"
  "libdss_tpcd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dss_tpcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
