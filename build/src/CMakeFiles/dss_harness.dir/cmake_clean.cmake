file(REMOVE_RECURSE
  "CMakeFiles/dss_harness.dir/harness/report.cc.o"
  "CMakeFiles/dss_harness.dir/harness/report.cc.o.d"
  "CMakeFiles/dss_harness.dir/harness/runner.cc.o"
  "CMakeFiles/dss_harness.dir/harness/runner.cc.o.d"
  "CMakeFiles/dss_harness.dir/harness/workload.cc.o"
  "CMakeFiles/dss_harness.dir/harness/workload.cc.o.d"
  "libdss_harness.a"
  "libdss_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dss_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
