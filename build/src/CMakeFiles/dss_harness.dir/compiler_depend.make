# Empty compiler generated dependencies file for dss_harness.
# This may be replaced when dependencies are built.
