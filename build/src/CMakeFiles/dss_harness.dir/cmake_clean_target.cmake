file(REMOVE_RECURSE
  "libdss_harness.a"
)
