file(REMOVE_RECURSE
  "libdss_db.a"
)
