file(REMOVE_RECURSE
  "CMakeFiles/dss_db.dir/db/btree.cc.o"
  "CMakeFiles/dss_db.dir/db/btree.cc.o.d"
  "CMakeFiles/dss_db.dir/db/bufmgr.cc.o"
  "CMakeFiles/dss_db.dir/db/bufmgr.cc.o.d"
  "CMakeFiles/dss_db.dir/db/catalog.cc.o"
  "CMakeFiles/dss_db.dir/db/catalog.cc.o.d"
  "CMakeFiles/dss_db.dir/db/dml.cc.o"
  "CMakeFiles/dss_db.dir/db/dml.cc.o.d"
  "CMakeFiles/dss_db.dir/db/exec.cc.o"
  "CMakeFiles/dss_db.dir/db/exec.cc.o.d"
  "CMakeFiles/dss_db.dir/db/expr.cc.o"
  "CMakeFiles/dss_db.dir/db/expr.cc.o.d"
  "CMakeFiles/dss_db.dir/db/lockmgr.cc.o"
  "CMakeFiles/dss_db.dir/db/lockmgr.cc.o.d"
  "CMakeFiles/dss_db.dir/db/mem.cc.o"
  "CMakeFiles/dss_db.dir/db/mem.cc.o.d"
  "CMakeFiles/dss_db.dir/db/page.cc.o"
  "CMakeFiles/dss_db.dir/db/page.cc.o.d"
  "CMakeFiles/dss_db.dir/db/schema.cc.o"
  "CMakeFiles/dss_db.dir/db/schema.cc.o.d"
  "libdss_db.a"
  "libdss_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dss_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
