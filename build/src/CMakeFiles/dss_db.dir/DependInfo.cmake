
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/btree.cc" "src/CMakeFiles/dss_db.dir/db/btree.cc.o" "gcc" "src/CMakeFiles/dss_db.dir/db/btree.cc.o.d"
  "/root/repo/src/db/bufmgr.cc" "src/CMakeFiles/dss_db.dir/db/bufmgr.cc.o" "gcc" "src/CMakeFiles/dss_db.dir/db/bufmgr.cc.o.d"
  "/root/repo/src/db/catalog.cc" "src/CMakeFiles/dss_db.dir/db/catalog.cc.o" "gcc" "src/CMakeFiles/dss_db.dir/db/catalog.cc.o.d"
  "/root/repo/src/db/dml.cc" "src/CMakeFiles/dss_db.dir/db/dml.cc.o" "gcc" "src/CMakeFiles/dss_db.dir/db/dml.cc.o.d"
  "/root/repo/src/db/exec.cc" "src/CMakeFiles/dss_db.dir/db/exec.cc.o" "gcc" "src/CMakeFiles/dss_db.dir/db/exec.cc.o.d"
  "/root/repo/src/db/expr.cc" "src/CMakeFiles/dss_db.dir/db/expr.cc.o" "gcc" "src/CMakeFiles/dss_db.dir/db/expr.cc.o.d"
  "/root/repo/src/db/lockmgr.cc" "src/CMakeFiles/dss_db.dir/db/lockmgr.cc.o" "gcc" "src/CMakeFiles/dss_db.dir/db/lockmgr.cc.o.d"
  "/root/repo/src/db/mem.cc" "src/CMakeFiles/dss_db.dir/db/mem.cc.o" "gcc" "src/CMakeFiles/dss_db.dir/db/mem.cc.o.d"
  "/root/repo/src/db/page.cc" "src/CMakeFiles/dss_db.dir/db/page.cc.o" "gcc" "src/CMakeFiles/dss_db.dir/db/page.cc.o.d"
  "/root/repo/src/db/schema.cc" "src/CMakeFiles/dss_db.dir/db/schema.cc.o" "gcc" "src/CMakeFiles/dss_db.dir/db/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dss_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
