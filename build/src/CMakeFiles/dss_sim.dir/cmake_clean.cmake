file(REMOVE_RECURSE
  "CMakeFiles/dss_sim.dir/sim/arena.cc.o"
  "CMakeFiles/dss_sim.dir/sim/arena.cc.o.d"
  "CMakeFiles/dss_sim.dir/sim/cache.cc.o"
  "CMakeFiles/dss_sim.dir/sim/cache.cc.o.d"
  "CMakeFiles/dss_sim.dir/sim/directory.cc.o"
  "CMakeFiles/dss_sim.dir/sim/directory.cc.o.d"
  "CMakeFiles/dss_sim.dir/sim/machine.cc.o"
  "CMakeFiles/dss_sim.dir/sim/machine.cc.o.d"
  "CMakeFiles/dss_sim.dir/sim/spinlock_model.cc.o"
  "CMakeFiles/dss_sim.dir/sim/spinlock_model.cc.o.d"
  "CMakeFiles/dss_sim.dir/sim/stats.cc.o"
  "CMakeFiles/dss_sim.dir/sim/stats.cc.o.d"
  "CMakeFiles/dss_sim.dir/sim/trace.cc.o"
  "CMakeFiles/dss_sim.dir/sim/trace.cc.o.d"
  "CMakeFiles/dss_sim.dir/sim/trace_io.cc.o"
  "CMakeFiles/dss_sim.dir/sim/trace_io.cc.o.d"
  "CMakeFiles/dss_sim.dir/sim/write_buffer.cc.o"
  "CMakeFiles/dss_sim.dir/sim/write_buffer.cc.o.d"
  "libdss_sim.a"
  "libdss_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dss_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
