# Empty dependencies file for dss_sim.
# This may be replaced when dependencies are built.
