
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/arena.cc" "src/CMakeFiles/dss_sim.dir/sim/arena.cc.o" "gcc" "src/CMakeFiles/dss_sim.dir/sim/arena.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/CMakeFiles/dss_sim.dir/sim/cache.cc.o" "gcc" "src/CMakeFiles/dss_sim.dir/sim/cache.cc.o.d"
  "/root/repo/src/sim/directory.cc" "src/CMakeFiles/dss_sim.dir/sim/directory.cc.o" "gcc" "src/CMakeFiles/dss_sim.dir/sim/directory.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/CMakeFiles/dss_sim.dir/sim/machine.cc.o" "gcc" "src/CMakeFiles/dss_sim.dir/sim/machine.cc.o.d"
  "/root/repo/src/sim/spinlock_model.cc" "src/CMakeFiles/dss_sim.dir/sim/spinlock_model.cc.o" "gcc" "src/CMakeFiles/dss_sim.dir/sim/spinlock_model.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/dss_sim.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/dss_sim.dir/sim/stats.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/dss_sim.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/dss_sim.dir/sim/trace.cc.o.d"
  "/root/repo/src/sim/trace_io.cc" "src/CMakeFiles/dss_sim.dir/sim/trace_io.cc.o" "gcc" "src/CMakeFiles/dss_sim.dir/sim/trace_io.cc.o.d"
  "/root/repo/src/sim/write_buffer.cc" "src/CMakeFiles/dss_sim.dir/sim/write_buffer.cc.o" "gcc" "src/CMakeFiles/dss_sim.dir/sim/write_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
