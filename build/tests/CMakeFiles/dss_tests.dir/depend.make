# Empty dependencies file for dss_tests.
# This may be replaced when dependencies are built.
