
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_arena.cc" "tests/CMakeFiles/dss_tests.dir/test_arena.cc.o" "gcc" "tests/CMakeFiles/dss_tests.dir/test_arena.cc.o.d"
  "/root/repo/tests/test_btree.cc" "tests/CMakeFiles/dss_tests.dir/test_btree.cc.o" "gcc" "tests/CMakeFiles/dss_tests.dir/test_btree.cc.o.d"
  "/root/repo/tests/test_bufmgr_lockmgr.cc" "tests/CMakeFiles/dss_tests.dir/test_bufmgr_lockmgr.cc.o" "gcc" "tests/CMakeFiles/dss_tests.dir/test_bufmgr_lockmgr.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/dss_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/dss_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_coherence.cc" "tests/CMakeFiles/dss_tests.dir/test_coherence.cc.o" "gcc" "tests/CMakeFiles/dss_tests.dir/test_coherence.cc.o.d"
  "/root/repo/tests/test_directory.cc" "tests/CMakeFiles/dss_tests.dir/test_directory.cc.o" "gcc" "tests/CMakeFiles/dss_tests.dir/test_directory.cc.o.d"
  "/root/repo/tests/test_dml.cc" "tests/CMakeFiles/dss_tests.dir/test_dml.cc.o" "gcc" "tests/CMakeFiles/dss_tests.dir/test_dml.cc.o.d"
  "/root/repo/tests/test_edge_cases.cc" "tests/CMakeFiles/dss_tests.dir/test_edge_cases.cc.o" "gcc" "tests/CMakeFiles/dss_tests.dir/test_edge_cases.cc.o.d"
  "/root/repo/tests/test_exec.cc" "tests/CMakeFiles/dss_tests.dir/test_exec.cc.o" "gcc" "tests/CMakeFiles/dss_tests.dir/test_exec.cc.o.d"
  "/root/repo/tests/test_expr.cc" "tests/CMakeFiles/dss_tests.dir/test_expr.cc.o" "gcc" "tests/CMakeFiles/dss_tests.dir/test_expr.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/dss_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/dss_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_harness.cc" "tests/CMakeFiles/dss_tests.dir/test_harness.cc.o" "gcc" "tests/CMakeFiles/dss_tests.dir/test_harness.cc.o.d"
  "/root/repo/tests/test_invariants.cc" "tests/CMakeFiles/dss_tests.dir/test_invariants.cc.o" "gcc" "tests/CMakeFiles/dss_tests.dir/test_invariants.cc.o.d"
  "/root/repo/tests/test_machine.cc" "tests/CMakeFiles/dss_tests.dir/test_machine.cc.o" "gcc" "tests/CMakeFiles/dss_tests.dir/test_machine.cc.o.d"
  "/root/repo/tests/test_mem_page.cc" "tests/CMakeFiles/dss_tests.dir/test_mem_page.cc.o" "gcc" "tests/CMakeFiles/dss_tests.dir/test_mem_page.cc.o.d"
  "/root/repo/tests/test_nested.cc" "tests/CMakeFiles/dss_tests.dir/test_nested.cc.o" "gcc" "tests/CMakeFiles/dss_tests.dir/test_nested.cc.o.d"
  "/root/repo/tests/test_paper_results.cc" "tests/CMakeFiles/dss_tests.dir/test_paper_results.cc.o" "gcc" "tests/CMakeFiles/dss_tests.dir/test_paper_results.cc.o.d"
  "/root/repo/tests/test_query_reference.cc" "tests/CMakeFiles/dss_tests.dir/test_query_reference.cc.o" "gcc" "tests/CMakeFiles/dss_tests.dir/test_query_reference.cc.o.d"
  "/root/repo/tests/test_schema.cc" "tests/CMakeFiles/dss_tests.dir/test_schema.cc.o" "gcc" "tests/CMakeFiles/dss_tests.dir/test_schema.cc.o.d"
  "/root/repo/tests/test_smoke.cc" "tests/CMakeFiles/dss_tests.dir/test_smoke.cc.o" "gcc" "tests/CMakeFiles/dss_tests.dir/test_smoke.cc.o.d"
  "/root/repo/tests/test_spinlock.cc" "tests/CMakeFiles/dss_tests.dir/test_spinlock.cc.o" "gcc" "tests/CMakeFiles/dss_tests.dir/test_spinlock.cc.o.d"
  "/root/repo/tests/test_tpcd.cc" "tests/CMakeFiles/dss_tests.dir/test_tpcd.cc.o" "gcc" "tests/CMakeFiles/dss_tests.dir/test_tpcd.cc.o.d"
  "/root/repo/tests/test_trace_io.cc" "tests/CMakeFiles/dss_tests.dir/test_trace_io.cc.o" "gcc" "tests/CMakeFiles/dss_tests.dir/test_trace_io.cc.o.d"
  "/root/repo/tests/test_trace_stats.cc" "tests/CMakeFiles/dss_tests.dir/test_trace_stats.cc.o" "gcc" "tests/CMakeFiles/dss_tests.dir/test_trace_stats.cc.o.d"
  "/root/repo/tests/test_write_buffer.cc" "tests/CMakeFiles/dss_tests.dir/test_write_buffer.cc.o" "gcc" "tests/CMakeFiles/dss_tests.dir/test_write_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dss_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dss_tpcd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dss_db.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dss_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
