#!/usr/bin/env bash
# Line coverage of the query-stream scheduler (src/sched/) under its test
# suite, with a hard floor.
#
# Usage: scripts/sched_coverage.sh [--min <pct>] [build-dir]
#        (defaults: --min 90, build-cov/)
#
# Builds with -DSIM_COVERAGE=ON (gcov instrumentation; the container
# ships gcov, not gcovr, so the report is assembled from raw gcov
# output), runs the sched unit/property/fuzz/golden tests, then reports
# per-file line coverage for every src/sched/*.cc and fails if the
# aggregate is below the floor.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
min=90
build=""

while [[ $# -gt 0 ]]; do
    case "$1" in
        --min)
            min="$2"
            shift 2
            ;;
        -*)
            echo "sched_coverage.sh: unknown option '$1'" >&2
            exit 2
            ;;
        *)
            build="$1"
            shift
            ;;
    esac
done
build="${build:-$repo/build-cov}"

cmake -B "$build" -S "$repo" -DSIM_COVERAGE=ON
cmake --build "$build" -j"$(nproc)" --target dss_tests

# Stale counters from earlier runs would dilute the report.
find "$build" -name '*.gcda' -delete

filter='Percentile.*:LatencySummary.*:StreamModel.*:TraceCacheUnit.*'
filter+=':SchedSim.*:StreamFuzz.*:GoldenStats.Stream*'
filter+=':ShedPolicyModel.*:ResilienceConfigModel.*:ShedVictimModel.*'
filter+=':CircuitBreakerModel.*:OutageTableModel.*:ResilienceSim.*'
"$build/tests/dss_tests" --gtest_filter="$filter"

# gcov writes per-source reports next to the object files; the summary
# lines ("Lines executed:P% of N") are parsed per sched source.
objdir="$build/src/CMakeFiles/dss_sched.dir/sched"
if [[ ! -d "$objdir" ]]; then
    echo "sched_coverage.sh: no coverage objects under $objdir" >&2
    exit 1
fi

cd "$objdir"
report="$(gcov -n -s "$repo/src" ./*.gcda 2>/dev/null)"

python3 - "$min" <<EOF
import re
import sys

min_pct = float(sys.argv[1])
report = """$report"""

covered = total = 0
rows = []
f = None
for line in report.splitlines():
    m = re.match(r"File '(.*)'", line)
    if m:
        f = m.group(1)
        continue
    m = re.match(r"Lines executed:([0-9.]+)% of (\d+)", line)
    if m and f is not None:
        pct, n = float(m.group(1)), int(m.group(2))
        if "sched/" in f:
            rows.append((f, pct, n))
            covered += round(pct * n / 100.0)
            total += n
        f = None

if not rows:
    sys.stderr.write("sched_coverage.sh: no sched/ files in gcov output\n")
    sys.exit(1)

for f, pct, n in sorted(rows):
    print("  %-28s %6.1f%% of %d lines" % (f.split("src/")[-1], pct, n))
agg = 100.0 * covered / total
print("sched aggregate: %.1f%% of %d lines (floor %.0f%%)"
      % (agg, total, min_pct))
if agg < min_pct:
    sys.stderr.write("sched_coverage.sh: coverage below floor\n")
    sys.exit(1)
EOF
echo "sched_coverage.sh: OK"
