#!/usr/bin/env python3
"""Determinism lint for the simulator core.

The repo's headline guarantee is bit-identical simulation output for a
given input — across repeated runs, engines and host thread counts. The
classic ways C++ code silently breaks that guarantee:

  * wall-clock or libc randomness: rand()/srand()/time(),
    std::random_device (seeded mt19937 with a fixed seed is fine — the
    fuzz suites depend on it);
  * iterating a std::unordered_map/unordered_set and letting the
    iteration order reach anything observable (stats, JSON, event
    order). libstdc++ hashes pointers and sizes; the order can change
    between builds, ASLR seeds and library versions.

This script scans src/sim/ and src/sched/ (the deterministic core; the
DB layer and benches sit above the guarantee) and fails on either
pattern. Findings are suppressed by:

  * an inline annotation on the offending line or the line above:
        // det-lint: allow(<why this is deterministic>)
  * the built-in allowlist below, for cases where the justification is
    structural (e.g. the iteration feeds a sort before anything escapes).

Comments and string literals are stripped before matching, so prose
about "hold time (cycles)" never trips the time() rule.

Exit codes: 0 clean, 1 findings, 2 usage error.
"""

import re
import sys
from pathlib import Path

SCAN_DIRS = ("src/sim", "src/sched")
SUFFIXES = {".hh", ".cc"}

# (file-basename, identifier) -> justification. Keep justifications
# current: each names the sort/ordering that makes the iteration safe.
ALLOWLIST = {
    ("spinlock_model.cc", "locks_"):
        "snapshot() copies into a vector and sorts by lock word before "
        "anything observes the order",
}

ALLOW_RE = re.compile(r"det-lint:\s*allow\(([^)]*)\)")

# Banned calls. \b keeps retireTime( / lastRetire( etc. out.
BANNED_CALLS = [
    (re.compile(r"\brand\s*\("), "rand(): unseeded libc randomness"),
    (re.compile(r"\bsrand\s*\("), "srand(): process-global RNG seeding"),
    (re.compile(r"\btime\s*\("), "time(): wall-clock input"),
    (re.compile(r"\bstd::random_device\b"),
     "std::random_device: hardware entropy"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday(): wall-clock"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime(): wall-clock"),
    (re.compile(r"\bsteady_clock\b|\bsystem_clock\b|\bhigh_resolution_clock\b"),
     "std::chrono clock: wall-clock input"),
]

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set)\s*<[^;{}]*>\s*(\w+)\s*[;{=]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*(?:this->)?(\w+)\s*\)")


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure so finding line numbers stay exact."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                mode = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif mode == "line":
            if c == "\n":
                mode = None
                out.append(c)
            else:
                out.append(" ")
            i += 1
            continue
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
            i += 1
            continue
        else:  # inside a literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == mode:
                mode = None
            out.append(c if c in (mode, "\n", "\"", "'") else " ")
        i += 1
    return "".join(out)


def lint_file(path, repo):
    raw_lines = path.read_text().splitlines()
    code = strip_comments_and_strings(path.read_text()).splitlines()
    rel = path.relative_to(repo)

    def allowed(lineno):
        for ln in (lineno, lineno - 1):
            if 1 <= ln <= len(raw_lines) and ALLOW_RE.search(
                    raw_lines[ln - 1]):
                return True
        return False

    findings = []
    unordered_names = set()
    for line in code:
        m = UNORDERED_DECL_RE.search(line)
        if m:
            unordered_names.add(m.group(1))

    for lineno, line in enumerate(code, 1):
        for pat, why in BANNED_CALLS:
            if pat.search(line) and not allowed(lineno):
                findings.append((lineno, why, raw_lines[lineno - 1].strip()))
        m = RANGE_FOR_RE.search(line)
        if m and m.group(1) in unordered_names:
            ident = m.group(1)
            if (path.name, ident) in ALLOWLIST or allowed(lineno):
                continue
            findings.append((
                lineno,
                "range-for over unordered container '%s': iteration "
                "order is not deterministic" % ident,
                raw_lines[lineno - 1].strip()))
    return [(rel, ln, why, src) for ln, why, src in findings]


def main(argv):
    repo = Path(argv[1]) if len(argv) > 1 else Path(
        __file__).resolve().parent.parent
    if not (repo / "src").is_dir():
        sys.stderr.write("determinism_lint: no src/ under %s\n" % repo)
        return 2

    findings = []
    scanned = 0
    for d in SCAN_DIRS:
        for path in sorted((repo / d).rglob("*")):
            if path.suffix in SUFFIXES:
                scanned += 1
                findings.extend(lint_file(path, repo))

    for rel, ln, why, src in findings:
        sys.stderr.write("%s:%d: %s\n    %s\n" % (rel, ln, why, src))
    if findings:
        sys.stderr.write(
            "determinism_lint: %d finding(s) in %d files; annotate "
            "deliberate uses with  // det-lint: allow(<reason>)\n"
            % (len(findings), scanned))
        return 1
    print("determinism_lint: %d files clean" % scanned)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
