#!/usr/bin/env bash
# Tier-1 check: configure, build, and run the full test suite.
#
# Usage: scripts/check.sh [--sanitize=thread|address|undefined] [--chaos]
#                         [--placement] [build-dir]
#
# --sanitize builds into a separate build directory (build-tsan/,
# build-asan/ or build-ubsan/) with -DSIM_SANITIZE set and runs only the
# engine and coherence tests there — the interleaving-heavy subset a
# sanitizer can actually judge — so the instrumented build never
# pollutes the normal one and stays fast enough for routine use.
#
# --chaos runs the robustness gauntlet: TSan and ASan builds over the
# fault-injection, invariant-checker and engine-stress suites, plus the
# chaos_fault_sweep bench at tiny scale (nonzero fault rates, checker
# on, exit 1 on any violation) and the placement-policy sweep under the
# checker.
#
# --placement runs the NUMA placement checks: the placement unit tests,
# the 4-policy x Q3/Q6/Q12 sweep under the invariant checker, and
# chaos_fault_sweep under interleave vs first-touch with the same fault
# seed — the injected fault/retry schedule must be byte-identical
# (FaultPlan keys on trace positions, never on page homes).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
sanitize=""
chaos=0
placement=0
build=""

for arg in "$@"; do
    case "$arg" in
        --sanitize=thread|--sanitize=address|--sanitize=undefined)
            sanitize="${arg#--sanitize=}"
            ;;
        --sanitize*)
            echo "check.sh: unknown sanitizer in '$arg'" \
                 "(thread, address, undefined)" >&2
            exit 2
            ;;
        --chaos)
            chaos=1
            ;;
        --placement)
            placement=1
            ;;
        -*)
            echo "check.sh: unknown option '$arg'" >&2
            exit 2
            ;;
        *)
            build="$arg"
            ;;
    esac
done

short_of() {
    case "$1" in
        thread) echo tsan ;;
        address) echo asan ;;
        undefined) echo ubsan ;;
    esac
}

if [[ "$chaos" -eq 1 ]]; then
    # Robustness gauntlet: the fault/checker/guard suites plus the
    # engine-stress interleavings, under both TSan and ASan, then the
    # chaos sweep bench end to end (its exit code is the verdict).
    filter='FaultDeterminism.*:FaultInjection.*:GracefulFailure.*'
    filter+=':CheckerCorruption.*:CheckerClean.*:Backoff.*:RetryOnAbort.*'
    filter+=':GuardedMain.*:EngineStress.*:EngineDifferential.*'
    for san in thread address; do
        dir="$repo/build-$(short_of "$san")"
        cmake -B "$dir" -S "$repo" -DSIM_SANITIZE="$san"
        cmake --build "$dir" -j"$(nproc)" \
            --target dss_tests chaos_fault_sweep
        "$dir/tests/dss_tests" --gtest_filter="$filter"
        "$dir/bench/chaos_fault_sweep" --scale tiny
        "$dir/bench/ablation_placement" --scale tiny --check
    done
    echo "check.sh: chaos gauntlet passed"
elif [[ "$placement" -eq 1 ]]; then
    build="${build:-$repo/build}"
    cmake -B "$build" -S "$repo"
    cmake --build "$build" -j"$(nproc)" \
        --target dss_tests ablation_placement chaos_fault_sweep
    "$build/tests/dss_tests" --gtest_filter='Placement*.*'

    # The 4-policy x Q3/Q6/Q12 sweep under the coherence invariant
    # checker: every policy must finish with zero violations.
    "$build/bench/ablation_placement" --scale tiny --check

    # Fault schedules must be placement-invariant: the FaultPlan keys on
    # per-processor trace positions, never on page homes, so moving every
    # shared page (first-touch vs interleave) must leave the injected
    # fault and retry counts byte-identical at the same seed.
    sched_of() {
        "$build/bench/chaos_fault_sweep" --scale tiny --fault-seed 7 \
            --placement "$1" |
            awk 'NF >= 7 && $2 ~ /^0\./ { print $1, $2, $3, $4 }'
    }
    a="$(sched_of interleave)"
    b="$(sched_of first-touch)"
    if [[ -z "$a" ]]; then
        echo "check.sh: no fault-schedule rows extracted from" \
             "chaos_fault_sweep output" >&2
        exit 1
    fi
    if [[ "$a" != "$b" ]]; then
        echo "check.sh: fault schedule moved with the placement policy" >&2
        diff <(echo "$a") <(echo "$b") >&2 || true
        exit 1
    fi
    echo "check.sh: placement checks passed (fault schedule is" \
         "placement-invariant)"
elif [[ -n "$sanitize" ]]; then
    build="${build:-$repo/build-$(short_of "$sanitize")}"
    cmake -B "$build" -S "$repo" -DSIM_SANITIZE="$sanitize"
    cmake --build "$build" -j"$(nproc)" --target dss_tests
    "$build/tests/dss_tests" \
        --gtest_filter='EngineStress.*:EngineDifferential.*:Coherence*.*:Spinlock*.*'
else
    build="${build:-$repo/build}"
    cmake -B "$build" -S "$repo"
    cmake --build "$build" -j"$(nproc)"
    ctest --test-dir "$build" --output-on-failure -j"$(nproc)"
fi
