#!/usr/bin/env bash
# Tier-1 check: configure, build, and run the full test suite.
#
# Usage: scripts/check.sh [--sanitize=thread|address|undefined] [--chaos]
#                         [build-dir]
#
# --sanitize builds into a separate build directory (build-tsan/,
# build-asan/ or build-ubsan/) with -DSIM_SANITIZE set and runs only the
# engine and coherence tests there — the interleaving-heavy subset a
# sanitizer can actually judge — so the instrumented build never
# pollutes the normal one and stays fast enough for routine use.
#
# --chaos runs the robustness gauntlet: TSan and ASan builds over the
# fault-injection, invariant-checker and engine-stress suites, plus the
# chaos_fault_sweep bench at tiny scale (nonzero fault rates, checker
# on, exit 1 on any violation).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
sanitize=""
chaos=0
build=""

for arg in "$@"; do
    case "$arg" in
        --sanitize=thread|--sanitize=address|--sanitize=undefined)
            sanitize="${arg#--sanitize=}"
            ;;
        --sanitize*)
            echo "check.sh: unknown sanitizer in '$arg'" \
                 "(thread, address, undefined)" >&2
            exit 2
            ;;
        --chaos)
            chaos=1
            ;;
        -*)
            echo "check.sh: unknown option '$arg'" >&2
            exit 2
            ;;
        *)
            build="$arg"
            ;;
    esac
done

short_of() {
    case "$1" in
        thread) echo tsan ;;
        address) echo asan ;;
        undefined) echo ubsan ;;
    esac
}

if [[ "$chaos" -eq 1 ]]; then
    # Robustness gauntlet: the fault/checker/guard suites plus the
    # engine-stress interleavings, under both TSan and ASan, then the
    # chaos sweep bench end to end (its exit code is the verdict).
    filter='FaultDeterminism.*:FaultInjection.*:GracefulFailure.*'
    filter+=':CheckerCorruption.*:CheckerClean.*:Backoff.*:RetryOnAbort.*'
    filter+=':GuardedMain.*:EngineStress.*:EngineDifferential.*'
    for san in thread address; do
        dir="$repo/build-$(short_of "$san")"
        cmake -B "$dir" -S "$repo" -DSIM_SANITIZE="$san"
        cmake --build "$dir" -j"$(nproc)" \
            --target dss_tests chaos_fault_sweep
        "$dir/tests/dss_tests" --gtest_filter="$filter"
        "$dir/bench/chaos_fault_sweep" --scale tiny
    done
    echo "check.sh: chaos gauntlet passed"
elif [[ -n "$sanitize" ]]; then
    build="${build:-$repo/build-$(short_of "$sanitize")}"
    cmake -B "$build" -S "$repo" -DSIM_SANITIZE="$sanitize"
    cmake --build "$build" -j"$(nproc)" --target dss_tests
    "$build/tests/dss_tests" \
        --gtest_filter='EngineStress.*:EngineDifferential.*:Coherence*.*:Spinlock*.*'
else
    build="${build:-$repo/build}"
    cmake -B "$build" -S "$repo"
    cmake --build "$build" -j"$(nproc)"
    ctest --test-dir "$build" --output-on-failure -j"$(nproc)"
fi
