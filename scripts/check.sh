#!/usr/bin/env bash
# Tier-1 check: configure, build, and run the full test suite.
# Usage: scripts/check.sh [build-dir]   (default: build/)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

cmake -B "$build" -S "$repo"
cmake --build "$build" -j"$(nproc)"
ctest --test-dir "$build" --output-on-failure -j"$(nproc)"
