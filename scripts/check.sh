#!/usr/bin/env bash
# Tier-1 check: configure, build, and run the full test suite.
#
# Usage: scripts/check.sh [--sanitize=thread|address|undefined] [--chaos]
#                         [--placement] [--memprof] [--stream]
#                         [--resilience] [--machine] [--verify] [--lint]
#                         [build-dir]
#
# --sanitize builds into a separate build directory (build-tsan/,
# build-asan/ or build-ubsan/) with -DSIM_SANITIZE set and runs only the
# engine and coherence tests there — the interleaving-heavy subset a
# sanitizer can actually judge — so the instrumented build never
# pollutes the normal one and stays fast enough for routine use.
#
# --chaos runs the robustness gauntlet: TSan and ASan builds over the
# fault-injection, invariant-checker and engine-stress suites, plus the
# chaos_fault_sweep bench at tiny scale (nonzero fault rates, checker
# on, exit 1 on any violation) and the placement-policy sweep under the
# checker.
#
# --placement runs the NUMA placement checks: the placement unit tests,
# the 4-policy x Q3/Q6/Q12 sweep under the invariant checker, and
# chaos_fault_sweep under interleave vs first-touch with the same fault
# seed — the injected fault/retry schedule must be byte-identical
# (FaultPlan keys on trace positions, never on page homes).
#
# --memprof runs the line-level memory-profiler checks: the memprof unit
# tests, report_memprof over Q3/Q6/Q12 at tiny scale, JSON schema
# validation of the profile block, the per-processor
# cohe == cohe.true + cohe.false counter invariant, and bit-identity of
# the profile across the sequential and parallel engines.
#
# --stream runs the query-stream scheduler checks: the sched unit,
# property, fuzz and golden tests, then throughput_stream at tiny scale
# under both engines with JSON output, validating the stream report
# schema and asserting the whole sweep (points, summaries, registry
# snapshots) is bit-identical between --engine seq and --engine par.
# The chaos gauntlet also runs these under each sanitizer.
#
# --resilience runs the stream-resilience checks: the resilience unit,
# breaker, outage-table, scheduler and golden tests, then the
# resilience_sweep bench at tiny scale with JSON output, validating the
# SLO accounting schema, outcome conservation at every swept point,
# engine bit-identity, and breaker trip + recovery in the failure-window
# scenario. The chaos gauntlet also runs these under each sanitizer.
#
# --machine runs the machine-spec checks: the hierarchy/spec unit tests,
# `--machine list` preset discovery, byte-identity of the default report
# against an explicit `--machine paper1997` (the spec layer must be
# invisible to the goldens), the modern three-level preset over
# Q3/Q6/Q12 under the invariant checker with per-level counter
# reconciliation, and a machine-spec *file* (written on the spot) driving
# a bench end to end. The chaos gauntlet also runs these under each
# sanitizer.
#
# --verify runs the explicit-state protocol model checker
# (bench/verify_protocol, src/verify/): the canonicalization/symmetry
# and mutant-soundness unit tests, then exhaustive 2-proc x 2-line
# searches on both machine presets (paper1997 and modern) that must find
# zero invariant violations, a mutant sweep in which the checker must
# catch all four injected protocol bugs, and a bit-identity check of the
# JSON report across repeated runs. The chaos gauntlet runs these too.
#
# --lint runs the static gates: scripts/determinism_lint.py over the
# deterministic core (src/sim/, src/sched/) and, when clang-tidy is
# installed, clang-tidy with the repo .clang-tidy config (warnings are
# errors) over src/ using the build tree's compile_commands.json. A
# missing clang-tidy binary skips that half with a notice — the
# determinism lint always runs. The chaos gauntlet runs these too.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
sanitize=""
chaos=0
placement=0
memprof=0
stream=0
resilience=0
machine=0
verify=0
lint=0
build=""

for arg in "$@"; do
    case "$arg" in
        --sanitize=thread|--sanitize=address|--sanitize=undefined)
            sanitize="${arg#--sanitize=}"
            ;;
        --sanitize*)
            echo "check.sh: unknown sanitizer in '$arg'" \
                 "(thread, address, undefined)" >&2
            exit 2
            ;;
        --chaos)
            chaos=1
            ;;
        --placement)
            placement=1
            ;;
        --memprof)
            memprof=1
            ;;
        --stream)
            stream=1
            ;;
        --resilience)
            resilience=1
            ;;
        --machine)
            machine=1
            ;;
        --verify)
            verify=1
            ;;
        --lint)
            lint=1
            ;;
        -*)
            echo "check.sh: unknown option '$arg'" >&2
            exit 2
            ;;
        *)
            build="$arg"
            ;;
    esac
done

short_of() {
    case "$1" in
        thread) echo tsan ;;
        address) echo asan ;;
        undefined) echo ubsan ;;
    esac
}

# Query-stream scheduler checks against an existing build dir: the sched
# unit/property/fuzz/golden tests, then the throughput_stream bench on
# both engines, validating the JSON schema, the latency algebra of every
# record, and engine bit-identity of the full sweep.
stream_checks() {
    local dir="$1"
    local filter='Percentile.*:LatencySummary.*:StreamModel.*'
    filter+=':TraceCacheUnit.*:SchedSim.*:StreamFuzz.*:GoldenStats.Stream*'
    "$dir/tests/dss_tests" --gtest_filter="$filter"

    local seq_json="$dir/stream_check_seq.json"
    local par_json="$dir/stream_check_par.json"
    "$dir/bench/throughput_stream" --scale tiny --stream 8 \
        --json "$seq_json" > /dev/null
    "$dir/bench/throughput_stream" --scale tiny --stream 8 --engine par \
        --json "$par_json" > /dev/null

    python3 - "$seq_json" "$par_json" <<'PYSTREAM'
import json, sys

seq = json.load(open(sys.argv[1]))
par = json.load(open(sys.argv[2]))

def fail(msg):
    sys.stderr.write("check.sh: stream: %s\n" % msg)
    sys.exit(1)

points = seq.get("points")
if not isinstance(points, list) or not points:
    fail("no stream points in %s" % sys.argv[1])
for pt in points:
    for key in ("label", "nprocs", "config", "summary", "cache",
                "records", "registry"):
        if key not in pt:
            fail("point %r lacks '%s'" % (pt.get("label"), key))
    summ = pt["summary"]
    for key in ("instances", "makespan", "throughput_per_mcycle",
                "latency", "wait", "service", "by_query"):
        if key not in summ:
            fail("%s summary lacks '%s'" % (pt["label"], key))
    for dist in ("latency", "wait", "service"):
        for key in ("count", "mean", "p50", "p95", "p99", "max"):
            if key not in summ[dist]:
                fail("%s %s lacks '%s'" % (pt["label"], dist, key))
    if summ["instances"] != len(pt["records"]):
        fail("%s record count != summary instances" % pt["label"])
    for rec in pt["records"]:
        for key in ("id", "query", "param_seed", "proc", "arrival",
                    "start", "complete", "service", "wait", "latency",
                    "trace_hash"):
            if key not in rec:
                fail("%s record lacks '%s'" % (pt["label"], key))
        if rec["complete"] != rec["start"] + rec["service"]:
            fail("%s: complete != start + service" % pt["label"])
        if rec["latency"] != rec["complete"] - rec["arrival"]:
            fail("%s: latency != complete - arrival" % pt["label"])
    reg = pt["registry"]
    if reg.get("sched.completed") != summ["instances"]:
        fail("%s: sched.completed counter mismatch" % pt["label"])
    cache = pt["cache"]
    if cache["enabled"] and cache["hits"] + cache["misses"] == 0:
        fail("%s: enabled cache never consulted" % pt["label"])

cv = seq.get("cache_validation")
if not cv or not cv.get("bit_identical"):
    fail("cache validation block missing or not bit-identical")

# The whole sweep must be engine-invariant, bit for bit.
if seq["points"] != par["points"]:
    fail("stream sweep differs between --engine seq and --engine par")

print("check.sh: stream schema, latency algebra and engine"
      " bit-identity OK")
PYSTREAM
}

# Stream-resilience checks against an existing build dir: the resilience
# unit/property/scheduler/golden tests, then the resilience_sweep bench
# (whose own per-point invariants — bounded queues, conservation,
# breaker recovery, engine bit-identity — make its exit code a verdict),
# validating the JSON SLO schema and the failure-window scenario.
resilience_checks() {
    local dir="$1"
    local filter='ShedPolicyModel.*:ResilienceConfigModel.*'
    filter+=':ShedVictimModel.*:CircuitBreakerModel.*:OutageTableModel.*'
    filter+=':ResilienceSim.*:GoldenStats.StreamResilience*'
    "$dir/tests/dss_tests" --gtest_filter="$filter"

    local out_json="$dir/resilience_check.json"
    "$dir/bench/resilience_sweep" --scale tiny --json "$out_json" \
        > /dev/null

    python3 - "$out_json" <<'PYRES'
import json, sys

doc = json.load(open(sys.argv[1]))

def fail(msg):
    sys.stderr.write("check.sh: resilience: %s\n" % msg)
    sys.exit(1)

points = doc.get("points")
if not isinstance(points, list) or not points:
    fail("no sweep points in %s" % sys.argv[1])
slo_keys = ("submitted", "goodput", "timeouts", "shed_queue",
            "shed_breaker", "shed_expired", "abandoned", "migrations")
for pt in points:
    label = pt.get("label")
    if not pt.get("bit_identical"):
        fail("%s not bit-identical between engines" % label)
    res = pt.get("resilience")
    if not isinstance(res, dict):
        fail("%s lacks a resilience block" % label)
    for key in ("config", "slo", "latency", "breaker", "outages",
                "degraded_cycles"):
        if key not in res:
            fail("%s resilience block lacks '%s'" % (label, key))
    total = res["slo"]["total"]
    for key in slo_keys:
        if key not in total:
            fail("%s slo total lacks '%s'" % (label, key))
    resolved = (total["goodput"] + total["timeouts"] +
                total["shed_queue"] + total["shed_breaker"] +
                total["shed_expired"] + total["abandoned"])
    if resolved != total["submitted"]:
        fail("%s outcomes (%d) do not sum to submitted (%d)"
             % (label, resolved, total["submitted"]))
    if total["goodput"] == 0:
        fail("%s goodput collapsed to zero" % label)
    by_class = res["slo"]["by_class"]
    if sum(c["submitted"] for c in by_class.values()) != total["submitted"]:
        fail("%s per-class submitted does not sum to total" % label)
    if pt["rate"] == 0 and res["outages"]:
        fail("%s reports outages at fault rate 0" % label)
    if pt["rate"] == 0 and res["degraded_cycles"] != 0:
        fail("%s reports degraded cycles at fault rate 0" % label)

bl = doc.get("breaker_lifecycle")
if not isinstance(bl, dict):
    fail("no breaker_lifecycle scenario block")
br = bl["resilience"]["breaker"]
if br["trips"] == 0 or br["recoveries"] == 0:
    fail("breaker scenario: trips=%d recoveries=%d — the life cycle was"
         " not exercised" % (br["trips"], br["recoveries"]))
if not bl["resilience"]["outages"]:
    fail("breaker scenario saw no outages")

print("check.sh: resilience SLO schema, conservation, breaker life"
      " cycle and engine bit-identity OK")
PYRES
}

# Machine-spec checks against an existing build dir: the hierarchy and
# spec unit tests, preset discovery, byte-identity of the default run
# against an explicit --machine paper1997, the modern preset over
# Q3/Q6/Q12 under the invariant checker with per-level counter
# reconciliation, and a spec file written on the spot driving a bench.
machine_checks() {
    local dir="$1"
    local filter='Hierarchy.*:MachineSpec.*:MachineValidation.*'
    filter+=':BenchOptions.Machine*:BenchOptionsDeath.Machine*'
    "$dir/tests/dss_tests" --gtest_filter="$filter"

    # Preset discovery: `--machine list` prints every preset and exits 0.
    local listing
    listing="$("$dir/bench/fig6_time_breakdown" --machine list)"
    for preset in paper1997 modern scaled64; do
        if ! grep -q "$preset" <<< "$listing"; then
            echo "check.sh: machine: '--machine list' lacks $preset" >&2
            exit 1
        fi
    done

    # The spec layer must be invisible to the goldens: a run with no
    # --machine flag and one with an explicit paper1997 are the same
    # binary report, byte for byte.
    local dflt_json="$dir/machine_check_default.json"
    local paper_json="$dir/machine_check_paper1997.json"
    "$dir/bench/fig6_time_breakdown" --scale tiny \
        --json "$dflt_json" > /dev/null
    "$dir/bench/fig6_time_breakdown" --scale tiny --machine paper1997 \
        --json "$paper_json" > /dev/null
    if ! cmp -s "$dflt_json" "$paper_json"; then
        echo "check.sh: machine: default report differs from an explicit" \
             "--machine paper1997" >&2
        exit 1
    fi

    # The modern three-level preset over Q3/Q6/Q12, invariant checker on.
    local modern_json="$dir/machine_check_modern.json"
    "$dir/bench/fig6_time_breakdown" --scale tiny --check \
        --machine modern --json "$modern_json" > /dev/null

    # A machine-spec *file* must drive a bench end to end: modern's
    # geometry with a distinctive middle level (512K instead of 256K)
    # so the report provably came from the file, not a preset.
    local spec_json="$dir/machine_check_spec.json"
    local file_json="$dir/machine_check_from_file.json"
    cat > "$spec_json" <<'SPEC'
{
  "name": "check-file",
  "levels": [
    {"sizeBytes": 32768, "lineBytes": 64, "assoc": 8, "hitCycles": 1},
    {"sizeBytes": 524288, "lineBytes": 64, "assoc": 8, "hitCycles": 14},
    {"sizeBytes": 8388608, "lineBytes": 64, "assoc": 16,
     "hitCycles": 48, "shared": true}
  ]
}
SPEC
    "$dir/bench/fig6_time_breakdown" --scale tiny \
        --machine "$spec_json" --json "$file_json" > /dev/null

    python3 - "$modern_json" "$file_json" <<'PYMACHINE'
import json, sys

modern = json.load(open(sys.argv[1]))
fromfile = json.load(open(sys.argv[2]))

def fail(msg):
    sys.stderr.write("check.sh: machine: %s\n" % msg)
    sys.exit(1)

levels = modern.get("config", {}).get("levels")
if not isinstance(levels, list) or len(levels) != 3:
    fail("modern config does not expose a three-entry levels array")
if not levels[-1].get("shared"):
    fail("modern LLC lost its shared flag on the way to JSON")

def miss_total(c, proc, lvl):
    prefix = "%s.%s.miss." % (proc, lvl)
    return sum(v for k, v in c.items() if k.startswith(prefix))

for run in modern["runs"]:
    c = run["counters"]
    procs = sorted({k.split(".")[0] for k in c if k.startswith("proc")})
    if not procs:
        fail("%s exports no per-processor counters" % run["label"])
    for p in procs:
        l2_acc = c["%s.l2_accesses" % p]
        if c["%s.l3_accesses" % p] == 0 and l2_acc > 0:
            fail("%s %s: l2 accesses but the l3 was never consulted"
                 % (run["label"], p))
        # Every L1 miss is an L2 lookup, and every L2 lookup resolves.
        if miss_total(c, p, "l1") != l2_acc:
            fail("%s %s: l1 misses (%d) != l2 accesses (%d)"
                 % (run["label"], p, miss_total(c, p, "l1"), l2_acc))
        if c["%s.l2_hits" % p] + miss_total(c, p, "l2") != l2_acc:
            fail("%s %s: l2 hits + misses != l2 accesses"
                 % (run["label"], p))
        # Atomics consult the coherence point even on an upper-level
        # hit, so hits + misses bound the lookups from below.
        l3_acc = c["%s.l3_accesses" % p]
        if c["%s.l3_hits" % p] + miss_total(c, p, "l3") > l3_acc:
            fail("%s %s: l3 hits + misses exceed l3 accesses"
                 % (run["label"], p))

file_levels = fromfile["config"]["levels"]
if len(file_levels) != 3:
    fail("spec file's three levels did not reach the report")
if file_levels[1]["sizeBytes"] != 524288:
    fail("spec file's 512K middle level did not reach the report"
         " (got %d)" % file_levels[1]["sizeBytes"])

print("check.sh: machine preset listing, paper1997 byte-identity,"
      " modern counter reconciliation and spec-file run OK")
PYMACHINE
}

# Line-level memory-profiler checks against an existing build dir: unit
# tests, then report_memprof over Q3/Q6/Q12 with --memprof on both
# engines, validating the JSON profile schema, the per-processor
# cohe == cohe.true + cohe.false registry invariant, and engine
# bit-identity of the profile block.
memprof_checks() {
    local dir="$1"
    "$dir/tests/dss_tests" --gtest_filter='MemProfile.*:RegionMap.*'

    local seq_json="$dir/memprof_check_seq.json"
    local par_json="$dir/memprof_check_par.json"
    "$dir/bench/report_memprof" --memprof --scale tiny \
        --json "$seq_json" > /dev/null
    "$dir/bench/report_memprof" --memprof --scale tiny --engine par \
        --json "$par_json" > /dev/null

    python3 - "$seq_json" "$par_json" <<'EOF'
import json, sys

seq = json.load(open(sys.argv[1]))
par = json.load(open(sys.argv[2]))

def fail(msg):
    sys.stderr.write("check.sh: memprof: %s\n" % msg)
    sys.exit(1)

profiles = seq.get("memprof")
if not isinstance(profiles, dict) or not profiles:
    fail("no memprof block in %s" % sys.argv[1])
for query, prof in profiles.items():
    for key in ("lineBytes", "nprocs", "linesTracked", "lines",
                "classes", "sets", "totals"):
        if key not in prof:
            fail("%s profile lacks '%s'" % (query, key))
    fields = ("accesses", "reads", "writes", "cold", "conf",
              "coheTrue", "coheFalse", "upgrades", "hop3")
    for rec in prof["lines"]:
        for key in ("addr", "symbol", "class") + fields:
            if key not in rec:
                fail("%s line record lacks '%s'" % (query, key))
    for rec in prof["sets"]:
        if "set" not in rec or "conf" not in rec:
            fail("%s set record malformed" % query)
    tot = prof["totals"]
    summed = {f: 0 for f in fields}
    for cls in prof["classes"].values():
        for f in fields:
            summed[f] += cls[f]
    if any(summed[f] != tot[f] for f in fields):
        fail("%s class totals do not sum to profile totals" % query)
    if not prof["lines"]:
        fail("%s profile tracked no lines" % query)

# Per-proc coherence split invariant from the machine's own counters.
for run in seq["runs"]:
    c = run["counters"]
    procs = {k.split(".")[0] for k in c if k.startswith("proc")}
    for p in sorted(procs):
        cohe = c.get(p + ".miss.cohe", 0)
        true = c.get(p + ".miss.cohe.true", 0)
        false_ = c.get(p + ".miss.cohe.false", 0)
        if cohe != true + false_:
            fail("%s %s: cohe %d != true %d + false %d"
                 % (run["label"], p, cohe, true, false_))

# The profile replays traces itself: bit-identical across engines.
if profiles != par.get("memprof"):
    fail("profile differs between --engine seq and --engine par")

print("check.sh: memprof schema, counter invariant and engine"
      " bit-identity OK")
EOF
}

# Protocol-verification checks against an existing build dir: the
# canonicalization/symmetry, model and mutant unit tests plus the
# model-checker-to-real-machine bridge test, then verify_protocol in
# clean mode on both machine presets (the exhaustive 2x2 search must
# report zero violations), the full mutant sweep (every injected
# protocol bug must be caught with a counterexample), and bit-identity
# of the JSON report across repeated runs.
verify_checks() {
    local dir="$1"
    local filter='VerifyCanonical.*:VerifyModel.*:VerifyClean.*'
    filter+=':VerifyTraces.*:AllMutants/VerifyMutants.*'
    filter+=':CheckerClean.ModelCheckerTracesReplayCleanOnTheRealMachine'
    "$dir/tests/dss_tests" --gtest_filter="$filter"

    # Exhaustive clean searches: 2 procs x 2 lines + lock on both the
    # paper's two-level hierarchy and the modern three-level one. The
    # bench exits 3 on any invariant violation.
    local paper_json="$dir/verify_check_paper1997.json"
    local modern_json="$dir/verify_check_modern.json"
    "$dir/bench/verify_protocol" --verify-procs 2 --verify-lines 2 \
        --json "$paper_json"
    "$dir/bench/verify_protocol" --verify-procs 2 --verify-lines 2 \
        --machine modern --json "$modern_json"

    # Soundness: all four protocol mutants must be *caught*. A mutant
    # that escapes the search makes the bench exit 3.
    "$dir/bench/verify_protocol" --verify-procs 2 --verify-lines 1 \
        --verify-mutant all > /dev/null

    # Determinism: the search must be bit-identical across runs.
    local rerun_json="$dir/verify_check_rerun.json"
    "$dir/bench/verify_protocol" --verify-procs 2 --verify-lines 2 \
        --json "$rerun_json" > /dev/null
    if ! cmp -s "$paper_json" "$rerun_json"; then
        echo "check.sh: verify: JSON report differs between repeated" \
             "runs of the same search" >&2
        exit 1
    fi

    python3 - "$paper_json" "$modern_json" <<'PYVERIFY'
import json, sys

def fail(msg):
    sys.stderr.write("check.sh: verify: %s\n" % msg)
    sys.exit(1)

reports = [json.load(open(p)) for p in sys.argv[1:3]]
states = []
for path, doc in zip(sys.argv[1:3], reports):
    runs = doc.get("verify")
    if not isinstance(runs, list) or not runs:
        fail("no verify block in %s" % path)
    run = runs[0]
    for key in ("states", "transitions", "depth", "violations",
                "exhausted", "mutant"):
        if key not in run:
            fail("%s verify block lacks '%s'" % (path, key))
    if run["mutant"] != "none":
        fail("%s first run is not the clean search" % path)
    if not run["exhausted"]:
        fail("%s search did not exhaust the state space" % path)
    if run["violations"] != 0:
        fail("%s clean search reports violations" % path)
    c = doc.get("counters", {})
    if c.get("verify.states") != run["states"]:
        fail("%s verify.states counter disagrees with the report" % path)
    states.append(run["states"])

# One tracked subline cannot tell the hierarchies apart: the extra
# level only changes latency, which the abstraction drops.
if states[0] != states[1]:
    fail("paper1997 (%d states) and modern (%d states) disagree"
         % (states[0], states[1]))

print("check.sh: verify clean searches exhausted (%d states), mutants"
      " caught, report bit-identical" % states[0])
PYVERIFY
}

# Static gates: the determinism lint over the deterministic core always;
# clang-tidy over src/ with the repo .clang-tidy (warnings are errors)
# when the binary is installed, driven by the build tree's
# compile_commands.json.
lint_checks() {
    local dir="$1"
    python3 "$repo/scripts/determinism_lint.py" "$repo"

    if ! command -v clang-tidy > /dev/null 2>&1; then
        echo "check.sh: lint: clang-tidy not installed — skipping the" \
             "static-analysis half (determinism lint still gates)"
        return 0
    fi
    if [[ ! -f "$dir/compile_commands.json" ]]; then
        cmake -B "$dir" -S "$repo" > /dev/null
    fi
    local srcs
    srcs="$(cd "$repo" && ls src/*/*.cc)"
    (cd "$repo" && xargs clang-tidy -p "$dir" --quiet <<< "$srcs")
    echo "check.sh: lint: clang-tidy clean over src/"
}

if [[ "$chaos" -eq 1 ]]; then
    # Robustness gauntlet: the fault/checker/guard suites plus the
    # engine-stress interleavings, under both TSan and ASan, then the
    # chaos sweep bench end to end (its exit code is the verdict).
    filter='FaultDeterminism.*:FaultInjection.*:GracefulFailure.*'
    filter+=':CheckerCorruption.*:CheckerClean.*:Backoff.*:RetryOnAbort.*'
    filter+=':GuardedMain.*:EngineStress.*:EngineDifferential.*'
    filter+=':SchedSim.*:StreamFuzz.*'
    for san in thread address; do
        dir="$repo/build-$(short_of "$san")"
        cmake -B "$dir" -S "$repo" -DSIM_SANITIZE="$san"
        cmake --build "$dir" -j"$(nproc)" \
            --target dss_tests chaos_fault_sweep ablation_placement \
            report_memprof throughput_stream resilience_sweep \
            fig6_time_breakdown verify_protocol
        "$dir/tests/dss_tests" --gtest_filter="$filter"
        "$dir/bench/chaos_fault_sweep" --scale tiny
        "$dir/bench/ablation_placement" --scale tiny --check
        # The profiler's replay and the sharing tracker under the
        # sanitizer, plus the schema/invariant/bit-identity checks.
        memprof_checks "$dir"
        # Stream scheduler differential + schema under the sanitizer.
        stream_checks "$dir"
        # Deadlines, shedding, breaker and node-failure migration under
        # the sanitizer, plus the SLO schema/conservation checks.
        resilience_checks "$dir"
        # The N-level hierarchy and machine-spec layer under the
        # sanitizer: preset discovery, paper1997 byte-identity, modern
        # counter reconciliation and a spec-file-driven run.
        machine_checks "$dir"
        # The exhaustive protocol search and mutant sweep under the
        # sanitizer: the model checker drives the real transition
        # functions, so races and UB in the protocol paths surface here.
        verify_checks "$dir"
    done
    # The static gates once (sanitizers do not change source text);
    # the last sanitizer build dir supplies compile_commands.json.
    lint_checks "$dir"
    echo "check.sh: chaos gauntlet passed"
elif [[ "$placement" -eq 1 ]]; then
    build="${build:-$repo/build}"
    cmake -B "$build" -S "$repo"
    cmake --build "$build" -j"$(nproc)" \
        --target dss_tests ablation_placement chaos_fault_sweep
    "$build/tests/dss_tests" --gtest_filter='Placement*.*'

    # The 4-policy x Q3/Q6/Q12 sweep under the coherence invariant
    # checker: every policy must finish with zero violations.
    "$build/bench/ablation_placement" --scale tiny --check

    # Fault schedules must be placement-invariant: the FaultPlan keys on
    # per-processor trace positions, never on page homes, so moving every
    # shared page (first-touch vs interleave) must leave the injected
    # fault and retry counts byte-identical at the same seed.
    sched_of() {
        "$build/bench/chaos_fault_sweep" --scale tiny --fault-seed 7 \
            --placement "$1" |
            awk 'NF >= 7 && $2 ~ /^0\./ { print $1, $2, $3, $4 }'
    }
    a="$(sched_of interleave)"
    b="$(sched_of first-touch)"
    if [[ -z "$a" ]]; then
        echo "check.sh: no fault-schedule rows extracted from" \
             "chaos_fault_sweep output" >&2
        exit 1
    fi
    if [[ "$a" != "$b" ]]; then
        echo "check.sh: fault schedule moved with the placement policy" >&2
        diff <(echo "$a") <(echo "$b") >&2 || true
        exit 1
    fi
    echo "check.sh: placement checks passed (fault schedule is" \
         "placement-invariant)"
elif [[ "$memprof" -eq 1 ]]; then
    build="${build:-$repo/build}"
    cmake -B "$build" -S "$repo"
    cmake --build "$build" -j"$(nproc)" \
        --target dss_tests report_memprof
    memprof_checks "$build"
    echo "check.sh: memprof checks passed"
elif [[ "$stream" -eq 1 ]]; then
    build="${build:-$repo/build}"
    cmake -B "$build" -S "$repo"
    cmake --build "$build" -j"$(nproc)" \
        --target dss_tests throughput_stream
    stream_checks "$build"
    echo "check.sh: stream checks passed"
elif [[ "$resilience" -eq 1 ]]; then
    build="${build:-$repo/build}"
    cmake -B "$build" -S "$repo"
    cmake --build "$build" -j"$(nproc)" \
        --target dss_tests resilience_sweep
    resilience_checks "$build"
    echo "check.sh: resilience checks passed"
elif [[ "$machine" -eq 1 ]]; then
    build="${build:-$repo/build}"
    cmake -B "$build" -S "$repo"
    cmake --build "$build" -j"$(nproc)" \
        --target dss_tests fig6_time_breakdown
    machine_checks "$build"
    echo "check.sh: machine checks passed"
elif [[ "$verify" -eq 1 ]]; then
    build="${build:-$repo/build}"
    cmake -B "$build" -S "$repo"
    cmake --build "$build" -j"$(nproc)" \
        --target dss_tests verify_protocol
    verify_checks "$build"
    echo "check.sh: verify checks passed"
elif [[ "$lint" -eq 1 ]]; then
    build="${build:-$repo/build}"
    lint_checks "$build"
    echo "check.sh: lint checks passed"
elif [[ -n "$sanitize" ]]; then
    build="${build:-$repo/build-$(short_of "$sanitize")}"
    cmake -B "$build" -S "$repo" -DSIM_SANITIZE="$sanitize"
    cmake --build "$build" -j"$(nproc)" --target dss_tests
    "$build/tests/dss_tests" \
        --gtest_filter='EngineStress.*:EngineDifferential.*:Coherence*.*:Spinlock*.*'
else
    build="${build:-$repo/build}"
    cmake -B "$build" -S "$repo"
    cmake --build "$build" -j"$(nproc)"
    ctest --test-dir "$build" --output-on-failure -j"$(nproc)"
fi
