#!/usr/bin/env bash
# Tier-1 check: configure, build, and run the full test suite.
#
# Usage: scripts/check.sh [--sanitize=thread|address] [build-dir]
#
# --sanitize builds into a separate build directory (build-tsan/ or
# build-asan/) with -DSIM_SANITIZE set and runs only the engine and
# coherence tests there — the interleaving-heavy subset a sanitizer can
# actually judge — so the instrumented build never pollutes the normal
# one and stays fast enough for routine use.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
sanitize=""
build=""

for arg in "$@"; do
    case "$arg" in
        --sanitize=thread|--sanitize=address)
            sanitize="${arg#--sanitize=}"
            ;;
        --sanitize*)
            echo "check.sh: unknown sanitizer in '$arg' (thread, address)" >&2
            exit 2
            ;;
        -*)
            echo "check.sh: unknown option '$arg'" >&2
            exit 2
            ;;
        *)
            build="$arg"
            ;;
    esac
done

if [[ -n "$sanitize" ]]; then
    short="tsan"
    [[ "$sanitize" == "address" ]] && short="asan"
    build="${build:-$repo/build-$short}"
    cmake -B "$build" -S "$repo" -DSIM_SANITIZE="$sanitize"
    cmake --build "$build" -j"$(nproc)" --target dss_tests
    "$build/tests/dss_tests" \
        --gtest_filter='EngineStress.*:EngineDifferential.*:Coherence*.*:Spinlock*.*'
else
    build="${build:-$repo/build}"
    cmake -B "$build" -S "$repo"
    cmake --build "$build" -j"$(nproc)"
    ctest --test-dir "$build" --output-on-failure -j"$(nproc)"
fi
