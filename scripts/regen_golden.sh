#!/usr/bin/env bash
# Regenerate the golden-stats fixtures under tests/golden/ from the
# current simulator behaviour, then re-run the golden tests to confirm
# the fixtures round-trip.
#
# Usage: scripts/regen_golden.sh [build-dir]   (default: build/)
#
# Run this only when a behaviour change is *intended*; review the fixture
# diff like code before committing it.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

cmake --build "$build" -j"$(nproc)" --target dss_tests
DSS_REGEN_GOLDEN=1 "$build/tests/dss_tests" --gtest_filter='GoldenStats.*'
"$build/tests/dss_tests" --gtest_filter='GoldenStats.*'
git -C "$repo" --no-pager diff --stat -- tests/golden || true
