/**
 * @file
 * Observability layer: counter registry, JSON writer/parser round-trips,
 * epoch-sampler delta reconciliation against end-of-run stats, and the
 * Chrome trace-event exporter.
 */

#include <cmath>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "obs/json.hh"
#include "obs/registry.hh"
#include "obs/sampler.hh"
#include "obs/stats_json.hh"
#include "obs/timeline.hh"

using namespace dss;

// ---------------------------------------------------------------- registry

TEST(Registry, CountersAndGaugesReadLiveValues)
{
    obs::Registry reg;
    std::uint64_t hits = 0;
    reg.addCounter("l1.hits", [&] { return hits; });
    reg.addGauge("l1.hit_rate", [&] { return hits ? 0.5 : 0.0; });

    EXPECT_EQ(reg.size(), 2u);
    EXPECT_TRUE(reg.contains("l1.hits"));
    EXPECT_FALSE(reg.contains("l1.misses"));
    EXPECT_EQ(reg.counterValue("l1.hits"), 0u);

    hits = 41;
    EXPECT_EQ(reg.counterValue("l1.hits"), 41u); // live view, not a copy
    EXPECT_DOUBLE_EQ(reg.gaugeValue("l1.hit_rate"), 0.5);
}

TEST(Registry, DuplicateNamesThrow)
{
    obs::Registry reg;
    reg.addCounter("proc0.busy", [] { return std::uint64_t{1}; });
    EXPECT_THROW(reg.addCounter("proc0.busy", [] { return std::uint64_t{2}; }),
                 std::invalid_argument);
    EXPECT_THROW(reg.addGauge("proc0.busy", [] { return 1.0; }),
                 std::invalid_argument);
    EXPECT_THROW(reg.counterValue("no.such.metric"), std::invalid_argument);
}

TEST(Registry, NamesAndJsonAreSorted)
{
    obs::Registry reg;
    reg.addCounter("b", [] { return std::uint64_t{2}; });
    reg.addCounter("a.z", [] { return std::uint64_t{1}; });
    reg.addGauge("a.a", [] { return 3.0; });

    const std::vector<std::string> expect = {"a.a", "a.z", "b"};
    EXPECT_EQ(reg.names(), expect);

    obs::Json j = reg.toJson();
    ASSERT_EQ(j.size(), 3u);
    EXPECT_EQ(j.members()[0].first, "a.a");
    EXPECT_EQ(j.members()[2].first, "b");
    EXPECT_EQ(j.find("a.z")->asUint(), 1u);
}

TEST(Registry, MetricNameJoinsWithDots)
{
    EXPECT_EQ(obs::metricName("proc0.l1", "hits"), "proc0.l1.hits");
    EXPECT_EQ(obs::metricName("", "dir"), "dir");
    EXPECT_EQ(obs::metricName("dir", ""), "dir");
}

TEST(Registry, MachineRegistersHierarchicalNames)
{
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 2, 42);
    const sim::MachineConfig cfg = sim::MachineConfig::baseline();
    harness::TraceSet traces = wl.trace(tpcd::QueryId::Q6);

    obs::Json snapshot;
    sim::SimStats stats =
        harness::runCold(cfg, traces, nullptr, nullptr, &snapshot);

    ASSERT_TRUE(snapshot.isObject());
    // The per-proc stat views must agree with the returned stats.
    EXPECT_EQ(snapshot.find("proc0.busy")->asUint(), stats.procs[0].busy);
    EXPECT_EQ(snapshot.find("proc1.reads")->asUint(), stats.procs[1].reads);
    // Component counters exist under their hierarchical prefixes.
    EXPECT_NE(snapshot.find("proc0.l1.lookups"), nullptr);
    EXPECT_NE(snapshot.find("proc0.l2.fills"), nullptr);
    EXPECT_NE(snapshot.find("proc0.wb.stores"), nullptr);
    EXPECT_NE(snapshot.find("dir.requests"), nullptr);
    EXPECT_NE(snapshot.find("locks.acquires"), nullptr);
    // Fig 7-style per-class miss cells.
    std::uint64_t l1_total = 0;
    for (const auto &[name, value] : snapshot.members())
        if (name.find(".l1.miss.") != std::string::npos)
            l1_total += value.asUint();
    EXPECT_EQ(l1_total, stats.aggregate().l1Misses().total());
}

// -------------------------------------------------------------------- json

TEST(Json, EscapesControlAndSpecialCharacters)
{
    EXPECT_EQ(obs::jsonEscape("plain"), "plain");
    EXPECT_EQ(obs::jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(obs::jsonEscape("\n\t\r"), "\\n\\t\\r");
    EXPECT_EQ(obs::jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, DumpsExactUint64)
{
    obs::Json j = obs::Json::object();
    j["big"] = std::uint64_t{18446744073709551615ull};
    j["cycles"] = std::uint64_t{9007199254740993ull}; // > 2^53
    const std::string text = j.dump();
    EXPECT_NE(text.find("18446744073709551615"), std::string::npos);
    EXPECT_NE(text.find("9007199254740993"), std::string::npos);

    obs::Json back = obs::Json::parse(text);
    EXPECT_EQ(back.find("big")->asUint(), 18446744073709551615ull);
    EXPECT_EQ(back.find("cycles")->asUint(), 9007199254740993ull);
}

TEST(Json, NonFiniteDoublesBecomeNull)
{
    obs::Json j = obs::Json::array();
    j.push(std::nan(""));
    j.push(1.0 / 0.0);
    EXPECT_EQ(j.dump(), "[null,null]");
}

TEST(Json, ParseRoundTripsStringsAndNesting)
{
    const std::string text =
        R"({"s":"a\"\\\né😀","arr":[1,-2,3.5,true,null],)"
        R"("nested":{"k":[{"deep":"v"}]}})";
    obs::Json j = obs::Json::parse(text);
    EXPECT_EQ(j.find("s")->asString(), "a\"\\\n\xc3\xa9\xf0\x9f\x98\x80");
    EXPECT_EQ(j.find("arr")->at(1).asInt(), -2);
    EXPECT_DOUBLE_EQ(j.find("arr")->at(2).asDouble(), 3.5);
    EXPECT_TRUE(j.find("arr")->at(4).isNull());
    // dump -> parse -> dump is a fixed point.
    EXPECT_EQ(obs::Json::parse(j.dump()).dump(), j.dump());
}

TEST(Json, ParseRejectsMalformedInput)
{
    EXPECT_THROW(obs::Json::parse(""), std::runtime_error);
    EXPECT_THROW(obs::Json::parse("{"), std::runtime_error);
    EXPECT_THROW(obs::Json::parse("[1,]"), std::runtime_error);
    EXPECT_THROW(obs::Json::parse("\"unterminated"), std::runtime_error);
    EXPECT_THROW(obs::Json::parse("{} trailing"), std::runtime_error);
}

TEST(Json, SimStatsSurvivesSerializationRoundTrip)
{
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 2, 42);
    harness::TraceSet traces = wl.trace(tpcd::QueryId::Q6);
    sim::SimStats stats =
        harness::runCold(sim::MachineConfig::baseline(), traces);

    obs::Json j = obs::toJson(stats);
    obs::Json back = obs::Json::parse(j.dump(2));

    const sim::ProcStats agg = stats.aggregate();
    EXPECT_EQ(back.find("executionTime")->asUint(), stats.executionTime());
    EXPECT_EQ(back.find("procs")->size(), stats.procs.size());
    const obs::Json *p0 = &back.find("procs")->at(0);
    EXPECT_EQ(p0->find("busy")->asUint(), stats.procs[0].busy);
    EXPECT_EQ(p0->find("memStall")->asUint(), stats.procs[0].memStall);
    const obs::Json *aggj = back.find("aggregate");
    ASSERT_NE(aggj, nullptr);
    EXPECT_EQ(aggj->find("reads")->asUint(), agg.reads);
    EXPECT_EQ(aggj->find("l1Misses")->find("total")->asUint(),
              agg.l1Misses().total());
}

// ----------------------------------------------------------------- sampler

namespace {

void
expectSameStats(const sim::ProcStats &a, const sim::ProcStats &b)
{
    EXPECT_EQ(a.busy, b.busy);
    EXPECT_EQ(a.memStall, b.memStall);
    EXPECT_EQ(a.syncStall, b.syncStall);
    for (std::size_t g = 0; g < sim::kNumClassGroups; ++g)
        EXPECT_EQ(a.memStallByGroup[g], b.memStallByGroup[g]);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.assumedHitReads, b.assumedHitReads);
    EXPECT_EQ(a.l1Hits(), b.l1Hits());
    EXPECT_EQ(a.l2Accesses(), b.l2Accesses());
    EXPECT_EQ(a.l2Hits(), b.l2Hits());
    EXPECT_EQ(a.wbOverflows, b.wbOverflows);
    for (std::size_t c = 0; c < sim::kNumDataClasses; ++c)
        for (std::size_t t = 0; t < sim::kNumMissTypes; ++t) {
            const auto dc = static_cast<sim::DataClass>(c);
            const auto mt = static_cast<sim::MissType>(t);
            EXPECT_EQ(a.l1Misses().of(dc, mt), b.l1Misses().of(dc, mt));
            EXPECT_EQ(a.l2Misses().of(dc, mt), b.l2Misses().of(dc, mt));
        }
}

} // namespace

TEST(Sampler, RejectsZeroEpoch)
{
    EXPECT_THROW(obs::Sampler(0), std::invalid_argument);
}

TEST(Sampler, DeltasReconcileExactlyWithEndOfRunStats)
{
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 2, 42);
    const sim::MachineConfig cfg = sim::MachineConfig::baseline();
    harness::TraceSet traces = wl.trace(tpcd::QueryId::Q6);

    obs::Sampler sampler(5000); // small epoch: many samples
    sim::SimStats stats = harness::runCold(cfg, traces, &sampler);

    ASSERT_GT(sampler.samples().size(), 2u);
    for (std::size_t p = 0; p < stats.procs.size(); ++p)
        expectSameStats(sampler.runTotal(0, p), stats.procs[p]);

    // Samples tile the run: contiguous, ordered, ending at executionTime.
    sim::Cycles prev_end = 0;
    for (const obs::EpochSample &s : sampler.samples()) {
        EXPECT_EQ(s.start, prev_end);
        EXPECT_GT(s.end, s.start);
        prev_end = s.end;
    }
    EXPECT_EQ(prev_end, stats.executionTime());
}

TEST(Sampler, ObservesEveryRunOfASequence)
{
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 2, 42);
    const sim::MachineConfig cfg = sim::MachineConfig::baseline();
    harness::TraceSet a = wl.trace(tpcd::QueryId::Q6, 11);
    harness::TraceSet b = wl.trace(tpcd::QueryId::Q6, 23);

    obs::Sampler sampler(5000);
    std::vector<sim::SimStats> runs =
        harness::runSequence(cfg, {&a, &b}, &sampler);

    ASSERT_EQ(runs.size(), 2u);
    for (unsigned r = 0; r < 2; ++r)
        for (std::size_t p = 0; p < runs[r].procs.size(); ++p)
            expectSameStats(sampler.runTotal(r, p), runs[r].procs[p]);
}

TEST(Sampler, JsonSeriesMatchesSamples)
{
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 2, 42);
    harness::TraceSet traces = wl.trace(tpcd::QueryId::Q6);

    obs::Sampler sampler(10000);
    harness::runCold(sim::MachineConfig::baseline(), traces, &sampler);

    obs::Json j = sampler.toJson();
    EXPECT_EQ(j.find("epochCycles")->asUint(), 10000u);
    const obs::Json *samples = j.find("samples");
    ASSERT_NE(samples, nullptr);
    ASSERT_EQ(samples->size(), sampler.samples().size());
    const obs::EpochSample &s0 = sampler.samples().front();
    const obs::Json &j0 = samples->at(0);
    EXPECT_EQ(j0.find("start")->asUint(), s0.start);
    EXPECT_EQ(j0.find("end")->asUint(), s0.end);
    EXPECT_EQ(j0.find("procs")->at(0).find("busy")->asUint(),
              s0.procs[0].busy);
}

/**
 * Regression: counters registered after the first epoch tick used to be
 * dropped for the rest of the run (the counter set was enumerated once).
 * They must reconcile against a zero baseline instead, and the per-epoch
 * registrySize snapshot must expose the growth.
 */
TEST(Sampler, LateRegisteredCountersReconcileAgainstZeroBaseline)
{
    obs::Registry reg;
    std::uint64_t early = 0;
    reg.addCounter("early", [&] { return early; });

    obs::Sampler sampler(100);
    sampler.attachRegistry(&reg);
    std::vector<sim::ProcStats> cum(1);

    sampler.beginRun(1);
    early = 7;
    cum[0].busy = 100;
    sampler.sample(100, cum); // epoch 0: only "early" exists yet

    std::uint64_t late = 0;
    reg.addCounter("late", [&] { return late; });
    early = 12;
    late = 5;
    cum[0].busy = 200;
    sampler.sample(200, cum); // epoch 1: "late" appears mid-run

    late = 9;
    cum[0].busy = 250;
    sampler.finishRun(250, cum);

    // Sums of deltas equal the end-of-run values — for the late counter
    // that only works if its first delta used a zero baseline.
    EXPECT_EQ(sampler.counterTotal(0, "early"), 12u);
    EXPECT_EQ(sampler.counterTotal(0, "late"), 9u);

    ASSERT_EQ(sampler.samples().size(), 3u);
    EXPECT_EQ(sampler.samples()[0].registrySize, 1u);
    EXPECT_EQ(sampler.samples()[1].registrySize, 2u);
    bool found = false;
    for (const auto &[name, delta] : sampler.samples()[1].counters)
        if (name == "late") {
            EXPECT_EQ(delta, 5u); // absolute value == delta from zero
            found = true;
        }
    EXPECT_TRUE(found);
}

// ---------------------------------------------------------------- timeline

TEST(Timeline, CoalescesAdjacentSpansAndDropsOverlaps)
{
    obs::Timeline tl;
    tl.beginRun();
    tl.exec(0, obs::SpanKind::Busy, 0, 10);
    tl.exec(0, obs::SpanKind::Busy, 10, 20); // coalesced into [0, 20)
    tl.exec(0, obs::SpanKind::Mem, 20, 30);
    tl.exec(0, obs::SpanKind::Busy, 25, 35); // overlap: dropped
    tl.exec(0, obs::SpanKind::Busy, 30, 30); // empty: dropped

    const std::vector<obs::Span> &spans = tl.procSpans(0);
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].start, 0u);
    EXPECT_EQ(spans[0].end, 20u);
    EXPECT_EQ(spans[1].kind, obs::SpanKind::Mem);
}

TEST(Timeline, LaysConsecutiveRunsOutSequentially)
{
    obs::Timeline tl;
    tl.beginRun();
    tl.exec(0, obs::SpanKind::Busy, 0, 100);
    tl.beginRun(); // second run restarts its clock at zero
    tl.exec(0, obs::SpanKind::Busy, 0, 50);

    const std::vector<obs::Span> &spans = tl.procSpans(0);
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[1].start, 100u); // offset past run 1
    EXPECT_EQ(spans[1].end, 150u);
}

TEST(Timeline, ChromeExportIsValidTraceEventJson)
{
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 2, 42);
    harness::TraceSet traces = wl.trace(tpcd::QueryId::Q3);

    obs::Timeline tl;
    sim::SimStats stats =
        harness::runCold(sim::MachineConfig::baseline(), traces, nullptr,
                         &tl);
    ASSERT_GT(tl.spanCount(), 0u);

    std::ostringstream os;
    tl.writeChromeJson(os);
    obs::Json doc = obs::Json::parse(os.str()); // throws if malformed

    const obs::Json *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_GT(events->size(), 0u);

    bool saw_exec = false, saw_meta = false, saw_lock = false;
    sim::Cycles max_end = 0;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const obs::Json &e = events->at(i);
        const std::string &ph = e.find("ph")->asString();
        if (ph == "M") {
            saw_meta = true;
            continue;
        }
        ASSERT_EQ(ph, "X"); // complete events only
        EXPECT_NE(e.find("ts"), nullptr);
        EXPECT_GT(e.find("dur")->asUint(), 0u);
        const std::string &cat = e.find("cat")->asString();
        if (cat == "exec")
            saw_exec = true;
        else if (cat == "lock")
            saw_lock = true;
        max_end = std::max<sim::Cycles>(
            max_end, e.find("ts")->asUint() + e.find("dur")->asUint());
    }
    EXPECT_TRUE(saw_exec);
    EXPECT_TRUE(saw_meta);
    EXPECT_TRUE(saw_lock); // Q3 takes metalocks
    // 1 cycle == 1 us: no span may end past the execution time.
    EXPECT_LE(max_end, stats.executionTime());
}

// ---------------------------------------- acceptance: json == text tables

TEST(StatsJson, BreakdownMatchesTextTableArithmetic)
{
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 2, 42);
    harness::TraceSet traces = wl.trace(tpcd::QueryId::Q6);
    sim::SimStats stats =
        harness::runCold(sim::MachineConfig::baseline(), traces);

    const harness::TimeBreakdown tb = harness::timeBreakdown(stats);
    obs::Json parsed = obs::Json::parse(obs::toJson(stats).dump(2));
    const obs::Json *bd = parsed.find("breakdown");
    ASSERT_NE(bd, nullptr);

    // The same strings the fig6 text table prints.
    EXPECT_EQ(harness::fixed(bd->find("busyPct")->asDouble()),
              harness::fixed(100 * tb.busy));
    EXPECT_EQ(harness::fixed(bd->find("memPct")->asDouble()),
              harness::fixed(100 * tb.mem));
    EXPECT_EQ(harness::fixed(bd->find("msyncPct")->asDouble()),
              harness::fixed(100 * tb.msync));
    EXPECT_EQ(bd->find("totalCycles")->asUint(), tb.total);

    const harness::MemBreakdown mb = harness::memBreakdown(stats);
    const obs::Json *groups = parsed.find("memByGroupPct");
    ASSERT_NE(groups, nullptr);
    EXPECT_EQ(
        harness::fixed(groups->find("Data")->asDouble()),
        harness::fixed(
            100 * mb.byGroup[static_cast<std::size_t>(sim::ClassGroup::Data)]));
}

TEST(StatsJson, ConfigSerializesMachineParameters)
{
    const sim::MachineConfig cfg = sim::MachineConfig::baseline();
    obs::Json j = obs::toJson(cfg);
    EXPECT_EQ(j.find("nprocs")->asUint(), cfg.nprocs);
    const obs::Json *l1 = j.find("l1");
    ASSERT_NE(l1, nullptr);
    EXPECT_EQ(l1->find("sizeBytes")->asUint(), cfg.l1().sizeBytes);
}
