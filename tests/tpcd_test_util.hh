/**
 * @file
 * Shared helper for TPC-D correctness tests: dump a relation to host rows
 * through the page layer directly, bypassing the executor — an
 * independent reference path for brute-force query evaluation.
 */

#ifndef DSS_TESTS_TPCD_TEST_UTIL_HH
#define DSS_TESTS_TPCD_TEST_UTIL_HH

#include <vector>

#include "db/page.hh"
#include "tpcd/dbgen.hh"

namespace dss {
namespace test {

inline std::vector<std::vector<db::Datum>>
dumpRelation(tpcd::TpcdDb &db, db::RelId rel)
{
    sim::NullSink sink;
    db::TracedMemory mem(db.space(), 0, sink);
    const db::Relation &r = db.catalog().relation(rel);
    std::vector<std::vector<db::Datum>> rows;
    for (db::BlockNo b : r.blocks) {
        sim::Addr page_addr = db.bufmgr().pinPage(mem, rel, b);
        db::PageRef page(mem, page_addr);
        std::uint16_t n = page.numSlots();
        for (std::uint16_t s = 0; s < n; ++s) {
            sim::Addr t = page.tupleAddr(s);
            if (!t)
                continue; // deleted tuple
            std::vector<db::Datum> row;
            for (std::size_t a = 0; a < r.schema.numAttrs(); ++a)
                row.push_back(readAttr(mem, t, r.schema, a));
            rows.push_back(std::move(row));
        }
        db.bufmgr().unpinPage(mem, rel, b);
    }
    return rows;
}

} // namespace test
} // namespace dss

#endif // DSS_TESTS_TPCD_TEST_UTIL_HH
