/**
 * @file
 * Cross-cutting invariants of the whole pipeline, checked on real query
 * workloads: accounting identities between traces and statistics,
 * conservation laws inside the machine, and simulation determinism.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"

namespace {

using namespace dss;

class Invariants
    : public ::testing::TestWithParam<tpcd::QueryId>
{
  protected:
    static harness::Workload &
    wl()
    {
        static harness::Workload w(tpcd::ScaleConfig::tiny(), 4, 42);
        return w;
    }
};

TEST_P(Invariants, StatReadsAccountForLockRmwsAndRetries)
{
    harness::TraceSet traces = wl().trace(GetParam(), 21);
    sim::SimStats stats =
        harness::runCold(sim::MachineConfig::baseline(), traces);
    for (unsigned p = 0; p < traces.size(); ++p) {
        auto c = traces[p].counts();
        // Every traced load is issued once; every lock acquire issues at
        // least one test&set (an exclusive read) — races add retries.
        EXPECT_GE(stats.procs[p].reads, c.reads + c.lockAcqs);
        // Every traced store and every lock release is one buffered store
        // (stores never retry).
        std::uint64_t lock_rels = 0;
        for (const sim::TraceEntry &e : traces[p].entries())
            lock_rels += e.op == sim::Op::LockRel ? 1 : 0;
        EXPECT_EQ(stats.procs[p].writes, c.writes + lock_rels);
    }
}

TEST_P(Invariants, UncontendedRunHasExactlyOneRmwPerLockAcq)
{
    // A single processor never races for a metalock: the identity with
    // the trace is exact.
    sim::TraceStream one = wl().traceOne(GetParam(), 0, 31);
    harness::TraceSet set;
    set.push_back(std::move(one));
    sim::MachineConfig cfg = sim::MachineConfig::baseline();
    cfg.nprocs = 1;
    sim::SimStats stats = harness::runCold(cfg, set);
    auto c = set[0].counts();
    EXPECT_EQ(stats.procs[0].reads, c.reads + c.lockAcqs);
    EXPECT_EQ(stats.procs[0].syncStall, 0u);
}

TEST_P(Invariants, CacheAccountingBalances)
{
    harness::TraceSet traces = wl().trace(GetParam(), 22);
    sim::SimStats stats =
        harness::runCold(sim::MachineConfig::baseline(), traces);
    for (const sim::ProcStats &p : stats.procs) {
        EXPECT_EQ(p.reads, p.l1Hits() + p.l1Misses().total());
        EXPECT_EQ(p.l2Accesses(), p.l1Misses().total());
        EXPECT_EQ(p.l2Accesses(), p.l2Hits() + p.l2Misses().total());
    }
}

TEST_P(Invariants, MemStallSplitsExactlyByGroup)
{
    harness::TraceSet traces = wl().trace(GetParam(), 23);
    sim::SimStats stats =
        harness::runCold(sim::MachineConfig::baseline(), traces);
    for (const sim::ProcStats &p : stats.procs) {
        sim::Cycles sum = 0;
        for (std::size_t g = 0; g < sim::kNumClassGroups; ++g)
            sum += p.memStallByGroup[g];
        EXPECT_EQ(sum, p.memStall);
        EXPECT_EQ(p.pmem() + p.smem(), p.memStall);
    }
}

TEST_P(Invariants, BusyEqualsTraceBusyPlusIssueCycles)
{
    harness::TraceSet traces = wl().trace(GetParam(), 24);
    sim::SimStats stats =
        harness::runCold(sim::MachineConfig::baseline(), traces);
    for (unsigned p = 0; p < traces.size(); ++p) {
        auto c = traces[p].counts();
        // One issue cycle per issued load (including lock RMWs and their
        // retries, already folded into stats.reads) and per issued store,
        // plus the trace's explicit compute cycles. Exact by construction.
        EXPECT_EQ(stats.procs[p].busy,
                  c.busyCycles + stats.procs[p].reads +
                      stats.procs[p].writes);
    }
}

TEST_P(Invariants, SimulationIsDeterministic)
{
    harness::TraceSet traces = wl().trace(GetParam(), 25);
    sim::SimStats a =
        harness::runCold(sim::MachineConfig::baseline(), traces);
    sim::SimStats b =
        harness::runCold(sim::MachineConfig::baseline(), traces);
    ASSERT_EQ(a.procs.size(), b.procs.size());
    for (std::size_t p = 0; p < a.procs.size(); ++p) {
        EXPECT_EQ(a.procs[p].totalCycles(), b.procs[p].totalCycles());
        EXPECT_EQ(a.procs[p].memStall, b.procs[p].memStall);
        EXPECT_EQ(a.procs[p].syncStall, b.procs[p].syncStall);
        EXPECT_EQ(a.procs[p].l1Misses().total(),
                  b.procs[p].l1Misses().total());
        EXPECT_EQ(a.procs[p].l2Misses().total(),
                  b.procs[p].l2Misses().total());
    }
}

TEST_P(Invariants, BiggerCachesNeverAddL2Misses)
{
    harness::TraceSet traces = wl().trace(GetParam(), 26);
    sim::ProcStats small =
        harness::runCold(sim::MachineConfig::baseline(), traces)
            .aggregate();
    sim::ProcStats big =
        harness::runCold(sim::MachineConfig::baseline().withCacheSizes(
                             256 << 10, 8 << 20),
                         traces)
            .aggregate();
    // LRU inclusion-property caches are not strictly monotone in theory,
    // but a 64x capacity jump must not increase total L2 misses on these
    // workloads.
    EXPECT_LE(big.l2Misses().total(), small.l2Misses().total());
}

TEST_P(Invariants, ColdMissesIndependentOfCacheSize)
{
    // Cold misses count first-touches of lines: a pure function of the
    // trace and the line size, not of capacity.
    harness::TraceSet traces = wl().trace(GetParam(), 27);
    auto cold_of = [&](std::size_t l1, std::size_t l2) {
        sim::ProcStats agg =
            harness::runCold(
                sim::MachineConfig::baseline().withCacheSizes(l1, l2),
                traces)
                .aggregate();
        std::uint64_t cold = 0;
        for (std::size_t c = 0; c < sim::kNumDataClasses; ++c)
            cold += agg.l2Misses().of(static_cast<sim::DataClass>(c),
                                    sim::MissType::Cold);
        return cold;
    };
    EXPECT_EQ(cold_of(4 << 10, 128 << 10), cold_of(64 << 10, 2 << 20));
}

INSTANTIATE_TEST_SUITE_P(Queries, Invariants,
                         ::testing::Values(tpcd::QueryId::Q3,
                                           tpcd::QueryId::Q6,
                                           tpcd::QueryId::Q12,
                                           tpcd::QueryId::Q1,
                                           tpcd::QueryId::Q16),
                         [](const auto &info) {
                             return tpcd::queryName(info.param);
                         });

} // namespace
