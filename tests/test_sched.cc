/**
 * @file
 * Unit and property tests for the query-stream scheduler (src/sched/):
 * percentile math (exact on small vectors, non-finite-guarded), the
 * deterministic stream model, the content-addressed trace cache, capture
 * purity, engine invariance of whole streams, cache-hit bit-identity,
 * dispatch-policy ordering, and the cold-cache repeat-instance
 * regression for state leaking across back-to-back instances.
 *
 * The simulation-backed tests share one tiny-scale Workload and one
 * TraceCache through a test fixture: stream captures are pure (that is
 * itself asserted here), so sharing cannot couple the tests, and it
 * keeps the suite fast.
 */

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "harness/workload.hh"
#include "obs/registry.hh"
#include "obs/stats_json.hh"
#include "sched/latency.hh"
#include "sched/scheduler.hh"
#include "sched/stream.hh"
#include "sched/trace_cache.hh"
#include "sim/check.hh"

namespace {

using namespace dss;

// ---------------------------------------------------------------- latency

TEST(Percentile, ExactOnSmallVectors)
{
    const std::vector<double> v = {10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(sched::percentile(v, 0), 10);
    EXPECT_DOUBLE_EQ(sched::percentile(v, 100), 40);
    // rank = 0.5 * 3 = 1.5 -> halfway between 20 and 30.
    EXPECT_DOUBLE_EQ(sched::percentile(v, 50), 25);
    // rank = 0.25 * 3 = 0.75 -> 10 + 0.75 * 10.
    EXPECT_DOUBLE_EQ(sched::percentile(v, 25), 17.5);
    EXPECT_DOUBLE_EQ(sched::percentile({7}, 95), 7);
}

TEST(Percentile, UnsortedInputIsSorted)
{
    EXPECT_DOUBLE_EQ(sched::percentile({30, 10, 40, 20}, 50), 25);
}

TEST(Percentile, EmptyAndNonFinite)
{
    EXPECT_DOUBLE_EQ(sched::percentile({}, 50), 0);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_DOUBLE_EQ(sched::percentile({nan, inf, -inf}, 50), 0);
    // Non-finite values are discarded, not counted.
    EXPECT_DOUBLE_EQ(sched::percentile({nan, 5.0, inf}, 50), 5);
}

TEST(Percentile, ClampsP)
{
    const std::vector<double> v = {1, 2, 3};
    EXPECT_DOUBLE_EQ(sched::percentile(v, -10), 1);
    EXPECT_DOUBLE_EQ(sched::percentile(v, 1000), 3);
}

TEST(LatencySummary, SummarizesFiniteValues)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    sched::LatencySummary s = sched::summarize({4, 1, nan, 2, 3});
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_DOUBLE_EQ(s.p50, 2.5);
    EXPECT_DOUBLE_EQ(s.max, 4);

    sched::LatencySummary empty = sched::summarize({});
    EXPECT_EQ(empty.count, 0u);
    EXPECT_DOUBLE_EQ(empty.mean, 0);
    EXPECT_DOUBLE_EQ(empty.p99, 0);
}

// ----------------------------------------------------------- stream model

TEST(StreamModel, InstancesAreDeterministic)
{
    sched::StreamConfig cfg;
    cfg.instances = 16;
    cfg.seed = 7;
    cfg.mode = sched::ArrivalMode::Open;
    cfg.meanInterarrival = 100000;
    const auto a = sched::makeInstances(cfg);
    const auto b = sched::makeInstances(cfg);
    ASSERT_EQ(a.size(), 16u);
    for (unsigned i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].query, b[i].query);
        EXPECT_EQ(a[i].paramSeed, b[i].paramSeed);
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        if (i > 0) {
            EXPECT_GT(a[i].arrival, a[i - 1].arrival)
                << "open-loop arrivals must be strictly increasing";
        }
    }

    cfg.seed = 8; // a different seed must change the stream
    const auto c = sched::makeInstances(cfg);
    bool any_diff = false;
    for (unsigned i = 0; i < c.size(); ++i)
        any_diff |= c[i].arrival != a[i].arrival ||
                    c[i].query != a[i].query;
    EXPECT_TRUE(any_diff);
}

TEST(StreamModel, ClosedLoopClientAssignment)
{
    sched::StreamConfig cfg;
    cfg.instances = 7;
    cfg.mode = sched::ArrivalMode::Closed;
    cfg.clients = 3;
    const auto v = sched::makeInstances(cfg);
    for (const sched::QueryInstance &q : v) {
        EXPECT_EQ(q.client, q.id % 3);
        EXPECT_EQ(q.arrival, 0u); // filled in by the scheduler
    }
}

TEST(StreamModel, MixWeightsAreRespected)
{
    sched::StreamConfig cfg;
    cfg.instances = 64;
    cfg.mix = {{tpcd::QueryId::Q6, 1}};
    for (const sched::QueryInstance &q : sched::makeInstances(cfg))
        EXPECT_EQ(q.query, tpcd::QueryId::Q6);
}

TEST(StreamModel, ServiceRankOrdersTheTracedQueries)
{
    EXPECT_LT(sched::serviceRank(tpcd::QueryId::Q6),
              sched::serviceRank(tpcd::QueryId::Q3));
    EXPECT_LT(sched::serviceRank(tpcd::QueryId::Q3),
              sched::serviceRank(tpcd::QueryId::Q12));
}

TEST(StreamModel, ServiceRankFallsBackToTaxonomy)
{
    // Untraced queries rank behind the calibrated three, ordered by the
    // paper's access-pattern taxonomy.
    EXPECT_EQ(sched::serviceRank(tpcd::QueryId::Q1), 3u);  // Sequential
    EXPECT_EQ(sched::serviceRank(tpcd::QueryId::Q2), 4u);  // Index
    EXPECT_EQ(sched::serviceRank(tpcd::QueryId::Q9), 5u);  // Mixed
}

TEST(StreamModel, RejectsDegenerateConfigs)
{
    sched::StreamConfig zero_weight;
    for (sched::MixEntry &m : zero_weight.mix)
        m.weight = 0;
    EXPECT_THROW(sched::makeInstances(zero_weight), std::invalid_argument);

    sched::StreamConfig no_clients;
    no_clients.mode = sched::ArrivalMode::Closed;
    no_clients.clients = 0;
    EXPECT_THROW(sched::makeInstances(no_clients), std::invalid_argument);
}

TEST(StreamModel, ParsePolicy)
{
    EXPECT_EQ(sched::parsePolicy("fifo"), sched::Policy::Fifo);
    EXPECT_EQ(sched::parsePolicy("shortest"),
              sched::Policy::ShortestClass);
    EXPECT_FALSE(sched::parsePolicy("sjf").has_value());
}

// ------------------------------------------------------------ trace cache

TEST(TraceCacheUnit, HitSkipsCapture)
{
    sched::TraceCache cache;
    const sched::TraceCache::Key key{tpcd::QueryId::Q6, 1, 0};
    int captures = 0;
    auto capture = [&] {
        ++captures;
        sim::TraceStream s;
        s.record(sim::TraceEntry::read(0x1000, sim::DataClass::Data, 4));
        return s;
    };
    const sim::TraceStream &a = cache.fetch(key, capture);
    const sim::TraceStream &b = cache.fetch(key, capture);
    EXPECT_EQ(captures, 1);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_EQ(cache.stats().traceEntries, a.entries().size());
    EXPECT_EQ(cache.contentHashOf(key), a.contentHash());
    EXPECT_NE(cache.lookup(key), nullptr);

    // A different processor slot is a different key.
    const sched::TraceCache::Key other{tpcd::QueryId::Q6, 1, 1};
    EXPECT_EQ(cache.lookup(other), nullptr);
    cache.fetch(other, capture);
    EXPECT_EQ(captures, 2);

    cache.clear();
    EXPECT_EQ(cache.lookup(key), nullptr);
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().hits, 1u) << "history survives clear()";
}

TEST(TraceCacheUnit, JsonReportsStatsAndStoredTraces)
{
    sched::TraceCache cache;
    auto capture = [] {
        sim::TraceStream s;
        s.record(sim::TraceEntry::read(0x3000, sim::DataClass::Data, 4));
        s.record(sim::TraceEntry::read(0x3040, sim::DataClass::Index, 4));
        return s;
    };
    const sched::TraceCache::Key key{tpcd::QueryId::Q12, 7, 3};
    const sim::TraceStream &stored = cache.fetch(key, capture);
    cache.fetch(key, capture);

    obs::Json j = cache.toJson();
    EXPECT_EQ(j["hits"].dump(), "1");
    EXPECT_EQ(j["misses"].dump(), "1");
    EXPECT_EQ(j["entries"].dump(), "1");
    EXPECT_EQ(j["trace_entries"].dump(), "2");
    ASSERT_EQ(j["stored"].size(), 1u);
    obs::Json e = j["stored"].at(0);
    EXPECT_EQ(e["query"].dump(), "\"Q12\"");
    EXPECT_EQ(e["param_seed"].dump(), "7");
    EXPECT_EQ(e["proc"].dump(), "3");
    EXPECT_EQ(e["entries"].dump(), "2");
    EXPECT_EQ(e["hash"].dump(),
              obs::Json(stored.contentHash()).dump());
}

TEST(TraceCacheUnit, RegistersCounters)
{
    sched::TraceCache cache;
    obs::Registry reg;
    cache.registerStats(reg);
    cache.fetch({tpcd::QueryId::Q3, 9, 2}, [] {
        sim::TraceStream s;
        s.record(sim::TraceEntry::read(0x2000, sim::DataClass::Data, 4));
        return s;
    });
    EXPECT_EQ(reg.counterValue("cache.misses"), 1u);
    EXPECT_EQ(reg.counterValue("cache.hits"), 0u);
    EXPECT_EQ(reg.counterValue("cache.entries"), 1u);
    EXPECT_EQ(reg.counterValue("cache.evictions"), 0u);
}

TEST(TraceCacheUnit, BoundedCacheEvictsLeastRecentlyFetched)
{
    sched::TraceCache cache(2);
    EXPECT_EQ(cache.capacity(), 2u);
    auto capture = [](sim::Addr addr) {
        return [addr] {
            sim::TraceStream s;
            s.record(sim::TraceEntry::read(addr, sim::DataClass::Data, 4));
            return s;
        };
    };
    const sched::TraceCache::Key a{tpcd::QueryId::Q3, 1, 0};
    const sched::TraceCache::Key b{tpcd::QueryId::Q6, 2, 0};
    const sched::TraceCache::Key c{tpcd::QueryId::Q12, 3, 0};

    cache.fetch(a, capture(0x1000));
    cache.fetch(b, capture(0x2000));
    EXPECT_EQ(cache.stats().entries, 2u);
    EXPECT_EQ(cache.stats().evictions, 0u);

    // Touch a: b becomes the least recently fetched.
    cache.fetch(a, capture(0x1000));
    EXPECT_EQ(cache.stats().hits, 1u);

    // Inserting c evicts b, not a.
    cache.fetch(c, capture(0x3000));
    EXPECT_EQ(cache.stats().entries, 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.lookup(b), nullptr);
    EXPECT_NE(cache.lookup(a), nullptr);
    EXPECT_NE(cache.lookup(c), nullptr);

    // Re-fetching b is a miss that re-captures and evicts a (the LRU
    // after c's insert). Purity means the recapture reproduces the
    // evicted bytes, so eviction only ever changes the stats.
    const std::uint64_t b_hash = cache.fetch(b, capture(0x2000)).contentHash();
    EXPECT_EQ(cache.stats().misses, 4u);
    EXPECT_EQ(cache.stats().evictions, 2u);
    EXPECT_EQ(cache.lookup(a), nullptr);
    EXPECT_EQ(cache.contentHashOf(b), b_hash);

    // traceEntries tracks only what is currently stored.
    EXPECT_EQ(cache.stats().traceEntries, 2u);

    obs::Json j = cache.toJson();
    EXPECT_EQ(j["evictions"].dump(), "2");
    EXPECT_EQ(j["capacity"].dump(), "2");
}

TEST(TraceCacheUnit, UnboundedCacheNeverEvicts)
{
    sched::TraceCache cache; // capacity 0 = unbounded
    for (std::uint64_t seed = 0; seed < 16; ++seed)
        cache.fetch({tpcd::QueryId::Q6, seed, 0}, [] {
            sim::TraceStream s;
            s.record(sim::TraceEntry::read(0x4000, sim::DataClass::Data, 4));
            return s;
        });
    EXPECT_EQ(cache.stats().entries, 16u);
    EXPECT_EQ(cache.stats().evictions, 0u);
    EXPECT_EQ(cache.toJson().find("capacity"), nullptr)
        << "capacity key is for bounded caches only";
}

// ------------------------------------------------- simulation-backed tests

/** Shared tiny workload + cache: captures are pure, so sharing is safe. */
class SchedSim : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        wl_ = new harness::Workload(tpcd::ScaleConfig::tiny(), 4);
        cache_ = new sched::TraceCache;
    }

    static void TearDownTestSuite()
    {
        delete cache_;
        cache_ = nullptr;
        delete wl_;
        wl_ = nullptr;
    }

    static sched::StreamResult run(const sched::StreamConfig &scfg,
                                   const sim::EngineConfig &engine,
                                   sched::TraceCache *cache,
                                   unsigned nprocs = 4)
    {
        harness::RunOptions opts;
        opts.engine = engine;
        sim::MachineConfig cfg = sim::MachineConfig::baseline();
        cfg.nprocs = nprocs;
        sched::StreamScheduler s(*wl_, cfg, scfg, opts, cache);
        return s.run();
    }

    static harness::Workload *wl_;
    static sched::TraceCache *cache_;
};

harness::Workload *SchedSim::wl_ = nullptr;
sched::TraceCache *SchedSim::cache_ = nullptr;

TEST_F(SchedSim, StreamCaptureIsPure)
{
    // Byte-identical repeat captures, even with other captures between.
    sim::TraceStream a = wl_->streamTrace(tpcd::QueryId::Q3, 5, 1);
    sim::TraceStream other = wl_->streamTrace(tpcd::QueryId::Q12, 6, 0);
    sim::TraceStream b = wl_->streamTrace(tpcd::QueryId::Q3, 5, 1);
    ASSERT_EQ(a.entries().size(), b.entries().size());
    EXPECT_EQ(a.contentHash(), b.contentHash());
    for (std::size_t i = 0; i < a.entries().size(); ++i) {
        const sim::TraceEntry &x = a.entries()[i];
        const sim::TraceEntry &y = b.entries()[i];
        ASSERT_TRUE(x.addr == y.addr && x.op == y.op && x.cls == y.cls &&
                    x.size == y.size && x.extra == y.extra)
            << "first divergence at entry " << i;
    }
    EXPECT_NE(a.contentHash(), other.contentHash());
}

TEST_F(SchedSim, StreamIsEngineInvariant)
{
    sched::StreamConfig scfg;
    scfg.instances = 6;
    scfg.seed = 42;
    scfg.mode = sched::ArrivalMode::Closed;
    scfg.clients = 3;
    // A fresh cache per run so even the report's cache-accounting block
    // must match: the entire document is engine-invariant.
    sched::TraceCache c1, c2, c3;
    const std::string seq =
        toJson(run(scfg, sim::EngineConfig::seq(), &c1), true).dump();
    const std::string par1 =
        toJson(run(scfg, sim::EngineConfig::par(1), &c2), true).dump();
    const std::string par3 =
        toJson(run(scfg, sim::EngineConfig::par(3), &c3), true).dump();
    EXPECT_EQ(seq, par1);
    EXPECT_EQ(par1, par3);
}

TEST_F(SchedSim, OpenLoopStreamIsEngineInvariant)
{
    sched::StreamConfig scfg;
    scfg.instances = 5;
    scfg.seed = 11;
    scfg.mode = sched::ArrivalMode::Open;
    scfg.meanInterarrival = 300000;
    // The suite-shared cache serves both runs here, so cache accounting
    // legitimately differs (the second run hits what the first filled);
    // every simulated number must still match.
    obs::Json seq = toJson(run(scfg, sim::EngineConfig::seq(), cache_), true);
    obs::Json par2 =
        toJson(run(scfg, sim::EngineConfig::par(2), cache_), true);
    EXPECT_EQ(seq["records"].dump(), par2["records"].dump());
    EXPECT_EQ(seq["summary"].dump(), par2["summary"].dump());
}

TEST_F(SchedSim, CacheHitPathIsBitIdenticalToMissPath)
{
    sched::StreamConfig scfg;
    scfg.instances = 8;
    scfg.seed = 3;
    scfg.mode = sched::ArrivalMode::Closed;
    scfg.clients = 4;
    scfg.paramVariants = 2; // force repeats -> cache hits

    sched::TraceCache fresh;
    sched::StreamResult with_cache =
        run(scfg, sim::EngineConfig::seq(), &fresh);
    sched::StreamResult without =
        run(scfg, sim::EngineConfig::seq(), nullptr);

    // Cache accounting differs by construction...
    EXPECT_EQ(without.cache.hits + without.cache.misses, 0u);
    EXPECT_GT(fresh.stats().hits + fresh.stats().misses, 0u);
    // ...but every simulated number is bit-identical: per-instance
    // records (full SimStats included) and the derived summaries.
    obs::Json a = toJson(with_cache, true);
    obs::Json b = toJson(without, true);
    EXPECT_EQ(a["records"].dump(), b["records"].dump());
    EXPECT_EQ(a["summary"].dump(), b["summary"].dump());

    // Run the cached stream again: now everything hits, still identical.
    sched::StreamResult warm = run(scfg, sim::EngineConfig::seq(), &fresh);
    obs::Json w = toJson(warm, true);
    EXPECT_EQ(w["records"].dump(), a["records"].dump());
    EXPECT_GT(warm.cache.hits, with_cache.cache.hits);
}

TEST_F(SchedSim, PolicyOrdersDispatchDeterministically)
{
    // One processor, every instance queued at cycle 0: FIFO must run in
    // id order; shortest-class in (serviceRank, id) order.
    sched::StreamConfig scfg;
    scfg.instances = 6;
    scfg.seed = 9;
    scfg.mode = sched::ArrivalMode::Closed;
    scfg.clients = 6; // each instance is a client's first -> all at 0

    scfg.policy = sched::Policy::Fifo;
    sched::StreamResult fifo =
        run(scfg, sim::EngineConfig::seq(), cache_, 1);
    ASSERT_EQ(fifo.records.size(), 6u);
    for (unsigned i = 0; i < 6; ++i)
        EXPECT_EQ(fifo.records[i].inst.id, i);

    scfg.policy = sched::Policy::ShortestClass;
    sched::StreamResult sc = run(scfg, sim::EngineConfig::seq(), cache_, 1);
    std::vector<sched::QueryInstance> expect = sched::makeInstances(scfg);
    std::stable_sort(expect.begin(), expect.end(),
                     [](const sched::QueryInstance &a,
                        const sched::QueryInstance &b) {
                         return sched::serviceRank(a.query) <
                                sched::serviceRank(b.query);
                     });
    ASSERT_EQ(sc.records.size(), 6u);
    for (unsigned i = 0; i < 6; ++i)
        EXPECT_EQ(sc.records[i].inst.id, expect[i].id)
            << "shortest-class dispatch order diverged at slot " << i;
}

TEST_F(SchedSim, ColdCacheRepeatInstancesAreIdentical)
{
    // Regression for state carried across back-to-back instances: the
    // same query/parameters run twice in one stream, machine memory
    // flushed before each instance, must produce identical per-instance
    // statistics — any xid-counter, lock-hash or write-buffer carry-over
    // between instances shows up as a diff here.
    sched::StreamConfig scfg;
    scfg.instances = 2;
    scfg.seed = 21;
    scfg.mode = sched::ArrivalMode::Closed;
    scfg.clients = 1; // serialize on one client
    scfg.mix = {{tpcd::QueryId::Q3, 1}};
    scfg.paramVariants = 1; // both instances: identical parameters
    scfg.coldCache = true;
    scfg.policy = sched::Policy::Fifo;

    sched::StreamResult r = run(scfg, sim::EngineConfig::seq(), nullptr, 1);
    ASSERT_EQ(r.records.size(), 2u);
    const sched::InstanceRecord &a = r.records[0];
    const sched::InstanceRecord &b = r.records[1];
    EXPECT_EQ(a.traceHash, b.traceHash);
    EXPECT_EQ(a.service, b.service);
    EXPECT_EQ(obs::toJson(a.stats).dump(), obs::toJson(b.stats).dump());
}

TEST_F(SchedSim, CheckedStreamIsViolationFree)
{
    sched::StreamConfig scfg;
    scfg.instances = 4;
    scfg.seed = 13;
    scfg.mode = sched::ArrivalMode::Closed;
    scfg.clients = 2;

    sim::InvariantChecker checker;
    harness::RunOptions opts;
    opts.engine = sim::EngineConfig::par(2);
    opts.checker = &checker;
    sim::MachineConfig cfg = sim::MachineConfig::baseline();
    sched::StreamScheduler s(*wl_, cfg, scfg, opts, cache_);
    sched::StreamResult r = s.run();
    EXPECT_EQ(r.records.size(), 4u);
    EXPECT_EQ(checker.totalViolations(), 0u);
}

TEST_F(SchedSim, RegistryExportsSchedAndCacheCounters)
{
    sched::StreamConfig scfg;
    scfg.instances = 3;
    scfg.seed = 2;
    scfg.mode = sched::ArrivalMode::Open;
    scfg.meanInterarrival = 400000;

    harness::RunOptions opts;
    opts.engine = sim::EngineConfig::seq();
    obs::Json snapshot;
    opts.registrySnapshot = &snapshot;
    sched::TraceCache fresh;
    sched::StreamScheduler s(*wl_, sim::MachineConfig::baseline(), scfg,
                             opts, &fresh);
    s.run();
    ASSERT_TRUE(snapshot.isObject());
    ASSERT_NE(snapshot.find("sched.instances"), nullptr);
    EXPECT_EQ(snapshot.find("sched.instances")->asUint(), 3u);
    EXPECT_EQ(snapshot.find("sched.completed")->asUint(), 3u);
    ASSERT_NE(snapshot.find("cache.misses"), nullptr);
    EXPECT_GT(snapshot.find("cache.misses")->asUint(), 0u);
    ASSERT_NE(snapshot.find("proc0.busy"), nullptr);
}

TEST_F(SchedSim, RejectsOversizedMachine)
{
    sched::StreamConfig scfg;
    harness::RunOptions opts;
    sim::MachineConfig cfg = sim::MachineConfig::baseline();
    cfg.nprocs = 8; // workload only provisions 4 private heaps
    EXPECT_THROW(
        sched::StreamScheduler(*wl_, cfg, scfg, opts, cache_),
        std::invalid_argument);
}

} // namespace
