/**
 * @file
 * Tests for the TPC-D generator (cardinalities, domains, determinism) and
 * the 17 query plans (Table 1 operator profiles, result correctness for
 * the paper's Q3/Q6/Q12 against independent brute-force evaluation).
 */

#include <algorithm>
#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "db/page.hh"
#include "harness/workload.hh"
#include "tpcd/queries.hh"

namespace {

using namespace dss;
using namespace dss::db;
using namespace dss::tpcd;

/** Read every tuple of a relation into host rows, bypassing the executor
 * (independent brute-force reference path). */
std::vector<std::vector<Datum>>
dumpRelation(TpcdDb &db, RelId rel)
{
    sim::NullSink sink;
    TracedMemory mem(db.space(), 0, sink);
    const Relation &r = db.catalog().relation(rel);
    std::vector<std::vector<Datum>> rows;
    for (BlockNo b : r.blocks) {
        sim::Addr page_addr = db.bufmgr().pinPage(mem, rel, b);
        PageRef page(mem, page_addr);
        std::uint16_t n = page.numSlots();
        for (std::uint16_t s = 0; s < n; ++s) {
            sim::Addr t = page.tupleAddr(s);
            if (!t)
                continue; // deleted tuple
            std::vector<Datum> row;
            for (std::size_t a = 0; a < r.schema.numAttrs(); ++a)
                row.push_back(readAttr(mem, t, r.schema, a));
            rows.push_back(std::move(row));
        }
        db.bufmgr().unpinPage(mem, rel, b);
    }
    return rows;
}

TEST(DateNum, KnownDates)
{
    EXPECT_EQ(dateNum(1992, 1, 1), 0);
    EXPECT_EQ(dateNum(1992, 1, 31), 30);
    EXPECT_EQ(dateNum(1992, 3, 1), 60);  // 1992 is a leap year
    EXPECT_EQ(dateNum(1993, 1, 1), 366);
    EXPECT_EQ(dateNum(1994, 1, 1), 731);
    EXPECT_EQ(dateNum(1996, 3, 1), dateNum(1996, 2, 1) + 29); // leap
    EXPECT_EQ(dateNum(1997, 3, 1), dateNum(1997, 2, 1) + 28);
}

class TinyDb : public ::testing::Test
{
  protected:
    TpcdDb db{ScaleConfig::tiny(), 2, 42};
};

TEST_F(TinyDb, CardinalitiesMatchScale)
{
    ScaleConfig s = ScaleConfig::tiny();
    EXPECT_EQ(db.catalog().relation(db.customer).numTuples, s.customers);
    EXPECT_EQ(db.catalog().relation(db.orders).numTuples, s.orders());
    EXPECT_EQ(db.catalog().relation(db.part).numTuples, s.parts);
    EXPECT_EQ(db.catalog().relation(db.supplier).numTuples, s.suppliers);
    EXPECT_EQ(db.catalog().relation(db.partsupp).numTuples,
              s.parts * s.partsuppPerPart);
    EXPECT_EQ(db.catalog().relation(db.nation).numTuples, 25u);
    EXPECT_EQ(db.catalog().relation(db.region).numTuples, 5u);

    // Lineitem: 1..7 lines per order, so strictly between 1x and 7x.
    std::uint64_t li = db.catalog().relation(db.lineitem).numTuples;
    EXPECT_GT(li, s.orders());
    EXPECT_LT(li, 7u * s.orders());
}

TEST_F(TinyDb, LineitemDominatesTheDatabase)
{
    // Paper Section 3.2: lineitem is ~70% of the database data.
    const Relation &li = db.catalog().relation(db.lineitem);
    std::size_t li_blocks = li.blocks.size();
    std::size_t table_blocks = 0;
    for (RelId r : {db.customer, db.orders, db.lineitem, db.part,
                    db.supplier, db.partsupp, db.nation, db.region})
        table_blocks += db.catalog().relation(r).blocks.size();
    EXPECT_GT(static_cast<double>(li_blocks) / table_blocks, 0.5);
}

TEST_F(TinyDb, ValueDomainsAreTpcd)
{
    auto lineitem = dumpRelation(db, db.lineitem);
    const Schema &s = db.catalog().relation(db.lineitem).schema;
    const auto qty = s.indexOf("l_quantity");
    const auto disc = s.indexOf("l_discount");
    const auto sdate = s.indexOf("l_shipdate");
    const auto cdate = s.indexOf("l_commitdate");
    const auto rdate = s.indexOf("l_receiptdate");
    const auto mode = s.indexOf("l_shipmode");
    for (const auto &row : lineitem) {
        EXPECT_GE(datumReal(row[qty]), 1.0);
        EXPECT_LE(datumReal(row[qty]), 50.0);
        EXPECT_GE(datumReal(row[disc]), 0.0);
        EXPECT_LE(datumReal(row[disc]), 0.10001);
        EXPECT_GE(datumInt(row[sdate]), dateNum(1992, 1, 1));
        EXPECT_LE(datumInt(row[sdate]), dateNum(1998, 12, 31));
        EXPECT_LT(datumInt(row[sdate]), datumInt(row[rdate]));
        EXPECT_GT(datumInt(row[cdate]), dateNum(1992, 1, 1));
        std::string m = datumStr(row[mode]);
        bool known = false;
        for (const char *km : kShipModes)
            known = known || m == km;
        EXPECT_TRUE(known) << "unknown shipmode " << m;
    }
}

TEST_F(TinyDb, ForeignKeysResolve)
{
    ScaleConfig s = ScaleConfig::tiny();
    auto orders = dumpRelation(db, db.orders);
    const Schema &os = db.catalog().relation(db.orders).schema;
    for (const auto &row : orders) {
        auto ck = datumInt(row[os.indexOf("o_custkey")]);
        EXPECT_GE(ck, 1);
        EXPECT_LE(ck, static_cast<std::int64_t>(s.customers));
    }
    auto lineitem = dumpRelation(db, db.lineitem);
    const Schema &ls = db.catalog().relation(db.lineitem).schema;
    for (const auto &row : lineitem) {
        auto ok = datumInt(row[ls.indexOf("l_orderkey")]);
        EXPECT_GE(ok, 1);
        EXPECT_LE(ok, static_cast<std::int64_t>(s.orders()));
        auto pk = datumInt(row[ls.indexOf("l_partkey")]);
        EXPECT_GE(pk, 1);
        EXPECT_LE(pk, static_cast<std::int64_t>(s.parts));
    }
}

TEST_F(TinyDb, MktSegmentsCoverTheDomain)
{
    auto cust = dumpRelation(db, db.customer);
    const Schema &cs = db.catalog().relation(db.customer).schema;
    std::map<std::string, int> seg_count;
    for (const auto &row : cust)
        ++seg_count[datumStr(row[cs.indexOf("c_mktsegment")])];
    EXPECT_GE(seg_count.size(), 4u); // 40 customers over 5 segments
    for (const auto &[seg, n] : seg_count) {
        bool known = false;
        for (const char *km : kMktSegments)
            known = known || seg == km;
        EXPECT_TRUE(known) << seg;
        EXPECT_GT(n, 0);
    }
}

TEST(TpcdGen, DeterministicForSameSeed)
{
    TpcdDb a(ScaleConfig::tiny(), 1, 7);
    TpcdDb b(ScaleConfig::tiny(), 1, 7);
    auto ra = dumpRelation(a, a.lineitem);
    auto rb = dumpRelation(b, b.lineitem);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i)
        for (std::size_t c = 0; c < ra[i].size(); ++c)
            EXPECT_EQ(compareDatum(ra[i][c], rb[i][c]), 0);
}

TEST(TpcdGen, DifferentSeedsDiffer)
{
    TpcdDb a(ScaleConfig::tiny(), 1, 7);
    TpcdDb b(ScaleConfig::tiny(), 1, 8);
    auto ra = dumpRelation(a, a.lineitem);
    auto rb = dumpRelation(b, b.lineitem);
    bool any_diff = ra.size() != rb.size();
    for (std::size_t i = 0; !any_diff && i < ra.size(); ++i)
        for (std::size_t c = 0; !any_diff && c < ra[i].size(); ++c)
            any_diff = compareDatum(ra[i][c], rb[i][c]) != 0;
    EXPECT_TRUE(any_diff);
}

TEST_F(TinyDb, Table1OperatorProfiles)
{
    // The exact operator matrix of the paper's Table 1.
    struct Row
    {
        QueryId q;
        const char *ops; // subset of "SS IS NL M H Sort Group Aggr"
    };
    const Row expected[] = {
        {QueryId::Q1, "SS Sort Group Aggr"},
        {QueryId::Q2, "IS NL Sort"},
        {QueryId::Q3, "IS NL Sort Group Aggr"},
        {QueryId::Q4, "SS Sort Group Aggr"},
        {QueryId::Q5, "IS NL Sort Group Aggr"},
        {QueryId::Q6, "SS Aggr"},
        {QueryId::Q7, "SS IS NL H"},
        {QueryId::Q8, "IS NL"},
        {QueryId::Q9, "SS IS NL H"},
        {QueryId::Q10, "IS NL Sort Group Aggr"},
        {QueryId::Q11, "IS NL Sort Group Aggr"},
        {QueryId::Q12, "SS IS M Sort Group"},
        {QueryId::Q13, "SS IS NL Sort Group Aggr"},
        {QueryId::Q14, "SS IS NL Aggr"},
        {QueryId::Q15, "SS Sort Group"},
        {QueryId::Q16, "SS H Sort Group Aggr"},
        {QueryId::Q17, "SS IS NL Aggr"},
    };
    for (const Row &e : expected) {
        NodePtr plan = buildQuery(db, e.q, 1);
        std::vector<LogicalOp> ops = collectLogicalOps(*plan);
        std::string got;
        for (LogicalOp op : {LogicalOp::SeqScanSelect,
                             LogicalOp::IndexScanSelect,
                             LogicalOp::NestedLoopJoin, LogicalOp::MergeJoin,
                             LogicalOp::HashJoin, LogicalOp::Sort,
                             LogicalOp::Group, LogicalOp::Aggregate}) {
            if (std::find(ops.begin(), ops.end(), op) != ops.end()) {
                if (!got.empty())
                    got += ' ';
                got += logicalOpName(op);
            }
        }
        EXPECT_EQ(got, e.ops) << queryName(e.q);
    }
}

TEST_F(TinyDb, QueryClassesMatchPaperGrouping)
{
    EXPECT_EQ(queryClassOf(QueryId::Q3), QueryClass::Index);
    EXPECT_EQ(queryClassOf(QueryId::Q6), QueryClass::Sequential);
    EXPECT_EQ(queryClassOf(QueryId::Q12), QueryClass::Mixed);
    EXPECT_EQ(queryClassOf(QueryId::Q1), QueryClass::Sequential);
    EXPECT_EQ(queryClassOf(QueryId::Q8), QueryClass::Index);
}

/** All 17 queries execute end-to-end on the tiny database. */
class AllQueries : public ::testing::TestWithParam<int>
{};

TEST_P(AllQueries, RunsAndYieldsRows)
{
    harness::Workload wl(ScaleConfig::tiny(), 1, 42);
    auto q = static_cast<QueryId>(GetParam());
    auto rows = wl.execute(q, /*param_seed=*/3);
    // Result sanity: schemas are non-empty, values materialize.
    if (!rows.empty()) {
        EXPECT_GT(rows[0].size(), 0u);
    }
    // Locks all released at end of query.
    sim::NullSink sink;
    TracedMemory mem(wl.db().space(), 0, sink);
    for (RelId r :
         {wl.db().customer, wl.db().orders, wl.db().lineitem,
          wl.db().part, wl.db().supplier, wl.db().partsupp})
        EXPECT_EQ(wl.db().lockmgr().holdersOf(mem, r), 0)
            << "relation " << r << " still locked";
}

INSTANTIATE_TEST_SUITE_P(Q1toQ17, AllQueries, ::testing::Range(1, 18));

/** Q6 against an independent brute-force evaluation. */
TEST(QueryCorrectness, Q6MatchesBruteForce)
{
    TpcdDb db(ScaleConfig::tiny(), 1, 42);
    Q6Params p = Q6Params::fromSeed(5);

    auto lineitem = dumpRelation(db, db.lineitem);
    const Schema &s = db.catalog().relation(db.lineitem).schema;
    double expected = 0;
    for (const auto &row : lineitem) {
        auto sd = datumInt(row[s.indexOf("l_shipdate")]);
        double d = datumReal(row[s.indexOf("l_discount")]);
        double q = datumReal(row[s.indexOf("l_quantity")]);
        if (sd >= p.dateLo && sd < p.dateHi && d >= p.discount - 0.011 &&
            d <= p.discount + 0.011 && q < p.quantity) {
            expected += datumReal(row[s.indexOf("l_extendedprice")]) * d;
        }
    }

    sim::NullSink sink;
    TracedMemory mem(db.space(), 0, sink);
    PrivateHeap priv(db.space(), 0);
    ExecContext ctx{mem, db.catalog(), priv, 1};
    NodePtr plan = buildQ6(db, p);
    auto rows = runQuery(ctx, *plan);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_NEAR(datumReal(rows[0][0]), expected, 1e-6);
}

/** Q3 against an independent brute-force three-way join. */
TEST(QueryCorrectness, Q3MatchesBruteForce)
{
    TpcdDb db(ScaleConfig::tiny(), 1, 42);
    Q3Params p = Q3Params::fromSeed(5);

    auto cust = dumpRelation(db, db.customer);
    auto orders = dumpRelation(db, db.orders);
    auto lineitem = dumpRelation(db, db.lineitem);
    const Schema &cs = db.catalog().relation(db.customer).schema;
    const Schema &os = db.catalog().relation(db.orders).schema;
    const Schema &ls = db.catalog().relation(db.lineitem).schema;

    // revenue by (orderkey, orderdate, shippriority)
    std::map<std::int64_t, double> revenue;
    for (const auto &c : cust) {
        if (datumStr(c[cs.indexOf("c_mktsegment")]) !=
            kMktSegments[p.segment])
            continue;
        auto ck = datumInt(c[cs.indexOf("c_custkey")]);
        for (const auto &o : orders) {
            if (datumInt(o[os.indexOf("o_custkey")]) != ck)
                continue;
            if (datumInt(o[os.indexOf("o_orderdate")]) >= p.date1)
                continue;
            auto ok = datumInt(o[os.indexOf("o_orderkey")]);
            for (const auto &l : lineitem) {
                if (datumInt(l[ls.indexOf("l_orderkey")]) != ok)
                    continue;
                if (datumInt(l[ls.indexOf("l_shipdate")]) <= p.date2)
                    continue;
                revenue[ok] +=
                    datumReal(l[ls.indexOf("l_extendedprice")]) *
                    (1 - datumReal(l[ls.indexOf("l_discount")]));
            }
        }
    }

    sim::NullSink sink;
    TracedMemory mem(db.space(), 0, sink);
    PrivateHeap priv(db.space(), 0);
    ExecContext ctx{mem, db.catalog(), priv, 1};
    NodePtr plan = buildQ3(db, p);
    auto rows = runQuery(ctx, *plan);

    ASSERT_EQ(rows.size(), revenue.size());
    const Schema &out = plan->schema();
    double prev = std::numeric_limits<double>::infinity();
    for (const auto &r : rows) {
        auto ok = datumInt(r[out.indexOf("o_orderkey")]);
        double rev = datumReal(r[out.indexOf("revenue")]);
        ASSERT_TRUE(revenue.count(ok)) << "unexpected order " << ok;
        EXPECT_NEAR(rev, revenue[ok], 1e-6);
        EXPECT_LE(rev, prev + 1e-9); // sorted by revenue desc
        prev = rev;
    }
}

/** Q12 against an independent brute-force evaluation. */
TEST(QueryCorrectness, Q12MatchesBruteForce)
{
    TpcdDb db(ScaleConfig::tiny(), 1, 42);
    Q12Params p = Q12Params::fromSeed(5);

    auto lineitem = dumpRelation(db, db.lineitem);
    const Schema &ls = db.catalog().relation(db.lineitem).schema;
    std::map<std::string, int> groups; // shipmode -> joined line count
    for (const auto &l : lineitem) {
        std::string m = datumStr(l[ls.indexOf("l_shipmode")]);
        if (m != kShipModes[p.mode1] && m != kShipModes[p.mode2])
            continue;
        auto cd = datumInt(l[ls.indexOf("l_commitdate")]);
        auto rd = datumInt(l[ls.indexOf("l_receiptdate")]);
        auto sd = datumInt(l[ls.indexOf("l_shipdate")]);
        if (!(cd < rd && sd < cd && rd >= p.dateLo && rd < p.dateHi))
            continue;
        ++groups[m]; // every lineitem joins exactly one order
    }

    sim::NullSink sink;
    TracedMemory mem(db.space(), 0, sink);
    PrivateHeap priv(db.space(), 0);
    ExecContext ctx{mem, db.catalog(), priv, 1};
    NodePtr plan = buildQ12(db, p);
    auto rows = runQuery(ctx, *plan);

    ASSERT_EQ(rows.size(), groups.size());
    for (const auto &r : rows)
        EXPECT_TRUE(groups.count(datumStr(r[0])));
}

TEST(QueryParams, VaryWithSeedWithinTpcdDomains)
{
    bool segment_varies = false, date_varies = false;
    Q3Params first = Q3Params::fromSeed(0);
    for (std::uint64_t s = 1; s < 30; ++s) {
        Q3Params p = Q3Params::fromSeed(s);
        EXPECT_GE(p.segment, 0);
        EXPECT_LT(p.segment, 5);
        EXPECT_GE(p.date1, dateNum(1995, 3, 1));
        EXPECT_LE(p.date1, dateNum(1995, 3, 31));
        segment_varies = segment_varies || p.segment != first.segment;
        date_varies = date_varies || p.date1 != first.date1;
    }
    EXPECT_TRUE(segment_varies);
    EXPECT_TRUE(date_varies);

    for (std::uint64_t s = 0; s < 30; ++s) {
        Q6Params p = Q6Params::fromSeed(s);
        std::int32_t window = p.dateHi - p.dateLo;
        EXPECT_TRUE(window == 365 || window == 366) << window;
        EXPECT_GE(p.discount, 0.02);
        EXPECT_LE(p.discount, 0.09);
        Q12Params q = Q12Params::fromSeed(s);
        EXPECT_NE(q.mode1, q.mode2);
    }
}

} // namespace
