/**
 * @file
 * Tests for the pluggable NUMA page-placement subsystem
 * (sim/placement.hh) and its wiring: the interleave policy must be
 * bit-identical to the historical hardwired Directory rule, first-touch
 * must resolve identically under both engines at any thread count, the
 * class-affinity and profile policies must follow their inputs (arena
 * class map / access histogram), and the per-run statistics reset the
 * placement work exposed must hold.
 */

#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/bufmgr.hh"
#include "harness/options.hh"
#include "harness/runner.hh"
#include "harness/workload.hh"
#include "obs/pageprof.hh"
#include "obs/stats_json.hh"
#include "sim/arena.hh"
#include "sim/directory.hh"
#include "sim/machine.hh"
#include "sim/placement.hh"

#ifndef DSS_GOLDEN_DIR
#error "tests/CMakeLists.txt must define DSS_GOLDEN_DIR"
#endif

namespace {

using namespace dss;
using sim::Addr;
using sim::AddressSpace;
using sim::DataClass;
using sim::PlacementKind;
using sim::PlacementPolicy;
using sim::PlacementSpec;
using sim::ProcId;

PlacementPolicy::Geometry
baselineGeometry(unsigned nnodes = 4)
{
    return {nnodes, 8 * 1024, AddressSpace::kPrivateBase,
            AddressSpace::kPrivateStride};
}

/** Deterministic 64-bit LCG (no std::rand state leaking across tests). */
struct Lcg
{
    std::uint64_t s = 0x9e3779b97f4a7c15ull;
    std::uint64_t
    next()
    {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        return s >> 11;
    }
};

// --- spec parsing --------------------------------------------------------

TEST(PlacementSpec, ParsesEveryPolicy)
{
    auto il = PlacementSpec::parse("interleave");
    ASSERT_TRUE(il);
    EXPECT_EQ(il->kind, PlacementKind::Interleave);
    EXPECT_EQ(il->str(), "interleave");

    auto ft = PlacementSpec::parse("first-touch");
    ASSERT_TRUE(ft);
    EXPECT_EQ(ft->kind, PlacementKind::FirstTouch);

    auto ca = PlacementSpec::parse("class-affinity");
    ASSERT_TRUE(ca);
    EXPECT_EQ(ca->kind, PlacementKind::ClassAffinity);
    EXPECT_TRUE(ca->arg.empty());

    auto ca2 = PlacementSpec::parse("class-affinity:2");
    ASSERT_TRUE(ca2);
    EXPECT_EQ(ca2->arg, "2");
    EXPECT_EQ(ca2->str(), "class-affinity:2");

    auto pr = PlacementSpec::parse("profile:hist.json");
    ASSERT_TRUE(pr);
    EXPECT_EQ(pr->kind, PlacementKind::Profile);
    EXPECT_EQ(pr->arg, "hist.json");
}

TEST(PlacementSpec, RejectsMalformedValues)
{
    EXPECT_FALSE(PlacementSpec::parse("round-robin"));
    EXPECT_FALSE(PlacementSpec::parse(""));
    EXPECT_FALSE(PlacementSpec::parse("interleave:3"));
    EXPECT_FALSE(PlacementSpec::parse("first-touch:x"));
    EXPECT_FALSE(PlacementSpec::parse("class-affinity:banana"));
    EXPECT_FALSE(PlacementSpec::parse("class-affinity:99"));
    EXPECT_FALSE(PlacementSpec::parse("profile")); // path is mandatory
}

// --- interleave vs. the historical hardwired rule ------------------------

TEST(Placement, InterleaveMatchesLegacyRuleEverywhere)
{
    const sim::LatencyConfig lat;
    // A Directory with no policy attached falls back to the historical
    // hardwired formula — the exact code every access ran before the
    // placement layer existed.
    sim::Directory legacy(4, 64, 8192, AddressSpace::kPrivateBase,
                          AddressSpace::kPrivateStride, lat);
    ASSERT_EQ(legacy.placement(), nullptr);
    auto policy = PlacementPolicy::interleave(baselineGeometry());

    Lcg rng;
    for (int i = 0; i < 10000; ++i) {
        // Mix shared addresses (below kPrivateBase) with private ones,
        // including far past the last private node's stride.
        Addr a = rng.next() % (AddressSpace::kPrivateBase * 2);
        EXPECT_EQ(legacy.homeOf(a), policy->homeOf(a)) << "addr " << a;
    }
    // The boundaries the two code paths could disagree on.
    for (Addr a : {Addr{0}, Addr{8191}, Addr{8192},
                   AddressSpace::kPrivateBase - 1,
                   AddressSpace::kPrivateBase,
                   AddressSpace::kPrivateBase +
                       AddressSpace::kPrivateStride * 7})
        EXPECT_EQ(legacy.homeOf(a), policy->homeOf(a)) << "addr " << a;
}

TEST(Placement, InterleaveHandlesNonPowerOfTwoGeometry)
{
    // 3 nodes, 12 KB pages: both divisions take the slow (non-shift)
    // path; the policy must still match idx % nnodes.
    PlacementPolicy::Geometry g{3, 12 * 1024, AddressSpace::kPrivateBase,
                                AddressSpace::kPrivateStride};
    auto policy = PlacementPolicy::interleave(g);
    for (Addr a = 0; a < 30 * g.pageBytes; a += 1021)
        EXPECT_EQ(policy->homeOf(a),
                  static_cast<ProcId>((a / g.pageBytes) % g.nnodes));
}

// --- pinPage -------------------------------------------------------------

TEST(Placement, PinPageOverridesTheRule)
{
    auto policy = PlacementPolicy::interleave(baselineGeometry());
    const Addr page3 = 3 * 8192;
    ASSERT_EQ(policy->homeOf(page3), 3u);
    policy->pinPage(page3 + 100, 1);
    EXPECT_EQ(policy->homeOf(page3), 1u);
    EXPECT_EQ(policy->homeOf(page3 + 8191), 1u);
    // Neighbours keep the rule.
    EXPECT_EQ(policy->homeOf(page3 - 1), 2u);
    EXPECT_EQ(policy->homeOf(page3 + 8192), 0u);
}

TEST(Placement, PinPageIgnoresPrivateAndBogusTargets)
{
    auto policy = PlacementPolicy::interleave(baselineGeometry());
    policy->pinPage(AddressSpace::kPrivateBase + 64, 3); // private
    EXPECT_EQ(policy->claimedPages(), 0u);
    policy->pinPage(8192, 99); // home out of range
    EXPECT_EQ(policy->claimedPages(), 0u);
    EXPECT_EQ(policy->homeOf(8192), 1u);
}

// --- first-touch ---------------------------------------------------------

TEST(Placement, FirstTouchClaimsByTracePositionNotProcessorOrder)
{
    // Page P: proc 2 touches it at position 0, proc 0 only at position 1.
    // The claim must go to proc 2 — position-major order, not the
    // processor-id order a naive per-stream scan would produce.
    const Addr page = 5 * 8192;
    std::vector<sim::TraceStream> streams(4);
    streams[0].record(sim::TraceEntry::busy(1));
    streams[0].record(sim::TraceEntry::read(page, DataClass::Data, 8));
    streams[2].record(sim::TraceEntry::read(page + 64, DataClass::Data, 8));

    auto policy = PlacementPolicy::firstTouch(baselineGeometry());
    policy->beginRun(
        {&streams[0], &streams[1], &streams[2], &streams[3]});
    EXPECT_EQ(policy->homeOf(page), 2u);
    EXPECT_EQ(policy->claimedPages(), 1u);

    // Claims persist: a second run whose position 0 is proc 0 must not
    // steal the page (first touch *ever* wins, like a real OS).
    std::vector<sim::TraceStream> later(4);
    later[0].record(sim::TraceEntry::read(page, DataClass::Data, 8));
    policy->beginRun({&later[0], &later[1], &later[2], &later[3]});
    EXPECT_EQ(policy->homeOf(page), 2u);
}

TEST(Placement, FirstTouchIdenticalAcrossEnginesAndThreads)
{
    // Four processors with overlapping page footprints: proc p streams
    // over pages [p, p+4), so most pages have several claimants and the
    // resolution order matters.
    sim::MachineConfig cfg = sim::MachineConfig::baseline();
    std::vector<sim::TraceStream> streams(cfg.nprocs);
    for (unsigned p = 0; p < cfg.nprocs; ++p) {
        const Addr base = static_cast<Addr>(p) * 8192;
        for (Addr a = 0; a < 4 * 8192; a += 64) {
            streams[p].record(
                sim::TraceEntry::read(base + a, DataClass::Data, 8));
            streams[p].record(sim::TraceEntry::busy(2));
        }
    }
    std::vector<const sim::TraceStream *> ptrs;
    for (const sim::TraceStream &s : streams)
        ptrs.push_back(&s);

    struct Outcome
    {
        std::string statsJson;
        std::vector<ProcId> homes;
        std::size_t claimed;
    };
    auto runWith = [&](const sim::EngineConfig &engine) {
        auto policy = PlacementPolicy::firstTouch(
            {cfg.nprocs, cfg.pageBytes, AddressSpace::kPrivateBase,
             AddressSpace::kPrivateStride});
        sim::Machine m(cfg);
        m.setPlacement(policy.get());
        sim::SimStats stats = m.run(ptrs, engine);
        Outcome o;
        o.statsJson = obs::toJson(stats).dump();
        for (std::size_t i = 0; i < policy->coveredPages(); ++i)
            o.homes.push_back(policy->homeOf(static_cast<Addr>(i) * 8192));
        o.claimed = policy->claimedPages();
        return o;
    };

    // The claim resolution must be a pure function of the traces: the
    // same homes under the sequential engine and under the parallel
    // engine at any thread count. (Full stats are only bit-identical
    // across *thread counts* — the two engines model controller queuing
    // differently on contended traces, which is why the golden fixtures
    // pin seq and par separately.)
    const Outcome seq = runWith(sim::EngineConfig::seq());
    EXPECT_GT(seq.claimed, 0u);
    sim::EngineConfig par1 = sim::EngineConfig::par();
    par1.threads = 1;
    const Outcome base = runWith(par1);
    EXPECT_EQ(seq.homes, base.homes) << "seq vs par";
    EXPECT_EQ(seq.claimed, base.claimed) << "seq vs par";
    for (unsigned threads : {2u, 8u}) {
        sim::EngineConfig par = sim::EngineConfig::par();
        par.threads = threads;
        const Outcome got = runWith(par);
        EXPECT_EQ(base.statsJson, got.statsJson) << threads << " threads";
        EXPECT_EQ(base.homes, got.homes) << threads << " threads";
        EXPECT_EQ(base.claimed, got.claimed) << threads << " threads";
    }
}

TEST(Placement, FirstTouchIdenticalAcrossEnginesOnRealQuery)
{
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 4);
    harness::TraceSet traces = wl.trace(tpcd::QueryId::Q3);
    const sim::MachineConfig cfg = sim::MachineConfig::baseline();
    const PlacementPolicy::Geometry g = baselineGeometry(cfg.nprocs);

    struct Outcome
    {
        std::string statsJson;
        std::vector<ProcId> homes;
    };
    auto runWith = [&](const sim::EngineConfig &engine) {
        auto policy = PlacementPolicy::firstTouch(g);
        harness::RunOptions ro;
        ro.engine = engine;
        ro.placement = policy.get();
        sim::SimStats stats = harness::runCold(cfg, traces, ro);
        Outcome o;
        o.statsJson = obs::toJson(stats).dump();
        for (std::size_t i = 0; i < policy->coveredPages(); ++i)
            o.homes.push_back(
                policy->homeOf(static_cast<Addr>(i) * cfg.pageBytes));
        return o;
    };

    // Homes are engine-invariant; stats are bit-identical across thread
    // counts of the parallel engine (seq and par stats differ by design
    // in how controller contention is charged).
    const Outcome seq = runWith(sim::EngineConfig::seq());
    sim::EngineConfig par1 = sim::EngineConfig::par();
    par1.threads = 1;
    sim::EngineConfig par4 = sim::EngineConfig::par();
    par4.threads = 4;
    const Outcome p1 = runWith(par1);
    const Outcome p4 = runWith(par4);
    EXPECT_EQ(seq.homes, p1.homes);
    EXPECT_EQ(p1.homes, p4.homes);
    EXPECT_EQ(p1.statsJson, p4.statsJson);
}

// --- class-affinity ------------------------------------------------------

TEST(Placement, ClassAffinityFollowsTheArenaClassMap)
{
    // A synthetic address space: page 0 metadata, pages 1-2 data, page 3
    // index — affinity must home the metadata page at the chosen node and
    // leave the rest on the interleave rule.
    AddressSpace space(4, 64 * 1024, 4 * 1024);
    const std::size_t page = 8192;
    sim::MemArena &shared = space.shared();
    shared.alloc(page, DataClass::BufDesc);
    shared.alloc(2 * page, DataClass::Data);
    shared.alloc(page, DataClass::Index);

    const Addr base = shared.base();
    PlacementPolicy::Geometry g = baselineGeometry();
    auto policy = PlacementPolicy::classAffinity(g, space, 2);
    EXPECT_EQ(policy->homeOf(base), 2u); // metadata page -> node 2
    const auto rr = [&](Addr a) {
        return static_cast<ProcId>((a / page) % 4);
    };
    EXPECT_EQ(policy->homeOf(base + page), rr(base + page));
    EXPECT_EQ(policy->homeOf(base + 2 * page), rr(base + 2 * page));
    EXPECT_EQ(policy->homeOf(base + 3 * page), rr(base + 3 * page));
    // Unmapped shared pages report MetaOther but carry no engine
    // metadata: they stay interleaved.
    const Addr unmapped = base + 64 * page;
    EXPECT_EQ(policy->homeOf(unmapped), rr(unmapped));
}

TEST(Placement, ClassAffinityRejectsOutOfRangeNode)
{
    AddressSpace space(4, 64 * 1024, 4 * 1024);
    EXPECT_THROW(
        PlacementPolicy::classAffinity(baselineGeometry(), space, 4),
        std::invalid_argument);
}

TEST(Placement, BufferManagerHintsCoverPagesAndFeedPinPage)
{
    // The db layer records one placement hint per 8 KB buffer block; a
    // harness can replay explicit homes through pinPage. Check the hints
    // of a real TPC-D database line up with pages and carry classes, and
    // that feeding a hint through pinPage overrides the policy.
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 4);
    db::BufferManager &bm = wl.db().bufmgr();
    const auto &hints = bm.placementHints();
    ASSERT_EQ(hints.size(), bm.numBlocks());
    for (const db::BufferManager::PlacementHint &h : hints) {
        EXPECT_EQ(h.page % 8192, 0u) << "hint not page-aligned";
        EXPECT_EQ(h.home, db::BufferManager::kNoHomeHint);
    }

    bm.hintHome(hints.front().page, 3);
    EXPECT_EQ(bm.placementHints().front().home, 3u);
    EXPECT_THROW(bm.hintHome(0xdead0000, 1), std::runtime_error);

    auto policy = PlacementPolicy::interleave(baselineGeometry());
    for (const db::BufferManager::PlacementHint &h : bm.placementHints())
        if (h.home != db::BufferManager::kNoHomeHint)
            policy->pinPage(h.page, h.home);
    EXPECT_EQ(policy->homeOf(hints.front().page), 3u);
}

// --- profile -------------------------------------------------------------

TEST(Placement, ProfileHomesPagesAtTheirMajorityAccessor)
{
    std::vector<sim::PageAccessCounts> hist;
    hist.push_back({0 * 8192, {1, 9, 0, 0}});  // proc 1 dominates
    hist.push_back({2 * 8192, {5, 5, 0, 0}});  // tie -> lower proc id
    hist.push_back({7 * 8192, {0, 0, 0, 0}});  // never accessed -> rule

    auto policy = PlacementPolicy::profile(baselineGeometry(), hist);
    EXPECT_EQ(policy->homeOf(0), 1u);
    EXPECT_EQ(policy->homeOf(2 * 8192), 0u);
    EXPECT_EQ(policy->homeOf(7 * 8192), 3u);  // interleave fallback
    EXPECT_EQ(policy->homeOf(4 * 8192), 0u);  // unprofiled -> interleave
}

TEST(Placement, ProfileRoundTripsThroughPageProfileJson)
{
    // Histogram traces, serialize to the --page-profile wire format,
    // parse back, build the policy: the end-to-end --placement=profile
    // pipeline in miniature.
    std::vector<sim::TraceStream> streams(4);
    const Addr pageA = 3 * 8192, pageB = 6 * 8192;
    for (int i = 0; i < 10; ++i)
        streams[2].record(sim::TraceEntry::read(pageA, DataClass::Data, 8));
    streams[0].record(sim::TraceEntry::read(pageA, DataClass::Data, 8));
    for (int i = 0; i < 3; ++i)
        streams[1].record(
            sim::TraceEntry::write(pageB + 32, DataClass::Index, 8));
    // Private and Busy references must not be profiled.
    streams[0].record(sim::TraceEntry::read(
        AddressSpace::kPrivateBase + 8, DataClass::Priv, 8));
    streams[0].record(sim::TraceEntry::busy(5));

    obs::PageProfile prof(8192);
    prof.addTraces({&streams[0], &streams[1], &streams[2], &streams[3]});
    EXPECT_EQ(prof.pageCount(), 2u);

    const obs::Json doc = prof.toJson();
    // The wire format is byte-stable: same input, same bytes.
    EXPECT_EQ(doc.dump(), prof.toJson().dump());

    const std::vector<sim::PageAccessCounts> hist =
        obs::PageProfile::parse(doc, 8192);
    auto policy = PlacementPolicy::profile(baselineGeometry(), hist);
    EXPECT_EQ(policy->homeOf(pageA), 2u);
    EXPECT_EQ(policy->homeOf(pageB), 1u);

    EXPECT_THROW(obs::PageProfile::parse(doc, 4096), std::runtime_error);
}

// --- the default must not move: golden byte-identity ---------------------

TEST(Placement, ExplicitInterleaveReproducesTheGoldenFixtureByteForByte)
{
    // Run Q3 with an explicitly attached interleave policy and compare
    // against the same checked-in fixture the no-policy golden test pins:
    // the policy layer must be invisible when the default is selected.
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 4);
    harness::TraceSet traces = wl.trace(tpcd::QueryId::Q3);
    const sim::MachineConfig cfg = sim::MachineConfig::baseline();

    auto policy = PlacementPolicy::interleave(baselineGeometry(cfg.nprocs));
    harness::RunOptions ro;
    ro.placement = policy.get();
    sim::SimStats stats = harness::runCold(cfg, traces, ro);
    const std::string actual = obs::toJson(stats).dump(2) + "\n";

    std::ifstream is(std::string(DSS_GOLDEN_DIR) + "/q3_seq.json");
    ASSERT_TRUE(is) << "missing golden fixture q3_seq.json";
    std::ostringstream want;
    want << is.rdbuf();
    EXPECT_EQ(want.str(), actual);
}

// --- hop counters --------------------------------------------------------

TEST(Placement, SingleNodeMachineHasOnlyLocalTransactions)
{
    sim::MachineConfig cfg = sim::MachineConfig::baseline();
    cfg.nprocs = 1;
    sim::TraceStream stream;
    for (Addr a = 0; a < 64 * 1024; a += 64)
        stream.record(sim::TraceEntry::read(a, DataClass::Data, 8));
    sim::Machine m(cfg);
    sim::SimStats stats = m.run({&stream});
    const sim::ProcStats agg = stats.aggregate();
    EXPECT_GT(agg.hopsTotal(), 0u);
    EXPECT_EQ(agg.hopsOfClass(0), agg.hopsTotal());
}

TEST(Placement, RemoteHomesProduceRemoteHops)
{
    // One processor streaming cold reads on a 4-node machine: 3/4 of the
    // interleaved pages are remote, so 2-hop transactions must dominate
    // and nothing can be 3-hop (no dirty third parties).
    sim::MachineConfig cfg = sim::MachineConfig::baseline();
    sim::TraceStream stream;
    for (Addr a = 0; a < 256 * 1024; a += 64)
        stream.record(sim::TraceEntry::read(a, DataClass::Data, 8));
    sim::Machine m(cfg);
    sim::SimStats stats = m.run({&stream});
    const sim::ProcStats agg = stats.aggregate();
    EXPECT_GT(agg.hopsOfClass(1), agg.hopsOfClass(0));
    EXPECT_EQ(agg.hopsOfClass(2), 0u);
}

// --- per-run statistics reset (the Fig 12 repetition bug) ----------------

TEST(Placement, MachineResetStatsClearsHomeCounters)
{
    sim::MachineConfig cfg = sim::MachineConfig::baseline();
    sim::TraceStream stream;
    for (Addr a = 0; a < 64 * 1024; a += 64)
        stream.record(sim::TraceEntry::read(a, DataClass::Data, 8));
    sim::Machine m(cfg);
    m.run({&stream});

    std::uint64_t total = 0;
    for (const sim::Directory::HomeCounters &h :
         m.directory().homeCounters())
        total += h.requests;
    ASSERT_GT(total, 0u);

    m.resetStats();
    for (const sim::Directory::HomeCounters &h :
         m.directory().homeCounters()) {
        EXPECT_EQ(h.requests, 0u);
        EXPECT_EQ(h.queueCycles, 0u);
    }
}

TEST(Placement, RunSequenceSnapshotsCountOnlyTheLastRepetition)
{
    // Regression: the directory's per-home contention counters used to
    // accumulate across runSequence repetitions, so the registry snapshot
    // after a warm chain reported the *sum* of all repetitions. With the
    // per-run reset, the snapshot after {Q6, Q6} reflects the warm second
    // run only — which issues no more requests than the cold single run.
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 4);
    harness::TraceSet traces = wl.trace(tpcd::QueryId::Q6);
    const sim::MachineConfig cfg = sim::MachineConfig::baseline();

    auto dirRequests = [](const obs::Json &snap) {
        std::uint64_t total = 0;
        for (const auto &[key, value] : snap.members())
            if (key.rfind("dir.home", 0) == 0 &&
                key.find(".requests") != std::string::npos)
                total += value.asUint();
        return total;
    };

    obs::Json one, two;
    harness::RunOptions ro1;
    ro1.registrySnapshot = &one;
    harness::runSequence(cfg, {&traces}, ro1);

    harness::RunOptions ro2;
    ro2.registrySnapshot = &two;
    harness::runSequence(cfg, {&traces, &traces}, ro2);

    const std::uint64_t cold = dirRequests(one);
    ASSERT_GT(cold, 0u);
    // Accumulation across repetitions would make this ~2x the cold run.
    EXPECT_LE(dirRequests(two), cold);
}

// --- makePlacement (the harness glue) ------------------------------------

TEST(Placement, MakePlacementBuildsEachPolicyAndValidatesInputs)
{
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 4);
    const sim::MachineConfig cfg = sim::MachineConfig::baseline();

    harness::BenchOptions opts;
    auto def = harness::makePlacement(opts, cfg, &wl.db().space());
    EXPECT_EQ(def->kind(), PlacementKind::Interleave);

    opts.placement = *PlacementSpec::parse("class-affinity:1");
    auto ca = harness::makePlacement(opts, cfg, &wl.db().space());
    EXPECT_EQ(ca->kind(), PlacementKind::ClassAffinity);
    EXPECT_GT(ca->coveredPages(), 0u);

    opts.placement = *PlacementSpec::parse("profile:/nonexistent.json");
    EXPECT_THROW(harness::makePlacement(opts, cfg, &wl.db().space()),
                 std::runtime_error);
}

} // namespace
