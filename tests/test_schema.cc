/**
 * @file
 * Unit and property tests for schemas, tuple encode/decode, datum
 * comparison and sort-key encoding.
 */

#include <gtest/gtest.h>

#include "db_test_util.hh"

namespace {

using namespace dss;
using namespace dss::db;
using dss::test::MemFixture;

TEST(Schema, ColumnsPackAtNaturalAlignment)
{
    Schema s;
    s.add("a", AttrType::Int32)
        .add("b", AttrType::Char, 1)
        .add("c", AttrType::Char, 1)
        .add("d", AttrType::Int32)
        .add("e", AttrType::Double);
    EXPECT_EQ(s.attr(0).offset, 0);
    EXPECT_EQ(s.attr(1).offset, 4);
    EXPECT_EQ(s.attr(2).offset, 5);
    EXPECT_EQ(s.attr(3).offset, 8);  // back to 4-byte alignment
    EXPECT_EQ(s.attr(4).offset, 16); // 8-byte alignment
    EXPECT_EQ(s.tupleLen(), 24u);
}

TEST(Schema, TupleLenIsEightByteAligned)
{
    Schema s;
    s.add("a", AttrType::Int32);
    EXPECT_EQ(s.tupleLen(), 8u);
    s.add("b", AttrType::Char, 3);
    EXPECT_EQ(s.tupleLen(), 8u);
    s.add("c", AttrType::Char, 2);
    EXPECT_EQ(s.tupleLen(), 16u);
}

TEST(Schema, TpcdLineitemIs128Bytes)
{
    // The lineitem stride matters for prefetch reach; pin it down.
    Schema sl;
    sl.add("l_orderkey", AttrType::Int32)
        .add("l_partkey", AttrType::Int32)
        .add("l_suppkey", AttrType::Int32)
        .add("l_linenumber", AttrType::Int32)
        .add("l_quantity", AttrType::Double)
        .add("l_extendedprice", AttrType::Double)
        .add("l_discount", AttrType::Double)
        .add("l_tax", AttrType::Double)
        .add("l_returnflag", AttrType::Char, 1)
        .add("l_linestatus", AttrType::Char, 1)
        .add("l_shipdate", AttrType::Date)
        .add("l_commitdate", AttrType::Date)
        .add("l_receiptdate", AttrType::Date)
        .add("l_shipinstruct", AttrType::Char, 25)
        .add("l_shipmode", AttrType::Char, 10)
        .add("l_comment", AttrType::Char, 27);
    EXPECT_EQ(sl.tupleLen(), 128u);
}

TEST(Schema, IndexOfFindsAndThrows)
{
    Schema s;
    s.add("x", AttrType::Int32).add("y", AttrType::Double);
    EXPECT_EQ(s.indexOf("y"), 1u);
    EXPECT_THROW(s.indexOf("z"), std::out_of_range);
}

TEST(Schema, CharRequiresLength)
{
    Schema s;
    EXPECT_THROW(s.add("bad", AttrType::Char), std::invalid_argument);
}

TEST(Schema, ConcatKeepsNamesAndDisambiguates)
{
    Schema a, b;
    a.add("k", AttrType::Int32).add("x", AttrType::Double);
    b.add("k", AttrType::Int32).add("y", AttrType::Char, 4);
    Schema c = Schema::concat(a, b);
    EXPECT_EQ(c.numAttrs(), 4u);
    EXPECT_EQ(c.indexOf("k"), 0u);
    EXPECT_EQ(c.indexOf("k_r"), 2u);
    EXPECT_EQ(c.indexOf("y"), 3u);
}

TEST(Datum, CompareInts)
{
    EXPECT_LT(compareDatum(Datum{std::int64_t{1}}, Datum{std::int64_t{2}}),
              0);
    EXPECT_EQ(compareDatum(Datum{std::int64_t{5}}, Datum{std::int64_t{5}}),
              0);
    EXPECT_GT(compareDatum(Datum{std::int64_t{9}}, Datum{std::int64_t{2}}),
              0);
}

TEST(Datum, CompareMixedNumericCoercesToDouble)
{
    EXPECT_LT(compareDatum(Datum{1.5}, Datum{std::int64_t{2}}), 0);
    EXPECT_GT(compareDatum(Datum{2.5}, Datum{std::int64_t{2}}), 0);
}

TEST(Datum, CompareStrings)
{
    EXPECT_LT(compareDatum(Datum{std::string("AIR")},
                           Datum{std::string("RAIL")}),
              0);
    EXPECT_EQ(compareDatum(Datum{std::string("x")},
                           Datum{std::string("x")}),
              0);
}

TEST(Datum, KeyEncodingPreservesIntOrder)
{
    EXPECT_LT(datumToKey(Datum{std::int64_t{-5}}),
              datumToKey(Datum{std::int64_t{3}}));
    EXPECT_LT(datumToKey(Datum{std::int64_t{3}}),
              datumToKey(Datum{std::int64_t{400}}));
}

TEST(Datum, KeyEncodingPreservesStringOrder)
{
    const char *segs[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                          "HOUSEHOLD", "MACHINERY"};
    for (int i = 0; i + 1 < 5; ++i) {
        EXPECT_LT(datumToKey(Datum{std::string(segs[i])}),
                  datumToKey(Datum{std::string(segs[i + 1])}))
            << segs[i] << " vs " << segs[i + 1];
    }
}

TEST(Datum, KeyEncodingScalesMoney)
{
    EXPECT_EQ(datumToKey(Datum{1.25}), 125);
    EXPECT_LT(datumToKey(Datum{0.05}), datumToKey(Datum{0.06}));
}

TEST(TupleCodec, EncodeThenReadAttrRoundTrips)
{
    MemFixture f;
    Schema s;
    s.add("k", AttrType::Int32)
        .add("d", AttrType::Date)
        .add("v", AttrType::Double)
        .add("big", AttrType::Int64)
        .add("name", AttrType::Char, 12);
    std::vector<Datum> row{Datum{std::int64_t{-7}}, Datum{std::int64_t{900}},
                           Datum{3.25}, Datum{std::int64_t{1} << 40},
                           Datum{std::string("hello world")}};
    std::vector<std::uint8_t> img = encodeTuple(s, row);
    ASSERT_EQ(img.size(), s.tupleLen());

    sim::Addr a = f.space.shared().alloc(img.size(), sim::DataClass::Data);
    f.mem.storeBytes(a, img.data(), img.size());
    EXPECT_EQ(datumInt(readAttr(f.mem, a, s, 0)), -7);
    EXPECT_EQ(datumInt(readAttr(f.mem, a, s, 1)), 900);
    EXPECT_DOUBLE_EQ(datumReal(readAttr(f.mem, a, s, 2)), 3.25);
    EXPECT_EQ(datumInt(readAttr(f.mem, a, s, 3)), std::int64_t{1} << 40);
    EXPECT_EQ(datumStr(readAttr(f.mem, a, s, 4)), "hello world");
}

TEST(TupleCodec, WriteAttrUpdatesInPlace)
{
    MemFixture f;
    Schema s;
    s.add("k", AttrType::Int32).add("name", AttrType::Char, 8);
    sim::Addr a =
        f.space.shared().alloc(s.tupleLen(), sim::DataClass::Data);
    writeAttr(f.mem, a, s, 0, Datum{std::int64_t{11}});
    writeAttr(f.mem, a, s, 1, Datum{std::string("abc")});
    EXPECT_EQ(datumInt(readAttr(f.mem, a, s, 0)), 11);
    EXPECT_EQ(datumStr(readAttr(f.mem, a, s, 1)), "abc");
    writeAttr(f.mem, a, s, 1, Datum{std::string("xy")});
    EXPECT_EQ(datumStr(readAttr(f.mem, a, s, 1)), "xy");
}

TEST(TupleCodec, EncodeArityMismatchThrows)
{
    Schema s;
    s.add("k", AttrType::Int32);
    EXPECT_THROW(encodeTuple(s, {}), std::invalid_argument);
}

TEST(TupleCodec, CharTruncatesToDeclaredWidth)
{
    MemFixture f;
    Schema s;
    s.add("c", AttrType::Char, 4);
    sim::Addr a =
        f.space.shared().alloc(s.tupleLen(), sim::DataClass::Data);
    writeAttr(f.mem, a, s, 0, Datum{std::string("abcdefgh")});
    EXPECT_EQ(datumStr(readAttr(f.mem, a, s, 0)), "abcd");
}

/** Property: every attribute written via encodeTuple reads back equal,
 * across a sweep of generated schemas. */
class SchemaRoundTrip : public ::testing::TestWithParam<int>
{};

TEST_P(SchemaRoundTrip, AllAttrsRoundTrip)
{
    const int variant = GetParam();
    MemFixture f;
    Schema s;
    std::vector<Datum> row;
    std::uint64_t rng = 0x9e3779b9u * (variant + 1);
    auto next = [&]() {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    const int nattrs = 3 + variant % 9;
    for (int i = 0; i < nattrs; ++i) {
        switch (next() % 4) {
          case 0:
            s.add("a" + std::to_string(i), AttrType::Int32);
            row.push_back(
                Datum{static_cast<std::int64_t>(
                    static_cast<std::int32_t>(next()))});
            break;
          case 1:
            s.add("a" + std::to_string(i), AttrType::Int64);
            row.push_back(Datum{static_cast<std::int64_t>(next())});
            break;
          case 2:
            s.add("a" + std::to_string(i), AttrType::Double);
            row.push_back(Datum{static_cast<double>(next() % 100000) / 7});
            break;
          default: {
            auto len = static_cast<std::uint16_t>(1 + next() % 30);
            s.add("a" + std::to_string(i), AttrType::Char, len);
            std::string v(next() % len, 'a' + i % 26);
            row.push_back(Datum{v});
            break;
          }
        }
    }
    std::vector<std::uint8_t> img = encodeTuple(s, row);
    sim::Addr a = f.space.shared().alloc(img.size(), sim::DataClass::Data);
    f.mem.storeBytes(a, img.data(), img.size());
    for (int i = 0; i < nattrs; ++i) {
        EXPECT_EQ(compareDatum(readAttr(f.mem, a, s, i), row[i]), 0)
            << "attr " << i << " of variant " << variant;
    }
}

INSTANTIATE_TEST_SUITE_P(Variants, SchemaRoundTrip, ::testing::Range(0, 24));

} // namespace
