/**
 * @file
 * Unit and property tests for the B+-tree: bulk build, point/range
 * lookups, duplicate keys, cursors, and buffer-manager discipline.
 */

#include <algorithm>
#include <gtest/gtest.h>

#include "db_test_util.hh"

namespace {

using namespace dss;
using dss::test::MemFixture;

struct BTreeFixture : MemFixture
{
    db::BufferManager bufmgr{mem, 2048};

    std::unique_ptr<db::BTree>
    build(const std::vector<db::BTree::Entry> &entries, db::RelId rel = 50)
    {
        auto t = std::make_unique<db::BTree>(rel, bufmgr);
        t->build(mem, entries);
        return t;
    }

    static std::vector<db::BTree::Entry>
    denseEntries(int n)
    {
        std::vector<db::BTree::Entry> out;
        out.reserve(n);
        for (int i = 0; i < n; ++i) {
            out.push_back({i, db::Tid{i / 100,
                                      static_cast<std::uint16_t>(i % 100)}});
        }
        return out;
    }
};

TEST(BTree, EmptyTreeSeeksClosed)
{
    BTreeFixture f;
    auto t = f.build({});
    db::BTree::Cursor c = t->seek(f.mem, 5);
    EXPECT_FALSE(c.open());
    EXPECT_TRUE(t->lookupAll(f.mem, 5).empty());
}

TEST(BTree, SingleEntryLookup)
{
    BTreeFixture f;
    auto t = f.build({{42, db::Tid{3, 7}}});
    std::vector<db::Tid> r = t->lookupAll(f.mem, 42);
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0].block, 3);
    EXPECT_EQ(r[0].slot, 7);
    EXPECT_TRUE(t->lookupAll(f.mem, 41).empty());
    EXPECT_TRUE(t->lookupAll(f.mem, 43).empty());
}

TEST(BTree, BuildTwiceThrows)
{
    BTreeFixture f;
    auto t = f.build({{1, db::Tid{0, 0}}});
    EXPECT_THROW(t->build(f.mem, {}), std::runtime_error);
}

TEST(BTree, SingleLeafStaysHeightOne)
{
    BTreeFixture f;
    auto t = f.build(BTreeFixture::denseEntries(100));
    EXPECT_EQ(t->height(), 1);
    EXPECT_EQ(t->numPages(), 1u);
}

TEST(BTree, LargeBuildGrowsLevels)
{
    BTreeFixture f;
    auto t = f.build(BTreeFixture::denseEntries(5000));
    EXPECT_GE(t->height(), 2);
    EXPECT_GT(t->numPages(), 10u);
}

TEST(BTree, DuplicateKeysAllReturned)
{
    BTreeFixture f;
    std::vector<db::BTree::Entry> e;
    for (int i = 0; i < 50; ++i)
        e.push_back({7, db::Tid{0, static_cast<std::uint16_t>(i)}});
    for (int i = 0; i < 50; ++i)
        e.push_back({9, db::Tid{1, static_cast<std::uint16_t>(i)}});
    auto t = f.build(e);
    EXPECT_EQ(t->lookupAll(f.mem, 7).size(), 50u);
    EXPECT_EQ(t->lookupAll(f.mem, 9).size(), 50u);
    EXPECT_TRUE(t->lookupAll(f.mem, 8).empty());
}

TEST(BTree, DuplicatesSpanningLeavesAllFound)
{
    BTreeFixture f;
    // 1000 copies of one key forces the run across multiple leaves.
    std::vector<db::BTree::Entry> e;
    for (int i = 0; i < 1000; ++i)
        e.push_back({5, db::Tid{i / 100,
                                static_cast<std::uint16_t>(i % 100)}});
    e.push_back({6, db::Tid{99, 0}});
    auto t = f.build(e);
    EXPECT_EQ(t->lookupAll(f.mem, 5).size(), 1000u);
    EXPECT_EQ(t->lookupAll(f.mem, 6).size(), 1u);
}

TEST(BTree, SeekIsLowerBound)
{
    BTreeFixture f;
    auto t = f.build({{10, db::Tid{0, 0}},
                      {20, db::Tid{0, 1}},
                      {30, db::Tid{0, 2}}});
    db::BTree::Cursor c = t->seek(f.mem, 15);
    std::int64_t k;
    db::Tid tid;
    ASSERT_TRUE(c.next(f.mem, k, tid));
    EXPECT_EQ(k, 20);
    c.close(f.mem);
}

TEST(BTree, SeekPastEndIsClosed)
{
    BTreeFixture f;
    auto t = f.build(BTreeFixture::denseEntries(10));
    db::BTree::Cursor c = t->seek(f.mem, 100);
    EXPECT_FALSE(c.open());
}

TEST(BTree, CursorWalksAllEntriesInOrder)
{
    BTreeFixture f;
    const int n = 3000; // multiple leaves
    auto t = f.build(BTreeFixture::denseEntries(n));
    db::BTree::Cursor c = t->begin(f.mem);
    std::int64_t k, prev = -1;
    db::Tid tid;
    int count = 0;
    while (c.next(f.mem, k, tid)) {
        EXPECT_GT(k, prev);
        prev = k;
        ++count;
    }
    EXPECT_EQ(count, n);
    EXPECT_FALSE(c.open()); // auto-closed at end
}

TEST(BTree, CursorCloseUnpins)
{
    BTreeFixture f;
    auto t = f.build(BTreeFixture::denseEntries(50));
    db::BTree::Cursor c = t->seek(f.mem, 0);
    ASSERT_TRUE(c.open());
    EXPECT_EQ(f.bufmgr.pinCountOf(f.mem, t->relId(), 0), 1);
    c.close(f.mem);
    EXPECT_EQ(f.bufmgr.pinCountOf(f.mem, t->relId(), 0), 0);
    c.close(f.mem); // idempotent
}

TEST(BTree, TraversalEmitsIndexClassReads)
{
    BTreeFixture f;
    auto t = f.build(BTreeFixture::denseEntries(5000));
    f.stream.clear();
    t->lookupAll(f.mem, 2500);
    EXPECT_GT(f.countOps(sim::Op::Read, sim::DataClass::Index), 0u);
    // Descending the tree pins pages: metalock traffic.
    EXPECT_GT(f.countOps(sim::Op::LockAcq, sim::DataClass::LockSLock), 0u);
}

TEST(BTree, PinsAreBalancedAfterLookups)
{
    BTreeFixture f;
    auto t = f.build(BTreeFixture::denseEntries(5000));
    for (int k = 0; k < 5000; k += 97)
        t->lookupAll(f.mem, k);
    for (unsigned b = 0; b < t->numPages(); ++b) {
        EXPECT_EQ(f.bufmgr.pinCountOf(f.mem, t->relId(),
                                      static_cast<db::BlockNo>(b)),
                  0)
            << "page " << b << " left pinned";
    }
}

/** Property sweep: lookupAll agrees with a host-side reference across
 * sizes and key distributions. */
class BTreeProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(BTreeProperty, LookupMatchesReference)
{
    auto [n, key_range] = GetParam();
    BTreeFixture f;
    std::vector<db::BTree::Entry> e;
    std::uint64_t rng = 12345 + n * 7 + key_range;
    auto next = [&]() {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    for (int i = 0; i < n; ++i) {
        e.push_back({static_cast<std::int64_t>(next() % key_range),
                     db::Tid{i / 100, static_cast<std::uint16_t>(i % 100)}});
    }
    std::stable_sort(e.begin(), e.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    auto t = f.build(e);

    for (std::int64_t k = 0; k < key_range; k += 1 + key_range / 37) {
        std::size_t expected = 0;
        for (const auto &ent : e)
            if (ent.first == k)
                ++expected;
        EXPECT_EQ(t->lookupAll(f.mem, k).size(), expected)
            << "key " << k << " n=" << n << " range=" << key_range;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BTreeProperty,
    ::testing::Values(std::make_tuple(10, 5), std::make_tuple(100, 20),
                      std::make_tuple(1000, 50),
                      std::make_tuple(1000, 2000),
                      std::make_tuple(5000, 300),
                      std::make_tuple(8000, 8000)));

} // namespace
