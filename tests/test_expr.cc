/**
 * @file
 * Unit tests for the expression layer: literals, attribute references,
 * comparisons, logic, arithmetic, and the traced reads they perform.
 */

#include <gtest/gtest.h>

#include "db_test_util.hh"

namespace {

using namespace dss;
using namespace dss::db;
using dss::test::MemFixture;

struct ExprFixture : MemFixture
{
    Schema schema;
    sim::Addr tuple = 0;

    ExprFixture()
    {
        schema.add("k", AttrType::Int32)
            .add("v", AttrType::Double)
            .add("d", AttrType::Date)
            .add("s", AttrType::Char, 8);
        tuple = space.shared().alloc(schema.tupleLen(),
                                     sim::DataClass::Data);
        writeAttr(mem, tuple, schema, 0, Datum{std::int64_t{10}});
        writeAttr(mem, tuple, schema, 1, Datum{2.5});
        writeAttr(mem, tuple, schema, 2, Datum{std::int64_t{700}});
        writeAttr(mem, tuple, schema, 3, Datum{std::string("AIR")});
    }

    Row
    row()
    {
        return Row{&mem, tuple, &schema};
    }
};

TEST(Expr, LiteralsEvaluateToThemselves)
{
    ExprFixture f;
    EXPECT_EQ(datumInt(litInt(5)->eval(f.row())), 5);
    EXPECT_DOUBLE_EQ(datumReal(litReal(1.25)->eval(f.row())), 1.25);
    EXPECT_EQ(datumStr(litStr("x")->eval(f.row())), "x");
}

TEST(Expr, AttrReadsTupleThroughTracedMemory)
{
    ExprFixture f;
    f.stream.clear();
    EXPECT_EQ(datumInt(attr(0)->eval(f.row())), 10);
    EXPECT_EQ(f.countOps(sim::Op::Read, sim::DataClass::Data), 1u);
}

TEST(Expr, ColResolvesByName)
{
    ExprFixture f;
    EXPECT_DOUBLE_EQ(datumReal(col(f.schema, "v")->eval(f.row())), 2.5);
    EXPECT_THROW(col(f.schema, "nope"), std::out_of_range);
}

TEST(Expr, IntComparisons)
{
    ExprFixture f;
    EXPECT_TRUE(cmp(CmpOp::Eq, attr(0), litInt(10))->evalBool(f.row()));
    EXPECT_TRUE(cmp(CmpOp::Ne, attr(0), litInt(9))->evalBool(f.row()));
    EXPECT_TRUE(cmp(CmpOp::Lt, attr(0), litInt(11))->evalBool(f.row()));
    EXPECT_TRUE(cmp(CmpOp::Le, attr(0), litInt(10))->evalBool(f.row()));
    EXPECT_TRUE(cmp(CmpOp::Gt, attr(0), litInt(9))->evalBool(f.row()));
    EXPECT_TRUE(cmp(CmpOp::Ge, attr(0), litInt(10))->evalBool(f.row()));
    EXPECT_FALSE(cmp(CmpOp::Lt, attr(0), litInt(10))->evalBool(f.row()));
}

TEST(Expr, MixedNumericComparisonCoerces)
{
    ExprFixture f;
    // k (int 10) > 9.5 (double)
    EXPECT_TRUE(cmp(CmpOp::Gt, attr(0), litReal(9.5))->evalBool(f.row()));
    EXPECT_FALSE(cmp(CmpOp::Gt, attr(0), litReal(10.5))->evalBool(f.row()));
}

TEST(Expr, StringComparison)
{
    ExprFixture f;
    EXPECT_TRUE(cmp(CmpOp::Eq, attr(3), litStr("AIR"))->evalBool(f.row()));
    EXPECT_TRUE(cmp(CmpOp::Lt, attr(3), litStr("RAIL"))->evalBool(f.row()));
}

TEST(Expr, LogicOperators)
{
    ExprFixture f;
    ExprPtr t = cmp(CmpOp::Eq, litInt(1), litInt(1));
    ExprPtr fa = cmp(CmpOp::Eq, litInt(1), litInt(2));
    EXPECT_TRUE(logic(LogicOp::And, t, t)->evalBool(f.row()));
    EXPECT_FALSE(logic(LogicOp::And, t, fa)->evalBool(f.row()));
    EXPECT_TRUE(logic(LogicOp::Or, fa, t)->evalBool(f.row()));
    EXPECT_FALSE(logic(LogicOp::Or, fa, fa)->evalBool(f.row()));
    EXPECT_TRUE(logic(LogicOp::Not, fa, nullptr)->evalBool(f.row()));
    EXPECT_FALSE(logic(LogicOp::Not, t, nullptr)->evalBool(f.row()));
}

TEST(Expr, AndShortCircuitSkipsRhsReads)
{
    ExprFixture f;
    ExprPtr never = cmp(CmpOp::Eq, litInt(1), litInt(2));
    ExprPtr reads_attr = cmp(CmpOp::Eq, attr(0), litInt(10));
    f.stream.clear();
    EXPECT_FALSE(
        logic(LogicOp::And, never, reads_attr)->evalBool(f.row()));
    EXPECT_EQ(f.countOps(sim::Op::Read), 0u); // rhs never evaluated
}

TEST(Expr, ArithmeticIntAndDouble)
{
    ExprFixture f;
    EXPECT_EQ(datumInt(arith(ArithOp::Add, litInt(2), litInt(3))
                           ->eval(f.row())),
              5);
    EXPECT_EQ(datumInt(arith(ArithOp::Sub, litInt(2), litInt(3))
                           ->eval(f.row())),
              -1);
    EXPECT_EQ(datumInt(arith(ArithOp::Mul, litInt(4), litInt(3))
                           ->eval(f.row())),
              12);
    EXPECT_DOUBLE_EQ(
        datumReal(arith(ArithOp::Mul, attr(1), litInt(4))->eval(f.row())),
        10.0);
}

TEST(Expr, RevenueExpression)
{
    ExprFixture f;
    // v * (1 - 0.1) = 2.5 * 0.9
    ExprPtr rev = arith(ArithOp::Mul, attr(1),
                        arith(ArithOp::Sub, litReal(1.0), litReal(0.1)));
    EXPECT_DOUBLE_EQ(datumReal(rev->eval(f.row())), 2.25);
}

TEST(Expr, RangeHalfOpen)
{
    ExprFixture f;
    // d = 700: [700, 800) contains, [600, 700) does not.
    EXPECT_TRUE(rangeHalfOpen(attr(2), Datum{std::int64_t{700}},
                              Datum{std::int64_t{800}})
                    ->evalBool(f.row()));
    EXPECT_FALSE(rangeHalfOpen(attr(2), Datum{std::int64_t{600}},
                               Datum{std::int64_t{700}})
                     ->evalBool(f.row()));
}

TEST(Expr, AndAllChainsTerms)
{
    ExprFixture f;
    ExprPtr e = andAll({cmp(CmpOp::Gt, attr(0), litInt(5)),
                        cmp(CmpOp::Lt, attr(0), litInt(15)),
                        cmp(CmpOp::Eq, attr(3), litStr("AIR"))});
    EXPECT_TRUE(e->evalBool(f.row()));
    EXPECT_THROW(andAll({}), std::invalid_argument);
}

TEST(Expr, EvalOnPrivateCopyReadsPrivClass)
{
    ExprFixture f;
    sim::Addr copy = f.space.priv(0).alloc(f.schema.tupleLen(),
                                           sim::DataClass::Priv);
    f.mem.copy(copy, f.tuple, f.schema.tupleLen());
    f.stream.clear();
    Row prow{&f.mem, copy, &f.schema};
    EXPECT_EQ(datumInt(attr(0)->eval(prow)), 10);
    EXPECT_EQ(f.countOps(sim::Op::Read, sim::DataClass::Priv), 1u);
    EXPECT_EQ(f.countOps(sim::Op::Read, sim::DataClass::Data), 0u);
}

} // namespace
