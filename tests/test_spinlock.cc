/**
 * @file
 * Unit tests for the dynamic metalock table (test&test&set replay).
 */

#include <gtest/gtest.h>

#include "sim/spinlock_model.hh"

namespace {

using namespace dss::sim;

TEST(LockTable, AcquireFreeLockSucceeds)
{
    LockTable t;
    EXPECT_FALSE(t.isHeld(0x100));
    EXPECT_TRUE(t.tryAcquire(0x100, 0));
    EXPECT_TRUE(t.isHeld(0x100));
    EXPECT_EQ(t.holder(0x100), 0u);
}

TEST(LockTable, SecondAcquireFails)
{
    LockTable t;
    ASSERT_TRUE(t.tryAcquire(0x100, 0));
    EXPECT_FALSE(t.tryAcquire(0x100, 1));
    EXPECT_EQ(t.holder(0x100), 0u);
}

TEST(LockTable, DistinctWordsAreIndependent)
{
    LockTable t;
    EXPECT_TRUE(t.tryAcquire(0x100, 0));
    EXPECT_TRUE(t.tryAcquire(0x200, 1));
    EXPECT_EQ(t.holder(0x100), 0u);
    EXPECT_EQ(t.holder(0x200), 1u);
}

TEST(LockTable, ReleaseWithoutWaitersFrees)
{
    LockTable t;
    t.tryAcquire(0x100, 0);
    EXPECT_EQ(t.release(0x100, 0), LockTable::kNoWaiter);
    EXPECT_FALSE(t.isHeld(0x100));
}

TEST(LockTable, ReleaseHandsOffToFirstWaiterFifo)
{
    LockTable t;
    t.tryAcquire(0x100, 0);
    t.addWaiter(0x100, 1);
    t.addWaiter(0x100, 2);
    EXPECT_EQ(t.waiters(0x100), 2u);
    EXPECT_EQ(t.release(0x100, 0), 1u);
    EXPECT_TRUE(t.isHeld(0x100)); // handed off, still held
    EXPECT_EQ(t.holder(0x100), 1u);
    EXPECT_EQ(t.waiters(0x100), 1u);
    EXPECT_EQ(t.release(0x100, 1), 2u);
    EXPECT_EQ(t.release(0x100, 2), LockTable::kNoWaiter);
    EXPECT_FALSE(t.isHeld(0x100));
}

TEST(LockTable, ResetDropsAllState)
{
    LockTable t;
    t.tryAcquire(0x100, 0);
    t.addWaiter(0x100, 1);
    t.reset();
    EXPECT_FALSE(t.isHeld(0x100));
    EXPECT_EQ(t.waiters(0x100), 0u);
    EXPECT_TRUE(t.tryAcquire(0x100, 2));
}

} // namespace
