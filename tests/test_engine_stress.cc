/**
 * @file
 * Concurrency stress for the parallel engine, meant to run under
 * ThreadSanitizer (cmake -DSIM_SANITIZE=thread, or ./check.sh
 * --sanitize=thread). The workloads maximize cross-thread traffic in the
 * engine itself: many processors, heavy sharing, tiny windows (many
 * barriers per run), contended locks, and more host threads than
 * processors so the worker pool's hand-off paths are exercised.
 *
 * The assertions are deliberately light — the point is the interleaving
 * coverage, with TSan (or ASan) as the oracle. Without a sanitizer these
 * still verify determinism under the nastiest engine configurations.
 */

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/stats_json.hh"
#include "sim/arena.hh"
#include "sim/machine.hh"

namespace {

using namespace dss;
using namespace dss::sim;

std::vector<TraceStream>
contendedTraces(unsigned nprocs, std::size_t entries, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> pct(0, 99);
    // One hot 2 KB shared region: every line is contended by every proc.
    std::uniform_int_distribution<Addr> off(0, (2 << 10) - 8);
    std::uniform_int_distribution<std::uint32_t> busy(1, 5);
    std::vector<TraceStream> traces(nprocs);
    for (TraceStream &t : traces) {
        bool in_cs = false;
        for (std::size_t i = 0; i < entries; ++i) {
            const int r = pct(rng);
            if (!in_cs && r < 10) {
                t.record(TraceEntry::lockAcq(0x2000'0000,
                                             DataClass::LockSLock));
                in_cs = true;
            } else if (in_cs && r < 30) {
                t.record(TraceEntry::lockRel(0x2000'0000,
                                             DataClass::LockSLock));
                in_cs = false;
            } else if (r < 40) {
                t.record(TraceEntry::busy(busy(rng)));
            } else if (r < 70) {
                t.record(TraceEntry::write(0x1000'0000 + (off(rng) & ~7ull),
                                           DataClass::Data, 8));
            } else {
                t.record(TraceEntry::read(0x1000'0000 + (off(rng) & ~7ull),
                                          DataClass::Data, 8));
            }
        }
        if (in_cs)
            t.record(
                TraceEntry::lockRel(0x2000'0000, DataClass::LockSLock));
    }
    return traces;
}

std::string
runOnce(const MachineConfig &cfg, const std::vector<TraceStream> &traces,
        const EngineConfig &eng)
{
    std::vector<const TraceStream *> ptrs;
    for (const TraceStream &t : traces)
        ptrs.push_back(&t);
    Machine m(cfg);
    return obs::toJson(m.run(ptrs, eng)).dump();
}

TEST(EngineStress, EightProcsTinyWindowsManyThreads)
{
    MachineConfig cfg = MachineConfig::baseline();
    cfg.nprocs = 8;
    auto traces = contendedTraces(8, 600, 42);
    // Tiny window => hundreds of barrier crossings; more host threads
    // than runnable processors => workers racing for strided work.
    const std::string one =
        runOnce(cfg, traces, EngineConfig::par(1, 128));
    for (unsigned threads : {4u, 8u}) {
        EXPECT_EQ(one, runOnce(cfg, traces, EngineConfig::par(threads, 128)))
            << threads << " threads";
    }
}

TEST(EngineStress, RepeatedRunsOnOneMachineReuseWorkerPool)
{
    // Warm runs on one Machine: each run() builds a fresh engine over the
    // same mutable caches/directory; the pool teardown/startup and the
    // carried-over memory state must both be clean under TSan.
    MachineConfig cfg = MachineConfig::baseline();
    auto traces = contendedTraces(cfg.nprocs, 400, 7);
    std::vector<const TraceStream *> ptrs;
    for (const TraceStream &t : traces)
        ptrs.push_back(&t);

    Machine mseq(cfg);
    Machine mpar(cfg);
    for (int run = 0; run < 3; ++run) {
        SimStats s = mseq.run(ptrs, EngineConfig::seq());
        SimStats p = mpar.run(ptrs, EngineConfig::par(4, 256));
        std::uint64_t swrites = 0, pwrites = 0;
        for (unsigned i = 0; i < cfg.nprocs; ++i) {
            swrites += s.procs[i].writes;
            pwrites += p.procs[i].writes;
        }
        EXPECT_EQ(swrites, pwrites) << "run " << run;
    }
}

TEST(EngineStress, ManyShortWindowsWithIdleGaps)
{
    // Long busy stretches force the window fast-forward path while other
    // processors are mid-window — the scheduling edge cases.
    MachineConfig cfg = MachineConfig::baseline();
    std::vector<TraceStream> traces(cfg.nprocs);
    for (unsigned p = 0; p < cfg.nprocs; ++p) {
        for (int i = 0; i < 50; ++i) {
            traces[p].record(TraceEntry::busy(p == 0 ? 10000 : 17));
            traces[p].record(TraceEntry::read(
                0x1000'0000 + static_cast<Addr>(i) * 8, DataClass::Data,
                8));
        }
    }
    const std::string one = runOnce(cfg, traces, EngineConfig::par(1, 64));
    EXPECT_EQ(one, runOnce(cfg, traces, EngineConfig::par(4, 64)));
}

} // namespace
