/**
 * @file
 * Unit tests for the 16-entry write buffer (overflow stalls, drain
 * ordering, load forwarding).
 */

#include <gtest/gtest.h>

#include "sim/write_buffer.hh"

namespace {

using namespace dss::sim;

TEST(WriteBuffer, NoStallWhileNotFull)
{
    WriteBuffer wb(4);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(wb.push(0, 100, 0x40 * i), 0u);
    EXPECT_EQ(wb.occupancy(0), 4u);
}

TEST(WriteBuffer, OverflowStallsUntilOldestRetires)
{
    WriteBuffer wb(2);
    EXPECT_EQ(wb.push(0, 100, 0x0), 0u);  // retires at 100
    EXPECT_EQ(wb.push(0, 100, 0x40), 0u); // retires at 200
    // Buffer full: the processor waits until cycle 100.
    EXPECT_EQ(wb.push(0, 100, 0x80), 100u);
}

TEST(WriteBuffer, DrainsSeriallyOnePortAtATime)
{
    WriteBuffer wb(8);
    wb.push(0, 50, 0x0);   // 0..50
    wb.push(10, 50, 0x40); // starts at 50, retires 100
    EXPECT_EQ(wb.occupancy(60), 1u);  // first retired
    EXPECT_EQ(wb.occupancy(100), 0u); // both retired
}

TEST(WriteBuffer, RetiredEntriesFreeSlots)
{
    WriteBuffer wb(2);
    wb.push(0, 10, 0x0);
    wb.push(0, 10, 0x40);
    // At time 100 both retired: no stall.
    EXPECT_EQ(wb.push(100, 10, 0x80), 0u);
}

TEST(WriteBuffer, ContainsLineWhilePending)
{
    WriteBuffer wb(4);
    wb.push(0, 100, 0x40);
    EXPECT_TRUE(wb.containsLine(0x40, 10));
    EXPECT_FALSE(wb.containsLine(0x80, 10));
    EXPECT_FALSE(wb.containsLine(0x40, 200)); // drained
}

TEST(WriteBuffer, ResetDropsEverything)
{
    WriteBuffer wb(4);
    wb.push(0, 1000, 0x40);
    wb.reset();
    EXPECT_EQ(wb.occupancy(0), 0u);
    EXPECT_FALSE(wb.containsLine(0x40, 0));
    EXPECT_EQ(wb.push(0, 10, 0x0), 0u);
}

TEST(WriteBuffer, StallAccountsForSerializedDrains)
{
    WriteBuffer wb(1);
    wb.push(0, 100, 0x0); // retires at 100
    // Full immediately: second push at t=0 stalls 100 cycles.
    EXPECT_EQ(wb.push(0, 100, 0x40), 100u);
}

/** Property: with capacity N and drain latency L, pushing k stores
 * back-to-back at time 0 stalls only after the buffer is full, and the
 * i-th overflow waits for the i-th retirement. */
class WbOverflow : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(WbOverflow, OverflowWaitsMatchRetirementSchedule)
{
    const std::size_t cap = GetParam();
    const Cycles L = 50;
    WriteBuffer wb(cap);
    Cycles now = 0;
    for (std::size_t i = 0; i < cap; ++i)
        EXPECT_EQ(wb.push(now, L, i * 0x40), 0u);
    // Next push waits for the first retirement at L.
    Cycles stall = wb.push(now, L, 0x1000);
    EXPECT_EQ(stall, L);
}

INSTANTIATE_TEST_SUITE_P(Capacities, WbOverflow,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

} // namespace
