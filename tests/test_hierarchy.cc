/**
 * @file
 * Tests for the generalized N-level hierarchy (sim/hierarchy.hh) and the
 * declarative MachineSpec layer (sim/spec.hh): strict inclusion along
 * three-level chains, coherent-level evictions clearing the upper
 * levels, per-level counter reconciliation, spec JSON round-trips,
 * preset validation, and the headline bit-identity differential — Q6 on
 * the tiny population must produce identical statistics on the seq and
 * par engines for both the paper1997 and modern presets.
 */

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "obs/stats_json.hh"
#include "sim/error.hh"
#include "sim/machine.hh"
#include "sim/spec.hh"
#include "tpcd/queries.hh"

namespace {

using namespace dss;
using namespace dss::sim;

/** A small three-level chain with a direct-mapped coherent level, so
 * coherent-level conflict evictions are easy to provoke while the upper
 * levels still have room. */
MachineConfig
threeLevelConfig()
{
    MachineConfig cfg = MachineConfig::baseline();
    LevelConfig l1;
    l1.sizeBytes = 128;
    l1.lineBytes = 32;
    l1.assoc = 2;
    l1.hitCycles = 1;
    LevelConfig l2;
    l2.sizeBytes = 256;
    l2.lineBytes = 64;
    l2.assoc = 4;
    l2.hitCycles = 16;
    LevelConfig l3;
    l3.sizeBytes = 256;
    l3.lineBytes = 64;
    l3.assoc = 1; // 4 sets: 0x0 and 0x100 conflict
    l3.hitCycles = 32;
    cfg.levels = {l1, l2, l3};
    cfg.nprocs = 1;
    return cfg;
}

TraceStream
streamOf(std::initializer_list<TraceEntry> entries)
{
    TraceStream s;
    for (const TraceEntry &e : entries)
        s.record(e);
    return s;
}

TEST(Hierarchy, CoherentEvictionInvalidatesUpperLevels)
{
    Machine m(threeLevelConfig());
    // 0x0 and 0x100 share the direct-mapped L3's set 0, but the
    // 4-way L2 and 2-way L1 could hold both: only the inclusion
    // invalidation can remove 0x0 from them.
    TraceStream t = streamOf({
        TraceEntry::read(0x0, DataClass::Data, 8),
        TraceEntry::read(0x100, DataClass::Data, 8),
    });
    (void)m.run({&t});
    EXPECT_TRUE(m.level(0, 2).contains(0x100));
    EXPECT_FALSE(m.level(0, 2).contains(0x0));
    EXPECT_FALSE(m.level(0, 1).contains(0x0)) << "L2 kept an evicted line";
    EXPECT_FALSE(m.level(0, 0).contains(0x0)) << "L1 kept an evicted line";
    // The replacement line is resident top to bottom.
    EXPECT_TRUE(m.level(0, 1).contains(0x100));
    EXPECT_TRUE(m.level(0, 0).contains(0x100));
}

TEST(Hierarchy, StrictInclusionAfterMixedTrace)
{
    MachineConfig cfg = threeLevelConfig();
    Machine m(cfg);
    TraceStream t;
    // A pseudo-random walk wide enough to force evictions at every level.
    Addr a = 0;
    for (int i = 0; i < 400; ++i) {
        a = (a * 2654435761u + 97) % 0x800;
        const Addr addr = a & ~Addr{7};
        if (i % 5 == 2)
            t.record(TraceEntry::write(addr, DataClass::Data, 8));
        else
            t.record(TraceEntry::read(addr, DataClass::Data, 8));
    }
    (void)m.run({&t});
    for (std::size_t u = 0; u + 1 < cfg.numLevels(); ++u)
        for (Addr line : m.level(0, u).residentLines())
            EXPECT_TRUE(m.level(0, u + 1).contains(line))
                << "level " << u << " line " << line
                << " missing one level down";
}

TEST(Hierarchy, PerLevelCountersReconcile)
{
    Machine m(threeLevelConfig());
    TraceStream t;
    Addr a = 0;
    for (int i = 0; i < 300; ++i) {
        a = (a * 1103515245u + 12345) % 0x600;
        t.record(TraceEntry::read(a & ~Addr{7}, DataClass::Data, 8));
    }
    SimStats s = m.run({&t});
    const ProcStats &p = s.procs[0];
    EXPECT_EQ(p.levels, 3u);
    // Every L1 read miss reaches level 1; every level-1 miss reaches the
    // coherent level; hits + misses account for each level's lookups.
    EXPECT_EQ(p.levelAccesses[1], p.l1Misses().total());
    EXPECT_EQ(p.levelHits[1] + p.levelMisses[1].total(),
              p.levelAccesses[1]);
    EXPECT_EQ(p.levelAccesses[2], p.levelMisses[1].total());
    EXPECT_EQ(p.levelHits[2] + p.levelMisses[2].total(),
              p.levelAccesses[2]);
    EXPECT_EQ(p.reads, p.levelHits[0] + p.l1Misses().total());
}

TEST(Hierarchy, IntermediateHitCostsItsLatency)
{
    Machine m(threeLevelConfig());
    // Fill set 0 of the 2-way L1 with three lines (0x0, 0x40, 0x80 all
    // map there), evicting 0x0 from the L1 only; the 4-way single-set L2
    // keeps all three. The re-read of 0x0 is then an L2 hit: 16 - 1
    // issue = 15 stall cycles beyond the three initial misses.
    TraceStream t = streamOf({
        TraceEntry::read(0x0, DataClass::Data, 8),
        TraceEntry::read(0x40, DataClass::Data, 8),
        TraceEntry::read(0x80, DataClass::Data, 8),
        TraceEntry::read(0x0, DataClass::Data, 8),
    });
    SimStats s = m.run({&t});
    const ProcStats &p = s.procs[0];
    EXPECT_EQ(p.levelHits[1], 1u);
    EXPECT_EQ(p.levelMisses[0].total(), 4u);
    EXPECT_EQ(p.levelMisses[1].total(), 3u);
    EXPECT_EQ(p.levelMisses[2].total(), 3u);
}

TEST(MachineSpec, PresetNamesAndDefault)
{
    const std::vector<std::string> names = machinePresetNames();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "paper1997");
    // paper1997 must be *exactly* the legacy baseline: same JSON, so the
    // golden reports cannot tell the spec layer exists.
    const MachineSpec spec = machinePreset("paper1997");
    EXPECT_EQ(obs::toJson(spec.config).dump(),
              obs::toJson(MachineConfig::baseline()).dump());
}

TEST(MachineSpec, ModernPresetIsValidThreeLevel)
{
    const MachineSpec spec = machinePreset("modern");
    EXPECT_EQ(spec.config.numLevels(), 3u);
    EXPECT_TRUE(spec.config.coherent().shared);
    EXPECT_NO_THROW(spec.config.validate());
    EXPECT_NO_THROW(Machine m(spec.config));
}

TEST(MachineSpec, Scaled64PresetRuns)
{
    const MachineSpec spec = machinePreset("scaled64");
    EXPECT_EQ(spec.config.nprocs, 64u);
    Machine m(spec.config);
    std::vector<TraceStream> streams(64);
    for (unsigned p = 0; p < 64; ++p)
        streams[p].record(
            TraceEntry::read(0x1000 * p, DataClass::Data, 8));
    std::vector<const TraceStream *> ptrs;
    for (const TraceStream &s : streams)
        ptrs.push_back(&s);
    SimStats s = m.run(ptrs);
    EXPECT_EQ(s.procs.size(), 64u);
}

TEST(MachineSpec, UnknownPresetThrows)
{
    EXPECT_THROW(machinePreset("fast"), SimError);
    try {
        (void)loadSpec("fast");
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        // The message lists the valid presets.
        EXPECT_NE(std::string(e.what()).find("paper1997"),
                  std::string::npos);
    }
}

TEST(MachineSpec, JsonRoundTripIsLossless)
{
    for (const std::string &name : machinePresetNames()) {
        const MachineSpec spec = machinePreset(name);
        const obs::Json j = toJson(spec);
        const MachineSpec back = specFromJson(j, "reparsed");
        EXPECT_EQ(toJson(back).dump(), j.dump()) << name;
        EXPECT_EQ(back.name, name); // "name" key wins over the argument
    }
}

TEST(MachineSpec, LoadsSpecFileAndRejectsUnknownKeys)
{
    const std::string path = ::testing::TempDir() + "machine_spec.json";
    {
        std::ofstream out(path);
        out << toJson(machinePreset("modern")).dump(2);
    }
    const MachineSpec spec = loadSpec(path);
    EXPECT_EQ(spec.config.numLevels(), 3u);
    EXPECT_EQ(spec.name, "modern");

    {
        std::ofstream out(path);
        out << R"({"nprocs": 4, "asoc": 2})"; // typo'd key
    }
    EXPECT_THROW(loadSpec(path), SimError);

    {
        std::ofstream out(path);
        out << R"({"nprocs": 0})"; // fails validation, not parsing
    }
    EXPECT_THROW(loadSpec(path), SimError);
    std::remove(path.c_str());
}

TEST(MachineSpec, MissingFileThrows)
{
    EXPECT_THROW(loadSpec("/nonexistent/machine.json"), SimError);
}

/**
 * The tentpole's acceptance differential, four configs: {seq, par} x
 * {paper1997, modern} on Q6 tiny. Seq and par are deliberately NOT
 * compared to each other — Q6 takes locks, and contended acquires may
 * time differently across engines (the documented engine contract, see
 * test_engine_differential.cc). What each config MUST deliver is bit
 * identity with itself: repeat runs, and for par every host thread
 * count, produce byte-identical statistics — at two levels and at
 * three. A level-chain walk that consulted any engine-dependent state
 * would break this immediately.
 */
TEST(MachineSpec, FourConfigBitIdentityDifferentialQ6)
{
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 4, 42);
    harness::TraceSet traces = wl.trace(tpcd::QueryId::Q6);
    for (const std::string &name : {std::string("paper1997"),
                                    std::string("modern")}) {
        const MachineSpec spec = machinePreset(name);
        for (bool par : {false, true}) {
            std::string first;
            const std::vector<EngineConfig> engines =
                par ? std::vector<EngineConfig>{EngineConfig::par(),
                                                EngineConfig::par(1),
                                                EngineConfig::par(2)}
                    : std::vector<EngineConfig>{EngineConfig::seq(),
                                                EngineConfig::seq()};
            for (const EngineConfig &engine : engines) {
                harness::RunOptions ro;
                ro.engine = engine;
                SimStats stats = harness::runCold(spec.config, traces, ro);
                const std::string dump = obs::toJson(stats).dump();
                if (first.empty())
                    first = dump;
                else
                    EXPECT_EQ(dump, first)
                        << name << (par ? "/par" : "/seq")
                        << ": nondeterministic statistics";
            }
            EXPECT_FALSE(first.empty());
        }
    }
}

} // namespace
