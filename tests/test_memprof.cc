/**
 * @file
 * Line-level memory profiler: true/false-sharing classification of
 * synthetic ping-pong patterns, conflict-miss set attribution, region
 * symbolization, engine/thread bit-identity of the profile, and the
 * disabled-mode guarantees (no tracker allocated, split counters zero).
 */

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "obs/json.hh"
#include "obs/lineinfo.hh"
#include "obs/memprof.hh"
#include "sim/arena.hh"
#include "sim/machine.hh"
#include "sim/sharing.hh"
#include "sim/trace.hh"

namespace {

using namespace dss;

constexpr sim::Addr kLine = sim::AddressSpace::kSharedBase; // line-aligned

obs::MemProfileConfig
smallConfig(unsigned nprocs = 2)
{
    obs::MemProfileConfig cfg;
    cfg.l2 = {4 * 1024, 64, 1};
    cfg.nprocs = nprocs;
    return cfg;
}

std::vector<const sim::TraceStream *>
ptrs(const std::vector<sim::TraceStream> &streams)
{
    std::vector<const sim::TraceStream *> out;
    for (const sim::TraceStream &s : streams)
        out.push_back(&s);
    return out;
}

// ------------------------------------------------------------ region map

TEST(RegionMap, ResolvesFlatAndIndexedRegions)
{
    obs::RegionMap map;
    map.add(0x1000, 64, "BufMgrLock");
    map.addIndexed(0x2000, 4, 32, "buf descriptor");

    EXPECT_EQ(map.resolve(0x1000), "BufMgrLock");
    EXPECT_EQ(map.resolve(0x103f), "BufMgrLock");
    EXPECT_EQ(map.resolve(0x1040), ""); // one past the end
    EXPECT_EQ(map.resolve(0x2000), "buf descriptor 0");
    EXPECT_EQ(map.resolve(0x2025), "buf descriptor 1");
    EXPECT_EQ(map.resolve(0x207f), "buf descriptor 3");
    EXPECT_EQ(map.resolve(0x0), "");
    EXPECT_EQ(map.size(), 2u);
}

TEST(RegionMap, RejectsOverlappingRegions)
{
    obs::RegionMap map;
    map.add(0x1000, 64, "a");
    EXPECT_THROW(map.add(0x1020, 64, "b"), std::invalid_argument);
    EXPECT_THROW(map.add(0x0fff, 2, "c"), std::invalid_argument);
    EXPECT_THROW(map.add(0x1000, 0, "empty"), std::invalid_argument);
    map.add(0x1040, 64, "adjacent is fine");
    EXPECT_EQ(map.size(), 2u);
}

// --------------------------------------------- true / false classification

/** Two writers ping-ponging the SAME word: every coherence miss consumes
 * remotely-written data, so the split must be all-true. */
TEST(MemProfile, SameWordPingPongIsTrueSharing)
{
    obs::MemProfile prof(smallConfig());
    const unsigned kRounds = 10;
    std::vector<sim::TraceStream> streams(2);
    for (unsigned i = 0; i < kRounds; ++i)
        for (unsigned p = 0; p < 2; ++p)
            streams[p].record(
                sim::TraceEntry::write(kLine, sim::DataClass::Data, 8));
    prof.addTraces(ptrs(streams));

    ASSERT_EQ(prof.lines().count(kLine), 1u);
    const obs::LineRecord &rec = prof.lines().at(kLine);
    EXPECT_EQ(rec.writes, 2u * kRounds);
    // First touch of each model cache is cold; after that every write
    // misses on the other writer's invalidation and reads back the very
    // word it dirtied.
    EXPECT_EQ(rec.cold, 2u);
    EXPECT_EQ(rec.coheTrue, 2u * (kRounds - 1));
    EXPECT_EQ(rec.coheFalse, 0u);
}

/** Two writers ping-ponging DISJOINT words of one line: the misses are
 * pure line-granularity artifacts, so the split must be all-false. */
TEST(MemProfile, DisjointWordPingPongIsFalseSharing)
{
    obs::MemProfile prof(smallConfig());
    const unsigned kRounds = 10;
    std::vector<sim::TraceStream> streams(2);
    for (unsigned i = 0; i < kRounds; ++i) {
        streams[0].record(
            sim::TraceEntry::write(kLine, sim::DataClass::Data, 8));
        streams[1].record(
            sim::TraceEntry::write(kLine + 56, sim::DataClass::Data, 8));
    }
    prof.addTraces(ptrs(streams));

    const obs::LineRecord &rec = prof.lines().at(kLine);
    EXPECT_EQ(rec.cold, 2u);
    EXPECT_EQ(rec.coheFalse, 2u * (kRounds - 1));
    EXPECT_EQ(rec.coheTrue, 0u);
}

/** A reader chasing a writer: reads of the written word are true sharing,
 * reads of a different word in the same line are false sharing. */
TEST(MemProfile, ReaderClassifiesByWordOverlap)
{
    const unsigned kRounds = 8;
    for (bool overlap : {true, false}) {
        obs::MemProfile prof(smallConfig());
        std::vector<sim::TraceStream> streams(2);
        const sim::Addr read_at = overlap ? kLine : kLine + 32;
        for (unsigned i = 0; i < kRounds; ++i) {
            streams[0].record(
                sim::TraceEntry::write(kLine, sim::DataClass::Data, 8));
            streams[1].record(
                sim::TraceEntry::read(read_at, sim::DataClass::Data, 8));
        }
        prof.addTraces(ptrs(streams));

        const obs::LineRecord &rec = prof.lines().at(kLine);
        EXPECT_EQ(rec.reads, kRounds);
        EXPECT_EQ(rec.writes, kRounds);
        if (overlap) {
            EXPECT_GT(rec.coheTrue, 0u);
            EXPECT_EQ(rec.coheFalse, 0u);
        } else {
            EXPECT_EQ(rec.coheTrue, 0u);
            EXPECT_GT(rec.coheFalse, 0u);
        }
    }
}

/** Lock acquire/release trace entries replay as stores and classify. */
TEST(MemProfile, LockOpsCountAsWrites)
{
    obs::MemProfile prof(smallConfig());
    std::vector<sim::TraceStream> streams(2);
    for (unsigned i = 0; i < 6; ++i)
        for (unsigned p = 0; p < 2; ++p) {
            streams[p].record(
                sim::TraceEntry::lockAcq(kLine, sim::DataClass::LockSLock));
            streams[p].record(
                sim::TraceEntry::lockRel(kLine, sim::DataClass::LockSLock));
        }
    prof.addTraces(ptrs(streams));

    const obs::LineRecord &rec = prof.lines().at(kLine);
    EXPECT_EQ(rec.cls, sim::DataClass::LockSLock);
    EXPECT_EQ(rec.writes, 24u);
    EXPECT_EQ(rec.reads, 0u);
    EXPECT_GT(rec.coheTrue, 0u); // lock word: same-word ping-pong
    EXPECT_EQ(rec.coheFalse, 0u);
}

// ------------------------------------------------------- set attribution

TEST(MemProfile, ConflictMissesAttributeToTheirSet)
{
    // 4 KB direct-mapped, 64 B lines -> 64 sets; a stride of 4 KB maps
    // every address to the same set.
    obs::MemProfile prof(smallConfig(1));
    const unsigned kRounds = 5;
    std::vector<sim::TraceStream> streams(1);
    for (unsigned i = 0; i < kRounds; ++i)
        for (unsigned k = 0; k < 3; ++k)
            streams[0].record(sim::TraceEntry::read(
                kLine + k * 4096, sim::DataClass::Data, 8));
    prof.addTraces(ptrs(streams));

    const std::size_t set = (kLine / 64) % 64;
    obs::LineRecord tot = prof.totals();
    EXPECT_EQ(tot.cold, 3u);
    EXPECT_EQ(tot.conf, 3u * kRounds - 3);
    EXPECT_EQ(prof.confOfSet(set), tot.conf);

    obs::Json doc = prof.toJson(4);
    const obs::Json *sets = doc.find("sets");
    ASSERT_NE(sets, nullptr);
    ASSERT_GE(sets->size(), 1u);
    EXPECT_EQ(sets->at(0).find("set")->asUint(), set);
    EXPECT_EQ(sets->at(0).find("conf")->asUint(), tot.conf);
}

// --------------------------------------------------------- symbolization

TEST(MemProfile, SymbolizesThroughRegionMapWithClassFallback)
{
    obs::MemProfile prof(smallConfig());
    std::vector<sim::TraceStream> streams(2);
    const sim::Addr unmapped = kLine + 4096;
    for (unsigned i = 0; i < 4; ++i)
        for (unsigned p = 0; p < 2; ++p) {
            streams[p].record(sim::TraceEntry::write(
                kLine, sim::DataClass::LockSLock, 8));
            streams[p].record(sim::TraceEntry::write(
                unmapped, sim::DataClass::LockHash, 8));
        }
    prof.addTraces(ptrs(streams));

    obs::RegionMap symbols;
    symbols.add(kLine, 64, "LockMgrLock");

    obs::Json doc = prof.toJson(10, &symbols);
    const obs::Json *lines = doc.find("lines");
    ASSERT_NE(lines, nullptr);
    bool saw_symbol = false, saw_fallback = false;
    for (std::size_t i = 0; i < lines->size(); ++i) {
        const obs::Json &rec = lines->at(i);
        if (rec.find("addr")->asUint() == kLine) {
            EXPECT_EQ(rec.find("symbol")->asString(), "LockMgrLock");
            saw_symbol = true;
        }
        if (rec.find("addr")->asUint() == unmapped) {
            // No region covers it: falls back to the data-class name.
            EXPECT_EQ(rec.find("symbol")->asString(),
                      sim::dataClassName(sim::DataClass::LockHash));
            saw_fallback = true;
        }
    }
    EXPECT_TRUE(saw_symbol);
    EXPECT_TRUE(saw_fallback);
}

// --------------------------------------------------- workload determinism

/** The profile is a pure function of the traces: the JSON must be
 * byte-identical whichever engine (and thread count) ran the machine. */
TEST(MemProfile, ProfileBitIdenticalAcrossEnginesAndThreads)
{
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 4, 42);
    const sim::MachineConfig cfg = sim::MachineConfig::baseline();
    harness::TraceSet traces = wl.trace(tpcd::QueryId::Q6);

    obs::MemProfileConfig mc;
    mc.l2 = cfg.coherent();
    mc.nprocs = cfg.nprocs;
    mc.pageBytes = cfg.pageBytes;

    obs::RegionMap symbols;
    wl.db().catalog().describeRegions(symbols);
    ASSERT_GT(symbols.size(), 0u);

    std::string first;
    for (const sim::EngineConfig &engine :
         {sim::EngineConfig::seq(), sim::EngineConfig::par(),
          sim::EngineConfig::par(2), sim::EngineConfig::par(3)}) {
        obs::MemProfile prof(mc);
        harness::RunOptions ro;
        ro.engine = engine;
        ro.memProfile = &prof;
        (void)harness::runCold(cfg, traces, ro);
        const std::string dump = prof.toJson(20, &symbols).dump();
        if (first.empty())
            first = dump;
        else
            EXPECT_EQ(dump, first);
    }
    EXPECT_FALSE(first.empty());
}

/** With sharing enabled, the machine's own split reconciles exactly:
 * per proc, l2CoheTrue + l2CoheFalse == the Cohe column of l2Misses. */
TEST(MemProfile, MachineSplitReconcilesWithCoherenceMisses)
{
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 4, 42);
    const sim::MachineConfig cfg = sim::MachineConfig::baseline();
    harness::TraceSet traces = wl.trace(tpcd::QueryId::Q3);

    obs::MemProfile prof({cfg.coherent(), cfg.nprocs, cfg.pageBytes});
    harness::RunOptions ro;
    ro.memProfile = &prof;
    obs::Json snapshot;
    ro.registrySnapshot = &snapshot;
    sim::SimStats stats = harness::runCold(cfg, traces, ro);

    std::uint64_t total_cohe = 0;
    for (std::size_t p = 0; p < stats.procs.size(); ++p) {
        const sim::ProcStats &st = stats.procs[p];
        std::uint64_t cohe = 0;
        for (std::size_t c = 0; c < sim::kNumDataClasses; ++c)
            cohe += st.l2Misses().of(static_cast<sim::DataClass>(c),
                                   sim::MissType::Cohe);
        EXPECT_EQ(st.l2CoheTrue + st.l2CoheFalse, cohe) << "proc " << p;
        total_cohe += cohe;

        const std::string prefix = "proc" + std::to_string(p);
        EXPECT_EQ(snapshot.find(prefix + ".miss.cohe")->asUint(), cohe);
        EXPECT_EQ(snapshot.find(prefix + ".miss.cohe.true")->asUint(),
                  st.l2CoheTrue);
        EXPECT_EQ(snapshot.find(prefix + ".miss.cohe.false")->asUint(),
                  st.l2CoheFalse);
    }
    EXPECT_GT(total_cohe, 0u); // Q3 on 4 procs does share
}

// ------------------------------------------------------------- disabled

/** Without a profiler the machine must not even allocate the tracker,
 * and the split counters stay zero while plain cohe counts flow. */
TEST(MemProfile, DisabledMachineAllocatesNoTrackerAndSplitsNothing)
{
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 4, 42);
    const sim::MachineConfig cfg = sim::MachineConfig::baseline();
    harness::TraceSet traces = wl.trace(tpcd::QueryId::Q3);

    sim::Machine machine(cfg);
    EXPECT_EQ(machine.sharingTracker(), nullptr);
    sim::SimStats stats = machine.run(harness::tracePtrs(traces));
    EXPECT_EQ(machine.sharingTracker(), nullptr);

    std::uint64_t cohe = 0;
    for (const sim::ProcStats &st : stats.procs) {
        EXPECT_EQ(st.l2CoheTrue, 0u);
        EXPECT_EQ(st.l2CoheFalse, 0u);
        for (std::size_t c = 0; c < sim::kNumDataClasses; ++c)
            cohe += st.l2Misses().of(static_cast<sim::DataClass>(c),
                                   sim::MissType::Cohe);
    }
    EXPECT_GT(cohe, 0u); // the misses themselves still happen
}

// ------------------------------------------------------------ api misuse

TEST(MemProfile, RejectsBadProcessorCounts)
{
    obs::MemProfileConfig cfg = smallConfig();
    cfg.nprocs = 0;
    EXPECT_THROW(obs::MemProfile{cfg}, std::invalid_argument);
    cfg.nprocs = sim::SharingTracker::kMaxProcs + 1;
    EXPECT_THROW(obs::MemProfile{cfg}, std::invalid_argument);

    obs::MemProfile prof(smallConfig(1));
    std::vector<sim::TraceStream> streams(2);
    EXPECT_THROW(prof.addTraces(ptrs(streams)), std::invalid_argument);
}

} // namespace
