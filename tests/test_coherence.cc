/**
 * @file
 * Coherence-protocol edge cases in the Machine: ownership upgrades,
 * dirty-remote fetches, downgrades on remote reads, dirty writebacks on
 * eviction, and the directory state transitions behind them.
 */

#include <gtest/gtest.h>

#include "sim/arena.hh"
#include "sim/machine.hh"

namespace {

using namespace dss::sim;

TraceStream
streamOf(std::initializer_list<TraceEntry> entries)
{
    TraceStream s;
    for (const TraceEntry &e : entries)
        s.record(e);
    return s;
}

TEST(Coherence, WriteUpgradeInvalidatesSharers)
{
    Machine m(MachineConfig::baseline());
    // Both procs read the line (Shared in both); proc 0 then writes.
    TraceStream p0 = streamOf({
        TraceEntry::read(0x40, DataClass::Data, 8),
        TraceEntry::busy(10000),
        TraceEntry::write(0x40, DataClass::Data, 8),
        TraceEntry::busy(20000),
    });
    TraceStream p1 = streamOf({
        TraceEntry::busy(5000),
        TraceEntry::read(0x40, DataClass::Data, 8), // shares the line
        TraceEntry::busy(25000),
        TraceEntry::read(0x40, DataClass::Data, 8), // after the upgrade
    });
    SimStats s = m.run({&p0, &p1});
    // Proc 1's second read is a coherence miss caused by the upgrade.
    EXPECT_EQ(s.procs[1].l2Misses().of(DataClass::Data, MissType::Cohe), 1u);
    // That read also downgraded proc 0's dirty copy: both now share it
    // clean.
    EXPECT_TRUE(m.l2(0).contains(0x40));
    EXPECT_FALSE(m.l2(0).isDirty(0x40));
    EXPECT_TRUE(m.l2(1).contains(0x40));
}

TEST(Coherence, RemoteReadDowngradesDirtyOwner)
{
    Machine m(MachineConfig::baseline());
    TraceStream writer = streamOf({
        TraceEntry::write(0x40, DataClass::Data, 8),
        TraceEntry::busy(30000),
        // Write again after the downgrade: must re-upgrade, not L2-hit.
        TraceEntry::write(0x40, DataClass::Data, 8),
    });
    TraceStream reader = streamOf({
        TraceEntry::busy(10000),
        TraceEntry::read(0x40, DataClass::Data, 8), // forces the downgrade
        TraceEntry::busy(30000),
        TraceEntry::read(0x40, DataClass::Data, 8), // invalidated again
    });
    SimStats s = m.run({&writer, &reader});
    // The reader's second read misses because of the re-upgrade.
    EXPECT_EQ(s.procs[1].l2Misses().of(DataClass::Data, MissType::Cohe), 1u);
    // ... and downgrades the writer again: final state is shared-clean in
    // both caches.
    EXPECT_TRUE(m.l2(0).contains(0x40));
    EXPECT_FALSE(m.l2(0).isDirty(0x40));
    EXPECT_TRUE(m.l2(1).contains(0x40));
}

TEST(Coherence, WriteMissFetchesFromDirtyRemote)
{
    Machine m(MachineConfig::baseline());
    TraceStream first = streamOf({
        TraceEntry::write(0x40, DataClass::Data, 8),
    });
    TraceStream second = streamOf({
        TraceEntry::busy(10000),
        TraceEntry::write(0x40, DataClass::Data, 8), // steals ownership
    });
    SimStats s = m.run({&first, &second});
    (void)s;
    EXPECT_FALSE(m.l2(0).contains(0x40)); // invalidated out of proc 0
    EXPECT_TRUE(m.l2(1).isDirty(0x40));
}

TEST(Coherence, DirtyEvictionWritesBackAndForgetsOwnership)
{
    MachineConfig cfg = MachineConfig::baseline();
    cfg.nprocs = 2;
    Machine m(cfg);
    // Dirty a line, then stream enough conflicting lines through the same
    // L2 set to evict it (128K 2-way, 64 B lines -> set stride 64 KiB).
    TraceStream t;
    t.record(TraceEntry::write(0x0, DataClass::Data, 8));
    t.record(TraceEntry::busy(100000)); // drain the write buffer
    for (int i = 1; i <= 2; ++i)
        t.record(TraceEntry::read(static_cast<Addr>(i) * 64 * 1024,
                                  DataClass::Data, 8));
    TraceStream other = streamOf({
        TraceEntry::busy(500000),
        // If the writeback lost data/ownership tracking, this read would
        // try a dirty-remote fetch from a cache that no longer has it.
        TraceEntry::read(0x0, DataClass::Data, 8),
    });
    SimStats s = m.run({&t, &other});
    EXPECT_FALSE(m.l2(0).contains(0x0));
    // The late reader gets it from memory as a cold miss at 2-hop cost at
    // most — and the run completes without tripping any asserts.
    EXPECT_EQ(s.procs[1].l2Misses().of(DataClass::Data, MissType::Cold), 1u);
}

TEST(Coherence, RmwOnOwnDirtyLineIsLocal)
{
    Machine m(MachineConfig::baseline());
    TraceStream t = streamOf({
        TraceEntry::write(0x400, DataClass::LockSLock, 8),
        TraceEntry::busy(10000),
        TraceEntry::lockAcq(0x400, DataClass::LockSLock),
        TraceEntry::lockRel(0x400, DataClass::LockSLock),
    });
    SimStats s = m.run({&t});
    // The RMW finds the word exclusively owned: it completes at the L2
    // (16 cycles -> 15 stall), not via the directory.
    EXPECT_EQ(s.procs[0].memStall, 15u);
}

TEST(Coherence, ThreeWaySharingInvalidatesAllCopies)
{
    Machine m(MachineConfig::baseline());
    TraceStream r1 = streamOf({
        TraceEntry::read(0x40, DataClass::Data, 8),
        TraceEntry::busy(50000),
        TraceEntry::read(0x40, DataClass::Data, 8),
    });
    TraceStream r2 = streamOf({
        TraceEntry::busy(1000),
        TraceEntry::read(0x40, DataClass::Data, 8),
        TraceEntry::busy(50000),
        TraceEntry::read(0x40, DataClass::Data, 8),
    });
    TraceStream w = streamOf({
        TraceEntry::busy(10000),
        TraceEntry::write(0x40, DataClass::Data, 8),
    });
    SimStats s = m.run({&r1, &r2, &w});
    EXPECT_EQ(s.procs[0].l2Misses().of(DataClass::Data, MissType::Cohe), 1u);
    EXPECT_EQ(s.procs[1].l2Misses().of(DataClass::Data, MissType::Cohe), 1u);
}

TEST(Coherence, PrivateDataNeverPingPongs)
{
    Machine m(MachineConfig::baseline());
    // Two procs hammer their own private addresses: no coherence misses.
    auto priv = [](ProcId p, int i) {
        return AddressSpace::kPrivateBase +
               p * AddressSpace::kPrivateStride +
               static_cast<Addr>(i) * 64;
    };
    TraceStream p0, p1;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 8; ++i) {
            p0.record(TraceEntry::write(priv(0, i), DataClass::Priv, 8));
            p0.record(TraceEntry::read(priv(0, i), DataClass::Priv, 8));
            p1.record(TraceEntry::write(priv(1, i), DataClass::Priv, 8));
            p1.record(TraceEntry::read(priv(1, i), DataClass::Priv, 8));
        }
    }
    SimStats s = m.run({&p0, &p1});
    for (const ProcStats &ps : s.procs) {
        for (std::size_t c = 0; c < kNumDataClasses; ++c) {
            EXPECT_EQ(ps.l2Misses().of(static_cast<DataClass>(c),
                                     MissType::Cohe),
                      0u);
        }
    }
}

TEST(Coherence, PrivateHomeIsAlwaysLocal)
{
    Machine m(MachineConfig::baseline());
    TraceStream t = streamOf({
        TraceEntry::read(AddressSpace::kPrivateBase + 0x40,
                         DataClass::Priv, 8),
    });
    SimStats s = m.run({&t});
    // Local memory: 80-cycle round trip, 79 stall.
    EXPECT_EQ(s.procs[0].memStall, 79u);
}

} // namespace
