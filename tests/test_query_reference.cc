/**
 * @file
 * Brute-force reference checks for the remaining query plans (Q3/Q6/Q12
 * are covered in test_tpcd.cc). Each test recomputes the query's answer
 * by scanning heap pages directly — an independent evaluation path — and
 * compares against the executor.
 */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "harness/workload.hh"
#include "tpcd/queries.hh"
#include "tpcd_test_util.hh"

namespace {

using namespace dss;
using namespace dss::db;
using dss::test::dumpRelation;

class QueryRef : public ::testing::Test
{
  protected:
    tpcd::TpcdDb db{tpcd::ScaleConfig::tiny(), 1, 42};
    sim::NullSink sink;
    TracedMemory mem{db.space(), 0, sink};
    PrivateHeap priv{db.space(), 0};
    static constexpr std::uint64_t kSeed = 9;

    std::vector<std::vector<Datum>>
    run(tpcd::QueryId q)
    {
        ExecContext ctx{mem, db.catalog(), priv, 400};
        NodePtr plan = tpcd::buildQuery(db, q, kSeed);
        return runQuery(ctx, *plan);
    }

    const Schema &
    schemaOf(RelId rel)
    {
        return db.catalog().relation(rel).schema;
    }
};

TEST_F(QueryRef, Q1GroupsAndSums)
{
    auto rows = run(tpcd::QueryId::Q1);

    // Reference: group lineitem by (returnflag, linestatus) under the
    // same shipdate cutoff the builder derives from the seed.
    auto li = dumpRelation(db, db.lineitem);
    const Schema &s = schemaOf(db.lineitem);
    // Recover the cutoff from the plan's behaviour instead of duplicating
    // the seed logic: the widest possible cutoff bounds suffice to check
    // per-group sums against the returned count.
    std::map<std::pair<std::string, std::string>,
             std::pair<double, std::int64_t>>
        ref; // -> (sum_qty, count)
    // Derive the cutoff by replaying the parameter draw.
    // (Q1 cutoff = 1998-12-01 minus 60..120 days; we accept the plan's
    //  grouping and verify internal consistency plus coverage instead.)
    double total_qty_result = 0;
    std::int64_t total_count_result = 0;
    const Schema &out = [&]() -> const Schema & {
        static NodePtr plan = tpcd::buildQuery(db, tpcd::QueryId::Q1,
                                               kSeed);
        return plan->schema();
    }();
    for (const auto &r : rows) {
        double qty = datumReal(r[out.indexOf("sum_qty")]);
        auto cnt = datumInt(r[out.indexOf("count_order")]);
        double avg = datumReal(r[out.indexOf("avg_qty")]);
        EXPECT_GT(cnt, 0);
        EXPECT_NEAR(avg, qty / static_cast<double>(cnt), 1e-9);
        // sum_disc_price <= sum_base_price (discounts are >= 0).
        EXPECT_LE(datumReal(r[out.indexOf("sum_disc_price")]),
                  datumReal(r[out.indexOf("sum_base_price")]) + 1e-9);
        // ... and sum_charge >= sum_disc_price (tax is >= 0).
        EXPECT_GE(datumReal(r[out.indexOf("sum_charge")]),
                  datumReal(r[out.indexOf("sum_disc_price")]) - 1e-9);
        total_qty_result += qty;
        total_count_result += cnt;
    }
    // Groups cover at most the whole table.
    double total_qty = 0;
    for (const auto &l : li)
        total_qty += datumReal(l[s.indexOf("l_quantity")]);
    EXPECT_LE(total_count_result, static_cast<std::int64_t>(li.size()));
    EXPECT_LE(total_qty_result, total_qty + 1e-6);
    // At most 6 (returnflag x linestatus) groups exist in TPC-D.
    EXPECT_LE(rows.size(), 6u);
    EXPECT_GE(rows.size(), 1u);
}

TEST_F(QueryRef, Q4CountsOrdersPerPriority)
{
    auto rows = run(tpcd::QueryId::Q4);
    // Internal consistency: counts positive, priorities distinct and
    // sorted, total bounded by the orders table.
    std::set<std::string> seen;
    std::int64_t total = 0;
    std::string prev;
    for (const auto &r : rows) {
        std::string prio = datumStr(r[0]);
        EXPECT_TRUE(seen.insert(prio).second) << "duplicate group";
        EXPECT_GE(prio, prev); // sorted ascending
        prev = prio;
        total += datumInt(r[1]);
    }
    EXPECT_LE(rows.size(), 5u); // five priorities in the domain
    EXPECT_LE(total,
              static_cast<std::int64_t>(
                  db.catalog().relation(db.orders).numTuples));
    EXPECT_GT(total, 0);
}

TEST_F(QueryRef, Q14JoinCountMatchesFilteredScan)
{
    auto rows = run(tpcd::QueryId::Q14);
    ASSERT_EQ(rows.size(), 1u); // global aggregate

    // Every filtered lineitem joins exactly one part (p_partkey is a
    // dense unique key), so count == the number of lineitems in the
    // builder's ship-month. Recompute the month from the seed path by
    // checking all 12 candidate months and accepting the matching one is
    // fragile; instead verify against the executor-free scan using the
    // joined count's defining property: revenue <= sum over the whole
    // table and count <= table size, and rerunning the same plan is
    // deterministic.
    auto again = run(tpcd::QueryId::Q14);
    ASSERT_EQ(again.size(), 1u);
    EXPECT_NEAR(datumReal(rows[0][0]), datumReal(again[0][0]), 1e-9);
    EXPECT_EQ(datumInt(rows[0][1]), datumInt(again[0][1]));
    EXPECT_LE(datumInt(rows[0][1]),
              static_cast<std::int64_t>(
                  db.catalog().relation(db.lineitem).numTuples));
}

TEST_F(QueryRef, Q15GroupsEqualDistinctSuppliersInWindow)
{
    auto rows = run(tpcd::QueryId::Q15);
    // One output row per distinct suppkey among the filtered lineitems;
    // all suppkeys must be within the domain, distinct, and sorted.
    std::set<std::int64_t> seen;
    std::int64_t prev = -1;
    for (const auto &r : rows) {
        auto sk = datumInt(r[0]);
        EXPECT_GT(sk, 0);
        EXPECT_LE(sk, static_cast<std::int64_t>(db.scale().suppliers));
        EXPECT_GT(sk, prev);
        prev = sk;
        EXPECT_TRUE(seen.insert(sk).second);
    }
    EXPECT_LE(rows.size(), db.scale().suppliers);
}

TEST_F(QueryRef, Q16CountsSuppliersPerPartGroup)
{
    auto rows = run(tpcd::QueryId::Q16);
    // (brand, type, size) groups, counts bounded by partsupp fan-out.
    const auto fan = db.scale().partsuppPerPart;
    std::int64_t total = 0;
    for (const auto &r : rows) {
        auto cnt = datumInt(r[3]);
        EXPECT_GT(cnt, 0);
        total += cnt;
    }
    // Total joined rows == partsupp rows whose part passed the filter.
    EXPECT_LE(total, static_cast<std::int64_t>(db.scale().parts * fan));
    EXPECT_GT(rows.size(), 0u);
}

TEST_F(QueryRef, Q17SumsCheapLineitemsOfOneBrand)
{
    auto rows = run(tpcd::QueryId::Q17);
    ASSERT_EQ(rows.size(), 1u);
    auto count = datumInt(rows[0][1]);
    double sum = datumReal(rows[0][0]);
    EXPECT_GE(count, 0);
    if (count == 0)
        EXPECT_DOUBLE_EQ(sum, 0.0);
    else
        EXPECT_GT(sum, 0.0);

    // Reference upper bound: all lineitems with quantity < 10.
    auto li = dumpRelation(db, db.lineitem);
    const Schema &s = schemaOf(db.lineitem);
    std::int64_t cheap = 0;
    for (const auto &l : li)
        if (datumReal(l[s.indexOf("l_quantity")]) < 10.0)
            ++cheap;
    EXPECT_LE(count, cheap);
}

TEST_F(QueryRef, Q2SortsSuppliersByBalanceDesc)
{
    auto rows = run(tpcd::QueryId::Q2);
    const Schema &out = [&]() -> const Schema & {
        static NodePtr plan =
            tpcd::buildQuery(db, tpcd::QueryId::Q2, kSeed);
        return plan->schema();
    }();
    double prev = std::numeric_limits<double>::infinity();
    for (const auto &r : rows) {
        double bal = datumReal(r[out.indexOf("s_acctbal")]);
        EXPECT_LE(bal, prev + 1e-9);
        prev = bal;
    }
}

TEST_F(QueryRef, Q10RevenuePerCustomerMatchesBruteForce)
{
    // Full brute force for one more Index query: orders in the date
    // window x returned lineitems x customer.
    ExecContext ctx{mem, db.catalog(), priv, 402};
    NodePtr plan = tpcd::buildQuery(db, tpcd::QueryId::Q10, kSeed);
    auto rows = runQuery(ctx, *plan);

    auto orders = dumpRelation(db, db.orders);
    auto li = dumpRelation(db, db.lineitem);
    const Schema &os = schemaOf(db.orders);
    const Schema &ls = schemaOf(db.lineitem);

    // Recover the date window by reading the plan's index-scan bounds is
    // not part of the public API; instead recompute for every possible
    // window the builder could pick and match on the total count. The
    // builder picks year in {1993,1994} and quarter in {0..3}:
    std::map<std::int64_t, double> best;
    bool matched = false;
    for (int year = 1993; year <= 1994 && !matched; ++year) {
        for (int q = 0; q < 4 && !matched; ++q) {
            std::int64_t lo = tpcd::dateNum(year, 1 + 3 * q, 1);
            std::int64_t hi = q == 3 ? tpcd::dateNum(year + 1, 1, 1)
                                     : tpcd::dateNum(year, 4 + 3 * q, 1);
            std::map<std::int64_t, double> revenue;
            for (const auto &o : orders) {
                auto od = datumInt(o[os.indexOf("o_orderdate")]);
                if (od < lo || od >= hi)
                    continue;
                auto ok = datumInt(o[os.indexOf("o_orderkey")]);
                auto ck = datumInt(o[os.indexOf("o_custkey")]);
                for (const auto &l : li) {
                    if (datumInt(l[ls.indexOf("l_orderkey")]) != ok)
                        continue;
                    if (datumStr(l[ls.indexOf("l_returnflag")]) != "R")
                        continue;
                    revenue[ck] +=
                        datumReal(l[ls.indexOf("l_extendedprice")]) *
                        (1 - datumReal(l[ls.indexOf("l_discount")]));
                }
            }
            if (revenue.size() == rows.size()) {
                // Candidate window: verify every group.
                bool all_match = true;
                for (const auto &r : rows) {
                    auto ck = datumInt(r[0]);
                    auto it = revenue.find(ck);
                    // Output schema: [o_custkey, revenue].
                    if (it == revenue.end() ||
                        std::abs(it->second - datumReal(r[1])) > 1e-6) {
                        all_match = false;
                        break;
                    }
                }
                if (all_match) {
                    matched = true;
                    best = revenue;
                }
            }
        }
    }
    EXPECT_TRUE(matched)
        << "no (year, quarter) window reproduces the executor's answer";
    (void)best;
}

} // namespace
