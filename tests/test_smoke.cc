/**
 * @file
 * End-to-end smoke test: build a tiny TPC-D database, trace Q6 on two
 * processors, run it on the baseline machine, and sanity-check the stats.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "harness/workload.hh"

namespace {

using namespace dss;

TEST(Smoke, TinyQ6EndToEnd)
{
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 2);
    harness::TraceSet traces = wl.trace(tpcd::QueryId::Q6);
    ASSERT_EQ(traces.size(), 2u);
    EXPECT_GT(traces[0].size(), 1000u);

    sim::MachineConfig cfg = sim::MachineConfig::baseline();
    cfg.nprocs = 2;
    sim::SimStats stats = harness::runCold(cfg, traces);
    ASSERT_EQ(stats.procs.size(), 2u);
    EXPECT_GT(stats.procs[0].busy, 0u);
    EXPECT_GT(stats.procs[0].reads, 0u);
    EXPECT_GT(stats.procs[0].l1Misses().total(), 0u);
}

TEST(Smoke, Q6ResultMatchesHandComputation)
{
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 1);
    auto rows = wl.execute(tpcd::QueryId::Q6, 5);
    ASSERT_EQ(rows.size(), 1u);        // global aggregate: one row
    ASSERT_EQ(rows[0].size(), 1u);     // sum(extendedprice * discount)
    EXPECT_GE(db::datumReal(rows[0][0]), 0.0);
}

} // namespace
