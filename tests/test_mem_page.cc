/**
 * @file
 * Unit tests for TracedMemory (typed loads/stores with trace emission),
 * PrivateHeap mark/rewind, and the slotted page layout.
 */

#include <gtest/gtest.h>

#include "db/page.hh"
#include "db_test_util.hh"

namespace {

using namespace dss;
using dss::test::MemFixture;

TEST(TracedMemory, LoadStoreRoundTrip)
{
    MemFixture f;
    sim::Addr a = f.space.shared().alloc(64, sim::DataClass::Data);
    f.mem.store<std::int64_t>(a, -42);
    EXPECT_EQ(f.mem.load<std::int64_t>(a), -42);
    f.mem.store<double>(a + 8, 2.5);
    EXPECT_DOUBLE_EQ(f.mem.load<double>(a + 8), 2.5);
    f.mem.store<std::uint16_t>(a + 16, 777);
    EXPECT_EQ(f.mem.load<std::uint16_t>(a + 16), 777);
}

TEST(TracedMemory, EveryAccessIsTraced)
{
    MemFixture f;
    sim::Addr a = f.space.shared().alloc(64, sim::DataClass::Index);
    f.mem.load<std::int32_t>(a);
    f.mem.store<std::int32_t>(a, 1);
    EXPECT_EQ(f.countOps(sim::Op::Read, sim::DataClass::Index), 1u);
    EXPECT_EQ(f.countOps(sim::Op::Write, sim::DataClass::Index), 1u);
}

TEST(TracedMemory, BulkOpsEmitOneEventPerWord)
{
    MemFixture f;
    sim::Addr a = f.space.shared().alloc(64, sim::DataClass::Data);
    char buf[20] = "0123456789abcdefghi";
    f.mem.storeBytes(a, buf, 20);
    EXPECT_EQ(f.countOps(sim::Op::Write), 3u); // ceil(20/8)
    char out[20];
    f.mem.loadBytes(a, out, 20);
    EXPECT_EQ(std::memcmp(buf, out, 20), 0);
    EXPECT_EQ(f.countOps(sim::Op::Read), 3u);
}

TEST(TracedMemory, CopyEmitsReadAndWritePairs)
{
    MemFixture f;
    sim::Addr src = f.space.shared().alloc(32, sim::DataClass::Data);
    sim::Addr dst = f.space.priv(0).alloc(32, sim::DataClass::Priv);
    f.mem.store<std::int64_t>(src, 99);
    f.stream.clear();
    f.mem.copy(dst, src, 16);
    EXPECT_EQ(f.mem.load<std::int64_t>(dst), 99);
    EXPECT_EQ(f.countOps(sim::Op::Read, sim::DataClass::Data), 2u);
    EXPECT_EQ(f.countOps(sim::Op::Write, sim::DataClass::Priv), 2u);
}

TEST(TracedMemory, CompareBytesReadsTraced)
{
    MemFixture f;
    sim::Addr a = f.space.shared().alloc(16, sim::DataClass::Data);
    f.mem.storeBytes(a, "hello\0\0\0", 8);
    f.stream.clear();
    EXPECT_EQ(f.mem.compareBytes(a, "hello\0\0\0", 8), 0);
    EXPECT_NE(f.mem.compareBytes(a, "hellp\0\0\0", 8), 0);
    EXPECT_EQ(f.countOps(sim::Op::Read), 2u);
}

TEST(TracedMemory, LockMarkersCarryClass)
{
    MemFixture f;
    sim::Addr w = f.space.shared().alloc(64, sim::DataClass::LockSLock, 64);
    f.mem.lockAcquire(w);
    f.mem.lockRelease(w);
    EXPECT_EQ(f.countOps(sim::Op::LockAcq, sim::DataClass::LockSLock), 1u);
    EXPECT_EQ(f.countOps(sim::Op::LockRel, sim::DataClass::LockSLock), 1u);
}

TEST(TracedMemory, UnmappedAddressThrows)
{
    MemFixture f;
    EXPECT_THROW(f.mem.load<std::int32_t>(0x7), std::runtime_error);
}

TEST(PrivateHeap, MarkRewindReusesAddresses)
{
    MemFixture f;
    db::PrivateHeap heap(f.space, 0);
    std::size_t mark = heap.mark();
    sim::Addr a = heap.alloc(128);
    heap.rewind(mark);
    sim::Addr b = heap.alloc(128);
    EXPECT_EQ(a, b);
}

TEST(Page, InitAndAppend)
{
    MemFixture f;
    sim::Addr base =
        f.space.shared().alloc(db::kPageBytes, sim::DataClass::Data, 8192);
    db::PageRef page(f.mem, base);
    page.init();
    EXPECT_EQ(page.numSlots(), 0u);

    char tup[24] = "tuple-0";
    int s0 = page.addTuple(tup, sizeof(tup));
    EXPECT_EQ(s0, 0);
    char tup1[24] = "tuple-1";
    int s1 = page.addTuple(tup1, sizeof(tup1));
    EXPECT_EQ(s1, 1);
    EXPECT_EQ(page.numSlots(), 2u);
}

TEST(Page, TuplesLaidOutAscending)
{
    // Ascending layout is what makes sequential scans prefetchable
    // (DESIGN.md Section 5 / paper Section 6).
    MemFixture f;
    sim::Addr base =
        f.space.shared().alloc(db::kPageBytes, sim::DataClass::Data, 8192);
    db::PageRef page(f.mem, base);
    page.init();
    char tup[40] = {};
    page.addTuple(tup, sizeof(tup));
    page.addTuple(tup, sizeof(tup));
    page.addTuple(tup, sizeof(tup));
    EXPECT_LT(page.tupleAddr(0), page.tupleAddr(1));
    EXPECT_LT(page.tupleAddr(1), page.tupleAddr(2));
    EXPECT_EQ(page.tupleAddr(1) - page.tupleAddr(0), 40u);
}

TEST(Page, TupleContentsSurviveRoundTrip)
{
    MemFixture f;
    sim::Addr base =
        f.space.shared().alloc(db::kPageBytes, sim::DataClass::Data, 8192);
    db::PageRef page(f.mem, base);
    page.init();
    char tup[16] = "abcdefg";
    int s = page.addTuple(tup, sizeof(tup));
    char out[16];
    f.mem.loadBytes(page.tupleAddr(static_cast<std::uint16_t>(s)), out, 16);
    EXPECT_STREQ(out, "abcdefg");
}

TEST(Page, FillsUntilCapacityThenRejects)
{
    MemFixture f;
    sim::Addr base =
        f.space.shared().alloc(db::kPageBytes, sim::DataClass::Data, 8192);
    db::PageRef page(f.mem, base);
    page.init();
    char tup[128] = {};
    int added = 0;
    while (page.addTuple(tup, sizeof(tup)) >= 0)
        ++added;
    // ~ (8192 - slot area) / 128 tuples fit.
    EXPECT_GT(added, 50);
    EXPECT_LE(static_cast<unsigned>(added), db::PageRef::kMaxSlots);
    EXPECT_EQ(page.numSlots(), static_cast<std::uint16_t>(added));
    EXPECT_LT(page.freeSpace(), 128u);
}

TEST(Page, SlotCountCapEnforced)
{
    MemFixture f;
    sim::Addr base =
        f.space.shared().alloc(db::kPageBytes, sim::DataClass::Data, 8192);
    db::PageRef page(f.mem, base);
    page.init();
    char tup[8] = {};
    int added = 0;
    while (page.addTuple(tup, sizeof(tup)) >= 0)
        ++added;
    EXPECT_EQ(static_cast<unsigned>(added), db::PageRef::kMaxSlots);
}

} // namespace
