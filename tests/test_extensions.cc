/**
 * @file
 * Tests for the extension features: partitioned sequential scans /
 * intra-query parallelism (the paper's future work) and the
 * lock-discipline ablation knob.
 */

#include <set>

#include <gtest/gtest.h>

#include "harness/runner.hh"

namespace {

using namespace dss;
using namespace dss::db;

struct ExtFixture : ::testing::Test
{
    harness::Workload wl{tpcd::ScaleConfig::tiny(), 4, 42};

    tpcd::TpcdDb &
    db()
    {
        return wl.db();
    }

    std::vector<std::vector<Datum>>
    runPlan(NodePtr plan)
    {
        sim::NullSink sink;
        TracedMemory mem(db().space(), 0, sink);
        PrivateHeap priv(db().space(), 0);
        std::size_t mark = priv.mark();
        ExecContext ctx{mem, db().catalog(), priv, 999};
        auto rows = runQuery(ctx, *plan);
        priv.rewind(mark);
        return rows;
    }
};

TEST_F(ExtFixture, PartitionedScanRangesCoverEveryBlockOnce)
{
    const Relation &li = db().catalog().relation(db().lineitem);
    // Count tuples per partition; they must sum to the table.
    std::uint64_t total = 0;
    for (unsigned p = 0; p < 4; ++p) {
        const std::size_t n = li.blocks.size();
        std::size_t lo = n * p / 4, hi = n * (p + 1) / 4;
        sim::NullSink sink;
        TracedMemory mem(db().space(), 0, sink);
        PrivateHeap priv(db().space(), 0);
        std::size_t mark = priv.mark();
        ExecContext ctx{mem, db().catalog(), priv, 500 + p};
        SeqScanNode scan(li, nullptr, lo, hi);
        scan.open(ctx);
        sim::Addr out;
        while (scan.next(ctx, out))
            ++total;
        scan.close(ctx);
        priv.rewind(mark);
    }
    EXPECT_EQ(total, li.numTuples);
}

TEST_F(ExtFixture, PartitionedQ6PartialsSumToWholeQuery)
{
    tpcd::Q6Params params = tpcd::Q6Params::fromSeed(3);
    auto whole = runPlan(tpcd::buildQ6(db(), params));
    ASSERT_EQ(whole.size(), 1u);

    double partial_sum = 0;
    for (unsigned p = 0; p < 4; ++p) {
        auto part = runPlan(tpcd::buildQ6Partition(db(), params, p, 4));
        ASSERT_EQ(part.size(), 1u);
        partial_sum += datumReal(part[0][0]);
    }
    EXPECT_NEAR(partial_sum, datumReal(whole[0][0]), 1e-6);
}

TEST_F(ExtFixture, BadPartitionSpecThrows)
{
    tpcd::Q6Params params = tpcd::Q6Params::fromSeed(3);
    EXPECT_THROW(tpcd::buildQ6Partition(db(), params, 4, 4),
                 std::invalid_argument);
    EXPECT_THROW(tpcd::buildQ6Partition(db(), params, 0, 0),
                 std::invalid_argument);
}

TEST_F(ExtFixture, IntraQueryTracesPartitionTheScan)
{
    harness::TraceSet intra = wl.traceIntraQueryQ6(3);
    ASSERT_EQ(intra.size(), 4u);

    // Each partition reads a disjoint set of lineitem heap lines.
    auto data_lines = [&](const sim::TraceStream &t) {
        std::set<sim::Addr> out;
        for (const sim::TraceEntry &e : t.entries())
            if (e.op == sim::Op::Read && e.cls == sim::DataClass::Data)
                out.insert(e.addr & ~static_cast<sim::Addr>(db::kPageBytes -
                                                            1));
        return out;
    };
    std::set<sim::Addr> seen;
    for (const sim::TraceStream &t : intra) {
        for (sim::Addr page : data_lines(t)) {
            EXPECT_EQ(seen.count(page), 0u)
                << "page 0x" << std::hex << page << " scanned twice";
            seen.insert(page);
        }
    }
    EXPECT_GE(seen.size(),
              db().catalog().relation(db().lineitem).blocks.size());
}

TEST_F(ExtFixture, IntraQueryParallelismGivesRealSpeedup)
{
    sim::MachineConfig cfg = sim::MachineConfig::baseline();
    harness::TraceSet solo;
    solo.push_back(wl.traceOne(tpcd::QueryId::Q6, 0, 7919));
    harness::TraceSet intra = wl.traceIntraQueryQ6(7919);

    sim::Cycles t1 = harness::runCold(cfg, solo).executionTime();
    sim::Cycles t4 = harness::runCold(cfg, intra).executionTime();
    EXPECT_LT(t4, t1 / 2); // at least 2x on 4 processors
}

TEST_F(ExtFixture, LockDisciplineKnobRemovesLockManagerTraffic)
{
    harness::TraceSet on =
        wl.traceWithLockDiscipline(tpcd::QueryId::Q3, 1, true);
    harness::TraceSet off =
        wl.traceWithLockDiscipline(tpcd::QueryId::Q3, 1, false);

    // Count LockMgrLock acquires specifically (BufMgrLock pin traffic is
    // untouched by the knob).
    const sim::Addr lockmgr_word = wl.db().lockmgr().lockAddr();
    auto lockmgr_acqs = [&](const harness::TraceSet &set) {
        std::uint64_t n = 0;
        for (const sim::TraceStream &t : set)
            for (const sim::TraceEntry &e : t.entries())
                if (e.op == sim::Op::LockAcq && e.addr == lockmgr_word)
                    ++n;
        return n;
    };
    EXPECT_LT(lockmgr_acqs(off), lockmgr_acqs(on) / 8);
}

TEST_F(ExtFixture, LockDisciplineOffStillComputesSameResult)
{
    // The knob must not change query semantics: compare the simulated
    // machines' read counts per data class (the data path is identical;
    // only lock-manager activity differs).
    harness::TraceSet on =
        wl.traceWithLockDiscipline(tpcd::QueryId::Q3, 5, true);
    harness::TraceSet off =
        wl.traceWithLockDiscipline(tpcd::QueryId::Q3, 5, false);
    for (unsigned p = 0; p < 4; ++p) {
        auto con = on[p].counts();
        auto coff = off[p].counts();
        EXPECT_EQ(con.readsByClass[static_cast<int>(sim::DataClass::Data)],
                  coff.readsByClass[static_cast<int>(
                      sim::DataClass::Data)]);
        EXPECT_EQ(
            con.readsByClass[static_cast<int>(sim::DataClass::Index)],
            coff.readsByClass[static_cast<int>(sim::DataClass::Index)]);
        EXPECT_GT(
            con.readsByClass[static_cast<int>(sim::DataClass::LockHash)],
            coff.readsByClass[static_cast<int>(
                sim::DataClass::LockHash)]);
    }
}

/** Partition-count sweep: partials always recombine to the whole. */
class PartitionSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(PartitionSweep, PartialAggregatesRecombine)
{
    const unsigned nparts = GetParam();
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 1, 42);
    tpcd::Q6Params params = tpcd::Q6Params::fromSeed(11);

    sim::NullSink sink;
    TracedMemory mem(wl.db().space(), 0, sink);
    PrivateHeap priv(wl.db().space(), 0);
    ExecContext ctx{mem, wl.db().catalog(), priv, 1};

    auto whole_plan = tpcd::buildQ6(wl.db(), params);
    auto whole = runQuery(ctx, *whole_plan);
    double partial_sum = 0;
    for (unsigned p = 0; p < nparts; ++p) {
        auto plan = tpcd::buildQ6Partition(wl.db(), params, p, nparts);
        auto rows = runQuery(ctx, *plan);
        partial_sum += datumReal(rows[0][0]);
    }
    EXPECT_NEAR(partial_sum, datumReal(whole[0][0]), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Parts, PartitionSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 16));

} // namespace
