/**
 * @file
 * Fault-injection determinism and graceful-failure tests (sim/fault.hh,
 * sim/error.hh, harness/guard.hh).
 *
 * The contract under test: a FaultPlan's decisions are a pure function
 * of (seed, run, proc, trace position, kind) — the same seed yields a
 * bit-identical fault schedule under the sequential engine and the
 * parallel engine at any host thread count; rate 0 changes nothing at
 * all; injected query aborts are always retried to completion; and a
 * simulated deadlock surfaces as a typed SimError with a per-processor
 * dump instead of an assert.
 */

#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "obs/stats_json.hh"
#include "sim/arena.hh"
#include "sim/error.hh"
#include "sim/fault.hh"
#include "sim/machine.hh"

namespace {

using namespace dss;
using namespace dss::sim;

TraceStream
streamOf(std::initializer_list<TraceEntry> entries)
{
    TraceStream s;
    for (const TraceEntry &e : entries)
        s.record(e);
    return s;
}

/** Randomized traces with shared lines and locks (contended). When
 * @p conflict_free, each processor keeps to its private region,
 * lock-free — no shared lines and no shared home-node controllers, the
 * regime where par must equal seq exactly. */
std::vector<TraceStream>
fuzzTraces(std::uint64_t seed, unsigned nprocs, bool conflict_free)
{
    std::mt19937_64 rng(seed);
    std::vector<TraceStream> traces;
    for (ProcId p = 0; p < nprocs; ++p) {
        TraceStream t;
        const Addr priv_base =
            AddressSpace::kPrivateBase + p * AddressSpace::kPrivateStride;
        const Addr shared_base = 0x1000'0000;
        const Addr lock_base = 0x2000'0000;
        std::uniform_int_distribution<int> pct(0, 99);
        std::uniform_int_distribution<Addr> off(0, (4 << 10) - 8);
        std::uniform_int_distribution<std::uint32_t> busy(1, 30);
        bool in_cs = false;
        for (std::size_t i = 0; i < 300; ++i) {
            const int r = pct(rng);
            if (!conflict_free && !in_cs && r < 6) {
                t.record(
                    TraceEntry::lockAcq(lock_base, DataClass::LockSLock));
                in_cs = true;
            } else if (in_cs && r < 20) {
                t.record(
                    TraceEntry::lockRel(lock_base, DataClass::LockSLock));
                in_cs = false;
            } else if (r < 40) {
                t.record(TraceEntry::busy(busy(rng)));
            } else {
                const bool shared = !conflict_free && pct(rng) < 40;
                const Addr a = shared ? shared_base + (off(rng) & ~7ull)
                                      : priv_base + (off(rng) & ~7ull);
                if (pct(rng) < 30)
                    t.record(TraceEntry::write(
                        a, shared ? DataClass::Data : DataClass::Priv, 8));
                else
                    t.record(TraceEntry::read(
                        a, shared ? DataClass::Data : DataClass::Priv, 8));
            }
        }
        if (in_cs)
            t.record(TraceEntry::lockRel(lock_base, DataClass::LockSLock));
        traces.push_back(std::move(t));
    }
    return traces;
}

std::vector<const TraceStream *>
ptrsOf(const std::vector<TraceStream> &traces)
{
    std::vector<const TraceStream *> ptrs;
    for (const TraceStream &t : traces)
        ptrs.push_back(&t);
    return ptrs;
}

TEST(FaultDeterminism, ScheduleIdenticalAcrossEnginesAndThreadCounts)
{
    const MachineConfig cfg = MachineConfig::baseline();
    const auto traces = fuzzTraces(7, cfg.nprocs, false);

    FaultConfig fc;
    fc.seed = 42;
    fc.rate = 0.02;

    std::vector<std::vector<FaultPlan::Event>> schedules;
    for (const EngineConfig &engine :
         {EngineConfig::seq(), EngineConfig::par(1), EngineConfig::par(2),
          EngineConfig::par(4)}) {
        Machine m(cfg);
        FaultPlan plan(fc);
        m.setFaultPlan(&plan);
        m.run(ptrsOf(traces), engine);
        schedules.push_back(plan.schedule());
    }
    ASSERT_FALSE(schedules[0].empty()) << "rate 0.02 fired nothing";
    for (std::size_t i = 1; i < schedules.size(); ++i)
        EXPECT_EQ(schedules[0], schedules[i]) << "engine variant " << i;
}

TEST(FaultDeterminism, SeqParStatsIdenticalWithFaultsOnConflictFreeTraces)
{
    const MachineConfig cfg = MachineConfig::baseline();
    const auto traces = fuzzTraces(11, cfg.nprocs, true);

    FaultConfig fc;
    fc.seed = 9;
    fc.rate = 0.02;

    std::string fingerprints[2];
    std::vector<FaultPlan::Event> schedules[2];
    int i = 0;
    for (const EngineConfig &engine :
         {EngineConfig::seq(), EngineConfig::par()}) {
        Machine m(cfg);
        FaultPlan plan(fc);
        m.setFaultPlan(&plan);
        SimStats s = m.run(ptrsOf(traces), engine);
        fingerprints[i] = obs::toJson(s).dump(2);
        schedules[i] = plan.schedule();
        ++i;
    }
    EXPECT_FALSE(schedules[0].empty());
    EXPECT_EQ(schedules[0], schedules[1]);
    EXPECT_EQ(fingerprints[0], fingerprints[1]);
}

TEST(FaultDeterminism, RateZeroPlanChangesNothing)
{
    const MachineConfig cfg = MachineConfig::baseline();
    const auto traces = fuzzTraces(3, cfg.nprocs, false);

    Machine plain(cfg);
    const std::string base =
        obs::toJson(plain.run(ptrsOf(traces))).dump(2);

    Machine m(cfg);
    FaultPlan plan(FaultConfig{}); // rate 0
    m.setFaultPlan(&plan);
    const std::string with_plan = obs::toJson(m.run(ptrsOf(traces))).dump(2);

    EXPECT_EQ(plan.counters().injected, 0u);
    EXPECT_TRUE(plan.schedule().empty());
    EXPECT_EQ(base, with_plan);
}

TEST(FaultInjection, FaultsFireAndPerturbTiming)
{
    const MachineConfig cfg = MachineConfig::baseline();
    const auto traces = fuzzTraces(5, cfg.nprocs, false);

    Machine plain(cfg);
    const SimStats base = plain.run(ptrsOf(traces));

    FaultConfig fc;
    fc.seed = 1;
    fc.rate = 0.05;
    Machine m(cfg);
    FaultPlan plan(fc);
    m.setFaultPlan(&plan);
    const SimStats faulted = m.run(ptrsOf(traces));

    const FaultPlan::Counters c = plan.counters();
    EXPECT_GT(c.injected, 0u);
    // Every per-read/-write kind should have had a chance at this rate.
    EXPECT_GT(c.byKind[static_cast<std::size_t>(FaultKind::LatencySpike)],
              0u);
    EXPECT_GT(faulted.aggregate().totalCycles(),
              base.aggregate().totalCycles());
}

TEST(FaultInjection, InjectedQueryAbortsAreRetriedToCompletion)
{
    const MachineConfig cfg = MachineConfig::baseline();
    const auto traces = fuzzTraces(13, cfg.nprocs, false);
    harness::TraceSet set;
    for (const TraceStream &t : traces)
        set.push_back(t);

    FaultConfig fc;
    fc.seed = 2;
    fc.rate = 0.9; // query aborts all but guaranteed
    fc.kinds = FaultConfig::bitOf(FaultKind::QueryAbort);
    FaultPlan plan(fc);

    harness::RunOptions opts;
    opts.faults = &plan;
    SimStats s = harness::runCold(cfg, set, opts); // must not throw
    EXPECT_GT(s.aggregate().totalCycles(), 0u);

    const FaultPlan::Counters c = plan.counters();
    ASSERT_GT(c.aborts, 0u);
    EXPECT_LE(c.aborts, fc.maxAbortsPerQuery);
    // Every injected abort consumed exactly one retry, with backoff.
    EXPECT_EQ(c.retries, c.aborts);
    EXPECT_GT(c.backoffCycles, 0u);
}

TEST(FaultInjection, ChainedRunsGetDistinctSchedules)
{
    const MachineConfig cfg = MachineConfig::baseline();
    const auto traces = fuzzTraces(17, cfg.nprocs, false);

    FaultConfig fc;
    fc.seed = 4;
    fc.rate = 0.05;
    Machine m(cfg);
    FaultPlan plan(fc);
    m.setFaultPlan(&plan);
    m.run(ptrsOf(traces));
    const auto first = plan.schedule();
    m.run(ptrsOf(traces)); // same traces, next run index
    const auto second = plan.schedule();

    ASSERT_GT(second.size(), first.size());
    // The second run's events carry the new run index, and the schedule
    // differs from a replay of the first (different hash inputs).
    std::vector<FaultPlan::Event> added(second.begin() + first.size(),
                                        second.end());
    ASSERT_FALSE(added.empty());
    for (const FaultPlan::Event &e : added)
        EXPECT_EQ(e.run, 2u);
}

TEST(GracefulFailure, DeadlockThrowsSimErrorWithProcessorDump)
{
    const MachineConfig cfg = MachineConfig::baseline();
    constexpr Addr kWord = 0x2000'0000;
    // Proc 0 acquires and never releases; proc 1 then blocks forever.
    std::vector<TraceStream> traces;
    traces.push_back(streamOf({
        TraceEntry::lockAcq(kWord, DataClass::LockSLock),
        TraceEntry::busy(50),
    }));
    traces.push_back(streamOf({
        TraceEntry::busy(10),
        TraceEntry::lockAcq(kWord, DataClass::LockSLock),
        TraceEntry::busy(50),
    }));
    for (ProcId p = 2; p < cfg.nprocs; ++p)
        traces.push_back(streamOf({TraceEntry::busy(5)}));

    for (const EngineConfig &engine :
         {EngineConfig::seq(), EngineConfig::par()}) {
        Machine m(cfg);
        try {
            m.run(ptrsOf(traces), engine);
            FAIL() << "deadlocked run returned normally";
        } catch (const SimError &e) {
            EXPECT_NE(std::string(e.what()).find("deadlock"),
                      std::string::npos);
            obs::Json dump = e.dump(); // operator[] is non-const
            ASSERT_FALSE(dump["procs"].isNull());
            EXPECT_EQ(dump["procs"].size(), cfg.nprocs);
            ASSERT_FALSE(dump["locks"].isNull());
        }
    }
}

} // namespace
