/**
 * @file
 * Golden-stats regression tests: the full per-processor statistics of the
 * paper's three focus queries (Q3 Index, Q6 Sequential, Q12 Mixed) at the
 * tiny scale, for both simulation engines, pinned against checked-in JSON
 * fixtures under tests/golden/.
 *
 * These exist to catch *unintended* behaviour changes: any edit to the
 * caches, directory, write buffer, lock model or either engine that moves
 * a single counter fails loudly here. When a change is intended,
 * regenerate the fixtures (scripts/regen_golden.sh, or run this binary
 * with DSS_REGEN_GOLDEN=1) and review the fixture diff like code.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "harness/workload.hh"
#include "obs/stats_json.hh"
#include "sched/scheduler.hh"
#include "sim/fault.hh"
#include "tpcd/queries.hh"

#ifndef DSS_GOLDEN_DIR
#error "tests/CMakeLists.txt must define DSS_GOLDEN_DIR"
#endif

namespace {

using namespace dss;

std::string
goldenPath(const std::string &name)
{
    return std::string(DSS_GOLDEN_DIR) + "/" + name;
}

void
checkGolden(tpcd::QueryId q, const sim::EngineConfig &engine,
            const std::string &fixture)
{
    // A fresh workload per check: tracing a query reads through the live
    // database engine, so traces (and therefore stats) depend on what ran
    // before in this process. Fresh state keeps every fixture independent
    // of test ordering and sharding.
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 4);
    harness::TraceSet traces = wl.trace(q);
    sim::SimStats stats =
        harness::runCold(sim::MachineConfig::baseline(), traces, engine);
    const std::string actual = obs::toJson(stats).dump(2) + "\n";

    const std::string path = goldenPath(fixture);
    if (std::getenv("DSS_REGEN_GOLDEN") != nullptr) {
        std::ofstream os(path);
        ASSERT_TRUE(os) << "cannot write " << path;
        os << actual;
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream is(path);
    ASSERT_TRUE(is) << "missing fixture " << path
                    << " (run scripts/regen_golden.sh)";
    std::ostringstream want;
    want << is.rdbuf();
    EXPECT_EQ(want.str(), actual)
        << "stats for " << tpcd::queryName(q) << " ("
        << sim::engineKindName(engine.kind) << " engine) diverged from "
        << path << "; if intended, regenerate with scripts/regen_golden.sh";
}

TEST(GoldenStats, Q3Seq)
{
    checkGolden(tpcd::QueryId::Q3, sim::EngineConfig::seq(), "q3_seq.json");
}

TEST(GoldenStats, Q6Seq)
{
    checkGolden(tpcd::QueryId::Q6, sim::EngineConfig::seq(), "q6_seq.json");
}

TEST(GoldenStats, Q12Seq)
{
    checkGolden(tpcd::QueryId::Q12, sim::EngineConfig::seq(),
                "q12_seq.json");
}

TEST(GoldenStats, Q3Par)
{
    checkGolden(tpcd::QueryId::Q3, sim::EngineConfig::par(), "q3_par.json");
}

TEST(GoldenStats, Q6Par)
{
    checkGolden(tpcd::QueryId::Q6, sim::EngineConfig::par(), "q6_par.json");
}

TEST(GoldenStats, Q12Par)
{
    checkGolden(tpcd::QueryId::Q12, sim::EngineConfig::par(),
                "q12_par.json");
}

/**
 * Stream golden: a pinned open-loop stream (8 instances, seed 42, FIFO,
 * trace cache on) through the scheduler, full per-instance statistics
 * included. The stream report is deliberately engine-free and stream
 * results are engine-invariant, so stream_seq.json and stream_par.json
 * are expected to be byte-identical files — checking in both documents
 * that property and catches either engine drifting alone.
 */
void
checkStreamGolden(const sim::EngineConfig &engine,
                  const std::string &fixture)
{
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 4);
    sched::StreamConfig scfg;
    scfg.instances = 8;
    scfg.seed = 42;
    scfg.mode = sched::ArrivalMode::Open;
    scfg.meanInterarrival = 500000;
    scfg.policy = sched::Policy::Fifo;
    scfg.paramVariants = 2;

    harness::RunOptions opts;
    opts.engine = engine;
    sched::TraceCache cache;
    sched::StreamScheduler sched(wl, sim::MachineConfig::baseline(), scfg,
                                 opts, &cache);
    const std::string actual = toJson(sched.run(), true).dump(2) + "\n";

    const std::string path = goldenPath(fixture);
    if (std::getenv("DSS_REGEN_GOLDEN") != nullptr) {
        std::ofstream os(path);
        ASSERT_TRUE(os) << "cannot write " << path;
        os << actual;
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream is(path);
    ASSERT_TRUE(is) << "missing fixture " << path
                    << " (run scripts/regen_golden.sh)";
    std::ostringstream want;
    want << is.rdbuf();
    EXPECT_EQ(want.str(), actual)
        << "stream stats (" << sim::engineKindName(engine.kind)
        << " engine) diverged from " << path
        << "; if intended, regenerate with scripts/regen_golden.sh";
}

TEST(GoldenStats, StreamSeq)
{
    checkStreamGolden(sim::EngineConfig::seq(), "stream_seq.json");
}

TEST(GoldenStats, StreamPar)
{
    checkStreamGolden(sim::EngineConfig::par(), "stream_par.json");
}

/**
 * Resilient-stream golden: the full resilience layer at once — a binding
 * deadline, a bounded run queue, the per-class breaker, and seeded node
 * failures with migration — pinned for both engines. Like the plain
 * stream goldens the two fixtures are expected to be byte-identical
 * files: the resilience report (SLO accounting, breaker states, fired
 * outages) is engine-invariant by construction.
 */
void
checkResilientStreamGolden(const sim::EngineConfig &engine,
                           const std::string &fixture)
{
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 4);
    sched::StreamConfig scfg;
    scfg.instances = 10;
    scfg.seed = 42;
    scfg.mode = sched::ArrivalMode::Open;
    scfg.meanInterarrival = 300000;
    scfg.policy = sched::Policy::Fifo;
    scfg.paramVariants = 2;

    sched::ResilienceConfig res;
    res.deadline = 2200000;
    res.queueCapacity = 3;
    res.shed = sched::ShedPolicy::DeadlineAware;
    res.nodeFailures = true;
    res.breakerThreshold = 0.5;
    res.breakerWindow = 2;
    res.breakerCooldown = 500000;

    sim::FaultConfig fc;
    fc.seed = 7;
    fc.rate = 1.0;
    fc.kinds = sim::FaultConfig::bitOf(sim::FaultKind::NodeFailure);
    fc.nodeMeanUpCycles = 2000000;
    fc.nodeDownCycles = 1200000;
    sim::FaultPlan plan(fc);

    harness::RunOptions opts;
    opts.engine = engine;
    opts.faults = &plan;
    sched::TraceCache cache;
    sched::StreamScheduler sched(wl, sim::MachineConfig::baseline(), scfg,
                                 opts, &cache, res);
    const std::string actual = toJson(sched.run(), true).dump(2) + "\n";

    const std::string path = goldenPath(fixture);
    if (std::getenv("DSS_REGEN_GOLDEN") != nullptr) {
        std::ofstream os(path);
        ASSERT_TRUE(os) << "cannot write " << path;
        os << actual;
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream is(path);
    ASSERT_TRUE(is) << "missing fixture " << path
                    << " (run scripts/regen_golden.sh)";
    std::ostringstream want;
    want << is.rdbuf();
    EXPECT_EQ(want.str(), actual)
        << "resilient stream stats (" << sim::engineKindName(engine.kind)
        << " engine) diverged from " << path
        << "; if intended, regenerate with scripts/regen_golden.sh";
}

TEST(GoldenStats, StreamResilienceSeq)
{
    checkResilientStreamGolden(sim::EngineConfig::seq(),
                               "stream_resilience_seq.json");
}

TEST(GoldenStats, StreamResiliencePar)
{
    checkResilientStreamGolden(sim::EngineConfig::par(),
                               "stream_resilience_par.json");
}

} // namespace
