/**
 * @file
 * Validation of the invariant checker (sim/check.hh), from both sides:
 *
 *  - Deliberately corrupted machine state must flag exactly the invariant
 *    that was broken (a checker that can't see planted bugs is useless).
 *  - Unperturbed runs — real TPC-D queries and a 50-seed fuzz over
 *    randomized traces — must produce zero violations on both engines,
 *    and enabling the checker must not change a single statistic.
 */

#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "harness/workload.hh"
#include "obs/stats_json.hh"
#include "sim/arena.hh"
#include "sim/check.hh"
#include "sim/machine.hh"
#include "verify/model.hh"

namespace {

using namespace dss;
using namespace dss::sim;

// ---------------------------------------------------------------------
// Corruption tests: break one invariant, expect exactly that flag.
// ---------------------------------------------------------------------

TEST(CheckerCorruption, TwoDirtyCopiesFlagSwmr)
{
    Machine m(MachineConfig::baseline());
    m.l2(0).fill(0x40, true);
    m.l2(1).fill(0x40, true);
    // Make the directory's own story self-consistent enough that the
    // second dirty copy is the headline problem.
    Directory::Entry &e = m.directoryForTest().entry(0x40);
    e.state = Directory::State::Dirty;
    e.owner = 0;
    e.sharers = 1;

    InvariantChecker chk;
    chk.checkLine(m, 0x40);
    EXPECT_EQ(chk.countOf(Invariant::Swmr), 1u);
    EXPECT_EQ(chk.countOf(Invariant::Inclusion), 0u);
    EXPECT_EQ(chk.countOf(Invariant::WbFifo), 0u);
    EXPECT_EQ(chk.countOf(Invariant::LockState), 0u);
    ASSERT_FALSE(chk.violations().empty());
    EXPECT_NE(chk.violations()[0].detail.find("multiple dirty copies"),
              std::string::npos);
}

TEST(CheckerCorruption, CachedCopyUnderUncachedEntryFlagsDirState)
{
    Machine m(MachineConfig::baseline());
    // A clean copy the directory knows nothing about.
    m.l2(2).fill(0x80, false);

    InvariantChecker chk;
    chk.checkLine(m, 0x80);
    EXPECT_EQ(chk.totalViolations(), 1u);
    EXPECT_EQ(chk.countOf(Invariant::DirState), 1u);
    EXPECT_NE(chk.violations()[0].detail.find("Uncached"),
              std::string::npos);
}

TEST(CheckerCorruption, StaleSharerBitFlagsDirState)
{
    Machine m(MachineConfig::baseline());
    m.l2(0).fill(0xC0, false);
    Directory::Entry &e = m.directoryForTest().entry(0xC0);
    e.state = Directory::State::Shared;
    e.sharers = 0b0011; // proc 1's bit is stale: it holds no copy

    InvariantChecker chk;
    chk.checkLine(m, 0xC0);
    EXPECT_EQ(chk.totalViolations(), 1u);
    EXPECT_EQ(chk.countOf(Invariant::DirState), 1u);
    EXPECT_NE(chk.violations()[0].detail.find("no copy"),
              std::string::npos);
}

TEST(CheckerCorruption, L1LineWithoutL2LineFlagsInclusion)
{
    Machine m(MachineConfig::baseline());
    m.l1(1).fill(0x40, false); // L2 does not hold the enclosing line

    InvariantChecker chk;
    chk.checkLine(m, 0x40);
    EXPECT_EQ(chk.totalViolations(), 1u);
    EXPECT_EQ(chk.countOf(Invariant::Inclusion), 1u);
    EXPECT_EQ(chk.violations()[0].proc, 1u);
}

TEST(CheckerCorruption, ReorderedWriteBufferFlagsWbFifo)
{
    Machine m(MachineConfig::baseline());
    WriteBuffer &wb = m.writeBufferForTest(0);
    wb.push(0, 100, 0x40);
    wb.push(0, 100, 0x80);

    InvariantChecker chk;
    chk.checkWriteBuffer(m, 0);
    EXPECT_EQ(chk.totalViolations(), 0u); // FIFO by construction

    wb.corruptReorderForTest();
    chk.checkWriteBuffer(m, 0);
    EXPECT_EQ(chk.totalViolations(), 1u);
    EXPECT_EQ(chk.countOf(Invariant::WbFifo), 1u);
    EXPECT_EQ(chk.violations()[0].proc, 0u);
}

TEST(CheckerCorruption, DroppedLockHolderFlagsLockState)
{
    Machine m(MachineConfig::baseline());
    LockTable &locks = m.locksForTest();
    constexpr Addr kWord = 0x2000'0000;
    ASSERT_TRUE(locks.tryAcquire(kWord, 0));
    locks.addWaiter(kWord, 1);

    InvariantChecker chk;
    chk.checkLocks(m);
    EXPECT_EQ(chk.totalViolations(), 0u); // held + one waiter is fine

    locks.corruptDropHolderForTest(kWord); // lost grant
    chk.checkLocks(m);
    EXPECT_EQ(chk.totalViolations(), 1u);
    EXPECT_EQ(chk.countOf(Invariant::LockState), 1u);
    EXPECT_NE(chk.violations()[0].detail.find("free lock"),
              std::string::npos);
}

TEST(CheckerCorruption, RecordingCapsButCountsKeepGrowing)
{
    Machine m(MachineConfig::baseline());
    InvariantChecker chk;
    for (unsigned i = 0; i < InvariantChecker::kMaxRecorded + 10; ++i) {
        m.l2(0).fill(0x1000 + i * 64, false); // Uncached-entry violation
        chk.checkLine(m, 0x1000 + i * 64);
    }
    EXPECT_EQ(chk.violations().size(), InvariantChecker::kMaxRecorded);
    EXPECT_EQ(chk.totalViolations(), InvariantChecker::kMaxRecorded + 10);
}

// ---------------------------------------------------------------------
// Clean runs: real queries and fuzzed traces must not trip the checker,
// and the checker must not perturb a single statistic.
// ---------------------------------------------------------------------

TEST(CheckerClean, HeadlineQueriesHaveZeroViolationsOnBothEngines)
{
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 4);
    const MachineConfig cfg = MachineConfig::baseline();
    for (tpcd::QueryId q :
         {tpcd::QueryId::Q3, tpcd::QueryId::Q6, tpcd::QueryId::Q12}) {
        harness::TraceSet traces = wl.trace(q);
        for (const EngineConfig &engine :
             {EngineConfig::seq(), EngineConfig::par()}) {
            // Baseline: checker off.
            harness::RunOptions plain;
            plain.engine = engine;
            const std::string base =
                obs::toJson(harness::runCold(cfg, traces, plain)).dump(2);

            // Checker on: zero violations, byte-identical stats.
            InvariantChecker chk;
            harness::RunOptions checked;
            checked.engine = engine;
            checked.checker = &chk;
            const std::string observed =
                obs::toJson(harness::runCold(cfg, traces, checked))
                    .dump(2);

            EXPECT_EQ(chk.totalViolations(), 0u)
                << tpcd::queryName(q) << " engine "
                << (engine.kind == EngineKind::Seq ? "seq" : "par") << ": "
                << (chk.violations().empty()
                        ? ""
                        : chk.violations()[0].detail);
            EXPECT_EQ(base, observed) << "checker perturbed stats of "
                                      << tpcd::queryName(q);
        }
    }
}

/** Randomized per-processor trace; @p conflict_free keeps every
 * processor in its own private region with no locks — no shared lines
 * AND no shared home-node controllers, the regime where the parallel
 * engine must agree with the sequential one exactly. */
TraceStream
fuzzTrace(std::mt19937_64 &rng, ProcId p, bool conflict_free)
{
    TraceStream t;
    const Addr priv_base =
        AddressSpace::kPrivateBase + p * AddressSpace::kPrivateStride;
    const Addr shared_base = 0x1000'0000;
    const Addr lock_base = 0x2000'0000;
    std::uniform_int_distribution<int> pct(0, 99);
    std::uniform_int_distribution<Addr> off(0, (4 << 10) - 8);
    std::uniform_int_distribution<Addr> lock_idx(0, 3);
    std::uniform_int_distribution<std::uint32_t> busy(1, 30);

    bool in_cs = false;
    Addr held = 0;
    for (std::size_t i = 0; i < 200; ++i) {
        const int r = pct(rng);
        if (!conflict_free && !in_cs && r < 6) {
            held = lock_base + lock_idx(rng) * 64;
            t.record(TraceEntry::lockAcq(held, DataClass::LockSLock));
            in_cs = true;
        } else if (in_cs && r < 20) {
            t.record(TraceEntry::lockRel(held, DataClass::LockSLock));
            in_cs = false;
        } else if (r < 40) {
            t.record(TraceEntry::busy(busy(rng)));
        } else {
            const bool shared = !conflict_free && pct(rng) < 40;
            const Addr a = shared ? shared_base + (off(rng) & ~7ull)
                                  : priv_base + (off(rng) & ~7ull);
            const DataClass cls =
                shared ? DataClass::Data : DataClass::Priv;
            if (pct(rng) < 30)
                t.record(TraceEntry::write(a, cls, 8));
            else
                t.record(TraceEntry::read(a, cls, 8));
        }
    }
    if (in_cs)
        t.record(TraceEntry::lockRel(held, DataClass::LockSLock));
    return t;
}

TEST(CheckerClean, FiftySeedFuzzZeroViolationsAndSeqParEquality)
{
    const MachineConfig cfg = MachineConfig::baseline();
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        // Contended traces (shared lines + locks): both engines must
        // stay violation-free even under heavy line ping-pong.
        for (const bool conflict_free : {false, true}) {
            std::mt19937_64 rng(seed);
            std::vector<TraceStream> traces;
            std::vector<const TraceStream *> ptrs;
            for (ProcId p = 0; p < cfg.nprocs; ++p)
                traces.push_back(fuzzTrace(rng, p, conflict_free));
            for (const TraceStream &t : traces)
                ptrs.push_back(&t);

            std::string fingerprints[2];
            int i = 0;
            for (const EngineConfig &engine :
                 {EngineConfig::seq(), EngineConfig::par()}) {
                Machine m(cfg);
                InvariantChecker chk;
                m.setChecker(&chk);
                SimStats s = m.run(ptrs, engine);
                ASSERT_EQ(chk.totalViolations(), 0u)
                    << "seed " << seed << " conflict_free "
                    << conflict_free << ": "
                    << chk.violations()[0].detail;
                fingerprints[i++] = obs::toJson(s).dump(2);
            }
            // On conflict-free traces the engines must agree exactly.
            if (conflict_free) {
                EXPECT_EQ(fingerprints[0], fingerprints[1])
                    << "seed " << seed;
            }
        }
    }
}

TEST(CheckerClean, ModelCheckerTracesReplayCleanOnTheRealMachine)
{
    // Bridge regression from the exhaustive search (src/verify/): the
    // explicit-state checker exhausted 3 procs x 2 lines on both presets
    // with zero invariant violations, so no protocol counterexample
    // exists to pin here. What it *did* produce is the trace-emission
    // path: synthesized event sequences rendered as per-processor
    // TraceStreams. Replaying one — a cross-processor sharing pattern
    // with a lock hand-off, the shape every mutant counterexample takes
    // — through the full-size real machine must keep the checker silent
    // and touch the protocol states the path was built to reach.
    verify::ProtocolModel model(MachineConfig::baseline(), {});
    const std::vector<verify::Event> path = {
        {verify::EvKind::Load, 0, 0, 0},   // p0 shares line 0
        {verify::EvKind::Store, 1, 0, 0},  // p1 invalidates p0, owns it
        {verify::EvKind::Load, 0, 0, 0},   // p0 re-shares: 3-hop path
        {verify::EvKind::LockAcq, 1, 2, 0}, // p1 takes the metalock
        {verify::EvKind::LockAcq, 0, 2, 0}, // p0 contends, spins
        {verify::EvKind::LockRel, 1, 2, 0}, // hand-off wakes p0
    };
    std::vector<TraceStream> streams = model.traces(path);
    std::vector<const TraceStream *> ptrs;
    for (const TraceStream &t : streams)
        ptrs.push_back(&t);

    MachineConfig cfg = MachineConfig::baseline();
    cfg.nprocs = model.config().nprocs;
    Machine m(cfg);
    InvariantChecker chk;
    m.setChecker(&chk);
    SimStats s = m.run(ptrs);
    EXPECT_EQ(chk.totalViolations(), 0u);
    // The path exercised real sharing: p1's store invalidated p0's copy,
    // and the contended acquire spun at least once.
    EXPECT_GT(s.procs[0].reads, 0u);
    EXPECT_GT(s.procs[1].writes, 0u);
}

} // namespace
