/**
 * @file
 * Integration tests for the Machine: hand-built traces with known timing
 * and coherence outcomes (the paper's latency table, miss classification,
 * write-buffer stalls, metalock spinning, prefetch behaviour, warm runs).
 */

#include <gtest/gtest.h>

#include "sim/arena.hh"
#include "sim/error.hh"
#include "sim/machine.hh"

namespace {

using namespace dss::sim;

constexpr Cycles kL2HitStall = 15;   // 16 - 1 issue cycle
constexpr Cycles kLocalStall = 79;   // 80 - 1
constexpr Cycles kRemote2Stall = 248; // 249 - 1
constexpr Cycles kRemote3Stall = 350; // 351 - 1

TraceStream
streamOf(std::initializer_list<TraceEntry> entries)
{
    TraceStream s;
    for (const TraceEntry &e : entries)
        s.record(e);
    return s;
}

TEST(Machine, ReadHitAfterMissCostsOneCycle)
{
    Machine m(MachineConfig::baseline());
    TraceStream t = streamOf({
        TraceEntry::read(0x0, DataClass::Data, 8),
        TraceEntry::read(0x8, DataClass::Data, 8),
    });
    SimStats s = m.run({&t});
    const ProcStats &p = s.procs[0];
    EXPECT_EQ(p.reads, 2u);
    EXPECT_EQ(p.l1Hits(), 1u);
    EXPECT_EQ(p.l1Misses().total(), 1u);
    // Address 0 lives in page 0 -> home node 0 -> local memory: 80 cycles.
    EXPECT_EQ(p.memStall, kLocalStall);
    EXPECT_EQ(p.busy, 2u);
}

TEST(Machine, L2HitAfterL1Conflict)
{
    Machine m(MachineConfig::baseline());
    // 0x0 and 0x1000 conflict in a 4 KB direct-mapped L1 but not in the
    // 128 KB 2-way L2.
    TraceStream t = streamOf({
        TraceEntry::read(0x0, DataClass::Data, 8),
        TraceEntry::read(0x1000, DataClass::Data, 8),
        TraceEntry::read(0x0, DataClass::Data, 8),
    });
    SimStats s = m.run({&t});
    const ProcStats &p = s.procs[0];
    EXPECT_EQ(p.l1Misses().total(), 3u);
    EXPECT_EQ(p.l2Misses().total(), 2u);
    EXPECT_EQ(p.l2Hits(), 1u);
    EXPECT_EQ(p.l1Misses().of(DataClass::Data, MissType::Conf), 1u);
    EXPECT_EQ(p.memStall, 2 * kLocalStall + kL2HitStall);
}

TEST(Machine, RemoteHomeIs2Hop)
{
    Machine m(MachineConfig::baseline());
    // Page 1 (addr 8192) is homed at node 1; requester is node 0.
    TraceStream t =
        streamOf({TraceEntry::read(8192, DataClass::Data, 8)});
    SimStats s = m.run({&t});
    EXPECT_EQ(s.procs[0].memStall, kRemote2Stall);
}

TEST(Machine, DirtyThirdNodeIs3Hop)
{
    Machine m(MachineConfig::baseline());
    // Proc 1 dirties a line homed at node 2 (addr 16384); proc 0 then
    // reads it: requester 0 -> home 2 -> owner 1 -> requester 0.
    TraceStream writer = streamOf({
        TraceEntry::write(16384, DataClass::Data, 8),
    });
    TraceStream reader = streamOf({
        TraceEntry::busy(10000), // guarantee the write drains first
        TraceEntry::read(16384, DataClass::Data, 8),
    });
    SimStats s = m.run({&writer, &reader});
    EXPECT_EQ(s.procs[1].memStall, kRemote3Stall);
    EXPECT_EQ(s.procs[1].l2Misses().of(DataClass::Data, MissType::Cold), 1u);
}

TEST(Machine, WriteInvalidationMakesCoherenceMiss)
{
    Machine m(MachineConfig::baseline());
    // Proc 0 caches the line, proc 1 writes it, proc 0 re-reads: the
    // re-read must be classified as a coherence miss.
    TraceStream p0 = streamOf({
        TraceEntry::read(0x40, DataClass::Data, 8),
        TraceEntry::busy(20000),
        TraceEntry::read(0x40, DataClass::Data, 8),
    });
    TraceStream p1 = streamOf({
        TraceEntry::busy(5000), // after p0's first read
        TraceEntry::write(0x40, DataClass::Data, 8),
    });
    SimStats s = m.run({&p0, &p1});
    EXPECT_EQ(s.procs[0].l2Misses().of(DataClass::Data, MissType::Cohe), 1u);
    EXPECT_EQ(s.procs[0].l1Misses().of(DataClass::Data, MissType::Cohe), 1u);
}

TEST(Machine, WriteBufferOverflowStalls)
{
    MachineConfig cfg = MachineConfig::baseline();
    cfg.writeBufferEntries = 2;
    Machine m(cfg);
    TraceStream t;
    // Remote-home lines (page 1): drains are slow, buffer fills fast.
    for (int i = 0; i < 8; ++i)
        t.record(TraceEntry::write(8192 + i * 64, DataClass::Priv, 8));
    SimStats s = m.run({&t});
    EXPECT_GT(s.procs[0].wbOverflows, 0u);
    EXPECT_GT(s.procs[0].memStall, 0u);
    EXPECT_GT(s.procs[0].pmem(), 0u); // stalls attributed to Priv
}

TEST(Machine, LoadsForwardFromWriteBuffer)
{
    Machine m(MachineConfig::baseline());
    TraceStream t = streamOf({
        TraceEntry::write(8192, DataClass::Data, 8),
        TraceEntry::read(8192, DataClass::Data, 8),
    });
    SimStats s = m.run({&t});
    // The read is satisfied by the buffered store: no read stall.
    EXPECT_EQ(s.procs[0].l1Hits(), 1u);
    EXPECT_EQ(s.procs[0].memStall, 0u);
}

TEST(Machine, UncontendedLockHasNoSyncStall)
{
    Machine m(MachineConfig::baseline());
    TraceStream t = streamOf({
        TraceEntry::lockAcq(0x400, DataClass::LockSLock),
        TraceEntry::busy(10),
        TraceEntry::lockRel(0x400, DataClass::LockSLock),
    });
    SimStats s = m.run({&t});
    EXPECT_EQ(s.procs[0].syncStall, 0u);
    // The test&set itself is memory time on metadata.
    EXPECT_GT(s.procs[0].memStall, 0u);
    EXPECT_GT(s.procs[0].memStallByGroup[static_cast<int>(
                  ClassGroup::Metadata)],
              0u);
}

TEST(Machine, ContendedLockChargesSpinToMSync)
{
    Machine m(MachineConfig::baseline());
    TraceStream holder = streamOf({
        TraceEntry::lockAcq(0x400, DataClass::LockSLock),
        TraceEntry::busy(50000),
        TraceEntry::lockRel(0x400, DataClass::LockSLock),
    });
    TraceStream waiter = streamOf({
        TraceEntry::busy(1000), // arrive while the lock is held
        TraceEntry::lockAcq(0x400, DataClass::LockSLock),
        TraceEntry::lockRel(0x400, DataClass::LockSLock),
    });
    SimStats s = m.run({&holder, &waiter});
    EXPECT_EQ(s.procs[0].syncStall, 0u);
    EXPECT_GT(s.procs[1].syncStall, 40000u); // waited out the hold
}

TEST(Machine, FifoHandOffOrdersWaiters)
{
    Machine m(MachineConfig::baseline());
    TraceStream holder = streamOf({
        TraceEntry::lockAcq(0x400, DataClass::LockSLock),
        TraceEntry::busy(30000),
        TraceEntry::lockRel(0x400, DataClass::LockSLock),
        TraceEntry::busy(1),
    });
    TraceStream w1 = streamOf({
        TraceEntry::busy(1000),
        TraceEntry::lockAcq(0x400, DataClass::LockSLock),
        TraceEntry::busy(10000),
        TraceEntry::lockRel(0x400, DataClass::LockSLock),
    });
    TraceStream w2 = streamOf({
        TraceEntry::busy(2000), // queues behind w1
        TraceEntry::lockAcq(0x400, DataClass::LockSLock),
        TraceEntry::lockRel(0x400, DataClass::LockSLock),
    });
    SimStats s = m.run({&holder, &w1, &w2});
    // w2 waited for holder AND w1's hold.
    EXPECT_GT(s.procs[2].syncStall, s.procs[1].syncStall);
}

TEST(Machine, BusyEntriesAccrueAssumedHits)
{
    Machine m(MachineConfig::baseline());
    TraceStream t = streamOf({TraceEntry::busy(100)});
    SimStats s = m.run({&t});
    EXPECT_EQ(s.procs[0].busy, 100u);
    EXPECT_EQ(s.procs[0].assumedHitReads, 25u);
}

TEST(Machine, PrefetchFetchesAheadOnDataMisses)
{
    MachineConfig cfg = MachineConfig::baseline();
    cfg.prefetchData = true;
    cfg.prefetchDegree = 4;
    Machine m(cfg);
    TraceStream t = streamOf({
        TraceEntry::read(0x0, DataClass::Data, 8),
        TraceEntry::busy(2000),
        TraceEntry::read(0x20, DataClass::Data, 8), // prefetched line
    });
    SimStats s = m.run({&t});
    EXPECT_EQ(s.procs[0].prefetchesIssued, 4u);
    EXPECT_EQ(s.procs[0].prefetchesUseful, 1u);
    EXPECT_EQ(s.procs[0].l1Misses().total(), 1u); // second read hit
}

TEST(Machine, PrefetchIgnoresNonDataClasses)
{
    MachineConfig cfg = MachineConfig::baseline();
    cfg.prefetchData = true;
    Machine m(cfg);
    TraceStream t = streamOf({
        TraceEntry::read(0x0, DataClass::Priv, 8),
        TraceEntry::read(0x100, DataClass::Index, 8),
    });
    SimStats s = m.run({&t});
    EXPECT_EQ(s.procs[0].prefetchesIssued, 0u);
}

TEST(Machine, PrefetchInFlightDelaysEarlyDemand)
{
    MachineConfig cfg = MachineConfig::baseline();
    cfg.prefetchData = true;
    cfg.prefetchDegree = 4;
    Machine m(cfg);
    TraceStream t = streamOf({
        TraceEntry::read(0x0, DataClass::Data, 8),
        // 0x40 is in the *next* L2 line: its prefetch goes to memory and
        // is still in flight when the demand arrives right behind it.
        TraceEntry::read(0x40, DataClass::Data, 8),
    });
    SimStats s = m.run({&t});
    // The second read hits a prefetched-but-in-flight line: partial stall,
    // smaller than a full miss.
    EXPECT_EQ(s.procs[0].l1Misses().total(), 1u);
    EXPECT_GT(s.procs[0].memStall, kLocalStall);
    EXPECT_LT(s.procs[0].memStall, 2 * kLocalStall);
}

TEST(Machine, PrefetchSkipsDirtyRemoteLines)
{
    MachineConfig cfg = MachineConfig::baseline();
    cfg.prefetchData = true;
    cfg.prefetchDegree = 2;
    Machine m(cfg);
    TraceStream p0 = streamOf({
        TraceEntry::busy(10000),
        TraceEntry::read(0x0, DataClass::Data, 8), // prefetch 0x20, 0x40
    });
    TraceStream p1 = streamOf({
        TraceEntry::write(0x40, DataClass::Data, 8), // dirty remote line
    });
    SimStats s = m.run({&p0, &p1});
    (void)s;
    EXPECT_TRUE(m.l1(0).contains(0x20));
    EXPECT_FALSE(m.l1(0).contains(0x40)); // skipped: dirty at proc 1
}

TEST(Machine, WarmRunReusesCaches)
{
    Machine m(MachineConfig::baseline());
    TraceStream t;
    for (Addr a = 0; a < 16 * 1024; a += 64)
        t.record(TraceEntry::read(a, DataClass::Data, 8));
    SimStats cold = m.run({&t});
    SimStats warm = m.run({&t});
    EXPECT_GT(cold.procs[0].l2Misses().total(),
              warm.procs[0].l2Misses().total());
    // Cold data fits the 128 KB L2 entirely: the warm run has no L2
    // misses at all.
    EXPECT_EQ(warm.procs[0].l2Misses().total(), 0u);

    m.resetMemoryState();
    SimStats cold2 = m.run({&t});
    EXPECT_EQ(cold2.procs[0].l2Misses().total(),
              cold.procs[0].l2Misses().total());
}

TEST(Machine, StatsAreFreshEachRun)
{
    Machine m(MachineConfig::baseline());
    TraceStream t = streamOf({TraceEntry::read(0x0, DataClass::Data, 8)});
    m.run({&t});
    SimStats second = m.run({&t});
    EXPECT_EQ(second.procs[0].reads, 1u);
}

TEST(Machine, ReadsEqualHitsPlusMisses)
{
    Machine m(MachineConfig::baseline());
    TraceStream t;
    for (int i = 0; i < 500; ++i)
        t.record(TraceEntry::read((i * 7919) % 32768, DataClass::Data, 8));
    SimStats s = m.run({&t});
    const ProcStats &p = s.procs[0];
    EXPECT_EQ(p.reads, p.l1Hits() + p.l1Misses().total());
    EXPECT_EQ(p.l2Accesses(), p.l2Hits() + p.l2Misses().total());
}

TEST(Machine, InclusionHoldsAfterMixedTraffic)
{
    Machine m(MachineConfig::baseline());
    TraceStream t;
    for (int i = 0; i < 4000; ++i) {
        Addr a = (static_cast<Addr>(i) * 2654435761u) % (1 << 20);
        if (i % 3 == 0)
            t.record(TraceEntry::write(a, DataClass::Priv, 8));
        else
            t.record(TraceEntry::read(a, DataClass::Data, 8));
    }
    SimStats s = m.run({&t});
    (void)s;
    for (Addr l1_line : m.l1(0).residentLines()) {
        EXPECT_TRUE(m.l2(0).contains(l1_line))
            << "L1 line 0x" << std::hex << l1_line << " not in L2";
    }
}

TEST(Machine, RejectsTooManyTraces)
{
    MachineConfig cfg = MachineConfig::baseline();
    cfg.nprocs = 2;
    Machine m(cfg);
    TraceStream a, b, c;
    EXPECT_THROW(m.run({&a, &b, &c}), std::invalid_argument);
}

TEST(Machine, RejectsMismatchedLineSizes)
{
    MachineConfig cfg = MachineConfig::baseline();
    cfg.l1().lineBytes = 128; // larger than L2's 64: violates nesting
    EXPECT_THROW(Machine m(cfg), SimError);
}

TEST(Machine, AcceptsEqualLineSizes)
{
    // Equal lines satisfy strict inclusion (the `modern` preset relies
    // on this); only a *larger* upper-level line is rejected.
    MachineConfig cfg = MachineConfig::baseline();
    cfg.l1().lineBytes = 64;
    EXPECT_NO_THROW(Machine m(cfg));
}

TEST(MachineConfig, WithLineSizeKeepsHalfRatio)
{
    MachineConfig cfg = MachineConfig::baseline().withLineSize(256);
    EXPECT_EQ(cfg.l2().lineBytes, 256u);
    EXPECT_EQ(cfg.l1().lineBytes, 128u);
}

TEST(MachineConfig, WithCacheSizesKeepsLines)
{
    MachineConfig cfg =
        MachineConfig::baseline().withCacheSizes(1 << 20, 32 << 20);
    EXPECT_EQ(cfg.l1().sizeBytes, 1u << 20);
    EXPECT_EQ(cfg.l2().sizeBytes, 32u << 20);
    EXPECT_EQ(cfg.l1().lineBytes, 32u);
    EXPECT_EQ(cfg.l2().lineBytes, 64u);
}

/** Property sweep: a pure streaming read trace sees exactly one cold miss
 * per distinct L2 line, at every line size. */
class MachineLineSweep : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(MachineLineSweep, ColdMissesEqualDistinctLines)
{
    const std::size_t line = GetParam();
    Machine m(MachineConfig::baseline().withLineSize(line));
    TraceStream t;
    const Addr span = 64 * 1024; // streams through, no reuse
    for (Addr a = 0; a < span; a += 8)
        t.record(TraceEntry::read(a, DataClass::Data, 8));
    SimStats s = m.run({&t});
    EXPECT_EQ(s.procs[0].l2Misses().byGroupAndType(ClassGroup::Data,
                                                 MissType::Cold),
              span / line);
}

INSTANTIATE_TEST_SUITE_P(Lines, MachineLineSweep,
                         ::testing::Values(16, 32, 64, 128, 256));

} // namespace
