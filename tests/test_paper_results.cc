/**
 * @file
 * Paper-invariant integration tests: the qualitative findings of every
 * section of the evaluation, asserted end-to-end on a reduced population
 * (1/4 of the default experiment scale to keep test time short — the
 * findings are scale-invariant, which is itself part of the paper's
 * methodology argument).
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"

namespace {

using namespace dss;

/** One shared workload for all paper-invariant tests (built once). */
class PaperResults : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        tpcd::ScaleConfig scale;
        scale.customers = 150;
        scale.parts = 200;
        scale.suppliers = 10;
        wl_ = new harness::Workload(scale, 4, 42);
        q3_ = new harness::TraceSet(wl_->trace(tpcd::QueryId::Q3, 11));
        q6_ = new harness::TraceSet(wl_->trace(tpcd::QueryId::Q6, 11));
        q12_ = new harness::TraceSet(wl_->trace(tpcd::QueryId::Q12, 11));
    }

    static void
    TearDownTestSuite()
    {
        delete q3_;
        delete q6_;
        delete q12_;
        delete wl_;
        wl_ = nullptr;
        q3_ = q6_ = q12_ = nullptr;
    }

    static harness::Workload *wl_;
    static harness::TraceSet *q3_, *q6_, *q12_;

    static sim::ProcStats
    baselineRun(const harness::TraceSet &t)
    {
        return harness::runCold(sim::MachineConfig::baseline(), t)
            .aggregate();
    }
};

harness::Workload *PaperResults::wl_ = nullptr;
harness::TraceSet *PaperResults::q3_ = nullptr;
harness::TraceSet *PaperResults::q6_ = nullptr;
harness::TraceSet *PaperResults::q12_ = nullptr;

double
frac(sim::Cycles part, sim::Cycles whole)
{
    return whole ? static_cast<double>(part) / static_cast<double>(whole)
                 : 0.0;
}

// ---- Section 5.1: overall memory behaviour ---------------------------

TEST_F(PaperResults, BusyAndMemFractionsInPaperBands)
{
    for (const harness::TraceSet *t : {q3_, q6_, q12_}) {
        sim::ProcStats s = baselineRun(*t);
        double busy = frac(s.busy, s.totalCycles());
        double mem = frac(s.memStall, s.totalCycles());
        EXPECT_GT(busy, 0.40);
        EXPECT_LT(busy, 0.80);
        EXPECT_GT(mem, 0.20);
        EXPECT_LT(mem, 0.50);
    }
}

TEST_F(PaperResults, MSyncVisibleOnlyForIndexQuery)
{
    sim::ProcStats s3 = baselineRun(*q3_);
    sim::ProcStats s6 = baselineRun(*q6_);
    EXPECT_GT(frac(s3.syncStall, s3.totalCycles()), 0.01);
    EXPECT_LT(frac(s6.syncStall, s6.totalCycles()), 0.01);
}

TEST_F(PaperResults, IndexQuerySharedStallIsMetadataAndIndices)
{
    // Fig 6b: Q3's shared stall dominated by Metadata + Index.
    sim::ProcStats s = baselineRun(*q3_);
    sim::Cycles meta = s.memStallByGroup[static_cast<int>(
        sim::ClassGroup::Metadata)];
    sim::Cycles index =
        s.memStallByGroup[static_cast<int>(sim::ClassGroup::Index)];
    sim::Cycles data =
        s.memStallByGroup[static_cast<int>(sim::ClassGroup::Data)];
    EXPECT_GT(meta + index, 2 * data);
}

TEST_F(PaperResults, SequentialQueriesStallOnData)
{
    // Fig 6b: Q6/Q12 dominated by Data.
    for (const harness::TraceSet *t : {q6_, q12_}) {
        sim::ProcStats s = baselineRun(*t);
        sim::Cycles data =
            s.memStallByGroup[static_cast<int>(sim::ClassGroup::Data)];
        EXPECT_GT(frac(data, s.memStall), 0.40);
        sim::Cycles index = s.memStallByGroup[static_cast<int>(
            sim::ClassGroup::Index)];
        EXPECT_GT(data, 5 * std::max<sim::Cycles>(index, 1));
    }
}

// ---- Figure 7: miss classification ------------------------------------

TEST_F(PaperResults, L1MissesDominatedByPrivateConflicts)
{
    for (const harness::TraceSet *t : {q3_, q6_, q12_}) {
        sim::ProcStats s = baselineRun(*t);
        std::uint64_t priv = s.l1Misses().byGroup(sim::ClassGroup::Priv);
        EXPECT_GT(frac(priv, s.l1Misses().total()), 0.35);
        std::uint64_t conf = s.l1Misses().byGroupAndType(
            sim::ClassGroup::Priv, sim::MissType::Conf);
        EXPECT_GT(frac(conf, priv), 0.80); // almost all conflicts
    }
}

TEST_F(PaperResults, SequentialL2MissesAreColdData)
{
    for (const harness::TraceSet *t : {q6_, q12_}) {
        sim::ProcStats s = baselineRun(*t);
        std::uint64_t data = s.l2Misses().byGroup(sim::ClassGroup::Data);
        EXPECT_GT(frac(data, s.l2Misses().total()), 0.55);
        std::uint64_t cold = s.l2Misses().byGroupAndType(
            sim::ClassGroup::Data, sim::MissType::Cold);
        EXPECT_GT(frac(cold, data), 0.90);
    }
}

TEST_F(PaperResults, IndexQueryL2MissesAreAMix)
{
    sim::ProcStats s = baselineRun(*q3_);
    std::uint64_t meta = s.l2Misses().byGroup(sim::ClassGroup::Metadata);
    std::uint64_t index = s.l2Misses().byGroup(sim::ClassGroup::Index);
    std::uint64_t data = s.l2Misses().byGroup(sim::ClassGroup::Data);
    EXPECT_GT(meta, 0u);
    EXPECT_GT(index, 0u);
    EXPECT_GT(data, 0u);
    // Metadata misses are mostly coherence; LockSLock is prominent.
    std::uint64_t meta_cohe = s.l2Misses().byGroupAndType(
        sim::ClassGroup::Metadata, sim::MissType::Cohe);
    EXPECT_GT(frac(meta_cohe, meta), 0.5);
    EXPECT_GT(s.l2Misses().byClass(sim::DataClass::LockSLock),
              s.l2Misses().byClass(sim::DataClass::XidHash));
}

TEST_F(PaperResults, MissRatesInPaperBallpark)
{
    // Section 5.1: L1 3.4-5.5%, L2 global 0.5-0.8% (we accept 2x slack).
    for (const harness::TraceSet *t : {q3_, q6_, q12_}) {
        sim::ProcStats s = baselineRun(*t);
        EXPECT_GT(s.l1MissRate(), 0.015);
        EXPECT_LT(s.l1MissRate(), 0.08);
        EXPECT_GT(s.l2GlobalMissRate(), 0.002);
        EXPECT_LT(s.l2GlobalMissRate(), 0.02);
    }
}

// ---- Figures 8/9: spatial locality -------------------------------------

TEST_F(PaperResults, DataMissesFallWithLineSize)
{
    const harness::TraceSet &t = *q6_;
    std::uint64_t prev = ~0ull;
    for (std::size_t line : {16, 32, 64, 128, 256}) {
        sim::ProcStats s =
            harness::runCold(
                sim::MachineConfig::baseline().withLineSize(line), t)
                .aggregate();
        std::uint64_t data = s.l2Misses().byGroup(sim::ClassGroup::Data);
        EXPECT_LE(data, prev) << "line " << line;
        prev = data;
    }
}

TEST_F(PaperResults, PrivL1MissesGrowWithLineSize)
{
    const harness::TraceSet &t = *q6_;
    sim::ProcStats small =
        harness::runCold(sim::MachineConfig::baseline().withLineSize(32),
                         t)
            .aggregate();
    sim::ProcStats big =
        harness::runCold(sim::MachineConfig::baseline().withLineSize(256),
                         t)
            .aggregate();
    EXPECT_GT(big.l1Misses().byGroup(sim::ClassGroup::Priv),
              small.l1Misses().byGroup(sim::ClassGroup::Priv));
}

TEST_F(PaperResults, SixtyFourByteLinesMinimizeExecutionTime)
{
    for (const harness::TraceSet *t : {q3_, q6_, q12_}) {
        sim::Cycles at64 =
            harness::runCold(
                sim::MachineConfig::baseline().withLineSize(64), *t)
                .aggregate()
                .totalCycles();
        sim::Cycles at16 =
            harness::runCold(
                sim::MachineConfig::baseline().withLineSize(16), *t)
                .aggregate()
                .totalCycles();
        sim::Cycles at256 =
            harness::runCold(
                sim::MachineConfig::baseline().withLineSize(256), *t)
                .aggregate()
                .totalCycles();
        EXPECT_LT(at64, at16);
        EXPECT_LT(at64, at256);
    }
}

// ---- Figures 10/11: temporal locality ----------------------------------

TEST_F(PaperResults, DataL2MissesFlatAcrossCacheSizes)
{
    // No intra-query temporal locality on database data.
    const harness::TraceSet &t = *q6_;
    sim::ProcStats small = harness::runCold(
                               sim::MachineConfig::baseline(), t)
                               .aggregate();
    sim::ProcStats big =
        harness::runCold(sim::MachineConfig::baseline().withCacheSizes(
                             256 << 10, 8 << 20),
                         t)
            .aggregate();
    double ratio =
        frac(big.l2Misses().byGroup(sim::ClassGroup::Data),
             std::max<std::uint64_t>(
                 1, small.l2Misses().byGroup(sim::ClassGroup::Data)));
    EXPECT_GT(ratio, 0.95);
    EXPECT_LT(ratio, 1.05);
}

TEST_F(PaperResults, PrivL1MissesCollapseWithCacheSize)
{
    const harness::TraceSet &t = *q12_;
    sim::ProcStats small = harness::runCold(
                               sim::MachineConfig::baseline(), t)
                               .aggregate();
    sim::ProcStats big =
        harness::runCold(sim::MachineConfig::baseline().withCacheSizes(
                             256 << 10, 8 << 20),
                         t)
            .aggregate();
    EXPECT_LT(big.l1Misses().byGroup(sim::ClassGroup::Priv),
              small.l1Misses().byGroup(sim::ClassGroup::Priv) / 5);
}

TEST_F(PaperResults, IndexQueryGainsSharedLocalityFromBigCaches)
{
    // Fig 10: Q3's index + metadata misses shrink with cache size.
    const harness::TraceSet &t = *q3_;
    sim::ProcStats small = harness::runCold(
                               sim::MachineConfig::baseline(), t)
                               .aggregate();
    sim::ProcStats big =
        harness::runCold(sim::MachineConfig::baseline().withCacheSizes(
                             256 << 10, 8 << 20),
                         t)
            .aggregate();
    EXPECT_LT(big.l2Misses().byGroup(sim::ClassGroup::Index),
              small.l2Misses().byGroup(sim::ClassGroup::Index));
}

// ---- Figure 12: inter-query reuse ---------------------------------------

TEST_F(PaperResults, SequentialQueryReusesTableAcrossQueries)
{
    sim::MachineConfig cfg =
        sim::MachineConfig::baseline().withCacheSizes(1 << 20, 32 << 20);
    harness::TraceSet warm = wl_->trace(tpcd::QueryId::Q12, 99);
    auto seq = harness::runSequence(cfg, {&warm, q12_});
    sim::SimStats cold = harness::runCold(cfg, *q12_);
    std::uint64_t cold_data =
        cold.aggregate().l2Misses().byGroup(sim::ClassGroup::Data);
    std::uint64_t warm_data =
        seq[1].aggregate().l2Misses().byGroup(sim::ClassGroup::Data);
    EXPECT_LT(warm_data, cold_data / 3); // nearly all data misses gone
}

TEST_F(PaperResults, IndexQueryBarelyWarmsSequentialQuery)
{
    sim::MachineConfig cfg =
        sim::MachineConfig::baseline().withCacheSizes(1 << 20, 32 << 20);
    harness::TraceSet warm = wl_->trace(tpcd::QueryId::Q3, 99);
    auto seq = harness::runSequence(cfg, {&warm, q12_});
    sim::SimStats cold = harness::runCold(cfg, *q12_);
    std::uint64_t cold_data =
        cold.aggregate().l2Misses().byGroup(sim::ClassGroup::Data);
    std::uint64_t warm_data =
        seq[1].aggregate().l2Misses().byGroup(sim::ClassGroup::Data);
    EXPECT_GT(warm_data, cold_data / 2); // only a few misses disappear
}

TEST_F(PaperResults, IndexReuseAcrossIndexQueries)
{
    sim::MachineConfig cfg =
        sim::MachineConfig::baseline().withCacheSizes(1 << 20, 32 << 20);
    harness::TraceSet warm = wl_->trace(tpcd::QueryId::Q3, 99);
    auto seq = harness::runSequence(cfg, {&warm, q3_});
    sim::SimStats cold = harness::runCold(cfg, *q3_);
    EXPECT_LT(seq[1].aggregate().l2Misses().byGroup(sim::ClassGroup::Index),
              cold.aggregate().l2Misses().byGroup(sim::ClassGroup::Index));
}

// ---- Figure 13 / Section 6: prefetching ---------------------------------

TEST_F(PaperResults, PrefetchingHelpsSequentialQueries)
{
    sim::MachineConfig opt = sim::MachineConfig::baseline();
    opt.prefetchData = true;
    for (const harness::TraceSet *t : {q6_, q12_}) {
        sim::Cycles base = harness::runCold(sim::MachineConfig::baseline(),
                                            *t)
                               .aggregate()
                               .totalCycles();
        sim::Cycles with_pf =
            harness::runCold(opt, *t).aggregate().totalCycles();
        EXPECT_LT(with_pf, base);
        // "Modest" gains: well under 25%.
        EXPECT_GT(with_pf, base * 3 / 4);
    }
}

TEST_F(PaperResults, PrefetchingBarelyChangesIndexQuery)
{
    sim::MachineConfig opt = sim::MachineConfig::baseline();
    opt.prefetchData = true;
    sim::Cycles base =
        harness::runCold(sim::MachineConfig::baseline(), *q3_)
            .aggregate()
            .totalCycles();
    sim::Cycles with_pf =
        harness::runCold(opt, *q3_).aggregate().totalCycles();
    double delta = std::abs(static_cast<double>(with_pf) -
                            static_cast<double>(base)) /
                   static_cast<double>(base);
    EXPECT_LT(delta, 0.05);
}

TEST_F(PaperResults, PrefetchingDisturbsPrivateData)
{
    sim::MachineConfig opt = sim::MachineConfig::baseline();
    opt.prefetchData = true;
    for (const harness::TraceSet *t : {q3_, q6_, q12_}) {
        sim::ProcStats base =
            harness::runCold(sim::MachineConfig::baseline(), *t)
                .aggregate();
        sim::ProcStats with_pf = harness::runCold(opt, *t).aggregate();
        EXPECT_GE(with_pf.pmem(), base.pmem()); // PMem goes up (or equal)
    }
}

} // namespace
