/**
 * @file
 * Unit tests for the directory: home-node assignment, transaction latency
 * (the paper's 80/249/351 cycle round trips), transfer-time adjustment,
 * and memory-controller contention.
 */

#include <gtest/gtest.h>

#include "sim/arena.hh"
#include "sim/directory.hh"

namespace {

using namespace dss::sim;

Directory
makeDir(std::size_t line = 64)
{
    return Directory(4, line, 8192, AddressSpace::kPrivateBase,
                     AddressSpace::kPrivateStride, LatencyConfig{});
}

TEST(Directory, SharedPagesInterleaveRoundRobin)
{
    Directory dir = makeDir();
    ProcId h0 = dir.homeOf(0);
    ProcId h1 = dir.homeOf(8192);
    ProcId h2 = dir.homeOf(2 * 8192);
    ProcId h4 = dir.homeOf(4 * 8192);
    EXPECT_NE(h0, h1);
    EXPECT_NE(h1, h2);
    EXPECT_EQ(h0, h4); // wraps around with 4 nodes
    // Addresses within one page share a home.
    EXPECT_EQ(dir.homeOf(100), dir.homeOf(8191));
}

TEST(Directory, PrivatePagesHomeAtOwner)
{
    Directory dir = makeDir();
    for (ProcId p = 0; p < 4; ++p) {
        Addr a = AddressSpace::kPrivateBase +
                 p * AddressSpace::kPrivateStride + 0x1234;
        EXPECT_EQ(dir.homeOf(a), p);
    }
}

TEST(Directory, EntriesDefaultToUncached)
{
    Directory dir = makeDir();
    Directory::Entry &e = dir.entry(0x4040);
    EXPECT_EQ(e.state, Directory::State::Uncached);
    EXPECT_EQ(e.sharers, 0);
}

TEST(Directory, EntryIsPerLine)
{
    Directory dir = makeDir();
    dir.entry(0x40).sharers = 3;
    EXPECT_EQ(dir.entry(0x7f).sharers, 3); // same 64 B line
    EXPECT_EQ(dir.entry(0x80).sharers, 0); // next line
}

TEST(Directory, LocalCleanCosts80)
{
    Directory dir = makeDir();
    EXPECT_EQ(dir.transactionLatency(0, 0, 0, false), 80u);
}

TEST(Directory, RemoteClean2HopCosts249)
{
    Directory dir = makeDir();
    EXPECT_EQ(dir.transactionLatency(0, 1, 0, false), 249u);
}

TEST(Directory, DirtyThirdNode3HopCosts351)
{
    Directory dir = makeDir();
    // Requester 0, home 1, dirty owner 2: three crossings.
    EXPECT_EQ(dir.transactionLatency(0, 1, 2, true), 351u);
}

TEST(Directory, DirtyAtHomeIs2Hop)
{
    Directory dir = makeDir();
    // Requester 0, home 1 which also owns the dirty copy: two crossings.
    EXPECT_EQ(dir.transactionLatency(0, 1, 1, true), 249u);
}

TEST(Directory, LocalHomeDirtyRemoteIs2Hop)
{
    Directory dir = makeDir();
    // Requester 0 = home, dirty owner 2: home->owner, owner->requester.
    EXPECT_EQ(dir.transactionLatency(0, 0, 2, true), 249u);
}

TEST(Directory, DirtyOwnedBySelfIsLocalCost)
{
    Directory dir = makeDir();
    EXPECT_EQ(dir.transactionLatency(0, 0, 0, true), 80u);
}

TEST(Directory, LongerLinesPayTransferTime)
{
    Directory d64 = makeDir(64);
    Directory d256 = makeDir(256);
    Cycles base = d64.transactionLatency(0, 1, 0, false);
    Cycles big = d256.transactionLatency(0, 1, 0, false);
    EXPECT_EQ(big, base + (256 - 64) / 2);
}

TEST(Directory, ShorterLinesAreNotFaster)
{
    Directory d64 = makeDir(64);
    Directory d16 = makeDir(16);
    EXPECT_EQ(d16.transactionLatency(0, 0, 0, false),
              d64.transactionLatency(0, 0, 0, false));
}

TEST(Directory, ControllerSerializesRequests)
{
    Directory dir = makeDir();
    EXPECT_EQ(dir.acquireController(0, 100), 0u);
    // Second request at the same time queues behind the first.
    Cycles delay = dir.acquireController(0, 100);
    EXPECT_EQ(delay, LatencyConfig{}.controllerOccupancy);
    // A different node's controller is free.
    EXPECT_EQ(dir.acquireController(1, 100), 0u);
}

TEST(Directory, ControllerFreesAfterOccupancy)
{
    Directory dir = makeDir();
    dir.acquireController(0, 0);
    EXPECT_EQ(dir.acquireController(0, 1000), 0u);
}

TEST(Directory, ResetClearsEntriesAndControllers)
{
    Directory dir = makeDir();
    dir.entry(0x40).sharers = 7;
    dir.acquireController(0, 0);
    dir.reset();
    EXPECT_EQ(dir.entry(0x40).sharers, 0);
    EXPECT_EQ(dir.trackedLines(), 1u); // recreated by the probe above
    EXPECT_EQ(dir.acquireController(0, 0), 0u);
}

TEST(Directory, ResetControllersKeepsSharingState)
{
    Directory dir = makeDir();
    dir.entry(0x40).sharers = 7;
    dir.acquireController(0, 0);
    dir.resetControllers();
    EXPECT_EQ(dir.entry(0x40).sharers, 7);
    EXPECT_EQ(dir.acquireController(0, 0), 0u);
}

} // namespace
