/**
 * @file
 * Graceful-failure layer tests (harness/guard.hh): exponential backoff
 * arithmetic, the bounded QueryAbort retry loop, and guardedMain's
 * catch-and-report contract (structured error JSON on stderr, exit code
 * kErrorExitCode, never a crash).
 */

#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "harness/guard.hh"
#include "obs/json.hh"
#include "sim/error.hh"

namespace {

using namespace dss;
using harness::RetryPolicy;

TEST(Backoff, DoublesFromBaseAndCaps)
{
    RetryPolicy policy; // base 64, cap 4096
    EXPECT_EQ(harness::backoffFor(policy, 0), 64u);
    EXPECT_EQ(harness::backoffFor(policy, 1), 128u);
    EXPECT_EQ(harness::backoffFor(policy, 2), 256u);
    EXPECT_EQ(harness::backoffFor(policy, 6), 4096u);
    EXPECT_EQ(harness::backoffFor(policy, 20), 4096u);
}

TEST(RetryOnAbort, SucceedsAfterTransientAborts)
{
    unsigned calls = 0;
    std::ostringstream log;
    const int result = harness::retryOnAbort(
        RetryPolicy{},
        [&]() -> int {
            if (++calls < 3)
                throw db::QueryAbort(db::QueryAbort::Reason::WriteConflict,
                                     1, 7, "transient");
            return 42;
        },
        nullptr, &log);
    EXPECT_EQ(result, 42);
    EXPECT_EQ(calls, 3u);
    // Both retries were noted, with doubling backoff.
    EXPECT_NE(log.str().find("retry 1 after 64"), std::string::npos);
    EXPECT_NE(log.str().find("retry 2 after 128"), std::string::npos);
}

TEST(RetryOnAbort, PersistentConflictEventuallyPropagates)
{
    RetryPolicy policy;
    policy.maxAttempts = 3;
    unsigned calls = 0;
    EXPECT_THROW(harness::retryOnAbort(policy,
                                       [&]() -> int {
                                           ++calls;
                                           throw db::QueryAbort(
                                               db::QueryAbort::Reason::
                                                   ReadWriteConflict,
                                               1, 7, "persistent");
                                       }),
                 db::QueryAbort);
    EXPECT_EQ(calls, 3u);
}

TEST(RetryOnAbort, NonAbortExceptionsPassStraightThrough)
{
    unsigned calls = 0;
    EXPECT_THROW(harness::retryOnAbort(RetryPolicy{},
                                       [&]() -> int {
                                           ++calls;
                                           throw std::runtime_error("boom");
                                       }),
                 std::runtime_error);
    EXPECT_EQ(calls, 1u); // no retry for non-abort failures
}

TEST(GuardedMain, PassesThroughTheBodysExitCode)
{
    EXPECT_EQ(harness::guardedMain("t", 0, nullptr,
                                   [](int, char **) { return 0; }),
              0);
    EXPECT_EQ(harness::guardedMain("t", 0, nullptr,
                                   [](int, char **) { return 1; }),
              1);
}

TEST(GuardedMain, SimErrorReportsAndExitsThree)
{
    const int rc =
        harness::guardedMain("t", 0, nullptr, [](int, char **) -> int {
            obs::Json dump = obs::Json::object();
            dump["proc"] = 2;
            throw sim::SimError("simulated deadlock", std::move(dump));
        });
    EXPECT_EQ(rc, harness::kErrorExitCode);
}

TEST(GuardedMain, QueryAbortReportsAndExitsThree)
{
    const int rc =
        harness::guardedMain("t", 0, nullptr, [](int, char **) -> int {
            throw db::QueryAbort(db::QueryAbort::Reason::Injected, 3, 9,
                                 "injected fault: query abort");
        });
    EXPECT_EQ(rc, harness::kErrorExitCode);
}

TEST(GuardedMain, GenericExceptionReportsAndExitsThree)
{
    const int rc = harness::guardedMain(
        "t", 0, nullptr,
        [](int, char **) -> int { throw std::runtime_error("boom"); });
    EXPECT_EQ(rc, harness::kErrorExitCode);
}

} // namespace
