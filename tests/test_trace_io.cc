/**
 * @file
 * Tests for trace serialization: round trips, corruption detection, and
 * simulation equivalence of reloaded traces.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "sim/trace_io.hh"

namespace {

using namespace dss;
using namespace dss::sim;

std::vector<TraceStream>
sampleStreams()
{
    std::vector<TraceStream> out(2);
    out[0].record(TraceEntry::read(0x1000, DataClass::Data, 8));
    out[0].record(TraceEntry::busy(42));
    out[0].record(TraceEntry::write(0x2000, DataClass::Priv, 4));
    out[0].record(TraceEntry::lockAcq(0x3000, DataClass::LockSLock));
    out[0].record(TraceEntry::lockRel(0x3000, DataClass::LockSLock));
    out[1].record(TraceEntry::read(0x4000, DataClass::Index, 8));
    return out;
}

TEST(TraceIo, RoundTripPreservesEveryEntry)
{
    std::vector<TraceStream> in = sampleStreams();
    std::stringstream buf;
    saveTraces(buf, in);
    std::vector<TraceStream> out = loadTraces(buf);

    ASSERT_EQ(out.size(), in.size());
    for (std::size_t s = 0; s < in.size(); ++s) {
        ASSERT_EQ(out[s].size(), in[s].size());
        for (std::size_t i = 0; i < in[s].size(); ++i) {
            const TraceEntry &a = in[s].entries()[i];
            const TraceEntry &b = out[s].entries()[i];
            EXPECT_EQ(a.addr, b.addr);
            EXPECT_EQ(a.op, b.op);
            EXPECT_EQ(a.cls, b.cls);
            EXPECT_EQ(a.extra, b.extra);
            EXPECT_EQ(a.size, b.size);
        }
    }
}

TEST(TraceIo, EmptySetRoundTrips)
{
    std::stringstream buf;
    saveTraces(buf, {});
    EXPECT_TRUE(loadTraces(buf).empty());
}

TEST(TraceIo, BadMagicRejected)
{
    std::stringstream buf;
    buf << "NOTATRACEFILE.....";
    EXPECT_THROW(loadTraces(buf), std::runtime_error);
}

TEST(TraceIo, TruncationRejected)
{
    std::vector<TraceStream> in = sampleStreams();
    std::stringstream buf;
    saveTraces(buf, in);
    std::string bytes = buf.str();
    std::stringstream cut(bytes.substr(0, bytes.size() - 7));
    EXPECT_THROW(loadTraces(cut), std::runtime_error);
}

TEST(TraceIo, CorruptOpCodeRejected)
{
    std::vector<TraceStream> in = sampleStreams();
    std::stringstream buf;
    saveTraces(buf, in);
    std::string bytes = buf.str();
    // First entry's op byte lives at header(8) + count(4) + n(8) + addr(8)
    // + extra(4).
    bytes[8 + 4 + 8 + 8 + 4] = 0x7f;
    std::stringstream bad(bytes);
    EXPECT_THROW(loadTraces(bad), std::runtime_error);
}

TEST(TraceIo, FileRoundTripAndSimulationEquivalence)
{
    // Capture a real workload trace, save, reload, and check the machine
    // produces identical statistics from the reloaded copy.
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 2, 42);
    harness::TraceSet traces = wl.trace(tpcd::QueryId::Q6);

    const std::string path = ::testing::TempDir() + "/dss_traces.bin";
    saveTracesFile(path, traces);
    std::vector<TraceStream> reloaded = loadTracesFile(path);

    sim::MachineConfig cfg = sim::MachineConfig::baseline();
    cfg.nprocs = 2;
    sim::SimStats a = harness::runCold(cfg, traces);
    harness::TraceSet reloaded_set;
    for (auto &t : reloaded)
        reloaded_set.push_back(std::move(t));
    sim::SimStats b = harness::runCold(cfg, reloaded_set);

    ASSERT_EQ(a.procs.size(), b.procs.size());
    for (std::size_t p = 0; p < a.procs.size(); ++p) {
        EXPECT_EQ(a.procs[p].totalCycles(), b.procs[p].totalCycles());
        EXPECT_EQ(a.procs[p].l1Misses().total(),
                  b.procs[p].l1Misses().total());
        EXPECT_EQ(a.procs[p].l2Misses().total(),
                  b.procs[p].l2Misses().total());
    }
}

TEST(TraceIo, MissingFileThrows)
{
    EXPECT_THROW(loadTracesFile("/nonexistent/dir/trace.bin"),
                 std::runtime_error);
}

} // namespace
