/**
 * @file
 * Edge cases curated from a coverage pass: merge-join duplicate replay,
 * hash-join gaps, sort rescan, partitioned-scan rescan, b-tree boundary
 * seeks, machine contention accounting, dbgen internal consistency, and
 * report guards.
 */

#include <algorithm>
#include <map>
#include <sstream>

#include <gtest/gtest.h>

#include "db_test_util.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "tpcd_test_util.hh"

namespace {

using namespace dss;
using namespace dss::db;
using dss::test::CatalogFixture;
using dss::test::MemFixture;

// ---------------------------------------------------------------------
// Executor edges

struct EdgeFixture : CatalogFixture
{
    db::PrivateHeap privHeap{space, 0};

    ExecContext
    ctx()
    {
        return ExecContext{mem, catalog, privHeap, 99};
    }
};

TEST(MergeJoinEdge, LeftDuplicatesReplayRightGroup)
{
    EdgeFixture f;
    // Left: keys {5,5,5}; right: keys {5,5} -> 3 x 2 = 6 output rows.
    Schema ls;
    ls.add("lk", AttrType::Int32);
    RelId lrel = f.catalog.createTable(f.mem, "l", ls);
    for (int i = 0; i < 3; ++i)
        f.catalog.insert(f.mem, lrel, {Datum{std::int64_t{5}}});
    Schema rs;
    rs.add("rk", AttrType::Int32).add("v", AttrType::Int32);
    RelId rrel = f.catalog.createTable(f.mem, "r", rs);
    for (int i = 0; i < 2; ++i)
        f.catalog.insert(f.mem, rrel,
                         {Datum{std::int64_t{5}},
                          Datum{static_cast<std::int64_t>(i)}});

    auto left = std::make_unique<SeqScanNode>(f.catalog.relation(lrel),
                                              nullptr);
    auto right = std::make_unique<SeqScanNode>(f.catalog.relation(rrel),
                                               nullptr);
    std::vector<ProjItem> proj{{false, 0}, {true, 1}};
    MergeJoinNode join(std::move(left), std::move(right), 0, 0, proj);
    ExecContext c = f.ctx();
    auto rows = runQuery(c, join);
    EXPECT_EQ(rows.size(), 6u);
}

TEST(MergeJoinEdge, AlternatingGapsAlignCorrectly)
{
    EdgeFixture f;
    // Left keys: 1, 3, 5, 7; right keys: 2, 3, 6, 7 -> matches {3, 7}.
    Schema ls;
    ls.add("lk", AttrType::Int32);
    RelId lrel = f.catalog.createTable(f.mem, "l", ls);
    for (int k : {1, 3, 5, 7})
        f.catalog.insert(f.mem, lrel,
                         {Datum{static_cast<std::int64_t>(k)}});
    Schema rs;
    rs.add("rk", AttrType::Int32);
    RelId rrel = f.catalog.createTable(f.mem, "r", rs);
    for (int k : {2, 3, 6, 7})
        f.catalog.insert(f.mem, rrel,
                         {Datum{static_cast<std::int64_t>(k)}});

    auto left = std::make_unique<SeqScanNode>(f.catalog.relation(lrel),
                                              nullptr);
    auto right = std::make_unique<SeqScanNode>(f.catalog.relation(rrel),
                                               nullptr);
    std::vector<ProjItem> proj{{false, 0}, {true, 0}};
    MergeJoinNode join(std::move(left), std::move(right), 0, 0, proj);
    ExecContext c = f.ctx();
    auto rows = runQuery(c, join);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(datumInt(rows[0][0]), 3);
    EXPECT_EQ(datumInt(rows[1][0]), 7);
}

TEST(SortEdge, RescanReplaysSortedOutput)
{
    EdgeFixture f;
    f.fill(30);
    auto scan = std::make_unique<SeqScanNode>(f.catalog.relation(f.table),
                                              nullptr);
    SortNode sort(std::move(scan), {0}, {true}); // k descending
    ExecContext c = f.ctx();
    sort.open(c);
    sim::Addr out;
    ASSERT_TRUE(sort.next(c, out));
    EXPECT_EQ(datumInt(readAttr(f.mem, out,
                                f.catalog.relation(f.table).schema, 0)),
              29);
    sort.rescan(c);
    ASSERT_TRUE(sort.next(c, out));
    EXPECT_EQ(datumInt(readAttr(f.mem, out,
                                f.catalog.relation(f.table).schema, 0)),
              29);
    sort.close(c);
}

TEST(SeqScanEdge, PartitionedRescanStaysInRange)
{
    EdgeFixture f;
    f.fill(600); // several blocks
    const Relation &r = f.catalog.relation(f.table);
    ASSERT_GE(r.blocks.size(), 2u);
    SeqScanNode scan(r, nullptr, 1, 2); // only block 1
    ExecContext c = f.ctx();
    scan.open(c);
    sim::Addr out;
    std::size_t first_pass = 0;
    while (scan.next(c, out))
        ++first_pass;
    scan.rescan(c);
    std::size_t second_pass = 0;
    while (scan.next(c, out))
        ++second_pass;
    scan.close(c);
    EXPECT_GT(first_pass, 0u);
    EXPECT_EQ(first_pass, second_pass);
    EXPECT_LT(first_pass, 600u);
}

TEST(HashJoinEdge, ProbeMissesInterleaveWithHits)
{
    EdgeFixture f;
    f.fill(20); // probe keys 0..19
    Schema bs;
    bs.add("bk", AttrType::Int32);
    RelId brel = f.catalog.createTable(f.mem, "b", bs);
    for (int k = 0; k < 20; k += 3) // build keys 0, 3, 6, ...
        f.catalog.insert(f.mem, brel,
                         {Datum{static_cast<std::int64_t>(k)}});

    auto probe = std::make_unique<SeqScanNode>(
        f.catalog.relation(f.table), nullptr);
    auto build = std::make_unique<SeqScanNode>(f.catalog.relation(brel),
                                               nullptr);
    std::vector<ProjItem> proj{{false, 0}};
    HashJoinNode join(std::move(probe), std::move(build), 0, 0, proj);
    ExecContext c = f.ctx();
    auto rows = runQuery(c, join);
    EXPECT_EQ(rows.size(), 7u); // keys 0,3,6,9,12,15,18
}

// ---------------------------------------------------------------------
// B-tree boundary seeks

TEST(BTreeEdge, SeekBelowFirstAndAtLast)
{
    MemFixture base;
    db::BufferManager bm(base.mem, 256);
    BTree tree(50, bm);
    std::vector<BTree::Entry> e;
    for (int i = 10; i <= 1000; i += 10)
        e.push_back({i, db::Tid{0, static_cast<std::uint16_t>(i / 10)}});
    tree.build(base.mem, e);

    // Below the first key: cursor lands on the first entry.
    BTree::Cursor c = tree.seek(base.mem, -100);
    std::int64_t k;
    db::Tid t;
    ASSERT_TRUE(c.next(base.mem, k, t));
    EXPECT_EQ(k, 10);
    c.close(base.mem);

    // Exactly the last key.
    EXPECT_EQ(tree.lookupAll(base.mem, 1000).size(), 1u);
    // Just past it.
    EXPECT_TRUE(tree.lookupAll(base.mem, 1001).empty());
}

TEST(BTreeEdge, ExtremeKeysRoundTrip)
{
    MemFixture base;
    db::BufferManager bm(base.mem, 256);
    BTree tree(50, bm);
    const std::int64_t lo = std::numeric_limits<std::int64_t>::min() + 1;
    const std::int64_t hi = std::numeric_limits<std::int64_t>::max() - 1;
    tree.build(base.mem,
               {{lo, db::Tid{1, 1}}, {0, db::Tid{2, 2}},
                {hi, db::Tid{3, 3}}});
    EXPECT_EQ(tree.lookupAll(base.mem, lo).size(), 1u);
    EXPECT_EQ(tree.lookupAll(base.mem, 0).size(), 1u);
    EXPECT_EQ(tree.lookupAll(base.mem, hi).size(), 1u);
}

// ---------------------------------------------------------------------
// Machine accounting edges

TEST(MachineEdge, ControllerContentionDelaysSimultaneousMisses)
{
    // Four processors miss on four different lines of the SAME page (one
    // home controller): later requests queue behind earlier ones.
    sim::MachineConfig cfg = sim::MachineConfig::baseline();
    sim::Machine m(cfg);
    std::vector<sim::TraceStream> traces(4);
    for (unsigned p = 0; p < 4; ++p) {
        traces[p].record(sim::TraceEntry::read(0x40 * (p + 1) * 2,
                                               sim::DataClass::Data, 8));
    }
    sim::SimStats s =
        m.run({&traces[0], &traces[1], &traces[2], &traces[3]});
    // All four requests arrive at cycle 0 at home node 0; stalls must be
    // strictly increasing by the controller occupancy.
    std::vector<sim::Cycles> stalls;
    for (const auto &p : s.procs)
        stalls.push_back(p.memStall);
    std::sort(stalls.begin(), stalls.end());
    for (std::size_t i = 1; i < stalls.size(); ++i)
        EXPECT_GT(stalls[i], stalls[i - 1]);
}

TEST(MachineEdge, PrefetchDegreeZeroIsInert)
{
    sim::MachineConfig cfg = sim::MachineConfig::baseline();
    cfg.prefetchData = true;
    cfg.prefetchDegree = 0;
    sim::Machine m(cfg);
    sim::TraceStream t;
    for (sim::Addr a = 0; a < 4096; a += 32)
        t.record(sim::TraceEntry::read(a, sim::DataClass::Data, 8));
    sim::SimStats s = m.run({&t});
    EXPECT_EQ(s.procs[0].prefetchesIssued, 0u);
}

TEST(MachineEdge, IdleProcessorsReportNothing)
{
    sim::MachineConfig cfg = sim::MachineConfig::baseline();
    sim::Machine m(cfg);
    sim::TraceStream t;
    t.record(sim::TraceEntry::read(0x0, sim::DataClass::Data, 8));
    sim::SimStats s = m.run({&t}); // 1 trace on a 4-proc machine
    ASSERT_EQ(s.procs.size(), 1u); // stats only for driven processors
}

// ---------------------------------------------------------------------
// dbgen internal consistency

TEST(DbgenEdge, OrderStatusAgreesWithLineitemShipdates)
{
    tpcd::TpcdDb db(tpcd::ScaleConfig::tiny(), 1, 42);
    auto orders = dss::test::dumpRelation(db, db.orders);
    auto li = dss::test::dumpRelation(db, db.lineitem);
    const Schema &os = db.catalog().relation(db.orders).schema;
    const Schema &ls = db.catalog().relation(db.lineitem).schema;
    const std::int32_t today = tpcd::dateNum(1995, 6, 17);

    std::map<std::int64_t, std::pair<int, int>> shipped; // ok -> (done, n)
    for (const auto &l : li) {
        auto ok = datumInt(l[ls.indexOf("l_orderkey")]);
        auto sd = datumInt(l[ls.indexOf("l_shipdate")]);
        auto &[done, n] = shipped[ok];
        done += sd <= today ? 1 : 0;
        ++n;
    }
    for (const auto &o : orders) {
        auto ok = datumInt(o[os.indexOf("o_orderkey")]);
        std::string st = datumStr(o[os.indexOf("o_orderstatus")]);
        auto [done, n] = shipped[ok];
        if (done == 0)
            EXPECT_EQ(st, "O") << "order " << ok;
        else if (done == n)
            EXPECT_EQ(st, "F") << "order " << ok;
        else
            EXPECT_EQ(st, "P") << "order " << ok;
    }
}

TEST(DbgenEdge, LineStatusFollowsShipdate)
{
    tpcd::TpcdDb db(tpcd::ScaleConfig::tiny(), 1, 42);
    auto li = dss::test::dumpRelation(db, db.lineitem);
    const Schema &ls = db.catalog().relation(db.lineitem).schema;
    const std::int32_t today = tpcd::dateNum(1995, 6, 17);
    for (const auto &l : li) {
        auto sd = datumInt(l[ls.indexOf("l_shipdate")]);
        std::string status = datumStr(l[ls.indexOf("l_linestatus")]);
        EXPECT_EQ(status, sd <= today ? "F" : "O");
    }
}

// ---------------------------------------------------------------------
// Report guards

TEST(ReportEdge, EmptyMissTablePrintsHeaderOnly)
{
    sim::MissTable empty;
    std::ostringstream os;
    harness::printMissTable(os, "nothing", empty);
    EXPECT_NE(os.str().find("structure"), std::string::npos);
    EXPECT_EQ(os.str().find("Data "), std::string::npos);
}

TEST(ReportEdge, BreakdownsOfEmptyStatsAreZero)
{
    sim::SimStats st;
    st.procs.resize(1); // all-zero processor
    harness::TimeBreakdown tb = harness::timeBreakdown(st);
    EXPECT_EQ(tb.total, 0u);
    EXPECT_EQ(tb.busy, 0.0);
    harness::MemBreakdown mb = harness::memBreakdown(st);
    EXPECT_EQ(mb.totalMem, 0u);
}

} // namespace
