/**
 * @file
 * Tests for the experiment harness: workload tracing, cold/warm runs, and
 * report formatting.
 */

#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "harness/report.hh"
#include "harness/runner.hh"

namespace {

using namespace dss;

struct WorkloadFixture : ::testing::Test
{
    harness::Workload wl{tpcd::ScaleConfig::tiny(), 2, 42};
};

TEST_F(WorkloadFixture, TraceProducesOneStreamPerProcessor)
{
    harness::TraceSet traces = wl.trace(tpcd::QueryId::Q6);
    ASSERT_EQ(traces.size(), 2u);
    EXPECT_FALSE(traces[0].empty());
    EXPECT_FALSE(traces[1].empty());
}

TEST_F(WorkloadFixture, ProcessorsGetDistinctParameters)
{
    // Paper Section 4.3: same query type, different parameters per
    // processor. Different parameters -> different reference streams.
    harness::TraceSet traces = wl.trace(tpcd::QueryId::Q3);
    EXPECT_NE(traces[0].size(), traces[1].size());
}

TEST_F(WorkloadFixture, ProcessorsTouchTheSameSharedData)
{
    harness::TraceSet traces = wl.trace(tpcd::QueryId::Q6);
    // Both scan the same lineitem pages: the set of shared Data addresses
    // overlaps heavily.
    auto shared_addrs = [](const sim::TraceStream &t) {
        std::set<sim::Addr> out;
        for (const sim::TraceEntry &e : t.entries())
            if (e.op == sim::Op::Read && e.cls == sim::DataClass::Data)
                out.insert(e.addr & ~63ull);
        return out;
    };
    std::set<sim::Addr> a = shared_addrs(traces[0]);
    std::set<sim::Addr> b = shared_addrs(traces[1]);
    std::size_t common = 0;
    for (sim::Addr x : a)
        common += b.count(x);
    EXPECT_GT(common, a.size() / 2);
}

TEST_F(WorkloadFixture, PrivateReferencesAreProcessorLocal)
{
    harness::TraceSet traces = wl.trace(tpcd::QueryId::Q6);
    for (unsigned p = 0; p < 2; ++p) {
        for (const sim::TraceEntry &e : traces[p].entries()) {
            if (e.op != sim::Op::Read && e.op != sim::Op::Write)
                continue;
            if (e.cls == sim::DataClass::Priv) {
                EXPECT_EQ(wl.db().space().ownerOf(e.addr), p)
                    << "private ref of proc " << p << " in wrong arena";
            }
        }
    }
}

TEST_F(WorkloadFixture, TracesAreLockBalanced)
{
    harness::TraceSet traces = wl.trace(tpcd::QueryId::Q3);
    for (const sim::TraceStream &t : traces) {
        std::map<sim::Addr, int> held;
        for (const sim::TraceEntry &e : t.entries()) {
            if (e.op == sim::Op::LockAcq)
                ++held[e.addr];
            else if (e.op == sim::Op::LockRel)
                --held[e.addr];
            EXPECT_GE(held.empty() ? 0 : held.begin()->second, 0);
        }
        for (const auto &[addr, n] : held)
            EXPECT_EQ(n, 0) << "lock 0x" << std::hex << addr
                            << " not released";
    }
}

TEST_F(WorkloadFixture, TracingIsDeterministicAcrossWorkloads)
{
    // Two identically seeded workloads produce identical traces. (Within
    // one workload, consecutive queries use fresh transaction ids, whose
    // xid-hash probe paths legitimately differ.)
    harness::Workload other(tpcd::ScaleConfig::tiny(), 2, 42);
    sim::TraceStream a = wl.traceOne(tpcd::QueryId::Q6, 0, 99);
    sim::TraceStream b = other.traceOne(tpcd::QueryId::Q6, 0, 99);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.entries()[i].addr, b.entries()[i].addr);
        EXPECT_EQ(a.entries()[i].op, b.entries()[i].op);
    }
}

TEST_F(WorkloadFixture, RunColdAndWarmSequences)
{
    harness::TraceSet traces = wl.trace(tpcd::QueryId::Q6);
    sim::MachineConfig cfg = sim::MachineConfig::baseline();
    cfg.nprocs = 2;
    cfg = cfg.withCacheSizes(1 << 20, 32 << 20); // big enough to reuse

    sim::SimStats cold = harness::runCold(cfg, traces);
    std::vector<sim::SimStats> seq =
        harness::runSequence(cfg, {&traces, &traces});
    ASSERT_EQ(seq.size(), 2u);
    // First run of the sequence == a cold run.
    EXPECT_EQ(seq[0].aggregate().l2Misses().total(),
              cold.aggregate().l2Misses().total());
    // Warm run reuses the whole scanned table.
    EXPECT_LT(seq[1].aggregate().l2Misses().byGroup(sim::ClassGroup::Data),
              cold.aggregate().l2Misses().byGroup(sim::ClassGroup::Data) /
                  4);
}

TEST(Report, FixedAndPctFormat)
{
    EXPECT_EQ(harness::fixed(12.345, 1), "12.3");
    EXPECT_EQ(harness::fixed(2.0, 2), "2.00");
    EXPECT_EQ(harness::pct(1, 4), "25.0");
    EXPECT_EQ(harness::pct(1, 0), "0.0"); // guard against empty whole
}

TEST(Report, FormattersNeverEmitNanOrInf)
{
    // A zero-length run divides by zero everywhere; the tables must not
    // print "nan"/"inf" for it.
    EXPECT_EQ(harness::pct(0, 0), "0.0");
    EXPECT_EQ(harness::pct(5, -1), "0.0");
    EXPECT_EQ(harness::fixed(std::nan(""), 1), "n/a");
    EXPECT_EQ(harness::fixed(1.0 / 0.0, 1), "n/a");
    EXPECT_EQ(harness::fixed(-1.0 / 0.0, 2), "n/a");
    EXPECT_EQ(harness::fixed(0.0 / 0.0), "n/a");
}

TEST(Report, TimeBreakdownFractionsSumToOne)
{
    sim::SimStats st;
    st.procs.resize(1);
    st.procs[0].busy = 600;
    st.procs[0].memStall = 300;
    st.procs[0].syncStall = 100;
    harness::TimeBreakdown tb = harness::timeBreakdown(st);
    EXPECT_EQ(tb.total, 1000u);
    EXPECT_DOUBLE_EQ(tb.busy + tb.mem + tb.msync, 1.0);
}

TEST(Report, MemBreakdownFollowsGroups)
{
    sim::SimStats st;
    st.procs.resize(1);
    st.procs[0].memStall = 100;
    st.procs[0].memStallByGroup[static_cast<int>(
        sim::ClassGroup::Data)] = 75;
    st.procs[0].memStallByGroup[static_cast<int>(
        sim::ClassGroup::Priv)] = 25;
    harness::MemBreakdown mb = harness::memBreakdown(st);
    EXPECT_DOUBLE_EQ(
        mb.byGroup[static_cast<int>(sim::ClassGroup::Data)], 0.75);
    EXPECT_DOUBLE_EQ(
        mb.byGroup[static_cast<int>(sim::ClassGroup::Priv)], 0.25);
}

TEST(Report, TextTableAlignsColumns)
{
    harness::TextTable t({"a", "long_header"});
    t.addRow({"xxxx", "1"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("a     long_header"), std::string::npos);
    EXPECT_NE(out.find("xxxx"), std::string::npos);
}

TEST(Report, MissTablePrintsOnlyNonEmptyRows)
{
    sim::MissTable t;
    t.add(sim::DataClass::Data, sim::MissType::Cold, 60);
    t.add(sim::DataClass::LockSLock, sim::MissType::Cohe, 40);
    std::ostringstream os;
    harness::printMissTable(os, "test", t);
    std::string out = os.str();
    EXPECT_NE(out.find("Data"), std::string::npos);
    EXPECT_NE(out.find("LockSLock"), std::string::npos);
    EXPECT_EQ(out.find("XidHash"), std::string::npos); // zero row omitted
    EXPECT_NE(out.find("60.0"), std::string::npos);    // normalized to 100
}

TEST(Report, TracePtrsViewsAllStreams)
{
    harness::TraceSet set(3);
    auto ptrs = harness::tracePtrs(set);
    ASSERT_EQ(ptrs.size(), 3u);
    EXPECT_EQ(ptrs[0], &set[0]);
    EXPECT_EQ(ptrs[2], &set[2]);
}

} // namespace
