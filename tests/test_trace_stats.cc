/**
 * @file
 * Unit tests for trace streams (entry encoding, busy coalescing, counts)
 * and simulation statistics (miss tables, aggregation, rates).
 */

#include <gtest/gtest.h>

#include "sim/stats.hh"
#include "sim/trace.hh"

namespace {

using namespace dss::sim;

TEST(TraceEntry, FactoriesEncodeFields)
{
    TraceEntry r = TraceEntry::read(0x1234, DataClass::Data, 8);
    EXPECT_EQ(r.op, Op::Read);
    EXPECT_EQ(r.addr, 0x1234u);
    EXPECT_EQ(r.cls, DataClass::Data);
    EXPECT_EQ(r.size, 8);

    TraceEntry w = TraceEntry::write(0x10, DataClass::Priv, 4);
    EXPECT_EQ(w.op, Op::Write);

    TraceEntry b = TraceEntry::busy(42);
    EXPECT_EQ(b.op, Op::Busy);
    EXPECT_EQ(b.extra, 42u);

    TraceEntry la = TraceEntry::lockAcq(0x99, DataClass::LockSLock);
    EXPECT_EQ(la.op, Op::LockAcq);
    TraceEntry lr = TraceEntry::lockRel(0x99, DataClass::LockSLock);
    EXPECT_EQ(lr.op, Op::LockRel);
}

TEST(TraceStream, CoalescesConsecutiveBusy)
{
    TraceStream s;
    s.record(TraceEntry::busy(10));
    s.record(TraceEntry::busy(20));
    s.record(TraceEntry::read(0x40, DataClass::Data, 8));
    s.record(TraceEntry::busy(5));
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s.entries()[0].extra, 30u);
}

TEST(TraceStream, DropsZeroBusy)
{
    TraceStream s;
    s.record(TraceEntry::busy(0));
    EXPECT_TRUE(s.empty());
}

TEST(TraceStream, CountsSummarizeByClass)
{
    TraceStream s;
    s.record(TraceEntry::read(0x40, DataClass::Data, 8));
    s.record(TraceEntry::read(0x80, DataClass::Index, 8));
    s.record(TraceEntry::write(0xc0, DataClass::Priv, 8));
    s.record(TraceEntry::busy(7));
    s.record(TraceEntry::lockAcq(0x100, DataClass::LockSLock));
    s.record(TraceEntry::lockRel(0x100, DataClass::LockSLock));
    TraceStream::Counts c = s.counts();
    EXPECT_EQ(c.reads, 2u);
    EXPECT_EQ(c.writes, 1u);
    EXPECT_EQ(c.busyCycles, 7u);
    EXPECT_EQ(c.lockAcqs, 1u);
    EXPECT_EQ(c.readsByClass[static_cast<int>(DataClass::Data)], 1u);
    EXPECT_EQ(c.writesByClass[static_cast<int>(DataClass::Priv)], 1u);
}

TEST(MissTable, AddAndQuery)
{
    MissTable t;
    t.add(DataClass::Data, MissType::Cold, 5);
    t.add(DataClass::Data, MissType::Conf);
    t.add(DataClass::LockSLock, MissType::Cohe, 3);
    EXPECT_EQ(t.of(DataClass::Data, MissType::Cold), 5u);
    EXPECT_EQ(t.byClass(DataClass::Data), 6u);
    EXPECT_EQ(t.byGroup(ClassGroup::Metadata), 3u);
    EXPECT_EQ(t.byGroupAndType(ClassGroup::Metadata, MissType::Cohe), 3u);
    EXPECT_EQ(t.total(), 9u);
}

TEST(MissTable, Accumulate)
{
    MissTable a, b;
    a.add(DataClass::Data, MissType::Cold, 1);
    b.add(DataClass::Data, MissType::Cold, 2);
    b.add(DataClass::Priv, MissType::Conf, 4);
    a += b;
    EXPECT_EQ(a.of(DataClass::Data, MissType::Cold), 3u);
    EXPECT_EQ(a.total(), 7u);
}

TEST(ProcStats, TotalsAndSplits)
{
    ProcStats s;
    s.busy = 600;
    s.memStall = 300;
    s.syncStall = 100;
    s.memStallByGroup[static_cast<int>(ClassGroup::Priv)] = 120;
    s.memStallByGroup[static_cast<int>(ClassGroup::Data)] = 180;
    EXPECT_EQ(s.totalCycles(), 1000u);
    EXPECT_EQ(s.pmem(), 120u);
    EXPECT_EQ(s.smem(), 180u);
}

TEST(ProcStats, MissRatesUseAssumedHitDenominator)
{
    ProcStats s;
    s.reads = 100;
    s.assumedHitReads = 100;
    s.l1Misses().add(DataClass::Data, MissType::Cold, 10);
    s.l2Misses().add(DataClass::Data, MissType::Cold, 2);
    EXPECT_DOUBLE_EQ(s.l1MissRate(), 10.0 / 200.0);
    EXPECT_DOUBLE_EQ(s.l2GlobalMissRate(), 2.0 / 200.0);
}

TEST(ProcStats, RatesZeroWithoutReferences)
{
    ProcStats s;
    EXPECT_EQ(s.l1MissRate(), 0.0);
    EXPECT_EQ(s.l2GlobalMissRate(), 0.0);
}

TEST(SimStats, AggregateSumsProcessors)
{
    SimStats st;
    st.procs.resize(2);
    st.procs[0].busy = 100;
    st.procs[0].reads = 10;
    st.procs[1].busy = 200;
    st.procs[1].reads = 20;
    st.procs[1].l1Misses().add(DataClass::Priv, MissType::Conf, 4);
    ProcStats agg = st.aggregate();
    EXPECT_EQ(agg.busy, 300u);
    EXPECT_EQ(agg.reads, 30u);
    EXPECT_EQ(agg.l1Misses().total(), 4u);
}

TEST(SimStats, ExecutionTimeIsSlowestProcessor)
{
    SimStats st;
    st.procs.resize(3);
    st.procs[0].busy = 100;
    st.procs[1].busy = 500;
    st.procs[2].busy = 50;
    st.procs[2].memStall = 200;
    EXPECT_EQ(st.executionTime(), 500u);
}

TEST(MissTypeNames, Stable)
{
    EXPECT_EQ(missTypeName(MissType::Cold), "Cold");
    EXPECT_EQ(missTypeName(MissType::Conf), "Conf");
    EXPECT_EQ(missTypeName(MissType::Cohe), "Cohe");
}

} // namespace
