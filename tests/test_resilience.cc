/**
 * @file
 * Tests for the stream-resilience layer (src/sched/resilience.*): shed
 * policy parsing, per-class deadline resolution, shed-victim total
 * ordering, the circuit breaker's full state machine (trip, cooldown
 * shed, half-open trial, recovery, re-trip, probe-shed reopen), the
 * lazily materialized OutageTable against the FaultPlan's pure outage
 * function, and the scheduler-level behaviours: deadline timeouts,
 * capacity-0 admission, node-failure migration, engine invariance of a
 * fully resilient stream, registry export, and the clean SimError
 * (guardedMain exit 3) when every processor fails permanently with
 * queries still queued.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/guard.hh"
#include "harness/runner.hh"
#include "harness/workload.hh"
#include "obs/registry.hh"
#include "sched/resilience.hh"
#include "sched/scheduler.hh"
#include "sim/error.hh"
#include "sim/fault.hh"

namespace {

using namespace dss;
using sched::CircuitBreaker;
using sched::Outcome;
using sched::ShedPolicy;

// ------------------------------------------------------------ config layer

TEST(ShedPolicyModel, ParseAndName)
{
    EXPECT_EQ(sched::parseShedPolicy("newest"), ShedPolicy::RejectNewest);
    EXPECT_EQ(sched::parseShedPolicy("class"), ShedPolicy::RejectByClass);
    EXPECT_EQ(sched::parseShedPolicy("deadline"),
              ShedPolicy::DeadlineAware);
    EXPECT_FALSE(sched::parseShedPolicy("oldest").has_value());
    EXPECT_EQ(sched::shedPolicyName(ShedPolicy::RejectByClass), "class");
}

TEST(ResilienceConfigModel, DeadlineForPrefersClassOverride)
{
    sched::ResilienceConfig cfg;
    cfg.deadline = 1000;
    cfg.classDeadlines = {{tpcd::QueryId::Q12, 5000}};
    EXPECT_EQ(cfg.deadlineFor(tpcd::QueryId::Q12), 5000u);
    EXPECT_EQ(cfg.deadlineFor(tpcd::QueryId::Q6), 1000u);
    // An override can also mean "no deadline for this class".
    cfg.classDeadlines.push_back({tpcd::QueryId::Q3, 0});
    EXPECT_EQ(cfg.deadlineFor(tpcd::QueryId::Q3), 0u);
}

TEST(ResilienceConfigModel, EnabledDetection)
{
    sched::ResilienceConfig off;
    EXPECT_FALSE(off.enabled());
    EXPECT_FALSE(off.breakerOn());

    sched::ResilienceConfig d = off;
    d.deadline = 1;
    EXPECT_TRUE(d.enabled());

    sched::ResilienceConfig q = off;
    q.queueCapacity = 0; // 0 is a real (harsh) capacity, not "off"
    EXPECT_TRUE(q.enabled());

    sched::ResilienceConfig nf = off;
    nf.nodeFailures = true;
    EXPECT_TRUE(nf.enabled());

    sched::ResilienceConfig b = off;
    b.breakerThreshold = 0.5;
    EXPECT_TRUE(b.enabled());
    EXPECT_TRUE(b.breakerOn());
}

// ------------------------------------------------------------- shed victim

/** instances[i].id == i so deadline lookup by id stays aligned. */
std::vector<sched::QueryInstance>
victims(std::vector<std::pair<tpcd::QueryId, sim::Cycles>> specs)
{
    std::vector<sched::QueryInstance> out;
    for (unsigned i = 0; i < specs.size(); ++i) {
        sched::QueryInstance q;
        q.id = i;
        q.query = specs[i].first;
        q.arrival = specs[i].second;
        out.push_back(q);
    }
    return out;
}

TEST(ShedVictimModel, RejectNewestPrefersLatestArrivalThenHighestId)
{
    const auto inst = victims({{tpcd::QueryId::Q6, 100},
                               {tpcd::QueryId::Q6, 300},
                               {tpcd::QueryId::Q6, 200}});
    const std::vector<unsigned> ready = {0, 1, 2};
    const std::vector<sim::Cycles> none(inst.size(), 0);
    EXPECT_EQ(ready[sched::shedVictim(ShedPolicy::RejectNewest, inst,
                                      ready, none)],
              1u);

    // Equal arrivals: the higher id is the newer instance.
    const auto tie = victims({{tpcd::QueryId::Q6, 100},
                              {tpcd::QueryId::Q6, 100},
                              {tpcd::QueryId::Q6, 100}});
    EXPECT_EQ(ready[sched::shedVictim(ShedPolicy::RejectNewest, tie,
                                      ready, none)],
              2u);
}

TEST(ShedVictimModel, RejectByClassPrefersSlowestClassThenNewest)
{
    // Q12 (Mixed) ranks slowest of the traced three; among two Q12s the
    // newer arrival goes.
    const auto inst = victims({{tpcd::QueryId::Q12, 100},
                               {tpcd::QueryId::Q6, 900},
                               {tpcd::QueryId::Q12, 500}});
    const std::vector<unsigned> ready = {0, 1, 2};
    const std::vector<sim::Cycles> none(inst.size(), 0);
    EXPECT_EQ(ready[sched::shedVictim(ShedPolicy::RejectByClass, inst,
                                      ready, none)],
              2u);
}

TEST(ShedVictimModel, DeadlineAwarePrefersTightestKeepsDeadlineFree)
{
    const auto inst = victims({{tpcd::QueryId::Q6, 100},
                               {tpcd::QueryId::Q6, 200},
                               {tpcd::QueryId::Q6, 300}});
    const std::vector<unsigned> ready = {0, 1, 2};
    // Instance 1 has the tightest absolute deadline; instance 2 has none
    // (0) and must be the safest keep even though it is the newest.
    const std::vector<sim::Cycles> deadlines = {5000, 2000, 0};
    EXPECT_EQ(ready[sched::shedVictim(ShedPolicy::DeadlineAware, inst,
                                      ready, deadlines)],
              1u);

    // All deadline-free: falls through to newest.
    const std::vector<sim::Cycles> none(inst.size(), 0);
    EXPECT_EQ(ready[sched::shedVictim(ShedPolicy::DeadlineAware, inst,
                                      ready, none)],
              2u);
}

TEST(ShedVictimModel, ReadySubsetIndexingIsRespected)
{
    // `ready` holds indices into `instances`; the victim is a position
    // in `ready`, not an instance id.
    const auto inst = victims({{tpcd::QueryId::Q6, 900},
                               {tpcd::QueryId::Q6, 100},
                               {tpcd::QueryId::Q6, 500}});
    const std::vector<unsigned> ready = {1, 2}; // instance 0 not queued
    const std::vector<sim::Cycles> none(inst.size(), 0);
    const unsigned v =
        sched::shedVictim(ShedPolicy::RejectNewest, inst, ready, none);
    EXPECT_EQ(v, 1u);           // position in ready...
    EXPECT_EQ(ready[v], 2u);    // ...naming instance 2 (arrival 500)
}

// --------------------------------------------------------- circuit breaker

sched::ResilienceConfig
breakerCfg(double threshold = 0.5, unsigned window = 4,
           sim::Cycles cooldown = 1000)
{
    sched::ResilienceConfig cfg;
    cfg.breakerThreshold = threshold;
    cfg.breakerWindow = window;
    cfg.breakerCooldown = cooldown;
    return cfg;
}

TEST(CircuitBreakerModel, DisabledAlwaysAdmits)
{
    CircuitBreaker cb{sched::ResilienceConfig{}};
    EXPECT_FALSE(cb.enabled());
    for (unsigned i = 0; i < 10; ++i) {
        EXPECT_EQ(cb.onArrival("Q6", i, i), CircuitBreaker::Decision::Admit);
        cb.onResolution("Q6", i, Outcome::Timeout, i);
    }
    EXPECT_EQ(cb.trips(), 0u);
}

TEST(CircuitBreakerModel, TripsAtThresholdAndShedsDuringCooldown)
{
    CircuitBreaker cb{breakerCfg(0.5, 4, 1000)};
    // Window fills Ok, Ok, Timeout — below 4 entries, no decision yet.
    cb.onResolution("Q12", 0, Outcome::Ok, 10);
    cb.onResolution("Q12", 1, Outcome::Ok, 20);
    cb.onResolution("Q12", 2, Outcome::Timeout, 30);
    EXPECT_EQ(cb.stateOf("Q12"), CircuitBreaker::State::Closed);
    // Fourth outcome brings the window to 2/4 timeouts = threshold: trip.
    cb.onResolution("Q12", 3, Outcome::Timeout, 40);
    EXPECT_EQ(cb.stateOf("Q12"), CircuitBreaker::State::Open);
    EXPECT_EQ(cb.trips(), 1u);
    // Other classes are independent.
    EXPECT_EQ(cb.stateOf("Q6"), CircuitBreaker::State::Closed);
    EXPECT_EQ(cb.onArrival("Q6", 4, 50), CircuitBreaker::Decision::Admit);
    // During the cooldown every arrival of the tripped class sheds.
    EXPECT_EQ(cb.onArrival("Q12", 5, 41), CircuitBreaker::Decision::Shed);
    EXPECT_EQ(cb.onArrival("Q12", 6, 1039), CircuitBreaker::Decision::Shed);
}

TEST(CircuitBreakerModel, HalfOpenTrialOkRecovers)
{
    CircuitBreaker cb{breakerCfg(0.5, 2, 1000)};
    cb.onResolution("Q3", 0, Outcome::Timeout, 100);
    cb.onResolution("Q3", 1, Outcome::Timeout, 200);
    ASSERT_EQ(cb.stateOf("Q3"), CircuitBreaker::State::Open);
    // Cooldown over (openUntil = 200 + 1000): the next arrival probes,
    // and a second arrival while the probe is in flight still sheds.
    EXPECT_EQ(cb.onArrival("Q3", 2, 1200), CircuitBreaker::Decision::Trial);
    EXPECT_EQ(cb.stateOf("Q3"), CircuitBreaker::State::HalfOpen);
    EXPECT_EQ(cb.onArrival("Q3", 3, 1300), CircuitBreaker::Decision::Shed);
    cb.onResolution("Q3", 2, Outcome::Ok, 1400);
    EXPECT_EQ(cb.stateOf("Q3"), CircuitBreaker::State::Closed);
    EXPECT_EQ(cb.recoveries(), 1u);
    // The recovery cleared the window: one more timeout must not re-trip
    // on stale history.
    cb.onResolution("Q3", 4, Outcome::Timeout, 1500);
    EXPECT_EQ(cb.stateOf("Q3"), CircuitBreaker::State::Closed);
}

TEST(CircuitBreakerModel, TrialTimeoutReTripsWithFullCooldown)
{
    CircuitBreaker cb{breakerCfg(0.5, 2, 1000)};
    cb.onResolution("Q3", 0, Outcome::Timeout, 100);
    cb.onResolution("Q3", 1, Outcome::Timeout, 200);
    EXPECT_EQ(cb.onArrival("Q3", 2, 1200), CircuitBreaker::Decision::Trial);
    cb.onResolution("Q3", 2, Outcome::Timeout, 1400);
    EXPECT_EQ(cb.stateOf("Q3"), CircuitBreaker::State::Open);
    EXPECT_EQ(cb.trips(), 2u);
    EXPECT_EQ(cb.recoveries(), 0u);
    // Full cooldown from the failed probe's resolution cycle.
    EXPECT_EQ(cb.onArrival("Q3", 3, 2399), CircuitBreaker::Decision::Shed);
    EXPECT_EQ(cb.onArrival("Q3", 4, 2400), CircuitBreaker::Decision::Trial);
}

TEST(CircuitBreakerModel, TrialShedReopensWithoutExtraCooldown)
{
    CircuitBreaker cb{breakerCfg(0.5, 2, 1000)};
    cb.onResolution("Q3", 0, Outcome::Timeout, 100);
    cb.onResolution("Q3", 1, Outcome::Timeout, 200);
    EXPECT_EQ(cb.onArrival("Q3", 2, 1200), CircuitBreaker::Decision::Trial);
    // The probe never got service (e.g. its queue slot was shed): the
    // class reopens at `now`, so the very next arrival probes again.
    cb.onResolution("Q3", 2, Outcome::ShedQueue, 1250);
    EXPECT_EQ(cb.stateOf("Q3"), CircuitBreaker::State::Open);
    EXPECT_EQ(cb.onArrival("Q3", 3, 1300), CircuitBreaker::Decision::Trial);
}

TEST(CircuitBreakerModel, ShedsDoNotFeedTheWindow)
{
    CircuitBreaker cb{breakerCfg(0.5, 2, 1000)};
    // Sheds and abandons are not service outcomes: the window must stay
    // empty and the class closed no matter how many resolve.
    for (unsigned i = 0; i < 8; ++i)
        cb.onResolution("Q6", i, Outcome::ShedQueue, i * 10);
    cb.onResolution("Q6", 8, Outcome::Abandoned, 100);
    EXPECT_EQ(cb.stateOf("Q6"), CircuitBreaker::State::Closed);
    EXPECT_EQ(cb.trips(), 0u);
}

TEST(CircuitBreakerModel, WindowSlidesBelowThreshold)
{
    CircuitBreaker cb{breakerCfg(0.75, 4, 1000)};
    // 2/4 timeouts < 0.75 threshold: the window slides without tripping.
    const Outcome seq[] = {Outcome::Timeout, Outcome::Ok, Outcome::Timeout,
                           Outcome::Ok,      Outcome::Ok, Outcome::Timeout};
    for (unsigned i = 0; i < 6; ++i)
        cb.onResolution("Q12", i, seq[i], i * 10);
    EXPECT_EQ(cb.stateOf("Q12"), CircuitBreaker::State::Closed);
    EXPECT_EQ(cb.trips(), 0u);
    EXPECT_EQ(cb.stateNames().size(), 1u);
    EXPECT_EQ(cb.stateNames()[0].second, "closed");
}

// ------------------------------------------------------------ outage table

TEST(OutageTableModel, InactiveWithoutPlanOrKind)
{
    sched::OutageTable none;
    EXPECT_FALSE(none.active());
    EXPECT_FALSE(none.coveringOutage(0, 0).has_value());
    EXPECT_EQ(none.nextUpAt(0, 123), 123u);
    EXPECT_EQ(none.degradedCyclesIn(0, 1000000), 0u);

    // A plan whose NodeFailure kind cannot fire is equally inactive.
    sim::FaultConfig fc;
    fc.seed = 7;
    fc.rate = 1.0;
    fc.kinds = sim::FaultConfig::bitOf(sim::FaultKind::LatencySpike);
    sim::FaultPlan plan(fc);
    sched::OutageTable t(&plan, 4);
    EXPECT_FALSE(t.active());
    EXPECT_FALSE(t.anyOutageIn(0, sim::FaultPlan::kNever));
}

TEST(OutageTableModel, MatchesThePlanPureFunction)
{
    sim::FaultConfig fc;
    fc.seed = 99;
    fc.rate = 1.0;
    fc.kinds = sim::FaultConfig::bitOf(sim::FaultKind::NodeFailure);
    fc.nodeMeanUpCycles = 500000;
    fc.nodeDownCycles = 100000;
    sim::FaultPlan plan(fc);
    sched::OutageTable t(&plan, 2);
    ASSERT_TRUE(t.active());

    for (sim::ProcId p = 0; p < 2; ++p) {
        for (unsigned k = 0; k < 4; ++k) {
            const auto o = plan.nodeOutage(p, k);
            ASSERT_TRUE(o.has_value());
            ASSERT_LT(o->start, o->end);
            // Queried mid-window the table reports exactly this window.
            const auto mid = t.coveringOutage(p, o->start);
            ASSERT_TRUE(mid.has_value());
            EXPECT_EQ(mid->proc, p);
            EXPECT_EQ(mid->index, k);
            EXPECT_EQ(mid->start, o->start);
            EXPECT_EQ(mid->end, o->end);
            // End cycle is back in service; windows never abut.
            EXPECT_FALSE(t.coveringOutage(p, o->end).has_value());
            EXPECT_EQ(t.nextUpAt(p, o->start), o->end);
            EXPECT_EQ(t.nextUpAt(p, o->end), o->end);
            // The next window follows strictly after this one.
            const auto nxt = t.nextOutageAfter(p, o->start);
            ASSERT_TRUE(nxt.has_value());
            EXPECT_EQ(nxt->index, k + 1);
            EXPECT_GT(nxt->start, o->end);
        }
    }
}

TEST(OutageTableModel, PermanentOutageNeverComesBack)
{
    sim::FaultConfig fc;
    fc.seed = 5;
    fc.rate = 1.0;
    fc.kinds = sim::FaultConfig::bitOf(sim::FaultKind::NodeFailure);
    fc.nodeMeanUpCycles = 200000;
    fc.nodeDownCycles = 0; // permanent
    sim::FaultPlan plan(fc);

    const auto first = plan.nodeOutage(0, 0);
    ASSERT_TRUE(first.has_value());
    EXPECT_TRUE(first->permanent);
    EXPECT_EQ(first->end, sim::FaultPlan::kNever);
    EXPECT_FALSE(plan.nodeOutage(0, 1).has_value()) << "only k=0 exists";

    sched::OutageTable t(&plan, 1);
    const auto cover = t.coveringOutage(0, first->start + 12345);
    ASSERT_TRUE(cover.has_value());
    EXPECT_TRUE(cover->permanent);
    EXPECT_FALSE(t.nextUpAt(0, first->start).has_value());
    EXPECT_EQ(t.nextUpAt(0, first->start - 1), first->start - 1);
}

TEST(OutageTableModel, DegradedCyclesIsTheUnionOfWindows)
{
    sim::FaultConfig fc;
    fc.seed = 31;
    fc.rate = 1.0;
    fc.kinds = sim::FaultConfig::bitOf(sim::FaultKind::NodeFailure);
    fc.nodeMeanUpCycles = 300000;
    fc.nodeDownCycles = 200000;
    sim::FaultPlan plan(fc);
    sched::OutageTable t(&plan, 4);
    const sim::Cycles span = 4000000;

    // Reference union computed directly from the reported windows.
    const auto ws = t.outagesIn(0, span);
    ASSERT_FALSE(ws.empty());
    sim::Cycles covered = 0, total = 0;
    for (const auto &w : ws) {
        ASSERT_TRUE(w.start < span && w.end > 0) << "window outside range";
        const sim::Cycles s = std::max(w.start, covered);
        const sim::Cycles e = std::min(w.end, span);
        if (e > s)
            total += e - s;
        covered = std::max(covered, e);
    }
    EXPECT_EQ(t.degradedCyclesIn(0, span), total);
    EXPECT_LE(total, span);
    // With 4 procs failing independently the per-proc sum exceeds the
    // union whenever windows overlap; the union must never exceed span.
    EXPECT_TRUE(t.anyOutageIn(0, span));
    EXPECT_FALSE(t.anyOutageIn(0, 1)) << "no outage can start at cycle 0";
}

// ------------------------------------------------- scheduler-level behaviour

/** Shared tiny workload (captures are pure; sharing cannot couple tests). */
class ResilienceSim : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        wl_ = new harness::Workload(tpcd::ScaleConfig::tiny(), 4);
        cache_ = new sched::TraceCache;
    }

    static void TearDownTestSuite()
    {
        delete cache_;
        cache_ = nullptr;
        delete wl_;
        wl_ = nullptr;
    }

    static harness::Workload *wl_;
    static sched::TraceCache *cache_;
};

harness::Workload *ResilienceSim::wl_ = nullptr;
sched::TraceCache *ResilienceSim::cache_ = nullptr;

/** A NodeFailure-only fault config. */
sim::FaultConfig
nodeFaultConfig(std::uint64_t seed, sim::Cycles mean_up, sim::Cycles down)
{
    sim::FaultConfig fc;
    fc.seed = seed;
    fc.rate = 1.0;
    fc.kinds = sim::FaultConfig::bitOf(sim::FaultKind::NodeFailure);
    fc.nodeMeanUpCycles = mean_up;
    fc.nodeDownCycles = down;
    return fc;
}

TEST_F(ResilienceSim, DeadlineTimeoutsAreAccounted)
{
    // Q12 solo needs ~2 Mcyc at tiny scale; a 1 Mcyc deadline times out
    // every instance, deterministically, at exactly arrival + deadline.
    sched::StreamConfig scfg;
    scfg.instances = 3;
    scfg.seed = 4;
    scfg.mode = sched::ArrivalMode::Closed;
    scfg.clients = 1;
    scfg.mix = {{tpcd::QueryId::Q12, 1}};

    sched::ResilienceConfig res;
    res.deadline = 1000000;

    harness::RunOptions opts;
    sched::StreamScheduler s(*wl_, sim::MachineConfig::baseline(), scfg,
                             opts, cache_, res);
    sched::StreamResult r = s.run();

    ASSERT_EQ(r.records.size(), 3u);
    for (const sched::InstanceRecord &rec : r.records) {
        EXPECT_EQ(rec.outcome, Outcome::Timeout);
        EXPECT_EQ(rec.deadline, rec.inst.arrival + res.deadline);
        EXPECT_EQ(rec.complete, rec.deadline)
            << "a timeout resolves at its deadline cycle";
        EXPECT_EQ(rec.attempts, 1u);
    }
    EXPECT_TRUE(r.resilienceEnabled);
    EXPECT_EQ(r.resilience.total.submitted, 3u);
    EXPECT_EQ(r.resilience.total.timeouts, 3u);
    EXPECT_EQ(r.resilience.total.goodput, 0u);
    EXPECT_EQ(r.latency.count, 0u) << "summaries cover goodput only";
    EXPECT_EQ(s.counters().timeouts, 3u);
    EXPECT_EQ(s.counters().completed, 0u);
    EXPECT_DOUBLE_EQ(r.throughputPerMcycle, 0.0);

    // A generous deadline changes nothing but the accounting fields.
    sched::ResilienceConfig loose;
    loose.deadline = 50000000;
    sched::StreamScheduler s2(*wl_, sim::MachineConfig::baseline(), scfg,
                              opts, cache_, loose);
    sched::StreamResult r2 = s2.run();
    EXPECT_EQ(r2.resilience.total.goodput, 3u);
    EXPECT_EQ(r2.latency.count, 3u);
}

TEST_F(ResilienceSim, CapacityZeroShedsWhatCannotDispatchImmediately)
{
    // One processor, four clients arriving at cycle 0: one dispatches,
    // the rest cannot wait anywhere (capacity 0) and are shed at once.
    sched::StreamConfig scfg;
    scfg.instances = 8;
    scfg.seed = 6;
    scfg.mode = sched::ArrivalMode::Closed;
    scfg.clients = 4;

    sched::ResilienceConfig res;
    res.queueCapacity = 0;

    harness::RunOptions opts;
    sim::MachineConfig cfg = sim::MachineConfig::baseline();
    cfg.nprocs = 1;
    sched::StreamScheduler s(*wl_, cfg, scfg, opts, cache_, res);
    sched::StreamResult r = s.run();

    const sched::ClassSlo &t = r.resilience.total;
    EXPECT_EQ(t.submitted, 8u);
    EXPECT_EQ(t.goodput + t.shedQueue, 8u)
        << "capacity 0 on one proc: every instance either runs or sheds";
    EXPECT_GT(t.shedQueue, 0u);
    EXPECT_GT(t.goodput, 0u);
    EXPECT_EQ(s.counters().queuePeak, 0u);
    for (const sched::InstanceRecord &rec : r.records) {
        if (rec.outcome != Outcome::ShedQueue)
            continue;
        EXPECT_EQ(rec.attempts, 0u) << "shed instances never dispatched";
        EXPECT_EQ(rec.service, 0u);
        EXPECT_EQ(rec.complete, rec.inst.arrival)
            << "capacity-0 shed resolves at arrival";
    }
}

TEST_F(ResilienceSim, BoundedQueueRespectsCapacityAndShedPolicy)
{
    sched::StreamConfig scfg;
    scfg.instances = 10;
    scfg.seed = 12;
    scfg.mode = sched::ArrivalMode::Closed;
    scfg.clients = 8; // heavy burst at cycle 0 onto one processor

    sched::ResilienceConfig res;
    res.queueCapacity = 2;
    res.shed = ShedPolicy::RejectByClass;

    harness::RunOptions opts;
    sim::MachineConfig cfg = sim::MachineConfig::baseline();
    cfg.nprocs = 1;
    sched::StreamScheduler s(*wl_, cfg, scfg, opts, cache_, res);
    sched::StreamResult r = s.run();

    EXPECT_LE(s.counters().queuePeak, 2u);
    const sched::ClassSlo &t = r.resilience.total;
    EXPECT_EQ(t.submitted, 10u);
    EXPECT_GT(t.shedQueue, 0u);
    EXPECT_EQ(t.goodput + t.shedQueue, 10u);
}

TEST_F(ResilienceSim, NodeFailureMigratesToSurvivingProcessor)
{
    // Frequent short outages: some instance is caught mid-service,
    // aborts, and re-dispatches (with backoff) on an in-service node.
    sched::StreamConfig scfg;
    scfg.instances = 8;
    scfg.seed = 42;
    scfg.mode = sched::ArrivalMode::Open;
    scfg.meanInterarrival = 400000;

    sched::ResilienceConfig res;
    res.nodeFailures = true;

    sim::FaultConfig fc = nodeFaultConfig(3, 1500000, 1000000);
    sim::FaultPlan plan(fc);
    harness::RunOptions opts;
    opts.faults = &plan;
    sched::StreamScheduler s(*wl_, sim::MachineConfig::baseline(), scfg,
                             opts, cache_, res);
    sched::StreamResult r = s.run();

    EXPECT_GT(s.counters().migrations, 0u)
        << "no instance was ever caught by an outage — retune the fault "
           "config";
    EXPECT_EQ(r.resilience.total.migrations, s.counters().migrations);
    bool saw_migrated_ok = false;
    for (const sched::InstanceRecord &rec : r.records) {
        if (rec.migrations == 0)
            continue;
        EXPECT_GT(rec.attempts, rec.migrations);
        if (rec.outcome == Outcome::Ok) {
            saw_migrated_ok = true;
            EXPECT_TRUE(rec.degraded)
                << "a migrated instance overlapped an outage by definition";
        }
    }
    EXPECT_TRUE(saw_migrated_ok)
        << "expected at least one migrated instance to still complete";
    // The fired outages the stream actually hit are logged on the plan.
    EXPECT_GT(plan.counters()
                  .byKind[static_cast<unsigned>(sim::FaultKind::NodeFailure)],
              0u);
    // Without a deadline nothing can time out; without a queue bound
    // nothing can shed; the migration budget was never exhausted here.
    EXPECT_EQ(r.resilience.total.goodput + r.resilience.total.abandoned,
              8u);
}

TEST_F(ResilienceSim, ResilientStreamIsEngineInvariant)
{
    // The full layer at once: deadlines, bounded queue, breaker, node
    // failures. Fresh per-run caches and fault plans so the *entire*
    // report document — cache stats and fired-outage log included — must
    // serialize byte-identically across engines.
    sched::StreamConfig scfg;
    scfg.instances = 10;
    scfg.seed = 17;
    scfg.mode = sched::ArrivalMode::Open;
    scfg.meanInterarrival = 250000;

    sched::ResilienceConfig res;
    res.deadline = 2200000;
    res.queueCapacity = 3;
    res.shed = ShedPolicy::DeadlineAware;
    res.nodeFailures = true;
    res.breakerThreshold = 0.5;
    res.breakerWindow = 2;
    res.breakerCooldown = 500000;

    const sim::FaultConfig fc = nodeFaultConfig(9, 2000000, 1200000);
    auto dump = [&](const sim::EngineConfig &engine) {
        sim::FaultPlan plan(fc);
        sched::TraceCache fresh;
        harness::RunOptions opts;
        opts.engine = engine;
        opts.faults = &plan;
        sched::StreamScheduler s(*wl_, sim::MachineConfig::baseline(),
                                 scfg, opts, &fresh, res);
        return toJson(s.run(), /*include_run_stats=*/true).dump();
    };

    const std::string seq = dump(sim::EngineConfig::seq());
    EXPECT_EQ(seq, dump(sim::EngineConfig::par(1)));
    EXPECT_EQ(seq, dump(sim::EngineConfig::par(3)));
}

TEST_F(ResilienceSim, RegistryExportsResilienceCounters)
{
    sched::StreamConfig scfg;
    scfg.instances = 3;
    scfg.seed = 4;
    scfg.mode = sched::ArrivalMode::Closed;
    scfg.clients = 1;
    scfg.mix = {{tpcd::QueryId::Q12, 1}};

    sched::ResilienceConfig res;
    res.deadline = 1000000;

    harness::RunOptions opts;
    sched::StreamScheduler s(*wl_, sim::MachineConfig::baseline(), scfg,
                             opts, cache_, res);
    s.run();

    obs::Registry reg;
    s.registerStats(reg);
    EXPECT_EQ(reg.counterValue("sched.instances"), 3u);
    EXPECT_EQ(reg.counterValue("sched.timeouts"), 3u);
    EXPECT_EQ(reg.counterValue("sched.goodput"), 0u);
    EXPECT_EQ(reg.counterValue("sched.migrations"), 0u);
    EXPECT_EQ(reg.counterValue("sched.shed.queue"), 0u);
    EXPECT_EQ(reg.counterValue("sched.breaker.trips"), 0u);
}

TEST_F(ResilienceSim, RetryStatsRegisterUnderHarnessPrefix)
{
    harness::RetryStats stats;
    stats.attempts = 4;
    stats.aborts = 5;
    obs::Registry reg;
    stats.registerStats(reg);
    EXPECT_EQ(reg.counterValue("harness.retry.attempts"), 4u);
    EXPECT_EQ(reg.counterValue("harness.retry.aborts"), 5u);
}

TEST_F(ResilienceSim, LegacyReportHasNoResilienceBlock)
{
    sched::StreamConfig scfg;
    scfg.instances = 2;
    scfg.seed = 2;
    scfg.mode = sched::ArrivalMode::Closed;
    scfg.clients = 2;
    harness::RunOptions opts;
    sched::StreamScheduler s(*wl_, sim::MachineConfig::baseline(), scfg,
                             opts, cache_);
    obs::Json j = toJson(s.run(), false);
    EXPECT_EQ(j.find("resilience"), nullptr);

    sched::ResilienceConfig res;
    res.deadline = 50000000;
    sched::StreamScheduler s2(*wl_, sim::MachineConfig::baseline(), scfg,
                              opts, cache_, res);
    obs::Json j2 = toJson(s2.run(), false);
    ASSERT_NE(j2.find("resilience"), nullptr);
    EXPECT_NE(j2.find("resilience")->find("slo"), nullptr);
}

/** Stream config + doomed fault plan: every processor fails permanently
 * early while arrivals keep coming. */
sched::StreamResult
runDoomedStream(harness::Workload &wl, sched::TraceCache *cache)
{
    sched::StreamConfig scfg;
    scfg.instances = 8;
    scfg.seed = 1;
    scfg.mode = sched::ArrivalMode::Open;
    scfg.meanInterarrival = 100000;

    sched::ResilienceConfig res;
    res.nodeFailures = true;

    const sim::FaultConfig fc = nodeFaultConfig(11, 150000, /*down=*/0);
    sim::FaultPlan plan(fc);
    harness::RunOptions opts;
    opts.faults = &plan;
    sim::MachineConfig cfg = sim::MachineConfig::baseline();
    cfg.nprocs = 2;
    sched::StreamScheduler s(wl, cfg, scfg, opts, cache, res);
    return s.run();
}

TEST_F(ResilienceSim, AllProcessorsPermanentlyDeadFailsCleanly)
{
    try {
        runDoomedStream(*wl_, cache_);
        FAIL() << "expected sim::SimError";
    } catch (const sim::SimError &e) {
        EXPECT_NE(std::string(e.what()).find("every processor failed"),
                  std::string::npos);
    }
}

TEST_F(ResilienceSim, GuardedMainTurnsStalledStreamIntoExitThree)
{
    // The bench-level contract: the stalled stream surfaces as error
    // JSON + exit 3 (harness::kErrorExitCode), never a hang or abort.
    char arg0[] = "resilience_test";
    char *argv[] = {arg0, nullptr};
    const int rc = harness::guardedMain(
        "resilience_test", 1, argv, [&](int, char **) {
            runDoomedStream(*wl_, cache_);
            return 0;
        });
    EXPECT_EQ(rc, harness::kErrorExitCode);
}

} // namespace
