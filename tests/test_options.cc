/**
 * @file
 * Regression tests for the bench flag layer: BenchOptions::parse must
 * never silently accept an argument. Unknown flags, flags outside the
 * binary's declared subset, and malformed values all exit(2) with a
 * diagnostic; --help exits(0). (An earlier version of the harness
 * ignored anything it did not recognize, so `--engine=par` typos ran the
 * default configuration without a word.)
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/options.hh"
#include "sim/error.hh"
#include "sim/spec.hh"

namespace {

using namespace dss;
using harness::BenchOptions;

/** argv helper: parse() wants mutable char* in the usual main() shape. */
struct Argv
{
    explicit Argv(std::vector<std::string> args) : strings(std::move(args))
    {
        ptrs.push_back(const_cast<char *>("bench"));
        for (std::string &s : strings)
            ptrs.push_back(s.data());
    }

    int argc() const { return static_cast<int>(ptrs.size()); }
    char **argv() { return ptrs.data(); }

    std::vector<std::string> strings;
    std::vector<char *> ptrs;
};

BenchOptions
parseArgs(std::vector<std::string> args, unsigned flags = BenchOptions::kAll)
{
    Argv a(std::move(args));
    return BenchOptions::parse(a.argc(), a.argv(), "bench", flags);
}

TEST(BenchOptionsDeath, UnknownFlagIsFatal)
{
    EXPECT_EXIT(parseArgs({"--bogus"}), testing::ExitedWithCode(2),
                "unknown option '--bogus'");
}

TEST(BenchOptionsDeath, MisspelledFlagIsFatal)
{
    // The regression that motivated this file: a typo used to fall
    // through silently and the bench ran with defaults.
    EXPECT_EXIT(parseArgs({"--engin", "par"}), testing::ExitedWithCode(2),
                "unknown option '--engin'");
}

TEST(BenchOptionsDeath, PositionalArgumentIsFatal)
{
    EXPECT_EXIT(parseArgs({"par"}), testing::ExitedWithCode(2),
                "unknown option 'par'");
}

TEST(BenchOptionsDeath, FlagOutsideDeclaredSubsetIsFatal)
{
    EXPECT_EXIT(parseArgs({"--json", "out.json"}, BenchOptions::kEngine),
                testing::ExitedWithCode(2),
                "not supported by this bench");
}

TEST(BenchOptionsDeath, MissingValueIsFatal)
{
    EXPECT_EXIT(parseArgs({"--engine"}), testing::ExitedWithCode(2),
                "requires a value");
}

TEST(BenchOptionsDeath, BadEngineNameIsFatal)
{
    EXPECT_EXIT(parseArgs({"--engine", "parr"}),
                testing::ExitedWithCode(2), "unknown --engine 'parr'");
}

TEST(BenchOptionsDeath, BadWindowValueIsFatal)
{
    EXPECT_EXIT(parseArgs({"--window", "0"}), testing::ExitedWithCode(2),
                "positive count");
    EXPECT_EXIT(parseArgs({"--window", "8k"}), testing::ExitedWithCode(2),
                "positive count");
}

TEST(BenchOptionsDeath, BadScaleIsFatal)
{
    EXPECT_EXIT(parseArgs({"--scale", "huge"}), testing::ExitedWithCode(2),
                "unknown --scale 'huge'");
}

TEST(BenchOptionsDeath, HelpExitsZero)
{
    // (usage goes to stdout, which EXPECT_EXIT does not capture — the
    // exit code is the assertion here.)
    EXPECT_EXIT(parseArgs({"--help"}), testing::ExitedWithCode(0), "");
}

TEST(BenchOptions, EngineFlagsParse)
{
    BenchOptions o =
        parseArgs({"--engine", "par", "--threads", "3", "--window", "512"});
    EXPECT_EQ(o.engine.kind, sim::EngineKind::Par);
    EXPECT_EQ(o.engine.threads, 3u);
    EXPECT_EQ(o.engine.windowCycles, 512u);
}

TEST(BenchOptions, DefaultsToSequentialEngine)
{
    BenchOptions o = parseArgs({});
    EXPECT_EQ(o.engine.kind, sim::EngineKind::Seq);
    EXPECT_EQ(o.scale, "paper");
}

TEST(BenchOptions, CheckAndFaultFlagsParse)
{
    BenchOptions o = parseArgs(
        {"--check", "--fault-seed", "42", "--fault-rate", "0.01"});
    EXPECT_TRUE(o.check);
    EXPECT_EQ(o.faultSeed, 42u);
    EXPECT_DOUBLE_EQ(o.faultRate, 0.01);

    sim::FaultConfig fc = o.faultConfig();
    EXPECT_EQ(fc.seed, 42u);
    EXPECT_DOUBLE_EQ(fc.rate, 0.01);
}

TEST(BenchOptions, RobustnessFlagsDefaultOff)
{
    BenchOptions o = parseArgs({});
    EXPECT_FALSE(o.check);
    EXPECT_EQ(o.faultSeed, 0u);
    EXPECT_DOUBLE_EQ(o.faultRate, 0.0);
}

TEST(BenchOptionsDeath, MalformedFaultRateIsFatal)
{
    EXPECT_EXIT(parseArgs({"--fault-rate", "lots"}),
                testing::ExitedWithCode(2),
                "--fault-rate needs a probability");
    EXPECT_EXIT(parseArgs({"--fault-rate", "1.5"}),
                testing::ExitedWithCode(2),
                "--fault-rate needs a probability");
    EXPECT_EXIT(parseArgs({"--fault-rate", "-0.1"}),
                testing::ExitedWithCode(2),
                "--fault-rate needs a probability");
}

TEST(BenchOptionsDeath, MalformedFaultSeedIsFatal)
{
    EXPECT_EXIT(parseArgs({"--fault-seed", "12x"}),
                testing::ExitedWithCode(2),
                "--fault-seed needs an integer");
}

TEST(BenchOptions, PlacementFlagsParse)
{
    BenchOptions o = parseArgs({"--placement", "class-affinity:2",
                                "--page-profile", "hist.json"});
    EXPECT_EQ(o.placement.kind, sim::PlacementKind::ClassAffinity);
    EXPECT_EQ(o.placement.arg, "2");
    EXPECT_EQ(o.pageProfilePath, "hist.json");
}

TEST(BenchOptions, PlacementDefaultsToInterleave)
{
    BenchOptions o = parseArgs({});
    EXPECT_EQ(o.placement.kind, sim::PlacementKind::Interleave);
    EXPECT_TRUE(o.pageProfilePath.empty());
}

TEST(BenchOptionsDeath, UnknownPlacementPolicyIsFatal)
{
    EXPECT_EXIT(parseArgs({"--placement", "round-robin"}),
                testing::ExitedWithCode(2),
                "unknown --placement 'round-robin'");
    // profile without a histogram path is malformed, not a default.
    EXPECT_EXIT(parseArgs({"--placement", "profile"}),
                testing::ExitedWithCode(2), "unknown --placement");
}

TEST(BenchOptionsDeath, PlacementFlagsOutsideDeclaredSubsetAreFatal)
{
    EXPECT_EXIT(parseArgs({"--placement", "interleave"},
                          BenchOptions::kEngine),
                testing::ExitedWithCode(2),
                "option '--placement' is not supported");
    EXPECT_EXIT(parseArgs({"--page-profile", "h.json"},
                          BenchOptions::kEngine),
                testing::ExitedWithCode(2),
                "option '--page-profile' is not supported");
}

TEST(BenchOptions, MemprofFlagParses)
{
    BenchOptions off = parseArgs({});
    EXPECT_FALSE(off.memprof);
    EXPECT_EQ(off.memprofTopN, 20u);

    BenchOptions on = parseArgs({"--memprof"});
    EXPECT_TRUE(on.memprof);
    EXPECT_EQ(on.memprofTopN, 20u);

    BenchOptions topn = parseArgs({"--memprof=7"});
    EXPECT_TRUE(topn.memprof);
    EXPECT_EQ(topn.memprofTopN, 7u);
}

TEST(BenchOptionsDeath, MalformedMemprofCountIsFatal)
{
    EXPECT_EXIT(parseArgs({"--memprof=0"}), testing::ExitedWithCode(2),
                "--memprof=N needs a positive count");
    EXPECT_EXIT(parseArgs({"--memprof=lots"}), testing::ExitedWithCode(2),
                "--memprof=N needs a positive count");
    EXPECT_EXIT(parseArgs({"--memprof="}), testing::ExitedWithCode(2),
                "--memprof=N needs a positive count");
}

TEST(BenchOptionsDeath, MemprofOutsideDeclaredSubsetIsFatal)
{
    EXPECT_EXIT(parseArgs({"--memprof"}, BenchOptions::kEngine),
                testing::ExitedWithCode(2),
                "option '--memprof' is not supported");
}

TEST(BenchOptionsDeath, RobustnessFlagsOutsideDeclaredSubsetAreFatal)
{
    EXPECT_EXIT(parseArgs({"--check"}, BenchOptions::kEngine),
                testing::ExitedWithCode(2),
                "option '--check' is not supported");
    EXPECT_EXIT(parseArgs({"--fault-rate", "0.1"}, BenchOptions::kEngine),
                testing::ExitedWithCode(2),
                "option '--fault-rate' is not supported");
}

TEST(BenchOptions, StreamFlagsParse)
{
    BenchOptions o = parseArgs(
        {"--stream", "24", "--stream-seed", "7", "--stream-policy",
         "shortest", "--trace-cache", "off"},
        BenchOptions::kAll | BenchOptions::kStream);
    EXPECT_EQ(o.streamInstances, 24u);
    EXPECT_EQ(o.streamSeed, 7u);
    EXPECT_EQ(o.streamPolicy, "shortest");
    EXPECT_FALSE(o.traceCache);
}

TEST(BenchOptions, StreamFlagsDefault)
{
    BenchOptions o = parseArgs({}, BenchOptions::kAll | BenchOptions::kStream);
    EXPECT_EQ(o.streamInstances, 0u) << "0 = the bench's own default";
    EXPECT_EQ(o.streamSeed, 42u);
    EXPECT_EQ(o.streamPolicy, "fifo");
    EXPECT_TRUE(o.traceCache);
}

TEST(BenchOptionsDeath, MalformedStreamFlagsAreFatal)
{
    const unsigned f = BenchOptions::kAll | BenchOptions::kStream;
    EXPECT_EXIT(parseArgs({"--stream", "0"}, f), testing::ExitedWithCode(2),
                "--stream");
    EXPECT_EXIT(parseArgs({"--stream-seed", "9x"}, f),
                testing::ExitedWithCode(2),
                "--stream-seed needs an integer");
    EXPECT_EXIT(parseArgs({"--stream-policy", "sjf"}, f),
                testing::ExitedWithCode(2),
                "unknown --stream-policy 'sjf'");
    EXPECT_EXIT(parseArgs({"--trace-cache", "maybe"}, f),
                testing::ExitedWithCode(2), "--trace-cache needs on|off");
}

TEST(BenchOptionsDeath, StreamFlagsOutsideKAllAreFatal)
{
    // kStream is deliberately NOT part of kAll: the single-shot figure
    // binaries must keep rejecting the stream flags.
    EXPECT_EXIT(parseArgs({"--stream", "8"}), testing::ExitedWithCode(2),
                "option '--stream' is not supported");
    EXPECT_EXIT(parseArgs({"--trace-cache", "on"}),
                testing::ExitedWithCode(2),
                "option '--trace-cache' is not supported");
}

TEST(BenchOptions, TraceCacheBoundParses)
{
    const unsigned f = BenchOptions::kAll | BenchOptions::kStream;
    BenchOptions o = parseArgs({"--trace-cache", "16"}, f);
    EXPECT_TRUE(o.traceCache);
    EXPECT_EQ(o.traceCacheCapacity, 16u);

    BenchOptions unbounded = parseArgs({"--trace-cache", "on"}, f);
    EXPECT_TRUE(unbounded.traceCache);
    EXPECT_EQ(unbounded.traceCacheCapacity, 0u) << "0 = unbounded";
}

TEST(BenchOptionsDeath, MalformedTraceCacheBoundIsFatal)
{
    const unsigned f = BenchOptions::kAll | BenchOptions::kStream;
    EXPECT_EXIT(parseArgs({"--trace-cache", "0"}, f),
                testing::ExitedWithCode(2),
                "--trace-cache needs on\\|off or a positive entry bound");
    EXPECT_EXIT(parseArgs({"--trace-cache", "16x"}, f),
                testing::ExitedWithCode(2),
                "--trace-cache needs on\\|off or a positive entry bound");
}

TEST(BenchOptions, ResilienceFlagsParse)
{
    const unsigned f = BenchOptions::kAll | BenchOptions::kStream |
                       BenchOptions::kResilience;
    BenchOptions o = parseArgs({"--deadline", "2500000", "--queue-cap",
                                "4", "--shed", "deadline", "--breaker",
                                "0.5"},
                               f);
    EXPECT_EQ(o.deadlineCycles, 2500000u);
    EXPECT_EQ(o.queueCapacity, 4u);
    EXPECT_EQ(o.shedPolicy, "deadline");
    EXPECT_DOUBLE_EQ(o.breakerThreshold, 0.5);

    // Capacity 0 is a real value (shed whatever cannot start at once).
    EXPECT_EQ(parseArgs({"--queue-cap", "0"}, f).queueCapacity, 0u);
}

TEST(BenchOptions, ResilienceFlagsDefaultOff)
{
    const unsigned f = BenchOptions::kAll | BenchOptions::kStream |
                       BenchOptions::kResilience;
    BenchOptions o = parseArgs({}, f);
    EXPECT_EQ(o.deadlineCycles, 0u);
    EXPECT_EQ(o.queueCapacity, ~std::uint64_t{0}) << "unbounded sentinel";
    EXPECT_EQ(o.shedPolicy, "newest");
    EXPECT_DOUBLE_EQ(o.breakerThreshold, 0.0);
}

TEST(BenchOptionsDeath, MalformedResilienceFlagsAreFatal)
{
    const unsigned f = BenchOptions::kAll | BenchOptions::kStream |
                       BenchOptions::kResilience;
    EXPECT_EXIT(parseArgs({"--deadline", "0"}, f),
                testing::ExitedWithCode(2), "--deadline");
    EXPECT_EXIT(parseArgs({"--queue-cap", "4x"}, f),
                testing::ExitedWithCode(2), "--queue-cap needs a count");
    EXPECT_EXIT(parseArgs({"--shed", "oldest"}, f),
                testing::ExitedWithCode(2), "unknown --shed 'oldest'");
    EXPECT_EXIT(parseArgs({"--breaker", "0"}, f),
                testing::ExitedWithCode(2),
                "--breaker needs a rate in \\(0,1\\]");
    EXPECT_EXIT(parseArgs({"--breaker", "1.5"}, f),
                testing::ExitedWithCode(2),
                "--breaker needs a rate in \\(0,1\\]");
}

TEST(BenchOptions, MachineFlagParses)
{
    BenchOptions o = parseArgs({"--machine", "modern"},
                               BenchOptions::kAll | BenchOptions::kMachine);
    EXPECT_EQ(o.machine, "modern");
}

TEST(BenchOptions, MachineDefaultsToPaper1997)
{
    BenchOptions o = parseArgs({}, BenchOptions::kAll |
                                       BenchOptions::kMachine);
    EXPECT_EQ(o.machine, "paper1997");
}

TEST(BenchOptionsDeath, MachineListExitsZero)
{
    // The preset list goes to stdout (the matcher only sees stderr).
    EXPECT_EXIT(parseArgs({"--machine", "list"},
                          BenchOptions::kAll | BenchOptions::kMachine),
                testing::ExitedWithCode(0), "");
}

TEST(BenchOptionsDeath, MachineOutsideDeclaredSubsetIsFatal)
{
    // kMachine is not part of kAll: only harness::benchMain ORs it in.
    EXPECT_EXIT(parseArgs({"--machine", "modern"}),
                testing::ExitedWithCode(2),
                "option '--machine' is not supported");
}

/** The validation bugfix: geometry mistakes that used to silently mangle
 * set indices now throw a structured SimError naming the field. */
TEST(MachineValidation, RejectsNonPowerOfTwoCacheSize)
{
    sim::MachineConfig cfg = sim::MachineConfig::baseline();
    cfg.l2().sizeBytes = 100 * 1000; // not a power of two
    EXPECT_THROW(cfg.validate(), sim::SimError);
    EXPECT_THROW(sim::Machine m(cfg), sim::SimError);
}

TEST(MachineValidation, RejectsLineLargerThanCache)
{
    sim::MachineConfig cfg = sim::MachineConfig::baseline();
    cfg.l1().sizeBytes = 32;
    cfg.l1().lineBytes = 64; // line exceeds capacity
    EXPECT_THROW(cfg.validate(), sim::SimError);
}

TEST(MachineValidation, RejectsNonPowerOfTwoLine)
{
    EXPECT_THROW(sim::MachineConfig::baseline().withLineSize(96),
                 sim::SimError);
}

TEST(MachineValidation, RejectsUndersizedCacheSizes)
{
    // 16-byte L1 cannot hold even one 32 B line.
    EXPECT_THROW(sim::MachineConfig::baseline().withCacheSizes(16, 1 << 20),
                 sim::SimError);
}

TEST(MachineValidation, RejectsNonMonotoneLatencies)
{
    sim::MachineConfig cfg = sim::MachineConfig::baseline();
    cfg.lat.localMem = 300;
    cfg.lat.remote2Hop = 249; // 2-hop below local memory
    EXPECT_THROW(cfg.validate(), sim::SimError);
}

TEST(MachineValidation, ErrorCarriesStructuredDump)
{
    sim::MachineConfig cfg = sim::MachineConfig::baseline();
    cfg.l2().sizeBytes = 3000;
    try {
        cfg.validate();
        FAIL() << "expected SimError";
    } catch (const sim::SimError &e) {
        const obs::Json &d = e.dump();
        ASSERT_NE(d.find("field"), nullptr);
        EXPECT_EQ(d.find("field")->asString(), "l2.sizeBytes");
        EXPECT_NE(std::string(e.what()).find("power of two"),
                  std::string::npos);
    }
}

TEST(BenchOptionsDeath, ResilienceFlagsOutsideDeclaredSubsetAreFatal)
{
    // kResilience is not part of kAll: single-shot figure binaries keep
    // rejecting the resilience flags.
    EXPECT_EXIT(parseArgs({"--deadline", "1000"}),
                testing::ExitedWithCode(2),
                "option '--deadline' is not supported");
    EXPECT_EXIT(parseArgs({"--queue-cap", "4"}),
                testing::ExitedWithCode(2),
                "option '--queue-cap' is not supported");
    EXPECT_EXIT(parseArgs({"--shed", "newest"}),
                testing::ExitedWithCode(2),
                "option '--shed' is not supported");
    EXPECT_EXIT(parseArgs({"--breaker", "0.5"}),
                testing::ExitedWithCode(2),
                "option '--breaker' is not supported");
}

TEST(BenchOptions, VerifyFlagsParse)
{
    BenchOptions o = parseArgs({"--verify-procs", "3", "--verify-lines",
                                "2", "--verify-wb", "2", "--verify-depth",
                                "5", "--verify-mutant", "all"},
                               BenchOptions::kVerify);
    EXPECT_EQ(o.verifyProcs, 3u);
    EXPECT_EQ(o.verifyLines, 2u);
    EXPECT_EQ(o.verifyWb, 2u);
    EXPECT_EQ(o.verifyDepth, 5u);
    EXPECT_EQ(o.verifyMutant, -1);
    o = parseArgs({"--verify-mutant", "2"}, BenchOptions::kVerify);
    EXPECT_EQ(o.verifyMutant, 2);
}

TEST(BenchOptions, VerifyFlagsDefault)
{
    BenchOptions o = parseArgs({}, BenchOptions::kVerify);
    EXPECT_EQ(o.verifyProcs, 2u);
    EXPECT_EQ(o.verifyLines, 2u);
    EXPECT_EQ(o.verifyWb, 1u);
    EXPECT_EQ(o.verifyDepth, 0u);
    EXPECT_EQ(o.verifyMutant, 0);
}

TEST(BenchOptionsDeath, VerifyFlagsOutsideKAllAreFatal)
{
    // kVerify is not part of kAll: only the model-checker bench opts in.
    EXPECT_EXIT(parseArgs({"--verify-procs", "2"}),
                testing::ExitedWithCode(2),
                "option '--verify-procs' is not supported");
    EXPECT_EXIT(parseArgs({"--verify-mutant", "1"}),
                testing::ExitedWithCode(2),
                "option '--verify-mutant' is not supported");
}

TEST(BenchOptionsDeath, MalformedVerifyMutantIsFatal)
{
    EXPECT_EXIT(parseArgs({"--verify-mutant", "9"}, BenchOptions::kVerify),
                testing::ExitedWithCode(2), "needs 1-4 or 'all'");
    EXPECT_EXIT(parseArgs({"--verify-mutant", "x"}, BenchOptions::kVerify),
                testing::ExitedWithCode(2), "needs 1-4 or 'all'");
}

} // namespace
