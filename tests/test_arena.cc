/**
 * @file
 * Unit tests for MemArena and AddressSpace (tagged simulated memory).
 */

#include <gtest/gtest.h>

#include "sim/arena.hh"

namespace {

using namespace dss::sim;

TEST(MemArena, AllocReturnsAlignedAddressesInsideArena)
{
    MemArena a("t", 0x1000, 4096, DataClass::MetaOther);
    Addr x = a.alloc(100, DataClass::Data);
    EXPECT_EQ(x % MemArena::kGranule, 0u);
    EXPECT_TRUE(a.contains(x));
    EXPECT_TRUE(a.contains(x + 99));
}

TEST(MemArena, AllocRespectsCustomAlignment)
{
    MemArena a("t", 0x1000, 1 << 20, DataClass::MetaOther);
    a.alloc(10, DataClass::Data);
    Addr x = a.alloc(100, DataClass::Data, 8192);
    EXPECT_EQ(x % 8192, 0u);
}

TEST(MemArena, AllocationsDoNotOverlap)
{
    MemArena a("t", 0x1000, 4096, DataClass::MetaOther);
    Addr x = a.alloc(64, DataClass::Data);
    Addr y = a.alloc(64, DataClass::Index);
    EXPECT_GE(y, x + 64);
}

TEST(MemArena, OutOfCapacityThrows)
{
    MemArena a("t", 0x1000, 256, DataClass::MetaOther);
    a.alloc(128, DataClass::Data);
    EXPECT_THROW(a.alloc(256, DataClass::Data), std::runtime_error);
}

TEST(MemArena, ClassTagsFollowAllocations)
{
    MemArena a("t", 0x1000, 4096, DataClass::MetaOther);
    Addr d = a.alloc(64, DataClass::Data);
    Addr i = a.alloc(64, DataClass::Index);
    EXPECT_EQ(a.classOf(d), DataClass::Data);
    EXPECT_EQ(a.classOf(d + 63), DataClass::Data);
    EXPECT_EQ(a.classOf(i), DataClass::Index);
}

TEST(MemArena, SetClassRetagsRange)
{
    MemArena a("t", 0x1000, 4096, DataClass::MetaOther);
    Addr d = a.alloc(128, DataClass::Data);
    a.setClass(d + 64, 64, DataClass::Index);
    EXPECT_EQ(a.classOf(d), DataClass::Data);
    EXPECT_EQ(a.classOf(d + 64), DataClass::Index);
}

TEST(MemArena, ClassOfOutsideRangeReturnsDefault)
{
    MemArena a("t", 0x1000, 4096, DataClass::Priv);
    EXPECT_EQ(a.classOf(0x10), DataClass::Priv);
}

TEST(MemArena, HostBackingIsReadableAndWritable)
{
    MemArena a("t", 0x1000, 4096, DataClass::MetaOther);
    Addr x = a.alloc(8, DataClass::Data);
    *reinterpret_cast<std::uint64_t *>(a.host(x)) = 0xdeadbeef;
    EXPECT_EQ(*reinterpret_cast<std::uint64_t *>(a.host(x)), 0xdeadbeefu);
}

TEST(MemArena, RewindReleasesAndReusesAddresses)
{
    MemArena a("t", 0x1000, 4096, DataClass::MetaOther);
    std::size_t mark = a.used();
    Addr x = a.alloc(64, DataClass::Data);
    a.rewind(mark);
    Addr y = a.alloc(64, DataClass::Data);
    EXPECT_EQ(x, y);
}

TEST(AddressSpace, SharedAndPrivateAreDisjoint)
{
    AddressSpace as(4, 1 << 20, 1 << 20);
    Addr s = as.shared().alloc(64, DataClass::Data);
    Addr p = as.priv(0).alloc(64, DataClass::Priv);
    EXPECT_TRUE(AddressSpace::isShared(s));
    EXPECT_FALSE(AddressSpace::isShared(p));
}

TEST(AddressSpace, ArenaOfResolvesEveryArena)
{
    AddressSpace as(2, 1 << 20, 1 << 20);
    Addr s = as.shared().alloc(64, DataClass::Data);
    Addr p0 = as.priv(0).alloc(64, DataClass::Priv);
    Addr p1 = as.priv(1).alloc(64, DataClass::Priv);
    EXPECT_EQ(as.arenaOf(s), &as.shared());
    EXPECT_EQ(as.arenaOf(p0), &as.priv(0));
    EXPECT_EQ(as.arenaOf(p1), &as.priv(1));
    EXPECT_EQ(as.arenaOf(0x42), nullptr);
}

TEST(AddressSpace, OwnerOfPrivateAddresses)
{
    AddressSpace as(4, 1 << 20, 1 << 20);
    Addr p2 = as.priv(2).alloc(64, DataClass::Priv);
    EXPECT_EQ(as.ownerOf(p2), 2u);
    Addr s = as.shared().alloc(64, DataClass::Data);
    EXPECT_EQ(as.ownerOf(s), as.nprocs());
}

TEST(AddressSpace, ClassOfDispatchesToOwningArena)
{
    AddressSpace as(2, 1 << 20, 1 << 20);
    Addr s = as.shared().alloc(64, DataClass::Index);
    Addr p = as.priv(1).alloc(64, DataClass::Priv);
    EXPECT_EQ(as.classOf(s), DataClass::Index);
    EXPECT_EQ(as.classOf(p), DataClass::Priv);
}

TEST(DataClassTaxonomy, GroupingMatchesPaperFigures)
{
    EXPECT_EQ(groupOf(DataClass::Priv), ClassGroup::Priv);
    EXPECT_EQ(groupOf(DataClass::Data), ClassGroup::Data);
    EXPECT_EQ(groupOf(DataClass::Index), ClassGroup::Index);
    for (DataClass c : {DataClass::BufDesc, DataClass::BufLook,
                        DataClass::LockHash, DataClass::XidHash,
                        DataClass::LockSLock, DataClass::MetaOther}) {
        EXPECT_EQ(groupOf(c), ClassGroup::Metadata);
        EXPECT_TRUE(isMetadataClass(c));
        EXPECT_TRUE(isSharedClass(c));
    }
    EXPECT_FALSE(isSharedClass(DataClass::Priv));
    EXPECT_FALSE(isMetadataClass(DataClass::Data));
}

TEST(DataClassTaxonomy, NamesAreStable)
{
    EXPECT_EQ(dataClassName(DataClass::LockSLock), "LockSLock");
    EXPECT_EQ(classGroupName(ClassGroup::Metadata), "Metadata");
}

} // namespace
