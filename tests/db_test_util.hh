/**
 * @file
 * Shared fixtures for DB-layer tests: an address space with a recording
 * TracedMemory, and a small hand-built catalog.
 */

#ifndef DSS_TESTS_DB_TEST_UTIL_HH
#define DSS_TESTS_DB_TEST_UTIL_HH

#include <memory>

#include "db/bufmgr.hh"
#include "db/catalog.hh"
#include "db/exec.hh"
#include "db/lockmgr.hh"
#include "db/mem.hh"

namespace dss {
namespace test {

/** One simulated process over a fresh address space, trace recorded. */
struct MemFixture
{
    sim::AddressSpace space{2, 16 << 20, 16 << 20};
    sim::TraceStream stream;
    db::TracedMemory mem{space, 0, stream};

    /** Count trace events of one op. */
    std::size_t
    countOps(sim::Op op) const
    {
        std::size_t n = 0;
        for (const sim::TraceEntry &e : stream.entries())
            if (e.op == op)
                ++n;
        return n;
    }

    /** Count trace events of one op and class. */
    std::size_t
    countOps(sim::Op op, sim::DataClass cls) const
    {
        std::size_t n = 0;
        for (const sim::TraceEntry &e : stream.entries())
            if (e.op == op && e.cls == cls)
                ++n;
        return n;
    }
};

/** A catalog with one small "t" table: {k Int32, v Double, s Char(8)}. */
struct CatalogFixture : MemFixture
{
    db::BufferManager bufmgr{mem, 256};
    db::LockManager lockmgr{mem, 64, 256};
    db::Catalog catalog{bufmgr, lockmgr};
    db::RelId table = 0;

    CatalogFixture()
    {
        db::Schema s;
        s.add("k", db::AttrType::Int32)
            .add("v", db::AttrType::Double)
            .add("s", db::AttrType::Char, 8);
        table = catalog.createTable(mem, "t", s);
    }

    /** Insert (k, v, s) rows k = 0..n-1, v = k * 1.5, s = "r<k%10>". */
    void
    fill(int n)
    {
        for (int k = 0; k < n; ++k) {
            catalog.insert(mem, table,
                           {db::Datum{static_cast<std::int64_t>(k)},
                            db::Datum{k * 1.5},
                            db::Datum{"r" + std::to_string(k % 10)}});
        }
    }

    db::PrivateHeap
    heap()
    {
        return db::PrivateHeap(space, 0);
    }
};

} // namespace test
} // namespace dss

#endif // DSS_TESTS_DB_TEST_UTIL_HH
