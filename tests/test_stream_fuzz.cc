/**
 * @file
 * Stream fuzz layer: 50 seeded random stream configurations (query
 * mixes, arrival disciplines, client populations, dispatch policies),
 * each asserting the two differential properties the scheduler's
 * determinism argument rests on:
 *
 *  1. seq/par equality — the full stream report (per-instance SimStats
 *     included) is bit-identical between the sequential engine and the
 *     parallel engine at a seed-chosen host thread count;
 *  2. invariant cleanliness — replaying the whole stream under the
 *     coherence invariant checker reports zero violations.
 *
 * One tiny workload and one trace cache are shared across all seeds
 * (captures are pure; test_sched.cc asserts that), which keeps the 50
 * iterations affordable: most instances re-use cached captures.
 */

#include <string>

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "harness/workload.hh"
#include "sched/scheduler.hh"
#include "sim/check.hh"

namespace {

using namespace dss;

class StreamFuzz : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        wl_ = new harness::Workload(tpcd::ScaleConfig::tiny(), 4);
        cache_ = new sched::TraceCache;
    }

    static void TearDownTestSuite()
    {
        delete cache_;
        cache_ = nullptr;
        delete wl_;
        wl_ = nullptr;
    }

    static harness::Workload *wl_;
    static sched::TraceCache *cache_;
};

harness::Workload *StreamFuzz::wl_ = nullptr;
sched::TraceCache *StreamFuzz::cache_ = nullptr;

/** A random-but-deterministic stream configuration for one fuzz seed. */
sched::StreamConfig
fuzzConfig(std::uint64_t seed)
{
    std::uint64_t state = seed * 0x9E3779B97F4A7C15ull + 1;
    auto draw = [&state] { return sched::splitmix64(state); };

    sched::StreamConfig cfg;
    cfg.seed = seed;
    cfg.instances = 3 + draw() % 4; // 3..6
    cfg.policy = (draw() & 1) ? sched::Policy::Fifo
                              : sched::Policy::ShortestClass;
    cfg.paramVariants = 1 + draw() % 3;
    if (draw() & 1) {
        cfg.mode = sched::ArrivalMode::Closed;
        cfg.clients = 1 + draw() % 5;
    } else {
        cfg.mode = sched::ArrivalMode::Open;
        cfg.meanInterarrival = 100000 + draw() % 900000;
    }
    // Random non-empty submix of the three traced queries, with random
    // weights.
    cfg.mix.clear();
    const tpcd::QueryId pool[] = {tpcd::QueryId::Q3, tpcd::QueryId::Q6,
                                  tpcd::QueryId::Q12};
    unsigned members = draw() % 8;
    for (unsigned i = 0; i < 3; ++i)
        if (members & (1u << i))
            cfg.mix.push_back({pool[i], 1 + unsigned(draw() % 3)});
    if (cfg.mix.empty())
        cfg.mix.push_back({pool[draw() % 3], 1});
    return cfg;
}

TEST_F(StreamFuzz, FiftySeedsDifferentialAndChecked)
{
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        SCOPED_TRACE("fuzz seed " + std::to_string(seed));
        const sched::StreamConfig cfg = fuzzConfig(seed);
        const unsigned threads = 1 + unsigned(seed % 4);

        harness::RunOptions seq_opts;
        seq_opts.engine = sim::EngineConfig::seq();
        sched::StreamScheduler seq_sched(
            *wl_, sim::MachineConfig::baseline(), cfg, seq_opts, cache_);
        obs::Json seq_json = toJson(seq_sched.run(), true);

        sim::InvariantChecker checker;
        harness::RunOptions par_opts;
        par_opts.engine = sim::EngineConfig::par(threads);
        par_opts.checker = &checker;
        sched::StreamScheduler par_sched(
            *wl_, sim::MachineConfig::baseline(), cfg, par_opts, cache_);
        obs::Json par_json = toJson(par_sched.run(), true);

        // The shared cache's hit/miss accounting differs between the two
        // replays by design; every simulated number must not.
        ASSERT_EQ(seq_json["records"].dump(), par_json["records"].dump())
            << "stream diverged between engines (par threads=" << threads
            << ")";
        ASSERT_EQ(seq_json["summary"].dump(), par_json["summary"].dump());
        ASSERT_EQ(checker.totalViolations(), 0u)
            << "invariant violations in checked par replay";
    }
}

} // namespace
