/**
 * @file
 * Stream fuzz layer: 50 seeded random stream configurations (query
 * mixes, arrival disciplines, client populations, dispatch policies),
 * each asserting the two differential properties the scheduler's
 * determinism argument rests on:
 *
 *  1. seq/par equality — the full stream report (per-instance SimStats
 *     included) is bit-identical between the sequential engine and the
 *     parallel engine at a seed-chosen host thread count;
 *  2. invariant cleanliness — replaying the whole stream under the
 *     coherence invariant checker reports zero violations.
 *
 * One tiny workload and one trace cache are shared across all seeds
 * (captures are pure; test_sched.cc asserts that), which keeps the 50
 * iterations affordable: most instances re-use cached captures.
 *
 * The second fifty-seed pass turns the resilience layer on — random
 * deadlines, queue bounds, shed policies, breaker thresholds and a
 * NodeFailure-only fault plan per seed — and tightens the differential
 * property to the FULL report document: with one cache per engine both
 * replays see identical fetch sequences, so even the cache and fired-
 * outage accounting must serialize byte-identically.
 */

#include <string>

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "harness/workload.hh"
#include "sched/resilience.hh"
#include "sched/scheduler.hh"
#include "sim/check.hh"
#include "sim/fault.hh"

namespace {

using namespace dss;

class StreamFuzz : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        wl_ = new harness::Workload(tpcd::ScaleConfig::tiny(), 4);
        cache_ = new sched::TraceCache;
    }

    static void TearDownTestSuite()
    {
        delete cache_;
        cache_ = nullptr;
        delete wl_;
        wl_ = nullptr;
    }

    static harness::Workload *wl_;
    static sched::TraceCache *cache_;
};

harness::Workload *StreamFuzz::wl_ = nullptr;
sched::TraceCache *StreamFuzz::cache_ = nullptr;

/** A random-but-deterministic stream configuration for one fuzz seed. */
sched::StreamConfig
fuzzConfig(std::uint64_t seed)
{
    std::uint64_t state = seed * 0x9E3779B97F4A7C15ull + 1;
    auto draw = [&state] { return sched::splitmix64(state); };

    sched::StreamConfig cfg;
    cfg.seed = seed;
    cfg.instances = 3 + draw() % 4; // 3..6
    cfg.policy = (draw() & 1) ? sched::Policy::Fifo
                              : sched::Policy::ShortestClass;
    cfg.paramVariants = 1 + draw() % 3;
    if (draw() & 1) {
        cfg.mode = sched::ArrivalMode::Closed;
        cfg.clients = 1 + draw() % 5;
    } else {
        cfg.mode = sched::ArrivalMode::Open;
        cfg.meanInterarrival = 100000 + draw() % 900000;
    }
    // Random non-empty submix of the three traced queries, with random
    // weights.
    cfg.mix.clear();
    const tpcd::QueryId pool[] = {tpcd::QueryId::Q3, tpcd::QueryId::Q6,
                                  tpcd::QueryId::Q12};
    unsigned members = draw() % 8;
    for (unsigned i = 0; i < 3; ++i)
        if (members & (1u << i))
            cfg.mix.push_back({pool[i], 1 + unsigned(draw() % 3)});
    if (cfg.mix.empty())
        cfg.mix.push_back({pool[draw() % 3], 1});
    return cfg;
}

TEST_F(StreamFuzz, FiftySeedsDifferentialAndChecked)
{
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        SCOPED_TRACE("fuzz seed " + std::to_string(seed));
        const sched::StreamConfig cfg = fuzzConfig(seed);
        const unsigned threads = 1 + unsigned(seed % 4);

        harness::RunOptions seq_opts;
        seq_opts.engine = sim::EngineConfig::seq();
        sched::StreamScheduler seq_sched(
            *wl_, sim::MachineConfig::baseline(), cfg, seq_opts, cache_);
        obs::Json seq_json = toJson(seq_sched.run(), true);

        sim::InvariantChecker checker;
        harness::RunOptions par_opts;
        par_opts.engine = sim::EngineConfig::par(threads);
        par_opts.checker = &checker;
        sched::StreamScheduler par_sched(
            *wl_, sim::MachineConfig::baseline(), cfg, par_opts, cache_);
        obs::Json par_json = toJson(par_sched.run(), true);

        // The shared cache's hit/miss accounting differs between the two
        // replays by design; every simulated number must not.
        ASSERT_EQ(seq_json["records"].dump(), par_json["records"].dump())
            << "stream diverged between engines (par threads=" << threads
            << ")";
        ASSERT_EQ(seq_json["summary"].dump(), par_json["summary"].dump());
        ASSERT_EQ(checker.totalViolations(), 0u)
            << "invariant violations in checked par replay";
    }
}

/** A random-but-deterministic resilience layer for one fuzz seed. */
sched::ResilienceConfig
fuzzResilience(std::uint64_t seed)
{
    std::uint64_t state = seed * 0xBF58476D1CE4E5B9ull + 3;
    auto draw = [&state] { return sched::splitmix64(state); };

    sched::ResilienceConfig res;
    res.nodeFailures = true;
    // Sometimes binding, sometimes generous, sometimes absent.
    switch (draw() % 3) {
      case 0: res.deadline = 1500000 + draw() % 1500000; break;
      case 1: res.deadline = 8000000; break;
      default: res.deadline = 0; break;
    }
    if (draw() & 1)
        res.queueCapacity = unsigned(draw() % 4); // 0..3, 0 included
    switch (draw() % 3) {
      case 0: res.shed = sched::ShedPolicy::RejectNewest; break;
      case 1: res.shed = sched::ShedPolicy::RejectByClass; break;
      default: res.shed = sched::ShedPolicy::DeadlineAware; break;
    }
    if (draw() & 1) {
        res.breakerThreshold = 0.5;
        res.breakerWindow = 2 + unsigned(draw() % 3);
        res.breakerCooldown = 250000 + draw() % 500000;
    }
    res.migrationBudget = 1 + unsigned(draw() % 3);
    return res;
}

/** A NodeFailure-only fault config for one fuzz seed. */
sim::FaultConfig
fuzzFaults(std::uint64_t seed)
{
    std::uint64_t state = seed * 0x94D049BB133111EBull + 5;
    auto draw = [&state] { return sched::splitmix64(state); };

    sim::FaultConfig fc;
    fc.seed = seed;
    fc.rate = (draw() & 1) ? 1.0 : 0.5;
    fc.kinds = sim::FaultConfig::bitOf(sim::FaultKind::NodeFailure);
    fc.nodeMeanUpCycles = 1500000 + draw() % 4000000;
    fc.nodeDownCycles = 500000 + draw() % 1000000;
    return fc;
}

TEST_F(StreamFuzz, FiftyResilientSeedsDifferentialAndChecked)
{
    // One cache per engine, shared across all seeds: both engines see
    // the same fetch sequence, so the full reports — cache stats
    // included — must match byte for byte at every seed.
    sched::TraceCache cache_seq, cache_par;
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        SCOPED_TRACE("resilient fuzz seed " + std::to_string(seed));
        const sched::StreamConfig cfg = fuzzConfig(seed);
        const sched::ResilienceConfig res = fuzzResilience(seed);
        const sim::FaultConfig fc = fuzzFaults(seed);
        const unsigned threads = 1 + unsigned(seed % 4);

        // Fresh fault plans per run: windows are a pure function of the
        // seed, so both plans yield identical outage schedules, and the
        // per-plan fired-failure log stays per-engine.
        sim::FaultPlan seq_plan(fc);
        harness::RunOptions seq_opts;
        seq_opts.engine = sim::EngineConfig::seq();
        seq_opts.faults = &seq_plan;
        sched::StreamScheduler seq_sched(*wl_,
                                         sim::MachineConfig::baseline(),
                                         cfg, seq_opts, &cache_seq, res);
        const sched::StreamResult seq_res = seq_sched.run();
        const std::string seq_json = toJson(seq_res, true).dump();

        sim::FaultPlan par_plan(fc);
        sim::InvariantChecker checker;
        harness::RunOptions par_opts;
        par_opts.engine = sim::EngineConfig::par(threads);
        par_opts.faults = &par_plan;
        par_opts.checker = &checker;
        sched::StreamScheduler par_sched(*wl_,
                                         sim::MachineConfig::baseline(),
                                         cfg, par_opts, &cache_par, res);
        const std::string par_json = toJson(par_sched.run(), true).dump();

        ASSERT_EQ(seq_json, par_json)
            << "resilient stream diverged between engines (par threads="
            << threads << ")";
        ASSERT_EQ(checker.totalViolations(), 0u)
            << "invariant violations in checked par replay";

        // Conservation at every seed: each instance resolves exactly once.
        const sched::ClassSlo &t = seq_res.resilience.total;
        ASSERT_EQ(t.submitted, cfg.instances);
        ASSERT_EQ(t.goodput + t.timeouts + t.shedQueue + t.shedBreaker +
                      t.shedExpired + t.abandoned,
                  t.submitted);
    }
}

} // namespace
