/**
 * @file
 * Tests for the nested-query extension: SemiJoinNode (EXISTS / NOT
 * EXISTS) and the nested Q4 variant.
 */

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "db_test_util.hh"
#include "tpcd/queries.hh"
#include "tpcd_test_util.hh"

namespace {

using namespace dss;
using namespace dss::db;
using dss::test::CatalogFixture;

struct SemiFixture : CatalogFixture
{
    RelId utable = 0;
    RelId uidx = 0;
    db::PrivateHeap privHeap{space, 0};

    SemiFixture()
    {
        fill(40); // t.k = 0..39
        Schema s;
        s.add("uk", AttrType::Int32).add("flag", AttrType::Int32);
        utable = catalog.createTable(mem, "u", s);
        // u has rows only for even keys < 20; flag=1 rows only for k<10.
        for (int k = 0; k < 20; k += 2) {
            catalog.insert(mem, utable,
                           {Datum{static_cast<std::int64_t>(k)},
                            Datum{static_cast<std::int64_t>(
                                k < 10 ? 1 : 0)}});
        }
        uidx = catalog.createIndex(mem, "u_k", utable, 0);
    }

    ExecContext
    ctx()
    {
        return ExecContext{mem, catalog, privHeap, 60};
    }

    NodePtr
    innerScan(ExprPtr residual = nullptr)
    {
        return std::make_unique<IndexScanNode>(
            catalog.relation(utable), catalog.index(uidx),
            IndexScanNode::kMinKey, IndexScanNode::kMaxKey,
            std::move(residual));
    }
};

TEST(SemiJoin, ExistsKeepsMatchingOuters)
{
    SemiFixture f;
    auto outer = std::make_unique<SeqScanNode>(
        f.catalog.relation(f.table), nullptr);
    SemiJoinNode semi(std::move(outer), f.innerScan(), 0);
    ExecContext c = f.ctx();
    auto rows = runQuery(c, semi);
    ASSERT_EQ(rows.size(), 10u); // even k < 20
    for (const auto &r : rows) {
        EXPECT_EQ(datumInt(r[0]) % 2, 0);
        EXPECT_LT(datumInt(r[0]), 20);
    }
}

TEST(SemiJoin, NotExistsKeepsTheComplement)
{
    SemiFixture f;
    auto outer = std::make_unique<SeqScanNode>(
        f.catalog.relation(f.table), nullptr);
    SemiJoinNode anti(std::move(outer), f.innerScan(), 0,
                      /*negated=*/true);
    ExecContext c = f.ctx();
    auto rows = runQuery(c, anti);
    EXPECT_EQ(rows.size(), 30u); // 40 - 10 matches
}

TEST(SemiJoin, SubqueryResidualApplies)
{
    SemiFixture f;
    // EXISTS (select * from u where uk = k and flag = 1): even k < 10.
    auto outer = std::make_unique<SeqScanNode>(
        f.catalog.relation(f.table), nullptr);
    ExprPtr residual =
        cmp(CmpOp::Eq, col(f.catalog.relation(f.utable).schema, "flag"),
            litInt(1));
    SemiJoinNode semi(std::move(outer), f.innerScan(residual), 0);
    ExecContext c = f.ctx();
    auto rows = runQuery(c, semi);
    EXPECT_EQ(rows.size(), 5u); // k in {0, 2, 4, 6, 8}
}

TEST(SemiJoin, EmptyOuterYieldsNothing)
{
    SemiFixture f;
    auto outer = std::make_unique<SeqScanNode>(
        f.catalog.relation(f.table),
        cmp(CmpOp::Lt, attr(0), litInt(0)));
    SemiJoinNode semi(std::move(outer), f.innerScan(), 0);
    ExecContext c = f.ctx();
    EXPECT_TRUE(runQuery(c, semi).empty());
}

TEST(SemiJoin, SchemaIsOuterSchema)
{
    SemiFixture f;
    auto outer = std::make_unique<SeqScanNode>(
        f.catalog.relation(f.table), nullptr);
    SemiJoinNode semi(std::move(outer), f.innerScan(), 0);
    EXPECT_EQ(semi.schema().numAttrs(),
              f.catalog.relation(f.table).schema.numAttrs());
    auto ops = collectLogicalOps(semi);
    EXPECT_NE(std::find(ops.begin(), ops.end(),
                        LogicalOp::NestedLoopJoin),
              ops.end());
}

TEST(NestedQ4, MatchesBruteForce)
{
    tpcd::TpcdDb db(tpcd::ScaleConfig::tiny(), 1, 42);
    sim::NullSink sink;
    TracedMemory mem(db.space(), 0, sink);
    PrivateHeap priv(db.space(), 0);
    ExecContext ctx{mem, db.catalog(), priv, 70};

    const std::uint64_t seed = 13;
    NodePtr plan = tpcd::buildQ4Nested(db, seed);
    auto rows = runQuery(ctx, *plan);

    // Brute force over every candidate (year, quarter) window, matched
    // the same way the Q10 reference test does.
    auto orders = dss::test::dumpRelation(db, db.orders);
    auto li = dss::test::dumpRelation(db, db.lineitem);
    const Schema &os = db.catalog().relation(db.orders).schema;
    const Schema &ls = db.catalog().relation(db.lineitem).schema;

    bool matched = false;
    for (int year = 1993; year <= 1997 && !matched; ++year) {
        for (int q = 0; q < 4 && !matched; ++q) {
            std::int64_t lo = tpcd::dateNum(year, 1 + 3 * q, 1);
            std::int64_t hi = q == 3 ? tpcd::dateNum(year + 1, 1, 1)
                                     : tpcd::dateNum(year, 4 + 3 * q, 1);
            std::map<std::string, std::int64_t> counts;
            for (const auto &o : orders) {
                auto od = datumInt(o[os.indexOf("o_orderdate")]);
                if (od < lo || od >= hi)
                    continue;
                auto ok = datumInt(o[os.indexOf("o_orderkey")]);
                bool exists = false;
                for (const auto &l : li) {
                    if (datumInt(l[ls.indexOf("l_orderkey")]) != ok)
                        continue;
                    if (datumInt(l[ls.indexOf("l_commitdate")]) <
                        datumInt(l[ls.indexOf("l_receiptdate")])) {
                        exists = true;
                        break;
                    }
                }
                if (exists)
                    ++counts[datumStr(o[os.indexOf("o_orderpriority")])];
            }
            if (counts.size() != rows.size())
                continue;
            bool all = true;
            for (const auto &r : rows) {
                auto it = counts.find(datumStr(r[0]));
                if (it == counts.end() || it->second != datumInt(r[1])) {
                    all = false;
                    break;
                }
            }
            matched = all;
        }
    }
    EXPECT_TRUE(matched)
        << "no parameter window reproduces the nested Q4 answer";
}

TEST(NestedQ4, UsesIndexScanUnlikeFlatQ4)
{
    tpcd::TpcdDb db(tpcd::ScaleConfig::tiny(), 1, 42);
    NodePtr flat = tpcd::buildQuery(db, tpcd::QueryId::Q4, 3);
    NodePtr nested = tpcd::buildQ4Nested(db, 3);
    auto has = [](const std::vector<LogicalOp> &ops, LogicalOp op) {
        return std::find(ops.begin(), ops.end(), op) != ops.end();
    };
    auto flat_ops = collectLogicalOps(*flat);
    auto nested_ops = collectLogicalOps(*nested);
    EXPECT_FALSE(has(flat_ops, LogicalOp::IndexScanSelect));
    EXPECT_TRUE(has(nested_ops, LogicalOp::IndexScanSelect));
    EXPECT_TRUE(has(nested_ops, LogicalOp::NestedLoopJoin));
}

} // namespace
