/**
 * @file
 * Differential tests between the sequential reference engine and the
 * epoch-window parallel engine (sim/par_engine.hh), on seeded randomized
 * traces mixing reads, writes, busy work and lock critical sections over
 * shared and private address regions.
 *
 * The contract the parallel engine makes (see DESIGN.md "Engines"):
 *
 *  1. Determinism: par(threads=T) is bit-identical to par(threads=1) for
 *     every T — full statistics, final directory state, final cache
 *     contents. This is the property the fuzz loop hammers hardest.
 *  2. Exactness on conflict-free traces: when no two processors touch
 *     the same cache line or queue at the same home node's directory
 *     controller and no locks are used, par equals seq exactly (every
 *     parked transaction replays against state no other processor can
 *     have changed). Controller occupancy is shared state too: two
 *     processors missing on disjoint lines with the same home still
 *     contend in seq, which par only resolves at window barriers.
 *  3. Count exactness everywhere: stores, lock grants and lock releases
 *     are trace-derived and identical in both engines even when
 *     contention makes the timing diverge. (Loads and busy cycles are
 *     NOT invariant: a test&test&set acquire only issues its RMW when
 *     the test phase sees the lock free, so contended acquires can add
 *     or drop one load + one issue cycle relative to the other engine.)
 */

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/stats_json.hh"
#include "sim/arena.hh"
#include "sim/machine.hh"

namespace {

using namespace dss;
using namespace dss::sim;

/** Knobs for one randomized workload. */
struct FuzzConfig
{
    unsigned nprocs = 4;
    std::size_t entries = 400; ///< trace length per processor
    bool sharedData = true;    ///< touch lines other processors touch
    bool locks = true;         ///< take lock critical sections
};

/**
 * One processor's randomized trace. Private accesses go to a per-proc
 * region; shared accesses go to a small common region so that real
 * read/write and write/write line conflicts happen; locks come from a
 * pool of four metalock words on their own lines.
 */
TraceStream
randomTrace(std::mt19937_64 &rng, ProcId p, const FuzzConfig &fc)
{
    TraceStream t;
    const Addr priv_base =
        AddressSpace::kPrivateBase + p * AddressSpace::kPrivateStride;
    const Addr shared_base = 0x1000'0000;
    const Addr lock_base = 0x2000'0000;
    std::uniform_int_distribution<int> pct(0, 99);
    std::uniform_int_distribution<Addr> priv_off(0, (16 << 10) - 8);
    std::uniform_int_distribution<Addr> shared_off(0, (4 << 10) - 8);
    std::uniform_int_distribution<Addr> lock_idx(0, 3);
    std::uniform_int_distribution<std::uint32_t> busy(1, 30);

    bool in_cs = false;
    Addr held = 0;
    for (std::size_t i = 0; i < fc.entries; ++i) {
        const int r = pct(rng);
        if (fc.locks && !in_cs && r < 6) {
            held = lock_base + lock_idx(rng) * 64;
            t.record(TraceEntry::lockAcq(held, DataClass::LockSLock));
            in_cs = true;
        } else if (in_cs && r < 20) {
            t.record(TraceEntry::lockRel(held, DataClass::LockSLock));
            in_cs = false;
        } else if (r < 45) {
            t.record(TraceEntry::busy(busy(rng)));
        } else {
            const bool shared = fc.sharedData && pct(rng) < 40;
            const Addr a = shared ? shared_base + (shared_off(rng) & ~7ull)
                                  : priv_base + (priv_off(rng) & ~7ull);
            const DataClass cls = shared ? DataClass::Data : DataClass::Priv;
            if (pct(rng) < 30)
                t.record(TraceEntry::write(a, cls, 8));
            else
                t.record(TraceEntry::read(a, cls, 8));
        }
    }
    if (in_cs)
        t.record(TraceEntry::lockRel(held, DataClass::LockSLock));
    return t;
}

std::vector<TraceStream>
randomTraces(std::uint64_t seed, const FuzzConfig &fc)
{
    std::mt19937_64 rng(seed);
    std::vector<TraceStream> traces;
    for (ProcId p = 0; p < fc.nprocs; ++p)
        traces.push_back(randomTrace(rng, p, fc));
    return traces;
}

std::vector<const TraceStream *>
ptrsOf(const std::vector<TraceStream> &traces)
{
    std::vector<const TraceStream *> ptrs;
    for (const TraceStream &t : traces)
        ptrs.push_back(&t);
    return ptrs;
}

/**
 * Full observable machine outcome as one comparable string: every
 * statistic the JSON exporter knows about, the final directory state
 * (sorted), and the resident lines of every cache.
 */
std::string
fingerprint(const Machine &m, const SimStats &s)
{
    std::ostringstream os;
    os << obs::toJson(s).dump(2) << '\n';
    const auto &lc = m.locks().counters();
    os << "locks:" << lc.acquires << ',' << lc.waits << ',' << lc.releases
       << ',' << lc.handoffs << '\n';
    for (const auto &[addr, e] : m.directory().sortedEntries())
        os << std::hex << addr << ':' << static_cast<int>(e.state) << ':'
           << e.owner << ':' << e.sharers << '\n';
    Machine &mm = const_cast<Machine &>(m);
    for (ProcId p = 0; p < m.config().nprocs; ++p) {
        os << "l1." << std::dec << p << ':';
        for (Addr a : mm.l1(p).residentLines())
            os << std::hex << a << ',';
        os << "\nl2." << std::dec << p << ':';
        for (Addr a : mm.l2(p).residentLines())
            os << std::hex << a << ',';
        os << '\n';
    }
    return os.str();
}

std::string
runEngine(const std::vector<TraceStream> &traces, const EngineConfig &eng)
{
    Machine m(MachineConfig::baseline());
    SimStats s = m.run(ptrsOf(traces), eng);
    return fingerprint(m, s);
}

/**
 * The trace-derived counts that must match between any two engines:
 * every Write or LockRel entry is exactly one store, and every LockAcq
 * entry ends in exactly one grant — an uncontended tryAcquire or a
 * handoff from the releaser.
 */
struct Counts
{
    std::uint64_t writes = 0, grants = 0, releases = 0;

    bool operator==(const Counts &o) const
    {
        return writes == o.writes && grants == o.grants &&
               releases == o.releases;
    }
};

Counts
countsOf(const Machine &m, const SimStats &s)
{
    Counts c;
    for (const ProcStats &p : s.procs)
        c.writes += p.writes;
    const LockTable::Counters &lc = m.locks().counters();
    c.grants = lc.acquires + lc.handoffs;
    c.releases = lc.releases;
    return c;
}

// ---------------------------------------------------------------------
// Property 1: par is bit-identical across host thread counts.
// ---------------------------------------------------------------------

TEST(EngineDifferential, ParDeterministicAcrossThreadCounts)
{
    FuzzConfig fc;
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        auto traces = randomTraces(seed, fc);
        const std::string one = runEngine(traces, EngineConfig::par(1));
        for (unsigned threads : {2u, 3u, 4u}) {
            const std::string many =
                runEngine(traces, EngineConfig::par(threads));
            ASSERT_EQ(one, many)
                << "par(" << threads << ") diverged from par(1), seed "
                << seed;
        }
    }
}

TEST(EngineDifferential, ParDeterministicAcrossWindowsOnPrivate)
{
    // On conflict-free traces the window length is unobservable: no parked
    // transaction from one processor can affect another.
    FuzzConfig fc;
    fc.sharedData = false;
    fc.locks = false;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        auto traces = randomTraces(seed, fc);
        const std::string base = runEngine(traces, EngineConfig::par());
        for (Cycles window : {64ull, 1024ull, 100000ull}) {
            const std::string other =
                runEngine(traces, EngineConfig::par(0, window));
            ASSERT_EQ(base, other)
                << "window " << window << " changed a conflict-free "
                << "outcome, seed " << seed;
        }
    }
}

// ---------------------------------------------------------------------
// Property 2: par == seq exactly on conflict-free traces.
// ---------------------------------------------------------------------

TEST(EngineDifferential, SeqParIdenticalOnPrivateTraces)
{
    FuzzConfig fc;
    fc.sharedData = false;
    fc.locks = false;
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        auto traces = randomTraces(seed, fc);
        const std::string seq = runEngine(traces, EngineConfig::seq());
        const std::string par = runEngine(traces, EngineConfig::par());
        ASSERT_EQ(seq, par) << "seed " << seed;
    }
}

TEST(EngineDifferential, SeqParIdenticalOnDisjointSharedLines)
{
    // Shared-class data on per-processor disjoint lines *homed at the
    // touching processor's own node* (pages are interleaved across homes,
    // so stride by nprocs pages): conflict-free including the controller
    // queues, so still exact — including directory final state.
    const MachineConfig cfg = MachineConfig::baseline();
    std::vector<TraceStream> traces;
    for (ProcId p = 0; p < 4; ++p) {
        TraceStream t;
        for (int page = 0; page < 8; ++page) {
            const Addr base = AddressSpace::kSharedBase +
                              (static_cast<Addr>(page) * cfg.nprocs + p) *
                                  cfg.pageBytes;
            for (Addr a = 0; a < 512; a += 8) {
                t.record(
                    TraceEntry::read(base + a, DataClass::Data, 8));
                if ((a & 63) == 32)
                    t.record(
                        TraceEntry::write(base + a, DataClass::Data, 8));
                t.record(TraceEntry::busy(2));
            }
        }
        traces.push_back(std::move(t));
    }
    EXPECT_EQ(runEngine(traces, EngineConfig::seq()),
              runEngine(traces, EngineConfig::par()));
}

// ---------------------------------------------------------------------
// Property 3: trace-derived counts match even under contention.
// ---------------------------------------------------------------------

TEST(EngineDifferential, SeqParCountsMatchUnderContention)
{
    FuzzConfig fc;
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        auto traces = randomTraces(seed, fc);
        Machine ms(MachineConfig::baseline());
        Counts seq =
            countsOf(ms, ms.run(ptrsOf(traces), EngineConfig::seq()));
        Machine mp(MachineConfig::baseline());
        Counts par =
            countsOf(mp, mp.run(ptrsOf(traces), EngineConfig::par()));
        ASSERT_TRUE(seq == par)
            << "seed " << seed << ": writes " << seq.writes << "/"
            << par.writes << ", grants " << seq.grants << "/"
            << par.grants << ", releases " << seq.releases << "/"
            << par.releases;
    }
}

TEST(EngineDifferential, LockHandoffCompleteUnderPar)
{
    // All four processors fight over one lock; every acquire must be
    // matched and the machine must not deadlock in either engine.
    std::vector<TraceStream> traces;
    for (ProcId p = 0; p < 4; ++p) {
        TraceStream t;
        for (int i = 0; i < 50; ++i) {
            t.record(TraceEntry::lockAcq(0x2000'0000, DataClass::LockSLock));
            t.record(TraceEntry::read(0x1000'0000, DataClass::Data, 8));
            t.record(
                TraceEntry::write(0x1000'0000, DataClass::Data, 8));
            t.record(TraceEntry::lockRel(0x2000'0000, DataClass::LockSLock));
            t.record(TraceEntry::busy(5));
        }
        traces.push_back(std::move(t));
    }
    for (const EngineConfig &eng :
         {EngineConfig::seq(), EngineConfig::par(),
          EngineConfig::par(0, 64)}) {
        Machine m(MachineConfig::baseline());
        Counts c = countsOf(m, m.run(ptrsOf(traces), eng));
        EXPECT_EQ(c.grants, 200u) << engineKindName(eng.kind);
        EXPECT_EQ(c.releases, 200u) << engineKindName(eng.kind);
    }
}

} // namespace
