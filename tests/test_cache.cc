/**
 * @file
 * Unit and property tests for the set-associative cache model and its
 * cold/conflict/coherence miss classification.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"

namespace {

using namespace dss::sim;

TEST(CacheConfig, RejectsBadGeometry)
{
    EXPECT_THROW(Cache({1000, 32, 1}), std::invalid_argument);
    EXPECT_THROW(Cache({4096, 24, 1}), std::invalid_argument);
    EXPECT_THROW(Cache({4096, 32, 0}), std::invalid_argument);
}

TEST(Cache, GeometryDerivation)
{
    Cache c({4096, 32, 1});
    EXPECT_EQ(c.numSets(), 128u);
    Cache c2({128 * 1024, 64, 2});
    EXPECT_EQ(c2.numSets(), 1024u);
}

TEST(Cache, LineAddrMasksOffset)
{
    Cache c({4096, 32, 1});
    EXPECT_EQ(c.lineAddrOf(0x1234), 0x1220u);
    EXPECT_EQ(c.lineAddrOf(0x1220), 0x1220u);
}

TEST(Cache, MissThenFillThenHit)
{
    Cache c({4096, 32, 1});
    EXPECT_FALSE(c.access(0x100));
    c.fill(0x100);
    EXPECT_TRUE(c.access(0x100));
    EXPECT_TRUE(c.access(0x11f)); // same line
    EXPECT_FALSE(c.access(0x120)); // next line
}

TEST(Cache, DirectMappedConflictEviction)
{
    Cache c({4096, 32, 1});
    c.fill(0x0);
    // 0x1000 maps to the same set in a 4 KB direct-mapped cache.
    Cache::Victim v = c.fill(0x1000);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, 0x0u);
    EXPECT_FALSE(c.contains(0x0));
    EXPECT_TRUE(c.contains(0x1000));
}

TEST(Cache, TwoWayKeepsBothAliases)
{
    Cache c({4096, 32, 2});
    c.fill(0x0);
    Cache::Victim v = c.fill(0x800); // same set, second way
    EXPECT_FALSE(v.valid);
    EXPECT_TRUE(c.contains(0x0));
    EXPECT_TRUE(c.contains(0x800));
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache c({4096, 32, 2});
    c.fill(0x0);    // way A
    c.fill(0x800);  // way B (same set: 4096/32/2 = 64 sets, stride 0x800)
    c.access(0x0);  // A is now most recent
    Cache::Victim v = c.fill(0x1000); // evicts B
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, 0x800u);
    EXPECT_TRUE(c.contains(0x0));
}

TEST(Cache, DirtyVictimReported)
{
    Cache c({4096, 32, 1});
    c.fill(0x0, /*dirty=*/true);
    Cache::Victim v = c.fill(0x1000);
    ASSERT_TRUE(v.valid);
    EXPECT_TRUE(v.dirty);
}

TEST(Cache, AccessSetDirtyAndMarkClean)
{
    Cache c({4096, 32, 1});
    c.fill(0x40);
    EXPECT_FALSE(c.isDirty(0x40));
    c.access(0x40, /*set_dirty=*/true);
    EXPECT_TRUE(c.isDirty(0x40));
    c.markClean(0x40);
    EXPECT_FALSE(c.isDirty(0x40));
    c.markDirty(0x40);
    EXPECT_TRUE(c.isDirty(0x40));
}

TEST(Cache, InvalidateRemovesLineAndReportsDirty)
{
    Cache c({4096, 32, 1});
    c.fill(0x40, true);
    bool was_dirty = false;
    EXPECT_TRUE(c.invalidate(0x40, /*coherence=*/true, &was_dirty));
    EXPECT_TRUE(was_dirty);
    EXPECT_FALSE(c.contains(0x40));
    EXPECT_FALSE(c.invalidate(0x40, true)); // already gone
}

TEST(MissClassification, FirstTouchIsCold)
{
    Cache c({4096, 32, 1});
    EXPECT_EQ(c.classifyMiss(0x40), MissType::Cold);
}

TEST(MissClassification, ReplacementMissIsConflict)
{
    Cache c({4096, 32, 1});
    c.fill(0x40);
    c.fill(0x1040); // evicts 0x40 (replacement)
    EXPECT_EQ(c.classifyMiss(0x40), MissType::Conf);
}

TEST(MissClassification, InvalidationMissIsCoherence)
{
    Cache c({4096, 32, 1});
    c.fill(0x40);
    c.invalidate(0x40, /*coherence=*/true);
    EXPECT_EQ(c.classifyMiss(0x40), MissType::Cohe);
}

TEST(MissClassification, RefillClearsCoherenceHistory)
{
    Cache c({4096, 32, 1});
    c.fill(0x40);
    c.invalidate(0x40, true);
    c.fill(0x40);          // re-fetched
    c.fill(0x1040);        // replaced again
    EXPECT_EQ(c.classifyMiss(0x40), MissType::Conf);
}

TEST(MissClassification, NonCoherenceInvalidateIsNotCohe)
{
    Cache c({4096, 32, 1});
    c.fill(0x40);
    c.invalidate(0x40, /*coherence=*/false); // inclusion victim
    EXPECT_EQ(c.classifyMiss(0x40), MissType::Conf);
}

TEST(Cache, ResetForgetsContentsAndHistory)
{
    Cache c({4096, 32, 1});
    c.fill(0x40);
    c.invalidate(0x40, true);
    c.reset();
    EXPECT_FALSE(c.contains(0x40));
    EXPECT_EQ(c.classifyMiss(0x40), MissType::Cold); // history gone
}

TEST(Cache, ResidentLinesEnumeratesValidLines)
{
    Cache c({4096, 32, 2});
    c.fill(0x0);
    c.fill(0x40);
    c.fill(0x80);
    std::vector<Addr> lines = c.residentLines();
    EXPECT_EQ(lines.size(), 3u);
}

/** Property sweep: geometry invariants across configurations. */
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::size_t>>
{};

TEST_P(CacheGeometry, FillMakesResidentUntilEvicted)
{
    auto [size, line, assoc] = GetParam();
    Cache c({size, line, assoc});
    // Fill exactly capacity lines with a stride hitting every set evenly:
    // all must be resident (no premature eviction).
    const std::size_t nlines = size / line;
    for (std::size_t i = 0; i < nlines; ++i) {
        Cache::Victim v = c.fill(static_cast<Addr>(i * line));
        EXPECT_FALSE(v.valid) << "premature eviction at line " << i;
    }
    for (std::size_t i = 0; i < nlines; ++i)
        EXPECT_TRUE(c.contains(static_cast<Addr>(i * line)));
    // One more line must evict exactly one victim.
    Cache::Victim v = c.fill(static_cast<Addr>(nlines * line));
    EXPECT_TRUE(v.valid);
}

TEST_P(CacheGeometry, AccessAfterFillAlwaysHits)
{
    auto [size, line, assoc] = GetParam();
    Cache c({size, line, assoc});
    for (Addr a = 0; a < 8 * line; a += line) {
        if (!c.access(a))
            c.fill(a);
        EXPECT_TRUE(c.access(a));
        EXPECT_TRUE(c.access(a + line - 1));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_tuple(4096, 32, 1),
                      std::make_tuple(4096, 8, 1),
                      std::make_tuple(4096, 128, 1),
                      std::make_tuple(128 * 1024, 64, 2),
                      std::make_tuple(128 * 1024, 16, 2),
                      std::make_tuple(128 * 1024, 256, 2),
                      std::make_tuple(32 * 1024 * 1024, 64, 2),
                      std::make_tuple(8192, 64, 4)));

} // namespace
