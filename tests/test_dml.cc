/**
 * @file
 * Tests for the runtime DML layer (heap insert/delete, B-tree insertion
 * with splits, write locks) and the TPC-D update functions UF1/UF2.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "db/dml.hh"
#include "db_test_util.hh"
#include "tpcd/queries.hh"
#include "tpcd/updates.hh"

namespace {

using namespace dss;
using namespace dss::db;
using dss::test::CatalogFixture;

struct DmlFixture : CatalogFixture
{
    db::PrivateHeap privHeap{space, 0};

    ExecContext
    ctx()
    {
        return ExecContext{mem, catalog, privHeap, 77};
    }

    std::vector<Datum>
    row(int k)
    {
        return {Datum{static_cast<std::int64_t>(k)}, Datum{k * 1.5},
                Datum{"r" + std::to_string(k % 10)}};
    }

    std::vector<std::vector<Datum>>
    scanAll()
    {
        ExecContext c = ctx();
        SeqScanNode scan(catalog.relation(table), nullptr);
        return runQuery(c, scan);
    }
};

TEST(Dml, InsertIsVisibleToScans)
{
    DmlFixture f;
    f.fill(10);
    ExecContext c = f.ctx();
    Tid tid = heapInsert(c, f.table, f.row(100));
    EXPECT_GE(tid.block, 0);
    auto rows = f.scanAll();
    ASSERT_EQ(rows.size(), 11u);
    EXPECT_EQ(datumInt(rows.back()[0]), 100);
    EXPECT_EQ(f.catalog.relation(f.table).numTuples, 11u);
}

TEST(Dml, InsertExtendsHeapAcrossBlocks)
{
    DmlFixture f;
    ExecContext c = f.ctx();
    for (int k = 0; k < 1000; ++k)
        heapInsert(c, f.table, f.row(k));
    EXPECT_GT(f.catalog.relation(f.table).blocks.size(), 2u);
    EXPECT_EQ(f.scanAll().size(), 1000u);
    EXPECT_EQ(countLiveTuples(c, f.table), 1000u);
}

TEST(Dml, InsertMaintainsIndices)
{
    DmlFixture f;
    f.fill(50);
    RelId idx = f.catalog.createIndex(f.mem, "t_k", f.table, 0);
    ExecContext c = f.ctx();
    Tid tid = heapInsert(c, f.table, f.row(999));
    auto hits = f.catalog.index(idx).lookupAll(f.mem, 999);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0], tid);
}

TEST(Dml, DeleteTombstonesAndScansSkip)
{
    DmlFixture f;
    f.fill(20);
    ExecContext c = f.ctx();
    EXPECT_TRUE(heapDelete(c, f.table, Tid{0, 5}));
    EXPECT_FALSE(heapDelete(c, f.table, Tid{0, 5})); // already dead
    auto rows = f.scanAll();
    EXPECT_EQ(rows.size(), 19u);
    for (const auto &r : rows)
        EXPECT_NE(datumInt(r[0]), 5);
    EXPECT_EQ(countLiveTuples(c, f.table), 19u);
}

TEST(Dml, IndexScanSkipsDeletedTuples)
{
    DmlFixture f;
    f.fill(30);
    RelId idx = f.catalog.createIndex(f.mem, "t_k", f.table, 0);
    ExecContext c = f.ctx();
    heapDelete(c, f.table, Tid{0, 7}); // k == 7

    IndexScanNode scan(f.catalog.relation(f.table), f.catalog.index(idx),
                       0, 29, nullptr);
    auto rows = runQuery(c, scan);
    EXPECT_EQ(rows.size(), 29u);
    for (const auto &r : rows)
        EXPECT_NE(datumInt(r[0]), 7);
}

TEST(Dml, WriteLocksConflictWithReaders)
{
    DmlFixture f;
    ExecContext c = f.ctx();
    lockForWrite(c, f.table);
    // A concurrent reader would wait in a real system; our read-only
    // study surfaces the conflict as an error (paper scope).
    EXPECT_THROW(
        f.lockmgr.lockRelation(f.mem, 88, f.table, LockMode::Read),
        std::runtime_error);
    unlockWrite(c, f.table);
    EXPECT_TRUE(
        f.lockmgr.lockRelation(f.mem, 88, f.table, LockMode::Read));
    f.lockmgr.unlockRelation(f.mem, 88, f.table);
}

TEST(BTreeInsert, SingleInsertIntoBuiltTree)
{
    DmlFixture f;
    f.fill(100);
    RelId idx = f.catalog.createIndex(f.mem, "t_k", f.table, 0);
    BTree &tree = f.catalog.indexMut(idx);
    tree.insert(f.mem, 55, Tid{9, 9}); // duplicate of existing key 55
    EXPECT_EQ(tree.lookupAll(f.mem, 55).size(), 2u);
}

TEST(BTreeInsert, LeafSplitGrowsTree)
{
    dss::test::MemFixture base;
    db::BufferManager bm(base.mem, 2048);
    BTree tree(50, bm);
    tree.build(base.mem, {{0, Tid{0, 0}}});
    const unsigned before_pages = tree.numPages();
    // Push far past one leaf's capacity (511 entries).
    for (int k = 1; k <= 2000; ++k)
        tree.insert(base.mem, k, Tid{k / 100,
                                     static_cast<std::uint16_t>(k % 100)});
    EXPECT_GT(tree.numPages(), before_pages);
    EXPECT_GE(tree.height(), 2);
    // Every key findable; scan order sorted.
    EXPECT_EQ(tree.lookupAll(base.mem, 0).size(), 1u);
    EXPECT_EQ(tree.lookupAll(base.mem, 2000).size(), 1u);
    BTree::Cursor c = tree.begin(base.mem);
    std::int64_t k, prev = -1;
    Tid t;
    int n = 0;
    while (c.next(base.mem, k, t)) {
        EXPECT_GE(k, prev);
        prev = k;
        ++n;
    }
    EXPECT_EQ(n, 2001);
}

TEST(BTreeInsert, InsertIntoUnbuiltTreeThrows)
{
    dss::test::MemFixture base;
    db::BufferManager bm(base.mem, 64);
    BTree tree(50, bm);
    EXPECT_THROW(tree.insert(base.mem, 1, Tid{0, 0}), std::runtime_error);
}

/** Property: random interleaved inserts match a host-side reference. */
class BTreeInsertProperty : public ::testing::TestWithParam<int>
{};

TEST_P(BTreeInsertProperty, LookupMatchesReferenceAfterInserts)
{
    const int variant = GetParam();
    dss::test::MemFixture base;
    db::BufferManager bm(base.mem, 4096);
    BTree tree(50, bm);

    std::uint64_t rng = 0x1234u + variant;
    auto next = [&]() {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };

    // Start from a bulk-loaded base, then insert at runtime.
    std::vector<BTree::Entry> initial;
    const int base_n = 200 * (variant + 1);
    for (int i = 0; i < base_n; ++i)
        initial.push_back({static_cast<std::int64_t>(next() % 1000),
                           Tid{0, static_cast<std::uint16_t>(i % 100)}});
    std::stable_sort(initial.begin(), initial.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    tree.build(base.mem, initial);

    std::vector<std::int64_t> keys;
    for (const auto &e : initial)
        keys.push_back(e.first);
    for (int i = 0; i < 1500; ++i) {
        auto k = static_cast<std::int64_t>(next() % 1000);
        tree.insert(base.mem, k,
                    Tid{1, static_cast<std::uint16_t>(i % 100)});
        keys.push_back(k);
    }

    for (std::int64_t k = 0; k < 1000; k += 37) {
        std::size_t expected =
            static_cast<std::size_t>(std::count(keys.begin(), keys.end(),
                                                k));
        EXPECT_EQ(tree.lookupAll(base.mem, k).size(), expected)
            << "key " << k << " variant " << variant;
    }
}

INSTANTIATE_TEST_SUITE_P(Variants, BTreeInsertProperty,
                         ::testing::Range(0, 5));

struct UpdateFixture : ::testing::Test
{
    tpcd::TpcdDb db{tpcd::ScaleConfig::tiny(), 1, 42};
    sim::NullSink sink;
    db::TracedMemory mem{db.space(), 0, sink};
    db::PrivateHeap priv{db.space(), 0};

    ExecContext
    ctx()
    {
        return ExecContext{mem, db.catalog(), priv, 300};
    }
};

TEST_F(UpdateFixture, UF1InsertsOrdersAndLineitems)
{
    const std::uint64_t orders_before =
        db.catalog().relation(db.orders).numTuples;
    ExecContext c = ctx();
    tpcd::UpdateStats st = tpcd::runUF1(db, c, 10, 7);
    EXPECT_EQ(st.orders, 10u);
    EXPECT_GE(st.lineitems, 10u);
    EXPECT_LE(st.lineitems, 70u);
    EXPECT_EQ(db.catalog().relation(db.orders).numTuples,
              orders_before + 10);

    // New orders are reachable through the orderkey index.
    const db::BTree &idx = db.catalog().index(db.idxOrdersKey);
    auto hits = idx.lookupAll(mem, db.nextOrderKey - 1);
    EXPECT_EQ(hits.size(), 1u);
}

TEST_F(UpdateFixture, UF2DeletesLowestOrders)
{
    ExecContext c = ctx();
    const std::uint64_t before = db::countLiveTuples(c, db.orders);
    tpcd::UpdateStats st = tpcd::runUF2(db, c, 5);
    EXPECT_EQ(st.orders, 5u);
    EXPECT_GT(st.lineitems, 0u);
    EXPECT_EQ(db::countLiveTuples(c, db.orders), before - 5);

    // Orders 1..5 are gone; a scan finds no orderkey below 6.
    SeqScanNode scan(db.catalog().relation(db.orders), nullptr);
    auto rows = runQuery(c, scan);
    const Schema &s = db.catalog().relation(db.orders).schema;
    (void)s;
    for (const auto &r : rows)
        EXPECT_GT(datumInt(r[0]), 5);
}

TEST_F(UpdateFixture, UF1ThenUF2RoundTrips)
{
    ExecContext c = ctx();
    const std::uint64_t orders0 = db::countLiveTuples(c, db.orders);
    const std::uint64_t lines0 = db::countLiveTuples(c, db.lineitem);
    tpcd::UpdateStats in = tpcd::runUF1(db, c, 8, 99);
    tpcd::UpdateStats out = tpcd::runUF2(db, c, 8);
    EXPECT_EQ(in.orders, out.orders);
    EXPECT_EQ(db::countLiveTuples(c, db.orders), orders0);
    // UF2 deleted the *lowest* keys (old orders), not UF1's new ones, so
    // the lineitem count changes by (inserted - deleted).
    EXPECT_EQ(db::countLiveTuples(c, db.lineitem),
              lines0 + in.lineitems - out.lineitems);
}

TEST_F(UpdateFixture, ReadQueriesStillCorrectAfterUpdates)
{
    ExecContext c = ctx();
    tpcd::runUF1(db, c, 10, 3);
    tpcd::runUF2(db, c, 10);

    // Q6 still matches a brute-force scan of the (mutated) table.
    tpcd::Q6Params p = tpcd::Q6Params::fromSeed(5);
    NodePtr plan = tpcd::buildQ6(db, p);
    auto rows = runQuery(c, *plan);
    ASSERT_EQ(rows.size(), 1u);

    SeqScanNode scan(db.catalog().relation(db.lineitem), nullptr);
    auto li = runQuery(c, scan);
    const Schema &s = db.catalog().relation(db.lineitem).schema;
    double expected = 0;
    for (const auto &r : li) {
        auto sd = datumInt(r[s.indexOf("l_shipdate")]);
        double disc = datumReal(r[s.indexOf("l_discount")]);
        double qty = datumReal(r[s.indexOf("l_quantity")]);
        if (sd >= p.dateLo && sd < p.dateHi && disc >= p.discount - 0.011 &&
            disc <= p.discount + 0.011 && qty < p.quantity)
            expected += datumReal(r[s.indexOf("l_extendedprice")]) * disc;
    }
    EXPECT_NEAR(datumReal(rows[0][0]), expected, 1e-6);
}

TEST_F(UpdateFixture, UpdatesEmitWriteTraffic)
{
    sim::TraceStream stream;
    db::TracedMemory traced(db.space(), 0, stream);
    db::PrivateHeap ph(db.space(), 0);
    ExecContext c{traced, db.catalog(), ph, 301};
    tpcd::runUF1(db, c, 5, 11);
    auto counts = stream.counts();
    EXPECT_GT(counts.writes, 100u); // heap + index maintenance stores
    EXPECT_GT(counts.writesByClass[static_cast<int>(
                  sim::DataClass::Data)],
              0u);
    EXPECT_GT(counts.writesByClass[static_cast<int>(
                  sim::DataClass::Index)],
              0u);
    EXPECT_GT(counts.lockAcqs, 0u);
}

} // namespace
