/**
 * @file
 * Unit tests for the buffer manager (pins through the lookup hash under
 * BufMgrLock) and the lock manager (relation locks through LockHash /
 * XidHash under LockMgrLock).
 */

#include <gtest/gtest.h>

#include "db_test_util.hh"

namespace {

using namespace dss;
using dss::test::MemFixture;

struct BufFixture : MemFixture
{
    db::BufferManager bufmgr{mem, 64};
};

TEST(BufferManager, AllocBlockRegistersAndReturnsPage)
{
    BufFixture f;
    sim::Addr page = f.bufmgr.allocBlock(f.mem, 7, 0, sim::DataClass::Data);
    EXPECT_EQ(page % db::kPageBytes, 0u);
    EXPECT_EQ(f.bufmgr.numBlocks(), 1u);
    EXPECT_EQ(f.space.classOf(page), sim::DataClass::Data);
}

TEST(BufferManager, PinReturnsSamePageAsAlloc)
{
    BufFixture f;
    sim::Addr page = f.bufmgr.allocBlock(f.mem, 7, 3, sim::DataClass::Data);
    EXPECT_EQ(f.bufmgr.pinPage(f.mem, 7, 3), page);
    f.bufmgr.unpinPage(f.mem, 7, 3);
}

TEST(BufferManager, PinCountsNest)
{
    BufFixture f;
    f.bufmgr.allocBlock(f.mem, 7, 0, sim::DataClass::Data);
    f.bufmgr.pinPage(f.mem, 7, 0);
    f.bufmgr.pinPage(f.mem, 7, 0);
    EXPECT_EQ(f.bufmgr.pinCountOf(f.mem, 7, 0), 2);
    f.bufmgr.unpinPage(f.mem, 7, 0);
    EXPECT_EQ(f.bufmgr.pinCountOf(f.mem, 7, 0), 1);
    f.bufmgr.unpinPage(f.mem, 7, 0);
    EXPECT_EQ(f.bufmgr.pinCountOf(f.mem, 7, 0), 0);
}

TEST(BufferManager, DistinctRelBlockKeysResolve)
{
    BufFixture f;
    sim::Addr a = f.bufmgr.allocBlock(f.mem, 1, 0, sim::DataClass::Data);
    sim::Addr b = f.bufmgr.allocBlock(f.mem, 1, 1, sim::DataClass::Data);
    sim::Addr c = f.bufmgr.allocBlock(f.mem, 2, 0, sim::DataClass::Index);
    EXPECT_EQ(f.bufmgr.pinPage(f.mem, 1, 0), a);
    EXPECT_EQ(f.bufmgr.pinPage(f.mem, 1, 1), b);
    EXPECT_EQ(f.bufmgr.pinPage(f.mem, 2, 0), c);
}

TEST(BufferManager, MissingBlockThrows)
{
    BufFixture f;
    f.bufmgr.allocBlock(f.mem, 1, 0, sim::DataClass::Data);
    EXPECT_THROW(f.bufmgr.pinPage(f.mem, 1, 99), std::runtime_error);
}

TEST(BufferManager, UnpinWithoutPinThrows)
{
    BufFixture f;
    f.bufmgr.allocBlock(f.mem, 1, 0, sim::DataClass::Data);
    EXPECT_THROW(f.bufmgr.unpinPage(f.mem, 1, 0), std::runtime_error);
}

TEST(BufferManager, CapacityEnforced)
{
    MemFixture base;
    db::BufferManager small(base.mem, 2);
    small.allocBlock(base.mem, 1, 0, sim::DataClass::Data);
    small.allocBlock(base.mem, 1, 1, sim::DataClass::Data);
    EXPECT_THROW(small.allocBlock(base.mem, 1, 2, sim::DataClass::Data),
                 std::runtime_error);
}

TEST(BufferManager, PinTracesMetadataDiscipline)
{
    BufFixture f;
    f.bufmgr.allocBlock(f.mem, 1, 0, sim::DataClass::Data);
    f.stream.clear();
    f.bufmgr.pinPage(f.mem, 1, 0);
    f.bufmgr.unpinPage(f.mem, 1, 0);
    // The paper's Figure 7 metadata traffic: BufMgrLock acquire/release,
    // lookup-hash probes, descriptor reads and pin-count writes.
    EXPECT_EQ(f.countOps(sim::Op::LockAcq, sim::DataClass::LockSLock), 2u);
    EXPECT_EQ(f.countOps(sim::Op::LockRel, sim::DataClass::LockSLock), 2u);
    EXPECT_GT(f.countOps(sim::Op::Read, sim::DataClass::BufLook), 0u);
    EXPECT_GT(f.countOps(sim::Op::Read, sim::DataClass::BufDesc), 0u);
    EXPECT_EQ(f.countOps(sim::Op::Write, sim::DataClass::BufDesc), 2u);
}

TEST(BufferManager, ManyBlocksSurviveHashCollisions)
{
    MemFixture base;
    db::BufferManager bm(base.mem, 512);
    for (int b = 0; b < 512; ++b)
        bm.allocBlock(base.mem, 3, b, sim::DataClass::Data);
    for (int b = 0; b < 512; ++b) {
        bm.pinPage(base.mem, 3, b);
        bm.unpinPage(base.mem, 3, b);
    }
    EXPECT_EQ(bm.numBlocks(), 512u);
}

struct LockFixture : MemFixture
{
    db::LockManager lockmgr{mem, 32, 128};
};

TEST(LockManager, ReadLocksNeverConflict)
{
    LockFixture f;
    EXPECT_TRUE(f.lockmgr.lockRelation(f.mem, 1, 7, db::LockMode::Read));
    EXPECT_TRUE(f.lockmgr.lockRelation(f.mem, 2, 7, db::LockMode::Read));
    EXPECT_EQ(f.lockmgr.holdersOf(f.mem, 7), 2);
    f.lockmgr.unlockRelation(f.mem, 1, 7);
    f.lockmgr.unlockRelation(f.mem, 2, 7);
    EXPECT_EQ(f.lockmgr.holdersOf(f.mem, 7), 0);
}

TEST(LockManager, WriteLockConflictsWithReaders)
{
    LockFixture f;
    f.lockmgr.lockRelation(f.mem, 1, 7, db::LockMode::Read);
    EXPECT_THROW(f.lockmgr.lockRelation(f.mem, 2, 7, db::LockMode::Write),
                 std::runtime_error);
}

TEST(LockManager, ReadConflictsWithWriter)
{
    LockFixture f;
    f.lockmgr.lockRelation(f.mem, 1, 9, db::LockMode::Write);
    EXPECT_THROW(f.lockmgr.lockRelation(f.mem, 2, 9, db::LockMode::Read),
                 std::runtime_error);
}

TEST(LockManager, UnlockWithoutLockThrows)
{
    LockFixture f;
    EXPECT_THROW(f.lockmgr.unlockRelation(f.mem, 1, 7),
                 std::runtime_error);
}

TEST(LockManager, SameXidRelockNests)
{
    LockFixture f;
    f.lockmgr.lockRelation(f.mem, 5, 7, db::LockMode::Read);
    f.lockmgr.lockRelation(f.mem, 5, 7, db::LockMode::Read);
    EXPECT_EQ(f.lockmgr.holdersOf(f.mem, 7), 2);
    f.lockmgr.releaseAll(f.mem, 5);
    EXPECT_EQ(f.lockmgr.holdersOf(f.mem, 7), 0);
}

TEST(LockManager, ReleaseAllOnlyDropsOwnXid)
{
    LockFixture f;
    f.lockmgr.lockRelation(f.mem, 1, 7, db::LockMode::Read);
    f.lockmgr.lockRelation(f.mem, 2, 7, db::LockMode::Read);
    f.lockmgr.releaseAll(f.mem, 1);
    EXPECT_EQ(f.lockmgr.holdersOf(f.mem, 7), 1);
    f.lockmgr.releaseAll(f.mem, 2);
    EXPECT_EQ(f.lockmgr.holdersOf(f.mem, 7), 0);
}

TEST(LockManager, TracesLockHashAndXidHash)
{
    LockFixture f;
    f.stream.clear();
    f.lockmgr.lockRelation(f.mem, 1, 7, db::LockMode::Read);
    f.lockmgr.unlockRelation(f.mem, 1, 7);
    EXPECT_EQ(f.countOps(sim::Op::LockAcq, sim::DataClass::LockSLock), 2u);
    EXPECT_GT(f.countOps(sim::Op::Read, sim::DataClass::LockHash), 0u);
    EXPECT_GT(f.countOps(sim::Op::Write, sim::DataClass::LockHash), 0u);
    EXPECT_GT(f.countOps(sim::Op::Read, sim::DataClass::XidHash), 0u);
    EXPECT_GT(f.countOps(sim::Op::Write, sim::DataClass::XidHash), 0u);
}

TEST(LockManager, WriteConflictThrowsTypedQueryAbort)
{
    LockFixture f;
    f.lockmgr.lockRelation(f.mem, 1, 7, db::LockMode::Write);
    try {
        f.lockmgr.lockRelation(f.mem, 2, 7, db::LockMode::Write);
        FAIL() << "conflicting write lock was granted";
    } catch (const db::QueryAbort &qa) {
        EXPECT_EQ(qa.reason, db::QueryAbort::Reason::WriteConflict);
        EXPECT_EQ(qa.xid, 2u);
        EXPECT_EQ(qa.rel, 7);
    }
}

TEST(LockManager, ReadWriteConflictThrowsTypedQueryAbort)
{
    LockFixture f;
    f.lockmgr.lockRelation(f.mem, 1, 9, db::LockMode::Write);
    try {
        f.lockmgr.lockRelation(f.mem, 2, 9, db::LockMode::Read);
        FAIL() << "read lock granted under a writer";
    } catch (const db::QueryAbort &qa) {
        EXPECT_EQ(qa.reason, db::QueryAbort::Reason::ReadWriteConflict);
    }
}

TEST(LockManager, AbortedAcquireLeavesLockStateClean)
{
    LockFixture f;
    f.lockmgr.lockRelation(f.mem, 1, 7, db::LockMode::Write);
    EXPECT_THROW(f.lockmgr.lockRelation(f.mem, 2, 7, db::LockMode::Write),
                 db::QueryAbort);
    // The failed acquire must not have recorded a grant: once xid 1
    // commits, xid 2 can take the lock.
    f.lockmgr.releaseAll(f.mem, 1);
    EXPECT_TRUE(
        f.lockmgr.lockRelation(f.mem, 2, 7, db::LockMode::Write));
    f.lockmgr.releaseAll(f.mem, 2);
}

TEST(LockManager, ReleaseAllDropsWriteLocksWithWriteMode)
{
    // Regression: releaseAll used to unlock everything in Read mode,
    // underflowing the writer count of a write-locked relation.
    LockFixture f;
    f.lockmgr.lockRelation(f.mem, 1, 7, db::LockMode::Write);
    f.lockmgr.releaseAll(f.mem, 1);
    EXPECT_TRUE(f.lockmgr.lockRelation(f.mem, 2, 7, db::LockMode::Write));
    f.lockmgr.releaseAll(f.mem, 2);
}

TEST(LockManager, ManyRelationsAndXids)
{
    LockFixture f;
    for (db::RelId r = 1; r <= 20; ++r)
        for (db::Xid x = 1; x <= 4; ++x)
            f.lockmgr.lockRelation(f.mem, x, r, db::LockMode::Read);
    for (db::RelId r = 1; r <= 20; ++r)
        EXPECT_EQ(f.lockmgr.holdersOf(f.mem, r), 4);
    for (db::Xid x = 1; x <= 4; ++x)
        f.lockmgr.releaseAll(f.mem, x);
    for (db::RelId r = 1; r <= 20; ++r)
        EXPECT_EQ(f.lockmgr.holdersOf(f.mem, r), 0);
}

} // namespace
