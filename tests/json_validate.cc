/**
 * @file
 * Validate files produced by the bench --json / --trace flags.
 *
 * Usage: json_validate [--trace] <file>...
 *
 * Each file must parse with the obs JSON reader. Report files (default)
 * must carry a non-empty "runs" array whose entries contain stats with a
 * breakdown summing to ~100%. Trace files (--trace) must be Chrome trace
 * -event documents: a "traceEvents" array of "X"/"M" events with ts/dur.
 * Exit status 0 when every file is valid; 1 otherwise. Used by the CTest
 * smoke tests that run a real bench binary end to end.
 */

#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json.hh"

using dss::obs::Json;

namespace {

bool
fail(const std::string &path, const std::string &why)
{
    std::cerr << "json_validate: " << path << ": " << why << '\n';
    return false;
}

bool
validateReport(const std::string &path, const Json &doc)
{
    if (!doc.isObject())
        return fail(path, "report is not a JSON object");
    for (const char *key : {"bench", "scale", "config", "runs"})
        if (!doc.find(key))
            return fail(path, std::string("missing \"") + key + "\"");
    const Json *runs = doc.find("runs");
    // Model-check reports (bench/verify_protocol) run no workload:
    // "runs" is legitimately empty and the payload is the "verify"
    // array of search results instead.
    const Json *verify = doc.find("verify");
    if (verify) {
        if (!verify->isArray() || verify->size() == 0)
            return fail(path, "\"verify\" is not a non-empty array");
        for (std::size_t i = 0; i < verify->size(); ++i) {
            const Json &res = verify->at(i);
            for (const char *key : {"states", "transitions", "depth",
                                    "violations", "exhausted", "mutant"})
                if (!res.find(key))
                    return fail(path, std::string("verify entry lacks \"") +
                                          key + "\"");
            if (res.find("states")->asInt() == 0)
                return fail(path, "verify entry explored zero states");
        }
        if (runs->isArray() && runs->size() == 0)
            return true;
    }
    if (!runs->isArray() || runs->size() == 0)
        return fail(path, "\"runs\" is not a non-empty array");
    for (std::size_t i = 0; i < runs->size(); ++i) {
        const Json &run = runs->at(i);
        if (!run.find("label") || !run.find("stats"))
            return fail(path, "run entry lacks label/stats");
        const Json *bd = run.find("stats")->find("breakdown");
        if (!bd)
            return fail(path, "run stats lack a breakdown");
        const double sum = bd->find("busyPct")->asDouble() +
                           bd->find("memPct")->asDouble() +
                           bd->find("msyncPct")->asDouble();
        if (std::fabs(sum - 100.0) > 0.01)
            return fail(path, "breakdown sums to " + std::to_string(sum));
    }
    return true;
}

bool
validateTrace(const std::string &path, const Json &doc)
{
    if (!doc.isObject())
        return fail(path, "trace is not a JSON object");
    const Json *events = doc.find("traceEvents");
    if (!events || !events->isArray() || events->size() == 0)
        return fail(path, "missing or empty \"traceEvents\"");
    for (std::size_t i = 0; i < events->size(); ++i) {
        const Json &e = events->at(i);
        const Json *ph = e.find("ph");
        if (!ph)
            return fail(path, "event without \"ph\"");
        if (ph->asString() == "M")
            continue;
        if (ph->asString() != "X")
            return fail(path, "unexpected phase " + ph->asString());
        if (!e.find("ts") || !e.find("dur") || !e.find("pid") ||
            !e.find("tid") || !e.find("name"))
            return fail(path, "X event lacks ts/dur/pid/tid/name");
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool trace_mode = false;
    bool all_ok = true;
    int files = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--trace") {
            trace_mode = true;
            continue;
        }
        ++files;
        std::ifstream is(arg);
        if (!is) {
            all_ok = fail(arg, "cannot open");
            continue;
        }
        std::ostringstream buf;
        buf << is.rdbuf();
        Json doc;
        try {
            doc = Json::parse(buf.str());
        } catch (const std::exception &e) {
            all_ok = fail(arg, std::string("parse error: ") + e.what());
            continue;
        }
        const bool ok = trace_mode ? validateTrace(arg, doc)
                                   : validateReport(arg, doc);
        if (ok)
            std::cout << "json_validate: " << arg << ": OK\n";
        else
            all_ok = false;
    }
    if (files == 0) {
        std::cerr << "usage: json_validate [--trace] <file>...\n";
        return 2;
    }
    return all_ok ? 0 : 1;
}
