/**
 * @file
 * Executor tests: every physical operator checked against hand-computed
 * results on a small catalog, plus pipeline/rescan/projection mechanics.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "db_test_util.hh"

namespace {

using namespace dss;
using namespace dss::db;
using dss::test::CatalogFixture;

struct ExecFixture : CatalogFixture
{
    db::PrivateHeap privHeap{space, 0};

    ExecContext
    ctx()
    {
        return ExecContext{mem, catalog, privHeap, 42};
    }

    /** Drain a plan into host rows. */
    std::vector<std::vector<Datum>>
    run(ExecNode &plan)
    {
        ExecContext c = ctx();
        return runQuery(c, plan);
    }

    const Relation &
    rel()
    {
        return catalog.relation(table);
    }
};

TEST(SeqScan, UnfilteredReturnsEveryTuple)
{
    ExecFixture f;
    f.fill(500); // spans several pages
    SeqScanNode scan(f.rel(), nullptr);
    auto rows = f.run(scan);
    ASSERT_EQ(rows.size(), 500u);
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(datumInt(rows[i][0]), i); // insertion order preserved
}

TEST(SeqScan, PredicateFilters)
{
    ExecFixture f;
    f.fill(100);
    SeqScanNode scan(f.rel(),
                     cmp(CmpOp::Lt, col(f.rel().schema, "k"), litInt(10)));
    auto rows = f.run(scan);
    EXPECT_EQ(rows.size(), 10u);
}

TEST(SeqScan, OutputIsPrivateCopy)
{
    ExecFixture f;
    f.fill(5);
    SeqScanNode scan(f.rel(), nullptr);
    ExecContext c = f.ctx();
    scan.open(c);
    sim::Addr out = 0;
    ASSERT_TRUE(scan.next(c, out));
    EXPECT_FALSE(sim::AddressSpace::isShared(out));
    scan.close(c);
}

TEST(SeqScan, LocksAndPinsBalanced)
{
    ExecFixture f;
    f.fill(300);
    SeqScanNode scan(f.rel(), nullptr);
    auto rows = f.run(scan);
    EXPECT_EQ(rows.size(), 300u);
    EXPECT_EQ(f.lockmgr.holdersOf(f.mem, f.table), 0);
    for (db::BlockNo b : f.rel().blocks)
        EXPECT_EQ(f.bufmgr.pinCountOf(f.mem, f.table, b), 0);
}

TEST(SeqScan, RescanRestarts)
{
    ExecFixture f;
    f.fill(20);
    SeqScanNode scan(f.rel(), nullptr);
    ExecContext c = f.ctx();
    scan.open(c);
    sim::Addr out;
    for (int i = 0; i < 7; ++i)
        ASSERT_TRUE(scan.next(c, out));
    scan.rescan(c);
    int count = 0;
    while (scan.next(c, out))
        ++count;
    EXPECT_EQ(count, 20);
    scan.close(c);
}

struct IndexedFixture : ExecFixture
{
    RelId idx = 0;

    IndexedFixture()
    {
        fill(400);
        idx = catalog.createIndex(mem, "t_k", table,
                                  rel().schema.indexOf("k"));
    }
};

TEST(IndexScan, RangeScanReturnsRange)
{
    IndexedFixture f;
    IndexScanNode scan(f.rel(), f.catalog.index(f.idx), 100, 199, nullptr);
    auto rows = f.run(scan);
    ASSERT_EQ(rows.size(), 100u);
    for (std::size_t i = 0; i < rows.size(); ++i)
        EXPECT_EQ(datumInt(rows[i][0]), 100 + static_cast<int>(i));
}

TEST(IndexScan, ResidualPredicateApplies)
{
    IndexedFixture f;
    // k in [0, 99] and s == "r3" -> k % 10 == 3 -> 10 rows.
    IndexScanNode scan(f.rel(), f.catalog.index(f.idx), 0, 99,
                       cmp(CmpOp::Eq, col(f.rel().schema, "s"),
                           litStr("r3")));
    auto rows = f.run(scan);
    EXPECT_EQ(rows.size(), 10u);
}

TEST(IndexScan, BindKeyNarrowsToEquality)
{
    IndexedFixture f;
    IndexScanNode scan(f.rel(), f.catalog.index(f.idx),
                       IndexScanNode::kMinKey, IndexScanNode::kMaxKey,
                       nullptr);
    ExecContext c = f.ctx();
    scan.open(c);
    scan.bindKey(77);
    scan.rescan(c);
    sim::Addr out;
    ASSERT_TRUE(scan.next(c, out));
    EXPECT_EQ(datumInt(readAttr(f.mem, out, f.rel().schema, 0)), 77);
    EXPECT_FALSE(scan.next(c, out));
    // Rebind and rescan again: fresh results.
    scan.bindKey(5);
    scan.rescan(c);
    ASSERT_TRUE(scan.next(c, out));
    EXPECT_EQ(datumInt(readAttr(f.mem, out, f.rel().schema, 0)), 5);
    scan.close(c);
}

TEST(IndexScan, DrainedStaysDrainedUntilRescan)
{
    IndexedFixture f;
    IndexScanNode scan(f.rel(), f.catalog.index(f.idx), 7, 7, nullptr);
    ExecContext c = f.ctx();
    scan.open(c);
    sim::Addr out;
    ASSERT_TRUE(scan.next(c, out));
    EXPECT_FALSE(scan.next(c, out));
    EXPECT_FALSE(scan.next(c, out)); // must not re-seek by itself
    scan.close(c);
}

TEST(IndexScan, LocksTableAndIndex)
{
    IndexedFixture f;
    IndexScanNode scan(f.rel(), f.catalog.index(f.idx), 0, 10, nullptr);
    ExecContext c = f.ctx();
    scan.open(c);
    EXPECT_EQ(f.lockmgr.holdersOf(f.mem, f.table), 1);
    EXPECT_EQ(f.lockmgr.holdersOf(f.mem, f.idx), 1);
    scan.close(c);
    EXPECT_EQ(f.lockmgr.holdersOf(f.mem, f.table), 0);
    EXPECT_EQ(f.lockmgr.holdersOf(f.mem, f.idx), 0);
}

/** Second table for join tests: "u" = {k Int32, w Double}, k = 0..n-1
 * repeated fan_out times. */
struct JoinFixture : IndexedFixture
{
    RelId utable = 0;
    RelId uidx = 0;

    void
    makeU(int n, int fan_out)
    {
        Schema s;
        s.add("uk", AttrType::Int32).add("w", AttrType::Double);
        utable = catalog.createTable(mem, "u", s);
        for (int rep = 0; rep < fan_out; ++rep) {
            for (int k = 0; k < n; ++k) {
                catalog.insert(mem, utable,
                               {Datum{static_cast<std::int64_t>(k)},
                                Datum{k + rep * 0.25}});
            }
        }
        uidx = catalog.createIndex(mem, "u_k", utable, 0);
    }

    const Relation &
    urel()
    {
        return catalog.relation(utable);
    }
};

TEST(NestedLoopJoin, IndexInnerMatchesFanOut)
{
    JoinFixture f;
    f.makeU(50, 3);
    auto outer = std::make_unique<SeqScanNode>(
        f.rel(), cmp(CmpOp::Lt, col(f.rel().schema, "k"), litInt(50)));
    auto inner = std::make_unique<IndexScanNode>(
        f.urel(), f.catalog.index(f.uidx), IndexScanNode::kMinKey,
        IndexScanNode::kMaxKey, nullptr);
    std::vector<ProjItem> proj{{false, 0}, {true, 1}};
    NestedLoopJoinNode join(std::move(outer), std::move(inner),
                            f.rel().schema.indexOf("k"), nullptr, proj);
    auto rows = f.run(join);
    EXPECT_EQ(rows.size(), 150u); // 50 outer x 3 matches
    EXPECT_EQ(join.schema().numAttrs(), 2u);
}

TEST(NestedLoopJoin, NoMatchesYieldsEmpty)
{
    JoinFixture f;
    f.makeU(10, 1);
    auto outer = std::make_unique<SeqScanNode>(
        f.rel(), cmp(CmpOp::Ge, col(f.rel().schema, "k"), litInt(300)));
    auto inner = std::make_unique<IndexScanNode>(
        f.urel(), f.catalog.index(f.uidx), IndexScanNode::kMinKey,
        IndexScanNode::kMaxKey, nullptr);
    std::vector<ProjItem> proj{{false, 0}};
    NestedLoopJoinNode join(std::move(outer), std::move(inner),
                            f.rel().schema.indexOf("k"), nullptr, proj);
    auto rows = f.run(join);
    EXPECT_TRUE(rows.empty()); // outer keys 300..399 have no inner match
}

TEST(NestedLoopJoin, ExtraPredicateOnProjectedRow)
{
    JoinFixture f;
    f.makeU(20, 1);
    auto outer = std::make_unique<SeqScanNode>(
        f.rel(), cmp(CmpOp::Lt, col(f.rel().schema, "k"), litInt(20)));
    auto inner = std::make_unique<IndexScanNode>(
        f.urel(), f.catalog.index(f.uidx), IndexScanNode::kMinKey,
        IndexScanNode::kMaxKey, nullptr);
    std::vector<ProjItem> proj{{false, 0}, {true, 1}};
    NestedLoopJoinNode join(std::move(outer), std::move(inner),
                            f.rel().schema.indexOf("k"),
                            cmp(CmpOp::Lt, attr(1), litReal(5.0)), proj);
    auto rows = f.run(join);
    EXPECT_EQ(rows.size(), 5u); // w = 0..19, keep w < 5
}

TEST(MergeJoin, JoinsSortedStreamsWithDuplicates)
{
    JoinFixture f;
    f.makeU(100, 2); // two duplicates per key on the right
    // Left: t filtered to k < 100, sorted by k (SeqScan emits in order).
    auto left = std::make_unique<SeqScanNode>(
        f.rel(), cmp(CmpOp::Lt, col(f.rel().schema, "k"), litInt(100)));
    // Right: u in index order (sorted by uk).
    auto right = std::make_unique<IndexScanNode>(
        f.urel(), f.catalog.index(f.uidx), IndexScanNode::kMinKey,
        IndexScanNode::kMaxKey, nullptr);
    std::vector<ProjItem> proj{{false, 0}, {true, 0}, {true, 1}};
    MergeJoinNode join(std::move(left), std::move(right), 0, 0, proj);
    auto rows = f.run(join);
    ASSERT_EQ(rows.size(), 200u);
    for (const auto &r : rows)
        EXPECT_EQ(datumInt(r[0]), datumInt(r[1])); // keys really match
}

TEST(MergeJoin, DisjointKeysProduceNothing)
{
    JoinFixture f;
    f.makeU(10, 1);
    auto left = std::make_unique<SeqScanNode>(
        f.rel(), cmp(CmpOp::Ge, col(f.rel().schema, "k"), litInt(200)));
    auto right = std::make_unique<IndexScanNode>(
        f.urel(), f.catalog.index(f.uidx), IndexScanNode::kMinKey,
        IndexScanNode::kMaxKey, nullptr);
    std::vector<ProjItem> proj{{false, 0}};
    MergeJoinNode join(std::move(left), std::move(right), 0, 0, proj);
    EXPECT_TRUE(f.run(join).empty());
}

TEST(HashJoin, MatchesNestedLoopResult)
{
    JoinFixture f;
    f.makeU(60, 2);
    auto probe = std::make_unique<SeqScanNode>(
        f.rel(), cmp(CmpOp::Lt, col(f.rel().schema, "k"), litInt(60)));
    auto build = std::make_unique<SeqScanNode>(f.urel(), nullptr);
    std::vector<ProjItem> proj{{false, 0}, {true, 1}};
    HashJoinNode join(std::move(probe), std::move(build), 0, 0, proj);
    auto rows = f.run(join);
    EXPECT_EQ(rows.size(), 120u); // 60 probe keys x 2 build matches
}

TEST(HashJoin, EmptyBuildSideYieldsNothing)
{
    JoinFixture f;
    f.makeU(10, 1);
    auto probe = std::make_unique<SeqScanNode>(f.rel(), nullptr);
    auto build = std::make_unique<SeqScanNode>(
        f.urel(), cmp(CmpOp::Lt, col(f.urel().schema, "uk"), litInt(0)));
    std::vector<ProjItem> proj{{false, 0}};
    HashJoinNode join(std::move(probe), std::move(build), 0, 0, proj);
    EXPECT_TRUE(f.run(join).empty());
}

TEST(Sort, OrdersAscendingByDefault)
{
    ExecFixture f;
    // Insert keys in scrambled order.
    for (int i = 0; i < 200; ++i) {
        int k = (i * 73) % 200;
        f.catalog.insert(f.mem, f.table,
                         {Datum{static_cast<std::int64_t>(k)},
                          Datum{k * 1.0}, Datum{std::string("x")}});
    }
    auto scan = std::make_unique<SeqScanNode>(f.rel(), nullptr);
    SortNode sort(std::move(scan), {0});
    auto rows = f.run(sort);
    ASSERT_EQ(rows.size(), 200u);
    for (std::size_t i = 1; i < rows.size(); ++i)
        EXPECT_LE(datumInt(rows[i - 1][0]), datumInt(rows[i][0]));
}

TEST(Sort, DescendingAndMultiKey)
{
    ExecFixture f;
    f.fill(100);
    auto scan = std::make_unique<SeqScanNode>(f.rel(), nullptr);
    // Sort by s asc (10 groups), then k desc within each group.
    SortNode sort(std::move(scan),
                  {f.rel().schema.indexOf("s"),
                   f.rel().schema.indexOf("k")},
                  {false, true});
    auto rows = f.run(sort);
    ASSERT_EQ(rows.size(), 100u);
    for (std::size_t i = 1; i < rows.size(); ++i) {
        int c = compareDatum(rows[i - 1][2], rows[i][2]);
        EXPECT_LE(c, 0);
        if (c == 0) {
            EXPECT_GE(datumInt(rows[i - 1][0]), datumInt(rows[i][0]));
        }
    }
}

TEST(Sort, EmptyInputYieldsNothing)
{
    ExecFixture f;
    auto scan = std::make_unique<SeqScanNode>(f.rel(), nullptr);
    SortNode sort(std::move(scan), {0});
    EXPECT_TRUE(f.run(sort).empty());
}

TEST(Sort, StableForEqualKeys)
{
    ExecFixture f;
    f.fill(50);
    auto scan = std::make_unique<SeqScanNode>(f.rel(), nullptr);
    // Sort by s only: within a group, insertion (k) order must persist.
    SortNode sort(std::move(scan), {f.rel().schema.indexOf("s")});
    auto rows = f.run(sort);
    for (std::size_t i = 1; i < rows.size(); ++i) {
        if (compareDatum(rows[i - 1][2], rows[i][2]) == 0) {
            EXPECT_LT(datumInt(rows[i - 1][0]), datumInt(rows[i][0]));
        }
    }
}

TEST(Aggregate, GlobalSumCountAvgMinMax)
{
    ExecFixture f;
    f.fill(10); // v = 0, 1.5, ..., 13.5
    auto scan = std::make_unique<SeqScanNode>(f.rel(), nullptr);
    std::vector<AggSpec> aggs;
    aggs.push_back({AggSpec::Op::Sum, attr(1), "sum_v"});
    aggs.push_back({AggSpec::Op::Count, nullptr, "n"});
    aggs.push_back({AggSpec::Op::Avg, attr(1), "avg_v"});
    aggs.push_back({AggSpec::Op::Min, attr(1), "min_v"});
    aggs.push_back({AggSpec::Op::Max, attr(1), "max_v"});
    AggregateNode agg(std::move(scan), {}, std::move(aggs));
    auto rows = f.run(agg);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_DOUBLE_EQ(datumReal(rows[0][0]), 67.5); // sum 0..13.5
    EXPECT_EQ(datumInt(rows[0][1]), 10);
    EXPECT_DOUBLE_EQ(datumReal(rows[0][2]), 6.75);
    EXPECT_DOUBLE_EQ(datumReal(rows[0][3]), 0.0);
    EXPECT_DOUBLE_EQ(datumReal(rows[0][4]), 13.5);
}

TEST(Aggregate, GlobalOverEmptyInputYieldsOneRow)
{
    ExecFixture f;
    auto scan = std::make_unique<SeqScanNode>(f.rel(), nullptr);
    std::vector<AggSpec> aggs;
    aggs.push_back({AggSpec::Op::Count, nullptr, "n"});
    aggs.push_back({AggSpec::Op::Sum, attr(1), "s"});
    AggregateNode agg(std::move(scan), {}, std::move(aggs));
    auto rows = f.run(agg);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(datumInt(rows[0][0]), 0);
    EXPECT_DOUBLE_EQ(datumReal(rows[0][1]), 0.0);
}

TEST(Aggregate, GroupedOverSortedInput)
{
    ExecFixture f;
    f.fill(100); // s groups r0..r9, 10 rows each
    auto scan = std::make_unique<SeqScanNode>(f.rel(), nullptr);
    auto sort = std::make_unique<SortNode>(
        std::move(scan),
        std::vector<std::size_t>{f.rel().schema.indexOf("s")});
    std::vector<AggSpec> aggs;
    aggs.push_back({AggSpec::Op::Count, nullptr, "n"});
    aggs.push_back({AggSpec::Op::Sum, attr(0), "sum_k"});
    AggregateNode agg(std::move(sort), {f.rel().schema.indexOf("s")},
                      std::move(aggs));
    auto rows = f.run(agg);
    ASSERT_EQ(rows.size(), 10u);
    double total_k = 0;
    for (const auto &r : rows) {
        EXPECT_EQ(datumInt(r[1]), 10); // 10 rows per group
        total_k += datumReal(r[2]);
    }
    EXPECT_DOUBLE_EQ(total_k, 99.0 * 100 / 2);
}

TEST(Aggregate, PureGroupEmitsOneRowPerGroup)
{
    ExecFixture f;
    f.fill(40);
    auto scan = std::make_unique<SeqScanNode>(f.rel(), nullptr);
    auto sort = std::make_unique<SortNode>(
        std::move(scan),
        std::vector<std::size_t>{f.rel().schema.indexOf("s")});
    AggregateNode group(std::move(sort), {f.rel().schema.indexOf("s")},
                        {});
    auto rows = f.run(group);
    EXPECT_EQ(rows.size(), 10u);
}

TEST(Aggregate, RejectsEmptySpecification)
{
    ExecFixture f;
    auto scan = std::make_unique<SeqScanNode>(f.rel(), nullptr);
    EXPECT_THROW(AggregateNode(std::move(scan), {}, {}),
                 std::invalid_argument);
}

TEST(PlanTree, CollectLogicalOpsWalksChildren)
{
    JoinFixture f;
    f.makeU(10, 1);
    auto outer = std::make_unique<SeqScanNode>(f.rel(), nullptr);
    auto inner = std::make_unique<IndexScanNode>(
        f.urel(), f.catalog.index(f.uidx), IndexScanNode::kMinKey,
        IndexScanNode::kMaxKey, nullptr);
    std::vector<ProjItem> proj{{false, 0}};
    auto join = std::make_unique<NestedLoopJoinNode>(
        std::move(outer), std::move(inner), 0, nullptr, proj);
    auto sort = std::make_unique<SortNode>(std::move(join),
                                           std::vector<std::size_t>{0});
    std::vector<AggSpec> aggs;
    aggs.push_back({AggSpec::Op::Count, nullptr, "n"});
    AggregateNode root(std::move(sort), {0}, std::move(aggs));

    auto ops = collectLogicalOps(root);
    auto has = [&](LogicalOp op) {
        return std::find(ops.begin(), ops.end(), op) != ops.end();
    };
    EXPECT_TRUE(has(LogicalOp::SeqScanSelect));
    EXPECT_TRUE(has(LogicalOp::IndexScanSelect));
    EXPECT_TRUE(has(LogicalOp::NestedLoopJoin));
    EXPECT_TRUE(has(LogicalOp::Sort));
    EXPECT_TRUE(has(LogicalOp::Group));
    EXPECT_TRUE(has(LogicalOp::Aggregate));
    EXPECT_FALSE(has(LogicalOp::MergeJoin));
    EXPECT_FALSE(has(LogicalOp::HashJoin));
}

TEST(PlanTree, RescanUnsupportedNodesThrow)
{
    ExecFixture f;
    auto scan = std::make_unique<SeqScanNode>(f.rel(), nullptr);
    std::vector<AggSpec> aggs;
    aggs.push_back({AggSpec::Op::Count, nullptr, "n"});
    AggregateNode agg(std::move(scan), {}, std::move(aggs));
    ExecContext c = f.ctx();
    EXPECT_THROW(agg.rescan(c), std::logic_error);
    EXPECT_THROW(agg.bindKey(1), std::logic_error);
}

} // namespace
