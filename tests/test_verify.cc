/**
 * @file
 * Explicit-state protocol checker (src/verify/): canonicalization and
 * symmetry reduction, pinned reachable-state counts for the clean small
 * configurations, checker soundness via the four protocol mutants, and
 * counterexample replayability.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/error.hh"
#include "sim/spec.hh"
#include "verify/model.hh"
#include "verify/verifier.hh"

namespace {

using namespace dss;
using verify::AbstractState;
using verify::Event;
using verify::EvKind;
using verify::Mutant;
using verify::ProtocolModel;
using verify::ProtocolVerifier;
using verify::VerifyOptions;
using verify::VerifyResult;

ProtocolModel::Options
smallOpts(unsigned procs = 2, unsigned lines = 1, unsigned wb = 1)
{
    ProtocolModel::Options o;
    o.procs = procs;
    o.lines = lines;
    o.wbEntries = wb;
    return o;
}

/** Relabel every processor-indexed field of @p s through @p perm. */
AbstractState
permuteProcs(const AbstractState &s, const std::vector<sim::ProcId> &perm)
{
    AbstractState t = s;
    for (std::size_t i = 0; i < s.lines.size(); ++i) {
        const verify::LineState &a = s.lines[i];
        verify::LineState &b = t.lines[i];
        if (a.dir == 2)
            b.owner = perm[a.owner];
        b.sharers = 0;
        for (sim::ProcId p = 0; p < perm.size(); ++p)
            if (a.sharers & (1u << p))
                b.sharers |= 1u << perm[p];
        for (sim::ProcId p = 0; p < perm.size(); ++p) {
            b.coh[perm[p]] = a.coh[p];
            b.upper[perm[p]] = a.upper[p];
        }
    }
    for (sim::ProcId p = 0; p < perm.size(); ++p) {
        t.cont[perm[p]] = s.cont[p];
        t.wb[perm[p]] = s.wb[p];
    }
    if (s.lockHeld)
        t.lockHolder = perm[s.lockHolder];
    for (std::size_t i = 0; i < s.waiters.size(); ++i)
        t.waiters[i] = perm[s.waiters[i]];
    return t;
}

/** A deliberately asymmetric 3-processor state exercising every field. */
AbstractState
sampleState(const ProtocolModel &model)
{
    AbstractState s = model.initial();
    s.lines[0].dir = 2;
    s.lines[0].owner = 1;
    s.lines[0].sharers = 1u << 1;
    s.lines[0].coh[1] = 2;
    s.lines[0].upper[1][0] = 1;
    s.lines[1].dir = 1;
    s.lines[1].sharers = (1u << 0) | (1u << 2);
    s.lines[1].coh[0] = 1;
    s.lines[1].coh[2] = 1;
    s.wb[1] = {0};
    s.cont[0] = verify::Cont::Blocked;
    s.cont[2] = verify::Cont::Holding;
    s.lockHeld = true;
    s.lockHolder = 2;
    s.waiters = {0};
    return s;
}

TEST(VerifyCanonical, EncodeDecodeRoundTrips)
{
    ProtocolModel model(sim::MachineConfig::baseline(), smallOpts(3, 2));
    const AbstractState s = sampleState(model);
    const verify::Canonical c = verify::canonicalize(s, model.geom());
    const AbstractState d = verify::decodeState(c.bytes, model.geom());
    // Decoding the canonical bytes and re-canonicalizing must be a
    // fixed point (identity relabeling wins on an already-canonical
    // state).
    const verify::Canonical c2 = verify::canonicalize(d, model.geom());
    EXPECT_EQ(c.bytes, c2.bytes);
    for (sim::ProcId p = 0; p < 3; ++p)
        EXPECT_EQ(c2.perm[p], p);
}

TEST(VerifyCanonical, ProcessorPermutationIsInvariant)
{
    ProtocolModel model(sim::MachineConfig::baseline(), smallOpts(3, 2));
    const AbstractState s = sampleState(model);
    const std::string canon = verify::canonicalize(s, model.geom()).bytes;
    std::vector<sim::ProcId> perm = {0, 1, 2};
    while (std::next_permutation(perm.begin(), perm.end())) {
        const AbstractState t = permuteProcs(s, perm);
        EXPECT_EQ(verify::canonicalize(t, model.geom()).bytes, canon);
    }
}

TEST(VerifyCanonical, DistinctStatesStayDistinct)
{
    ProtocolModel model(sim::MachineConfig::baseline(), smallOpts(3, 2));
    const AbstractState s = sampleState(model);
    AbstractState t = s;
    t.lines[0].coh[1] = 1; // owner's copy clean instead of dirty
    EXPECT_NE(verify::canonicalize(s, model.geom()).bytes,
              verify::canonicalize(t, model.geom()).bytes);
}

TEST(VerifyModel, RejectsGeometryTheModelCannotKeepConflictFree)
{
    EXPECT_THROW(ProtocolModel(sim::MachineConfig::baseline(),
                               smallOpts(2, 7)),
                 sim::SimError);
    EXPECT_THROW(ProtocolModel(sim::MachineConfig::baseline(),
                               smallOpts(7, 1)),
                 sim::SimError);
}

TEST(VerifyClean, PaperPresetSmallSpaceIsExhaustedWithNoViolations)
{
    ProtocolModel model(sim::MachineConfig::baseline(), smallOpts());
    VerifyResult res = ProtocolVerifier(model, {}).run();
    EXPECT_TRUE(res.exhausted);
    EXPECT_EQ(res.violations, 0u);
    EXPECT_TRUE(res.cex.events.empty());
    // Pinned reachable-space size: a change here means the protocol (or
    // the model's event alphabet) changed — re-derive, don't just bump.
    EXPECT_EQ(res.states, 2281u);
    EXPECT_EQ(res.transitions, 12710u);
    EXPECT_EQ(res.depth, 13u);
}

TEST(VerifyClean, ModernPresetMatchesThePinnedCount)
{
    // The three-level modern hierarchy reaches the same abstract space:
    // with one targeted subline per line the extra levels add no
    // distinguishable states, only latency (which the abstraction drops).
    sim::MachineSpec spec = sim::machinePreset("modern");
    ProtocolModel model(spec.config, smallOpts());
    VerifyResult res = ProtocolVerifier(model, {}).run();
    EXPECT_TRUE(res.exhausted);
    EXPECT_EQ(res.violations, 0u);
    EXPECT_EQ(res.states, 2281u);
}

TEST(VerifyClean, DeeperWriteBufferGrowsTheSpaceDeterministically)
{
    ProtocolModel a(sim::MachineConfig::baseline(), smallOpts(2, 1, 2));
    VerifyResult ra = ProtocolVerifier(a, {}).run();
    EXPECT_TRUE(ra.exhausted);
    EXPECT_EQ(ra.violations, 0u);
    EXPECT_EQ(ra.states, 10300u);
    // Bit-for-bit repeatable: same states, transitions and depth.
    ProtocolModel b(sim::MachineConfig::baseline(), smallOpts(2, 1, 2));
    VerifyResult rb = ProtocolVerifier(b, {}).run();
    EXPECT_EQ(rb.states, ra.states);
    EXPECT_EQ(rb.transitions, ra.transitions);
    EXPECT_EQ(rb.depth, ra.depth);
    EXPECT_EQ(rb.toJson().dump(), ra.toJson().dump());
}

TEST(VerifyClean, DepthBoundMakesTheRunNonExhaustive)
{
    ProtocolModel model(sim::MachineConfig::baseline(), smallOpts());
    VerifyOptions vo;
    vo.maxDepth = 3;
    VerifyResult res = ProtocolVerifier(model, vo).run();
    EXPECT_FALSE(res.exhausted);
    EXPECT_EQ(res.violations, 0u);
    EXPECT_LT(res.states, 2281u);
}

class VerifyMutants : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(VerifyMutants, EveryMutantIsCaughtWithAReplayableCounterexample)
{
    const auto mutant = static_cast<Mutant>(GetParam());
    ProtocolModel::Options mo = smallOpts();
    // The reorder mutation swaps the two oldest pending stores; give it
    // a second slot so the corruption is reachable.
    mo.wbEntries = mutant == Mutant::WbReorder ? 2 : 1;
    mo.mutant = mutant;
    ProtocolModel model(sim::MachineConfig::baseline(), mo);
    VerifyResult res = ProtocolVerifier(model, {}).run();
    ASSERT_GT(res.violations, 0u)
        << "mutant " << verify::mutantName(mutant) << " escaped";
    ASSERT_FALSE(res.cex.events.empty());
    // BFS counterexamples are short: each mutation is one broken step
    // plus at most one set-up access.
    EXPECT_LE(res.cex.events.size(), 3u);

    // The counterexample must replay: applying the concrete event path
    // from the cold state reproduces the violation on the final step and
    // on no earlier one.
    AbstractState cur = model.initial();
    for (std::size_t i = 0; i < res.cex.events.size(); ++i) {
        ProtocolModel::StepResult step = model.apply(cur, res.cex.events[i]);
        if (i + 1 < res.cex.events.size())
            EXPECT_EQ(step.violations, 0u) << "premature violation at " << i;
        else
            EXPECT_GT(step.violations, 0u) << "counterexample did not replay";
        cur = step.next;
    }
}

INSTANTIATE_TEST_SUITE_P(AllMutants, VerifyMutants,
                         ::testing::Values(1u, 2u, 3u, 4u),
                         [](const auto &info) {
                             std::string n(verify::mutantName(
                                 static_cast<Mutant>(info.param)));
                             std::replace(n.begin(), n.end(), '-', '_');
                             return n;
                         });

TEST(VerifyTraces, CounterexamplePathsEmitPerProcessorTraceStreams)
{
    ProtocolModel model(sim::MachineConfig::baseline(), smallOpts());
    const std::vector<Event> path = {
        {EvKind::Load, 0, 0, 0},
        {EvKind::Store, 1, 0, 0},
        {EvKind::LockAcq, 0, 1, 0},
        {EvKind::LockRel, 0, 1, 0},
    };
    std::vector<sim::TraceStream> streams = model.traces(path);
    ASSERT_EQ(streams.size(), 2u);
    auto count = [&](unsigned p, sim::Op op) {
        std::size_t n = 0;
        for (const sim::TraceEntry &e : streams[p].entries())
            n += e.op == op ? 1 : 0;
        return n;
    };
    EXPECT_EQ(count(0, sim::Op::Read), 1u);
    EXPECT_EQ(count(1, sim::Op::Write), 1u);
    EXPECT_EQ(count(0, sim::Op::LockAcq), 1u);
    EXPECT_EQ(count(0, sim::Op::LockRel), 1u);
    // Busy padding gives each event its own replay slot: the streams are
    // valid Machine input (replayed end-to-end by the bench smoke test).
    EXPECT_GT(count(0, sim::Op::Busy), 0u);
}

} // namespace
