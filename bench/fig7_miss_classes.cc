/**
 * @file
 * Figure 7: read misses in the primary and secondary caches classified by
 * the data structure missed on (Priv, Data, Index, BufDesc, BufLook,
 * LockHash, XidHash, LockSLock) and by miss type (Cold, Conf, Cohe), for
 * Q3, Q6 and Q12 on the baseline machine. Also prints the absolute miss
 * rates quoted in Section 5.1 (L1 ~3-6%, L2 global ~0.5-0.8%).
 *
 * Paper reference shapes: L1 misses dominated by Priv/Conf everywhere;
 * L2: Q3 mixes metadata (Cohe, LockSLock prominent) + Index + Data, while
 * Q6/Q12 are overwhelmingly Data/Cold.
 */

#include <iostream>

#include "harness/bench_main.hh"
#include "harness/options.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace dss;

int
run(harness::BenchContext &ctx)
{
    harness::BenchOptions &opts = ctx.opts;
    harness::ObsSession &session = ctx.session;

    std::cout << "=== Figure 7: miss classification by data structure "
                 "(baseline machine) ===\n\n";

    harness::Workload wl(opts.scaleConfig(), 4);
    const sim::MachineConfig cfg = ctx.config();
    session.usePlacement(
        harness::makePlacement(opts, cfg, &wl.db().space()));
    session.wireMemprof(cfg, &wl.db().catalog());

    harness::TextTable rates(
        {"query", "L1 miss rate %", "L2 global miss rate %"});

    for (tpcd::QueryId q : {tpcd::QueryId::Q3, tpcd::QueryId::Q6,
                            tpcd::QueryId::Q12}) {
        harness::TraceSet traces = wl.trace(q);
        sim::SimStats stats =
            harness::runCold(cfg, traces, session.runOptions());
        session.addRun(tpcd::queryName(q), stats);
        sim::ProcStats agg = stats.aggregate();

        harness::printMissTable(
            std::cout, tpcd::queryName(q) + ": primary cache read misses",
            agg.l1Misses());
        std::cout << '\n';
        harness::printMissTable(
            std::cout,
            tpcd::queryName(q) + ": secondary cache read misses",
            agg.l2Misses());
        std::cout << '\n';

        rates.addRow({tpcd::queryName(q),
                      harness::fixed(100 * agg.l1MissRate(), 2),
                      harness::fixed(100 * agg.l2GlobalMissRate(), 2)});
    }

    std::cout << "Section 5.1 absolute miss rates "
                 "(paper: L1 5.5/3.4/4.8%, L2 0.8/0.6/0.5%)\n";
    rates.print(std::cout);
    return session.finish(cfg, std::cerr) ? 0 : 1;
}

int
main(int argc, char **argv)
{
    return harness::benchMain("fig7_miss_classes", argc, argv,
                                 harness::BenchOptions::kAll, run);
}
