/**
 * @file
 * Component microbenchmarks for the DBMS engine (google-benchmark):
 * B-tree probes, buffer-manager pin/unpin, sequential scan throughput and
 * database population speed. Host performance of the engine, not
 * simulated time.
 */

#include <benchmark/benchmark.h>

#include "harness/guard.hh"

#include "harness/workload.hh"
#include "tpcd/dbgen.hh"
#include "tpcd/queries.hh"

using namespace dss;

namespace {

/** Shared fixture: one tiny database for all engine benchmarks. */
tpcd::TpcdDb &
testDb()
{
    static tpcd::TpcdDb db(tpcd::ScaleConfig::tiny(), 1);
    return db;
}

void
BM_BTreeLookup(benchmark::State &state)
{
    tpcd::TpcdDb &db = testDb();
    sim::NullSink sink;
    db::TracedMemory mem(db.space(), 0, sink);
    const db::BTree &idx = db.catalog().index(db.idxOrdersKey);
    std::int64_t key = 1;
    const auto n = static_cast<std::int64_t>(db.scale().orders());
    for (auto _ : state) {
        benchmark::DoNotOptimize(idx.lookupAll(mem, key));
        key = key % n + 1;
    }
}
BENCHMARK(BM_BTreeLookup);

void
BM_BufferPinUnpin(benchmark::State &state)
{
    tpcd::TpcdDb &db = testDb();
    sim::NullSink sink;
    db::TracedMemory mem(db.space(), 0, sink);
    for (auto _ : state) {
        sim::Addr page = db.bufmgr().pinPage(mem, db.lineitem, 0);
        benchmark::DoNotOptimize(page);
        db.bufmgr().unpinPage(mem, db.lineitem, 0);
    }
}
BENCHMARK(BM_BufferPinUnpin);

void
BM_LockUnlockRelation(benchmark::State &state)
{
    tpcd::TpcdDb &db = testDb();
    sim::NullSink sink;
    db::TracedMemory mem(db.space(), 0, sink);
    for (auto _ : state) {
        db.lockmgr().lockRelation(mem, 7, db.orders, db::LockMode::Read);
        db.lockmgr().unlockRelation(mem, 7, db.orders);
    }
}
BENCHMARK(BM_LockUnlockRelation);

void
BM_Q6Execute(benchmark::State &state)
{
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 1);
    std::uint64_t seed = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(wl.execute(tpcd::QueryId::Q6, seed++));
    }
}
BENCHMARK(BM_Q6Execute);

void
BM_Q6Trace(benchmark::State &state)
{
    harness::Workload wl(tpcd::ScaleConfig::tiny(), 1);
    std::uint64_t seed = 1;
    std::int64_t entries = 0;
    for (auto _ : state) {
        sim::TraceStream t = wl.traceOne(tpcd::QueryId::Q6, 0, seed++);
        entries += static_cast<std::int64_t>(t.size());
        benchmark::DoNotOptimize(t.size());
    }
    state.SetItemsProcessed(entries);
}
BENCHMARK(BM_Q6Trace);

void
BM_DbGenTiny(benchmark::State &state)
{
    for (auto _ : state) {
        tpcd::TpcdDb db(tpcd::ScaleConfig::tiny(), 1);
        benchmark::DoNotOptimize(db.dataBytes());
    }
}
BENCHMARK(BM_DbGenTiny);

} // namespace

int
main(int argc, char **argv)
{
    return dss::harness::guardedMain(
        "microbench_db", argc, argv, [](int c, char **v) -> int {
            benchmark::Initialize(&c, v);
            if (benchmark::ReportUnrecognizedArguments(c, v))
                return 1;
            benchmark::RunSpecifiedBenchmarks();
            benchmark::Shutdown();
            return 0;
        });
}
