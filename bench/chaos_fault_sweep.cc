/**
 * @file
 * Chaos sweep: run the paper's headline queries (Q3, Q6, Q12) under
 * increasing deterministic fault-injection rates with the coherence
 * invariant checker always on.
 *
 * The claim being exercised: perturbing *timing* (latency spikes, forced
 * evictions, write-buffer stall storms, stretched lock hold times) and
 * *control flow* (injected query aborts, retried with backoff) must never
 * perturb *correctness* — the protocol invariants (SWMR,
 * directory/cache agreement, write-buffer FIFO order, lock-table
 * consistency) hold at every checked state, at every fault rate, on both
 * engines. Any violation makes the bench exit nonzero.
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_main.hh"
#include "harness/options.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace dss;

int
run(harness::BenchContext &ctx)
{
    harness::BenchOptions &opts = ctx.opts;
    harness::ObsSession &session = ctx.session;

    std::cout << "=== Chaos sweep: fault injection under invariant "
                 "checking ===\n\n";

    harness::Workload wl(opts.scaleConfig(), 4);
    const sim::MachineConfig cfg = ctx.config();
    session.usePlacement(
        harness::makePlacement(opts, cfg, &wl.db().space()));
    session.wireMemprof(cfg, &wl.db().catalog());

    // Sweep a fixed ladder of rates, plus the user's --fault-rate when it
    // is not already on the ladder. Rate 0 is the control run.
    std::vector<double> rates = {0.0, 1e-4, 1e-3, 1e-2};
    if (opts.faultRate > 0.0) {
        bool present = false;
        for (double r : rates)
            present = present || r == opts.faultRate;
        if (!present)
            rates.push_back(opts.faultRate);
    }

    const tpcd::QueryId queries[] = {tpcd::QueryId::Q3, tpcd::QueryId::Q6,
                                     tpcd::QueryId::Q12};

    harness::TextTable tab({"query", "fault rate", "faults", "retries",
                            "exec cycles", "delta%", "violations"});
    std::uint64_t total_violations = 0;

    for (tpcd::QueryId q : queries) {
        harness::TraceSet traces = wl.trace(q);
        double base_cycles = 0;
        for (double rate : rates) {
            sim::FaultConfig fc = opts.faultConfig();
            fc.rate = rate;
            sim::FaultPlan plan(fc);
            sim::InvariantChecker checker;

            harness::RunOptions ro = session.runOptions();
            ro.checker = &checker;
            ro.faults = rate > 0.0 ? &plan : nullptr;

            sim::SimStats stats = harness::runCold(cfg, traces, ro);
            session.addRun(std::string(tpcd::queryName(q)) + "@rate=" +
                               harness::fixed(rate, 4),
                           stats);

            const auto cycles =
                static_cast<double>(stats.aggregate().totalCycles());
            if (rate == 0.0)
                base_cycles = cycles;
            const double delta =
                base_cycles > 0 ? 100.0 * (cycles - base_cycles) /
                                      base_cycles
                                : 0.0;

            const sim::FaultPlan::Counters c = plan.counters();
            const std::uint64_t viol = checker.totalViolations();
            total_violations += viol;
            tab.addRow({tpcd::queryName(q), harness::fixed(rate, 4),
                        std::to_string(c.injected),
                        std::to_string(c.retries),
                        std::to_string(static_cast<std::uint64_t>(cycles)),
                        harness::fixed(delta, 2), std::to_string(viol)});
            for (const sim::CheckViolation &v : checker.violations())
                std::cerr << "  [" << invariantName(v.inv) << "] "
                          << v.detail << '\n';
        }
    }

    tab.print(std::cout);
    std::cout << "\nVerdict: "
              << (total_violations == 0
                      ? "stable — every fault rate completed with zero "
                        "invariant violations"
                      : "UNSTABLE — invariant violations detected (see "
                        "stderr)")
              << ".\n";

    bool ok = session.finish(cfg, std::cerr);
    return ok && total_violations == 0 ? 0 : 1;
}

int
main(int argc, char **argv)
{
    return harness::benchMain("chaos_fault_sweep", argc, argv,
                                 harness::BenchOptions::kAll, run);
}
