/**
 * @file
 * Ablation: where does the Index query's metalock traffic come from?
 *
 * DESIGN.md attributes Q3's LockSLock / LockHash / XidHash coherence
 * misses and its MSync time to Postgres95's per-rescan lock-manager
 * activity (every inner index rescan re-initializes the scan descriptor
 * through LockMgrLock). This bench re-runs Q3 and Q12 with that
 * discipline disabled (locks held across rescans) and shows how much of
 * the paper-observed metadata behaviour that single discipline produces.
 */

#include <iostream>

#include "harness/bench_main.hh"
#include "harness/options.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace dss;

int
run(harness::BenchContext &ctx)
{
    harness::BenchOptions &opts = ctx.opts;
    harness::ObsSession &session = ctx.session;
    std::cout << "=== Ablation: per-rescan lock-manager discipline ===\n\n";

    harness::Workload wl(tpcd::ScaleConfig::paperScale(), 4);
    const sim::MachineConfig cfg = ctx.config();
    session.usePlacement(
        harness::makePlacement(opts, cfg, &wl.db().space()));
    session.wireMemprof(cfg, &wl.db().catalog());

    harness::TextTable tab({"query", "relock", "exec cycles", "MSync%",
                            "L2 LockSLock", "L2 LockHash", "L2 XidHash"});
    for (tpcd::QueryId q : {tpcd::QueryId::Q3, tpcd::QueryId::Q12}) {
        for (bool relock : {true, false}) {
            harness::TraceSet traces =
                wl.traceWithLockDiscipline(q, 1, relock);
            sim::ProcStats agg =
                harness::runCold(cfg, traces, session.runOptions())
                    .aggregate();
            tab.addRow(
                {tpcd::queryName(q), relock ? "on (paper)" : "off",
                 std::to_string(agg.totalCycles()),
                 harness::fixed(100.0 *
                                static_cast<double>(agg.syncStall) /
                                static_cast<double>(agg.totalCycles())),
                 std::to_string(
                     agg.l2Misses().byClass(sim::DataClass::LockSLock)),
                 std::to_string(
                     agg.l2Misses().byClass(sim::DataClass::LockHash)),
                 std::to_string(
                     agg.l2Misses().byClass(sim::DataClass::XidHash))});
        }
    }
    tab.print(std::cout);

    std::cout << "\nReading: with the discipline off, Q3's LockHash and "
                 "XidHash misses all\nbut vanish — the lock-manager hash "
                 "traffic of Figure 7 is exactly the\nper-rescan "
                 "activity. The LockSLock class only shrinks partially "
                 "because it\nalso contains BufMgrLock, which every page "
                 "pin still takes.\n";
    return session.finish(cfg, std::cerr) ? 0 : 1;
}

int
main(int argc, char **argv)
{
    return harness::benchMain("ablation_lock_discipline", argc, argv,
                                 harness::BenchOptions::kEngine | harness::BenchOptions::kPlacement |
            harness::BenchOptions::kJson | harness::BenchOptions::kMemprof, run);
}
