/**
 * @file
 * Ablation: cache associativity. The paper's baseline fixes a
 * direct-mapped L1 and a 2-way L2; this sweep separates conflict misses
 * from capacity effects. Expectation from the Figure 7 analysis: the L1's
 * Priv misses are overwhelmingly conflicts, so associativity helps them
 * disproportionately; the Sequential queries' L2 Data misses are cold and
 * do not care.
 */

#include <iostream>

#include "harness/bench_main.hh"
#include "harness/options.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace dss;

int
run(harness::BenchContext &ctx)
{
    harness::BenchOptions &opts = ctx.opts;
    harness::ObsSession &session = ctx.session;
    std::cout << "=== Ablation: cache associativity (baseline sizes) "
                 "===\n\n";

    harness::Workload wl(tpcd::ScaleConfig::paperScale(), 4);
    session.usePlacement(harness::makePlacement(
        opts, ctx.config(), &wl.db().space()));
    session.wireMemprof(ctx.config(),
                        &wl.db().catalog());

    for (tpcd::QueryId q : {tpcd::QueryId::Q3, tpcd::QueryId::Q6}) {
        harness::TraceSet traces = wl.trace(q);
        harness::TextTable tab({"L1-way/L2-way", "exec cycles",
                                "L1 Priv misses", "L1 Priv Conf",
                                "L2 Data misses"});
        struct Point
        {
            std::size_t l1, l2;
        };
        for (Point p : {Point{1, 2}, Point{2, 2}, Point{4, 4},
                        Point{8, 8}}) {
            sim::MachineConfig cfg = ctx.config();
            cfg.l1().assoc = p.l1;
            cfg.l2().assoc = p.l2;
            sim::ProcStats agg =
                harness::runCold(cfg, traces, session.runOptions())
                    .aggregate();
            tab.addRow(
                {std::to_string(p.l1) + "/" + std::to_string(p.l2),
                 std::to_string(agg.totalCycles()),
                 std::to_string(
                     agg.l1Misses().byGroup(sim::ClassGroup::Priv)),
                 std::to_string(agg.l1Misses().byGroupAndType(
                     sim::ClassGroup::Priv, sim::MissType::Conf)),
                 std::to_string(
                     agg.l2Misses().byGroup(sim::ClassGroup::Data))});
        }
        std::cout << tpcd::queryName(q) << '\n';
        tab.print(std::cout);
        std::cout << '\n';
    }
    return session.finish(ctx.config(), std::cerr) ? 0
                                                                     : 1;
}

int
main(int argc, char **argv)
{
    return harness::benchMain("ablation_associativity", argc, argv,
                                 harness::BenchOptions::kEngine | harness::BenchOptions::kPlacement |
            harness::BenchOptions::kJson | harness::BenchOptions::kMemprof, run);
}
