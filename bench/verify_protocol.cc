/**
 * @file
 * Exhaustive coherence-protocol model check (src/verify/).
 *
 * Clean mode explores the full reachable state space of the composed
 * cache / write-buffer / directory / metalock machine for a small bounded
 * configuration (--verify-procs processors, --verify-lines shared lines,
 * one lock word), evaluating every sim/check.hh invariant at every state.
 * Any violation prints a shortest counterexample event path and exits 3
 * (guardedMain's error code).
 *
 * Mutant mode (--verify-mutant k|all) is the soundness test of the
 * checker itself: each known protocol mutation (dropped invalidation ack,
 * skipped owner-dirty re-assert, stale sharer bit, write-buffer reorder)
 * must be *caught* — a mutant run that completes without a violation
 * exits 3.
 *
 * Both presets matter: `--machine paper1997` checks the two-level
 * write-through-L1 hierarchy, `--machine modern` the three-level one.
 * The search is deterministic: repeated invocations visit identical
 * states in identical order and emit bit-identical reports.
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_main.hh"
#include "harness/guard.hh"
#include "harness/options.hh"
#include "harness/report.hh"
#include "obs/registry.hh"
#include "verify/model.hh"
#include "verify/verifier.hh"

using namespace dss;

namespace {

verify::VerifyResult
explore(const sim::MachineConfig &cfg, const harness::BenchOptions &opts,
        verify::Mutant mutant)
{
    verify::ProtocolModel::Options mo;
    mo.procs = opts.verifyProcs;
    mo.lines = opts.verifyLines;
    // The reorder mutation swaps the two oldest pending stores, so that
    // run needs at least two write-buffer slots to be reachable.
    mo.wbEntries = mutant == verify::Mutant::WbReorder
                       ? std::max(2u, opts.verifyWb)
                       : opts.verifyWb;
    mo.mutant = mutant;
    verify::ProtocolModel model(cfg, mo);
    verify::VerifyOptions vo;
    vo.maxDepth = opts.verifyDepth;
    verify::ProtocolVerifier verifier(model, vo);
    return verifier.run();
}

void
printCex(const verify::Counterexample &cex)
{
    std::cout << "  counterexample (" << cex.events.size() << " events):";
    for (const verify::Event &e : cex.events)
        std::cout << ' ' << verify::eventName(e);
    std::cout << '\n';
}

} // namespace

int
run(harness::BenchContext &ctx)
{
    harness::BenchOptions &opts = ctx.opts;
    harness::ObsSession &session = ctx.session;
    const sim::MachineConfig &cfg = ctx.config();

    std::cout << "=== Protocol model check: " << opts.verifyProcs
              << " procs x " << opts.verifyLines << " lines + lock, wb "
              << opts.verifyWb << ", machine " << opts.machine
              << " ===\n\n";

    std::vector<verify::Mutant> runs;
    if (opts.verifyMutant == 0) {
        runs.push_back(verify::Mutant::None);
    } else if (opts.verifyMutant < 0) {
        for (unsigned k = 1; k <= verify::kNumMutants; ++k)
            runs.push_back(static_cast<verify::Mutant>(k));
    } else {
        runs.push_back(static_cast<verify::Mutant>(opts.verifyMutant));
    }

    harness::TextTable tab({"mode", "states", "transitions", "depth",
                            "violations", "result"});
    obs::Json report = obs::Json::array();
    verify::VerifyResult last;
    bool ok = true;

    for (verify::Mutant m : runs) {
        const verify::VerifyResult res = explore(cfg, opts, m);
        const bool clean = m == verify::Mutant::None;
        // Clean runs must find nothing; mutant runs must be caught.
        const bool pass = clean ? res.violations == 0
                                : res.violations != 0 &&
                                      !res.cex.events.empty();
        ok = ok && pass;
        tab.addRow({std::string(verify::mutantName(m)),
                 std::to_string(res.states),
                 std::to_string(res.transitions),
                 std::to_string(res.depth),
                 std::to_string(res.violations),
                 pass ? (clean && !res.exhausted ? "PASS (bounded)"
                                                 : "PASS")
                      : "FAIL"});
        if (res.violations != 0)
            printCex(res.cex);
        if (!pass && clean)
            std::cout << "  protocol invariant violated — see the JSON "
                         "report for the checker detail\n";
        if (!pass && !clean)
            std::cout << "  mutant escaped: the search completed without "
                         "a violation\n";
        obs::Json entry = res.toJson();
        entry["mutant"] = std::string(verify::mutantName(m));
        report.push(std::move(entry));
        last = res;
    }
    tab.print(std::cout);

    // Registry counters (verify.*) reflect the final run of the table.
    obs::Registry reg;
    reg.addCounter("verify.states", [&] { return last.states; });
    reg.addCounter("verify.transitions", [&] { return last.transitions; });
    reg.addCounter("verify.depth",
                   [&] { return std::uint64_t{last.depth}; });
    reg.addCounter("verify.violations", [&] { return last.violations; });
    session.extra()["verify"] = report;
    session.extra()["counters"] = reg.toJson();

    if (!session.finish(cfg, std::cerr))
        return harness::kErrorExitCode;
    return ok ? 0 : harness::kErrorExitCode;
}

int
main(int argc, char **argv)
{
    return harness::benchMain(
        "verify_protocol", argc, argv,
        harness::BenchOptions::kJson | harness::BenchOptions::kMachine |
            harness::BenchOptions::kVerify,
        [](harness::BenchContext &ctx) { return run(ctx); });
}
