/**
 * @file
 * Figure 8: number of misses on each data-structure group (Priv, Data,
 * Index, Metadata) for several cache line sizes, in the primary and the
 * secondary cache, normalized to 100 for the baseline (32 B L1 / 64 B L2
 * lines). The L1 line is always half the L2 line (paper Section 4.3);
 * configurations are labeled by the L2 line size.
 *
 * Paper reference shapes: Data (and Index) misses fall sharply with line
 * size — good spatial locality; Priv misses in the L1 grow past 32 B
 * lines; Metadata bottoms out around 64 B and then grows.
 */

#include <iostream>

#include "harness/bench_main.hh"
#include "harness/options.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace dss;

namespace {

constexpr std::size_t kLineSizes[] = {16, 32, 64, 128, 256};
constexpr std::size_t kBaselineLine = 64;

} // namespace

int
run(harness::BenchContext &ctx)
{
    harness::BenchOptions &opts = ctx.opts;
    harness::ObsSession &session = ctx.session;
    std::cout << "=== Figure 8: misses vs. cache line size (normalized to "
                 "the 64 B-L2-line baseline = 100) ===\n\n";

    harness::Workload wl(tpcd::ScaleConfig::paperScale(), 4);
    session.usePlacement(harness::makePlacement(
        opts, ctx.config(), &wl.db().space()));
    session.wireMemprof(ctx.config(),
                        &wl.db().catalog());

    for (tpcd::QueryId q : {tpcd::QueryId::Q3, tpcd::QueryId::Q6,
                            tpcd::QueryId::Q12}) {
        harness::TraceSet traces = wl.trace(q);

        // Gather miss counts by group for every line size.
        struct Row
        {
            std::size_t line;
            std::uint64_t l1[sim::kNumClassGroups];
            std::uint64_t l2[sim::kNumClassGroups];
        };
        std::vector<Row> rows;
        std::uint64_t base_l1 = 1, base_l2 = 1;
        for (std::size_t line : kLineSizes) {
            sim::MachineConfig cfg =
                ctx.config().withLineSize(line);
            sim::SimStats stats =
                harness::runCold(cfg, traces, session.runOptions());
            sim::ProcStats agg = stats.aggregate();
            Row r{line, {}, {}};
            for (std::size_t g = 0; g < sim::kNumClassGroups; ++g) {
                r.l1[g] = agg.l1Misses().byGroup(
                    static_cast<sim::ClassGroup>(g));
                r.l2[g] = agg.l2Misses().byGroup(
                    static_cast<sim::ClassGroup>(g));
            }
            if (line == kBaselineLine) {
                base_l1 = std::max<std::uint64_t>(1, agg.l1Misses().total());
                base_l2 = std::max<std::uint64_t>(1, agg.l2Misses().total());
            }
            rows.push_back(r);
        }

        auto print_level = [&](const char *name, bool l1,
                               std::uint64_t base) {
            harness::TextTable tab({"L2 line", "Priv", "Data", "Index",
                                    "Metadata", "Total"});
            for (const Row &r : rows) {
                const std::uint64_t *g = l1 ? r.l1 : r.l2;
                std::uint64_t tot = 0;
                for (std::size_t i = 0; i < sim::kNumClassGroups; ++i)
                    tot += g[i];
                auto n = [&](sim::ClassGroup gg) {
                    return harness::fixed(
                        100.0 *
                            static_cast<double>(
                                g[static_cast<std::size_t>(gg)]) /
                            static_cast<double>(base),
                        1);
                };
                tab.addRow({std::to_string(r.line) + "B",
                            n(sim::ClassGroup::Priv),
                            n(sim::ClassGroup::Data),
                            n(sim::ClassGroup::Index),
                            n(sim::ClassGroup::Metadata),
                            harness::fixed(100.0 *
                                               static_cast<double>(tot) /
                                               static_cast<double>(base),
                                           1)});
            }
            std::cout << tpcd::queryName(q) << ": " << name << " misses\n";
            tab.print(std::cout);
            std::cout << '\n';
        };
        print_level("primary cache", true, base_l1);
        print_level("secondary cache", false, base_l2);
    }
    return session.finish(ctx.config(), std::cerr) ? 0
                                                                     : 1;
}

int
main(int argc, char **argv)
{
    return harness::benchMain("fig8_line_size_misses", argc, argv,
                                 harness::BenchOptions::kEngine | harness::BenchOptions::kPlacement |
            harness::BenchOptions::kJson | harness::BenchOptions::kMemprof, run);
}
