/**
 * @file
 * Figure 9: execution time for different cache line sizes, broken into
 * Busy / PMem (stall on private data) / SMem (stall on shared data) /
 * MSync, normalized to the baseline (64 B L2 lines) = 100.
 *
 * Paper reference shapes: SMem falls as lines grow (spatial locality of
 * database data and indices); PMem grows past 16-32 B; the total is
 * minimized at 64 B secondary-cache lines for all three queries.
 */

#include <iostream>

#include "harness/bench_main.hh"
#include "harness/options.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace dss;

int
run(harness::BenchContext &ctx)
{
    harness::BenchOptions &opts = ctx.opts;
    harness::ObsSession &session = ctx.session;
    std::cout << "=== Figure 9: execution time vs. cache line size "
                 "(baseline 64 B = 100) ===\n\n";

    harness::Workload wl(tpcd::ScaleConfig::paperScale(), 4);
    session.usePlacement(harness::makePlacement(
        opts, ctx.config(), &wl.db().space()));
    session.wireMemprof(ctx.config(),
                        &wl.db().catalog());
    constexpr std::size_t kLineSizes[] = {16, 32, 64, 128, 256};

    for (tpcd::QueryId q : {tpcd::QueryId::Q3, tpcd::QueryId::Q6,
                            tpcd::QueryId::Q12}) {
        harness::TraceSet traces = wl.trace(q);

        // Pass 1: simulate every configuration.
        std::vector<sim::ProcStats> results;
        for (std::size_t line : kLineSizes) {
            sim::MachineConfig cfg =
                ctx.config().withLineSize(line);
            results.push_back(
                harness::runCold(cfg, traces, session.runOptions())
                    .aggregate());
        }

        // Pass 2: normalize to the 64 B baseline and print.
        double base_total = 1;
        for (std::size_t i = 0; i < std::size(kLineSizes); ++i) {
            if (kLineSizes[i] == 64)
                base_total =
                    static_cast<double>(results[i].totalCycles());
        }
        harness::TextTable tab(
            {"L2 line", "Busy", "PMem", "SMem", "MSync", "Total"});
        for (std::size_t i = 0; i < std::size(kLineSizes); ++i) {
            const sim::ProcStats &agg = results[i];
            auto n = [&](sim::Cycles c) {
                return harness::fixed(
                    100.0 * static_cast<double>(c) / base_total, 1);
            };
            tab.addRow({std::to_string(kLineSizes[i]) + "B", n(agg.busy),
                        n(agg.pmem()), n(agg.smem()), n(agg.syncStall),
                        n(agg.totalCycles())});
        }
        std::cout << tpcd::queryName(q) << '\n';
        tab.print(std::cout);
        std::cout << '\n';
    }
    return session.finish(ctx.config(), std::cerr) ? 0
                                                                     : 1;
}

int
main(int argc, char **argv)
{
    return harness::benchMain("fig9_line_size_time", argc, argv,
                                 harness::BenchOptions::kEngine | harness::BenchOptions::kPlacement |
            harness::BenchOptions::kJson | harness::BenchOptions::kMemprof, run);
}
