/**
 * @file
 * Component microbenchmarks for the memory-hierarchy simulator
 * (google-benchmark): cache lookup/fill throughput, directory transaction
 * throughput, write-buffer operations and whole-machine trace replay
 * speed. These measure the *simulator's* host performance, not simulated
 * time.
 */

#include <cstdint>
#include <vector>

#include <benchmark/benchmark.h>

#include "harness/guard.hh"

#include "obs/memprof.hh"
#include "sim/arena.hh"
#include "sim/cache.hh"
#include "sim/directory.hh"
#include "sim/machine.hh"
#include "sim/placement.hh"
#include "sim/spec.hh"
#include "sim/write_buffer.hh"

using namespace dss::sim;

namespace {

void
BM_CacheHit(benchmark::State &state)
{
    Cache c({128 * 1024, 64, 2});
    for (Addr a = 0; a < 64 * 1024; a += 64)
        c.fill(a);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.access(a));
        a = (a + 64) & (64 * 1024 - 1);
    }
}
BENCHMARK(BM_CacheHit);

void
BM_CacheMissFill(benchmark::State &state)
{
    Cache c({4 * 1024, 32, 1});
    Addr a = 0;
    for (auto _ : state) {
        if (!c.access(a)) {
            benchmark::DoNotOptimize(c.classifyMiss(a));
            c.fill(a);
        }
        a += 32; // stream: always misses
    }
}
BENCHMARK(BM_CacheMissFill);

void
BM_DirectoryTransaction(benchmark::State &state)
{
    LatencyConfig lat;
    Directory dir(4, 64, 8192, AddressSpace::kPrivateBase,
                  AddressSpace::kPrivateStride, lat);
    Addr a = 0x1000'0000;
    for (auto _ : state) {
        Directory::Entry &e = dir.entry(a);
        e.state = Directory::State::Shared;
        ProcId home = dir.homeOf(a);
        benchmark::DoNotOptimize(
            dir.transactionLatency(0, home, 0, false));
        a += 64;
    }
}
BENCHMARK(BM_DirectoryTransaction);

/** The historical hardwired home rule: per-access div/mod chain. */
void
BM_HomeOfLegacy(benchmark::State &state)
{
    LatencyConfig lat;
    Directory dir(4, 64, 8192, AddressSpace::kPrivateBase,
                  AddressSpace::kPrivateStride, lat);
    // No policy attached: Directory::homeOf falls back to the legacy
    // formula, exactly what every access paid before the placement layer.
    Addr a = 0x1000'0000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dir.homeOf(a));
        a = 0x1000'0000 + ((a + 64) & (64 * 1024 * 1024 - 1));
    }
}
BENCHMARK(BM_HomeOfLegacy);

/** The placement layer's flat page->home table (the new hot path). */
void
BM_HomeOfTable(benchmark::State &state)
{
    LatencyConfig lat;
    Directory dir(4, 64, 8192, AddressSpace::kPrivateBase,
                  AddressSpace::kPrivateStride, lat);
    auto policy = PlacementPolicy::interleave(
        {4, 8192, AddressSpace::kPrivateBase, AddressSpace::kPrivateStride});
    // Cover the whole touched range so every lookup hits the table.
    policy->pinPage(0x1000'0000 + (64 * 1024 * 1024 - 1), 0);
    dir.setPlacement(policy.get());
    Addr a = 0x1000'0000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dir.homeOf(a));
        a = 0x1000'0000 + ((a + 64) & (64 * 1024 * 1024 - 1));
    }
}
BENCHMARK(BM_HomeOfTable);

void
BM_WriteBufferPush(benchmark::State &state)
{
    WriteBuffer wb(16);
    Cycles now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(wb.push(now, 16, now & ~63ull));
        now += 20; // drains keep up: no overflow path
    }
}
BENCHMARK(BM_WriteBufferPush);

/** Whole-machine replay throughput on a synthetic streaming trace. */
void
BM_MachineReplay(benchmark::State &state)
{
    TraceStream stream;
    for (Addr a = 0; a < 1 << 20; a += 8) {
        stream.record(TraceEntry::read(0x1000'0000 + a, DataClass::Data, 8));
        stream.record(TraceEntry::busy(3));
    }
    for (auto _ : state) {
        Machine m(MachineConfig::baseline());
        SimStats s = m.run({&stream});
        benchmark::DoNotOptimize(s.procs[0].reads);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_MachineReplay);

/**
 * The same streaming replay on the three-level `modern` preset: what the
 * generalized level-chain walk costs when a chain actually has an
 * intermediate level. Compare against BM_MachineReplay (two levels) to
 * see the indirection's price; the two-level case itself must stay
 * within 5% of the pre-refactor fixed-L1/L2 machine.
 */
void
BM_HierarchyReplay(benchmark::State &state)
{
    TraceStream stream;
    for (Addr a = 0; a < 1 << 20; a += 8) {
        stream.record(TraceEntry::read(0x1000'0000 + a, DataClass::Data, 8));
        stream.record(TraceEntry::busy(3));
    }
    const MachineConfig cfg = machinePreset("modern").config;
    for (auto _ : state) {
        Machine m(cfg);
        SimStats s = m.run({&stream});
        benchmark::DoNotOptimize(s.procs[0].reads);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_HierarchyReplay);

/**
 * Engine comparison: four processors streaming over disjoint shared-space
 * regions, replayed by the sequential reference engine and by the
 * epoch-window parallel engine (one host thread per simulated processor).
 * Disjoint lines mean both engines produce identical statistics; the
 * spread between the two fixtures is the host-side speedup.
 */
void
BM_MachineReplay4(benchmark::State &state, EngineConfig engine)
{
    MachineConfig cfg = MachineConfig::baseline();
    std::vector<TraceStream> streams(cfg.nprocs);
    for (unsigned p = 0; p < cfg.nprocs; ++p) {
        const Addr base = 0x1000'0000 + static_cast<Addr>(p) * (4u << 20);
        for (Addr a = 0; a < 1 << 20; a += 8) {
            streams[p].record(
                TraceEntry::read(base + a, DataClass::Data, 8));
            streams[p].record(TraceEntry::busy(3));
        }
    }
    std::vector<const TraceStream *> ptrs;
    for (const TraceStream &s : streams)
        ptrs.push_back(&s);
    std::uint64_t entries = 0;
    for (auto _ : state) {
        Machine m(cfg);
        SimStats s = m.run(ptrs, engine);
        benchmark::DoNotOptimize(s.procs[0].reads);
        entries += streams[0].size() * cfg.nprocs;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(entries));
}
BENCHMARK_CAPTURE(BM_MachineReplay4, seq, EngineConfig::seq());
BENCHMARK_CAPTURE(BM_MachineReplay4, par, EngineConfig::par());

/**
 * Cost of the --memprof machinery on the machine replay path. Four
 * processors mix reads and stores over an overlapping shared region, so
 * the word-granular sharing tracker (when enabled) exercises both its
 * store-recording and its miss-classification paths. "off" is the
 * default configuration every non-profiled run uses and must stay within
 * noise of the pre-memprof replay; "on" prices the tracker itself;
 * "profile" adds the profiler's own trace replay on top.
 */
void
BM_MemprofOverhead(benchmark::State &state, int mode)
{
    MachineConfig cfg = MachineConfig::baseline();
    std::vector<TraceStream> streams(cfg.nprocs);
    for (unsigned p = 0; p < cfg.nprocs; ++p) {
        for (Addr a = 0; a < 1 << 18; a += 8) {
            // Overlapping lines across processors: every fourth access
            // is a store, so lines ping-pong and coherence misses (the
            // tracker's slow path) actually occur.
            const Addr addr = 0x1000'0000 + a;
            if (((a >> 3) & 3) == p % 4)
                streams[p].record(
                    TraceEntry::write(addr, DataClass::Data, 8));
            else
                streams[p].record(
                    TraceEntry::read(addr, DataClass::Data, 8));
            streams[p].record(TraceEntry::busy(3));
        }
    }
    std::vector<const TraceStream *> ptrs;
    for (const TraceStream &s : streams)
        ptrs.push_back(&s);
    for (auto _ : state) {
        Machine m(cfg);
        m.enableSharing(mode >= 1);
        SimStats s = m.run(ptrs);
        benchmark::DoNotOptimize(s.procs[0].l2CoheTrue);
        if (mode >= 2) {
            dss::obs::MemProfile prof({cfg.coherent(), cfg.nprocs, cfg.pageBytes});
            prof.addTraces(ptrs);
            benchmark::DoNotOptimize(prof.lines().size());
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(streams[0].size() * cfg.nprocs));
}
BENCHMARK_CAPTURE(BM_MemprofOverhead, off, 0);
BENCHMARK_CAPTURE(BM_MemprofOverhead, on, 1);
BENCHMARK_CAPTURE(BM_MemprofOverhead, profile, 2);

} // namespace

int
main(int argc, char **argv)
{
    return dss::harness::guardedMain(
        "microbench_sim", argc, argv, [](int c, char **v) -> int {
            benchmark::Initialize(&c, v);
            if (benchmark::ReportUnrecognizedArguments(c, v))
                return 1;
            benchmark::RunSpecifiedBenchmarks();
            benchmark::Shutdown();
            return 0;
        });
}
