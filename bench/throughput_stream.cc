/**
 * @file
 * Query-stream throughput: the scheduler (src/sched/) admitting seeded
 * streams of Q3/Q6/Q12 instances onto the simulated machine.
 *
 * Three experiments:
 *
 *  1. Closed-loop sweep: offered load (concurrent clients) x processor
 *     count. Reports makespan, completed queries per million simulated
 *     cycles, and the p50/p95/p99 latency tail per point.
 *  2. Open-loop sweep: exponential arrivals at decreasing mean
 *     inter-arrival gaps (rising offered load) on the 4-processor
 *     baseline — the p95-vs-load curve of EXPERIMENTS.md.
 *  3. Trace-cache validation: the heaviest closed-loop point run twice,
 *     cache off vs on, asserting the two stream reports (every
 *     per-instance simulation statistic included) are bit-identical and
 *     reporting the host wall-clock speedup the cache buys.
 *
 * Stream knobs: --stream <n>, --stream-seed <s>,
 * --stream-policy <fifo|shortest>, --trace-cache <on|off|N>.
 * Resilience knobs (src/sched/resilience.hh): --deadline <cycles>,
 * --queue-cap <n>, --shed <newest|class|deadline>, --breaker <p>.
 */

#include <chrono>
#include <iostream>

#include "harness/bench_main.hh"
#include "harness/options.hh"
#include "harness/report.hh"
#include "sched/scheduler.hh"

using namespace dss;

namespace {

struct TimedRun
{
    sched::StreamResult result;
    double hostSeconds = 0;
};

TimedRun
runStream(harness::Workload &wl, const sim::MachineConfig &cfg,
          const sched::StreamConfig &scfg, harness::RunOptions ro,
          sched::TraceCache *cache,
          const sched::ResilienceConfig &res = sched::ResilienceConfig())
{
    const auto t0 = std::chrono::steady_clock::now();
    sched::StreamScheduler sched(wl, cfg, scfg, ro, cache, res);
    TimedRun out;
    out.result = sched.run();
    out.hostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return out;
}

void
printPoint(const std::string &label, const sched::StreamResult &r)
{
    std::cout << "  " << label << ": makespan=" << r.makespan
              << " thr=" << harness::fixed(r.throughputPerMcycle, 3)
              << "/Mcyc p50=" << harness::fixed(r.latency.p50, 0)
              << " p95=" << harness::fixed(r.latency.p95, 0)
              << " p99=" << harness::fixed(r.latency.p99, 0)
              << " cache=" << r.cache.hits << "h/" << r.cache.misses
              << "m\n";
}

} // namespace

int
run(harness::BenchContext &ctx)
{
    harness::BenchOptions &opts = ctx.opts;
    harness::ObsSession &session = ctx.session;

    const unsigned instances =
        opts.streamInstances ? opts.streamInstances : 12;
    const auto policy = sched::parsePolicy(opts.streamPolicy);
    if (!policy) {
        std::cerr << "throughput_stream: bad --stream-policy\n";
        return 2;
    }

    std::cout << "=== Query-stream throughput (" << instances
              << " instances, seed " << opts.streamSeed << ", "
              << opts.streamPolicy << ", trace cache "
              << (opts.traceCache ? "on" : "off") << ") ===\n\n";

    harness::Workload wl(opts.scaleConfig(), 4);
    session.wireMemprof(ctx.config(),
                        &wl.db().catalog());

    // One shared cache across every sweep point: captures are pure, so
    // entries are valid wherever the key recurs.
    sched::TraceCache cache(opts.traceCacheCapacity);
    sched::TraceCache *cachep = opts.traceCache ? &cache : nullptr;

    sched::StreamConfig base;
    base.instances = instances;
    base.seed = opts.streamSeed;
    base.policy = *policy;

    // Resilience knobs pass straight through; with none given, res stays
    // disabled and the stream reports are byte-identical to a build
    // without the resilience layer.
    sched::ResilienceConfig res;
    res.deadline = opts.deadlineCycles;
    if (opts.queueCapacity != ~std::uint64_t{0})
        res.queueCapacity = static_cast<unsigned>(opts.queueCapacity);
    if (auto sp = sched::parseShedPolicy(opts.shedPolicy))
        res.shed = *sp;
    res.breakerThreshold = opts.breakerThreshold;

    obs::Json &figure = session.extra();

    // Solo calibration anchors: one single-instance stream per traced
    // query fills the report's standard "runs" array (the schema
    // json_validate checks) with the solo stats that make the stream
    // latencies interpretable — and that serviceRank's ordering is
    // calibrated against. Keys land in the shared cache, so the sweep
    // below re-serves them as hits.
    for (tpcd::QueryId q :
         {tpcd::QueryId::Q3, tpcd::QueryId::Q6, tpcd::QueryId::Q12}) {
        sched::StreamConfig solo = base;
        solo.instances = 1;
        solo.mix = {{q, 1}};
        solo.paramVariants = 1;
        TimedRun tr = runStream(wl, ctx.config(), solo,
                                session.runOptions(), cachep);
        session.addRun("solo " + tpcd::queryName(q),
                       tr.result.records.front().stats);
    }

    auto runPoint = [&](const std::string &label,
                        const sim::MachineConfig &cfg,
                        const sched::StreamConfig &scfg,
                        sched::TraceCache *c) {
        harness::RunOptions ro = session.runOptions();
        std::unique_ptr<sim::PlacementPolicy> pol =
            harness::makePlacement(opts, cfg, &wl.db().space());
        ro.placement = pol.get();
        obs::Json registry;
        ro.registrySnapshot = session.wantJson() ? &registry : nullptr;
        TimedRun tr = runStream(wl, cfg, scfg, ro, c, res);
        printPoint(label, tr.result);
        if (session.wantJson()) {
            obs::Json point = toJson(tr.result, /*include_run_stats=*/false);
            point["label"] = label;
            point["nprocs"] = cfg.nprocs;
            point["registry"] = std::move(registry);
            figure["points"].push(std::move(point));
        }
        return tr;
    };

    std::cout << "Closed-loop sweep: clients x processors\n";
    const unsigned client_sweep[] = {1, 2, 4, 6};
    const unsigned proc_sweep[] = {2, 4};
    for (unsigned nprocs : proc_sweep) {
        sim::MachineConfig cfg = ctx.config();
        cfg.nprocs = nprocs;
        for (unsigned clients : client_sweep) {
            sched::StreamConfig scfg = base;
            scfg.mode = sched::ArrivalMode::Closed;
            scfg.clients = clients;
            runPoint("closed c" + std::to_string(clients) + " p" +
                         std::to_string(nprocs),
                     cfg, scfg, cachep);
        }
    }

    std::cout << "\nOpen-loop sweep: offered load on the 4-proc baseline\n";
    const sim::Cycles gap_sweep[] = {2000000, 1000000, 500000, 250000};
    for (sim::Cycles gap : gap_sweep) {
        sched::StreamConfig scfg = base;
        scfg.mode = sched::ArrivalMode::Open;
        scfg.meanInterarrival = gap;
        runPoint("open gap" + std::to_string(gap),
                 ctx.config(), scfg, cachep);
    }

    // Cache validation: heaviest closed point, cold cache off vs on. The
    // stream reports must match bit for bit — a cached trace replays the
    // exact bytes a fresh capture would produce.
    std::cout << "\nTrace-cache validation (closed c6 p4)\n";
    sched::StreamConfig vcfg = base;
    vcfg.mode = sched::ArrivalMode::Closed;
    vcfg.clients = 6;
    harness::RunOptions vro = session.runOptions();
    std::unique_ptr<sim::PlacementPolicy> vpol = harness::makePlacement(
        opts, ctx.config(), &wl.db().space());
    vro.placement = vpol.get();
    TimedRun uncached = runStream(wl, ctx.config(), vcfg,
                                  vro, nullptr, res);
    // Warm the cache with one pass, then measure the all-hit pass — the
    // repeated-stream scenario the cache exists for. Each pass gets a
    // fresh machine, so the warm pass cannot influence the measured one.
    sched::TraceCache vcache(opts.traceCacheCapacity);
    runStream(wl, ctx.config(), vcfg, vro, &vcache, res);
    TimedRun cached = runStream(wl, ctx.config(), vcfg,
                                vro, &vcache, res);
    const std::string ju = toJson(uncached.result, true)["records"].dump();
    const std::string jc = toJson(cached.result, true)["records"].dump();
    if (ju != jc) {
        std::cerr << "throughput_stream: cached stream diverged from "
                     "uncached stream\n";
        return 1;
    }
    const double speedup =
        cached.hostSeconds > 0 ? uncached.hostSeconds / cached.hostSeconds
                               : 0;
    std::cout << "  bit-identical: yes  uncached="
              << harness::fixed(uncached.hostSeconds, 3) << "s cached="
              << harness::fixed(cached.hostSeconds, 3) << "s speedup="
              << harness::fixed(speedup, 2) << "x (hits="
              << vcache.stats().hits << " misses=" << vcache.stats().misses
              << ")\n";
    if (session.wantJson()) {
        obs::Json v = obs::Json::object();
        v["bit_identical"] = obs::Json(true);
        v["uncached_seconds"] = obs::Json(uncached.hostSeconds);
        v["cached_seconds"] = obs::Json(cached.hostSeconds);
        v["speedup"] = obs::Json(speedup);
        v["hits"] = obs::Json(vcache.stats().hits);
        v["misses"] = obs::Json(vcache.stats().misses);
        figure["cache_validation"] = std::move(v);
    }

    return session.finish(ctx.config(), std::cerr) ? 0
                                                                     : 1;
}

int
main(int argc, char **argv)
{
    return harness::benchMain("throughput_stream", argc, argv,
                                 harness::BenchOptions::kAll | harness::BenchOptions::kStream |
            harness::BenchOptions::kResilience, run);
}
