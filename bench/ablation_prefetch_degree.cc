/**
 * @file
 * Ablation: prefetch degree. The paper fixes the prefetcher at 4 lines
 * (Section 6); this sweep shows why that is a reasonable choice: degree 4
 * is where the Sequential-query gains saturate for 128-byte tuples on
 * 32-byte L1 lines, while the Index query only accumulates pollution.
 */

#include <iostream>

#include "harness/bench_main.hh"
#include "harness/options.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace dss;

int
run(harness::BenchContext &ctx)
{
    harness::BenchOptions &opts = ctx.opts;
    harness::ObsSession &session = ctx.session;
    std::cout << "=== Ablation: sequential prefetch degree (exec time, "
                 "Base=100) ===\n\n";

    harness::Workload wl(tpcd::ScaleConfig::paperScale(), 4);
    session.usePlacement(harness::makePlacement(
        opts, ctx.config(), &wl.db().space()));
    session.wireMemprof(ctx.config(),
                        &wl.db().catalog());

    harness::TextTable tab(
        {"query", "degree 0", "1", "2", "4", "8", "16"});
    for (tpcd::QueryId q : {tpcd::QueryId::Q3, tpcd::QueryId::Q6,
                            tpcd::QueryId::Q12}) {
        harness::TraceSet traces = wl.trace(q);
        double base = 0;
        std::vector<std::string> row{tpcd::queryName(q)};
        for (unsigned degree : {0u, 1u, 2u, 4u, 8u, 16u}) {
            sim::MachineConfig cfg = ctx.config();
            cfg.prefetchData = degree > 0;
            cfg.prefetchDegree = degree;
            sim::ProcStats agg =
                harness::runCold(cfg, traces, session.runOptions())
                    .aggregate();
            if (degree == 0)
                base = static_cast<double>(agg.totalCycles());
            row.push_back(harness::fixed(
                100.0 * static_cast<double>(agg.totalCycles()) / base));
        }
        tab.addRow(std::move(row));
    }
    tab.print(std::cout);
    return session.finish(ctx.config(), std::cerr) ? 0
                                                                     : 1;
}

int
main(int argc, char **argv)
{
    return harness::benchMain("ablation_prefetch_degree", argc, argv,
                                 harness::BenchOptions::kEngine | harness::BenchOptions::kPlacement |
            harness::BenchOptions::kJson | harness::BenchOptions::kMemprof, run);
}
