/**
 * @file
 * Figure 11: execution time for different cache sizes (4K/128K to
 * 256K/8M), broken into Busy / PMem / SMem / MSync and normalized to the
 * baseline = 100.
 *
 * Paper reference shapes: queries speed up with cache size, but most of
 * the gain is PMem (private data reuse); Q3 also gains SMem from index and
 * metadata temporal locality; Q6/Q12 barely gain SMem because database
 * data has no intra-query reuse.
 */

#include <iostream>

#include "harness/bench_main.hh"
#include "harness/options.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace dss;

namespace {

struct SizePoint
{
    std::size_t l1, l2;
};

constexpr SizePoint kSizes[] = {
    {4 << 10, 128 << 10},
    {16 << 10, 512 << 10},
    {64 << 10, 2 << 20},
    {256 << 10, 8 << 20},
};

std::string
sizeName(std::size_t bytes)
{
    if (bytes >= (1u << 20))
        return std::to_string(bytes >> 20) + "M";
    return std::to_string(bytes >> 10) + "K";
}

} // namespace

int
run(harness::BenchContext &ctx)
{
    harness::BenchOptions &opts = ctx.opts;
    harness::ObsSession &session = ctx.session;
    std::cout << "=== Figure 11: execution time vs. cache size (baseline "
                 "4K/128K = 100) ===\n\n";

    harness::Workload wl(tpcd::ScaleConfig::paperScale(), 4);
    session.usePlacement(harness::makePlacement(
        opts, ctx.config(), &wl.db().space()));
    session.wireMemprof(ctx.config(),
                        &wl.db().catalog());

    for (tpcd::QueryId q : {tpcd::QueryId::Q3, tpcd::QueryId::Q6,
                            tpcd::QueryId::Q12}) {
        harness::TraceSet traces = wl.trace(q);

        std::vector<sim::ProcStats> results;
        for (const SizePoint &sp : kSizes) {
            sim::MachineConfig cfg =
                ctx.config().withCacheSizes(sp.l1,
                                                              sp.l2);
            results.push_back(
                harness::runCold(cfg, traces, session.runOptions())
                    .aggregate());
        }

        const double base =
            static_cast<double>(results[0].totalCycles());
        harness::TextTable tab(
            {"caches", "Busy", "PMem", "SMem", "MSync", "Total"});
        for (std::size_t i = 0; i < std::size(kSizes); ++i) {
            const sim::ProcStats &agg = results[i];
            auto n = [&](sim::Cycles c) {
                return harness::fixed(
                    100.0 * static_cast<double>(c) / base, 1);
            };
            tab.addRow({sizeName(kSizes[i].l1) + "/" +
                            sizeName(kSizes[i].l2),
                        n(agg.busy), n(agg.pmem()), n(agg.smem()),
                        n(agg.syncStall), n(agg.totalCycles())});
        }
        std::cout << tpcd::queryName(q) << '\n';
        tab.print(std::cout);
        std::cout << '\n';
    }
    return session.finish(ctx.config(), std::cerr) ? 0
                                                                     : 1;
}

int
main(int argc, char **argv)
{
    return harness::benchMain("fig11_cache_size_time", argc, argv,
                                 harness::BenchOptions::kEngine | harness::BenchOptions::kPlacement |
            harness::BenchOptions::kJson | harness::BenchOptions::kMemprof, run);
}
