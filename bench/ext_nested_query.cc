/**
 * @file
 * Extension: nested queries (the paper's first "future work" item).
 *
 * The flat Q4 the paper's Table 1 profiles scans orders only — a
 * Sequential query. TPC-D Q4's real SQL contains an EXISTS subquery over
 * lineitem; executing it nested (a parameterized inner index scan per
 * order) turns the access pattern into per-tuple index probes.
 *
 * This bench runs both variants on the baseline machine and shows the
 * class flip: the nested variant's shared misses move from Data/Cold to
 * the Index + Metadata / coherence mix of the paper's Index queries, and
 * MSync appears.
 */

#include <iostream>

#include "harness/bench_main.hh"
#include "harness/options.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace dss;

int
run(harness::BenchContext &ctx)
{
    harness::BenchOptions &opts = ctx.opts;
    harness::ObsSession &session = ctx.session;
    std::cout << "=== Extension: flat vs. nested Q4 ===\n\n";

    harness::Workload wl(tpcd::ScaleConfig::paperScale(), 4);
    const sim::MachineConfig cfg = ctx.config();
    session.usePlacement(
        harness::makePlacement(opts, cfg, &wl.db().space()));
    session.wireMemprof(cfg, &wl.db().catalog());

    harness::TraceSet flat = wl.trace(tpcd::QueryId::Q4, 1);
    harness::TraceSet nested = wl.traceCustom(
        [](tpcd::TpcdDb &db, sim::ProcId p) {
            return tpcd::buildQ4Nested(db, 7919 + p);
        });

    harness::TextTable tab({"variant", "exec cycles", "Busy%", "Mem%",
                            "MSync%", "L2 Data%", "L2 Index%",
                            "L2 Meta%"});
    for (auto [name, traces] :
         {std::pair<const char *, harness::TraceSet *>{"flat Q4", &flat},
          {"nested Q4 (EXISTS)", &nested}}) {
        sim::ProcStats agg =
            harness::runCold(cfg, *traces, session.runOptions())
                .aggregate();
        const double total = static_cast<double>(agg.totalCycles());
        const double misses =
            std::max(1.0, static_cast<double>(agg.l2Misses().total()));
        tab.addRow(
            {name, std::to_string(agg.totalCycles()),
             harness::pct(static_cast<double>(agg.busy), total),
             harness::pct(static_cast<double>(agg.memStall), total),
             harness::pct(static_cast<double>(agg.syncStall), total),
             harness::pct(static_cast<double>(
                              agg.l2Misses().byGroup(sim::ClassGroup::Data)),
                          misses),
             harness::pct(
                 static_cast<double>(
                     agg.l2Misses().byGroup(sim::ClassGroup::Index)),
                 misses),
             harness::pct(
                 static_cast<double>(
                     agg.l2Misses().byGroup(sim::ClassGroup::Metadata)),
                 misses)});
    }
    tab.print(std::cout);

    std::cout << "\nReading: nesting flips Q4 from the Sequential class "
                 "(Data-dominated cold\nmisses, no MSync) to the Index "
                 "class (index + metadata misses, metalock\ntime) — the "
                 "paper's query taxonomy is determined by access path, "
                 "not by the\nquery's business content.\n";
    return session.finish(cfg, std::cerr) ? 0 : 1;
}

int
main(int argc, char **argv)
{
    return harness::benchMain("ext_nested_query", argc, argv,
                                 harness::BenchOptions::kEngine | harness::BenchOptions::kPlacement |
            harness::BenchOptions::kJson | harness::BenchOptions::kMemprof, run);
}
