/**
 * @file
 * Figure 12: inter-query data reuse. Secondary-cache misses of Q3 and Q12
 * when (a) the caches are cold, (b) the caches were warmed by another
 * execution of the same query with different parameters, and (c) the
 * caches were warmed by the other query. Very large caches (1 MB L1 /
 * 32 MB L2) are used to expose the upper bound on reuse, as in the paper.
 *
 * Paper reference shapes: Q12 after Q12 loses nearly all Data misses (the
 * whole lineitem table is reused); Q3 after Q3 loses Index misses but
 * little Data; Q12 warms Q3 partially (lineitem tuples + orders index);
 * Q3 warms Q12 barely.
 */

#include <iostream>

#include "harness/bench_main.hh"
#include "harness/options.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace dss;

namespace {

void
printRun(const std::string &label, const sim::SimStats &stats, double base)
{
    const sim::MissTable &m = stats.aggregate().l2Misses();
    auto n = [&](sim::ClassGroup g) {
        return harness::fixed(
            100.0 * static_cast<double>(m.byGroup(g)) / base, 1);
    };
    std::cout << "  " << label << ": Meta=" << n(sim::ClassGroup::Metadata)
              << " Index=" << n(sim::ClassGroup::Index)
              << " Data=" << n(sim::ClassGroup::Data)
              << " Priv=" << n(sim::ClassGroup::Priv) << " Total="
              << harness::fixed(
                     100.0 * static_cast<double>(m.total()) / base, 1)
              << '\n';
}

// Case labels are space-padded for the text report; strip that for JSON.
std::string
trimmed(std::string s)
{
    while (!s.empty() && s.back() == ' ')
        s.pop_back();
    return s;
}

obs::Json
normalizedRow(const sim::SimStats &stats, double base)
{
    const sim::MissTable &m = stats.aggregate().l2Misses();
    auto n = [&](sim::ClassGroup g) {
        return 100.0 * static_cast<double>(m.byGroup(g)) / base;
    };
    obs::Json row = obs::Json::object();
    row["metadataPct"] = n(sim::ClassGroup::Metadata);
    row["indexPct"] = n(sim::ClassGroup::Index);
    row["dataPct"] = n(sim::ClassGroup::Data);
    row["privPct"] = n(sim::ClassGroup::Priv);
    row["totalPct"] = 100.0 * static_cast<double>(m.total()) / base;
    return row;
}

} // namespace

int
run(harness::BenchContext &ctx)
{
    harness::BenchOptions &opts = ctx.opts;
    harness::ObsSession &session = ctx.session;

    std::cout << "=== Figure 12: secondary-cache misses with warm caches "
                 "(1M L1 / 32M L2; cold run = 100) ===\n\n";

    harness::Workload wl(opts.scaleConfig(), 4);
    sim::MachineConfig cfg = ctx.config().withCacheSizes(
        1 << 20, 32 << 20);
    session.usePlacement(
        harness::makePlacement(opts, cfg, &wl.db().space()));
    session.wireMemprof(cfg, &wl.db().catalog());

    // Distinct parameter seeds: the warm-up query is "the same query using
    // different parameters" (paper Section 5.2.2).
    harness::TraceSet q3_a = wl.trace(tpcd::QueryId::Q3, 11);
    harness::TraceSet q3_b = wl.trace(tpcd::QueryId::Q3, 23);
    harness::TraceSet q12_a = wl.trace(tpcd::QueryId::Q12, 31);
    harness::TraceSet q12_b = wl.trace(tpcd::QueryId::Q12, 47);

    struct Case
    {
        const char *label;
        const harness::TraceSet *warm; // may be null (cold)
        const harness::TraceSet *measured;
    };

    obs::Json &figure = session.extra();
    auto run_group = [&](const char *title, const Case (&cases)[3]) {
        std::cout << title << '\n';
        obs::Json rows = obs::Json::array();
        double base = 1;
        for (const Case &c : cases) {
            std::vector<const harness::TraceSet *> seq;
            if (c.warm)
                seq.push_back(c.warm);
            seq.push_back(c.measured);
            std::vector<sim::SimStats> all =
                harness::runSequence(cfg, seq, session.runOptions());
            const sim::SimStats &measured = all.back();
            session.addRun(trimmed(c.label), measured);
            if (!c.warm) {
                base = std::max<double>(
                    1.0, static_cast<double>(
                             measured.aggregate().l2Misses().total()));
            }
            printRun(c.label, measured, base);
            if (session.wantJson()) {
                obs::Json row = normalizedRow(measured, base);
                row["label"] = trimmed(c.label);
                rows.push(std::move(row));
            }
        }
        if (session.wantJson())
            figure[title] = std::move(rows);
        std::cout << '\n';
    };

    const Case q3_cases[3] = {
        {"Q3, cold caches        ", nullptr, &q3_a},
        {"Q3, warmed by another Q3", &q3_b, &q3_a},
        {"Q3, warmed by Q12       ", &q12_b, &q3_a},
    };
    run_group("Figure 12(a): misses of Q3", q3_cases);

    const Case q12_cases[3] = {
        {"Q12, cold caches         ", nullptr, &q12_a},
        {"Q12, warmed by another Q12", &q12_b, &q12_a},
        {"Q12, warmed by Q3         ", &q3_b, &q12_a},
    };
    run_group("Figure 12(b): misses of Q12", q12_cases);
    return session.finish(cfg, std::cerr) ? 0 : 1;
}

int
main(int argc, char **argv)
{
    return harness::benchMain("fig12_inter_query_reuse", argc, argv,
                                 harness::BenchOptions::kAll, run);
}
