/**
 * @file
 * Ablation: processor-count scaling of the inter-query workload.
 *
 * The paper fixes the machine at 4 processors. This sweep runs 1/2/4/8
 * query instances on 1/2/4/8 nodes and shows how the sharing-driven
 * costs grow: coherence misses on metadata (lock words, descriptors) and
 * MSync both rise with the processor count, while private and database
 * data behaviour stays per-processor-constant — the scalability story
 * behind the paper's Sequent STiNG motivation.
 */

#include <iostream>

#include "harness/bench_main.hh"
#include "harness/options.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace dss;

int
run(harness::BenchContext &ctx)
{
    harness::BenchOptions &opts = ctx.opts;
    harness::ObsSession &session = ctx.session;
    std::cout << "=== Ablation: inter-query workload vs. processor count "
                 "===\n\n";

    for (tpcd::QueryId q : {tpcd::QueryId::Q3, tpcd::QueryId::Q6}) {
        harness::TextTable tab({"procs", "exec cycles", "MSync%",
                                "L2 Cohe misses/proc",
                                "L2 Data misses/proc"});
        for (unsigned nprocs : {1u, 2u, 4u, 8u}) {
            harness::Workload wl(tpcd::ScaleConfig::paperScale(), nprocs);
            harness::TraceSet traces = wl.trace(q);
            sim::MachineConfig cfg = ctx.config();
            cfg.nprocs = nprocs;
            // Re-arms per sweep point: the JSON memprof block
            // reports the last point's profile.
            session.wireMemprof(cfg, &wl.db().catalog());
            // The machine geometry changes per point, so the placement
            // policy is rebuilt here rather than adopted by the session.
            auto placement =
                harness::makePlacement(opts, cfg, &wl.db().space());
            harness::RunOptions ro = session.runOptions();
            ro.placement = placement.get();
            sim::SimStats stats = harness::runCold(cfg, traces, ro);
            sim::ProcStats agg = stats.aggregate();

            std::uint64_t cohe = 0;
            for (std::size_t c = 0; c < sim::kNumDataClasses; ++c) {
                cohe += agg.l2Misses().of(static_cast<sim::DataClass>(c),
                                        sim::MissType::Cohe);
            }
            tab.addRow(
                {std::to_string(nprocs),
                 std::to_string(stats.executionTime()),
                 harness::fixed(100.0 *
                                static_cast<double>(agg.syncStall) /
                                static_cast<double>(agg.totalCycles())),
                 std::to_string(cohe / nprocs),
                 std::to_string(
                     agg.l2Misses().byGroup(sim::ClassGroup::Data) /
                     nprocs)});
        }
        std::cout << tpcd::queryName(q) << '\n';
        tab.print(std::cout);
        std::cout << '\n';
    }
    return session.finish(ctx.config(), std::cerr) ? 0
                                                                     : 1;
}

int
main(int argc, char **argv)
{
    return harness::benchMain("ablation_scaling", argc, argv,
                                 harness::BenchOptions::kEngine | harness::BenchOptions::kPlacement |
            harness::BenchOptions::kJson | harness::BenchOptions::kMemprof, run);
}
