/**
 * @file
 * Extension (the paper's future work, Section 7): intra-query parallelism.
 *
 * The paper runs one query per processor (inter-query parallelism) and
 * names intra-query parallelism as remaining work. This bench partitions a
 * single Q6 scan across the processors — each node aggregates a
 * contiguous block range of lineitem — and compares it against (a) one
 * processor running the whole Q6 and (b) the paper's inter-query setup.
 *
 * Expected behaviour: near-linear scan speedup (the partitions touch
 * disjoint data, so there is no extra coherence traffic), with the same
 * Data-cold-miss character as the inter-query Sequential workload.
 */

#include <iostream>

#include "harness/bench_main.hh"
#include "harness/options.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace dss;

int
run(harness::BenchContext &ctx)
{
    harness::BenchOptions &opts = ctx.opts;
    harness::ObsSession &session = ctx.session;
    std::cout << "=== Extension: intra-query parallelism for Q6 ===\n\n";

    harness::Workload wl(tpcd::ScaleConfig::paperScale(), 4);
    const sim::MachineConfig cfg = ctx.config();
    session.usePlacement(
        harness::makePlacement(opts, cfg, &wl.db().space()));
    session.wireMemprof(cfg, &wl.db().catalog());

    // (a) One processor runs the whole Q6.
    harness::TraceSet solo;
    solo.push_back(wl.traceOne(tpcd::QueryId::Q6, 0, 7919));
    sim::SimStats s_solo = harness::runCold(cfg, solo, session.runOptions());

    // (b) Inter-query: four independent Q6 instances (the paper's setup).
    harness::TraceSet inter = wl.trace(tpcd::QueryId::Q6, 1);
    sim::SimStats s_inter =
        harness::runCold(cfg, inter, session.runOptions());

    // (c) Intra-query: one Q6 split into four block-range partitions.
    harness::TraceSet intra = wl.traceIntraQueryQ6(1);
    sim::SimStats s_intra =
        harness::runCold(cfg, intra, session.runOptions());

    harness::TextTable tab({"setup", "exec cycles", "speedup vs 1-proc",
                            "L2 Data misses", "L2 Cohe misses"});
    auto row = [&](const char *name, const sim::SimStats &s) {
        sim::ProcStats agg = s.aggregate();
        std::uint64_t cohe = 0;
        for (std::size_t c = 0; c < sim::kNumDataClasses; ++c) {
            cohe += agg.l2Misses().of(static_cast<sim::DataClass>(c),
                                    sim::MissType::Cohe);
        }
        double speedup =
            static_cast<double>(s_solo.executionTime()) /
            static_cast<double>(s.executionTime());
        tab.addRow({name, std::to_string(s.executionTime()),
                    harness::fixed(speedup, 2),
                    std::to_string(
                        agg.l2Misses().byGroup(sim::ClassGroup::Data)),
                    std::to_string(cohe)});
    };
    row("1 proc, whole Q6      ", s_solo);
    row("4 procs, 4 Q6 queries ", s_inter);
    row("4 procs, 1 Q6 split   ", s_intra);
    tab.print(std::cout);

    std::cout << "\nNote: 'speedup' for the inter-query row is throughput "
                 "over four queries\n(each processor still scans the whole "
                 "table); the intra-query row is true\nresponse-time "
                 "speedup for one query.\n";
    return session.finish(cfg, std::cerr) ? 0 : 1;
}

int
main(int argc, char **argv)
{
    return harness::benchMain("ext_intra_query", argc, argv,
                                 harness::BenchOptions::kEngine | harness::BenchOptions::kPlacement |
            harness::BenchOptions::kJson | harness::BenchOptions::kMemprof, run);
}
