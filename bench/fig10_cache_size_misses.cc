/**
 * @file
 * Figure 10: number of misses on each data-structure group for several
 * cache sizes, from 4 KB L1 / 128 KB L2 (baseline) to 256 KB L1 / 8 MB
 * L2, normalized to the baseline = 100. Line sizes fixed at 32 B / 64 B.
 *
 * Paper reference shapes: Priv misses in the primary cache collapse as
 * caches grow (private data is reused); the Data curve in the secondary
 * cache is flat (no intra-query temporal locality); Q3's Index and
 * Metadata misses shrink (indices are re-traversed within the query).
 */

#include <iostream>

#include "harness/bench_main.hh"
#include "harness/options.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace dss;

namespace {

struct SizePoint
{
    std::size_t l1, l2;
};

constexpr SizePoint kSizes[] = {
    {4 << 10, 128 << 10},
    {16 << 10, 512 << 10},
    {64 << 10, 2 << 20},
    {256 << 10, 8 << 20},
};

std::string
sizeName(std::size_t bytes)
{
    if (bytes >= (1u << 20))
        return std::to_string(bytes >> 20) + "M";
    return std::to_string(bytes >> 10) + "K";
}

} // namespace

int
run(harness::BenchContext &ctx)
{
    harness::BenchOptions &opts = ctx.opts;
    harness::ObsSession &session = ctx.session;
    std::cout << "=== Figure 10: misses vs. cache size (baseline "
                 "4K/128K = 100) ===\n\n";

    harness::Workload wl(tpcd::ScaleConfig::paperScale(), 4);
    session.usePlacement(harness::makePlacement(
        opts, ctx.config(), &wl.db().space()));
    session.wireMemprof(ctx.config(),
                        &wl.db().catalog());

    for (tpcd::QueryId q : {tpcd::QueryId::Q3, tpcd::QueryId::Q6,
                            tpcd::QueryId::Q12}) {
        harness::TraceSet traces = wl.trace(q);

        std::vector<sim::ProcStats> results;
        for (const SizePoint &sp : kSizes) {
            sim::MachineConfig cfg =
                ctx.config().withCacheSizes(sp.l1,
                                                              sp.l2);
            results.push_back(
                harness::runCold(cfg, traces, session.runOptions())
                    .aggregate());
        }

        const double base_l1 = std::max<double>(
            1.0, static_cast<double>(results[0].l1Misses().total()));
        const double base_l2 = std::max<double>(
            1.0, static_cast<double>(results[0].l2Misses().total()));

        auto print_level = [&](const char *name, bool l1, double base) {
            harness::TextTable tab({"caches", "Priv", "Data", "Index",
                                    "Metadata", "Total"});
            for (std::size_t i = 0; i < std::size(kSizes); ++i) {
                const sim::MissTable &m =
                    l1 ? results[i].l1Misses() : results[i].l2Misses();
                auto n = [&](sim::ClassGroup g) {
                    return harness::fixed(
                        100.0 * static_cast<double>(m.byGroup(g)) / base,
                        1);
                };
                tab.addRow({sizeName(kSizes[i].l1) + "/" +
                                sizeName(kSizes[i].l2),
                            n(sim::ClassGroup::Priv),
                            n(sim::ClassGroup::Data),
                            n(sim::ClassGroup::Index),
                            n(sim::ClassGroup::Metadata),
                            harness::fixed(
                                100.0 *
                                    static_cast<double>(m.total()) / base,
                                1)});
            }
            std::cout << tpcd::queryName(q) << ": " << name
                      << " misses\n";
            tab.print(std::cout);
            std::cout << '\n';
        };
        print_level("primary cache", true, base_l1);
        print_level("secondary cache", false, base_l2);
    }
    return session.finish(ctx.config(), std::cerr) ? 0
                                                                     : 1;
}

int
main(int argc, char **argv)
{
    return harness::benchMain("fig10_cache_size_misses", argc, argv,
                                 harness::BenchOptions::kEngine | harness::BenchOptions::kPlacement |
            harness::BenchOptions::kJson | harness::BenchOptions::kMemprof, run);
}
