/**
 * @file
 * Standalone line-level memory-profile report for Q3, Q6 and Q12 on the
 * baseline machine: the hottest cache lines ranked by misses, each
 * resolved to the database structure that owns it, with the coherence
 * misses split into true and false sharing (Torrellas word-granularity
 * criterion) — the line-level companion to Figure 7's class-level
 * classification.
 *
 * With --json, the report document carries one full "memprof" profile
 * per query plus the per-processor registry counters, which is what
 * scripts/check.sh --memprof validates (schema, the
 * cohe == cohe.true + cohe.false invariant, and engine invariance).
 */

#include <iostream>
#include <string>

#include "harness/bench_main.hh"
#include "harness/options.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace dss;

namespace {

std::string
u64(const obs::Json &rec, const std::string &key)
{
    const obs::Json *v = rec.find(key);
    return std::to_string(v ? v->asUint() : 0);
}

} // namespace

int
run(harness::BenchContext &ctx)
{
    harness::BenchOptions &opts = ctx.opts;
    harness::ObsSession &session = ctx.session;

    std::cout << "=== Line-level memory profile: hot lines, sharing "
                 "classification, symbols ===\n\n";

    harness::Workload wl(opts.scaleConfig(), 4);
    const sim::MachineConfig cfg = ctx.config();

    obs::RegionMap symbols;
    wl.db().catalog().describeRegions(symbols);

    obs::MemProfileConfig mc;
    mc.l2 = cfg.coherent();
    mc.nprocs = cfg.nprocs;
    mc.pageBytes = cfg.pageBytes;

    obs::Json profiles = obs::Json::object();
    for (tpcd::QueryId q : {tpcd::QueryId::Q3, tpcd::QueryId::Q6,
                            tpcd::QueryId::Q12}) {
        harness::TraceSet traces = wl.trace(q);

        // One fresh profile per query, so each report is cold-cache and
        // independent of query order (and bit-identical across engines:
        // the profiler replays the traces itself).
        obs::MemProfile prof(mc);
        harness::RunOptions ro = session.runOptions();
        ro.memProfile = &prof;
        sim::SimStats stats = harness::runCold(cfg, traces, ro);
        session.addRun(tpcd::queryName(q), stats);

        obs::Json doc = prof.toJson(opts.memprofTopN, &symbols);
        harness::TextTable tab({"symbol", "class", "accesses", "misses",
                                "coheTrue", "coheFalse", "upgrades"});
        const obs::Json *lines = doc.find("lines");
        for (std::size_t i = 0; lines && i < lines->size(); ++i) {
            const obs::Json &rec = lines->at(i);
            const std::uint64_t misses =
                rec.find("cold")->asUint() + rec.find("conf")->asUint() +
                rec.find("coheTrue")->asUint() +
                rec.find("coheFalse")->asUint();
            tab.addRow({rec.find("symbol")->asString(),
                        rec.find("class")->asString(),
                        u64(rec, "accesses"), std::to_string(misses),
                        u64(rec, "coheTrue"), u64(rec, "coheFalse"),
                        u64(rec, "upgrades")});
        }
        std::cout << tpcd::queryName(q) << ": top "
                  << opts.memprofTopN << " lines by misses ("
                  << doc.find("linesTracked")->asUint()
                  << " lines tracked)\n";
        tab.print(std::cout);

        const obs::Json *totals = doc.find("totals");
        std::cout << "totals: " << u64(*totals, "accesses")
                  << " accesses, coheTrue " << u64(*totals, "coheTrue")
                  << ", coheFalse " << u64(*totals, "coheFalse")
                  << ", upgrades " << u64(*totals, "upgrades")
                  << ", 3-hop " << u64(*totals, "hop3") << "\n\n";

        profiles[tpcd::queryName(q)] = std::move(doc);
    }

    session.extra()["memprof"] = std::move(profiles);
    return session.finish(cfg, std::cerr) ? 0 : 1;
}

int
main(int argc, char **argv)
{
    return harness::benchMain("report_memprof", argc, argv,
                                 harness::BenchOptions::kEngine | harness::BenchOptions::kJson |
            harness::BenchOptions::kScale |
            harness::BenchOptions::kMemprof, run);
}
