/**
 * @file
 * Resilience sweep: the query-stream scheduler under node failures and
 * overload, demonstrating graceful degradation.
 *
 * Sweeps node-failure rate x offered load (open-loop arrival gap) with
 * the full resilience layer on: per-query deadlines, a bounded run queue
 * with load shedding, bounded-backoff migration off failed processors,
 * and the per-class circuit breaker. Every point is run under both
 * engines and the two stream reports must be byte-identical — the
 * resilience layer is a pure function of (stream seed, fault seed,
 * config).
 *
 * Hard per-point invariants (any violation exits nonzero):
 *
 *  - bounded queue: the run-queue peak never exceeds --queue-cap
 *  - conservation: every instance resolves exactly once (goodput +
 *    timeouts + sheds + abandoned == instances)
 *  - goodput <= instances, and degradation is graceful: goodput stays
 *    positive at every swept failure rate
 *  - breaker recovery: a class whose breaker tripped during the failure
 *    window recovers (a half-open probe closed it) by stream end
 *  - engine invariance: seq and par reports byte-identical
 *
 * Knobs: the stream flags (--stream, --stream-seed, --stream-policy,
 * --trace-cache) plus the resilience flags (--deadline, --queue-cap,
 * --shed, --breaker) and --fault-seed for the outage schedule.
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_main.hh"
#include "harness/options.hh"
#include "harness/report.hh"
#include "sched/scheduler.hh"

using namespace dss;

namespace {

struct PointResult
{
    sched::StreamResult result;
    sched::StreamScheduler::Counters counters;
    std::string dump; ///< full report, run stats included
};

PointResult
runPoint(harness::Workload &wl, const sim::MachineConfig &cfg,
         const sched::StreamConfig &scfg,
         const sched::ResilienceConfig &res, const sim::FaultConfig &fc,
         const sim::EngineConfig &engine, sched::TraceCache *cache)
{
    // A fresh plan per run keeps the fired-outage log per-engine; the
    // windows themselves are a pure function of the seed, so both
    // engines consume identical outage schedules.
    sim::FaultPlan plan(fc);
    harness::RunOptions ro;
    ro.engine = engine;
    ro.faults = fc.rate > 0.0 ? &plan : nullptr;
    sched::StreamScheduler sched(wl, cfg, scfg, ro, cache, res);
    PointResult out;
    out.result = sched.run();
    out.counters = sched.counters();
    out.dump = toJson(out.result, /*include_run_stats=*/true).dump();
    return out;
}

} // namespace

int
run(harness::BenchContext &ctx)
{
    harness::BenchOptions &opts = ctx.opts;
    harness::ObsSession &session = ctx.session;

    const unsigned instances =
        opts.streamInstances ? opts.streamInstances : 16;
    const auto policy = sched::parsePolicy(opts.streamPolicy);
    if (!policy) {
        std::cerr << "resilience_sweep: bad --stream-policy\n";
        return 2;
    }

    // Defaults sized to the tiny-scale service-time distribution
    // (p50 ~0.9 Mcyc, Q12 straggler ~2 Mcyc): the deadline is generous
    // at light load and binding once queues or outages inflate the tail.
    sched::ResilienceConfig res;
    res.deadline = opts.deadlineCycles ? opts.deadlineCycles : 2500000;
    res.queueCapacity =
        opts.queueCapacity != ~std::uint64_t{0}
            ? static_cast<unsigned>(opts.queueCapacity)
            : 4;
    if (auto sp = sched::parseShedPolicy(opts.shedPolicy))
        res.shed = *sp;
    res.nodeFailures = true;
    res.breakerThreshold =
        opts.breakerThreshold > 0.0 ? opts.breakerThreshold : 0.5;
    res.breakerWindow = 4;
    res.breakerCooldown = 500000;

    std::cout << "=== Resilience sweep: node failures x offered load ("
              << instances << " instances, seed " << opts.streamSeed
              << ", deadline " << res.deadline << ", queue cap "
              << res.queueCapacity << ", shed "
              << sched::shedPolicyName(res.shed) << ") ===\n\n";

    harness::Workload wl(opts.scaleConfig(), 4);
    const sim::MachineConfig cfg = ctx.config();
    session.wireMemprof(cfg, &wl.db().catalog());

    // Captures are pure, so a shared cache never influences simulated
    // results — but the report embeds cache hit/miss stats, so each
    // engine gets its own cache: both see the same fetch sequence and
    // the byte-identity check covers the cache block too.
    sched::TraceCache cacheSeq(opts.traceCacheCapacity);
    sched::TraceCache cachePar(opts.traceCacheCapacity);
    sched::TraceCache *cacheSeqP = opts.traceCache ? &cacheSeq : nullptr;
    sched::TraceCache *cacheParP = opts.traceCache ? &cachePar : nullptr;

    sched::StreamConfig base;
    base.instances = instances;
    base.seed = opts.streamSeed;
    base.policy = *policy;
    base.mode = sched::ArrivalMode::Open;

    const double rate_sweep[] = {0.0, 0.5, 1.0};
    const sim::Cycles gap_sweep[] = {1000000, 500000, 250000, 125000};

    harness::TextTable tab({"gap", "rate", "outages", "goodput", "timeout",
                            "shed", "aband", "migr", "qpeak", "trips",
                            "recov", "p95(ok)", "bitident"});
    obs::Json &figure = session.extra();
    unsigned violations = 0;
    auto violate = [&](const std::string &what) {
        std::cerr << "resilience_sweep: INVARIANT VIOLATION: " << what
                  << '\n';
        ++violations;
    };

    for (sim::Cycles gap : gap_sweep) {
        for (double rate : rate_sweep) {
            sched::StreamConfig scfg = base;
            scfg.meanInterarrival = gap;

            sim::FaultConfig fc = opts.faultConfig();
            fc.rate = rate;
            fc.kinds = sim::FaultConfig::bitOf(sim::FaultKind::NodeFailure);
            fc.nodeMeanUpCycles = 6000000;
            fc.nodeDownCycles = 1500000;

            PointResult seq = runPoint(wl, cfg, scfg, res, fc,
                                       sim::EngineConfig::seq(), cacheSeqP);
            PointResult par = runPoint(wl, cfg, scfg, res, fc,
                                       sim::EngineConfig::par(2), cacheParP);
            const bool identical = seq.dump == par.dump;
            const std::string label = "gap" + std::to_string(gap) +
                                      " rate" + harness::fixed(rate, 2);
            if (!identical)
                violate(label + ": seq and par stream reports differ");

            const sched::ResilienceReport &rep = seq.result.resilience;
            const sched::ClassSlo &t = rep.total;
            const std::uint64_t shed_total =
                t.shedQueue + t.shedBreaker + t.shedExpired;
            if (seq.counters.queuePeak > res.queueCapacity)
                violate(label + ": queue peak " +
                        std::to_string(seq.counters.queuePeak) +
                        " exceeds capacity " +
                        std::to_string(res.queueCapacity));
            if (t.submitted != instances ||
                t.goodput + t.timeouts + shed_total + t.abandoned !=
                    t.submitted)
                violate(label + ": outcome accounting does not sum to " +
                        std::to_string(instances));
            if (t.goodput > instances)
                violate(label + ": goodput exceeds offered instances");
            if (t.goodput == 0)
                violate(label + ": goodput collapsed to zero");
            if (rep.breakerTrips > 0 && rep.breakerRecoveries == 0)
                violate(label + ": breaker tripped but never recovered");
            if (rate == 0.0 && !rep.outages.empty())
                violate(label + ": outages reported at rate 0");

            tab.addRow({std::to_string(gap), harness::fixed(rate, 2),
                        std::to_string(rep.outages.size()),
                        std::to_string(t.goodput),
                        std::to_string(t.timeouts),
                        std::to_string(shed_total),
                        std::to_string(t.abandoned),
                        std::to_string(t.migrations),
                        std::to_string(seq.counters.queuePeak),
                        std::to_string(rep.breakerTrips),
                        std::to_string(rep.breakerRecoveries),
                        harness::fixed(seq.result.latency.p95, 0),
                        identical ? "yes" : "NO"});

            if (session.wantJson()) {
                obs::Json point =
                    toJson(seq.result, /*include_run_stats=*/false);
                point["label"] = label;
                point["gap"] = obs::Json(gap);
                point["rate"] = obs::Json(rate);
                point["bit_identical"] = obs::Json(identical);
                figure["points"].push(std::move(point));
            }
        }
    }

    tab.print(std::cout);

    // Breaker life-cycle scenario: a long failure window shrinks the
    // machine while arrivals keep coming, the slow classes' timeout rate
    // crosses the threshold and trips their breakers, and once the nodes
    // return a half-open probe closes them again. Trips AND recoveries
    // are hard requirements here — this is the path the sweep's lighter
    // points may not reach.
    std::cout << "\nBreaker life cycle under a failure window\n";
    {
        sched::StreamConfig scfg = base;
        scfg.instances = std::max(instances, 24u);
        scfg.meanInterarrival = 300000;

        sched::ResilienceConfig bres = res;
        bres.deadline = 2200000;
        bres.queueCapacity = 12;
        bres.breakerCooldown = 500000;

        sim::FaultConfig fc = opts.faultConfig();
        fc.rate = 1.0;
        fc.kinds = sim::FaultConfig::bitOf(sim::FaultKind::NodeFailure);
        fc.nodeMeanUpCycles = 2000000;
        fc.nodeDownCycles = 2000000;

        PointResult seq = runPoint(wl, cfg, scfg, bres, fc,
                                   sim::EngineConfig::seq(), cacheSeqP);
        PointResult par = runPoint(wl, cfg, scfg, bres, fc,
                                   sim::EngineConfig::par(2), cacheParP);
        const sched::ResilienceReport &rep = seq.result.resilience;
        if (seq.dump != par.dump)
            violate("breaker scenario: seq and par reports differ");
        if (rep.breakerTrips == 0)
            violate("breaker scenario: breaker never tripped");
        if (rep.breakerRecoveries == 0)
            violate("breaker scenario: breaker never recovered");
        std::cout << "  outages=" << rep.outages.size()
                  << " degraded_cycles=" << rep.degradedCycles
                  << " timeouts=" << rep.total.timeouts
                  << " shed_breaker=" << rep.total.shedBreaker
                  << " trips=" << rep.breakerTrips
                  << " recoveries=" << rep.breakerRecoveries << '\n';
        for (const auto &kv : rep.breakerStates)
            std::cout << "  class " << kv.first << ": " << kv.second
                      << " at stream end\n";
        if (session.wantJson()) {
            obs::Json point =
                toJson(seq.result, /*include_run_stats=*/false);
            point["label"] = obs::Json(std::string("breaker_lifecycle"));
            figure["breaker_lifecycle"] = std::move(point);
        }
    }

    // The report schema expects a standard "runs" array; anchor it with
    // one solo run per traced query (also warms the shared cache).
    for (tpcd::QueryId q :
         {tpcd::QueryId::Q3, tpcd::QueryId::Q6, tpcd::QueryId::Q12}) {
        sched::StreamConfig solo = base;
        solo.instances = 1;
        solo.mix = {{q, 1}};
        solo.paramVariants = 1;
        harness::RunOptions ro;
        ro.engine = opts.engine;
        ro.registrySnapshot = session.registrySlot();
        sched::StreamScheduler s(wl, cfg, solo, ro, cacheSeqP);
        sched::StreamResult r = s.run();
        session.addRun("solo " + tpcd::queryName(q),
                       r.records.front().stats);
    }

    std::cout << "\nVerdict: "
              << (violations == 0
                      ? "resilient — bounded queues, conserved outcomes, "
                        "breaker recovery and engine-invariant reports at "
                        "every swept point"
                      : "FAILED — " + std::to_string(violations) +
                            " invariant violation(s), see stderr")
              << ".\n";

    bool ok = session.finish(cfg, std::cerr);
    return ok && violations == 0 ? 0 : 1;
}

int
main(int argc, char **argv)
{
    return harness::benchMain("resilience_sweep", argc, argv,
                                 harness::BenchOptions::kAll | harness::BenchOptions::kStream |
            harness::BenchOptions::kResilience, run);
}
