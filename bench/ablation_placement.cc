/**
 * @file
 * Ablation: NUMA page-placement policy (sim/placement.hh).
 *
 * The paper measures remote-memory transactions as the dominant stall
 * source (80-cycle local vs. 249-cycle 2-hop vs. 351-cycle 3-hop,
 * Section 3.1) and names data placement as the CC-NUMA lever against
 * them. This sweep runs the three traced queries under every placement
 * policy and shows where the demand transactions land (local / 2-hop /
 * 3-hop) next to the paper-style time breakdown.
 *
 * The profile policy is exercised end-to-end in-process: the per-page
 * access histogram is collected from the traces, round-tripped through
 * its JSON wire format (the same bytes --page-profile writes and
 * --placement profile:<path> reads back), and used to home each page at
 * its majority accessor.
 *
 * Expected shapes: interleave scatters homes uniformly, so ~1/N of
 * demand transactions are local. first-touch and profile home pages at
 * their (first/majority) accessor — private-ish pages turn local, truly
 * shared pages keep paying remote hops. class-affinity concentrates
 * metadata at node 0: that node's metadata turns local and dirty-remote
 * metadata transfers lose their third hop (owner or home coincide more
 * often), which is visible on the metadata-heavy Q3.
 */

#include <array>
#include <iostream>
#include <string>

#include "harness/bench_main.hh"
#include "harness/options.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "obs/pageprof.hh"

using namespace dss;

int
run(harness::BenchContext &ctx)
{
    harness::BenchOptions &opts = ctx.opts;
    harness::ObsSession &session = ctx.session;

    std::cout << "=== Ablation: NUMA page-placement policy ===\n\n";

    harness::Workload wl(opts.scaleConfig(), 4);
    const sim::MachineConfig cfg = ctx.config();
    session.wireMemprof(cfg, &wl.db().catalog());
    const sim::PlacementPolicy::Geometry g{
        cfg.nprocs, cfg.pageBytes, sim::AddressSpace::kPrivateBase,
        sim::AddressSpace::kPrivateStride};

    const sim::PlacementKind kinds[] = {
        sim::PlacementKind::Interleave, sim::PlacementKind::FirstTouch,
        sim::PlacementKind::ClassAffinity, sim::PlacementKind::Profile};

    obs::Json figure = obs::Json::array();

    for (tpcd::QueryId q : {tpcd::QueryId::Q3, tpcd::QueryId::Q6,
                            tpcd::QueryId::Q12}) {
        harness::TraceSet traces = wl.trace(q);

        // The profile policy's first pass: histogram the traces and
        // round-trip through the --page-profile JSON format.
        obs::PageProfile prof(cfg.pageBytes);
        prof.addTraces(harness::tracePtrs(traces));
        const std::vector<sim::PageAccessCounts> hist =
            obs::PageProfile::parse(prof.toJson(), cfg.pageBytes);

        harness::TextTable tab({"policy", "exec cycles", "Busy%", "Mem%",
                                "MSync%", "local", "2-hop", "3-hop",
                                "3-hop vs interleave"});
        std::uint64_t base_hop3 = 0;

        for (sim::PlacementKind kind : kinds) {
            std::unique_ptr<sim::PlacementPolicy> policy;
            switch (kind) {
              case sim::PlacementKind::Interleave:
                policy = sim::PlacementPolicy::interleave(g);
                break;
              case sim::PlacementKind::FirstTouch:
                policy = sim::PlacementPolicy::firstTouch(g);
                break;
              case sim::PlacementKind::ClassAffinity:
                policy =
                    sim::PlacementPolicy::classAffinity(g, wl.db().space());
                break;
              case sim::PlacementKind::Profile:
                policy = sim::PlacementPolicy::profile(g, hist);
                break;
            }

            harness::RunOptions ro = session.runOptions();
            ro.placement = policy.get();
            sim::SimStats stats = harness::runCold(cfg, traces, ro);
            const std::string label = std::string(tpcd::queryName(q)) +
                                      "/" + policy->name();
            session.addRun(label, stats);

            sim::ProcStats agg = stats.aggregate();
            std::array<std::uint64_t, sim::ProcStats::kNumHopClasses>
                hops{};
            for (std::size_t h = 0; h < hops.size(); ++h)
                hops[h] = agg.hopsOfClass(h);
            if (kind == sim::PlacementKind::Interleave)
                base_hop3 = hops[2];

            harness::TimeBreakdown tb = harness::timeBreakdown(stats);
            const double delta =
                base_hop3 > 0
                    ? 100.0 *
                          (static_cast<double>(hops[2]) -
                           static_cast<double>(base_hop3)) /
                          static_cast<double>(base_hop3)
                    : 0.0;
            tab.addRow({policy->name(), std::to_string(tb.total),
                        harness::fixed(100 * tb.busy),
                        harness::fixed(100 * tb.mem),
                        harness::fixed(100 * tb.msync),
                        std::to_string(hops[0]), std::to_string(hops[1]),
                        std::to_string(hops[2]),
                        harness::fixed(delta, 1) + "%"});

            if (session.wantJson()) {
                obs::Json row = obs::Json::object();
                row["query"] = tpcd::queryName(q);
                row["policy"] = policy->name();
                row["execCycles"] = tb.total;
                row["busyPct"] = 100 * tb.busy;
                row["memPct"] = 100 * tb.mem;
                row["msyncPct"] = 100 * tb.msync;
                row["local"] = hops[0];
                row["hop2"] = hops[1];
                row["hop3"] = hops[2];
                row["hop3DeltaPct"] = delta;
                figure.push(std::move(row));
            }
        }
        std::cout << tpcd::queryName(q) << '\n';
        tab.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "Reading: hop counts cover demand transactions (read "
                 "miss, write\nupgrade/allocate, lock RMW). Local costs "
                 "80 cycles, 2-hop 249, 3-hop 351\n(Section 3.1), so a "
                 "policy that converts 3-hop and 2-hop transactions "
                 "into\nlocal ones attacks the dominant stall term "
                 "directly.\n";

    if (session.wantJson())
        session.extra()["placementSweep"] = std::move(figure);
    return session.finish(cfg, std::cerr) ? 0 : 1;
}

int
main(int argc, char **argv)
{
    return harness::benchMain("ablation_placement", argc, argv,
                                 harness::BenchOptions::kEngine | harness::BenchOptions::kJson |
            harness::BenchOptions::kScale | harness::BenchOptions::kCheck |
            harness::BenchOptions::kMemprof, run);
}
