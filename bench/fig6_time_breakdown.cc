/**
 * @file
 * Figure 6: (a) normalized execution-time breakdown (Busy / Mem / MSync)
 * and (b) memory-stall decomposition by data-structure group (Data / Index
 * / Metadata / Priv) for Q3, Q6 and Q12 on the baseline machine.
 *
 * Paper reference shapes: Busy 50-70%, Mem 30-35%; Q3's shared stall is
 * dominated by Index + Metadata, Q6/Q12's by Data; Priv is roughly even
 * across queries.
 */

#include <iostream>

#include "harness/bench_main.hh"
#include "harness/options.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace dss;

int
run(harness::BenchContext &ctx)
{
    harness::BenchOptions &opts = ctx.opts;
    harness::ObsSession &session = ctx.session;

    std::cout << "=== Figure 6: execution time and memory-stall breakdown "
                 "(baseline machine) ===\n\n";

    harness::Workload wl(opts.scaleConfig(), 4);
    const sim::MachineConfig cfg = ctx.config();
    session.usePlacement(
        harness::makePlacement(opts, cfg, &wl.db().space()));
    session.wireMemprof(cfg, &wl.db().catalog());

    const tpcd::QueryId queries[] = {tpcd::QueryId::Q3, tpcd::QueryId::Q6,
                                     tpcd::QueryId::Q12};

    harness::TextTable fig6a(
        {"query", "cycles", "Busy%", "Mem%", "MSync%"});
    harness::TextTable fig6b(
        {"query", "Data%", "Index%", "Metadata%", "Priv%"});

    for (tpcd::QueryId q : queries) {
        harness::TraceSet traces = wl.trace(q);
        sim::SimStats stats =
            harness::runCold(cfg, traces, session.runOptions());
        session.addRun(tpcd::queryName(q), stats);

        harness::TimeBreakdown tb = harness::timeBreakdown(stats);
        fig6a.addRow({tpcd::queryName(q), std::to_string(tb.total),
                      harness::fixed(100 * tb.busy),
                      harness::fixed(100 * tb.mem),
                      harness::fixed(100 * tb.msync)});

        harness::MemBreakdown mb = harness::memBreakdown(stats);
        auto g = [&](sim::ClassGroup gg) {
            return harness::fixed(
                100 * mb.byGroup[static_cast<std::size_t>(gg)]);
        };
        fig6b.addRow({tpcd::queryName(q), g(sim::ClassGroup::Data),
                      g(sim::ClassGroup::Index),
                      g(sim::ClassGroup::Metadata),
                      g(sim::ClassGroup::Priv)});
    }

    std::cout << "Figure 6(a): execution time breakdown\n";
    fig6a.print(std::cout);
    std::cout << "\nFigure 6(b): memory stall time by structure\n";
    fig6b.print(std::cout);
    return session.finish(cfg, std::cerr) ? 0 : 1;
}

int
main(int argc, char **argv)
{
    return harness::benchMain("fig6_time_breakdown", argc, argv,
                                 harness::BenchOptions::kAll, run);
}
