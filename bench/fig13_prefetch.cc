/**
 * @file
 * Figure 13: impact of simple sequential prefetching for database data.
 * For each access to Data-class memory the hardware prefetches the next 4
 * primary-cache lines into the L1. Execution time is shown for the
 * baseline (Base) and baseline+prefetch (Opt), normalized to Base = 100,
 * broken into Busy / PMem / SMem / MSync.
 *
 * Paper reference shapes: Q6 and Q12 gain a modest 5-6%; Q3 slows down
 * slightly; PMem increases a little everywhere (prefetches disturb the
 * primary cache).
 */

#include <iostream>

#include "harness/bench_main.hh"
#include "harness/options.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace dss;

int
run(harness::BenchContext &ctx)
{
    harness::BenchOptions &opts = ctx.opts;
    harness::ObsSession &session = ctx.session;
    std::cout << "=== Figure 13: sequential data prefetching (Base = 100) "
                 "===\n\n";

    harness::Workload wl(tpcd::ScaleConfig::paperScale(), 4);
    const sim::MachineConfig base_cfg = ctx.config();
    session.usePlacement(
        harness::makePlacement(opts, base_cfg, &wl.db().space()));
    session.wireMemprof(base_cfg, &wl.db().catalog());
    sim::MachineConfig opt_cfg = base_cfg;
    opt_cfg.prefetchData = true;
    opt_cfg.prefetchDegree = 4;

    harness::TextTable tab({"query", "config", "Busy", "PMem", "SMem",
                            "MSync", "Total", "pf issued", "pf useful"});

    for (tpcd::QueryId q : {tpcd::QueryId::Q3, tpcd::QueryId::Q6,
                            tpcd::QueryId::Q12}) {
        harness::TraceSet traces = wl.trace(q);
        sim::ProcStats base =
            harness::runCold(base_cfg, traces, session.runOptions())
                .aggregate();
        sim::ProcStats opt =
            harness::runCold(opt_cfg, traces, session.runOptions())
                .aggregate();

        const double denom = static_cast<double>(base.totalCycles());
        auto row = [&](const char *cfg_name, const sim::ProcStats &s) {
            auto n = [&](sim::Cycles c) {
                return harness::fixed(
                    100.0 * static_cast<double>(c) / denom, 1);
            };
            tab.addRow({tpcd::queryName(q), cfg_name, n(s.busy),
                        n(s.pmem()), n(s.smem()), n(s.syncStall),
                        n(s.totalCycles()),
                        std::to_string(s.prefetchesIssued),
                        std::to_string(s.prefetchesUseful)});
        };
        row("Base", base);
        row("Opt", opt);
    }
    tab.print(std::cout);
    return session.finish(base_cfg, std::cerr) ? 0 : 1;
}

int
main(int argc, char **argv)
{
    return harness::benchMain("fig13_prefetch", argc, argv,
                                 harness::BenchOptions::kEngine | harness::BenchOptions::kPlacement |
            harness::BenchOptions::kJson | harness::BenchOptions::kMemprof, run);
}
