/**
 * @file
 * Section 3.4 taxonomy check over ALL 17 read-only queries.
 *
 * The paper derives its Sequential/Index classification from the three
 * traced queries and the plans of Table 1. Here we trace and simulate
 * every read-only query and *measure* the classification: a query whose
 * shared L2 misses are dominated by database data is Sequential-like; one
 * dominated by indices + metadata is Index-like; in between is Mixed.
 * The measured classes should line up with the Table 1 grouping.
 */

#include <array>
#include <iostream>

#include "harness/bench_main.hh"
#include "harness/options.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

using namespace dss;

namespace {

const char *
className(tpcd::QueryClass c)
{
    switch (c) {
      case tpcd::QueryClass::Sequential: return "Sequential";
      case tpcd::QueryClass::Index: return "Index";
      default: return "Mixed";
    }
}

} // namespace

int
run(harness::BenchContext &ctx)
{
    harness::BenchOptions &opts = ctx.opts;
    harness::ObsSession &session = ctx.session;

    std::cout << "=== Taxonomy: measured access-pattern class of Q1..Q17 "
                 "===\n\n";

    // The default population here is already reduced from the paper scale:
    // it keeps the long-plan queries quick, and the class boundaries are
    // scale-invariant. --scale tiny shrinks it further for smoke tests.
    tpcd::ScaleConfig scale;
    scale.customers = 300;
    scale.parts = 400;
    scale.suppliers = 20;
    if (opts.scale == "tiny")
        scale = tpcd::ScaleConfig::tiny();
    harness::Workload wl(scale, 4);
    const sim::MachineConfig cfg = ctx.config();
    session.usePlacement(
        harness::makePlacement(opts, cfg, &wl.db().space()));
    session.wireMemprof(cfg, &wl.db().catalog());

    harness::TextTable tab({"query", "Data% of shared L2 misses",
                            "Index+Meta%", "measured class",
                            "paper class", "agree"});
    obs::Json taxonomy = obs::Json::array();
    int agreements = 0;
    // NUMA hop histogram (local / 2-hop / 3-hop demand transactions per
    // data-structure group), summed over all queries.
    std::array<std::array<std::uint64_t, sim::ProcStats::kNumHopClasses>,
               sim::kNumClassGroups>
        hops{};
    for (int qi = 1; qi <= tpcd::kNumQueries; ++qi) {
        auto q = static_cast<tpcd::QueryId>(qi);
        harness::TraceSet traces = wl.trace(q);
        sim::SimStats stats =
            harness::runCold(cfg, traces, session.runOptions());
        session.addRun(tpcd::queryName(q), stats);
        sim::ProcStats agg = stats.aggregate();
        for (std::size_t g = 0; g < sim::kNumClassGroups; ++g)
            for (std::size_t h = 0; h < sim::ProcStats::kNumHopClasses;
                 ++h)
                hops[g][h] += agg.hopsByGroup[g][h];

        const double data = static_cast<double>(
            agg.l2Misses().byGroup(sim::ClassGroup::Data));
        const double index = static_cast<double>(
            agg.l2Misses().byGroup(sim::ClassGroup::Index));
        const double meta = static_cast<double>(
            agg.l2Misses().byGroup(sim::ClassGroup::Metadata));
        const double shared = std::max(1.0, data + index + meta);

        const double data_share = data / shared;
        tpcd::QueryClass measured =
            data_share > 0.70 ? tpcd::QueryClass::Sequential
            : data_share < 0.40 ? tpcd::QueryClass::Index
                                : tpcd::QueryClass::Mixed;
        tpcd::QueryClass paper = tpcd::queryClassOf(q);
        bool agree = measured == paper;
        agreements += agree ? 1 : 0;

        tab.addRow({tpcd::queryName(q),
                    harness::fixed(100 * data_share),
                    harness::fixed(100 * (index + meta) / shared),
                    className(measured), className(paper),
                    agree ? "yes" : "NO"});

        if (session.wantJson()) {
            obs::Json row = obs::Json::object();
            row["query"] = tpcd::queryName(q);
            row["dataSharePct"] = 100 * data_share;
            row["indexMetaSharePct"] = 100 * (index + meta) / shared;
            row["measuredClass"] = className(measured);
            row["paperClass"] = className(paper);
            row["agree"] = agree;
            taxonomy.push(std::move(row));
        }
    }
    tab.print(std::cout);
    std::cout << "\nagreement: " << agreements << "/17 queries\n"
              << "(the paper's taxonomy comes from the select algorithm "
                 "in Table 1; the\nmeasured class is derived purely from "
                 "the simulated miss mix)\n";

    if (session.wantJson()) {
        session.extra()["taxonomy"] = std::move(taxonomy);
        session.extra()["agreements"] =
            static_cast<std::int64_t>(agreements);
        obs::Json placement = obs::Json::object();
        placement["policy"] = opts.placement.str();
        obs::Json by_group = obs::Json::object();
        static const char *const kHopNames[] = {"local", "hop2", "hop3"};
        for (std::size_t g = 0; g < sim::kNumClassGroups; ++g) {
            obs::Json row = obs::Json::object();
            for (std::size_t h = 0; h < sim::ProcStats::kNumHopClasses;
                 ++h)
                row[kHopNames[h]] = hops[g][h];
            by_group[std::string(sim::classGroupName(
                static_cast<sim::ClassGroup>(g)))] = std::move(row);
        }
        placement["hopsByGroup"] = std::move(by_group);
        session.extra()["placement"] = std::move(placement);
    }
    return session.finish(cfg, std::cerr) ? 0 : 1;
}

int
main(int argc, char **argv)
{
    return harness::benchMain("taxonomy_all_queries", argc, argv,
                                 harness::BenchOptions::kAll, run);
}
