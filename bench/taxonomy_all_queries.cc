/**
 * @file
 * Section 3.4 taxonomy check over ALL 17 read-only queries.
 *
 * The paper derives its Sequential/Index classification from the three
 * traced queries and the plans of Table 1. Here we trace and simulate
 * every read-only query and *measure* the classification: a query whose
 * shared L2 misses are dominated by database data is Sequential-like; one
 * dominated by indices + metadata is Index-like; in between is Mixed.
 * The measured classes should line up with the Table 1 grouping.
 */

#include <iostream>

#include "harness/report.hh"
#include "harness/runner.hh"

using namespace dss;

namespace {

const char *
className(tpcd::QueryClass c)
{
    switch (c) {
      case tpcd::QueryClass::Sequential: return "Sequential";
      case tpcd::QueryClass::Index: return "Index";
      default: return "Mixed";
    }
}

} // namespace

int
main()
{
    std::cout << "=== Taxonomy: measured access-pattern class of Q1..Q17 "
                 "===\n\n";

    // A reduced population keeps the long-plan queries quick; the class
    // boundaries are scale-invariant.
    tpcd::ScaleConfig scale;
    scale.customers = 300;
    scale.parts = 400;
    scale.suppliers = 20;
    harness::Workload wl(scale, 4);
    const sim::MachineConfig cfg = sim::MachineConfig::baseline();

    harness::TextTable tab({"query", "Data% of shared L2 misses",
                            "Index+Meta%", "measured class",
                            "paper class", "agree"});
    int agreements = 0;
    for (int qi = 1; qi <= tpcd::kNumQueries; ++qi) {
        auto q = static_cast<tpcd::QueryId>(qi);
        harness::TraceSet traces = wl.trace(q);
        sim::ProcStats agg = harness::runCold(cfg, traces).aggregate();

        const double data = static_cast<double>(
            agg.l2Misses.byGroup(sim::ClassGroup::Data));
        const double index = static_cast<double>(
            agg.l2Misses.byGroup(sim::ClassGroup::Index));
        const double meta = static_cast<double>(
            agg.l2Misses.byGroup(sim::ClassGroup::Metadata));
        const double shared = std::max(1.0, data + index + meta);

        const double data_share = data / shared;
        tpcd::QueryClass measured =
            data_share > 0.70 ? tpcd::QueryClass::Sequential
            : data_share < 0.40 ? tpcd::QueryClass::Index
                                : tpcd::QueryClass::Mixed;
        tpcd::QueryClass paper = tpcd::queryClassOf(q);
        bool agree = measured == paper;
        agreements += agree ? 1 : 0;

        tab.addRow({tpcd::queryName(q),
                    harness::fixed(100 * data_share),
                    harness::fixed(100 * (index + meta) / shared),
                    className(measured), className(paper),
                    agree ? "yes" : "NO"});
    }
    tab.print(std::cout);
    std::cout << "\nagreement: " << agreements << "/17 queries\n"
              << "(the paper's taxonomy comes from the select algorithm "
                 "in Table 1; the\nmeasured class is derived purely from "
                 "the simulated miss mix)\n";
    return 0;
}
