/**
 * @file
 * Ablation: write-buffer depth. The paper's processors stall on
 * write-buffer overflow with 16 entries; read-only queries rarely hit
 * that limit, but the write-heavy update function UF1 (extension) does.
 * This sweep shows where the 16-entry choice sits for both.
 */

#include <iostream>

#include "harness/options.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "tpcd/updates.hh"

using namespace dss;

namespace {

sim::TraceStream
traceUF1(tpcd::TpcdDb &db, unsigned orders)
{
    sim::TraceStream stream;
    db::TracedMemory mem(db.space(), 0, stream);
    db::PrivateHeap priv(db.space(), 0);
    std::size_t mark = priv.mark();
    db::ExecContext ctx{mem, db.catalog(), priv, 9000};
    tpcd::runUF1(db, ctx, orders, 23);
    priv.rewind(mark);
    return stream;
}

} // namespace

int
benchMain(int argc, char **argv)
{
    const harness::BenchOptions opts = harness::BenchOptions::parse(
        argc, argv, "ablation_write_buffer",
        harness::BenchOptions::kEngine | harness::BenchOptions::kPlacement |
            harness::BenchOptions::kJson | harness::BenchOptions::kMemprof);
    harness::ObsSession session("ablation_write_buffer", opts);
    std::cout << "=== Ablation: write-buffer depth ===\n\n";

    harness::Workload wl(tpcd::ScaleConfig::paperScale(), 4);
    harness::TraceSet q6 = wl.trace(tpcd::QueryId::Q6);

    tpcd::TpcdDb update_db(tpcd::ScaleConfig::paperScale(), 1);
    session.wireMemprof(sim::MachineConfig::baseline(),
                        &wl.db().catalog());
    harness::TraceSet uf1;
    uf1.push_back(traceUF1(update_db, update_db.scale().orders() / 20));

    for (auto [name, traces, procs, space] :
         {std::tuple<const char *, harness::TraceSet *, unsigned,
                     sim::AddressSpace *>{"Q6 (read-only)", &q6, 4u,
                                          &wl.db().space()},
          {"UF1 (write-heavy, 1 proc)", &uf1, 1u, &update_db.space()}}) {
        harness::TextTable tab({"entries", "exec cycles", "overflows",
                                "Mem%"});
        for (std::size_t entries : {1, 4, 16, 64}) {
            sim::MachineConfig cfg = sim::MachineConfig::baseline();
            cfg.nprocs = procs;
            cfg.writeBufferEntries = entries;
            // Geometry (nprocs) and address space differ per workload.
            auto placement = harness::makePlacement(opts, cfg, space);
            harness::RunOptions ro = session.runOptions();
            ro.placement = placement.get();
            sim::ProcStats agg =
                harness::runCold(cfg, *traces, ro).aggregate();
            tab.addRow({std::to_string(entries),
                        std::to_string(agg.totalCycles()),
                        std::to_string(agg.wbOverflows),
                        harness::pct(static_cast<double>(agg.memStall),
                                     static_cast<double>(
                                         agg.totalCycles()))});
        }
        std::cout << name << '\n';
        tab.print(std::cout);
        std::cout << '\n';
    }
    return session.finish(sim::MachineConfig::baseline(), std::cerr) ? 0
                                                                     : 1;
}

int
main(int argc, char **argv)
{
    return harness::guardedMain("ablation_write_buffer", argc, argv, benchMain);
}
