/**
 * @file
 * Ablation: write-buffer depth. The paper's processors stall on
 * write-buffer overflow with 16 entries; read-only queries rarely hit
 * that limit, but the write-heavy update function UF1 (extension) does.
 * This sweep shows where the 16-entry choice sits for both.
 */

#include <iostream>

#include "harness/bench_main.hh"
#include "harness/options.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "tpcd/updates.hh"

using namespace dss;

namespace {

sim::TraceStream
traceUF1(tpcd::TpcdDb &db, unsigned orders)
{
    sim::TraceStream stream;
    db::TracedMemory mem(db.space(), 0, stream);
    db::PrivateHeap priv(db.space(), 0);
    std::size_t mark = priv.mark();
    db::ExecContext ctx{mem, db.catalog(), priv, 9000};
    tpcd::runUF1(db, ctx, orders, 23);
    priv.rewind(mark);
    return stream;
}

} // namespace

int
run(harness::BenchContext &ctx)
{
    harness::BenchOptions &opts = ctx.opts;
    harness::ObsSession &session = ctx.session;
    std::cout << "=== Ablation: write-buffer depth ===\n\n";

    harness::Workload wl(tpcd::ScaleConfig::paperScale(), 4);
    harness::TraceSet q6 = wl.trace(tpcd::QueryId::Q6);

    tpcd::TpcdDb update_db(tpcd::ScaleConfig::paperScale(), 1);
    session.wireMemprof(ctx.config(),
                        &wl.db().catalog());
    harness::TraceSet uf1;
    uf1.push_back(traceUF1(update_db, update_db.scale().orders() / 20));

    for (auto [name, traces, procs, space] :
         {std::tuple<const char *, harness::TraceSet *, unsigned,
                     sim::AddressSpace *>{"Q6 (read-only)", &q6, 4u,
                                          &wl.db().space()},
          {"UF1 (write-heavy, 1 proc)", &uf1, 1u, &update_db.space()}}) {
        harness::TextTable tab({"entries", "exec cycles", "overflows",
                                "Mem%"});
        for (std::size_t entries : {1, 4, 16, 64}) {
            sim::MachineConfig cfg = ctx.config();
            cfg.nprocs = procs;
            cfg.writeBufferEntries = entries;
            // Geometry (nprocs) and address space differ per workload.
            auto placement = harness::makePlacement(opts, cfg, space);
            harness::RunOptions ro = session.runOptions();
            ro.placement = placement.get();
            sim::ProcStats agg =
                harness::runCold(cfg, *traces, ro).aggregate();
            tab.addRow({std::to_string(entries),
                        std::to_string(agg.totalCycles()),
                        std::to_string(agg.wbOverflows),
                        harness::pct(static_cast<double>(agg.memStall),
                                     static_cast<double>(
                                         agg.totalCycles()))});
        }
        std::cout << name << '\n';
        tab.print(std::cout);
        std::cout << '\n';
    }
    return session.finish(ctx.config(), std::cerr) ? 0
                                                                     : 1;
}

int
main(int argc, char **argv)
{
    return harness::benchMain("ablation_write_buffer", argc, argv,
                                 harness::BenchOptions::kEngine | harness::BenchOptions::kPlacement |
            harness::BenchOptions::kJson | harness::BenchOptions::kMemprof, run);
}
