/**
 * @file
 * Extension: the TPC-D update functions UF1/UF2 (the paper describes them
 * in Section 2.2.2 but traces read-only queries only, because Postgres95
 * implements just relation-level datalocks).
 *
 * This bench characterizes their single-processor memory behaviour the
 * same way Figures 6/7 characterize the read-only queries: time breakdown
 * and the miss mix by structure. Expected character: write-dominated
 * traffic with heavy Index activity (B-tree maintenance) and lock-manager
 * metadata, i.e. far more "demanding on the locking algorithm" than the
 * read-only queries — the paper's stated reason for excluding them.
 */

#include <iostream>

#include "harness/bench_main.hh"
#include "harness/options.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "tpcd/updates.hh"

using namespace dss;

namespace {

sim::TraceStream
traceUpdate(tpcd::TpcdDb &db, bool uf1, unsigned orders, std::uint64_t seed)
{
    sim::TraceStream stream;
    db::TracedMemory mem(db.space(), 0, stream);
    db::PrivateHeap priv(db.space(), 0);
    std::size_t mark = priv.mark();
    const auto xid = static_cast<db::Xid>(7000 + seed);
    db::ExecContext ctx{mem, db.catalog(), priv, xid};
    try {
        if (uf1)
            tpcd::runUF1(db, ctx, orders, seed);
        else
            tpcd::runUF2(db, ctx, orders);
    } catch (const db::QueryAbort &) {
        // Abort cleanly: drop every lock this xid still holds and free
        // its private allocations, so the retry starts from scratch.
        db.lockmgr().releaseAll(mem, xid);
        priv.rewind(mark);
        throw;
    }
    priv.rewind(mark);
    return stream;
}

} // namespace

int
run(harness::BenchContext &ctx)
{
    harness::BenchOptions &opts = ctx.opts;
    harness::ObsSession &session = ctx.session;
    std::cout << "=== Extension: TPC-D update functions UF1 / UF2 "
                 "(single processor) ===\n\n";

    tpcd::TpcdDb db(tpcd::ScaleConfig::paperScale(), 1);
    // TPC-D updates touch ~0.1% of orders per function; scale that up a
    // bit so the trace is meaningful.
    const unsigned batch = db.scale().orders() / 20;

    sim::MachineConfig cfg = ctx.config();
    cfg.nprocs = 1;
    session.usePlacement(harness::makePlacement(opts, cfg, &db.space()));
    session.wireMemprof(cfg, &db.catalog());

    // A rival transaction holds the orders relation write-locked, so the
    // first UF1 attempt hits a Write/Write conflict and aborts. The
    // harness retry layer backs off and re-runs; the rival commits in the
    // meantime (released below on the retry), so the query survives the
    // contended schedule instead of crashing — the robustness story for
    // the workloads the paper excluded.
    constexpr db::Xid kRivalXid = 6999;
    sim::TraceStream rival_trace;
    db::TracedMemory rival_mem(db.space(), 0, rival_trace);
    db.lockmgr().lockRelation(rival_mem, kRivalXid, db.orders,
                              db::LockMode::Write);
    bool rival_holds = true;

    unsigned attempts = 0;

    harness::TextTable tab({"function", "orders", "exec cycles", "Busy%",
                            "Mem%", "writes/reads"});
    for (bool uf1 : {true, false}) {
        sim::TraceStream trace = harness::retryOnAbort(
            harness::RetryPolicy{},
            [&]() -> sim::TraceStream {
                if (attempts++ > 0 && rival_holds) {
                    // The rival commits while we are backing off.
                    db.lockmgr().releaseAll(rival_mem, kRivalXid);
                    rival_holds = false;
                }
                return traceUpdate(db, uf1, batch, 17);
            },
            nullptr, &std::cerr);
        harness::TraceSet set;
        set.push_back(std::move(trace));
        sim::SimStats stats =
            harness::runCold(cfg, set, session.runOptions());
        sim::ProcStats agg = stats.aggregate();
        auto counts = set[0].counts();
        tab.addRow(
            {uf1 ? "UF1 (insert)" : "UF2 (delete)", std::to_string(batch),
             std::to_string(agg.totalCycles()),
             harness::pct(static_cast<double>(agg.busy),
                          static_cast<double>(agg.totalCycles())),
             harness::pct(static_cast<double>(agg.memStall),
                          static_cast<double>(agg.totalCycles())),
             harness::fixed(static_cast<double>(counts.writes) /
                                static_cast<double>(
                                    std::max<std::uint64_t>(1,
                                                            counts.reads)),
                            2)});

        std::cout << (uf1 ? "UF1" : "UF2")
                  << ": L2 read-miss mix by structure\n";
        harness::printMissTable(std::cout, "", agg.l2Misses());
        std::cout << '\n';
    }
    tab.print(std::cout);

    std::cout << "\nLock conflicts: " << attempts
              << " attempts across both functions, "
              << (attempts > 2 ? attempts - 2 : 0)
              << " Write/Write abort(s) retried with backoff until the "
                 "rival transaction committed.\n";

    std::cout
        << "\nContext: the read-only queries write almost nothing "
           "(write/read ratios\nnear zero); the update functions are "
           "write-heavy and spend their shared\nmisses on indices and "
           "metadata — with relation-level-only datalocks each\nstatement "
           "holds an exclusive table lock, which is why the paper calls "
           "update\nqueries 'much more demanding on the locking "
           "algorithm' and excludes them.\n";
    return session.finish(cfg, std::cerr) ? 0 : 1;
}

int
main(int argc, char **argv)
{
    return harness::benchMain("ext_update_queries", argc, argv,
                                 harness::BenchOptions::kEngine | harness::BenchOptions::kPlacement |
            harness::BenchOptions::kJson | harness::BenchOptions::kMemprof, run);
}
