/**
 * @file
 * Inter-query data reuse (the paper's Figure 12 experiment as a library
 * walkthrough): run Q12 with cold caches, then again right after another
 * query, and watch which misses disappear.
 */

#include <iostream>

#include "harness/report.hh"
#include "harness/runner.hh"

using namespace dss;

namespace {

void
report(const char *label, const sim::SimStats &stats)
{
    sim::ProcStats agg = stats.aggregate();
    std::cout << label << ": L2 misses " << agg.l2Misses().total()
              << " (Data " << agg.l2Misses().byGroup(sim::ClassGroup::Data)
              << ", Index " << agg.l2Misses().byGroup(sim::ClassGroup::Index)
              << ", Metadata "
              << agg.l2Misses().byGroup(sim::ClassGroup::Metadata)
              << "), exec " << agg.totalCycles() << " cycles\n";
}

} // namespace

int
main()
{
    tpcd::ScaleConfig scale;
    scale.customers = 300;
    harness::Workload wl(scale, 4);

    // Very large caches expose the upper bound on reuse (paper 5.2.2).
    sim::MachineConfig cfg =
        sim::MachineConfig::baseline().withCacheSizes(1 << 20, 32 << 20);

    harness::TraceSet q12 = wl.trace(tpcd::QueryId::Q12, 1);
    harness::TraceSet q12_other = wl.trace(tpcd::QueryId::Q12, 2);
    harness::TraceSet q3 = wl.trace(tpcd::QueryId::Q3, 3);

    std::cout << "Q12 is a Sequential query: it scans the whole lineitem "
                 "table.\n\n";

    report("cold caches             ",
           harness::runCold(cfg, q12));

    auto after_q12 = harness::runSequence(cfg, {&q12_other, &q12});
    report("right after another Q12 ", after_q12.back());

    auto after_q3 = harness::runSequence(cfg, {&q3, &q12});
    report("right after a Q3        ", after_q3.back());

    std::cout
        << "\nTakeaway: two Sequential queries over the same table reuse "
           "it almost\nentirely (the Data misses vanish); an Index query "
           "warms only the few\ntuples it touched. This is the paper's "
           "inter-query temporal locality\nresult (Figure 12).\n";
    return 0;
}
