/**
 * @file
 * Building a custom query with the public executor API.
 *
 * The paper's intro motivates DSS workloads with business questions over a
 * wholesale supplier's data. This example hand-builds a plan the TPC-D
 * suite doesn't contain — "revenue by ship mode for one market segment" —
 * out of the library's physical operators:
 *
 *   IdxScan(customer by mktsegment)
 *     -> NLJoin -> IdxScan(orders by custkey)
 *     -> NLJoin -> IdxScan(lineitem by orderkey)
 *     -> Sort(shipmode) -> GroupAggregate(sum revenue)
 *
 * and then measures its memory behaviour on the simulated machine.
 */

#include <iostream>

#include "harness/report.hh"
#include "harness/runner.hh"

using namespace dss;
using namespace dss::db;

namespace {

NodePtr
buildRevenueByShipMode(tpcd::TpcdDb &db, int segment)
{
    Catalog &cat = db.catalog();
    const Relation &cust = cat.relation(db.customer);
    const Relation &ord = cat.relation(db.orders);
    const Relation &li = cat.relation(db.lineitem);

    const std::string seg = tpcd::kMktSegments[segment];
    std::int64_t seg_key = datumToKey(Datum{seg});
    NodePtr cust_scan = std::make_unique<IndexScanNode>(
        cust, cat.index(db.idxCustomerSegment), seg_key, seg_key,
        cmp(CmpOp::Eq, col(cust.schema, "c_mktsegment"), litStr(seg)));

    NodePtr ord_scan = std::make_unique<IndexScanNode>(
        ord, cat.index(db.idxOrdersCust), IndexScanNode::kMinKey,
        IndexScanNode::kMaxKey, nullptr);
    std::vector<ProjItem> proj1{
        {false, cust.schema.indexOf("c_custkey")},
        {true, ord.schema.indexOf("o_orderkey")},
    };
    auto nl1 = std::make_unique<NestedLoopJoinNode>(
        std::move(cust_scan), std::move(ord_scan),
        cust.schema.indexOf("c_custkey"), nullptr, proj1);
    const Schema &s1 = nl1->schema();

    NodePtr li_scan = std::make_unique<IndexScanNode>(
        li, cat.index(db.idxLineitemOrder), IndexScanNode::kMinKey,
        IndexScanNode::kMaxKey, nullptr);
    std::vector<ProjItem> proj2{
        {true, li.schema.indexOf("l_shipmode")},
        {true, li.schema.indexOf("l_extendedprice")},
        {true, li.schema.indexOf("l_discount")},
    };
    auto nl2 = std::make_unique<NestedLoopJoinNode>(
        std::move(nl1), std::move(li_scan), s1.indexOf("o_orderkey"),
        nullptr, proj2);
    const Schema &s2 = nl2->schema();

    auto sort = std::make_unique<SortNode>(std::move(nl2),
                                           std::vector<std::size_t>{0});
    std::vector<AggSpec> aggs;
    aggs.push_back(
        {AggSpec::Op::Sum,
         arith(ArithOp::Mul, col(s2, "l_extendedprice"),
               arith(ArithOp::Sub, litReal(1.0), col(s2, "l_discount"))),
         "revenue"});
    aggs.push_back({AggSpec::Op::Count, nullptr, "lines"});
    return std::make_unique<AggregateNode>(
        std::move(sort), std::vector<std::size_t>{0}, std::move(aggs));
}

} // namespace

int
main()
{
    tpcd::ScaleConfig scale;
    scale.customers = 300;
    tpcd::TpcdDb db(scale, /*nprocs=*/4);

    // Answer the business question for real first.
    {
        sim::NullSink sink;
        TracedMemory mem(db.space(), 0, sink);
        PrivateHeap priv(db.space(), 0);
        ExecContext ctx{mem, db.catalog(), priv, 1};
        NodePtr plan = buildRevenueByShipMode(db, /*segment=*/0);
        auto rows = runQuery(ctx, *plan);
        std::cout << "revenue by ship mode, segment "
                  << tpcd::kMktSegments[0] << ":\n";
        for (const auto &r : rows) {
            std::cout << "  " << datumStr(r[0]) << "  revenue "
                      << harness::fixed(datumReal(r[1]), 2) << "  lines "
                      << datumInt(r[2]) << '\n';
        }
    }

    // Then trace one instance per processor and simulate.
    harness::TraceSet traces;
    for (unsigned p = 0; p < 4; ++p) {
        sim::TraceStream stream;
        TracedMemory mem(db.space(), p, stream);
        PrivateHeap priv(db.space(), p);
        std::size_t mark = priv.mark();
        ExecContext ctx{mem, db.catalog(), priv,
                        static_cast<Xid>(100 + p)};
        NodePtr plan = buildRevenueByShipMode(db, static_cast<int>(p) % 5);
        runQuery(ctx, *plan);
        priv.rewind(mark);
        traces.push_back(std::move(stream));
    }
    sim::SimStats stats =
        harness::runCold(sim::MachineConfig::baseline(), traces);

    harness::TimeBreakdown tb = harness::timeBreakdown(stats);
    std::cout << "\nsimulated on the baseline 4-processor CC-NUMA:\n"
              << "  Busy " << harness::fixed(100 * tb.busy) << "%  Mem "
              << harness::fixed(100 * tb.mem) << "%  MSync "
              << harness::fixed(100 * tb.msync) << "%\n\n";
    harness::printMissTable(std::cout,
                            "L2 read misses (an Index-style query)",
                            stats.aggregate().l2Misses());
    return 0;
}
