/**
 * @file
 * explore — a small command-line driver over the whole library.
 *
 *   explore [options]
 *     --query N        TPC-D query number 1..17 (default 6)
 *     --procs N        processors / query instances (default 4)
 *     --l1 BYTES       primary cache size (default 4096)
 *     --l2 BYTES       secondary cache size (default 131072)
 *     --line BYTES     L2 line size; L1 line is half (default 64)
 *     --prefetch N     sequential data prefetch degree (default off)
 *     --customers N    population scale (default 600)
 *     --seed N         parameter seed (default 1)
 *     --save PATH      write the captured traces to PATH
 *     --load PATH      simulate traces from PATH instead of tracing
 *
 * Examples:
 *   explore --query 3 --line 128
 *   explore --query 12 --prefetch 4
 *   explore --query 6 --save q6.trc && explore --load q6.trc --l2 1048576
 */

#include <cstring>
#include <iostream>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "sim/trace_io.hh"

using namespace dss;

namespace {

struct Options
{
    int query = 6;
    unsigned procs = 4;
    std::size_t l1 = 4096;
    std::size_t l2 = 128 * 1024;
    std::size_t line = 64;
    unsigned prefetch = 0;
    unsigned customers = 600;
    std::uint64_t seed = 1;
    std::string save;
    std::string load;
};

bool
parse(int argc, char **argv, Options &o)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto want_value = [&](const char *flag) {
            if (a != flag)
                return false;
            if (i + 1 >= argc)
                throw std::runtime_error(std::string(flag) +
                                         " needs a value");
            return true;
        };
        if (want_value("--query"))
            o.query = std::atoi(argv[++i]);
        else if (want_value("--procs"))
            o.procs = static_cast<unsigned>(std::atoi(argv[++i]));
        else if (want_value("--l1"))
            o.l1 = static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (want_value("--l2"))
            o.l2 = static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (want_value("--line"))
            o.line = static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (want_value("--prefetch"))
            o.prefetch = static_cast<unsigned>(std::atoi(argv[++i]));
        else if (want_value("--customers"))
            o.customers = static_cast<unsigned>(std::atoi(argv[++i]));
        else if (want_value("--seed"))
            o.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        else if (want_value("--save"))
            o.save = argv[++i];
        else if (want_value("--load"))
            o.load = argv[++i];
        else {
            std::cerr << "unknown option: " << a << '\n';
            return false;
        }
    }
    if (o.query < 1 || o.query > 17) {
        std::cerr << "--query must be 1..17\n";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    try {
        if (!parse(argc, argv, o))
            return 1;

        std::vector<sim::TraceStream> traces;
        if (!o.load.empty()) {
            traces = sim::loadTracesFile(o.load);
            std::cout << "loaded " << traces.size() << " streams from "
                      << o.load << '\n';
            o.procs = static_cast<unsigned>(traces.size());
        } else {
            tpcd::ScaleConfig scale;
            scale.customers = o.customers;
            scale.parts = o.customers * 4 / 3;
            scale.suppliers = std::max(10u, o.customers / 15);
            harness::Workload wl(scale, o.procs, 42);
            auto q = static_cast<tpcd::QueryId>(o.query);
            std::cout << "tracing " << tpcd::queryName(q) << " ("
                      << tpcd::kNumQueries << " available) on " << o.procs
                      << " processors...\n";
            traces = wl.trace(q, o.seed);
        }

        if (!o.save.empty()) {
            sim::saveTracesFile(o.save, traces);
            std::cout << "saved traces to " << o.save << '\n';
        }

        sim::MachineConfig cfg = sim::MachineConfig::baseline()
                                     .withLineSize(o.line)
                                     .withCacheSizes(o.l1, o.l2);
        cfg.nprocs = std::max(o.procs, 1u);
        if (o.prefetch > 0) {
            cfg.prefetchData = true;
            cfg.prefetchDegree = o.prefetch;
        }

        sim::Machine machine(cfg);
        std::vector<const sim::TraceStream *> ptrs;
        for (const auto &t : traces)
            ptrs.push_back(&t);
        sim::SimStats stats = machine.run(ptrs);
        sim::ProcStats agg = stats.aggregate();

        std::cout << "\nmachine: " << cfg.nprocs << " procs, L1 "
                  << o.l1 / 1024 << "K/" << cfg.l1().lineBytes << "B, L2 "
                  << o.l2 / 1024 << "K/" << cfg.l2().lineBytes
                  << "B, prefetch "
                  << (cfg.prefetchData
                          ? std::to_string(cfg.prefetchDegree)
                          : std::string("off"))
                  << "\n\n";

        harness::TextTable summary({"metric", "value"});
        summary.addRow({"execution time (cycles)",
                        std::to_string(stats.executionTime())});
        summary.addRow(
            {"Busy %", harness::pct(static_cast<double>(agg.busy),
                                    static_cast<double>(
                                        agg.totalCycles()))});
        summary.addRow(
            {"Mem %", harness::pct(static_cast<double>(agg.memStall),
                                   static_cast<double>(
                                       agg.totalCycles()))});
        summary.addRow(
            {"MSync %", harness::pct(static_cast<double>(agg.syncStall),
                                     static_cast<double>(
                                         agg.totalCycles()))});
        summary.addRow({"L1 miss rate %",
                        harness::fixed(100 * agg.l1MissRate(), 2)});
        summary.addRow({"L2 global miss rate %",
                        harness::fixed(100 * agg.l2GlobalMissRate(), 2)});
        summary.print(std::cout);
        std::cout << '\n';

        harness::printMissTable(std::cout, "L2 read misses",
                                agg.l2Misses());
        return 0;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
