/**
 * @file
 * Quickstart: load a small TPC-D database, run query Q6 on a 4-processor
 * CC-NUMA machine, and print the query answer plus the memory-performance
 * summary the library produces.
 */

#include <iostream>

#include "harness/report.hh"
#include "harness/runner.hh"

using namespace dss;

int
main()
{
    // 1. Build and load a scaled-down TPC-D database (untraced setup).
    tpcd::ScaleConfig scale;
    scale.customers = 300; // keep the quickstart snappy
    harness::Workload wl(scale, /*nprocs=*/4);
    std::cout << "Loaded TPC-D database: "
              << wl.db().dataBytes() / 1024 << " KiB of pages\n";

    // 2. Run Q6 for real and show its answer.
    auto rows = wl.execute(tpcd::QueryId::Q6, /*param_seed=*/1);
    std::cout << "Q6 revenue increase: " << db::datumReal(rows[0][0])
              << "\n\n";

    // 3. Trace one Q6 per processor and simulate the baseline machine.
    harness::TraceSet traces = wl.trace(tpcd::QueryId::Q6);
    sim::SimStats stats =
        harness::runCold(sim::MachineConfig::baseline(), traces);

    harness::TimeBreakdown tb = harness::timeBreakdown(stats);
    std::cout << "Execution time: " << tb.total << " cycles\n"
              << "  Busy  " << harness::fixed(100 * tb.busy) << "%\n"
              << "  Mem   " << harness::fixed(100 * tb.mem) << "%\n"
              << "  MSync " << harness::fixed(100 * tb.msync) << "%\n\n";

    sim::ProcStats agg = stats.aggregate();
    std::cout << "L1 miss rate: "
              << harness::fixed(100 * agg.l1MissRate(), 2) << "%  "
              << "L2 global miss rate: "
              << harness::fixed(100 * agg.l2GlobalMissRate(), 2) << "%\n\n";

    harness::printMissTable(std::cout, "L2 read misses by structure",
                            agg.l2Misses());
    return 0;
}
