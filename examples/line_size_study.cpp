/**
 * @file
 * Cache-geometry study: how line size and cache size change a query's
 * memory behaviour (the experiments behind the paper's Figures 8-11,
 * driven through the public MachineConfig API on a small population).
 */

#include <iostream>

#include "harness/report.hh"
#include "harness/runner.hh"

using namespace dss;

int
main(int argc, char **argv)
{
    // Pick the query on the command line: Q3 (index), Q6 (sequential,
    // default) or Q12 (mixed).
    tpcd::QueryId q = tpcd::QueryId::Q6;
    if (argc > 1) {
        int n = std::atoi(argv[1]);
        if (n >= 1 && n <= 17)
            q = static_cast<tpcd::QueryId>(n);
    }

    tpcd::ScaleConfig scale;
    scale.customers = 300;
    harness::Workload wl(scale, 4);
    harness::TraceSet traces = wl.trace(q);
    std::cout << "query " << tpcd::queryName(q) << ", "
              << traces[0].size() << " trace events on processor 0\n\n";

    std::cout << "--- line-size sweep (L1 line is half the L2 line) ---\n";
    harness::TextTable lines({"L2 line", "exec cycles", "L1 misses",
                              "L2 misses", "L2 Data misses"});
    for (std::size_t line : {16, 32, 64, 128, 256}) {
        sim::MachineConfig cfg =
            sim::MachineConfig::baseline().withLineSize(line);
        sim::ProcStats agg =
            harness::runCold(cfg, traces).aggregate();
        lines.addRow({std::to_string(line) + "B",
                      std::to_string(agg.totalCycles()),
                      std::to_string(agg.l1Misses().total()),
                      std::to_string(agg.l2Misses().total()),
                      std::to_string(
                          agg.l2Misses().byGroup(sim::ClassGroup::Data))});
    }
    lines.print(std::cout);

    std::cout << "\n--- cache-size sweep (64 B L2 lines) ---\n";
    harness::TextTable sizes(
        {"L1/L2", "exec cycles", "L1 Priv misses", "L2 Data misses"});
    const std::pair<std::size_t, std::size_t> pts[] = {
        {4 << 10, 128 << 10},
        {16 << 10, 512 << 10},
        {64 << 10, 2 << 20},
        {256 << 10, 8 << 20},
    };
    for (auto [l1, l2] : pts) {
        sim::MachineConfig cfg =
            sim::MachineConfig::baseline().withCacheSizes(l1, l2);
        sim::ProcStats agg =
            harness::runCold(cfg, traces).aggregate();
        sizes.addRow({std::to_string(l1 >> 10) + "K/" +
                          std::to_string(l2 >> 10) + "K",
                      std::to_string(agg.totalCycles()),
                      std::to_string(
                          agg.l1Misses().byGroup(sim::ClassGroup::Priv)),
                      std::to_string(
                          agg.l2Misses().byGroup(sim::ClassGroup::Data))});
    }
    sizes.print(std::cout);

    std::cout << "\nTakeaway (paper Sections 5.2.1/5.2.2): database data "
                 "rewards long lines\n(spatial locality) but not big "
                 "caches (no intra-query reuse); private data\nis the "
                 "opposite.\n";
    return 0;
}
