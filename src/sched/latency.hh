/**
 * @file
 * Tail-latency accounting for query streams: percentile math and summary
 * statistics over per-instance latency records.
 *
 * The math is deliberately tiny and exactly specified so the stream
 * goldens can pin it: percentile() sorts a copy and linearly interpolates
 * between the two closest ranks (the "linear" / R-7 definition), after
 * discarding non-finite inputs. Everything here is pure host-side
 * arithmetic — no simulator state — so the unit tests can check it
 * exactly on small vectors.
 */

#ifndef DSS_SCHED_LATENCY_HH
#define DSS_SCHED_LATENCY_HH

#include <cstddef>
#include <vector>

#include "obs/json.hh"

namespace dss {
namespace sched {

/**
 * The @p p-th percentile (0..100) of @p values, by linear interpolation
 * between closest ranks on the sorted finite values (R-7: rank =
 * p/100 * (n-1)). Non-finite values (NaN, +-inf) are discarded first;
 * @p p is clamped to [0, 100]. Returns 0.0 when no finite value remains,
 * so JSON reports never contain NaN.
 */
double percentile(const std::vector<double> &values, double p);

/** Five-number summary of a latency vector (finite values only). */
struct LatencySummary
{
    std::size_t count = 0; ///< finite samples summarized
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

/** Summarize @p values; all-zero summary for an empty/all-NaN input. */
LatencySummary summarize(const std::vector<double> &values);

/** {count, mean, p50, p95, p99, max} as a JSON object. */
obs::Json toJson(const LatencySummary &s);

} // namespace sched
} // namespace dss

#endif // DSS_SCHED_LATENCY_HH
