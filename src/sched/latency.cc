#include "sched/latency.hh"

#include <algorithm>
#include <cmath>

namespace dss {
namespace sched {

namespace {

std::vector<double>
finiteSorted(const std::vector<double> &values)
{
    std::vector<double> v;
    v.reserve(values.size());
    for (double x : values)
        if (std::isfinite(x))
            v.push_back(x);
    std::sort(v.begin(), v.end());
    return v;
}

double
percentileOfSorted(const std::vector<double> &v, double p)
{
    if (v.empty())
        return 0.0;
    if (p < 0.0)
        p = 0.0;
    if (p > 100.0)
        p = 100.0;
    const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return v[lo] + (v[hi] - v[lo]) * frac;
}

} // namespace

double
percentile(const std::vector<double> &values, double p)
{
    return percentileOfSorted(finiteSorted(values), p);
}

LatencySummary
summarize(const std::vector<double> &values)
{
    const std::vector<double> v = finiteSorted(values);
    LatencySummary s;
    if (v.empty())
        return s;
    s.count = v.size();
    double sum = 0.0;
    for (double x : v)
        sum += x;
    s.mean = sum / static_cast<double>(v.size());
    s.p50 = percentileOfSorted(v, 50.0);
    s.p95 = percentileOfSorted(v, 95.0);
    s.p99 = percentileOfSorted(v, 99.0);
    s.max = v.back();
    return s;
}

obs::Json
toJson(const LatencySummary &s)
{
    obs::Json j = obs::Json::object();
    j["count"] = obs::Json(static_cast<std::uint64_t>(s.count));
    j["mean"] = obs::Json(s.mean);
    j["p50"] = obs::Json(s.p50);
    j["p95"] = obs::Json(s.p95);
    j["p99"] = obs::Json(s.p99);
    j["max"] = obs::Json(s.max);
    return j;
}

} // namespace sched
} // namespace dss
