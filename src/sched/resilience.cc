#include "sched/resilience.hh"

#include <algorithm>

namespace dss {
namespace sched {

std::optional<ShedPolicy>
parseShedPolicy(const std::string &name)
{
    if (name == "newest")
        return ShedPolicy::RejectNewest;
    if (name == "class")
        return ShedPolicy::RejectByClass;
    if (name == "deadline")
        return ShedPolicy::DeadlineAware;
    return std::nullopt;
}

std::string
shedPolicyName(ShedPolicy p)
{
    switch (p) {
      case ShedPolicy::RejectNewest: return "newest";
      case ShedPolicy::RejectByClass: return "class";
      case ShedPolicy::DeadlineAware: return "deadline";
    }
    return "?";
}

sim::Cycles
ResilienceConfig::deadlineFor(tpcd::QueryId q) const
{
    for (const auto &kv : classDeadlines)
        if (kv.first == q)
            return kv.second;
    return deadline;
}

obs::Json
toJson(const ResilienceConfig &cfg)
{
    obs::Json j = obs::Json::object();
    j["deadline"] = obs::Json(cfg.deadline);
    obs::Json overrides = obs::Json::object();
    for (const auto &kv : cfg.classDeadlines)
        overrides[std::string(tpcd::queryName(kv.first))] =
            obs::Json(kv.second);
    if (overrides.size() > 0)
        j["class_deadlines"] = std::move(overrides);
    j["queue_capacity"] =
        cfg.queueCapacity == ResilienceConfig::kUnboundedQueue
            ? obs::Json(std::string("unbounded"))
            : obs::Json(static_cast<std::uint64_t>(cfg.queueCapacity));
    j["shed"] = obs::Json(shedPolicyName(cfg.shed));
    j["node_failures"] = obs::Json(cfg.nodeFailures);
    j["migration_budget"] =
        obs::Json(static_cast<std::uint64_t>(cfg.migrationBudget));
    obs::Json b = obs::Json::object();
    b["threshold"] = obs::Json(cfg.breakerThreshold);
    b["window"] = obs::Json(static_cast<std::uint64_t>(cfg.breakerWindow));
    b["cooldown"] = obs::Json(cfg.breakerCooldown);
    j["breaker"] = std::move(b);
    return j;
}

std::string_view
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Ok: return "ok";
      case Outcome::Timeout: return "timeout";
      case Outcome::ShedQueue: return "shed_queue";
      case Outcome::ShedBreaker: return "shed_breaker";
      case Outcome::ShedExpired: return "shed_expired";
      case Outcome::Abandoned: return "abandoned";
    }
    return "?";
}

unsigned
shedVictim(ShedPolicy policy,
           const std::vector<QueryInstance> &instances,
           const std::vector<unsigned> &ready,
           const std::vector<sim::Cycles> &deadlines)
{
    // "a beats b" = a is the better victim. Every branch falls through
    // to (arrival desc, id desc): among equals the newest goes first.
    auto newerThan = [&](const QueryInstance &a, const QueryInstance &b) {
        if (a.arrival != b.arrival)
            return a.arrival > b.arrival;
        return a.id > b.id;
    };
    unsigned best = 0;
    for (unsigned i = 1; i < ready.size(); ++i) {
        const QueryInstance &a = instances[ready[i]];
        const QueryInstance &b = instances[ready[best]];
        bool better = false;
        switch (policy) {
          case ShedPolicy::RejectNewest:
            better = newerThan(a, b);
            break;
          case ShedPolicy::RejectByClass:
            // Slowest class first: its queued instances hold the queue
            // longest for the least goodput under pressure.
            if (serviceRank(a.query) != serviceRank(b.query))
                better = serviceRank(a.query) > serviceRank(b.query);
            else
                better = newerThan(a, b);
            break;
          case ShedPolicy::DeadlineAware: {
            // Tightest deadline first — it is the likeliest to miss
            // anyway. No-deadline instances (0) are the safest keeps.
            const sim::Cycles da = deadlines[a.id] ? deadlines[a.id]
                                                   : sim::FaultPlan::kNever;
            const sim::Cycles db = deadlines[b.id] ? deadlines[b.id]
                                                   : sim::FaultPlan::kNever;
            if (da != db)
                better = da < db;
            else
                better = newerThan(a, b);
            break;
          }
        }
        if (better)
            best = i;
    }
    return best;
}

// ----- CircuitBreaker -----

void
CircuitBreaker::trip(ClassState &cs, sim::Cycles now)
{
    cs.state = State::Open;
    cs.openUntil = now + cfg_.breakerCooldown;
    cs.window.clear();
    ++cs.trips;
}

CircuitBreaker::Decision
CircuitBreaker::onArrival(const std::string &cls, unsigned id,
                          sim::Cycles now)
{
    if (!enabled())
        return Decision::Admit;
    ClassState &cs = classes_[cls];
    switch (cs.state) {
      case State::Closed:
        return Decision::Admit;
      case State::Open:
        if (now < cs.openUntil)
            return Decision::Shed;
        cs.state = State::HalfOpen;
        cs.trial = id;
        cs.trialActive = true;
        return Decision::Trial;
      case State::HalfOpen:
        if (cs.trialActive)
            return Decision::Shed; // one probe at a time
        cs.trial = id;
        cs.trialActive = true;
        return Decision::Trial;
    }
    return Decision::Admit;
}

void
CircuitBreaker::onResolution(const std::string &cls, unsigned id,
                             Outcome o, sim::Cycles now)
{
    if (!enabled())
        return;
    ClassState &cs = classes_[cls];
    if (cs.state == State::HalfOpen && cs.trialActive && cs.trial == id) {
        cs.trialActive = false;
        if (o == Outcome::Ok) {
            cs.state = State::Closed;
            cs.window.clear();
            ++cs.recoveries;
        } else if (o == Outcome::Timeout) {
            trip(cs, now); // the probe failed: back to a full cooldown
        } else {
            // The probe never got service (shed / abandoned): reopen
            // with no extra cooldown so the next arrival probes again.
            cs.state = State::Open;
            cs.openUntil = now;
            ++cs.trips;
        }
        return;
    }
    // Only Closed-state service outcomes feed the sliding window:
    // sheds are the breaker's own doing, and queries resolved while
    // open/half-open were admitted under an older state.
    if (cs.state != State::Closed ||
        (o != Outcome::Ok && o != Outcome::Timeout))
        return;
    cs.window.push_back(o == Outcome::Timeout ? 1 : 0);
    if (cs.window.size() > cfg_.breakerWindow)
        cs.window.pop_front();
    if (cs.window.size() < cfg_.breakerWindow)
        return;
    const std::uint64_t timeouts = static_cast<std::uint64_t>(
        std::count(cs.window.begin(), cs.window.end(), 1));
    if (static_cast<double>(timeouts) >=
        cfg_.breakerThreshold * static_cast<double>(cfg_.breakerWindow))
        trip(cs, now);
}

CircuitBreaker::State
CircuitBreaker::stateOf(const std::string &cls) const
{
    auto it = classes_.find(cls);
    return it == classes_.end() ? State::Closed : it->second.state;
}

std::uint64_t
CircuitBreaker::trips() const
{
    std::uint64_t n = 0;
    for (const auto &kv : classes_)
        n += kv.second.trips;
    return n;
}

std::uint64_t
CircuitBreaker::recoveries() const
{
    std::uint64_t n = 0;
    for (const auto &kv : classes_)
        n += kv.second.recoveries;
    return n;
}

std::vector<std::pair<std::string, std::string>>
CircuitBreaker::stateNames() const
{
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto &kv : classes_)
        out.emplace_back(kv.first,
                         std::string(breakerStateName(kv.second.state)));
    return out;
}

std::string_view
breakerStateName(CircuitBreaker::State s)
{
    switch (s) {
      case CircuitBreaker::State::Closed: return "closed";
      case CircuitBreaker::State::Open: return "open";
      case CircuitBreaker::State::HalfOpen: return "half_open";
    }
    return "?";
}

// ----- OutageTable -----

OutageTable::OutageTable(const sim::FaultPlan *plan, unsigned nprocs)
    : plan_(plan)
{
    active_ = plan_ && plan_->nodeOutage(0, 0).has_value();
    if (!active_)
        return;
    windows_.resize(nprocs);
    nextIndex_.assign(nprocs, 0);
    exhausted_.assign(nprocs, 0);
}

void
OutageTable::extendTo(sim::ProcId p, sim::Cycles t)
{
    while (!exhausted_[p] &&
           (windows_[p].empty() || windows_[p].back().start <= t)) {
        const auto o = plan_->nodeOutage(p, nextIndex_[p]);
        if (!o) {
            exhausted_[p] = 1;
            return;
        }
        OutageWindow w;
        w.proc = p;
        w.index = nextIndex_[p]++;
        w.start = o->start;
        w.end = o->end;
        w.permanent = o->permanent;
        windows_[p].push_back(w);
        if (w.permanent)
            exhausted_[p] = 1;
    }
}

std::optional<OutageWindow>
OutageTable::coveringOutage(sim::ProcId p, sim::Cycles t)
{
    if (!active_ || p >= windows_.size())
        return std::nullopt;
    extendTo(p, t);
    for (const OutageWindow &w : windows_[p])
        if (w.start <= t && t < w.end)
            return w;
    return std::nullopt;
}

std::optional<OutageWindow>
OutageTable::nextOutageAfter(sim::ProcId p, sim::Cycles t)
{
    if (!active_ || p >= windows_.size())
        return std::nullopt;
    extendTo(p, t);
    for (const OutageWindow &w : windows_[p])
        if (w.start > t)
            return w;
    return std::nullopt;
}

std::optional<sim::Cycles>
OutageTable::nextUpAt(sim::ProcId p, sim::Cycles t)
{
    const auto w = coveringOutage(p, t);
    if (!w)
        return t;
    if (w->permanent)
        return std::nullopt;
    // Windows never abut (gaps are >= 1 cycle), so the end of the
    // covering window is in service.
    return w->end;
}

bool
OutageTable::anyOutageIn(sim::Cycles a, sim::Cycles b)
{
    if (!active_)
        return false;
    for (sim::ProcId p = 0; p < windows_.size(); ++p) {
        extendTo(p, b);
        for (const OutageWindow &w : windows_[p])
            if (w.start < b && w.end > a)
                return true;
    }
    return false;
}

std::vector<OutageWindow>
OutageTable::outagesIn(sim::Cycles a, sim::Cycles b)
{
    std::vector<OutageWindow> out;
    if (!active_)
        return out;
    for (sim::ProcId p = 0; p < windows_.size(); ++p) {
        extendTo(p, b);
        for (const OutageWindow &w : windows_[p])
            if (w.start < b && w.end > a)
                out.push_back(w);
    }
    std::sort(out.begin(), out.end(),
              [](const OutageWindow &x, const OutageWindow &y) {
                  if (x.start != y.start)
                      return x.start < y.start;
                  return x.proc < y.proc;
              });
    return out;
}

sim::Cycles
OutageTable::degradedCyclesIn(sim::Cycles a, sim::Cycles b)
{
    const std::vector<OutageWindow> ws = outagesIn(a, b);
    sim::Cycles total = 0;
    sim::Cycles covered = a; // everything before `covered` is accounted
    for (const OutageWindow &w : ws) {
        const sim::Cycles s = std::max(w.start, covered);
        const sim::Cycles e = std::min(w.end, b);
        if (e > s)
            total += e - s;
        covered = std::max(covered, e);
    }
    return total;
}

// ----- SLO accounting -----

void
ClassSlo::count(Outcome o)
{
    ++submitted;
    switch (o) {
      case Outcome::Ok: ++goodput; break;
      case Outcome::Timeout: ++timeouts; break;
      case Outcome::ShedQueue: ++shedQueue; break;
      case Outcome::ShedBreaker: ++shedBreaker; break;
      case Outcome::ShedExpired: ++shedExpired; break;
      case Outcome::Abandoned: ++abandoned; break;
    }
}

obs::Json
toJson(const ClassSlo &s)
{
    obs::Json j = obs::Json::object();
    j["submitted"] = obs::Json(s.submitted);
    j["goodput"] = obs::Json(s.goodput);
    j["timeouts"] = obs::Json(s.timeouts);
    j["shed_queue"] = obs::Json(s.shedQueue);
    j["shed_breaker"] = obs::Json(s.shedBreaker);
    j["shed_expired"] = obs::Json(s.shedExpired);
    j["abandoned"] = obs::Json(s.abandoned);
    j["migrations"] = obs::Json(s.migrations);
    return j;
}

obs::Json
toJson(const ResilienceReport &r)
{
    obs::Json j = obs::Json::object();
    j["config"] = toJson(r.config);
    obs::Json slo = obs::Json::object();
    slo["total"] = toJson(r.total);
    obs::Json byc = obs::Json::object();
    for (const auto &kv : r.byClass)
        byc[kv.first] = toJson(kv.second);
    slo["by_class"] = std::move(byc);
    j["slo"] = std::move(slo);
    obs::Json lat = obs::Json::object();
    lat["healthy"] = toJson(r.healthy);
    lat["degraded"] = toJson(r.degraded);
    j["latency"] = std::move(lat);
    obs::Json b = obs::Json::object();
    b["trips"] = obs::Json(r.breakerTrips);
    b["recoveries"] = obs::Json(r.breakerRecoveries);
    obs::Json states = obs::Json::object();
    for (const auto &kv : r.breakerStates)
        states[kv.first] = obs::Json(kv.second);
    b["classes"] = std::move(states);
    j["breaker"] = std::move(b);
    obs::Json outs = obs::Json::array();
    for (const OutageWindow &w : r.outages) {
        obs::Json e = obs::Json::object();
        e["proc"] = obs::Json(static_cast<unsigned>(w.proc));
        e["index"] = obs::Json(static_cast<std::uint64_t>(w.index));
        e["start"] = obs::Json(w.start);
        if (w.permanent)
            e["permanent"] = obs::Json(true);
        else
            e["end"] = obs::Json(w.end);
        outs.push(std::move(e));
    }
    j["outages"] = std::move(outs);
    j["degraded_cycles"] = obs::Json(r.degradedCycles);
    return j;
}

} // namespace sched
} // namespace dss
