#include "sched/trace_cache.hh"

#include <utility>

#include "obs/registry.hh"

namespace dss {
namespace sched {

void
TraceCache::evictIfOver()
{
    while (capacity_ > 0 && entries_.size() > capacity_) {
        auto it = entries_.find(lru_.back());
        stats_.traceEntries -= it->second.stream.entries().size();
        --stats_.entries;
        ++stats_.evictions;
        entries_.erase(it);
        lru_.pop_back();
    }
}

const sim::TraceStream &
TraceCache::fetch(const Key &key, const Capture &capture)
{
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second.lru);
        return it->second.stream;
    }
    ++stats_.misses;
    sim::TraceStream stream = capture();
    stats_.traceEntries += stream.entries().size();
    ++stats_.entries;
    lru_.push_front(key);
    auto ins = entries_.emplace(key, Entry{std::move(stream), lru_.begin()})
                   .first;
    evictIfOver();
    return ins->second.stream;
}

const sim::TraceStream *
TraceCache::lookup(const Key &key) const
{
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second.stream;
}

std::uint64_t
TraceCache::contentHashOf(const Key &key) const
{
    const sim::TraceStream *s = lookup(key);
    return s ? s->contentHash() : 0;
}

void
TraceCache::clear()
{
    entries_.clear();
    lru_.clear();
    stats_.entries = 0;
    stats_.traceEntries = 0;
}

void
TraceCache::registerStats(obs::Registry &reg,
                          const std::string &prefix) const
{
    reg.addCounter(obs::metricName(prefix, "hits"),
                   [this] { return stats_.hits; });
    reg.addCounter(obs::metricName(prefix, "misses"),
                   [this] { return stats_.misses; });
    reg.addCounter(obs::metricName(prefix, "entries"),
                   [this] { return stats_.entries; });
    reg.addCounter(obs::metricName(prefix, "trace_entries"),
                   [this] { return stats_.traceEntries; });
    reg.addCounter(obs::metricName(prefix, "evictions"),
                   [this] { return stats_.evictions; });
}

obs::Json
TraceCache::toJson() const
{
    obs::Json j = obs::Json::object();
    j["hits"] = obs::Json(stats_.hits);
    j["misses"] = obs::Json(stats_.misses);
    j["entries"] = obs::Json(stats_.entries);
    j["trace_entries"] = obs::Json(stats_.traceEntries);
    j["evictions"] = obs::Json(stats_.evictions);
    if (capacity_ > 0)
        j["capacity"] = obs::Json(capacity_);
    obs::Json arr = obs::Json::array();
    for (const auto &kv : entries_) {
        obs::Json e = obs::Json::object();
        e["query"] = obs::Json(tpcd::queryName(kv.first.query));
        e["param_seed"] = obs::Json(kv.first.paramSeed);
        e["proc"] = obs::Json(static_cast<unsigned>(kv.first.proc));
        e["entries"] = obs::Json(
            static_cast<std::uint64_t>(kv.second.stream.entries().size()));
        e["hash"] = obs::Json(kv.second.stream.contentHash());
        arr.push(std::move(e));
    }
    j["stored"] = std::move(arr);
    return j;
}

} // namespace sched
} // namespace dss
