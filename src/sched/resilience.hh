/**
 * @file
 * Resilience layer for the query-stream scheduler: per-query deadlines,
 * bounded-queue admission control with load shedding, a per-class
 * circuit breaker, node-failure outage windows with query migration, and
 * the SLO accounting that reports all of it.
 *
 * Everything here is a pure function of (stream seed, fault seed,
 * config) plus the deterministic per-instance service times the
 * scheduler already derives, so a resilient stream stays bit-identical
 * across --engine seq|par and host thread counts (DESIGN.md §16):
 *
 *  - Deadlines are absolute cycles (arrival + class budget), compared
 *    against the solo-run completion cycle — no wall clock anywhere.
 *  - Outage windows come from sim::FaultPlan::nodeOutage, a seeded pure
 *    function; OutageTable only caches its values.
 *  - The breaker's state machine advances on (class, outcome, cycle)
 *    triples produced in the scheduler's total event order.
 *  - Shed-victim selection breaks every tie down to the instance id.
 */

#ifndef DSS_SCHED_RESILIENCE_HH
#define DSS_SCHED_RESILIENCE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "sched/latency.hh"
#include "sched/stream.hh"
#include "sim/fault.hh"

namespace dss {
namespace sched {

/** Which queued instance a full run queue drops. */
enum class ShedPolicy {
    RejectNewest,   ///< latest arrival (then highest id)
    RejectByClass,  ///< slowest service class first (then newest)
    DeadlineAware,  ///< tightest deadline first — it would miss anyway
};

/** Parse "newest" / "class" / "deadline"; nullopt on anything else. */
std::optional<ShedPolicy> parseShedPolicy(const std::string &name);
std::string shedPolicyName(ShedPolicy p);

struct ResilienceConfig
{
    static constexpr unsigned kUnboundedQueue = ~0u;

    /** Default per-query deadline in cycles from arrival; 0 = none. */
    sim::Cycles deadline = 0;
    /** Per-class overrides of the default deadline. */
    std::vector<std::pair<tpcd::QueryId, sim::Cycles>> classDeadlines;

    /** Max instances waiting in the run queue (after dispatch);
     * kUnboundedQueue disables admission control, 0 means an instance
     * that cannot dispatch immediately is shed. */
    unsigned queueCapacity = kUnboundedQueue;
    ShedPolicy shed = ShedPolicy::RejectNewest;

    /** Consult the fault plan's NodeFailure outage windows: queries
     * caught by an outage abort and migrate to a surviving node. */
    bool nodeFailures = false;
    /** Node-failure migrations per instance before it is abandoned. */
    unsigned migrationBudget = 3;

    /** Circuit breaker: trip a query class when the timeout fraction of
     * its last breakerWindow service outcomes reaches this threshold;
     * 0 disables the breaker. */
    double breakerThreshold = 0.0;
    unsigned breakerWindow = 4;
    /** How long a tripped class sheds before a half-open trial. */
    sim::Cycles breakerCooldown = 2000000;

    bool breakerOn() const { return breakerThreshold > 0.0; }
    /** Any resilience feature active? When false the scheduler runs the
     * legacy loop and reports stay byte-identical to PR 7's. */
    bool enabled() const
    {
        return deadline > 0 || !classDeadlines.empty() ||
               queueCapacity != kUnboundedQueue || nodeFailures ||
               breakerOn();
    }
    /** The deadline budget for @p q (override, else default); 0 = none. */
    sim::Cycles deadlineFor(tpcd::QueryId q) const;
};

obs::Json toJson(const ResilienceConfig &cfg);

/** How one instance's stream life ended. */
enum class Outcome : std::uint8_t {
    Ok,          ///< completed within its deadline (goodput)
    Timeout,     ///< aborted at its deadline cycle mid-service
    ShedQueue,   ///< dropped by admission control (queue full)
    ShedBreaker, ///< dropped by an open circuit breaker
    ShedExpired, ///< deadline already past when it reached dispatch
    Abandoned,   ///< node failures exhausted its migration budget
};

std::string_view outcomeName(Outcome o);

/**
 * Pick the victim to shed among the queued instance indices @p ready
 * (indices into @p instances). @p deadlines holds absolute deadline
 * cycles per instance id (0 = none). Total order: every policy falls
 * through to (arrival, id) so equal keys never depend on queue order.
 */
unsigned shedVictim(ShedPolicy policy,
                    const std::vector<QueryInstance> &instances,
                    const std::vector<unsigned> &ready,
                    const std::vector<sim::Cycles> &deadlines);

/**
 * Per-class circuit breaker. Classes are keyed by query name; each
 * tracks Closed -> Open (cooldown) -> HalfOpen (one trial) -> Closed.
 * Only service outcomes (Ok, Timeout) feed the sliding window; sheds
 * and migrations do not, so an open breaker cannot keep itself open.
 */
class CircuitBreaker
{
  public:
    enum class State { Closed, Open, HalfOpen };
    enum class Decision { Admit, Shed, Trial };

    explicit CircuitBreaker(const ResilienceConfig &cfg) : cfg_(cfg) {}

    bool enabled() const { return cfg_.breakerOn(); }

    /** Admission decision for instance @p id of class @p cls at @p now.
     * Trial means the class is half-open and @p id is its probe. */
    Decision onArrival(const std::string &cls, unsigned id,
                       sim::Cycles now);

    /** Feed a resolution back. Must be called for every resolved
     * instance that onArrival admitted (or took as trial). */
    void onResolution(const std::string &cls, unsigned id, Outcome o,
                      sim::Cycles now);

    State stateOf(const std::string &cls) const;
    std::uint64_t trips() const;
    std::uint64_t recoveries() const;

    /** Final per-class states, sorted by class name. */
    std::vector<std::pair<std::string, std::string>> stateNames() const;

  private:
    struct ClassState
    {
        State state = State::Closed;
        sim::Cycles openUntil = 0;
        unsigned trial = 0;
        bool trialActive = false;
        std::deque<char> window; ///< 1 = timeout, 0 = ok
        std::uint64_t trips = 0;
        std::uint64_t recoveries = 0;
    };

    void trip(ClassState &cs, sim::Cycles now);

    ResilienceConfig cfg_;
    std::map<std::string, ClassState> classes_;
};

std::string_view breakerStateName(CircuitBreaker::State s);

/** One materialized node outage (window + which processor). */
struct OutageWindow
{
    sim::ProcId proc = 0;
    unsigned index = 0; ///< k-th outage of this processor
    sim::Cycles start = 0;
    sim::Cycles end = sim::FaultPlan::kNever;
    bool permanent = false;
};

/**
 * Lazily materialized view of a FaultPlan's node-outage windows, per
 * processor in start order. Inactive (every query is healthy) when the
 * plan is null or its NodeFailure kind cannot fire.
 */
class OutageTable
{
  public:
    OutageTable() = default;
    OutageTable(const sim::FaultPlan *plan, unsigned nprocs);

    bool active() const { return active_; }

    /** The outage covering cycle @p t on @p p, if any. */
    std::optional<OutageWindow> coveringOutage(sim::ProcId p,
                                               sim::Cycles t);

    /** The first outage of @p p with start strictly after @p t. */
    std::optional<OutageWindow> nextOutageAfter(sim::ProcId p,
                                                sim::Cycles t);

    /** First cycle >= @p t at which @p p is in service; nullopt when a
     * permanent outage covers @p t. */
    std::optional<sim::Cycles> nextUpAt(sim::ProcId p, sim::Cycles t);

    /** Any processor down somewhere in [@p a, @p b)? */
    bool anyOutageIn(sim::Cycles a, sim::Cycles b);

    /** Every window intersecting [@p a, @p b), ordered by
     * (start, proc). */
    std::vector<OutageWindow> outagesIn(sim::Cycles a, sim::Cycles b);

    /** Cycles in [@p a, @p b) during which >= 1 processor is down (the
     * union of windows, not the per-processor sum). */
    sim::Cycles degradedCyclesIn(sim::Cycles a, sim::Cycles b);

  private:
    void extendTo(sim::ProcId p, sim::Cycles t);

    const sim::FaultPlan *plan_ = nullptr;
    bool active_ = false;
    std::vector<std::vector<OutageWindow>> windows_;
    std::vector<unsigned> nextIndex_;
    std::vector<char> exhausted_;
};

/** SLO counts for one query class (or the stream total). */
struct ClassSlo
{
    std::uint64_t submitted = 0;   ///< resolved instances of the class
    std::uint64_t goodput = 0;     ///< completed within deadline
    std::uint64_t timeouts = 0;
    std::uint64_t shedQueue = 0;
    std::uint64_t shedBreaker = 0;
    std::uint64_t shedExpired = 0;
    std::uint64_t abandoned = 0;
    std::uint64_t migrations = 0;  ///< node-failure re-dispatches

    void count(Outcome o);
};

/** The stream-level resilience report (part of StreamResult). */
struct ResilienceReport
{
    ResilienceConfig config;
    ClassSlo total;
    std::vector<std::pair<std::string, ClassSlo>> byClass;
    /** Goodput-instance latency split by whether the instance's
     * [start, complete] overlapped any node outage. */
    LatencySummary healthy;
    LatencySummary degraded;
    std::uint64_t breakerTrips = 0;
    std::uint64_t breakerRecoveries = 0;
    std::vector<std::pair<std::string, std::string>> breakerStates;
    std::vector<OutageWindow> outages; ///< windows inside the makespan
    sim::Cycles degradedCycles = 0;    ///< union of outages in makespan
};

obs::Json toJson(const ClassSlo &s);
obs::Json toJson(const ResilienceReport &r);

} // namespace sched
} // namespace dss

#endif // DSS_SCHED_RESILIENCE_HH
