/**
 * @file
 * Content-addressed trace cache for the query-stream scheduler.
 *
 * Capturing a query instance's reference trace means executing the query
 * against the TPC-D database — by far the most expensive host-side step
 * of a stream run. But Workload::streamTrace is a *pure* function of
 * (query, param_seed, proc): the canonical transaction id, the pre-warmed
 * lock hash and the post-capture xid sweep guarantee the same arguments
 * always yield a byte-identical stream (see harness/workload.hh). So a
 * stream that repeats (query, params, proc) combinations — the common
 * case for closed-loop client mixes — can capture each combination once
 * and replay the cached stream for every later instance, with
 * bit-identical simulation results (test_sched.cc proves this).
 *
 * The cache is keyed by the capture arguments and additionally records a
 * FNV-1a content hash of each stored stream (TraceStream::contentHash) so
 * reports — and the purity regression test — can verify that a re-capture
 * of the same key reproduces the same bytes.
 *
 * Capacity: by default the cache grows without bound. A bounded cache
 * (--trace-cache=N) evicts the least-recently-fetched entry once N keys
 * are stored. Because captures are pure, an evicted key's later
 * re-capture reproduces the same bytes, so bounding the cache never
 * changes simulation results — only the hit/miss/eviction counts.
 */

#ifndef DSS_SCHED_TRACE_CACHE_HH
#define DSS_SCHED_TRACE_CACHE_HH

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <string>

#include "obs/json.hh"
#include "sim/trace.hh"
#include "tpcd/queries.hh"

namespace dss {
namespace obs {
class Registry;
} // namespace obs

namespace sched {

class TraceCache
{
  public:
    /** The capture arguments a cached stream is addressed by. */
    struct Key
    {
        tpcd::QueryId query;
        std::uint64_t paramSeed;
        sim::ProcId proc;

        bool operator<(const Key &o) const
        {
            if (query != o.query)
                return query < o.query;
            if (paramSeed != o.paramSeed)
                return paramSeed < o.paramSeed;
            return proc < o.proc;
        }
    };

    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t entries = 0;      ///< distinct keys stored
        std::uint64_t traceEntries = 0; ///< total TraceEntry records held
        std::uint64_t evictions = 0;    ///< LRU evictions (bounded cache)
    };

    /** @p capacity = max stored keys; 0 (the default) = unbounded. */
    explicit TraceCache(std::uint64_t capacity = 0)
        : capacity_(capacity)
    {
    }

    std::uint64_t capacity() const { return capacity_; }

    /** Produces the stream for a key on a miss (calls streamTrace). */
    using Capture = std::function<sim::TraceStream()>;

    /**
     * The stream for @p key: on a hit, the stored stream (capture not
     * invoked); on a miss, @p capture() runs and its result is stored.
     * On an unbounded cache the returned reference stays valid for the
     * cache's lifetime (std::map nodes are stable); on a bounded cache
     * it stays valid until the next fetch(), which may evict it.
     */
    const sim::TraceStream &fetch(const Key &key, const Capture &capture);

    /** The stored stream for @p key, or nullptr if absent (tests). */
    const sim::TraceStream *lookup(const Key &key) const;

    const Stats &stats() const { return stats_; }

    /** FNV-1a content hash of the stored stream; 0 if absent. */
    std::uint64_t contentHashOf(const Key &key) const;

    /** Drop every entry; hit/miss history is kept. */
    void clear();

    /** Export cache.{hits,misses,entries,trace_entries,evictions}. */
    void registerStats(obs::Registry &reg,
                       const std::string &prefix = "cache") const;

    /** Stats plus a per-entry {query, seed, proc, entries, hash} array. */
    obs::Json toJson() const;

  private:
    struct Entry
    {
        sim::TraceStream stream;
        std::list<Key>::iterator lru; ///< position in the recency list
    };

    void evictIfOver();

    std::uint64_t capacity_ = 0;
    std::map<Key, Entry> entries_;
    std::list<Key> lru_; ///< front = most recently fetched
    Stats stats_;
};

} // namespace sched
} // namespace dss

#endif // DSS_SCHED_TRACE_CACHE_HH
