/**
 * @file
 * Query-stream model: the configuration of a multi-query stream (arrival
 * discipline, dispatch policy, query mix) and the deterministic
 * generation of its instances.
 *
 * A stream is a seeded sequence of Q3/Q6/Q12-style query instances
 * admitted onto the simulated machine's processors. Two arrival
 * disciplines:
 *
 *  - closed-loop: a fixed population of clients, each submitting its
 *    next query the moment its previous one completes (the TPC-D
 *    throughput-test shape). Arrival times are *derived* during
 *    scheduling, not drawn.
 *  - open-loop: instance arrivals are drawn up front from a seeded
 *    exponential inter-arrival distribution (offered load independent
 *    of completion times).
 *
 * Everything is generated with a SplitMix64-style integer generator keyed
 * only on (seed, instance id), so the instance list is a pure function of
 * the configuration — the foundation of the scheduler's determinism
 * argument (DESIGN.md §15).
 */

#ifndef DSS_SCHED_STREAM_HH
#define DSS_SCHED_STREAM_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "sim/addr.hh"
#include "tpcd/queries.hh"

namespace dss {
namespace sched {

enum class ArrivalMode { Closed, Open };

/** Dispatch order among queued (arrived, not yet started) instances. */
enum class Policy {
    Fifo,          ///< by (arrival, id)
    ShortestClass, ///< by (service rank of query class, arrival, id)
};

/** Parse "fifo" / "shortest"; nullopt on anything else. */
std::optional<Policy> parsePolicy(const std::string &name);
std::string policyName(Policy p);
std::string arrivalModeName(ArrivalMode m);

/** One entry of the query mix: a query drawn with integer weight. */
struct MixEntry
{
    tpcd::QueryId query;
    unsigned weight = 1;
};

struct StreamConfig
{
    unsigned instances = 8;   ///< total query instances in the stream
    std::uint64_t seed = 42;  ///< arrival + mix + parameter seed
    ArrivalMode mode = ArrivalMode::Closed;
    /** Closed-loop: concurrent clients (instance i belongs to client
     * i % clients; a client's next instance arrives when its previous
     * one completes). */
    unsigned clients = 4;
    /** Open-loop: mean exponential inter-arrival gap, simulated cycles. */
    sim::Cycles meanInterarrival = 500000;
    Policy policy = Policy::Fifo;
    /** Weighted query mix; defaults to Q3:Q6:Q12 = 1:1:1 (the three
     * queries the paper traces). */
    std::vector<MixEntry> mix = {{tpcd::QueryId::Q3, 1},
                                 {tpcd::QueryId::Q6, 1},
                                 {tpcd::QueryId::Q12, 1}};
    /**
     * Distinct TPC-D substitution-parameter seeds the stream draws from
     * (the spec's substitution values come from small pools, so real
     * streams repeat parameter combinations — that is what gives the
     * TraceCache its hits). 0 = every instance gets a unique seed
     * (forces all-miss; purity/regression tests).
     */
    unsigned paramVariants = 2;
    /** Flush machine memory state before every instance (isolates
     * queueing effects from cache warmth; regression tests). */
    bool coldCache = false;
};

/** One query instance of a stream. */
struct QueryInstance
{
    unsigned id = 0;    ///< position in generation order
    tpcd::QueryId query = tpcd::QueryId::Q6;
    std::uint64_t paramSeed = 0; ///< TPC-D substitution parameter seed
    unsigned client = 0;         ///< closed-loop submitting client
    /** Open-loop: drawn arrival cycle. Closed-loop: 0 for each client's
     * first instance; later instances are filled in by the scheduler
     * with the predecessor's completion time. */
    sim::Cycles arrival = 0;
};

/** SplitMix64 step: deterministic, platform-independent. */
std::uint64_t splitmix64(std::uint64_t &state);

/**
 * Generate the instance list of @p cfg: queries drawn from the weighted
 * mix, parameter seeds derived per instance, open-loop arrivals drawn
 * from the exponential inter-arrival distribution. Pure function of the
 * configuration.
 */
std::vector<QueryInstance> makeInstances(const StreamConfig &cfg);

/**
 * Static service rank of a query for the ShortestClass policy, from the
 * golden baseline solo execution times (Q6 < Q3 < Q12; other queries
 * rank by their paper taxonomy class: Sequential < Index < Mixed).
 */
unsigned serviceRank(tpcd::QueryId q);

/** The configuration as a JSON object (stream reports, goldens). */
obs::Json toJson(const StreamConfig &cfg);

} // namespace sched
} // namespace dss

#endif // DSS_SCHED_STREAM_HH
