#include "sched/stream.hh"

#include <cmath>
#include <stdexcept>

namespace dss {
namespace sched {

std::optional<Policy>
parsePolicy(const std::string &name)
{
    if (name == "fifo")
        return Policy::Fifo;
    if (name == "shortest")
        return Policy::ShortestClass;
    return std::nullopt;
}

std::string
policyName(Policy p)
{
    return p == Policy::Fifo ? "fifo" : "shortest";
}

std::string
arrivalModeName(ArrivalMode m)
{
    return m == ArrivalMode::Closed ? "closed" : "open";
}

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

namespace {

/** Uniform double in (0, 1]: never 0, so log() below is always finite. */
double
unitOpen(std::uint64_t bits)
{
    return (static_cast<double>(bits >> 11) + 1.0) * 0x1.0p-53;
}

tpcd::QueryId
drawFromMix(const std::vector<MixEntry> &mix, std::uint64_t bits)
{
    std::uint64_t total = 0;
    for (const MixEntry &m : mix)
        total += m.weight;
    if (total == 0)
        throw std::invalid_argument("stream mix has zero total weight");
    std::uint64_t pick = bits % total;
    for (const MixEntry &m : mix) {
        if (pick < m.weight)
            return m.query;
        pick -= m.weight;
    }
    return mix.back().query; // unreachable
}

} // namespace

std::vector<QueryInstance>
makeInstances(const StreamConfig &cfg)
{
    if (cfg.mode == ArrivalMode::Closed && cfg.clients == 0)
        throw std::invalid_argument("closed-loop stream needs >= 1 client");
    std::vector<QueryInstance> out;
    out.reserve(cfg.instances);
    std::uint64_t state = cfg.seed ^ 0x5DC4ED11ull;
    sim::Cycles clock = 0;
    for (unsigned i = 0; i < cfg.instances; ++i) {
        QueryInstance q;
        q.id = i;
        q.query = drawFromMix(cfg.mix, splitmix64(state));
        // Substitution parameters drawn from the (small) variant pool —
        // a pure function of (seed, i), so equal draws repeat exactly
        // and the trace cache can serve them.
        q.paramSeed =
            (cfg.seed << 8) +
            (cfg.paramVariants ? splitmix64(state) % cfg.paramVariants
                               : i);
        if (cfg.mode == ArrivalMode::Closed) {
            q.client = i % cfg.clients;
            q.arrival = 0; // filled by the scheduler from the predecessor
        } else {
            const double u = unitOpen(splitmix64(state));
            const double mean =
                static_cast<double>(cfg.meanInterarrival);
            sim::Cycles gap =
                static_cast<sim::Cycles>(std::floor(-mean * std::log(u)));
            if (gap < 1)
                gap = 1;
            clock += gap;
            q.arrival = clock;
        }
        out.push_back(q);
    }
    return out;
}

unsigned
serviceRank(tpcd::QueryId q)
{
    // The three traced queries rank by their golden baseline solo
    // execution times: Q6 (~1.0 Mcycles) < Q3 (~1.1) < Q12 (~2.0).
    switch (q) {
    case tpcd::QueryId::Q6:
        return 0;
    case tpcd::QueryId::Q3:
        return 1;
    case tpcd::QueryId::Q12:
        return 2;
    default:
        break;
    }
    // Everything else ranks behind the calibrated three, by taxonomy:
    // Sequential scans finish faster than Index plans, Mixed are longest.
    switch (tpcd::queryClassOf(q)) {
    case tpcd::QueryClass::Sequential:
        return 3;
    case tpcd::QueryClass::Index:
        return 4;
    case tpcd::QueryClass::Mixed:
    default:
        return 5;
    }
}

obs::Json
toJson(const StreamConfig &cfg)
{
    obs::Json j = obs::Json::object();
    j["instances"] = obs::Json(cfg.instances);
    j["seed"] = obs::Json(cfg.seed);
    j["mode"] = obs::Json(arrivalModeName(cfg.mode));
    if (cfg.mode == ArrivalMode::Closed)
        j["clients"] = obs::Json(cfg.clients);
    else
        j["mean_interarrival"] = obs::Json(cfg.meanInterarrival);
    j["policy"] = obs::Json(policyName(cfg.policy));
    obs::Json mix = obs::Json::array();
    for (const MixEntry &m : cfg.mix) {
        obs::Json e = obs::Json::object();
        e["query"] = obs::Json(tpcd::queryName(m.query));
        e["weight"] = obs::Json(m.weight);
        mix.push(std::move(e));
    }
    j["mix"] = std::move(mix);
    j["param_variants"] = obs::Json(cfg.paramVariants);
    j["cold_cache"] = obs::Json(cfg.coldCache);
    return j;
}

} // namespace sched
} // namespace dss
