#include "sched/scheduler.hh"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "obs/registry.hh"
#include "obs/stats_json.hh"
#include "sim/check.hh"
#include "sim/fault.hh"

namespace dss {
namespace sched {

StreamScheduler::StreamScheduler(harness::Workload &workload,
                                 const sim::MachineConfig &machine_cfg,
                                 const StreamConfig &stream_cfg,
                                 const harness::RunOptions &base_opts,
                                 TraceCache *cache)
    : workload_(workload), cfg_(stream_cfg), opts_(base_opts),
      cache_(cache), machine_(machine_cfg)
{
    if (machine_cfg.nprocs > workload.nprocs())
        throw std::invalid_argument(
            "stream machine has more processors than the workload's "
            "address space provides private heaps for");
    // Wire the machine exactly like harness::runCold would.
    machine_.setChecker(opts_.checker);
    machine_.setFaultPlan(opts_.faults);
    machine_.setPlacement(opts_.placement);
    if (opts_.memProfile)
        machine_.enableSharing(true);
}

unsigned
StreamScheduler::pickNext(const std::vector<QueryInstance> &instances,
                          const std::vector<unsigned> &ready) const
{
    unsigned best = 0;
    for (unsigned i = 1; i < ready.size(); ++i) {
        const QueryInstance &a = instances[ready[i]];
        const QueryInstance &b = instances[ready[best]];
        bool better = false;
        if (cfg_.policy == Policy::ShortestClass &&
            serviceRank(a.query) != serviceRank(b.query)) {
            better = serviceRank(a.query) < serviceRank(b.query);
        } else if (a.arrival != b.arrival) {
            better = a.arrival < b.arrival;
        } else {
            better = a.id < b.id;
        }
        if (better)
            best = i;
    }
    return best;
}

InstanceRecord
StreamScheduler::runInstance(const QueryInstance &inst, sim::ProcId proc,
                             sim::Cycles start)
{
    InstanceRecord rec;
    rec.inst = inst;
    rec.proc = proc;
    rec.start = start;

    sim::TraceStream local;
    const sim::TraceStream *stream = nullptr;
    if (cache_) {
        const TraceCache::Key key{inst.query, inst.paramSeed, proc};
        const std::uint64_t hits_before = cache_->stats().hits;
        stream = &cache_->fetch(key, [&] {
            return workload_.streamTrace(inst.query, inst.paramSeed, proc);
        });
        rec.cacheHit = cache_->stats().hits > hits_before;
    } else {
        local = workload_.streamTrace(inst.query, inst.paramSeed, proc);
        stream = &local;
    }
    rec.traceHash = stream->contentHash();

    if (cfg_.coldCache)
        machine_.resetMemoryState();

    // The instance replays solo on its processor slot: lower slots get
    // empty traces (immediately done, zero cycles), higher slots idle.
    // A solo run is bit-identical under both engines and any host thread
    // count, which is what makes stream results engine-invariant.
    static const sim::TraceStream kEmpty;
    std::vector<const sim::TraceStream *> ptrs(proc + 1, &kEmpty);
    ptrs[proc] = stream;
    rec.stats = harness::runOnMachine(machine_, ptrs, opts_);

    rec.service = rec.stats.executionTime();
    rec.complete = start + rec.service;
    rec.wait = start - inst.arrival;
    rec.latency = rec.complete - inst.arrival;
    return rec;
}

StreamResult
StreamScheduler::run()
{
    if (ran_)
        throw std::logic_error("StreamScheduler::run is single-shot");
    ran_ = true;

    std::vector<QueryInstance> instances = makeInstances(cfg_);
    const unsigned n = static_cast<unsigned>(instances.size());
    const unsigned nprocs = machine_.config().nprocs;
    counters_.instances = n;

    StreamResult result;
    result.config = cfg_;
    result.cacheEnabled = cache_ != nullptr;
    result.records.reserve(n);

    // Per-processor availability and the three instance pools: not yet
    // arrived (closed-loop successors have unknown arrivals until their
    // predecessor completes), arrived-and-queued (ready), and running.
    std::vector<sim::Cycles> freeAt(nprocs, 0);
    std::vector<char> procBusy(nprocs, 0);
    std::vector<char> arrivalKnown(n, 0);
    std::vector<char> admitted(n, 0);
    std::vector<unsigned> ready;
    struct Running
    {
        sim::Cycles complete;
        sim::ProcId proc;
        unsigned id;
    };
    std::vector<Running> running;

    for (unsigned i = 0; i < n; ++i) {
        if (cfg_.mode == ArrivalMode::Open || instances[i].client == i)
            arrivalKnown[i] = 1; // open: all; closed: each client's first
    }

    sim::Cycles now = 0;
    unsigned completed = 0;
    while (completed < n) {
        // Admit every known arrival due by now.
        for (unsigned i = 0; i < n; ++i) {
            if (arrivalKnown[i] && !admitted[i] &&
                instances[i].arrival <= now) {
                admitted[i] = 1;
                ready.push_back(i);
            }
        }
        counters_.queuePeak =
            std::max(counters_.queuePeak,
                     static_cast<std::uint64_t>(ready.size()));

        // Dispatch queued instances onto free processors, policy order,
        // lowest free processor slot first.
        bool dispatched_any = false;
        while (!ready.empty()) {
            sim::ProcId proc = nprocs;
            for (unsigned p = 0; p < nprocs; ++p) {
                if (!procBusy[p] && freeAt[p] <= now) {
                    proc = p;
                    break;
                }
            }
            if (proc == nprocs)
                break;
            const unsigned slot = pickNext(instances, ready);
            const unsigned id = ready[slot];
            ready.erase(ready.begin() + slot);
            InstanceRecord rec = runInstance(instances[id], proc, now);
            ++counters_.dispatched;
            procBusy[proc] = 1;
            freeAt[proc] = rec.complete;
            running.push_back({rec.complete, proc, id});
            result.records.push_back(std::move(rec));
            dispatched_any = true;
        }
        if (dispatched_any)
            continue; // new completions may unlock nothing until later

        // Advance to the next event: the earliest completion or the
        // earliest not-yet-admitted known arrival.
        sim::Cycles next = 0;
        bool have_next = false;
        for (const Running &r : running) {
            if (!have_next || r.complete < next) {
                next = r.complete;
                have_next = true;
            }
        }
        for (unsigned i = 0; i < n; ++i) {
            if (arrivalKnown[i] && !admitted[i] &&
                (!have_next || instances[i].arrival < next)) {
                next = instances[i].arrival;
                have_next = true;
            }
        }
        if (!have_next)
            throw std::logic_error("stream stalled with no pending event");
        now = next;

        // Process completions at `now`, (cycle, proc)-ordered: free the
        // processor; in closed-loop mode the completing client submits
        // its next instance at this cycle.
        std::sort(running.begin(), running.end(),
                  [](const Running &a, const Running &b) {
                      if (a.complete != b.complete)
                          return a.complete < b.complete;
                      return a.proc < b.proc;
                  });
        while (!running.empty() && running.front().complete <= now) {
            const Running r = running.front();
            running.erase(running.begin());
            procBusy[r.proc] = 0;
            ++completed;
            ++counters_.completed;
            if (cfg_.mode == ArrivalMode::Closed) {
                const unsigned succ = r.id + cfg_.clients;
                if (succ < n) {
                    instances[succ].arrival = r.complete;
                    arrivalKnown[succ] = 1;
                }
            }
        }
    }

    // Stream-level accounting, over records sorted into completion order.
    std::stable_sort(result.records.begin(), result.records.end(),
                     [](const InstanceRecord &a, const InstanceRecord &b) {
                         if (a.complete != b.complete)
                             return a.complete < b.complete;
                         return a.proc < b.proc;
                     });
    std::vector<double> lat, wait, service;
    std::map<std::string, std::vector<double>> by_query;
    for (const InstanceRecord &r : result.records) {
        lat.push_back(static_cast<double>(r.latency));
        wait.push_back(static_cast<double>(r.wait));
        service.push_back(static_cast<double>(r.service));
        by_query[tpcd::queryName(r.inst.query)].push_back(
            static_cast<double>(r.latency));
        result.makespan = std::max(result.makespan, r.complete);
    }
    result.latency = summarize(lat);
    result.wait = summarize(wait);
    result.service = summarize(service);
    for (const auto &kv : by_query)
        result.byQuery.emplace_back(kv.first, summarize(kv.second));
    if (result.makespan > 0)
        result.throughputPerMcycle =
            static_cast<double>(result.records.size()) /
            (static_cast<double>(result.makespan) / 1e6);
    if (cache_)
        result.cache = cache_->stats();

    // End-of-stream registry snapshot: machine counters plus the stream
    // layer's own (runOnMachine never snapshots; runCold's equivalent
    // happens here so the JSON report sees the whole warm stream).
    if (opts_.registrySnapshot) {
        obs::Registry reg;
        machine_.registerStats(reg);
        if (opts_.checker)
            opts_.checker->registerStats(reg, "check");
        if (opts_.faults)
            opts_.faults->registerStats(reg, "fault");
        if (cache_)
            cache_->registerStats(reg, "cache");
        registerStats(reg, "sched");
        *opts_.registrySnapshot = reg.toJson();
    }
    return result;
}

void
StreamScheduler::registerStats(obs::Registry &reg,
                               const std::string &prefix) const
{
    reg.addCounter(obs::metricName(prefix, "instances"),
                   [this] { return counters_.instances; });
    reg.addCounter(obs::metricName(prefix, "dispatched"),
                   [this] { return counters_.dispatched; });
    reg.addCounter(obs::metricName(prefix, "completed"),
                   [this] { return counters_.completed; });
    reg.addCounter(obs::metricName(prefix, "queue_peak"),
                   [this] { return counters_.queuePeak; });
}

obs::Json
toJson(const StreamResult &r, bool include_run_stats)
{
    obs::Json j = obs::Json::object();
    j["config"] = toJson(r.config);

    obs::Json summary = obs::Json::object();
    summary["instances"] =
        obs::Json(static_cast<std::uint64_t>(r.records.size()));
    summary["makespan"] = obs::Json(r.makespan);
    summary["throughput_per_mcycle"] = obs::Json(r.throughputPerMcycle);
    summary["latency"] = toJson(r.latency);
    summary["wait"] = toJson(r.wait);
    summary["service"] = toJson(r.service);
    obs::Json byq = obs::Json::object();
    for (const auto &kv : r.byQuery)
        byq[kv.first] = toJson(kv.second);
    summary["by_query"] = std::move(byq);
    j["summary"] = std::move(summary);

    obs::Json cache = obs::Json::object();
    cache["enabled"] = obs::Json(r.cacheEnabled);
    cache["hits"] = obs::Json(r.cache.hits);
    cache["misses"] = obs::Json(r.cache.misses);
    cache["entries"] = obs::Json(r.cache.entries);
    j["cache"] = std::move(cache);

    obs::Json records = obs::Json::array();
    for (const InstanceRecord &rec : r.records) {
        obs::Json e = obs::Json::object();
        e["id"] = obs::Json(rec.inst.id);
        e["query"] = obs::Json(tpcd::queryName(rec.inst.query));
        e["param_seed"] = obs::Json(rec.inst.paramSeed);
        if (r.config.mode == ArrivalMode::Closed)
            e["client"] = obs::Json(rec.inst.client);
        e["proc"] = obs::Json(static_cast<unsigned>(rec.proc));
        e["arrival"] = obs::Json(rec.inst.arrival);
        e["start"] = obs::Json(rec.start);
        e["complete"] = obs::Json(rec.complete);
        e["service"] = obs::Json(rec.service);
        e["wait"] = obs::Json(rec.wait);
        e["latency"] = obs::Json(rec.latency);
        e["trace_hash"] = obs::Json(rec.traceHash);
        if (include_run_stats)
            e["stats"] = obs::toJson(rec.stats);
        records.push(std::move(e));
    }
    j["records"] = std::move(records);
    return j;
}

} // namespace sched
} // namespace dss
