#include "sched/scheduler.hh"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "obs/registry.hh"
#include "obs/stats_json.hh"
#include "sim/check.hh"
#include "sim/error.hh"
#include "sim/fault.hh"

namespace dss {
namespace sched {

StreamScheduler::StreamScheduler(harness::Workload &workload,
                                 const sim::MachineConfig &machine_cfg,
                                 const StreamConfig &stream_cfg,
                                 const harness::RunOptions &base_opts,
                                 TraceCache *cache,
                                 const ResilienceConfig &resilience)
    : workload_(workload), cfg_(stream_cfg), opts_(base_opts),
      cache_(cache), res_(resilience), machine_(machine_cfg)
{
    if (machine_cfg.nprocs > workload.nprocs())
        throw std::invalid_argument(
            "stream machine has more processors than the workload's "
            "address space provides private heaps for");
    // Wire the machine exactly like harness::runCold would.
    machine_.setChecker(opts_.checker);
    machine_.setFaultPlan(opts_.faults);
    machine_.setPlacement(opts_.placement);
    if (opts_.memProfile)
        machine_.enableSharing(true);
}

unsigned
StreamScheduler::pickNext(const std::vector<QueryInstance> &instances,
                          const std::vector<unsigned> &ready) const
{
    unsigned best = 0;
    for (unsigned i = 1; i < ready.size(); ++i) {
        const QueryInstance &a = instances[ready[i]];
        const QueryInstance &b = instances[ready[best]];
        bool better = false;
        if (cfg_.policy == Policy::ShortestClass &&
            serviceRank(a.query) != serviceRank(b.query)) {
            better = serviceRank(a.query) < serviceRank(b.query);
        } else if (a.arrival != b.arrival) {
            better = a.arrival < b.arrival;
        } else {
            better = a.id < b.id;
        }
        if (better)
            best = i;
    }
    return best;
}

InstanceRecord
StreamScheduler::runInstance(const QueryInstance &inst, sim::ProcId proc,
                             sim::Cycles start)
{
    InstanceRecord rec;
    rec.inst = inst;
    rec.proc = proc;
    rec.start = start;

    sim::TraceStream local;
    const sim::TraceStream *stream = nullptr;
    if (cache_) {
        const TraceCache::Key key{inst.query, inst.paramSeed, proc};
        const std::uint64_t hits_before = cache_->stats().hits;
        stream = &cache_->fetch(key, [&] {
            return workload_.streamTrace(inst.query, inst.paramSeed, proc);
        });
        rec.cacheHit = cache_->stats().hits > hits_before;
    } else {
        local = workload_.streamTrace(inst.query, inst.paramSeed, proc);
        stream = &local;
    }
    rec.traceHash = stream->contentHash();

    if (cfg_.coldCache)
        machine_.resetMemoryState();

    // The instance replays solo on its processor slot: lower slots get
    // empty traces (immediately done, zero cycles), higher slots idle.
    // A solo run is bit-identical under both engines and any host thread
    // count, which is what makes stream results engine-invariant.
    static const sim::TraceStream kEmpty;
    std::vector<const sim::TraceStream *> ptrs(proc + 1, &kEmpty);
    ptrs[proc] = stream;
    rec.stats = harness::runOnMachine(machine_, ptrs, opts_);

    rec.service = rec.stats.executionTime();
    rec.complete = start + rec.service;
    rec.wait = start - inst.arrival;
    rec.latency = rec.complete - inst.arrival;
    return rec;
}

StreamResult
StreamScheduler::run()
{
    if (ran_)
        throw std::logic_error("StreamScheduler::run is single-shot");
    ran_ = true;

    std::vector<QueryInstance> instances = makeInstances(cfg_);
    const unsigned n = static_cast<unsigned>(instances.size());
    const unsigned nprocs = machine_.config().nprocs;
    counters_.instances = n;

    const bool res_on = res_.enabled();
    OutageTable outages(res_.nodeFailures ? opts_.faults : nullptr, nprocs);
    CircuitBreaker breaker(res_);
    std::map<std::string, ClassSlo> slo;

    StreamResult result;
    result.config = cfg_;
    result.cacheEnabled = cache_ != nullptr;
    result.resilienceEnabled = res_on;
    result.records.reserve(n);

    // Per-processor availability and the instance pools: not yet arrived
    // (closed-loop successors have unknown arrivals until their
    // predecessor resolves), arrived-and-queued (ready), running, and
    // resolved. readyAt starts as the arrival and moves forward when a
    // node failure re-queues an instance with backoff.
    std::vector<sim::Cycles> freeAt(nprocs, 0);
    std::vector<char> procBusy(nprocs, 0);
    std::vector<char> arrivalKnown(n, 0);
    std::vector<char> admitted(n, 0);
    std::vector<char> resolvedFlag(n, 0);
    std::vector<sim::Cycles> readyAt(n, 0);
    std::vector<sim::Cycles> deadlineAt(n, 0); ///< absolute; 0 = none
    std::vector<unsigned> attempts(n, 0);
    std::vector<unsigned> migrations(n, 0);
    std::vector<unsigned> ready;

    enum class EvKind { Complete, Timeout, NodeFail, Abandon };
    struct Running
    {
        sim::Cycles cycle; ///< when the event resolves/frees the proc
        sim::ProcId proc;
        unsigned id;
        EvKind kind;
        sim::Cycles procFreeAt; ///< kNever while permanently down
        InstanceRecord rec;     ///< unused for NodeFail (it migrates)
    };
    std::vector<Running> running;

    auto deadlineCycleFor = [&](const QueryInstance &inst) -> sim::Cycles {
        if (!res_on)
            return 0;
        const sim::Cycles d = res_.deadlineFor(inst.query);
        return d ? inst.arrival + d : 0;
    };

    for (unsigned i = 0; i < n; ++i) {
        if (cfg_.mode == ArrivalMode::Open || instances[i].client == i) {
            arrivalKnown[i] = 1; // open: all; closed: each client's first
            readyAt[i] = instances[i].arrival;
            deadlineAt[i] = deadlineCycleFor(instances[i]);
        }
    }

    unsigned resolved = 0;
    auto classKey = [&](unsigned id) {
        return tpcd::queryName(instances[id].query);
    };
    // Resolve instance `id` with the finished record: count it, feed the
    // breaker, and (closed loop) let the client submit its successor at
    // the resolution cycle.
    auto resolve = [&](unsigned id, InstanceRecord rec, sim::Cycles cycle) {
        resolvedFlag[id] = 1;
        ++resolved;
        switch (rec.outcome) {
          case Outcome::Ok: ++counters_.completed; break;
          case Outcome::Timeout: ++counters_.timeouts; break;
          case Outcome::ShedQueue: ++counters_.shedQueue; break;
          case Outcome::ShedBreaker: ++counters_.shedBreaker; break;
          case Outcome::ShedExpired: ++counters_.shedExpired; break;
          case Outcome::Abandoned: ++counters_.abandoned; break;
        }
        if (res_on) {
            ClassSlo &cs = slo[classKey(id)];
            cs.count(rec.outcome);
            cs.migrations += rec.migrations;
            breaker.onResolution(classKey(id), id, rec.outcome, cycle);
        }
        if (cfg_.mode == ArrivalMode::Closed) {
            const unsigned succ = id + cfg_.clients;
            if (succ < n) {
                instances[succ].arrival = cycle;
                arrivalKnown[succ] = 1;
                readyAt[succ] = cycle;
                deadlineAt[succ] = deadlineCycleFor(instances[succ]);
            }
        }
        result.records.push_back(std::move(rec));
    };
    // Resolve an instance that never got (or never finished) service.
    auto shed = [&](unsigned id, Outcome o, sim::Cycles cycle) {
        InstanceRecord rec;
        rec.inst = instances[id];
        rec.start = cycle;
        rec.complete = cycle;
        rec.wait = cycle - instances[id].arrival;
        rec.latency = cycle - instances[id].arrival;
        rec.outcome = o;
        rec.attempts = attempts[id];
        rec.migrations = migrations[id];
        rec.deadline = deadlineAt[id];
        resolve(id, std::move(rec), cycle);
    };

    sim::Cycles now = 0;
    while (resolved < n) {
        const unsigned resolved_before = resolved;

        // Admit every known (or re-queued) arrival due by now. An open
        // circuit breaker sheds the class at the door; node-failure
        // re-entries (attempts > 0) are continuations, not fresh
        // submissions, and bypass the breaker.
        for (unsigned i = 0; i < n; ++i) {
            if (!arrivalKnown[i] || admitted[i] || resolvedFlag[i] ||
                readyAt[i] > now)
                continue;
            admitted[i] = 1;
            if (res_on && breaker.enabled() && attempts[i] == 0) {
                const auto d = breaker.onArrival(classKey(i), i, now);
                if (d == CircuitBreaker::Decision::Shed) {
                    shed(i, Outcome::ShedBreaker, now);
                    continue;
                }
            }
            ready.push_back(i);
        }

        // Dispatch queued instances onto in-service free processors,
        // policy order, lowest free processor slot first.
        bool dispatched_any = false;
        while (!ready.empty()) {
            sim::ProcId proc = nprocs;
            for (unsigned p = 0; p < nprocs; ++p) {
                if (!procBusy[p] && freeAt[p] <= now &&
                    !(outages.active() &&
                      outages.coveringOutage(p, now))) {
                    proc = p;
                    break;
                }
            }
            if (proc == nprocs)
                break;
            const unsigned slot = pickNext(instances, ready);
            const unsigned id = ready[slot];
            ready.erase(ready.begin() + slot);
            // A deadline that already passed in the queue: shed instead
            // of burning a processor on a guaranteed timeout.
            if (res_on && deadlineAt[id] && now >= deadlineAt[id]) {
                shed(id, Outcome::ShedExpired, now);
                continue;
            }
            InstanceRecord rec = runInstance(instances[id], proc, now);
            ++counters_.dispatched;
            ++attempts[id];
            rec.attempts = attempts[id];
            rec.migrations = migrations[id];
            rec.deadline = deadlineAt[id];
            procBusy[proc] = 1;
            dispatched_any = true;

            // How does this attempt end? A node failure beats the
            // deadline when it strikes first; otherwise the deadline
            // truncates any run that would finish late; otherwise the
            // run completes.
            Running ev;
            ev.proc = proc;
            ev.id = id;
            std::optional<OutageWindow> fail;
            if (outages.active()) {
                const auto w = outages.nextOutageAfter(proc, now);
                if (w && w->start < rec.complete &&
                    (!deadlineAt[id] || w->start <= deadlineAt[id]))
                    fail = w;
            }
            if (fail) {
                ev.cycle = fail->start;
                ev.procFreeAt =
                    fail->permanent ? sim::FaultPlan::kNever : fail->end;
                if (migrations[id] >= res_.migrationBudget) {
                    // Out of migration budget: the stream gives up on it.
                    ev.kind = EvKind::Abandon;
                    rec.complete = fail->start;
                    rec.service = fail->start - rec.start;
                    rec.latency = fail->start - rec.inst.arrival;
                    rec.outcome = Outcome::Abandoned;
                    ev.rec = std::move(rec);
                } else {
                    // Abort at the failure and migrate: re-queue under
                    // the harness retry policy's bounded backoff; a
                    // surviving processor picks it up.
                    ev.kind = EvKind::NodeFail;
                    ++migrations[id];
                    ++counters_.migrations;
                    admitted[id] = 0;
                    readyAt[id] =
                        fail->start +
                        harness::backoffFor(opts_.retry,
                                            migrations[id] - 1);
                }
            } else if (res_on && deadlineAt[id] &&
                       deadlineAt[id] < rec.complete) {
                ev.kind = EvKind::Timeout;
                ev.cycle = deadlineAt[id];
                ev.procFreeAt = deadlineAt[id];
                rec.complete = deadlineAt[id];
                rec.service = deadlineAt[id] - rec.start;
                rec.latency = deadlineAt[id] - rec.inst.arrival;
                rec.outcome = Outcome::Timeout;
                ev.rec = std::move(rec);
            } else {
                ev.kind = EvKind::Complete;
                ev.cycle = rec.complete;
                ev.procFreeAt = rec.complete;
                rec.outcome = Outcome::Ok;
                ev.rec = std::move(rec);
            }
            running.push_back(std::move(ev));
        }

        // Admission control: whatever dispatch could not place must fit
        // the bounded run queue; the shed policy picks the overflow
        // victims. Runs after dispatch so capacity 0 still serves
        // instances that can start immediately.
        if (res_on && res_.queueCapacity != ResilienceConfig::kUnboundedQueue) {
            while (ready.size() > res_.queueCapacity) {
                const unsigned slot =
                    shedVictim(res_.shed, instances, ready, deadlineAt);
                const unsigned id = ready[slot];
                ready.erase(ready.begin() + slot);
                shed(id, Outcome::ShedQueue, now);
            }
        }
        counters_.queuePeak =
            std::max(counters_.queuePeak,
                     static_cast<std::uint64_t>(ready.size()));

        // Anything resolved or dispatched at `now` may have released
        // closed-loop successors due at `now`: re-run admission before
        // advancing the clock.
        if (dispatched_any || resolved != resolved_before)
            continue;

        // Advance to the next event: the earliest running-instance
        // event, not-yet-admitted arrival/re-entry, or — when work is
        // queued and every free processor is down — outage end.
        sim::Cycles next = 0;
        bool have_next = false;
        auto consider = [&](sim::Cycles c) {
            if (!have_next || c < next) {
                next = c;
                have_next = true;
            }
        };
        for (const Running &r : running)
            consider(r.cycle);
        for (unsigned i = 0; i < n; ++i) {
            if (arrivalKnown[i] && !admitted[i] && !resolvedFlag[i])
                consider(readyAt[i]);
        }
        if (!ready.empty() && outages.active()) {
            for (unsigned p = 0; p < nprocs; ++p) {
                if (procBusy[p] || freeAt[p] == sim::FaultPlan::kNever)
                    continue;
                const auto up =
                    outages.nextUpAt(p, std::max(freeAt[p], now));
                if (up && *up > now)
                    consider(*up);
            }
        }
        if (!have_next) {
            if (!ready.empty() && outages.active()) {
                // Every processor is permanently out of service and
                // queries are still queued: fail cleanly (guardedMain
                // turns this into error JSON + exit 3), never hang.
                obs::Json dump = obs::Json::object();
                dump["queued"] =
                    obs::Json(static_cast<std::uint64_t>(ready.size()));
                dump["resolved"] =
                    obs::Json(static_cast<std::uint64_t>(resolved));
                dump["instances"] =
                    obs::Json(static_cast<std::uint64_t>(n));
                throw sim::SimError(
                    "query stream stalled: every processor failed "
                    "permanently with queries still queued",
                    std::move(dump));
            }
            throw std::logic_error("stream stalled with no pending event");
        }
        now = next;

        // Process events at `now`, (cycle, proc)-ordered: free (or
        // bury) the processor; resolutions free a closed-loop client.
        std::sort(running.begin(), running.end(),
                  [](const Running &a, const Running &b) {
                      if (a.cycle != b.cycle)
                          return a.cycle < b.cycle;
                      return a.proc < b.proc;
                  });
        while (!running.empty() && running.front().cycle <= now) {
            Running r = std::move(running.front());
            running.erase(running.begin());
            procBusy[r.proc] = 0;
            freeAt[r.proc] = r.procFreeAt;
            if (r.kind == EvKind::NodeFail)
                continue; // the instance is already re-queued
            resolve(r.id, std::move(r.rec), r.cycle);
        }
    }

    // Stream-level accounting, over records sorted into resolution
    // order. Latency/wait/service summaries cover goodput instances
    // only when the resilience layer is on (a shed instance has no
    // meaningful service time); makespan covers every resolution.
    std::stable_sort(result.records.begin(), result.records.end(),
                     [](const InstanceRecord &a, const InstanceRecord &b) {
                         if (a.complete != b.complete)
                             return a.complete < b.complete;
                         if (a.proc != b.proc)
                             return a.proc < b.proc;
                         return a.inst.id < b.inst.id;
                     });
    std::vector<double> lat, wait, service;
    std::map<std::string, std::vector<double>> by_query;
    std::vector<double> lat_healthy, lat_degraded;
    std::uint64_t goodput = 0;
    for (InstanceRecord &r : result.records) {
        result.makespan = std::max(result.makespan, r.complete);
        if (res_on && outages.active() && r.attempts > 0)
            r.degraded = outages.anyOutageIn(r.start, r.complete);
        if (res_on && r.outcome != Outcome::Ok)
            continue;
        ++goodput;
        lat.push_back(static_cast<double>(r.latency));
        wait.push_back(static_cast<double>(r.wait));
        service.push_back(static_cast<double>(r.service));
        by_query[tpcd::queryName(r.inst.query)].push_back(
            static_cast<double>(r.latency));
        if (res_on)
            (r.degraded ? lat_degraded : lat_healthy)
                .push_back(static_cast<double>(r.latency));
    }
    result.latency = summarize(lat);
    result.wait = summarize(wait);
    result.service = summarize(service);
    for (const auto &kv : by_query)
        result.byQuery.emplace_back(kv.first, summarize(kv.second));
    if (result.makespan > 0)
        result.throughputPerMcycle =
            static_cast<double>(goodput) /
            (static_cast<double>(result.makespan) / 1e6);
    if (cache_)
        result.cache = cache_->stats();

    if (res_on) {
        ResilienceReport &rep = result.resilience;
        rep.config = res_;
        for (const auto &kv : slo) {
            rep.byClass.emplace_back(kv.first, kv.second);
            rep.total.submitted += kv.second.submitted;
            rep.total.goodput += kv.second.goodput;
            rep.total.timeouts += kv.second.timeouts;
            rep.total.shedQueue += kv.second.shedQueue;
            rep.total.shedBreaker += kv.second.shedBreaker;
            rep.total.shedExpired += kv.second.shedExpired;
            rep.total.abandoned += kv.second.abandoned;
            rep.total.migrations += kv.second.migrations;
        }
        rep.healthy = summarize(lat_healthy);
        rep.degraded = summarize(lat_degraded);
        rep.breakerTrips = breaker.trips();
        rep.breakerRecoveries = breaker.recoveries();
        rep.breakerStates = breaker.stateNames();
        counters_.breakerTrips = rep.breakerTrips;
        counters_.breakerRecoveries = rep.breakerRecoveries;
        if (outages.active()) {
            rep.outages = outages.outagesIn(0, result.makespan);
            rep.degradedCycles =
                outages.degradedCyclesIn(0, result.makespan);
            // Count the windows the stream actually lived through into
            // the fault plan's log, so fault.injected.node_failure shows
            // up beside the other kinds.
            if (opts_.faults) {
                for (const OutageWindow &w : rep.outages)
                    opts_.faults->recordNodeFailure(
                        w.proc, w.index,
                        w.permanent ? 0 : w.end - w.start);
            }
        }
    }

    // End-of-stream registry snapshot: machine counters plus the stream
    // layer's own (runOnMachine never snapshots; runCold's equivalent
    // happens here so the JSON report sees the whole warm stream).
    if (opts_.registrySnapshot) {
        obs::Registry reg;
        machine_.registerStats(reg);
        if (opts_.checker)
            opts_.checker->registerStats(reg, "check");
        if (opts_.faults)
            opts_.faults->registerStats(reg, "fault");
        if (cache_) {
            cache_->registerStats(reg, "cache");
            cache_->registerStats(reg, "sched.cache");
        }
        if (opts_.retryStats)
            opts_.retryStats->registerStats(reg, "harness.retry");
        registerStats(reg, "sched");
        *opts_.registrySnapshot = reg.toJson();
    }
    return result;
}

void
StreamScheduler::registerStats(obs::Registry &reg,
                               const std::string &prefix) const
{
    reg.addCounter(obs::metricName(prefix, "instances"),
                   [this] { return counters_.instances; });
    reg.addCounter(obs::metricName(prefix, "dispatched"),
                   [this] { return counters_.dispatched; });
    reg.addCounter(obs::metricName(prefix, "completed"),
                   [this] { return counters_.completed; });
    reg.addCounter(obs::metricName(prefix, "queue_peak"),
                   [this] { return counters_.queuePeak; });
    reg.addCounter(obs::metricName(prefix, "goodput"),
                   [this] { return counters_.completed; });
    reg.addCounter(obs::metricName(prefix, "timeouts"),
                   [this] { return counters_.timeouts; });
    reg.addCounter(obs::metricName(prefix, "migrations"),
                   [this] { return counters_.migrations; });
    reg.addCounter(obs::metricName(prefix, "shed.queue"),
                   [this] { return counters_.shedQueue; });
    reg.addCounter(obs::metricName(prefix, "shed.breaker"),
                   [this] { return counters_.shedBreaker; });
    reg.addCounter(obs::metricName(prefix, "shed.expired"),
                   [this] { return counters_.shedExpired; });
    reg.addCounter(obs::metricName(prefix, "abandoned"),
                   [this] { return counters_.abandoned; });
    reg.addCounter(obs::metricName(prefix, "breaker.trips"),
                   [this] { return counters_.breakerTrips; });
    reg.addCounter(obs::metricName(prefix, "breaker.recoveries"),
                   [this] { return counters_.breakerRecoveries; });
}

obs::Json
toJson(const StreamResult &r, bool include_run_stats)
{
    obs::Json j = obs::Json::object();
    j["config"] = toJson(r.config);

    obs::Json summary = obs::Json::object();
    summary["instances"] =
        obs::Json(static_cast<std::uint64_t>(r.records.size()));
    summary["makespan"] = obs::Json(r.makespan);
    summary["throughput_per_mcycle"] = obs::Json(r.throughputPerMcycle);
    summary["latency"] = toJson(r.latency);
    summary["wait"] = toJson(r.wait);
    summary["service"] = toJson(r.service);
    obs::Json byq = obs::Json::object();
    for (const auto &kv : r.byQuery)
        byq[kv.first] = toJson(kv.second);
    summary["by_query"] = std::move(byq);
    j["summary"] = std::move(summary);

    obs::Json cache = obs::Json::object();
    cache["enabled"] = obs::Json(r.cacheEnabled);
    cache["hits"] = obs::Json(r.cache.hits);
    cache["misses"] = obs::Json(r.cache.misses);
    cache["entries"] = obs::Json(r.cache.entries);
    cache["evictions"] = obs::Json(r.cache.evictions);
    j["cache"] = std::move(cache);

    if (r.resilienceEnabled)
        j["resilience"] = toJson(r.resilience);

    obs::Json records = obs::Json::array();
    for (const InstanceRecord &rec : r.records) {
        obs::Json e = obs::Json::object();
        e["id"] = obs::Json(rec.inst.id);
        e["query"] = obs::Json(tpcd::queryName(rec.inst.query));
        e["param_seed"] = obs::Json(rec.inst.paramSeed);
        if (r.config.mode == ArrivalMode::Closed)
            e["client"] = obs::Json(rec.inst.client);
        e["proc"] = obs::Json(static_cast<unsigned>(rec.proc));
        e["arrival"] = obs::Json(rec.inst.arrival);
        e["start"] = obs::Json(rec.start);
        e["complete"] = obs::Json(rec.complete);
        e["service"] = obs::Json(rec.service);
        e["wait"] = obs::Json(rec.wait);
        e["latency"] = obs::Json(rec.latency);
        e["trace_hash"] = obs::Json(rec.traceHash);
        if (r.resilienceEnabled) {
            e["outcome"] = obs::Json(std::string(outcomeName(rec.outcome)));
            e["attempts"] = obs::Json(rec.attempts);
            e["migrations"] = obs::Json(rec.migrations);
            if (rec.deadline)
                e["deadline"] = obs::Json(rec.deadline);
            e["degraded"] = obs::Json(rec.degraded);
        }
        if (include_run_stats && rec.attempts > 0)
            e["stats"] = obs::toJson(rec.stats);
        records.push(std::move(e));
    }
    j["records"] = std::move(records);
    return j;
}

} // namespace sched
} // namespace dss
