/**
 * @file
 * Deterministic query-stream scheduler: admits a seeded arrival stream
 * of query instances onto the N processors of one warm simulated
 * machine, queueing instances when every processor is busy, and accounts
 * per-instance latency plus stream-level tail statistics.
 *
 * Determinism argument (DESIGN.md §15, proven by tests/test_sched.cc and
 * tests/test_stream_fuzz.cc):
 *
 *  1. Each instance runs *solo* — one trace on its assigned processor
 *     slot of the shared machine, via harness::runOnMachine. Solo runs
 *     are bit-identical under the sequential and parallel engines for
 *     any host thread count (a single pipeline leaves no cross-processor
 *     interleaving for the engines to order differently).
 *  2. Trace capture is pure: Workload::streamTrace yields byte-identical
 *     streams for equal (query, params, proc), so the TraceCache's hit
 *     path replays exactly the miss path's bytes.
 *  3. The event loop is simulated-cycle-driven with total tie-break
 *     orders (completions by (cycle, proc); dispatch by policy with
 *     (arrival, id) as the final tie-break), so the admission order is a
 *     pure function of the stream configuration and the per-instance
 *     service times — themselves deterministic by (1) and (2).
 *
 * Cross-instance memory behaviour is still real: caches, directory
 * state and miss-classification history persist across the stream
 * (unless StreamConfig::coldCache), so a Q6 landing on a processor that
 * just ran Q3 pays coherence misses on the metadata lines the Q3 run
 * left dirty in other processors' caches. What the stream layer does
 * *not* model is intra-run concurrency: two instances whose service
 * intervals overlap in stream time still replay serially on the machine,
 * an approximation documented in DESIGN.md §15.3.
 */

#ifndef DSS_SCHED_SCHEDULER_HH
#define DSS_SCHED_SCHEDULER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "harness/workload.hh"
#include "obs/json.hh"
#include "sched/latency.hh"
#include "sched/resilience.hh"
#include "sched/stream.hh"
#include "sched/trace_cache.hh"
#include "sim/machine.hh"
#include "sim/stats.hh"

namespace dss {
namespace sched {

/** Everything recorded about one resolved query instance. */
struct InstanceRecord
{
    QueryInstance inst;
    sim::ProcId proc = 0;     ///< processor slot it ran on (0 if shed)
    sim::Cycles start = 0;    ///< dispatch cycle (shed cycle if shed)
    sim::Cycles complete = 0; ///< resolution cycle
    sim::Cycles service = 0;  ///< cycles the processor was occupied
    sim::Cycles wait = 0;     ///< start - arrival (queueing delay)
    sim::Cycles latency = 0;  ///< complete - arrival
    bool cacheHit = false;    ///< trace served from the TraceCache
    std::uint64_t traceHash = 0; ///< content hash of the replayed trace
    sim::SimStats stats;      ///< full solo-run statistics

    // Resilience fields; serialized only when the layer is enabled, so
    // legacy stream reports stay byte-identical.
    Outcome outcome = Outcome::Ok;
    unsigned attempts = 0;    ///< dispatches (0 when shed unstarted)
    unsigned migrations = 0;  ///< node-failure re-dispatches
    sim::Cycles deadline = 0; ///< absolute deadline cycle; 0 = none
    bool degraded = false;    ///< overlapped a node outage
};

/** A finished stream: per-instance records plus stream-level accounting. */
struct StreamResult
{
    StreamConfig config;
    std::vector<InstanceRecord> records; ///< in completion order
    sim::Cycles makespan = 0;            ///< max completion cycle
    LatencySummary latency;              ///< arrival -> completion
    LatencySummary wait;                 ///< arrival -> dispatch
    LatencySummary service;              ///< dispatch -> completion
    /** Per-query-name latency summaries, sorted by name. */
    std::vector<std::pair<std::string, LatencySummary>> byQuery;
    /** Goodput instances per million simulated cycles of makespan. */
    double throughputPerMcycle = 0.0;
    TraceCache::Stats cache; ///< snapshot (zero when cache disabled)
    bool cacheEnabled = false;
    bool resilienceEnabled = false;
    ResilienceReport resilience; ///< filled when resilienceEnabled
};

/**
 * The full result as JSON. @p include_run_stats embeds each instance's
 * complete solo-run toJson(SimStats) — exact but bulky; stream goldens
 * and differential tests use it, human-facing reports may skip it.
 * Deliberately engine-free: a seq-scheduled and a par-scheduled stream
 * of the same configuration serialize byte-identically, which the golden
 * fixtures pin (tests/golden/stream_*.json).
 */
obs::Json toJson(const StreamResult &r, bool include_run_stats = true);

/**
 * Runs one stream on one warm machine. The scheduler owns the Machine
 * (built from @p machine_cfg) and wires it from @p base_opts exactly
 * like harness::runCold would (checker, fault plan, placement, sharing
 * tracker); the per-run pieces of @p base_opts (engine, sampler,
 * timeline, profilers, retry policy) pass through to every instance run.
 *
 * @p cache may be null (cache disabled: every instance re-captures) and
 * may be shared across schedulers — entries are keyed on capture
 * arguments only, which is sound because captures are pure.
 */
class StreamScheduler
{
  public:
    StreamScheduler(harness::Workload &workload,
                    const sim::MachineConfig &machine_cfg,
                    const StreamConfig &stream_cfg,
                    const harness::RunOptions &base_opts,
                    TraceCache *cache,
                    const ResilienceConfig &resilience = ResilienceConfig());

    /** Run the whole stream; callable once per scheduler. */
    StreamResult run();

    struct Counters
    {
        std::uint64_t instances = 0;
        std::uint64_t dispatched = 0;
        std::uint64_t completed = 0;  ///< resolved within deadline (= goodput)
        std::uint64_t queuePeak = 0;  ///< max instances left waiting
        std::uint64_t timeouts = 0;
        std::uint64_t migrations = 0;
        std::uint64_t shedQueue = 0;
        std::uint64_t shedBreaker = 0;
        std::uint64_t shedExpired = 0;
        std::uint64_t abandoned = 0;
        std::uint64_t breakerTrips = 0;
        std::uint64_t breakerRecoveries = 0;
    };

    /**
     * Export the sched.* counters: instances/dispatched/completed/
     * queue_peak plus the resilience set (goodput, timeouts, migrations,
     * shed.{queue,breaker,expired}, abandoned, breaker.{trips,
     * recoveries}) — always present, zero when the layer is off. Valid
     * after run(); the scheduler must outlive @p reg's use.
     */
    void registerStats(obs::Registry &reg,
                       const std::string &prefix = "sched") const;

    const Counters &counters() const { return counters_; }

    sim::Machine &machine() { return machine_; }

  private:
    unsigned pickNext(const std::vector<QueryInstance> &instances,
                      const std::vector<unsigned> &ready) const;
    InstanceRecord runInstance(const QueryInstance &inst, sim::ProcId proc,
                               sim::Cycles start);

    harness::Workload &workload_;
    StreamConfig cfg_;
    harness::RunOptions opts_;
    TraceCache *cache_;
    ResilienceConfig res_;
    sim::Machine machine_;
    Counters counters_;
    bool ran_ = false;
};

} // namespace sched
} // namespace dss

#endif // DSS_SCHED_SCHEDULER_HH
