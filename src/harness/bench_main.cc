#include "harness/bench_main.hh"

#include "harness/guard.hh"

namespace dss {
namespace harness {

int
benchMain(const std::string &bench_name, int argc, char **argv,
          unsigned flags, const std::function<int(BenchContext &)> &body)
{
    return guardedMain(bench_name, argc, argv, [&](int ac, char **av) {
        BenchOptions opts = BenchOptions::parse(
            ac, av, bench_name, flags | BenchOptions::kMachine);
        // Resolve --machine inside the guard: a bad preset name, an
        // unreadable file or a failed validation exits 3 with the
        // structured error JSON, like every other simulated error.
        sim::MachineSpec spec = sim::loadSpec(opts.machine);
        BenchContext ctx{opts, std::move(spec),
                         ObsSession(bench_name, opts)};
        return body(ctx);
    });
}

} // namespace harness
} // namespace dss
