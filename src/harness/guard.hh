/**
 * @file
 * Graceful-failure layer for the bench binaries.
 *
 * guardedMain wraps every bench main body: a sim::SimError (simulated
 * deadlock) or any other exception escaping the body is turned into a
 * structured error JSON on stderr and exit code kErrorExitCode (3) —
 * never a core dump. Exit codes: 0 success, 1 output-file failure,
 * 2 bad flags (BenchOptions::parse), 3 simulator/DB error.
 *
 * retryOnAbort is the bounded retry path for db::QueryAbort: a query
 * that aborts (lock conflict, or a FaultPlan-injected abort) backs off
 * exponentially — in *simulated* cycles, recorded on the plan's
 * counters, not host sleeps — and re-runs, up to RetryPolicy::maxAttempts.
 */

#ifndef DSS_HARNESS_GUARD_HH
#define DSS_HARNESS_GUARD_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "db/common.hh"
#include "sim/addr.hh"
#include "sim/fault.hh"

namespace dss {
namespace obs {
class Registry;
} // namespace obs

namespace harness {

constexpr int kErrorExitCode = 3;

struct RetryPolicy
{
    unsigned maxAttempts = 8;           ///< total tries, first included
    sim::Cycles baseBackoffCycles = 64; ///< first retry's backoff
    sim::Cycles maxBackoffCycles = 4096;
};

/** Backoff before retry number @p attempt (0-based): base << attempt,
 * capped at maxBackoffCycles. */
sim::Cycles backoffFor(const RetryPolicy &policy, unsigned attempt);

/** retryOnAbort's logging helper (out-of-line to keep <ostream> out of
 * this header). */
void noteRetry(std::ostream *log, const db::QueryAbort &qa,
               unsigned attempt, sim::Cycles backoff);

/**
 * Retry/abort accounting, exportable to an obs::Registry so reports see
 * `harness.retry.{attempts,aborts}` instead of stderr-only notes.
 * `attempts` counts retries actually taken (backoffs), `aborts` every
 * db::QueryAbort caught — including the final one that propagates.
 */
struct RetryStats
{
    std::uint64_t attempts = 0;
    std::uint64_t aborts = 0;

    /** Export <prefix>.{attempts,aborts}; this must outlive @p reg's use. */
    void registerStats(obs::Registry &reg,
                       const std::string &prefix = "harness.retry") const;
};

/**
 * Run @p fn, retrying on db::QueryAbort with exponential backoff. Each
 * retry's backoff is recorded on @p plan (when given), noted on @p log
 * (when given) and counted on @p stats (when given). The final attempt's
 * abort propagates — retries are bounded, so a persistent conflict still
 * surfaces.
 */
template <typename Fn>
auto
retryOnAbort(const RetryPolicy &policy, Fn &&fn,
             sim::FaultPlan *plan = nullptr, std::ostream *log = nullptr,
             RetryStats *stats = nullptr)
    -> decltype(fn())
{
    for (unsigned attempt = 0;; ++attempt) {
        try {
            return fn();
        } catch (const db::QueryAbort &qa) {
            if (stats)
                ++stats->aborts;
            if (attempt + 1 >= policy.maxAttempts)
                throw;
            const sim::Cycles backoff = backoffFor(policy, attempt);
            if (stats)
                ++stats->attempts;
            if (plan)
                plan->recordRetry(backoff);
            noteRetry(log, qa, attempt, backoff);
        }
    }
}

/**
 * Run @p body(argc, argv) under the common catch-and-report guard.
 * Returns the body's exit code, or kErrorExitCode after printing a
 * structured error JSON to stderr for sim::SimError (with its machine
 * dump), db::QueryAbort, or any std::exception.
 */
int guardedMain(const std::string &bench_name, int argc, char **argv,
                const std::function<int(int, char **)> &body);

} // namespace harness
} // namespace dss

#endif // DSS_HARNESS_GUARD_HH
