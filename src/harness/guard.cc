#include "harness/guard.hh"

#include <iostream>

#include "obs/json.hh"
#include "obs/registry.hh"
#include "sim/error.hh"

namespace dss {
namespace harness {

void
RetryStats::registerStats(obs::Registry &reg,
                          const std::string &prefix) const
{
    reg.addCounter(obs::metricName(prefix, "attempts"),
                   [this] { return attempts; });
    reg.addCounter(obs::metricName(prefix, "aborts"),
                   [this] { return aborts; });
}

sim::Cycles
backoffFor(const RetryPolicy &policy, unsigned attempt)
{
    sim::Cycles backoff = policy.baseBackoffCycles;
    for (unsigned i = 0; i < attempt && backoff < policy.maxBackoffCycles;
         ++i)
        backoff *= 2;
    return std::min(backoff, policy.maxBackoffCycles);
}

void
noteRetry(std::ostream *log, const db::QueryAbort &qa, unsigned attempt,
          sim::Cycles backoff)
{
    if (!log)
        return;
    *log << "query abort (" << qa.what() << "); retry " << (attempt + 1)
         << " after " << backoff << " simulated backoff cycles\n";
}

namespace {

const char *
abortReasonName(db::QueryAbort::Reason r)
{
    switch (r) {
      case db::QueryAbort::Reason::WriteConflict:
        return "write_conflict";
      case db::QueryAbort::Reason::ReadWriteConflict:
        return "read_write_conflict";
      case db::QueryAbort::Reason::Injected:
        return "injected";
    }
    return "?";
}

void
reportError(const std::string &bench, const char *kind, const char *what,
            const obs::Json *dump)
{
    obs::Json j = obs::Json::object();
    j["bench"] = bench;
    j["error"] = kind;
    j["what"] = what;
    if (dump)
        j["dump"] = *dump;
    j.dump(std::cerr, 2);
    std::cerr << '\n';
}

} // namespace

int
guardedMain(const std::string &bench_name, int argc, char **argv,
            const std::function<int(int, char **)> &body)
{
    try {
        return body(argc, argv);
    } catch (const sim::SimError &e) {
        reportError(bench_name, "sim_error", e.what(), &e.dump());
    } catch (const db::QueryAbort &e) {
        obs::Json dump = obs::Json::object();
        dump["reason"] = abortReasonName(e.reason);
        dump["xid"] = e.xid;
        dump["rel"] = e.rel;
        reportError(bench_name, "query_abort", e.what(), &dump);
    } catch (const std::exception &e) {
        reportError(bench_name, "exception", e.what(), nullptr);
    }
    return kErrorExitCode;
}

} // namespace harness
} // namespace dss
