#include "harness/options.hh"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "obs/stats_json.hh"
#include "sim/spec.hh"

namespace dss {
namespace harness {

namespace {

void
usage(std::ostream &os, const std::string &bench, unsigned flags)
{
    os << "usage: " << bench << " [options]\n";
    if (flags & BenchOptions::kEngine)
        os << "  --engine <name>  simulation engine: seq (default), par\n"
           << "  --threads <n>    par engine host threads (0 = one per "
              "simulated proc)\n"
           << "  --window <n>     par engine barrier window, in simulated "
              "cycles\n";
    if (flags & BenchOptions::kJson)
        os << "  --json <path>    write a machine-readable JSON report\n";
    if (flags & BenchOptions::kTrace)
        os << "  --trace <path>   write a Chrome trace-event timeline\n"
           << "                   (open in chrome://tracing or Perfetto)\n";
    if (flags & BenchOptions::kEpoch)
        os << "  --epoch <cycles> sample counters every N simulated "
              "cycles\n";
    if (flags & BenchOptions::kScale)
        os << "  --scale <name>   database population: paper (default), "
              "tiny\n";
    if (flags & BenchOptions::kCheck)
        os << "  --check          validate coherence invariants at every "
              "state\n"
           << "                   transition (SWMR, directory/cache "
              "agreement,\n"
           << "                   write-buffer FIFO, lock-table "
              "consistency)\n";
    if (flags & BenchOptions::kFault)
        os << "  --fault-rate <p> inject deterministic faults with "
              "per-opportunity\n"
           << "                   probability p in [0,1] (0 disables)\n"
           << "  --fault-seed <n> seed for the fault schedule "
              "(replayable across\n"
           << "                   engines and thread counts)\n";
    if (flags & BenchOptions::kPlacement)
        os << "  --placement <p>  NUMA page-placement policy: "
           << sim::PlacementSpec::help() << '\n'
           << "  --page-profile <path>\n"
           << "                   write the per-page access histogram "
              "consumed by\n"
           << "                   --placement profile:<path>\n";
    if (flags & BenchOptions::kStream)
        os << "  --stream <n>     query-stream scheduler: number of query\n"
              "                   instances in the arrival stream\n"
           << "  --stream-seed <s>\n"
              "                   seed for the arrival times, query mix "
              "and\n"
              "                   per-instance parameters\n"
           << "  --stream-policy <p>\n"
              "                   dispatch policy: fifo (default), "
              "shortest\n"
           << "  --trace-cache <on|off|N>\n"
              "                   reuse captured traces for repeated\n"
              "                   (query, params) instances (default on);\n"
              "                   N bounds the cache to N entries with\n"
              "                   LRU eviction\n";
    if (flags & BenchOptions::kResilience)
        os << "  --deadline <c>   per-query deadline in simulated cycles;\n"
              "                   later completions abort as timeouts\n"
           << "  --queue-cap <n>  bound the run queue to n waiting\n"
              "                   instances (0 allowed; default unbounded)\n"
           << "  --shed <p>       load-shedding policy for a full queue:\n"
              "                   newest (default), class, deadline\n"
           << "  --breaker <p>    per-class circuit breaker: shed a class\n"
              "                   whose recent timeout rate reaches p in\n"
              "                   (0,1]; half-opens after a cooldown\n";
    if (flags & BenchOptions::kMachine)
        os << "  --machine <m>    machine spec: a preset (paper1997 "
              "default,\n"
              "                   modern, scaled64), a JSON spec file, or\n"
              "                   'list' to print the presets\n";
    if (flags & BenchOptions::kVerify)
        os << "  --verify-procs <n>\n"
              "                   model processors in the exhaustive "
              "search\n"
              "                   (2-6; symmetry-reduced)\n"
           << "  --verify-lines <n>\n"
              "                   tracked shared coherent lines (1-6), "
              "plus\n"
              "                   one metalock word\n"
           << "  --verify-wb <n>  model write-buffer capacity (1-7)\n"
           << "  --verify-depth <n>\n"
              "                   BFS depth bound (default: exhaust the\n"
              "                   reachable state space)\n"
           << "  --verify-mutant <k|all>\n"
              "                   inject known protocol mutation k (1-4) "
              "and\n"
              "                   require the checker to catch it; 'all' "
              "runs\n"
              "                   every mutant in sequence\n";
    if (flags & BenchOptions::kMemprof)
        os << "  --memprof[=N]    line-level memory profiler: hot lines "
              "with\n"
           << "                   true/false-sharing splits, conflict "
              "sets and\n"
           << "                   structure symbols in the JSON report's\n"
           << "                   \"memprof\" block (top N entries, "
              "default 20)\n";
    os << "  --help           show this message\n";
}

} // namespace

BenchOptions
BenchOptions::parse(int argc, char **argv, const std::string &bench_name,
                    unsigned flags)
{
    BenchOptions opts;
    auto fail = [&]() -> void {
        usage(std::cerr, bench_name, flags);
        std::exit(2);
    };
    auto needValue = [&](int i) -> std::string {
        if (i + 1 >= argc) {
            std::cerr << bench_name << ": " << argv[i]
                      << " requires a value\n";
            std::exit(2);
        }
        return argv[i + 1];
    };
    auto positive = [&](int i, const char *what) -> std::uint64_t {
        const std::string v = needValue(i);
        char *end = nullptr;
        std::uint64_t n = std::strtoull(v.c_str(), &end, 10);
        if (!end || *end != '\0' || n == 0) {
            std::cerr << bench_name << ": " << what
                      << " needs a positive count, got '" << v << "'\n";
            std::exit(2);
        }
        return n;
    };
    auto supported = [&](const std::string &arg, unsigned flag) -> bool {
        if (flags & flag)
            return true;
        std::cerr << bench_name << ": option '" << arg
                  << "' is not supported by this bench\n";
        fail();
        return false;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(std::cout, bench_name, flags);
            std::exit(0);
        } else if (arg == "--engine" && supported(arg, kEngine)) {
            const std::string v = needValue(i++);
            auto kind = sim::parseEngineKind(v);
            if (!kind) {
                std::cerr << bench_name << ": unknown --engine '" << v
                          << "' (seq, par)\n";
                std::exit(2);
            }
            opts.engine.kind = *kind;
        } else if (arg == "--threads" && supported(arg, kEngine)) {
            const std::string v = needValue(i++);
            char *end = nullptr;
            std::uint64_t n = std::strtoull(v.c_str(), &end, 10);
            if (!end || *end != '\0' || n > 1024) {
                std::cerr << bench_name
                          << ": --threads needs a small count, got '" << v
                          << "'\n";
                std::exit(2);
            }
            opts.engine.threads = static_cast<unsigned>(n);
        } else if (arg == "--window" && supported(arg, kEngine)) {
            opts.engine.windowCycles = positive(i++, "--window");
        } else if (arg == "--json" && supported(arg, kJson)) {
            opts.jsonPath = needValue(i++);
        } else if (arg == "--trace" && supported(arg, kTrace)) {
            opts.tracePath = needValue(i++);
        } else if (arg == "--epoch" && supported(arg, kEpoch)) {
            opts.epochCycles = positive(i++, "--epoch");
        } else if (arg == "--scale" && supported(arg, kScale)) {
            opts.scale = needValue(i++);
            if (opts.scale != "paper" && opts.scale != "tiny") {
                std::cerr << bench_name << ": unknown --scale '"
                          << opts.scale << "' (paper, tiny)\n";
                std::exit(2);
            }
        } else if (arg == "--check" && supported(arg, kCheck)) {
            opts.check = true;
        } else if (arg == "--fault-seed" && supported(arg, kFault)) {
            const std::string v = needValue(i++);
            char *end = nullptr;
            std::uint64_t n = std::strtoull(v.c_str(), &end, 10);
            if (!end || *end != '\0' || v.empty()) {
                std::cerr << bench_name
                          << ": --fault-seed needs an integer, got '" << v
                          << "'\n";
                std::exit(2);
            }
            opts.faultSeed = n;
        } else if (arg == "--fault-rate" && supported(arg, kFault)) {
            const std::string v = needValue(i++);
            char *end = nullptr;
            double r = std::strtod(v.c_str(), &end);
            if (!end || *end != '\0' || v.empty() || r < 0.0 || r > 1.0) {
                std::cerr << bench_name
                          << ": --fault-rate needs a probability in "
                             "[0,1], got '"
                          << v << "'\n";
                std::exit(2);
            }
            opts.faultRate = r;
        } else if (arg == "--placement" && supported(arg, kPlacement)) {
            const std::string v = needValue(i++);
            auto spec = sim::PlacementSpec::parse(v);
            if (!spec) {
                std::cerr << bench_name << ": unknown --placement '" << v
                          << "' (" << sim::PlacementSpec::help() << ")\n";
                std::exit(2);
            }
            opts.placement = *spec;
        } else if (arg == "--page-profile" && supported(arg, kPlacement)) {
            opts.pageProfilePath = needValue(i++);
        } else if (arg == "--stream" && supported(arg, kStream)) {
            opts.streamInstances =
                static_cast<unsigned>(positive(i++, "--stream"));
        } else if (arg == "--stream-seed" && supported(arg, kStream)) {
            const std::string v = needValue(i++);
            char *end = nullptr;
            std::uint64_t n = std::strtoull(v.c_str(), &end, 10);
            if (!end || *end != '\0' || v.empty()) {
                std::cerr << bench_name
                          << ": --stream-seed needs an integer, got '" << v
                          << "'\n";
                std::exit(2);
            }
            opts.streamSeed = n;
        } else if (arg == "--stream-policy" && supported(arg, kStream)) {
            opts.streamPolicy = needValue(i++);
            if (opts.streamPolicy != "fifo" &&
                opts.streamPolicy != "shortest") {
                std::cerr << bench_name << ": unknown --stream-policy '"
                          << opts.streamPolicy << "' (fifo, shortest)\n";
                std::exit(2);
            }
        } else if (arg == "--trace-cache" && supported(arg, kStream)) {
            const std::string v = needValue(i++);
            if (v == "on" || v == "off") {
                opts.traceCache = (v == "on");
            } else {
                char *end = nullptr;
                std::uint64_t n = std::strtoull(v.c_str(), &end, 10);
                if (!end || *end != '\0' || v.empty() || n == 0) {
                    std::cerr << bench_name
                              << ": --trace-cache needs on|off or a "
                                 "positive entry bound, got '"
                              << v << "'\n";
                    std::exit(2);
                }
                opts.traceCache = true;
                opts.traceCacheCapacity = n;
            }
        } else if (arg == "--deadline" && supported(arg, kResilience)) {
            opts.deadlineCycles = positive(i++, "--deadline");
        } else if (arg == "--queue-cap" && supported(arg, kResilience)) {
            const std::string v = needValue(i++);
            char *end = nullptr;
            std::uint64_t n = std::strtoull(v.c_str(), &end, 10);
            if (!end || *end != '\0' || v.empty()) {
                std::cerr << bench_name
                          << ": --queue-cap needs a count (0 allowed), "
                             "got '"
                          << v << "'\n";
                std::exit(2);
            }
            opts.queueCapacity = n;
        } else if (arg == "--shed" && supported(arg, kResilience)) {
            opts.shedPolicy = needValue(i++);
            if (opts.shedPolicy != "newest" && opts.shedPolicy != "class" &&
                opts.shedPolicy != "deadline") {
                std::cerr << bench_name << ": unknown --shed '"
                          << opts.shedPolicy
                          << "' (newest, class, deadline)\n";
                std::exit(2);
            }
        } else if (arg == "--breaker" && supported(arg, kResilience)) {
            const std::string v = needValue(i++);
            char *end = nullptr;
            double r = std::strtod(v.c_str(), &end);
            if (!end || *end != '\0' || v.empty() || r <= 0.0 || r > 1.0) {
                std::cerr << bench_name
                          << ": --breaker needs a rate in (0,1], got '"
                          << v << "'\n";
                std::exit(2);
            }
            opts.breakerThreshold = r;
        } else if (arg == "--machine" && supported(arg, kMachine)) {
            opts.machine = needValue(i++);
            if (opts.machine == "list") {
                for (const std::string &n : sim::machinePresetNames())
                    std::cout << n << '\n';
                std::exit(0);
            }
        } else if (arg == "--verify-procs" && supported(arg, kVerify)) {
            opts.verifyProcs =
                static_cast<unsigned>(positive(i++, "--verify-procs"));
        } else if (arg == "--verify-lines" && supported(arg, kVerify)) {
            opts.verifyLines =
                static_cast<unsigned>(positive(i++, "--verify-lines"));
        } else if (arg == "--verify-wb" && supported(arg, kVerify)) {
            opts.verifyWb =
                static_cast<unsigned>(positive(i++, "--verify-wb"));
        } else if (arg == "--verify-depth" && supported(arg, kVerify)) {
            opts.verifyDepth =
                static_cast<unsigned>(positive(i++, "--verify-depth"));
        } else if (arg == "--verify-mutant" && supported(arg, kVerify)) {
            const std::string v = needValue(i++);
            if (v == "all") {
                opts.verifyMutant = -1;
            } else {
                char *end = nullptr;
                std::uint64_t n = std::strtoull(v.c_str(), &end, 10);
                if (!end || *end != '\0' || n == 0 || n > 4) {
                    std::cerr << bench_name
                              << ": --verify-mutant needs 1-4 or 'all', "
                                 "got '"
                              << v << "'\n";
                    std::exit(2);
                }
                opts.verifyMutant = static_cast<int>(n);
            }
        } else if (arg == "--memprof" && supported(arg, kMemprof)) {
            opts.memprof = true;
        } else if (arg.rfind("--memprof=", 0) == 0 &&
                   supported(arg, kMemprof)) {
            const std::string v = arg.substr(10);
            char *end = nullptr;
            std::uint64_t n = std::strtoull(v.c_str(), &end, 10);
            if (!end || *end != '\0' || v.empty() || n == 0 || n > 100000) {
                std::cerr << bench_name
                          << ": --memprof=N needs a positive count, got '"
                          << v << "'\n";
                std::exit(2);
            }
            opts.memprof = true;
            opts.memprofTopN = static_cast<unsigned>(n);
        } else {
            std::cerr << bench_name << ": unknown option '" << arg
                      << "'\n";
            fail();
        }
    }
    return opts;
}

tpcd::ScaleConfig
BenchOptions::scaleConfig() const
{
    return scale == "tiny" ? tpcd::ScaleConfig::tiny()
                           : tpcd::ScaleConfig::paperScale();
}

sim::FaultConfig
BenchOptions::faultConfig() const
{
    sim::FaultConfig fc;
    fc.seed = faultSeed;
    fc.rate = faultRate;
    return fc;
}

std::unique_ptr<sim::PlacementPolicy>
makePlacement(const BenchOptions &opts, const sim::MachineConfig &cfg,
              const sim::AddressSpace *space)
{
    const sim::PlacementPolicy::Geometry g{
        cfg.nprocs, cfg.pageBytes, sim::AddressSpace::kPrivateBase,
        sim::AddressSpace::kPrivateStride};
    std::vector<sim::PageAccessCounts> hist;
    if (opts.placement.kind == sim::PlacementKind::Profile) {
        std::ifstream is(opts.placement.arg);
        if (!is)
            throw std::runtime_error("--placement profile: cannot read " +
                                     opts.placement.arg);
        std::ostringstream text;
        text << is.rdbuf();
        hist = obs::PageProfile::parse(obs::Json::parse(text.str()),
                                       cfg.pageBytes);
    }
    return sim::PlacementPolicy::make(opts.placement, g, space, &hist);
}

ObsSession::ObsSession(std::string bench_name, BenchOptions opts)
    : bench_(std::move(bench_name)), opts_(std::move(opts)),
      runs_(obs::Json::array()), extra_(obs::Json::object())
{
    if (opts_.epochCycles > 0)
        sampler_ = std::make_unique<obs::Sampler>(opts_.epochCycles);
    if (!opts_.tracePath.empty())
        timeline_ = std::make_unique<obs::Timeline>();
    if (opts_.check)
        checker_ = std::make_unique<sim::InvariantChecker>();
    if (opts_.faultRate > 0.0)
        faults_ = std::make_unique<sim::FaultPlan>(opts_.faultConfig());
    if (!opts_.pageProfilePath.empty())
        pageProfile_ = std::make_unique<obs::PageProfile>();
}

void
ObsSession::wireMemprof(const sim::MachineConfig &cfg,
                        const db::Catalog *catalog)
{
    if (!opts_.memprof)
        return;
    obs::MemProfileConfig mc;
    mc.l2 = cfg.coherent();
    mc.nprocs = cfg.nprocs;
    mc.pageBytes = cfg.pageBytes;
    memProfile_ = std::make_unique<obs::MemProfile>(mc);
    symbols_ = obs::RegionMap();
    if (catalog)
        catalog->describeRegions(symbols_);
}

RunOptions
ObsSession::runOptions()
{
    RunOptions ro;
    ro.engine = opts_.engine;
    ro.sampler = sampler();
    ro.timeline = timeline();
    ro.registrySnapshot = registrySlot();
    ro.checker = checker_.get();
    ro.faults = faults_.get();
    ro.placement = placement_.get();
    ro.pageProfile = pageProfile_.get();
    ro.memProfile = memProfile_.get();
    ro.log = &std::cerr;
    ro.retryStats = &retryStats_;
    return ro;
}

obs::Json *
ObsSession::registrySlot()
{
    if (!wantJson())
        return nullptr;
    pendingRegistry_ = obs::Json();
    return &pendingRegistry_;
}

void
ObsSession::addRun(const std::string &label, const sim::SimStats &stats)
{
    if (!wantJson())
        return;
    obs::Json run = obs::Json::object();
    run["label"] = label;
    run["stats"] = obs::toJson(stats);
    if (!pendingRegistry_.isNull()) {
        run["counters"] = std::move(pendingRegistry_);
        pendingRegistry_ = obs::Json();
    }
    runs_.push(std::move(run));
}

bool
ObsSession::finish(const sim::MachineConfig &cfg, std::ostream &err)
{
    bool ok = true;
    if (wantJson()) {
        obs::Json doc = obs::Json::object();
        doc["bench"] = bench_;
        doc["scale"] = opts_.scale;
        doc["config"] = obs::toJson(cfg);
        doc["runs"] = std::move(runs_);
        if (extra_.size() > 0)
            for (const auto &[k, v] : extra_.members())
                doc[k] = v;
        if (sampler_)
            doc["epochs"] = sampler_->toJson();
        if (memProfile_) {
            doc["memprof"] = memProfile_->toJson(
                opts_.memprofTopN,
                symbols_.empty() ? nullptr : &symbols_);
        }
        if (checker_)
            doc["check"] = checker_->toJson();
        if (faults_)
            doc["fault"] = faults_->toJson();
        std::ofstream os(opts_.jsonPath);
        if (!os) {
            err << bench_ << ": cannot write " << opts_.jsonPath << '\n';
            ok = false;
        } else {
            doc.dump(os, 2);
            os << '\n';
            err << "wrote JSON report to " << opts_.jsonPath << '\n';
        }
    }
    if (checker_) {
        const std::uint64_t n = checker_->totalViolations();
        err << bench_ << ": invariant checker found " << n
            << " violation(s)\n";
        if (n > 0) {
            for (const sim::CheckViolation &v : checker_->violations())
                err << "  [" << invariantName(v.inv) << "] " << v.detail
                    << '\n';
            ok = false;
        }
    }
    if (faults_) {
        const sim::FaultPlan::Counters c = faults_->counters();
        err << bench_ << ": injected " << c.injected << " fault(s), "
            << c.aborts << " query abort(s), " << c.retries
            << " retry attempt(s)\n";
    }
    if (memProfile_) {
        err << bench_ << ": memory profiler tracked "
            << memProfile_->lines().size() << " cache line(s), "
            << symbols_.size() << " symbol region(s)\n";
    }
    if (pageProfile_) {
        std::ofstream os(opts_.pageProfilePath);
        if (!os) {
            err << bench_ << ": cannot write " << opts_.pageProfilePath
                << '\n';
            ok = false;
        } else {
            pageProfile_->toJson().dump(os, 2);
            os << '\n';
            err << "wrote page-access histogram ("
                << pageProfile_->pageCount() << " pages) to "
                << opts_.pageProfilePath << '\n';
        }
    }
    if (timeline_) {
        std::ofstream os(opts_.tracePath);
        if (!os) {
            err << bench_ << ": cannot write " << opts_.tracePath << '\n';
            ok = false;
        } else {
            timeline_->writeChromeJson(os);
            os << '\n';
            err << "wrote Chrome trace to " << opts_.tracePath
                << " (open in chrome://tracing or https://ui.perfetto.dev)"
                << '\n';
        }
    }
    return ok;
}

} // namespace harness
} // namespace dss
