/**
 * @file
 * Workload driver: builds the TPC-D database once and captures
 * per-processor reference traces for a query.
 *
 * The paper's setup (Section 4.3): each of the 4 processors runs one query
 * of the same type with different parameters chosen per the TPC-D
 * specification; statistics cover the complete execution of the queries.
 * Here every processor's query executes against the shared database
 * through its own TracedMemory, producing one TraceStream per processor
 * that the Machine then interleaves.
 */

#ifndef DSS_HARNESS_WORKLOAD_HH
#define DSS_HARNESS_WORKLOAD_HH

#include <functional>
#include <memory>
#include <vector>

#include "sim/trace.hh"
#include "tpcd/dbgen.hh"
#include "tpcd/queries.hh"

namespace dss {
namespace harness {

/** Traces for one multiprocessor query execution (one per processor). */
using TraceSet = std::vector<sim::TraceStream>;

/** Convenience view for Machine::run(). */
std::vector<const sim::TraceStream *> tracePtrs(const TraceSet &traces);

class Workload
{
  public:
    /**
     * Build and load the database (untraced).
     * @param nprocs Processors that will run queries (paper: 4).
     */
    Workload(const tpcd::ScaleConfig &scale, unsigned nprocs,
             std::uint64_t db_seed = 42);

    /**
     * Execute query @p q once per processor (distinct parameters drawn
     * from @p param_seed + processor id) and capture the traces.
     *
     * Each call uses fresh transaction ids; private heaps are rewound
     * afterwards so every query run reuses the same private addresses
     * (Postgres95 reuses its private storage the same way).
     */
    TraceSet trace(tpcd::QueryId q, std::uint64_t param_seed = 1);

    /**
     * Like trace(), with the lock-discipline ablation knob: when
     * @p relock_on_rescan is false, index scans keep their relation locks
     * across rescans instead of re-acquiring them (DESIGN.md §8.4).
     */
    TraceSet traceWithLockDiscipline(tpcd::QueryId q,
                                     std::uint64_t param_seed,
                                     bool relock_on_rescan);

    /**
     * Intra-query parallelism (the paper's future work): ONE Q6 instance
     * whose lineitem scan is partitioned into nprocs() contiguous block
     * ranges, one partition per processor. Each processor computes a
     * partial aggregate over its range.
     */
    TraceSet traceIntraQueryQ6(std::uint64_t param_seed = 1);

    /** Trace a single-processor run (examples, tests). */
    sim::TraceStream traceOne(tpcd::QueryId q, sim::ProcId proc,
                              std::uint64_t param_seed);

    /**
     * Transaction ids used by stream captures: instance on processor p
     * always runs as kStreamXidBase + p, so the xid-hash probe sequence
     * is a function of the processor slot, never of stream position.
     */
    static constexpr db::Xid kStreamXidBase = 0x5D00;

    /**
     * Capture one *stream instance*: query @p q with parameters from
     * @p param_seed, on processor slot @p proc. Unlike trace()/traceOne(),
     * the capture is a pure function of (q, param_seed, proc) — the same
     * arguments always produce a byte-identical stream, no matter what
     * ran before:
     *
     *  - the transaction id is canonical (kStreamXidBase + proc), not a
     *    live counter;
     *  - the lock hash is pre-warmed once (primeStreamMetadata) so no
     *    capture ever sees a first-touch insert another didn't;
     *  - the xid-hash entries the instance leaves behind are swept
     *    untraced afterwards, so probe chains never grow with history.
     *
     * This purity is what makes the sched::TraceCache sound: a cached
     * stream replays bit-identically to a fresh capture.
     */
    sim::TraceStream streamTrace(tpcd::QueryId q, std::uint64_t param_seed,
                                 sim::ProcId proc);

    /**
     * Pre-warm the lock manager's metadata for stream captures: insert
     * every catalog relation into the lock hash (untraced) so the first
     * instance to lock a relation probes exactly like every later one.
     * Idempotent; streamTrace calls it lazily. Note that priming mutates
     * shared DB state: legacy trace() captures taken *after* priming see
     * a warm lock hash (one fewer store per first-touched relation), so
     * golden-pinned workloads should not mix the two capture paths.
     */
    void primeStreamMetadata();

    /** Builds the plan processor @p proc should run. */
    using PlanBuilder =
        std::function<db::NodePtr(tpcd::TpcdDb &, sim::ProcId proc)>;

    /** Trace caller-supplied plans, one per processor (custom queries,
     * nested-query variants, ...). */
    TraceSet traceCustom(const PlanBuilder &builder);

    /**
     * Run a query without tracing and return its result rows (correctness
     * checks and examples).
     */
    std::vector<std::vector<db::Datum>> execute(tpcd::QueryId q,
                                                std::uint64_t param_seed);

    tpcd::TpcdDb &db() { return *db_; }
    unsigned nprocs() const { return nprocs_; }

  private:
    unsigned nprocs_;
    std::unique_ptr<tpcd::TpcdDb> db_;
    db::Xid nextXid_ = 100;
    bool streamPrimed_ = false;
};

} // namespace harness
} // namespace dss

#endif // DSS_HARNESS_WORKLOAD_HH
