/**
 * @file
 * Shared command-line flag layer and JSON/trace output session for the
 * bench/ binaries.
 *
 * Every figure binary accepts the same flags (each binary declares which
 * subset it implements; anything else — including misspellings — is a
 * hard error, never silently ignored):
 *
 *   --engine <seq|par> simulation engine (see sim/engine.hh)
 *   --threads <n>     par engine: host worker threads (0 = one per proc)
 *   --window <cycles> par engine: barrier window length
 *   --json <path>    write a machine-readable report of the run
 *   --trace <path>   write a Chrome trace-event timeline (chrome://tracing)
 *   --epoch <cycles> sample per-processor counters every N simulated
 *                    cycles into the JSON report's "epochs" series
 *   --scale <name>   database population: "paper" (default) or "tiny"
 *   --check          run the coherence invariant checker (sim/check.hh)
 *   --fault-seed <n> / --fault-rate <p>
 *                    deterministic fault injection (sim/fault.hh)
 *   --placement <name>[:arg]
 *                    NUMA page-placement policy (sim/placement.hh):
 *                    interleave (default), first-touch,
 *                    class-affinity[:node], profile:<histogram.json>
 *   --page-profile <path>
 *                    write the per-page access histogram consumed by
 *                    --placement=profile (obs/pageprof.hh)
 *   --stream <n> / --stream-seed <s> / --stream-policy <fifo|shortest>
 *                  / --trace-cache <on|off|N>
 *                    query-stream scheduler knobs (src/sched/), accepted
 *                    only by stream-aware benches (the kStream flag bit,
 *                    deliberately outside kAll); --trace-cache N bounds
 *                    the cache to N entries with LRU eviction
 *   --machine <preset|file.json>
 *                    machine specification (sim/spec.hh): paper1997
 *                    (default), modern, scaled64, or a JSON spec file;
 *                    "--machine list" prints the presets (the kMachine
 *                    bit — every bench built on harness::benchMain
 *                    accepts it)
 *   --deadline <c> / --queue-cap <n> / --shed <newest|class|deadline>
 *                  / --breaker <p>
 *                    stream resilience knobs (src/sched/resilience.hh):
 *                    per-query deadline in cycles, bounded run queue with
 *                    a load-shedding policy, and a per-class circuit
 *                    breaker timeout-rate threshold (the kResilience bit)
 *
 * ObsSession owns the wiring: it hands out the sampler/timeline pointers
 * to pass to the runner, collects per-run stats and registry snapshots,
 * and writes the output files on finish().
 */

#ifndef DSS_HARNESS_OPTIONS_HH
#define DSS_HARNESS_OPTIONS_HH

#include <memory>
#include <string>

#include "harness/runner.hh"
#include "obs/json.hh"
#include "obs/memprof.hh"
#include "obs/pageprof.hh"
#include "obs/sampler.hh"
#include "obs/timeline.hh"
#include "sim/check.hh"
#include "sim/fault.hh"
#include "sim/machine.hh"
#include "sim/placement.hh"
#include "tpcd/dbgen.hh"

namespace dss {
namespace harness {

struct BenchOptions
{
    /** Which shared flags a binary implements (parse() mask). */
    enum Flags : unsigned {
        kEngine = 1u << 0, ///< --engine / --threads / --window
        kJson = 1u << 1,
        kTrace = 1u << 2,
        kEpoch = 1u << 3,
        kScale = 1u << 4,
        kCheck = 1u << 5, ///< --check
        kFault = 1u << 6, ///< --fault-seed / --fault-rate
        kPlacement = 1u << 7, ///< --placement / --page-profile
        kMemprof = 1u << 8, ///< --memprof[=topN]
        kAll = kEngine | kJson | kTrace | kEpoch | kScale | kCheck |
               kFault | kPlacement | kMemprof,
        /**
         * --stream / --stream-seed / --stream-policy / --trace-cache.
         * NOT part of kAll: only stream-aware benches opt in (pass
         * kAll | kStream), so the 20 single-shot binaries keep rejecting
         * the stream flags exactly as before.
         */
        kStream = 1u << 9,
        /**
         * --deadline / --queue-cap / --shed / --breaker. Like kStream,
         * outside kAll: only resilience-aware stream benches opt in.
         */
        kResilience = 1u << 10,
        /**
         * --machine. Outside kAll so direct parse() callers are
         * unaffected; harness::benchMain ORs it in, which is how all
         * bench binaries pick the flag up in one place.
         */
        kMachine = 1u << 11,
        /**
         * --verify-procs / --verify-lines / --verify-wb / --verify-depth
         * / --verify-mutant. Outside kAll: only the protocol model
         * checker bench (bench/verify_protocol.cc) opts in.
         */
        kVerify = 1u << 12,
    };

    sim::EngineConfig engine;    ///< --engine / --threads / --window
    std::string jsonPath;        ///< --json; empty = no JSON output
    std::string tracePath;       ///< --trace; empty = no timeline output
    sim::Cycles epochCycles = 0; ///< --epoch; 0 = no time-series sampling
    std::string scale = "paper"; ///< --scale
    bool check = false;          ///< --check
    std::uint64_t faultSeed = 0; ///< --fault-seed
    double faultRate = 0.0;      ///< --fault-rate; 0 = no injection
    /** --placement, already validated by parse(). */
    sim::PlacementSpec placement;
    std::string pageProfilePath; ///< --page-profile; empty = no histogram
    bool memprof = false;        ///< --memprof: line-level memory profiler
    unsigned memprofTopN = 20;   ///< --memprof=<topN>: hot-line list size
    unsigned streamInstances = 0; ///< --stream; 0 = the bench's default
    std::uint64_t streamSeed = 42; ///< --stream-seed
    std::string streamPolicy = "fifo"; ///< --stream-policy: fifo, shortest
    bool traceCache = true;      ///< --trace-cache on|off|N
    /** --trace-cache N: max cached keys; 0 = unbounded. */
    std::uint64_t traceCacheCapacity = 0;
    sim::Cycles deadlineCycles = 0; ///< --deadline; 0 = no deadlines
    /** --queue-cap; ~0 = unbounded run queue. */
    std::uint64_t queueCapacity = ~std::uint64_t{0};
    std::string shedPolicy = "newest"; ///< --shed: newest, class, deadline
    double breakerThreshold = 0.0; ///< --breaker; 0 = breaker off
    /** --machine: preset name or JSON spec path (sim::loadSpec). */
    std::string machine = "paper1997";
    unsigned verifyProcs = 2; ///< --verify-procs: model processors
    unsigned verifyLines = 2; ///< --verify-lines: tracked data lines
    unsigned verifyWb = 1;    ///< --verify-wb: model write-buffer slots
    /** --verify-depth: BFS depth bound; 0 = exhaust the state space. */
    unsigned verifyDepth = 0;
    /** --verify-mutant: 0 = clean run, 1..4 = inject that known protocol
     * mutation (verify::Mutant), -1 = run every mutant in sequence. */
    int verifyMutant = 0;

    /**
     * Parse the shared flags. Prints usage and exits(0) on --help; prints
     * an error plus usage and exits(2) on unknown flags, flags outside
     * @p flags, or malformed values. Nothing is ever silently accepted.
     */
    static BenchOptions parse(int argc, char **argv,
                              const std::string &bench_name,
                              unsigned flags = kAll);

    /** The TPC-D population selected by --scale. */
    tpcd::ScaleConfig scaleConfig() const;

    /** The fault configuration selected by --fault-seed/--fault-rate. */
    sim::FaultConfig faultConfig() const;
};

/**
 * Build the --placement policy for machine @p cfg. class-affinity needs
 * @p space (the workload's address space); profile loads its histogram
 * from the spec's path. Throws std::runtime_error on unreadable or
 * mismatched histograms — guardedMain turns that into a clean exit 3.
 */
std::unique_ptr<sim::PlacementPolicy>
makePlacement(const BenchOptions &opts, const sim::MachineConfig &cfg,
              const sim::AddressSpace *space);

/** Observability output for one bench invocation. */
class ObsSession
{
  public:
    ObsSession(std::string bench_name, BenchOptions opts);

    /** Sampler to pass to the runner; null unless --epoch was given. */
    obs::Sampler *sampler() { return sampler_.get(); }

    /** Timeline to pass to the runner; null unless --trace was given. */
    obs::Timeline *timeline() { return timeline_.get(); }

    /** Invariant checker; null unless --check was given. */
    sim::InvariantChecker *checker() { return checker_.get(); }

    /** Fault plan; null unless --fault-rate was nonzero. */
    sim::FaultPlan *faults() { return faults_.get(); }

    /** Page-access histogram; null unless --page-profile was given. */
    obs::PageProfile *pageProfile() { return pageProfile_.get(); }

    /** Line-level memory profiler; null unless wireMemprof() armed it. */
    obs::MemProfile *memProfile() { return memProfile_.get(); }

    /** Retry/abort accounting shared by every runOptions() of this
     * session; snapshotted as harness.retry.{attempts,aborts}. */
    RetryStats &retryStats() { return retryStats_; }

    /**
     * Arm the --memprof profiler for machine geometry @p cfg and,
     * when @p catalog is given, load the structure symbol map from it.
     * No-op unless --memprof was passed, so benches can call this
     * unconditionally once the machine config and database exist (and
     * before the first runOptions()). The report lands in the JSON
     * document's "memprof" block on finish().
     */
    void wireMemprof(const sim::MachineConfig &cfg,
                     const db::Catalog *catalog = nullptr);

    /** The profiler's symbol map (filled by wireMemprof). */
    obs::RegionMap &symbols() { return symbols_; }

    /**
     * Adopt the --placement policy (normally makePlacement()'s result)
     * and wire it into every subsequent runOptions(). Benches whose
     * machine geometry varies per sweep point instead build a policy per
     * configuration and set RunOptions::placement themselves.
     */
    void usePlacement(std::unique_ptr<sim::PlacementPolicy> p)
    {
        placement_ = std::move(p);
    }

    /** The adopted policy; null until usePlacement(). */
    sim::PlacementPolicy *placement() { return placement_.get(); }

    /**
     * Everything wired up for one runCold/runSequence call: engine,
     * sampler, timeline, a fresh registry slot (when --json), the
     * checker and fault plan, and retry notes on stderr.
     */
    RunOptions runOptions();

    /**
     * Destination for a runner registry snapshot of the next addRun();
     * null unless --json was given (snapshots are only kept for JSON).
     */
    obs::Json *registrySlot();

    /**
     * Record one simulated run under @p label. Appends the full
     * toJson(stats) plus any registry snapshot captured since the last
     * addRun() to the report's "runs" array.
     */
    void addRun(const std::string &label, const sim::SimStats &stats);

    /** Free-form extra payload ("figure" data) merged into the report. */
    obs::Json &extra() { return extra_; }

    bool wantJson() const { return !opts_.jsonPath.empty(); }

    /**
     * Write the requested output files (JSON report and/or Chrome trace)
     * and note them on @p err, including a --check/--fault summary when
     * active. No-op for files that were not requested.
     * @return false if any file could not be written, or if the
     *         invariant checker detected violations.
     */
    bool finish(const sim::MachineConfig &cfg, std::ostream &err);

  private:
    std::string bench_;
    BenchOptions opts_;
    std::unique_ptr<obs::Sampler> sampler_;
    std::unique_ptr<obs::Timeline> timeline_;
    std::unique_ptr<sim::InvariantChecker> checker_;
    std::unique_ptr<sim::FaultPlan> faults_;
    std::unique_ptr<obs::PageProfile> pageProfile_;
    std::unique_ptr<obs::MemProfile> memProfile_;
    obs::RegionMap symbols_;
    RetryStats retryStats_;
    std::unique_ptr<sim::PlacementPolicy> placement_;
    obs::Json pendingRegistry_;
    obs::Json runs_;
    obs::Json extra_;
};

} // namespace harness
} // namespace dss

#endif // DSS_HARNESS_OPTIONS_HH
