/**
 * @file
 * The shared entry point of the bench/ binaries.
 *
 * Every figure binary used to repeat the same preamble: parse the shared
 * flags, build an ObsSession, run the body under guardedMain's
 * catch-and-report guard. benchMain() lifts that into one place — which
 * is also where `--machine` resolves: the selected MachineSpec is loaded
 * and validated before the body runs, so every bench gains machine
 * selection without touching its own code.
 *
 *     int main(int argc, char **argv)
 *     {
 *         return harness::benchMain(
 *             "fig6_time_breakdown", argc, argv,
 *             harness::BenchOptions::kAll,
 *             [](harness::BenchContext &ctx) {
 *                 const sim::MachineConfig &cfg = ctx.config();
 *                 ...
 *                 return ctx.session.finish(cfg, std::cerr) ? 0 : 1;
 *             });
 *     }
 *
 * Benches that sweep machine geometry derive their sweep points from
 * ctx.config() (withLineSize, withCacheSizes, ...), so `--machine`
 * composes with the sweeps instead of fighting them.
 */

#ifndef DSS_HARNESS_BENCH_MAIN_HH
#define DSS_HARNESS_BENCH_MAIN_HH

#include <functional>
#include <string>

#include "harness/options.hh"
#include "sim/spec.hh"

namespace dss {
namespace harness {

/** Everything the shared preamble sets up for a bench body. */
struct BenchContext
{
    BenchOptions opts;
    sim::MachineSpec spec; ///< resolved --machine (default paper1997)
    ObsSession session;

    /** The machine the bench should simulate (or derive sweeps from). */
    const sim::MachineConfig &config() const { return spec.config; }
};

/**
 * Parse flags (@p flags | kMachine), resolve --machine into a validated
 * MachineSpec, open an ObsSession, and run @p body under guardedMain.
 * Returns the process exit code: the body's return value, 2 for bad
 * flags, 3 (kErrorExitCode) for SimError/QueryAbort/exceptions — exactly
 * the codes the binaries have always used.
 */
int benchMain(const std::string &bench_name, int argc, char **argv,
              unsigned flags, const std::function<int(BenchContext &)> &body);

} // namespace harness
} // namespace dss

#endif // DSS_HARNESS_BENCH_MAIN_HH
