/**
 * @file
 * Experiment runner: simulate trace sets on Machine configurations, cold
 * or warm (the warm-start chaining of the paper's Figure 12).
 */

#ifndef DSS_HARNESS_RUNNER_HH
#define DSS_HARNESS_RUNNER_HH

#include <vector>

#include "harness/workload.hh"
#include "sim/machine.hh"

namespace dss {
namespace harness {

/** Simulate @p traces on a fresh machine with @p cfg (cold caches). */
sim::SimStats runCold(const sim::MachineConfig &cfg, const TraceSet &traces);

/**
 * Simulate a sequence of trace sets on one machine without flushing caches
 * between them (Fig 12: "caches warmed up with another execution").
 * @return per-run statistics, in order.
 */
std::vector<sim::SimStats>
runSequence(const sim::MachineConfig &cfg,
            const std::vector<const TraceSet *> &sequence);

} // namespace harness
} // namespace dss

#endif // DSS_HARNESS_RUNNER_HH
