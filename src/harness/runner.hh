/**
 * @file
 * Experiment runner: simulate trace sets on Machine configurations, cold
 * or warm (the warm-start chaining of the paper's Figure 12), optionally
 * observed by the obs layer (epoch sampler, Chrome-trace timeline, and a
 * counter-registry snapshot).
 */

#ifndef DSS_HARNESS_RUNNER_HH
#define DSS_HARNESS_RUNNER_HH

#include <iosfwd>
#include <vector>

#include "harness/guard.hh"
#include "harness/workload.hh"
#include "sim/machine.hh"

namespace dss {
namespace obs {
class Json;
class MemProfile;
class PageProfile;
class Sampler;
class Timeline;
} // namespace obs

namespace sim {
class FaultPlan;
class InvariantChecker;
class PlacementPolicy;
} // namespace sim

namespace harness {

/**
 * Everything a run can be wired up with, in one bundle: engine choice,
 * observers (sampler / timeline / registry snapshot), robustness hooks
 * (invariant checker, fault plan, retry policy for injected query
 * aborts) and a stream for retry notes. All pointers are optional and
 * borrowed.
 */
struct RunOptions
{
    sim::EngineConfig engine;
    obs::Sampler *sampler = nullptr;
    obs::Timeline *timeline = nullptr;
    obs::Json *registrySnapshot = nullptr;
    sim::InvariantChecker *checker = nullptr;
    sim::FaultPlan *faults = nullptr;
    /** Page-placement policy (sim/placement.hh); null = the machine's
     * default interleave. Mutable: first-touch resolves per run. */
    sim::PlacementPolicy *placement = nullptr;
    /** Per-page access histogram collector (--page-profile). */
    obs::PageProfile *pageProfile = nullptr;
    /** Line-level memory profiler (--memprof). Feeding it also enables
     * the machine's word-granular sharing tracker, so the registry's
     * per-proc miss.cohe.{true,false} counters come alive. */
    obs::MemProfile *memProfile = nullptr;
    RetryPolicy retry;
    std::ostream *log = nullptr; ///< retry/abort notes; null = quiet
    /** Retry/abort accounting; registered into the snapshot registry as
     * harness.retry.{attempts,aborts} when given. */
    RetryStats *retryStats = nullptr;
};

/** Simulate @p traces on a fresh machine, fully wired via @p opts.
 * FaultPlan-scheduled query aborts are retried with bounded backoff. */
sim::SimStats runCold(const sim::MachineConfig &cfg, const TraceSet &traces,
                      const RunOptions &opts);

/**
 * One guarded run on a caller-owned machine: reset the per-run lifetime
 * stats, feed the page/memory profilers, schedule and retry
 * FaultPlan-injected aborts, and replay @p traces with opts.engine. This
 * is the primitive runCold/runSequence chain per trace set — exposed so
 * the stream scheduler (src/sched/) can drive many back-to-back query
 * instances on one warm machine it wires up itself (setChecker,
 * setFaultPlan, setPlacement are the caller's responsibility; they are
 * per-machine, not per-run).
 */
sim::SimStats runOnMachine(sim::Machine &machine,
                           const std::vector<const sim::TraceStream *> &traces,
                           const RunOptions &opts);

/** Warm-chained sequence (Fig 12), fully wired via @p opts. */
std::vector<sim::SimStats>
runSequence(const sim::MachineConfig &cfg,
            const std::vector<const TraceSet *> &sequence,
            const RunOptions &opts);

/**
 * Simulate @p traces on a fresh machine with @p cfg (cold caches).
 *
 * @param sampler  Optional epoch sampler receiving counter deltas.
 * @param timeline Optional timeline receiving busy/stall/lock spans.
 * @param registry_snapshot When non-null, the machine's full counter
 *        registry (per-proc stats, cache/write-buffer/directory/lock
 *        counters) is snapshotted into this JSON object after the run.
 */
sim::SimStats runCold(const sim::MachineConfig &cfg, const TraceSet &traces,
                      obs::Sampler *sampler = nullptr,
                      obs::Timeline *timeline = nullptr,
                      obs::Json *registry_snapshot = nullptr);

/** Same, replayed by an explicit engine (BenchOptions' --engine flag). */
sim::SimStats runCold(const sim::MachineConfig &cfg, const TraceSet &traces,
                      const sim::EngineConfig &engine,
                      obs::Sampler *sampler = nullptr,
                      obs::Timeline *timeline = nullptr,
                      obs::Json *registry_snapshot = nullptr);

/**
 * Simulate a sequence of trace sets on one machine without flushing caches
 * between them (Fig 12: "caches warmed up with another execution"). The
 * sampler and timeline, when given, observe every run of the chain: epoch
 * samples carry their run index, and timeline runs are laid out
 * back-to-back on the trace time axis.
 *
 * @return per-run statistics, in order.
 */
std::vector<sim::SimStats>
runSequence(const sim::MachineConfig &cfg,
            const std::vector<const TraceSet *> &sequence,
            obs::Sampler *sampler = nullptr,
            obs::Timeline *timeline = nullptr,
            obs::Json *registry_snapshot = nullptr);

/** Same, replayed by an explicit engine (BenchOptions' --engine flag). */
std::vector<sim::SimStats>
runSequence(const sim::MachineConfig &cfg,
            const std::vector<const TraceSet *> &sequence,
            const sim::EngineConfig &engine,
            obs::Sampler *sampler = nullptr,
            obs::Timeline *timeline = nullptr,
            obs::Json *registry_snapshot = nullptr);

} // namespace harness
} // namespace dss

#endif // DSS_HARNESS_RUNNER_HH
