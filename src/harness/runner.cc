#include "harness/runner.hh"

#include "obs/registry.hh"

namespace dss {
namespace harness {

namespace {

void
snapshotRegistry(const sim::Machine &machine, obs::Json *out)
{
    if (!out)
        return;
    obs::Registry reg;
    machine.registerStats(reg);
    *out = reg.toJson();
}

} // namespace

sim::SimStats
runCold(const sim::MachineConfig &cfg, const TraceSet &traces,
        obs::Sampler *sampler, obs::Timeline *timeline,
        obs::Json *registry_snapshot)
{
    return runCold(cfg, traces, sim::EngineConfig::seq(), sampler,
                   timeline, registry_snapshot);
}

sim::SimStats
runCold(const sim::MachineConfig &cfg, const TraceSet &traces,
        const sim::EngineConfig &engine, obs::Sampler *sampler,
        obs::Timeline *timeline, obs::Json *registry_snapshot)
{
    sim::Machine machine(cfg);
    sim::SimStats stats =
        machine.run(tracePtrs(traces), engine, sampler, timeline);
    snapshotRegistry(machine, registry_snapshot);
    return stats;
}

std::vector<sim::SimStats>
runSequence(const sim::MachineConfig &cfg,
            const std::vector<const TraceSet *> &sequence,
            obs::Sampler *sampler, obs::Timeline *timeline,
            obs::Json *registry_snapshot)
{
    return runSequence(cfg, sequence, sim::EngineConfig::seq(), sampler,
                       timeline, registry_snapshot);
}

std::vector<sim::SimStats>
runSequence(const sim::MachineConfig &cfg,
            const std::vector<const TraceSet *> &sequence,
            const sim::EngineConfig &engine, obs::Sampler *sampler,
            obs::Timeline *timeline, obs::Json *registry_snapshot)
{
    sim::Machine machine(cfg);
    std::vector<sim::SimStats> out;
    out.reserve(sequence.size());
    for (const TraceSet *traces : sequence)
        out.push_back(
            machine.run(tracePtrs(*traces), engine, sampler, timeline));
    snapshotRegistry(machine, registry_snapshot);
    return out;
}

} // namespace harness
} // namespace dss
