#include "harness/runner.hh"

#include "obs/memprof.hh"
#include "obs/pageprof.hh"
#include "obs/registry.hh"
#include "sim/check.hh"
#include "sim/fault.hh"
#include "sim/placement.hh"

namespace dss {
namespace harness {

namespace {

void
snapshotRegistry(const sim::Machine &machine, const RunOptions &opts)
{
    if (!opts.registrySnapshot)
        return;
    obs::Registry reg;
    machine.registerStats(reg);
    if (opts.checker)
        opts.checker->registerStats(reg, "check");
    if (opts.faults)
        opts.faults->registerStats(reg, "fault");
    if (opts.retryStats)
        opts.retryStats->registerStats(reg, "harness.retry");
    *opts.registrySnapshot = reg.toJson();
}

} // namespace

/**
 * One machine run under the retry guard: a FaultPlan may schedule a
 * number of query aborts for this run; each one unwinds as a
 * db::QueryAbort before the simulation starts and is retried with
 * backoff, so the run always eventually completes (the plan schedules
 * strictly fewer aborts than RetryPolicy::maxAttempts allows).
 */
sim::SimStats
runOnMachine(sim::Machine &machine,
             const std::vector<const sim::TraceStream *> &traces,
             const RunOptions &opts)
{
    machine.resetStats(); // per-run home counters (Fig 12 repetitions)
    if (opts.pageProfile)
        opts.pageProfile->addTraces(traces);
    if (opts.memProfile)
        opts.memProfile->addTraces(traces);
    if (opts.faults)
        opts.faults->scheduleQuery();
    return retryOnAbort(
        opts.retry,
        [&]() -> sim::SimStats {
            if (opts.faults && opts.faults->abortScheduled())
                throw db::QueryAbort(db::QueryAbort::Reason::Injected, 0,
                                     -1, "injected fault: query abort");
            return machine.run(traces, opts.engine, opts.sampler,
                               opts.timeline);
        },
        opts.faults, opts.log, opts.retryStats);
}

sim::SimStats
runCold(const sim::MachineConfig &cfg, const TraceSet &traces,
        const RunOptions &opts)
{
    sim::Machine machine(cfg);
    machine.setChecker(opts.checker);
    machine.setFaultPlan(opts.faults);
    machine.setPlacement(opts.placement);
    if (opts.memProfile)
        machine.enableSharing(true);
    sim::SimStats stats = runOnMachine(machine, tracePtrs(traces), opts);
    snapshotRegistry(machine, opts);
    return stats;
}

std::vector<sim::SimStats>
runSequence(const sim::MachineConfig &cfg,
            const std::vector<const TraceSet *> &sequence,
            const RunOptions &opts)
{
    sim::Machine machine(cfg);
    machine.setChecker(opts.checker);
    machine.setFaultPlan(opts.faults);
    machine.setPlacement(opts.placement);
    if (opts.memProfile)
        machine.enableSharing(true);
    std::vector<sim::SimStats> out;
    out.reserve(sequence.size());
    for (const TraceSet *traces : sequence)
        out.push_back(runOnMachine(machine, tracePtrs(*traces), opts));
    snapshotRegistry(machine, opts);
    return out;
}

sim::SimStats
runCold(const sim::MachineConfig &cfg, const TraceSet &traces,
        obs::Sampler *sampler, obs::Timeline *timeline,
        obs::Json *registry_snapshot)
{
    return runCold(cfg, traces, sim::EngineConfig::seq(), sampler,
                   timeline, registry_snapshot);
}

sim::SimStats
runCold(const sim::MachineConfig &cfg, const TraceSet &traces,
        const sim::EngineConfig &engine, obs::Sampler *sampler,
        obs::Timeline *timeline, obs::Json *registry_snapshot)
{
    RunOptions opts;
    opts.engine = engine;
    opts.sampler = sampler;
    opts.timeline = timeline;
    opts.registrySnapshot = registry_snapshot;
    return runCold(cfg, traces, opts);
}

std::vector<sim::SimStats>
runSequence(const sim::MachineConfig &cfg,
            const std::vector<const TraceSet *> &sequence,
            obs::Sampler *sampler, obs::Timeline *timeline,
            obs::Json *registry_snapshot)
{
    return runSequence(cfg, sequence, sim::EngineConfig::seq(), sampler,
                       timeline, registry_snapshot);
}

std::vector<sim::SimStats>
runSequence(const sim::MachineConfig &cfg,
            const std::vector<const TraceSet *> &sequence,
            const sim::EngineConfig &engine, obs::Sampler *sampler,
            obs::Timeline *timeline, obs::Json *registry_snapshot)
{
    RunOptions opts;
    opts.engine = engine;
    opts.sampler = sampler;
    opts.timeline = timeline;
    opts.registrySnapshot = registry_snapshot;
    return runSequence(cfg, sequence, opts);
}

} // namespace harness
} // namespace dss
