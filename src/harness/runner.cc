#include "harness/runner.hh"

namespace dss {
namespace harness {

sim::SimStats
runCold(const sim::MachineConfig &cfg, const TraceSet &traces)
{
    sim::Machine machine(cfg);
    return machine.run(tracePtrs(traces));
}

std::vector<sim::SimStats>
runSequence(const sim::MachineConfig &cfg,
            const std::vector<const TraceSet *> &sequence)
{
    sim::Machine machine(cfg);
    std::vector<sim::SimStats> out;
    out.reserve(sequence.size());
    for (const TraceSet *traces : sequence)
        out.push_back(machine.run(tracePtrs(*traces)));
    return out;
}

} // namespace harness
} // namespace dss
