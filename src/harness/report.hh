/**
 * @file
 * Text reporting helpers used by the benchmark binaries to print the
 * paper's tables and figures as aligned text tables.
 */

#ifndef DSS_HARNESS_REPORT_HH
#define DSS_HARNESS_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace dss {
namespace harness {

/** Simple aligned text table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    TextTable &addRow(std::vector<std::string> cells);
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Fixed-point formatting. */
std::string fixed(double v, int precision = 1);

/** Percentage of @p part in @p whole ("34.5"). */
std::string pct(double part, double whole, int precision = 1);

/** Execution-time breakdown of Figure 6a (fractions of total). */
struct TimeBreakdown
{
    sim::Cycles total = 0;
    double busy = 0, mem = 0, msync = 0;
};

TimeBreakdown timeBreakdown(const sim::SimStats &stats);

/** Mem-stall decomposition of Figure 6b (fractions of Mem). */
struct MemBreakdown
{
    sim::Cycles totalMem = 0;
    double byGroup[sim::kNumClassGroups] = {};
};

MemBreakdown memBreakdown(const sim::SimStats &stats);

/**
 * Print a Figure 7-style miss table: one row per data class with
 * Cold/Conf/Cohe columns, normalized so all cells sum to 100.
 */
void printMissTable(std::ostream &os, const std::string &title,
                    const sim::MissTable &t);

} // namespace harness
} // namespace dss

#endif // DSS_HARNESS_REPORT_HH
