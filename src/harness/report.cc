#include "harness/report.hh"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace dss {
namespace harness {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{}

TextTable &
TextTable::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
    return *this;
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto line = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "" : "  ") << std::left
               << std::setw(static_cast<int>(width[c])) << cells[c];
        }
        os << '\n';
    };
    line(headers_);
    std::string rule;
    for (std::size_t c = 0; c < headers_.size(); ++c)
        rule += std::string(width[c], '-') + (c + 1 < headers_.size() ? "  "
                                                                      : "");
    os << rule << '\n';
    for (const auto &row : rows_)
        line(row);
}

std::string
fixed(double v, int precision)
{
    // A nan/inf that reaches a report cell would print as "nan"/"inf" and
    // poison downstream parsing; render it as "n/a" instead.
    if (!std::isfinite(v))
        return "n/a";
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

std::string
pct(double part, double whole, int precision)
{
    const double ratio = 100.0 * part / whole;
    if (whole <= 0 || !std::isfinite(ratio))
        return fixed(0.0, precision);
    return fixed(ratio, precision);
}

TimeBreakdown
timeBreakdown(const sim::SimStats &stats)
{
    sim::ProcStats agg = stats.aggregate();
    TimeBreakdown out;
    out.total = agg.totalCycles();
    if (out.total == 0)
        return out;
    out.busy = static_cast<double>(agg.busy) / out.total;
    out.mem = static_cast<double>(agg.memStall) / out.total;
    out.msync = static_cast<double>(agg.syncStall) / out.total;
    return out;
}

MemBreakdown
memBreakdown(const sim::SimStats &stats)
{
    sim::ProcStats agg = stats.aggregate();
    MemBreakdown out;
    out.totalMem = agg.memStall;
    if (out.totalMem == 0)
        return out;
    for (std::size_t g = 0; g < sim::kNumClassGroups; ++g) {
        out.byGroup[g] = static_cast<double>(agg.memStallByGroup[g]) /
                         static_cast<double>(out.totalMem);
    }
    return out;
}

void
printMissTable(std::ostream &os, const std::string &title,
               const sim::MissTable &t)
{
    const double total = static_cast<double>(t.total());
    os << title << " (cells normalized to 100 total misses)\n";
    TextTable tab({"structure", "Cold", "Conf", "Cohe", "All"});
    for (std::size_t c = 0; c < sim::kNumDataClasses; ++c) {
        auto cls = static_cast<sim::DataClass>(c);
        std::uint64_t all = t.byClass(cls);
        if (all == 0)
            continue;
        tab.addRow({std::string(sim::dataClassName(cls)),
                    pct(static_cast<double>(t.of(cls, sim::MissType::Cold)),
                        total),
                    pct(static_cast<double>(t.of(cls, sim::MissType::Conf)),
                        total),
                    pct(static_cast<double>(t.of(cls, sim::MissType::Cohe)),
                        total),
                    pct(static_cast<double>(all), total)});
    }
    tab.print(os);
}

} // namespace harness
} // namespace dss
