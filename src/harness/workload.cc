#include "harness/workload.hh"

namespace dss {
namespace harness {

std::vector<const sim::TraceStream *>
tracePtrs(const TraceSet &traces)
{
    std::vector<const sim::TraceStream *> out;
    out.reserve(traces.size());
    for (const sim::TraceStream &t : traces)
        out.push_back(&t);
    return out;
}

Workload::Workload(const tpcd::ScaleConfig &scale, unsigned nprocs,
                   std::uint64_t db_seed)
    : nprocs_(nprocs),
      db_(std::make_unique<tpcd::TpcdDb>(scale, nprocs, db_seed))
{}

namespace {

sim::TraceStream
tracePlan(tpcd::TpcdDb &db, db::NodePtr plan, sim::ProcId proc,
          db::Xid xid, bool relock_on_rescan)
{
    sim::TraceStream stream;
    db::TracedMemory mem(db.space(), proc, stream);
    db::PrivateHeap priv(db.space(), proc);
    const std::size_t mark = priv.mark();

    db::ExecContext ctx{mem, db.catalog(), priv, xid, relock_on_rescan};
    (void)db::runQuery(ctx, *plan);

    priv.rewind(mark);
    return stream;
}

} // namespace

sim::TraceStream
Workload::traceOne(tpcd::QueryId q, sim::ProcId proc,
                   std::uint64_t param_seed)
{
    return tracePlan(*db_, tpcd::buildQuery(*db_, q, param_seed), proc,
                     nextXid_++, /*relock_on_rescan=*/true);
}

void
Workload::primeStreamMetadata()
{
    if (streamPrimed_)
        return;
    sim::NullSink sink;
    db::TracedMemory mem(db_->space(), 0, sink);
    db::LockManager &lm = db_->catalog().lockmgr();
    const db::Xid warm = kStreamXidBase - 1;
    for (db::RelId rel : db_->catalog().allRelIds()) {
        lm.lockRelation(mem, warm, rel, db::LockMode::Read);
        lm.unlockRelation(mem, warm, rel);
    }
    lm.sweepXid(mem, warm);
    streamPrimed_ = true;
}

sim::TraceStream
Workload::streamTrace(tpcd::QueryId q, std::uint64_t param_seed,
                      sim::ProcId proc)
{
    primeStreamMetadata();
    const db::Xid xid = kStreamXidBase + proc;
    sim::TraceStream stream =
        tracePlan(*db_, tpcd::buildQuery(*db_, q, param_seed), proc, xid,
                  /*relock_on_rescan=*/true);
    // Drop the xid-hash residue untraced: the next capture (any proc,
    // any query) starts from the same metadata state this one did.
    sim::NullSink sink;
    db::TracedMemory clean(db_->space(), proc, sink);
    db_->catalog().lockmgr().sweepXid(clean, xid);
    return stream;
}

TraceSet
Workload::trace(tpcd::QueryId q, std::uint64_t param_seed)
{
    return traceWithLockDiscipline(q, param_seed,
                                   /*relock_on_rescan=*/true);
}

TraceSet
Workload::traceWithLockDiscipline(tpcd::QueryId q,
                                  std::uint64_t param_seed,
                                  bool relock_on_rescan)
{
    TraceSet out;
    out.reserve(nprocs_);
    for (unsigned p = 0; p < nprocs_; ++p) {
        out.push_back(tracePlan(
            *db_, tpcd::buildQuery(*db_, q, param_seed * 7919 + p), p,
            nextXid_++, relock_on_rescan));
    }
    return out;
}

TraceSet
Workload::traceCustom(const PlanBuilder &builder)
{
    TraceSet out;
    out.reserve(nprocs_);
    for (unsigned p = 0; p < nprocs_; ++p) {
        out.push_back(tracePlan(*db_, builder(*db_, p), p, nextXid_++,
                                /*relock_on_rescan=*/true));
    }
    return out;
}

TraceSet
Workload::traceIntraQueryQ6(std::uint64_t param_seed)
{
    tpcd::Q6Params params = tpcd::Q6Params::fromSeed(param_seed);
    TraceSet out;
    out.reserve(nprocs_);
    for (unsigned p = 0; p < nprocs_; ++p) {
        out.push_back(tracePlan(
            *db_, tpcd::buildQ6Partition(*db_, params, p, nprocs_), p,
            nextXid_++, /*relock_on_rescan=*/true));
    }
    return out;
}

std::vector<std::vector<db::Datum>>
Workload::execute(tpcd::QueryId q, std::uint64_t param_seed)
{
    sim::NullSink sink;
    db::TracedMemory mem(db_->space(), 0, sink);
    db::PrivateHeap priv(db_->space(), 0);
    const std::size_t mark = priv.mark();

    db::ExecContext ctx{mem, db_->catalog(), priv, nextXid_++};
    db::NodePtr plan = tpcd::buildQuery(*db_, q, param_seed);
    auto rows = db::runQuery(ctx, *plan);

    priv.rewind(mark);
    return rows;
}

} // namespace harness
} // namespace dss
