#include "tpcd/updates.hh"

#include "tpcd/rng.hh"

namespace dss {
namespace tpcd {

using db::Datum;

UpdateStats
runUF1(TpcdDb &d, db::ExecContext &ctx, unsigned order_count,
       std::uint64_t seed)
{
    SplitMix64 rng(seed ^ 0x5f1u);
    const ScaleConfig &scale = d.scale();
    const std::int32_t o_lo = dateNum(1992, 1, 1);
    const std::int32_t o_hi = dateNum(1998, 8, 2) - 151;
    const std::int32_t today = dateNum(1995, 6, 17);

    UpdateStats stats;
    for (unsigned i = 0; i < order_count; ++i) {
        const std::int64_t orderkey = d.nextOrderKey++;
        const std::int64_t custkey = rng.range(1, scale.customers);
        const auto odate = static_cast<std::int32_t>(rng.range(o_lo, o_hi));
        const auto nlines =
            static_cast<unsigned>(rng.range(1, scale.maxLinesPerOrder));

        // The order statement: relation write lock, insert, unlock.
        db::lockForWrite(ctx, d.orders);
        db::heapInsert(
            ctx, d.orders,
            {Datum{orderkey}, Datum{custkey}, Datum{std::string("O")},
             Datum{0.0}, Datum{std::int64_t{odate}},
             Datum{std::string(kOrderPriorities[rng.range(0, 4)])},
             Datum{"Clerk#" + std::to_string(rng.range(1, 1000))},
             Datum{std::int64_t{0}},
             Datum{std::string("uf1 order")}});
        db::unlockWrite(ctx, d.orders);
        ++stats.orders;

        // The lineitem statement for this order.
        db::lockForWrite(ctx, d.lineitem);
        for (unsigned l = 0; l < nlines; ++l) {
            const std::int64_t partkey = rng.range(1, scale.parts);
            const std::int64_t qty = rng.range(1, 50);
            const double price =
                static_cast<double>(qty) *
                (900.0 + static_cast<double>(partkey % 1000));
            const auto sdate =
                odate + static_cast<std::int32_t>(rng.range(1, 121));
            db::heapInsert(
                ctx, d.lineitem,
                {Datum{orderkey}, Datum{partkey},
                 Datum{rng.range(1, scale.suppliers)},
                 Datum{std::int64_t{l + 1}},
                 Datum{static_cast<double>(qty)}, Datum{price},
                 Datum{static_cast<double>(rng.range(0, 10)) / 100.0},
                 Datum{static_cast<double>(rng.range(0, 8)) / 100.0},
                 Datum{std::string("N")},
                 Datum{std::string(sdate <= today ? "F" : "O")},
                 Datum{std::int64_t{sdate}},
                 Datum{std::int64_t{
                     odate + static_cast<std::int32_t>(rng.range(30, 90))}},
                 Datum{std::int64_t{
                     sdate + static_cast<std::int32_t>(rng.range(1, 30))}},
                 Datum{std::string("DELIVER IN PERSON")},
                 Datum{std::string(kShipModes[rng.range(0, 6)])},
                 Datum{std::string("uf1 lineitem")}});
            ++stats.lineitems;
        }
        db::unlockWrite(ctx, d.lineitem);
    }
    return stats;
}

UpdateStats
runUF2(TpcdDb &d, db::ExecContext &ctx, unsigned order_count)
{
    const db::BTree &order_idx = d.catalog().index(d.idxOrdersKey);
    const db::BTree &li_idx = d.catalog().index(d.idxLineitemOrder);

    UpdateStats stats;
    db::BTree::Cursor c = order_idx.seek(ctx.mem, 0);
    std::int64_t key;
    db::Tid tid;
    while (stats.orders < order_count && c.next(ctx.mem, key, tid)) {
        // The order statement.
        db::lockForWrite(ctx, d.orders);
        bool was_live = db::heapDelete(ctx, d.orders, tid);
        db::unlockWrite(ctx, d.orders);
        if (!was_live)
            continue; // stale index entry from an earlier UF2
        ++stats.orders;

        // The lineitem statement: delete this order's lines via the index.
        db::lockForWrite(ctx, d.lineitem);
        for (const db::Tid &lt : li_idx.lookupAll(ctx.mem, key)) {
            if (db::heapDelete(ctx, d.lineitem, lt))
                ++stats.lineitems;
        }
        db::unlockWrite(ctx, d.lineitem);
    }
    c.close(ctx.mem);
    return stats;
}

} // namespace tpcd
} // namespace dss
