#include "tpcd/dbgen.hh"

#include <array>
#include <string>

#include "tpcd/rng.hh"

namespace dss {
namespace tpcd {

using db::AttrType;
using db::Datum;
using db::Schema;

const char *const kMktSegments[5] = {
    "AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD",
};

const char *const kShipModes[7] = {
    "REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB",
};

const char *const kOrderPriorities[5] = {
    "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW",
};

namespace {

const char *const kNations[25] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
};

const char *const kRegions[5] = {
    "AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST",
};

const char *const kPartTypes[6] = {
    "STANDARD BRASS", "SMALL COPPER", "MEDIUM NICKEL",
    "LARGE STEEL", "ECONOMY TIN", "PROMO ANODIZED",
};

const char *const kContainers[5] = {
    "SM CASE", "MED BOX", "LG DRUM", "JUMBO PKG", "WRAP BAG",
};

using Rng = SplitMix64;

std::string
padNum(const char *prefix, std::int64_t n)
{
    return std::string(prefix) + std::to_string(n);
}

} // namespace

std::int32_t
dateNum(int year, int month, int day)
{
    static const int cum[12] = {0,   31,  59,  90,  120, 151,
                                181, 212, 243, 273, 304, 334};
    std::int32_t days = 0;
    for (int y = 1992; y < year; ++y) {
        bool leap = (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
        days += leap ? 366 : 365;
    }
    days += cum[month - 1];
    bool leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    if (leap && month > 2)
        ++days;
    return days + day - 1;
}

TpcdDb::TpcdDb(const ScaleConfig &scale, unsigned nprocs, std::uint64_t seed)
    : scale_(scale)
{
    // Size arenas for the population: heap + indices fit comfortably in
    // 4x the raw data estimate; private heaps hold per-query temps.
    const std::size_t approx_rows =
        scale.orders() * (1 + scale.maxLinesPerOrder) + scale.customers +
        scale.parts * (1 + scale.partsuppPerPart) + scale.suppliers + 64;
    const std::size_t shared_bytes =
        std::max<std::size_t>(8u << 20, approx_rows * 256 * 2);
    const std::size_t private_bytes =
        std::max<std::size_t>(16u << 20, approx_rows * 64);

    space_ = std::make_unique<sim::AddressSpace>(nprocs, shared_bytes,
                                                 private_bytes);
    nullSink_ = std::make_unique<sim::NullSink>();
    db::TracedMemory setup(*space_, 0, *nullSink_);

    const unsigned max_blocks = static_cast<unsigned>(
        shared_bytes / db::kPageBytes);
    bufmgr_ = std::make_unique<db::BufferManager>(setup, max_blocks);
    lockmgr_ = std::make_unique<db::LockManager>(setup, 256, 4096);
    catalog_ = std::make_unique<db::Catalog>(*bufmgr_, *lockmgr_);

    Rng rng(seed);

    // ---- region / nation -------------------------------------------------
    {
        Schema s;
        s.add("r_regionkey", AttrType::Int32)
            .add("r_name", AttrType::Char, 25)
            .add("r_comment", AttrType::Char, 80);
        region = catalog_->createTable(setup, "region", s);
        for (int r = 0; r < 5; ++r) {
            catalog_->insert(setup, region,
                             {Datum{std::int64_t{r}}, Datum{kRegions[r]},
                              Datum{std::string("region comment")}});
        }
    }
    {
        Schema s;
        s.add("n_nationkey", AttrType::Int32)
            .add("n_name", AttrType::Char, 25)
            .add("n_regionkey", AttrType::Int32)
            .add("n_comment", AttrType::Char, 80);
        nation = catalog_->createTable(setup, "nation", s);
        for (int n = 0; n < 25; ++n) {
            catalog_->insert(setup, nation,
                             {Datum{std::int64_t{n}}, Datum{kNations[n]},
                              Datum{std::int64_t{n % 5}},
                              Datum{std::string("nation comment")}});
        }
    }

    // ---- supplier ---------------------------------------------------------
    {
        Schema s;
        s.add("s_suppkey", AttrType::Int32)
            .add("s_name", AttrType::Char, 25)
            .add("s_address", AttrType::Char, 40)
            .add("s_nationkey", AttrType::Int32)
            .add("s_phone", AttrType::Char, 15)
            .add("s_acctbal", AttrType::Double)
            .add("s_comment", AttrType::Char, 40);
        supplier = catalog_->createTable(setup, "supplier", s);
        for (unsigned i = 1; i <= scale_.suppliers; ++i) {
            catalog_->insert(
                setup, supplier,
                {Datum{std::int64_t{i}}, Datum{padNum("Supplier#", i)},
                 Datum{padNum("Address ", rng.range(1, 99999))},
                 Datum{rng.range(0, 24)},
                 Datum{padNum("27-", rng.range(1000000, 9999999))},
                 Datum{rng.money(-999.99, 9999.99)},
                 Datum{std::string("supplier comment")}});
        }
    }

    // ---- part / partsupp --------------------------------------------------
    {
        Schema s;
        s.add("p_partkey", AttrType::Int32)
            .add("p_name", AttrType::Char, 35)
            .add("p_mfgr", AttrType::Char, 25)
            .add("p_brand", AttrType::Char, 10)
            .add("p_type", AttrType::Char, 25)
            .add("p_size", AttrType::Int32)
            .add("p_container", AttrType::Char, 10)
            .add("p_retailprice", AttrType::Double)
            .add("p_comment", AttrType::Char, 23);
        part = catalog_->createTable(setup, "part", s);
        for (unsigned i = 1; i <= scale_.parts; ++i) {
            catalog_->insert(
                setup, part,
                {Datum{std::int64_t{i}}, Datum{padNum("Part#", i)},
                 Datum{padNum("Manufacturer#", rng.range(1, 5))},
                 Datum{padNum("Brand#", rng.range(11, 55))},
                 Datum{kPartTypes[rng.range(0, 5)]},
                 Datum{rng.range(1, 50)},
                 Datum{kContainers[rng.range(0, 4)]},
                 Datum{900.0 + (i % 1000) + rng.money(0, 100)},
                 Datum{std::string("part comment")}});
        }
    }
    {
        Schema s;
        s.add("ps_partkey", AttrType::Int32)
            .add("ps_suppkey", AttrType::Int32)
            .add("ps_availqty", AttrType::Int32)
            .add("ps_supplycost", AttrType::Double)
            .add("ps_comment", AttrType::Char, 60);
        partsupp = catalog_->createTable(setup, "partsupp", s);
        for (unsigned p = 1; p <= scale_.parts; ++p) {
            for (unsigned j = 0; j < scale_.partsuppPerPart; ++j) {
                catalog_->insert(
                    setup, partsupp,
                    {Datum{std::int64_t{p}},
                     Datum{rng.range(1, scale_.suppliers)},
                     Datum{rng.range(1, 9999)},
                     Datum{rng.money(1.00, 1000.00)},
                     Datum{std::string("partsupp comment")}});
            }
        }
    }

    // ---- customer ---------------------------------------------------------
    {
        Schema s;
        s.add("c_custkey", AttrType::Int32)
            .add("c_name", AttrType::Char, 18)
            .add("c_address", AttrType::Char, 40)
            .add("c_nationkey", AttrType::Int32)
            .add("c_phone", AttrType::Char, 15)
            .add("c_acctbal", AttrType::Double)
            .add("c_mktsegment", AttrType::Char, 10)
            .add("c_comment", AttrType::Char, 60);
        customer = catalog_->createTable(setup, "customer", s);
        for (unsigned i = 1; i <= scale_.customers; ++i) {
            catalog_->insert(
                setup, customer,
                {Datum{std::int64_t{i}}, Datum{padNum("Customer#", i)},
                 Datum{padNum("Address ", rng.range(1, 99999))},
                 Datum{rng.range(0, 24)},
                 Datum{padNum("13-", rng.range(1000000, 9999999))},
                 Datum{rng.money(-999.99, 9999.99)},
                 Datum{kMktSegments[rng.range(0, 4)]},
                 Datum{std::string("customer comment")}});
        }
    }

    // ---- orders / lineitem -------------------------------------------------
    // TPC-D order dates span [1992-01-01, 1998-08-02 - 151 days].
    const std::int32_t o_lo = dateNum(1992, 1, 1);
    const std::int32_t o_hi = dateNum(1998, 8, 2) - 151;
    {
        Schema so;
        so.add("o_orderkey", AttrType::Int32)
            .add("o_custkey", AttrType::Int32)
            .add("o_orderstatus", AttrType::Char, 1)
            .add("o_totalprice", AttrType::Double)
            .add("o_orderdate", AttrType::Date)
            .add("o_orderpriority", AttrType::Char, 15)
            .add("o_clerk", AttrType::Char, 15)
            .add("o_shippriority", AttrType::Int32)
            .add("o_comment", AttrType::Char, 49);
        orders = catalog_->createTable(setup, "orders", so);

        Schema sl;
        sl.add("l_orderkey", AttrType::Int32)
            .add("l_partkey", AttrType::Int32)
            .add("l_suppkey", AttrType::Int32)
            .add("l_linenumber", AttrType::Int32)
            .add("l_quantity", AttrType::Double)
            .add("l_extendedprice", AttrType::Double)
            .add("l_discount", AttrType::Double)
            .add("l_tax", AttrType::Double)
            .add("l_returnflag", AttrType::Char, 1)
            .add("l_linestatus", AttrType::Char, 1)
            .add("l_shipdate", AttrType::Date)
            .add("l_commitdate", AttrType::Date)
            .add("l_receiptdate", AttrType::Date)
            .add("l_shipinstruct", AttrType::Char, 25)
            .add("l_shipmode", AttrType::Char, 10)
            .add("l_comment", AttrType::Char, 27);
        lineitem = catalog_->createTable(setup, "lineitem", sl);

        const std::int32_t today = dateNum(1995, 6, 17); // TPC-D CURRENTDATE
        for (unsigned o = 1; o <= scale_.orders(); ++o) {
            const std::int64_t custkey = rng.range(1, scale_.customers);
            const auto odate = static_cast<std::int32_t>(
                rng.range(o_lo, o_hi));
            const auto nlines = static_cast<unsigned>(
                rng.range(1, scale_.maxLinesPerOrder));

            double total = 0.0;
            int shipped = 0;
            struct Line
            {
                std::int64_t partkey, suppkey, quantity;
                double price, disc, tax;
                std::int32_t sdate, cdate, rdate;
                const char *mode;
            };
            std::vector<Line> lines(nlines);
            for (unsigned l = 0; l < nlines; ++l) {
                Line &ln = lines[l];
                ln.partkey = rng.range(1, scale_.parts);
                ln.suppkey = rng.range(1, scale_.suppliers);
                ln.quantity = rng.range(1, 50);
                ln.disc = static_cast<double>(rng.range(0, 10)) / 100.0;
                ln.tax = static_cast<double>(rng.range(0, 8)) / 100.0;
                ln.price = static_cast<double>(ln.quantity) *
                           (900.0 + static_cast<double>(ln.partkey % 1000));
                ln.sdate = odate + static_cast<std::int32_t>(
                                       rng.range(1, 121));
                ln.cdate = odate + static_cast<std::int32_t>(
                                       rng.range(30, 90));
                ln.rdate = ln.sdate + static_cast<std::int32_t>(
                                          rng.range(1, 30));
                ln.mode = kShipModes[rng.range(0, 6)];
                total += ln.price * (1 - ln.disc) * (1 + ln.tax);
                if (ln.sdate <= today)
                    ++shipped;
            }
            const char *status = shipped == 0              ? "O"
                                 : shipped == static_cast<int>(nlines) ? "F"
                                                                       : "P";
            catalog_->insert(
                setup, orders,
                {Datum{std::int64_t{o}}, Datum{custkey}, Datum{status},
                 Datum{total}, Datum{std::int64_t{odate}},
                 Datum{kOrderPriorities[rng.range(0, 4)]},
                 Datum{padNum("Clerk#", rng.range(1, 1000))},
                 Datum{std::int64_t{0}},
                 Datum{std::string("order comment")}});

            for (unsigned l = 0; l < nlines; ++l) {
                const Line &ln = lines[l];
                const char *rf = ln.rdate <= today
                                     ? (rng.range(0, 1) ? "R" : "A")
                                     : "N";
                catalog_->insert(
                    setup, lineitem,
                    {Datum{std::int64_t{o}}, Datum{ln.partkey},
                     Datum{ln.suppkey}, Datum{std::int64_t{l + 1}},
                     Datum{static_cast<double>(ln.quantity)},
                     Datum{ln.price}, Datum{ln.disc}, Datum{ln.tax},
                     Datum{rf}, Datum{ln.sdate <= today ? "F" : "O"},
                     Datum{std::int64_t{ln.sdate}},
                     Datum{std::int64_t{ln.cdate}},
                     Datum{std::int64_t{ln.rdate}},
                     Datum{std::string("DELIVER IN PERSON")},
                     Datum{ln.mode},
                     Datum{std::string("lineitem comment")}});
            }
        }
    }

    // ---- indices ------------------------------------------------------------
    auto attr_of = [&](db::RelId rel, const char *name) {
        return catalog_->relation(rel).schema.indexOf(name);
    };
    idxCustomerKey = catalog_->createIndex(setup, "customer_custkey",
                                           customer,
                                           attr_of(customer, "c_custkey"));
    idxCustomerSegment = catalog_->createIndex(
        setup, "customer_mktsegment", customer,
        attr_of(customer, "c_mktsegment"));
    idxOrdersKey = catalog_->createIndex(setup, "orders_orderkey", orders,
                                         attr_of(orders, "o_orderkey"));
    idxOrdersCust = catalog_->createIndex(setup, "orders_custkey", orders,
                                          attr_of(orders, "o_custkey"));
    idxOrdersDate = catalog_->createIndex(setup, "orders_orderdate", orders,
                                          attr_of(orders, "o_orderdate"));
    idxLineitemOrder = catalog_->createIndex(
        setup, "lineitem_orderkey", lineitem,
        attr_of(lineitem, "l_orderkey"));
    idxLineitemPart = catalog_->createIndex(setup, "lineitem_partkey",
                                            lineitem,
                                            attr_of(lineitem, "l_partkey"));
    idxPartKey = catalog_->createIndex(setup, "part_partkey", part,
                                       attr_of(part, "p_partkey"));
    idxSupplierKey = catalog_->createIndex(setup, "supplier_suppkey",
                                           supplier,
                                           attr_of(supplier, "s_suppkey"));
    idxPartsuppPart = catalog_->createIndex(setup, "partsupp_partkey",
                                            partsupp,
                                            attr_of(partsupp, "ps_partkey"));
    idxNationKey = catalog_->createIndex(setup, "nation_nationkey", nation,
                                         attr_of(nation, "n_nationkey"));

    nextOrderKey = static_cast<std::int64_t>(scale_.orders()) + 1;
}

std::size_t
TpcdDb::dataBytes() const
{
    return static_cast<std::size_t>(bufmgr_->numBlocks()) * db::kPageBytes;
}

} // namespace tpcd
} // namespace dss
