/**
 * @file
 * SplitMix64: the deterministic generator behind the population generator
 * (dbgen), the query-parameter picks, and the update functions.
 */

#ifndef DSS_TPCD_RNG_HH
#define DSS_TPCD_RNG_HH

#include <cstdint>

namespace dss {
namespace tpcd {

class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [lo, hi]. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        next() % static_cast<std::uint64_t>(hi - lo + 1));
    }

    /** Uniform money value in [lo, hi], 4-digit granularity. */
    double
    money(double lo, double hi)
    {
        return lo +
               (hi - lo) * (static_cast<double>(next() % 10000) / 10000.0);
    }

  private:
    std::uint64_t state_;
};

} // namespace tpcd
} // namespace dss

#endif // DSS_TPCD_RNG_HH
