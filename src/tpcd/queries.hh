/**
 * @file
 * Plan builders for the 17 read-only TPC-D queries.
 *
 * The plans are left-deep trees built from the executor's physical
 * operators, with the operator profile of the paper's Table 1 (which
 * select/join algorithms each query uses under Postgres95's optimizer with
 * our index set). Q3, Q6 and Q12 — the three queries the paper traces —
 * follow Figures 1-3 exactly: the same scan order, join order, and
 * sort/group/aggregate structure, with TPC-D-spec parameter generation so
 * that each simulated processor runs the same query with different
 * parameters (paper Section 4.3).
 *
 * As in the paper, the remaining queries are "coded so that they have the
 * same memory access patterns as if ... coded in a system that supported a
 * full SQL implementation": semantics are TPC-D-flavored analogs, access
 * patterns (which tables, via which access paths, in which order) are the
 * point.
 */

#ifndef DSS_TPCD_QUERIES_HH
#define DSS_TPCD_QUERIES_HH

#include <cstdint>
#include <string>

#include "db/exec.hh"
#include "tpcd/dbgen.hh"

namespace dss {
namespace tpcd {

/** The 17 read-only TPC-D queries. */
enum class QueryId
{
    Q1 = 1, Q2, Q3, Q4, Q5, Q6, Q7, Q8, Q9, Q10, Q11, Q12, Q13, Q14, Q15,
    Q16, Q17
};

constexpr int kNumQueries = 17;

std::string queryName(QueryId q);

/** The paper's taxonomy (Section 3.4), by dominant access pattern. */
enum class QueryClass { Sequential, Index, Mixed };

QueryClass queryClassOf(QueryId q);

/** Q3 parameters (paper Figure 1). */
struct Q3Params
{
    int segment = 0;        ///< index into kMktSegments
    std::int32_t date1 = 0; ///< o_orderdate < date1
    std::int32_t date2 = 0; ///< l_shipdate > date2

    static Q3Params fromSeed(std::uint64_t seed);
};

/** Q6 parameters (paper Figure 2). */
struct Q6Params
{
    std::int32_t dateLo = 0; ///< l_shipdate >= dateLo
    std::int32_t dateHi = 0; ///< l_shipdate < dateHi (dateLo + 1 year)
    double discount = 0.05;  ///< +- 0.01 band
    double quantity = 24;    ///< l_quantity < quantity

    static Q6Params fromSeed(std::uint64_t seed);
};

/** Q12 parameters (paper Figure 3). */
struct Q12Params
{
    int mode1 = 0;           ///< index into kShipModes
    int mode2 = 1;
    std::int32_t dateLo = 0; ///< l_receiptdate >= dateLo
    std::int32_t dateHi = 0; ///< l_receiptdate < dateHi (1 year)

    static Q12Params fromSeed(std::uint64_t seed);
};

/** Paper Figure 1 plan: Index query over customer/orders/lineitem. */
db::NodePtr buildQ3(TpcdDb &db, const Q3Params &p);

/** Paper Figure 2 plan: Sequential query over lineitem. */
db::NodePtr buildQ6(TpcdDb &db, const Q6Params &p);

/**
 * Intra-query-parallel Q6 (the paper's future work, Section 7): the
 * lineitem scan is partitioned into @p nparts contiguous block ranges and
 * this builds the plan for partition @p part. Each partition computes a
 * partial aggregate; a coordinator combines the (tiny) partials.
 */
db::NodePtr buildQ6Partition(TpcdDb &db, const Q6Params &p, unsigned part,
                             unsigned nparts);

/** Paper Figure 3 plan: sequential lineitem merge-joined with orders. */
db::NodePtr buildQ12(TpcdDb &db, const Q12Params &p);

/**
 * Nested-query Q4 (the paper's "queries that involve nested queries"
 * future work): TPC-D Q4's real SQL has an EXISTS subquery —
 *
 *   select o_orderpriority, count(*) from orders
 *   where o_orderdate in [quarter]
 *     and exists (select * from lineitem
 *                 where l_orderkey = o_orderkey
 *                   and l_commitdate < l_receiptdate)
 *   group by o_orderpriority
 *
 * The flat Q4 the paper traces scans orders only (a Sequential query);
 * this variant executes the subquery via a parameterized inner index scan
 * per order — the access pattern becomes Index-class.
 */
db::NodePtr buildQ4Nested(TpcdDb &db, std::uint64_t param_seed);

/**
 * Build any of Q1..Q17 with parameters drawn deterministically from
 * @p param_seed (different seeds = different TPC-D substitution values).
 */
db::NodePtr buildQuery(TpcdDb &db, QueryId q, std::uint64_t param_seed);

} // namespace tpcd
} // namespace dss

#endif // DSS_TPCD_QUERIES_HH
