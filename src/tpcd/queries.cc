#include "tpcd/queries.hh"

#include <memory>
#include <stdexcept>

#include "tpcd/rng.hh"

namespace dss {
namespace tpcd {

using db::AggSpec;
using db::AggregateNode;
using db::ArithOp;
using db::CmpOp;
using db::Datum;
using db::ExprPtr;
using db::HashJoinNode;
using db::IndexScanNode;
using db::LogicOp;
using db::MergeJoinNode;
using db::NestedLoopJoinNode;
using db::NodePtr;
using db::ProjItem;
using db::Relation;
using db::SeqScanNode;
using db::SortNode;

using db::arith;
using db::attr;
using db::cmp;
using db::col;
using db::datumToKey;
using db::litInt;
using db::litReal;
using db::litStr;
using db::logic;

namespace {

/** Deterministic parameter picks (TPC-D substitution values). */
class ParamRng : public SplitMix64
{
  public:
    explicit ParamRng(std::uint64_t seed) : SplitMix64(seed ^ 0xabcd1234u)
    {}
};

/** 1 - l_discount style revenue expression on a projected schema. */
ExprPtr
revenueExpr(const db::Schema &s, const std::string &price,
            const std::string &disc)
{
    return arith(ArithOp::Mul, col(s, price),
                 arith(ArithOp::Sub, litReal(1.0), col(s, disc)));
}

NodePtr
idxScan(TpcdDb &d, db::RelId table, db::RelId index, std::int64_t lo,
        std::int64_t hi, ExprPtr residual)
{
    return std::make_unique<IndexScanNode>(d.catalog().relation(table),
                                           d.catalog().index(index), lo, hi,
                                           std::move(residual));
}

NodePtr
seqScan(TpcdDb &d, db::RelId table, ExprPtr pred)
{
    return std::make_unique<SeqScanNode>(d.catalog().relation(table),
                                         std::move(pred));
}

constexpr std::int64_t kMin = IndexScanNode::kMinKey;
constexpr std::int64_t kMax = IndexScanNode::kMaxKey;

} // namespace

std::string
queryName(QueryId q)
{
    return "Q" + std::to_string(static_cast<int>(q));
}

QueryClass
queryClassOf(QueryId q)
{
    switch (q) {
      case QueryId::Q1:
      case QueryId::Q4:
      case QueryId::Q6:
      case QueryId::Q15:
      case QueryId::Q16:
        return QueryClass::Sequential;
      case QueryId::Q2:
      case QueryId::Q3:
      case QueryId::Q5:
      case QueryId::Q8:
      case QueryId::Q10:
      case QueryId::Q11:
        return QueryClass::Index;
      default:
        return QueryClass::Mixed;
    }
}

Q3Params
Q3Params::fromSeed(std::uint64_t seed)
{
    ParamRng rng(seed);
    Q3Params p;
    p.segment = static_cast<int>(rng.range(0, 4));
    p.date1 = dateNum(1995, 3, static_cast<int>(rng.range(1, 31)));
    p.date2 = p.date1;
    return p;
}

Q6Params
Q6Params::fromSeed(std::uint64_t seed)
{
    ParamRng rng(seed);
    Q6Params p;
    int year = static_cast<int>(rng.range(1993, 1997));
    p.dateLo = dateNum(year, 1, 1);
    p.dateHi = dateNum(year + 1, 1, 1);
    p.discount = static_cast<double>(rng.range(2, 9)) / 100.0;
    p.quantity = static_cast<double>(rng.range(24, 25));
    return p;
}

Q12Params
Q12Params::fromSeed(std::uint64_t seed)
{
    ParamRng rng(seed);
    Q12Params p;
    p.mode1 = static_cast<int>(rng.range(0, 6));
    p.mode2 = static_cast<int>((p.mode1 + rng.range(1, 6)) % 7);
    int year = static_cast<int>(rng.range(1993, 1997));
    p.dateLo = dateNum(year, 1, 1);
    p.dateHi = dateNum(year + 1, 1, 1);
    return p;
}

NodePtr
buildQ3(TpcdDb &d, const Q3Params &p)
{
    db::Catalog &cat = d.catalog();
    const Relation &cust = cat.relation(d.customer);
    const Relation &ord = cat.relation(d.orders);
    const Relation &li = cat.relation(d.lineitem);
    const std::string seg = kMktSegments[p.segment];

    // (3) Index Scan Select on customer.mktsegment = segment.
    std::int64_t seg_key = datumToKey(Datum{seg});
    NodePtr cust_scan =
        idxScan(d, d.customer, d.idxCustomerSegment, seg_key, seg_key,
                cmp(CmpOp::Eq, col(cust.schema, "c_mktsegment"),
                    litStr(seg)));

    // (4) Index Scan Select on orders.custkey = outer, orderdate < date1.
    NodePtr ord_scan =
        idxScan(d, d.orders, d.idxOrdersCust, kMin, kMax,
                cmp(CmpOp::Lt, col(ord.schema, "o_orderdate"),
                    litInt(p.date1)));

    // Nested Loop Join (1): customer x orders on custkey.
    std::vector<ProjItem> proj1{
        {false, cust.schema.indexOf("c_custkey")},
        {true, ord.schema.indexOf("o_orderkey")},
        {true, ord.schema.indexOf("o_orderdate")},
        {true, ord.schema.indexOf("o_shippriority")},
    };
    auto nl1 = std::make_unique<NestedLoopJoinNode>(
        std::move(cust_scan), std::move(ord_scan),
        cust.schema.indexOf("c_custkey"), nullptr, proj1);
    const db::Schema &s1 = nl1->schema();

    // (5) Index Scan Select on lineitem.orderkey = outer, shipdate > date2.
    NodePtr li_scan =
        idxScan(d, d.lineitem, d.idxLineitemOrder, kMin, kMax,
                cmp(CmpOp::Gt, col(li.schema, "l_shipdate"),
                    litInt(p.date2)));

    // Nested Loop Join (2): (customer x orders) x lineitem on orderkey.
    std::vector<ProjItem> proj2{
        {false, s1.indexOf("o_orderkey")},
        {false, s1.indexOf("o_orderdate")},
        {false, s1.indexOf("o_shippriority")},
        {true, li.schema.indexOf("l_extendedprice")},
        {true, li.schema.indexOf("l_discount")},
    };
    auto nl2 = std::make_unique<NestedLoopJoinNode>(
        std::move(nl1), std::move(li_scan), s1.indexOf("o_orderkey"),
        nullptr, proj2);

    // Sort (6) on the grouping attributes, then Group + Aggregate.
    auto sort1 = std::make_unique<SortNode>(
        std::move(nl2), std::vector<std::size_t>{0, 1, 2});
    const db::Schema &s2 = sort1->schema();
    std::vector<AggSpec> aggs;
    aggs.push_back({AggSpec::Op::Sum,
                    revenueExpr(s2, "l_extendedprice", "l_discount"),
                    "revenue"});
    auto agg = std::make_unique<AggregateNode>(
        std::move(sort1), std::vector<std::size_t>{0, 1, 2},
        std::move(aggs));

    // Sort (7): revenue desc, orderdate asc.
    const db::Schema &s3 = agg->schema();
    return std::make_unique<SortNode>(
        std::move(agg),
        std::vector<std::size_t>{s3.indexOf("revenue"),
                                 s3.indexOf("o_orderdate")},
        std::vector<bool>{true, false});
}

namespace {

ExprPtr
q6Predicate(const db::Schema &s, const Q6Params &p)
{
    return db::andAll({
        cmp(CmpOp::Ge, col(s, "l_shipdate"), litInt(p.dateLo)),
        cmp(CmpOp::Lt, col(s, "l_shipdate"), litInt(p.dateHi)),
        cmp(CmpOp::Ge, col(s, "l_discount"), litReal(p.discount - 0.011)),
        cmp(CmpOp::Le, col(s, "l_discount"), litReal(p.discount + 0.011)),
        cmp(CmpOp::Lt, col(s, "l_quantity"), litReal(p.quantity)),
    });
}

NodePtr
q6Aggregate(const db::Schema &s, NodePtr scan)
{
    std::vector<AggSpec> aggs;
    aggs.push_back({AggSpec::Op::Sum,
                    arith(ArithOp::Mul, col(s, "l_extendedprice"),
                          col(s, "l_discount")),
                    "revenue"});
    return std::make_unique<AggregateNode>(
        std::move(scan), std::vector<std::size_t>{}, std::move(aggs));
}

} // namespace

NodePtr
buildQ6(TpcdDb &d, const Q6Params &p)
{
    const Relation &li = d.catalog().relation(d.lineitem);
    NodePtr scan = seqScan(d, d.lineitem, q6Predicate(li.schema, p));
    return q6Aggregate(li.schema, std::move(scan));
}

NodePtr
buildQ6Partition(TpcdDb &d, const Q6Params &p, unsigned part,
                 unsigned nparts)
{
    if (nparts == 0 || part >= nparts)
        throw std::invalid_argument("buildQ6Partition: bad partition");
    const Relation &li = d.catalog().relation(d.lineitem);
    const std::size_t nblocks = li.blocks.size();
    const std::size_t lo = nblocks * part / nparts;
    const std::size_t hi = nblocks * (part + 1) / nparts;
    auto scan = std::make_unique<SeqScanNode>(
        li, q6Predicate(li.schema, p), lo, hi);
    return q6Aggregate(li.schema, std::move(scan));
}

NodePtr
buildQ12(TpcdDb &d, const Q12Params &p)
{
    const Relation &li = d.catalog().relation(d.lineitem);
    const Relation &ord = d.catalog().relation(d.orders);
    const db::Schema &ls = li.schema;

    // (2) Sequential Scan Select on lineitem.
    ExprPtr pred = db::andAll({
        logic(LogicOp::Or,
              cmp(CmpOp::Eq, col(ls, "l_shipmode"),
                  litStr(kShipModes[p.mode1])),
              cmp(CmpOp::Eq, col(ls, "l_shipmode"),
                  litStr(kShipModes[p.mode2]))),
        cmp(CmpOp::Lt, col(ls, "l_commitdate"), col(ls, "l_receiptdate")),
        cmp(CmpOp::Lt, col(ls, "l_shipdate"), col(ls, "l_commitdate")),
        cmp(CmpOp::Ge, col(ls, "l_receiptdate"), litInt(p.dateLo)),
        cmp(CmpOp::Lt, col(ls, "l_receiptdate"), litInt(p.dateHi)),
    });
    NodePtr li_scan = seqScan(d, d.lineitem, std::move(pred));

    // Sort (1) on l_orderkey: the merge join needs a sorted input.
    auto sorted = std::make_unique<SortNode>(
        std::move(li_scan),
        std::vector<std::size_t>{ls.indexOf("l_orderkey")});

    // (1) Index Scan Select over the orders.orderkey index delivers the
    // orders stream already sorted on the merge key.
    NodePtr ord_scan =
        idxScan(d, d.orders, d.idxOrdersKey, kMin, kMax, nullptr);

    // Merge Join (1) on orderkey.
    std::vector<ProjItem> proj{
        {false, ls.indexOf("l_shipmode")},
        {true, ord.schema.indexOf("o_orderpriority")},
    };
    auto mj = std::make_unique<MergeJoinNode>(
        std::move(sorted), std::move(ord_scan), ls.indexOf("l_orderkey"),
        ord.schema.indexOf("o_orderkey"), proj);

    // Sort + Group on shipmode (paper Fig 3 / Table 1: no Aggregate).
    auto sort2 = std::make_unique<SortNode>(std::move(mj),
                                            std::vector<std::size_t>{0});
    return std::make_unique<AggregateNode>(
        std::move(sort2), std::vector<std::size_t>{0},
        std::vector<AggSpec>{});
}

NodePtr
buildQ4Nested(TpcdDb &d, std::uint64_t param_seed)
{
    // Same parameter draw as the flat Q4 (so the two are comparable).
    ParamRng rng(param_seed);
    const db::Schema &os = d.catalog().relation(d.orders).schema;
    const db::Schema &ls = d.catalog().relation(d.lineitem).schema;
    int year = static_cast<int>(rng.range(1993, 1997));
    int q = static_cast<int>(rng.range(0, 3));
    std::int32_t lo = dateNum(year, 1 + 3 * q, 1);
    std::int32_t hi = q == 3 ? dateNum(year + 1, 1, 1)
                             : dateNum(year, 4 + 3 * q, 1);

    NodePtr ord_scan = seqScan(
        d, d.orders,
        logic(LogicOp::And,
              cmp(CmpOp::Ge, col(os, "o_orderdate"), litInt(lo)),
              cmp(CmpOp::Lt, col(os, "o_orderdate"), litInt(hi))));

    // EXISTS subquery: lineitems of this order delivered late.
    NodePtr sub = idxScan(
        d, d.lineitem, d.idxLineitemOrder, kMin, kMax,
        cmp(CmpOp::Lt, col(ls, "l_commitdate"),
            col(ls, "l_receiptdate")));

    auto semi = std::make_unique<db::SemiJoinNode>(
        std::move(ord_scan), std::move(sub), os.indexOf("o_orderkey"));

    auto sort = std::make_unique<SortNode>(
        std::move(semi),
        std::vector<std::size_t>{os.indexOf("o_orderpriority")});
    std::vector<AggSpec> aggs;
    aggs.push_back({AggSpec::Op::Count, nullptr, "order_count"});
    return std::make_unique<AggregateNode>(
        std::move(sort),
        std::vector<std::size_t>{os.indexOf("o_orderpriority")},
        std::move(aggs));
}

namespace {

NodePtr
buildQ1(TpcdDb &d, ParamRng &rng)
{
    const db::Schema &s = d.catalog().relation(d.lineitem).schema;
    std::int32_t cutoff = dateNum(1998, 12, 1) -
                          static_cast<std::int32_t>(rng.range(60, 120));
    NodePtr scan = seqScan(
        d, d.lineitem,
        cmp(CmpOp::Le, col(s, "l_shipdate"), litInt(cutoff)));
    auto sort = std::make_unique<SortNode>(
        std::move(scan),
        std::vector<std::size_t>{s.indexOf("l_returnflag"),
                                 s.indexOf("l_linestatus")});
    std::vector<AggSpec> aggs;
    aggs.push_back({AggSpec::Op::Sum, col(s, "l_quantity"), "sum_qty"});
    aggs.push_back(
        {AggSpec::Op::Sum, col(s, "l_extendedprice"), "sum_base_price"});
    aggs.push_back({AggSpec::Op::Sum,
                    revenueExpr(s, "l_extendedprice", "l_discount"),
                    "sum_disc_price"});
    aggs.push_back(
        {AggSpec::Op::Sum,
         arith(ArithOp::Mul,
               revenueExpr(s, "l_extendedprice", "l_discount"),
               arith(ArithOp::Add, litReal(1.0), col(s, "l_tax"))),
         "sum_charge"});
    aggs.push_back({AggSpec::Op::Avg, col(s, "l_quantity"), "avg_qty"});
    aggs.push_back(
        {AggSpec::Op::Avg, col(s, "l_extendedprice"), "avg_price"});
    aggs.push_back({AggSpec::Op::Avg, col(s, "l_discount"), "avg_disc"});
    aggs.push_back({AggSpec::Op::Count, nullptr, "count_order"});
    return std::make_unique<AggregateNode>(
        std::move(sort),
        std::vector<std::size_t>{s.indexOf("l_returnflag"),
                                 s.indexOf("l_linestatus")},
        std::move(aggs));
}

NodePtr
buildQ2(TpcdDb &d, ParamRng &rng)
{
    const db::Schema &ps = d.catalog().relation(d.part).schema;
    const db::Schema &pss = d.catalog().relation(d.partsupp).schema;
    const db::Schema &ss = d.catalog().relation(d.supplier).schema;

    auto size = rng.range(1, 50);
    NodePtr part_scan =
        idxScan(d, d.part, d.idxPartKey, kMin, kMax,
                cmp(CmpOp::Eq, col(ps, "p_size"), litInt(size)));

    NodePtr psup_scan =
        idxScan(d, d.partsupp, d.idxPartsuppPart, kMin, kMax, nullptr);
    std::vector<ProjItem> proj1{
        {false, ps.indexOf("p_partkey")},
        {false, ps.indexOf("p_mfgr")},
        {true, pss.indexOf("ps_suppkey")},
        {true, pss.indexOf("ps_supplycost")},
    };
    auto nl1 = std::make_unique<NestedLoopJoinNode>(
        std::move(part_scan), std::move(psup_scan),
        ps.indexOf("p_partkey"), nullptr, proj1);
    const db::Schema &s1 = nl1->schema();

    NodePtr supp_scan =
        idxScan(d, d.supplier, d.idxSupplierKey, kMin, kMax, nullptr);
    std::vector<ProjItem> proj2{
        {false, s1.indexOf("p_partkey")},
        {false, s1.indexOf("p_mfgr")},
        {false, s1.indexOf("ps_supplycost")},
        {true, ss.indexOf("s_name")},
        {true, ss.indexOf("s_acctbal")},
    };
    auto nl2 = std::make_unique<NestedLoopJoinNode>(
        std::move(nl1), std::move(supp_scan), s1.indexOf("ps_suppkey"),
        nullptr, proj2);
    const db::Schema &s2 = nl2->schema();

    return std::make_unique<SortNode>(
        std::move(nl2), std::vector<std::size_t>{s2.indexOf("s_acctbal")},
        std::vector<bool>{true});
}

NodePtr
buildQ4(TpcdDb &d, ParamRng &rng)
{
    const db::Schema &s = d.catalog().relation(d.orders).schema;
    int year = static_cast<int>(rng.range(1993, 1997));
    int q = static_cast<int>(rng.range(0, 3));
    std::int32_t lo = dateNum(year, 1 + 3 * q, 1);
    std::int32_t hi = q == 3 ? dateNum(year + 1, 1, 1)
                             : dateNum(year, 4 + 3 * q, 1);
    NodePtr scan = seqScan(
        d, d.orders,
        logic(LogicOp::And,
              cmp(CmpOp::Ge, col(s, "o_orderdate"), litInt(lo)),
              cmp(CmpOp::Lt, col(s, "o_orderdate"), litInt(hi))));
    auto sort = std::make_unique<SortNode>(
        std::move(scan),
        std::vector<std::size_t>{s.indexOf("o_orderpriority")});
    std::vector<AggSpec> aggs;
    aggs.push_back({AggSpec::Op::Count, nullptr, "order_count"});
    return std::make_unique<AggregateNode>(
        std::move(sort),
        std::vector<std::size_t>{s.indexOf("o_orderpriority")},
        std::move(aggs));
}

NodePtr
buildQ5(TpcdDb &d, ParamRng &rng)
{
    const db::Schema &cs = d.catalog().relation(d.customer).schema;
    const db::Schema &os = d.catalog().relation(d.orders).schema;
    const db::Schema &ls = d.catalog().relation(d.lineitem).schema;

    // A "region" = a band of five nation keys.
    auto region = rng.range(0, 4);
    int year = static_cast<int>(rng.range(1993, 1997));

    NodePtr cust_scan = idxScan(
        d, d.customer, d.idxCustomerKey, kMin, kMax,
        logic(LogicOp::And,
              cmp(CmpOp::Ge, col(cs, "c_nationkey"), litInt(region * 5)),
              cmp(CmpOp::Lt, col(cs, "c_nationkey"),
                  litInt(region * 5 + 5))));

    NodePtr ord_scan = idxScan(
        d, d.orders, d.idxOrdersCust, kMin, kMax,
        logic(LogicOp::And,
              cmp(CmpOp::Ge, col(os, "o_orderdate"),
                  litInt(dateNum(year, 1, 1))),
              cmp(CmpOp::Lt, col(os, "o_orderdate"),
                  litInt(dateNum(year + 1, 1, 1)))));
    std::vector<ProjItem> proj1{
        {false, cs.indexOf("c_custkey")},
        {false, cs.indexOf("c_nationkey")},
        {true, os.indexOf("o_orderkey")},
    };
    auto nl1 = std::make_unique<NestedLoopJoinNode>(
        std::move(cust_scan), std::move(ord_scan),
        cs.indexOf("c_custkey"), nullptr, proj1);
    const db::Schema &s1 = nl1->schema();

    NodePtr li_scan =
        idxScan(d, d.lineitem, d.idxLineitemOrder, kMin, kMax, nullptr);
    std::vector<ProjItem> proj2{
        {false, s1.indexOf("c_nationkey")},
        {true, ls.indexOf("l_extendedprice")},
        {true, ls.indexOf("l_discount")},
    };
    auto nl2 = std::make_unique<NestedLoopJoinNode>(
        std::move(nl1), std::move(li_scan), s1.indexOf("o_orderkey"),
        nullptr, proj2);
    const db::Schema &s2 = nl2->schema();

    auto sort = std::make_unique<SortNode>(
        std::move(nl2), std::vector<std::size_t>{0});
    std::vector<AggSpec> aggs;
    aggs.push_back({AggSpec::Op::Sum,
                    revenueExpr(s2, "l_extendedprice", "l_discount"),
                    "revenue"});
    return std::make_unique<AggregateNode>(
        std::move(sort), std::vector<std::size_t>{0}, std::move(aggs));
}

NodePtr
buildQ7(TpcdDb &d, ParamRng &rng)
{
    const db::Schema &ls = d.catalog().relation(d.lineitem).schema;
    const db::Schema &os = d.catalog().relation(d.orders).schema;
    const db::Schema &ss = d.catalog().relation(d.supplier).schema;

    int year = static_cast<int>(rng.range(1995, 1996));
    NodePtr li_scan = seqScan(
        d, d.lineitem,
        logic(LogicOp::And,
              cmp(CmpOp::Ge, col(ls, "l_shipdate"),
                  litInt(dateNum(year, 1, 1))),
              cmp(CmpOp::Lt, col(ls, "l_shipdate"),
                  litInt(dateNum(year, 4, 1)))));

    NodePtr ord_scan =
        idxScan(d, d.orders, d.idxOrdersKey, kMin, kMax, nullptr);
    std::vector<ProjItem> proj1{
        {false, ls.indexOf("l_suppkey")},
        {false, ls.indexOf("l_extendedprice")},
        {false, ls.indexOf("l_discount")},
        {true, os.indexOf("o_orderdate")},
    };
    auto nl = std::make_unique<NestedLoopJoinNode>(
        std::move(li_scan), std::move(ord_scan), ls.indexOf("l_orderkey"),
        nullptr, proj1);
    const db::Schema &s1 = nl->schema();

    NodePtr supp_scan = seqScan(d, d.supplier, nullptr);
    std::vector<ProjItem> proj2{
        {true, ss.indexOf("s_nationkey")},
        {false, s1.indexOf("l_extendedprice")},
        {false, s1.indexOf("l_discount")},
    };
    return std::make_unique<HashJoinNode>(
        std::move(nl), std::move(supp_scan), s1.indexOf("l_suppkey"),
        ss.indexOf("s_suppkey"), proj2);
}

NodePtr
buildQ8(TpcdDb &d, ParamRng &rng)
{
    const db::Schema &ps = d.catalog().relation(d.part).schema;
    const db::Schema &ls = d.catalog().relation(d.lineitem).schema;
    const db::Schema &os = d.catalog().relation(d.orders).schema;

    const char *type = kMktSegments[0]; // placeholder domain
    (void)type;
    NodePtr part_scan = idxScan(
        d, d.part, d.idxPartKey, kMin, kMax,
        cmp(CmpOp::Eq, col(ps, "p_size"), litInt(rng.range(1, 50))));

    NodePtr li_scan =
        idxScan(d, d.lineitem, d.idxLineitemPart, kMin, kMax, nullptr);
    std::vector<ProjItem> proj1{
        {false, ps.indexOf("p_partkey")},
        {true, ls.indexOf("l_orderkey")},
        {true, ls.indexOf("l_extendedprice")},
        {true, ls.indexOf("l_discount")},
    };
    auto nl1 = std::make_unique<NestedLoopJoinNode>(
        std::move(part_scan), std::move(li_scan), ps.indexOf("p_partkey"),
        nullptr, proj1);
    const db::Schema &s1 = nl1->schema();

    int year = static_cast<int>(rng.range(1995, 1996));
    NodePtr ord_scan = idxScan(
        d, d.orders, d.idxOrdersKey, kMin, kMax,
        logic(LogicOp::And,
              cmp(CmpOp::Ge, col(os, "o_orderdate"),
                  litInt(dateNum(year, 1, 1))),
              cmp(CmpOp::Lt, col(os, "o_orderdate"),
                  litInt(dateNum(year + 1, 1, 1)))));
    std::vector<ProjItem> proj2{
        {false, s1.indexOf("p_partkey")},
        {false, s1.indexOf("l_extendedprice")},
        {false, s1.indexOf("l_discount")},
        {true, os.indexOf("o_orderdate")},
    };
    return std::make_unique<NestedLoopJoinNode>(
        std::move(nl1), std::move(ord_scan), s1.indexOf("l_orderkey"),
        nullptr, proj2);
}

NodePtr
buildQ9(TpcdDb &d, ParamRng &rng)
{
    const db::Schema &ls = d.catalog().relation(d.lineitem).schema;
    const db::Schema &ps = d.catalog().relation(d.part).schema;
    const db::Schema &ss = d.catalog().relation(d.supplier).schema;

    NodePtr li_scan = seqScan(
        d, d.lineitem,
        cmp(CmpOp::Gt, col(ls, "l_quantity"), litReal(25.0)));

    std::string mfgr =
        "Manufacturer#" + std::to_string(rng.range(1, 5));
    NodePtr part_scan =
        idxScan(d, d.part, d.idxPartKey, kMin, kMax,
                cmp(CmpOp::Eq, col(ps, "p_mfgr"), litStr(mfgr)));
    std::vector<ProjItem> proj1{
        {false, ls.indexOf("l_suppkey")},
        {false, ls.indexOf("l_extendedprice")},
        {false, ls.indexOf("l_discount")},
        {true, ps.indexOf("p_mfgr")},
    };
    auto nl = std::make_unique<NestedLoopJoinNode>(
        std::move(li_scan), std::move(part_scan), ls.indexOf("l_partkey"),
        nullptr, proj1);
    const db::Schema &s1 = nl->schema();

    NodePtr supp_scan = seqScan(d, d.supplier, nullptr);
    std::vector<ProjItem> proj2{
        {true, ss.indexOf("s_nationkey")},
        {false, s1.indexOf("l_extendedprice")},
        {false, s1.indexOf("l_discount")},
    };
    return std::make_unique<HashJoinNode>(
        std::move(nl), std::move(supp_scan), s1.indexOf("l_suppkey"),
        ss.indexOf("s_suppkey"), proj2);
}

NodePtr
buildQ10(TpcdDb &d, ParamRng &rng)
{
    const db::Schema &os = d.catalog().relation(d.orders).schema;
    const db::Schema &ls = d.catalog().relation(d.lineitem).schema;
    const db::Schema &cs = d.catalog().relation(d.customer).schema;

    int year = static_cast<int>(rng.range(1993, 1994));
    int q = static_cast<int>(rng.range(0, 3));
    std::int64_t lo = dateNum(year, 1 + 3 * q, 1);
    std::int64_t hi = q == 3 ? dateNum(year + 1, 1, 1)
                             : dateNum(year, 4 + 3 * q, 1);
    NodePtr ord_scan =
        idxScan(d, d.orders, d.idxOrdersDate, lo, hi - 1, nullptr);

    NodePtr li_scan = idxScan(
        d, d.lineitem, d.idxLineitemOrder, kMin, kMax,
        cmp(CmpOp::Eq, col(ls, "l_returnflag"), litStr("R")));
    std::vector<ProjItem> proj1{
        {false, os.indexOf("o_custkey")},
        {true, ls.indexOf("l_extendedprice")},
        {true, ls.indexOf("l_discount")},
    };
    auto nl1 = std::make_unique<NestedLoopJoinNode>(
        std::move(ord_scan), std::move(li_scan), os.indexOf("o_orderkey"),
        nullptr, proj1);
    const db::Schema &s1 = nl1->schema();

    NodePtr cust_scan =
        idxScan(d, d.customer, d.idxCustomerKey, kMin, kMax, nullptr);
    std::vector<ProjItem> proj2{
        {false, s1.indexOf("o_custkey")},
        {true, cs.indexOf("c_name")},
        {false, s1.indexOf("l_extendedprice")},
        {false, s1.indexOf("l_discount")},
    };
    auto nl2 = std::make_unique<NestedLoopJoinNode>(
        std::move(nl1), std::move(cust_scan), s1.indexOf("o_custkey"),
        nullptr, proj2);
    const db::Schema &s2 = nl2->schema();

    auto sort = std::make_unique<SortNode>(
        std::move(nl2), std::vector<std::size_t>{0});
    std::vector<AggSpec> aggs;
    aggs.push_back({AggSpec::Op::Sum,
                    revenueExpr(s2, "l_extendedprice", "l_discount"),
                    "revenue"});
    return std::make_unique<AggregateNode>(
        std::move(sort), std::vector<std::size_t>{0}, std::move(aggs));
}

NodePtr
buildQ11(TpcdDb &d, ParamRng &rng)
{
    const db::Schema &pss = d.catalog().relation(d.partsupp).schema;
    const db::Schema &ss = d.catalog().relation(d.supplier).schema;

    auto nationkey = rng.range(0, 24);
    NodePtr psup_scan =
        idxScan(d, d.partsupp, d.idxPartsuppPart, kMin, kMax, nullptr);
    NodePtr supp_scan = idxScan(
        d, d.supplier, d.idxSupplierKey, kMin, kMax,
        cmp(CmpOp::Eq, col(ss, "s_nationkey"), litInt(nationkey)));
    std::vector<ProjItem> proj{
        {false, pss.indexOf("ps_partkey")},
        {false, pss.indexOf("ps_availqty")},
        {false, pss.indexOf("ps_supplycost")},
    };
    auto nl = std::make_unique<NestedLoopJoinNode>(
        std::move(psup_scan), std::move(supp_scan),
        pss.indexOf("ps_suppkey"), nullptr, proj);
    const db::Schema &s1 = nl->schema();

    auto sort = std::make_unique<SortNode>(
        std::move(nl), std::vector<std::size_t>{0});
    std::vector<AggSpec> aggs;
    aggs.push_back({AggSpec::Op::Sum,
                    arith(ArithOp::Mul, col(s1, "ps_supplycost"),
                          col(s1, "ps_availqty")),
                    "value"});
    return std::make_unique<AggregateNode>(
        std::move(sort), std::vector<std::size_t>{0}, std::move(aggs));
}

NodePtr
buildQ13(TpcdDb &d, ParamRng &rng)
{
    const db::Schema &os = d.catalog().relation(d.orders).schema;
    const db::Schema &ls = d.catalog().relation(d.lineitem).schema;

    int year = static_cast<int>(rng.range(1993, 1997));
    NodePtr ord_scan = seqScan(
        d, d.orders,
        logic(LogicOp::And,
              cmp(CmpOp::Ge, col(os, "o_orderdate"),
                  litInt(dateNum(year, 1, 1))),
              cmp(CmpOp::Lt, col(os, "o_orderdate"),
                  litInt(dateNum(year, 7, 1)))));

    NodePtr li_scan = idxScan(
        d, d.lineitem, d.idxLineitemOrder, kMin, kMax,
        cmp(CmpOp::Eq, col(ls, "l_returnflag"), litStr("R")));
    std::vector<ProjItem> proj{
        {false, os.indexOf("o_orderpriority")},
        {true, ls.indexOf("l_quantity")},
    };
    auto nl = std::make_unique<NestedLoopJoinNode>(
        std::move(ord_scan), std::move(li_scan), os.indexOf("o_orderkey"),
        nullptr, proj);

    auto sort = std::make_unique<SortNode>(
        std::move(nl), std::vector<std::size_t>{0});
    std::vector<AggSpec> aggs;
    aggs.push_back({AggSpec::Op::Count, nullptr, "line_count"});
    return std::make_unique<AggregateNode>(
        std::move(sort), std::vector<std::size_t>{0}, std::move(aggs));
}

NodePtr
buildQ14(TpcdDb &d, ParamRng &rng)
{
    const db::Schema &ls = d.catalog().relation(d.lineitem).schema;

    int year = static_cast<int>(rng.range(1993, 1997));
    int month = static_cast<int>(rng.range(1, 12));
    std::int32_t lo = dateNum(year, month, 1);
    std::int32_t hi = month == 12 ? dateNum(year + 1, 1, 1)
                                  : dateNum(year, month + 1, 1);
    NodePtr li_scan = seqScan(
        d, d.lineitem,
        logic(LogicOp::And,
              cmp(CmpOp::Ge, col(ls, "l_shipdate"), litInt(lo)),
              cmp(CmpOp::Lt, col(ls, "l_shipdate"), litInt(hi))));

    const db::Schema &ps = d.catalog().relation(d.part).schema;
    NodePtr part_scan =
        idxScan(d, d.part, d.idxPartKey, kMin, kMax, nullptr);
    std::vector<ProjItem> proj{
        {false, ls.indexOf("l_extendedprice")},
        {false, ls.indexOf("l_discount")},
        {true, ps.indexOf("p_type")},
    };
    auto nl = std::make_unique<NestedLoopJoinNode>(
        std::move(li_scan), std::move(part_scan), ls.indexOf("l_partkey"),
        nullptr, proj);
    const db::Schema &s1 = nl->schema();

    std::vector<AggSpec> aggs;
    aggs.push_back({AggSpec::Op::Sum,
                    revenueExpr(s1, "l_extendedprice", "l_discount"),
                    "revenue"});
    aggs.push_back({AggSpec::Op::Count, nullptr, "line_count"});
    return std::make_unique<AggregateNode>(
        std::move(nl), std::vector<std::size_t>{}, std::move(aggs));
}

NodePtr
buildQ15(TpcdDb &d, ParamRng &rng)
{
    const db::Schema &ls = d.catalog().relation(d.lineitem).schema;
    int year = static_cast<int>(rng.range(1993, 1997));
    int q = static_cast<int>(rng.range(0, 3));
    std::int32_t lo = dateNum(year, 1 + 3 * q, 1);
    std::int32_t hi = q == 3 ? dateNum(year + 1, 1, 1)
                             : dateNum(year, 4 + 3 * q, 1);
    NodePtr scan = seqScan(
        d, d.lineitem,
        logic(LogicOp::And,
              cmp(CmpOp::Ge, col(ls, "l_shipdate"), litInt(lo)),
              cmp(CmpOp::Lt, col(ls, "l_shipdate"), litInt(hi))));
    auto sort = std::make_unique<SortNode>(
        std::move(scan),
        std::vector<std::size_t>{ls.indexOf("l_suppkey")});
    return std::make_unique<AggregateNode>(
        std::move(sort),
        std::vector<std::size_t>{ls.indexOf("l_suppkey")},
        std::vector<AggSpec>{});
}

NodePtr
buildQ16(TpcdDb &d, ParamRng &rng)
{
    const db::Schema &pss = d.catalog().relation(d.partsupp).schema;
    const db::Schema &ps = d.catalog().relation(d.part).schema;

    NodePtr psup_scan = seqScan(d, d.partsupp, nullptr);
    NodePtr part_scan = seqScan(
        d, d.part,
        cmp(CmpOp::Le, col(ps, "p_size"), litInt(rng.range(10, 30))));
    std::vector<ProjItem> proj{
        {true, ps.indexOf("p_brand")},
        {true, ps.indexOf("p_type")},
        {true, ps.indexOf("p_size")},
        {false, pss.indexOf("ps_suppkey")},
    };
    auto hj = std::make_unique<HashJoinNode>(
        std::move(psup_scan), std::move(part_scan),
        pss.indexOf("ps_partkey"), ps.indexOf("p_partkey"), proj);

    auto sort = std::make_unique<SortNode>(
        std::move(hj), std::vector<std::size_t>{0, 1, 2});
    std::vector<AggSpec> aggs;
    aggs.push_back({AggSpec::Op::Count, nullptr, "supplier_cnt"});
    return std::make_unique<AggregateNode>(
        std::move(sort), std::vector<std::size_t>{0, 1, 2},
        std::move(aggs));
}

NodePtr
buildQ17(TpcdDb &d, ParamRng &rng)
{
    const db::Schema &ps = d.catalog().relation(d.part).schema;
    const db::Schema &ls = d.catalog().relation(d.lineitem).schema;

    std::string brand = "Brand#" + std::to_string(rng.range(11, 55));
    NodePtr part_scan = seqScan(
        d, d.part, cmp(CmpOp::Eq, col(ps, "p_brand"), litStr(brand)));

    NodePtr li_scan = idxScan(
        d, d.lineitem, d.idxLineitemPart, kMin, kMax,
        cmp(CmpOp::Lt, col(ls, "l_quantity"), litReal(10.0)));
    std::vector<ProjItem> proj{
        {true, ls.indexOf("l_extendedprice")},
    };
    auto nl = std::make_unique<NestedLoopJoinNode>(
        std::move(part_scan), std::move(li_scan), ps.indexOf("p_partkey"),
        nullptr, proj);
    const db::Schema &s1 = nl->schema();

    std::vector<AggSpec> aggs;
    aggs.push_back(
        {AggSpec::Op::Sum, col(s1, "l_extendedprice"), "total_price"});
    aggs.push_back({AggSpec::Op::Count, nullptr, "line_count"});
    return std::make_unique<AggregateNode>(
        std::move(nl), std::vector<std::size_t>{}, std::move(aggs));
}

} // namespace

NodePtr
buildQuery(TpcdDb &d, QueryId q, std::uint64_t param_seed)
{
    ParamRng rng(param_seed);
    switch (q) {
      case QueryId::Q1: return buildQ1(d, rng);
      case QueryId::Q2: return buildQ2(d, rng);
      case QueryId::Q3: return buildQ3(d, Q3Params::fromSeed(param_seed));
      case QueryId::Q4: return buildQ4(d, rng);
      case QueryId::Q5: return buildQ5(d, rng);
      case QueryId::Q6: return buildQ6(d, Q6Params::fromSeed(param_seed));
      case QueryId::Q7: return buildQ7(d, rng);
      case QueryId::Q8: return buildQ8(d, rng);
      case QueryId::Q9: return buildQ9(d, rng);
      case QueryId::Q10: return buildQ10(d, rng);
      case QueryId::Q11: return buildQ11(d, rng);
      case QueryId::Q12:
        return buildQ12(d, Q12Params::fromSeed(param_seed));
      case QueryId::Q13: return buildQ13(d, rng);
      case QueryId::Q14: return buildQ14(d, rng);
      case QueryId::Q15: return buildQ15(d, rng);
      case QueryId::Q16: return buildQ16(d, rng);
      case QueryId::Q17: return buildQ17(d, rng);
    }
    throw std::invalid_argument("buildQuery: unknown query");
}

} // namespace tpcd
} // namespace dss
