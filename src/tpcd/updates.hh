/**
 * @file
 * The TPC-D update functions UF1 and UF2.
 *
 * The paper describes them (Section 2.2.2) but does not trace them:
 * Postgres95's relation-level-only datalocks make write queries "much more
 * demanding on the locking algorithm". We implement them over the runtime
 * DML layer — relation write locks, traced heap appends/tombstones and
 * B-tree maintenance — so their memory behaviour can be characterized
 * (bench/ext_update_queries) and the locking limitation demonstrated.
 *
 * UF1 inserts new orders (each with 1..7 lineitems); UF2 deletes the
 * lowest-keyed live orders and their lineitems. As with the read-only
 * queries, semantics follow the TPC-D ratios and value domains.
 */

#ifndef DSS_TPCD_UPDATES_HH
#define DSS_TPCD_UPDATES_HH

#include "db/dml.hh"
#include "tpcd/dbgen.hh"

namespace dss {
namespace tpcd {

/** What an update function did (for checks and reports). */
struct UpdateStats
{
    unsigned orders = 0;
    unsigned lineitems = 0;
};

/**
 * UF1: insert @p order_count new orders with their lineitems, maintaining
 * every index. Takes relation write locks per statement.
 */
UpdateStats runUF1(TpcdDb &db, db::ExecContext &ctx, unsigned order_count,
                   std::uint64_t seed);

/**
 * UF2: delete the @p order_count lowest-keyed live orders and their
 * lineitems (tombstoning; index entries are cleaned lazily at scan time).
 */
UpdateStats runUF2(TpcdDb &db, db::ExecContext &ctx, unsigned order_count);

} // namespace tpcd
} // namespace dss

#endif // DSS_TPCD_UPDATES_HH
