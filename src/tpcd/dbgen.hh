/**
 * @file
 * Deterministic scaled-down TPC-D database generator (the paper's dbgen
 * analog, Section 4.2).
 *
 * The paper populates the database with the official TPC-D generator and
 * scales the data set down 100x, to about 20 MB with lineitem ~70% of it.
 * We generate the same eight tables with TPC-D's cardinality ratios and
 * value domains at a configurable scale; ScaleConfig::paperScale() matches
 * the paper's working set (lineitem ~60 k rows / ~9 MB with our layouts).
 *
 * Everything is loaded into buffer-resident heap pages and indexed with
 * B-trees at setup time through an untraced TracedMemory, so load activity
 * never pollutes query traces (the paper likewise measures complete query
 * executions only).
 */

#ifndef DSS_TPCD_DBGEN_HH
#define DSS_TPCD_DBGEN_HH

#include <cstdint>
#include <memory>

#include "db/catalog.hh"

namespace dss {
namespace tpcd {

/** Days since 1992-01-01 for a civil date (valid 1992-1998). */
std::int32_t dateNum(int year, int month, int day);

/** TPC-D population sizes (defaults = the paper's 1/100 scale-down). */
struct ScaleConfig
{
    unsigned customers = 600;
    unsigned ordersPerCustomer = 10; ///< orders = customers * this
    unsigned maxLinesPerOrder = 7;   ///< 1..7, avg 4 (TPC-D)
    unsigned parts = 800;
    unsigned suppliers = 40;
    unsigned partsuppPerPart = 4;

    unsigned orders() const { return customers * ordersPerCustomer; }

    /**
     * The default experiment population: TPC-D cardinality ratios with
     * lineitem ~70% of the data, scaled (like the paper's 100x reduction)
     * so the whole database is a small multiple of the secondary cache
     * and every cache in the sweep overflows as the full-sized ones would.
     */
    static ScaleConfig paperScale() { return ScaleConfig{}; }

    /** Small population for unit tests. */
    static ScaleConfig
    tiny()
    {
        ScaleConfig s;
        s.customers = 40;
        s.ordersPerCustomer = 5;
        s.parts = 50;
        s.suppliers = 10;
        return s;
    }
};

/** The TPC-D market segments (customer.mktsegment domain). */
extern const char *const kMktSegments[5];

/** The TPC-D ship modes (lineitem.shipmode domain). */
extern const char *const kShipModes[7];

/** The TPC-D order priorities. */
extern const char *const kOrderPriorities[5];

/**
 * A fully loaded TPC-D database: address space, buffer and lock managers,
 * catalog, and the relation/index ids of all eight tables.
 */
class TpcdDb
{
  public:
    /**
     * Build and load the database.
     * @param nprocs Number of simulated processes that will query it.
     * @param seed Generator seed (content is deterministic in it).
     */
    TpcdDb(const ScaleConfig &scale, unsigned nprocs,
           std::uint64_t seed = 42);

    sim::AddressSpace &space() { return *space_; }
    db::Catalog &catalog() { return *catalog_; }
    db::BufferManager &bufmgr() { return *bufmgr_; }
    db::LockManager &lockmgr() { return *lockmgr_; }
    const ScaleConfig &scale() const { return scale_; }

    // Table relation ids.
    db::RelId customer = 0;
    db::RelId orders = 0;
    db::RelId lineitem = 0;
    db::RelId part = 0;
    db::RelId supplier = 0;
    db::RelId partsupp = 0;
    db::RelId nation = 0;
    db::RelId region = 0;

    // Index relation ids.
    db::RelId idxCustomerKey = 0;     ///< customer(c_custkey)
    db::RelId idxCustomerSegment = 0; ///< customer(c_mktsegment)
    db::RelId idxOrdersKey = 0;       ///< orders(o_orderkey)
    db::RelId idxOrdersCust = 0;      ///< orders(o_custkey)
    db::RelId idxOrdersDate = 0;      ///< orders(o_orderdate)
    db::RelId idxLineitemOrder = 0;   ///< lineitem(l_orderkey)
    db::RelId idxLineitemPart = 0;    ///< lineitem(l_partkey)
    db::RelId idxPartKey = 0;         ///< part(p_partkey)
    db::RelId idxSupplierKey = 0;     ///< supplier(s_suppkey)
    db::RelId idxPartsuppPart = 0;    ///< partsupp(ps_partkey)
    db::RelId idxNationKey = 0;       ///< nation(n_nationkey)

    /** Total bytes of heap + index buffer blocks (scaling sanity checks). */
    std::size_t dataBytes() const;

    /** Next unused orderkey (advanced by the UF1 update function). */
    std::int64_t nextOrderKey = 1;

  private:
    ScaleConfig scale_;
    std::unique_ptr<sim::AddressSpace> space_;
    std::unique_ptr<sim::NullSink> nullSink_;
    std::unique_ptr<db::BufferManager> bufmgr_;
    std::unique_ptr<db::LockManager> lockmgr_;
    std::unique_ptr<db::Catalog> catalog_;
};

} // namespace tpcd
} // namespace dss

#endif // DSS_TPCD_DBGEN_HH
