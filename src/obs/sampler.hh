/**
 * @file
 * Epoch time-series sampler for the Machine.
 *
 * End-of-run aggregates hide transient behaviour: the cold-to-warm cache
 * transition at the start of a scan, or a burst of LockMgrLock contention
 * while every processor opens its index, are invisible in a single total.
 * The sampler snapshots per-processor counters every time the machine's
 * *minimum* processor clock crosses an epoch boundary (every N simulated
 * cycles) and stores the deltas since the previous snapshot.
 *
 * Because snapshots are taken from the same cumulative ProcStats the run
 * returns, the samples reconcile exactly: summing every epoch delta of a
 * run reproduces the end-of-run ProcStats field for field.
 *
 * One Sampler may observe several consecutive Machine::run calls (the warm
 * -start chains of Fig 12); each sample records which run it belongs to.
 */

#ifndef DSS_OBS_SAMPLER_HH
#define DSS_OBS_SAMPLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hh"
#include "sim/stats.hh"

namespace dss {
namespace obs {

class Registry;

/** Per-processor counter deltas over one epoch. */
struct EpochSample
{
    unsigned run = 0;        ///< index of the Machine::run call sampled
    sim::Cycles start = 0;   ///< epoch start (inclusive, run-local clock)
    sim::Cycles end = 0;     ///< epoch end (exclusive)
    /** Delta of each processor's cumulative stats over [start, end). */
    std::vector<sim::ProcStats> procs;
    /**
     * Registry-counter deltas over the epoch (attachRegistry only):
     * non-zero deltas, sorted by name. Counters that first appear
     * mid-run reconcile against a zero baseline rather than being
     * dropped.
     */
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    /** Registry size when the sample was emitted (attachRegistry only);
     * growth between samples flags late-registered counters. */
    std::size_t registrySize = 0;
};

class Sampler
{
  public:
    /** Snapshot roughly every @p epoch_cycles simulated cycles. */
    explicit Sampler(sim::Cycles epoch_cycles);

    sim::Cycles epochCycles() const { return epochCycles_; }

    /**
     * Also delta-sample every *counter* of @p reg at each epoch (gauges
     * are point-in-time and excluded). The counter set is re-enumerated
     * and its size snapshotted per epoch, so counters registered after
     * the first epoch tick (e.g. lazily-created per-proc counters) are
     * reconciled against a zero baseline instead of being silently
     * dropped. @p reg is borrowed and must outlive the sampling; pass
     * nullptr to detach.
     */
    void attachRegistry(const Registry *reg);

    /**
     * Machine interface: start observing a run of @p nprocs processors.
     * Resets the epoch clock; the run index advances on every call.
     */
    void beginRun(std::size_t nprocs);

    /** True once @p min_clock has crossed the next epoch boundary. */
    bool
    due(sim::Cycles min_clock) const
    {
        return min_clock >= nextBoundary_;
    }

    /**
     * Record the epochs completed up to @p min_clock. @p cumulative holds
     * each processor's stats so far in this run. Emits one sample spanning
     * all boundaries crossed since the last snapshot (epochs are "at least
     * N cycles": when the minimum clock jumps several boundaries at once,
     * the delta is attributed to the whole jumped interval rather than
     * invented per-boundary splits).
     */
    void sample(sim::Cycles min_clock,
                const std::vector<sim::ProcStats> &cumulative);

    /** Close the run's final partial epoch at time @p end. */
    void finishRun(sim::Cycles end,
                   const std::vector<sim::ProcStats> &cumulative);

    const std::vector<EpochSample> &samples() const { return samples_; }

    /**
     * Sum of all sample deltas for processor @p p of run @p run — equals
     * the end-of-run ProcStats by construction (tested).
     */
    sim::ProcStats runTotal(unsigned run, std::size_t p) const;

    /**
     * Sum of all registry-counter deltas recorded for @p name in run
     * @p run — equals the counter's end-of-run value minus its value at
     * beginRun (zero for a counter registered mid-run), by construction.
     */
    std::uint64_t counterTotal(unsigned run, const std::string &name) const;

    /**
     * Serialize the series: per sample, run/start/end plus per-processor
     * busy/memStall/syncStall and non-zero per-class L1/L2 miss deltas.
     */
    Json toJson() const;

  private:
    void emit(sim::Cycles end,
              const std::vector<sim::ProcStats> &cumulative);

    sim::Cycles epochCycles_;
    unsigned run_ = 0;
    bool inRun_ = false;
    sim::Cycles epochStart_ = 0;
    sim::Cycles nextBoundary_ = 0;
    std::vector<sim::ProcStats> last_; ///< snapshot at epochStart_
    std::vector<EpochSample> samples_;
    const Registry *registry_ = nullptr; ///< optional, borrowed
    /** Counter values at epochStart_ (attachRegistry only). Keyed by
     * name: a name absent here but present in the registry was
     * registered inside the epoch and gets a zero baseline. */
    std::map<std::string, std::uint64_t> lastCounters_;
};

} // namespace obs
} // namespace dss

#endif // DSS_OBS_SAMPLER_HH
