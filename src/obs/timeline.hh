/**
 * @file
 * Execution timeline recorder and Chrome trace-event exporter.
 *
 * The Machine, when given a Timeline, emits one span per contiguous
 * interval a processor spends in a state (busy / memory stall / sync
 * stall) and one span per metalock hold and spin. The recorder coalesces
 * back-to-back spans of the same kind, so a long hit streak is one span,
 * not one per reference.
 *
 * writeChromeJson() renders the spans in the Chrome trace-event format
 * (the JSON consumed by chrome://tracing and Perfetto): processors appear
 * as threads of a "processors" process, each metalock word as a thread of
 * a "metalocks" process, and one simulated cycle maps to one microsecond
 * of trace time. Consecutive runs observed by the same Timeline (warm
 * -start chains) are laid out sequentially on the time axis.
 */

#ifndef DSS_OBS_TIMELINE_HH
#define DSS_OBS_TIMELINE_HH

#include <map>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "sim/addr.hh"

namespace dss {
namespace obs {

/** What a span's interval was spent on. */
enum class SpanKind : std::uint8_t {
    Busy,     ///< issue + compute
    Mem,      ///< read-miss or write-buffer-overflow stall
    Sync,     ///< spinning on a metalock (MSync)
    LockHold, ///< a metalock was held (critical section)
    LockSpin  ///< a processor spun on this metalock
};

std::string_view spanKindName(SpanKind k);

struct Span
{
    sim::ProcId proc;
    SpanKind kind;
    sim::Cycles start; ///< timeline time (run offset already applied)
    sim::Cycles end;
};

class Timeline
{
  public:
    /**
     * Machine interface: a new run starts; its clock restarts at zero, so
     * subsequent spans are offset past everything recorded so far.
     */
    void beginRun();

    /** Record [start, end) of @p kind on processor @p p (run-local times).
     * Zero-length spans and out-of-order overlaps are ignored. */
    void exec(sim::ProcId p, SpanKind k, sim::Cycles start, sim::Cycles end);

    /** Record a hold/spin span on the metalock word @p w. */
    void lockSpan(sim::Addr w, sim::DataClass cls, SpanKind k,
                  sim::ProcId p, sim::Cycles start, sim::Cycles end);

    std::size_t spanCount() const;

    /** Spans of processor @p p, in time order (tests, analysis). */
    const std::vector<Span> &procSpans(sim::ProcId p) const;

    /** Chrome trace-event JSON document. */
    Json toChromeJson() const;
    void writeChromeJson(std::ostream &os) const;

  private:
    struct LockLane
    {
        sim::DataClass cls;
        std::vector<Span> spans;
    };

    sim::Cycles offset_ = 0;   ///< run offset added to incoming times
    sim::Cycles maxEnd_ = 0;   ///< latest timeline time seen
    std::vector<sim::Cycles> runStarts_;
    std::vector<std::vector<Span>> procs_;
    std::map<sim::Addr, LockLane> locks_;
};

} // namespace obs
} // namespace dss

#endif // DSS_OBS_TIMELINE_HH
