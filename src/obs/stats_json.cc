#include "obs/stats_json.hh"

namespace dss {
namespace obs {

Json
toJson(const sim::MissTable &t)
{
    Json out = Json::object();
    Json classes = Json::object();
    for (std::size_t c = 0; c < sim::kNumDataClasses; ++c) {
        auto cls = static_cast<sim::DataClass>(c);
        if (t.byClass(cls) == 0)
            continue;
        Json row = Json::object();
        for (std::size_t m = 0; m < sim::kNumMissTypes; ++m) {
            auto mt = static_cast<sim::MissType>(m);
            row[std::string(sim::missTypeName(mt))] = t.of(cls, mt);
        }
        row["total"] = t.byClass(cls);
        classes[std::string(sim::dataClassName(cls))] = std::move(row);
    }
    out["byClass"] = std::move(classes);
    Json groups = Json::object();
    for (std::size_t g = 0; g < sim::kNumClassGroups; ++g) {
        auto grp = static_cast<sim::ClassGroup>(g);
        if (t.byGroup(grp))
            groups[std::string(sim::classGroupName(grp))] = t.byGroup(grp);
    }
    out["byGroup"] = std::move(groups);
    out["total"] = t.total();
    return out;
}

Json
toJson(const sim::ProcStats &p)
{
    Json out = Json::object();
    out["busy"] = p.busy;
    out["memStall"] = p.memStall;
    out["syncStall"] = p.syncStall;
    out["totalCycles"] = p.totalCycles();
    Json groups = Json::object();
    for (std::size_t g = 0; g < sim::kNumClassGroups; ++g) {
        auto grp = static_cast<sim::ClassGroup>(g);
        groups[std::string(sim::classGroupName(grp))] =
            p.memStallByGroup[g];
    }
    out["memStallByGroup"] = std::move(groups);
    out["reads"] = p.reads;
    out["writes"] = p.writes;
    out["assumedHitReads"] = p.assumedHitReads;
    out["l1Hits"] = p.l1Hits();
    out["l2Accesses"] = p.l2Accesses();
    out["l2Hits"] = p.l2Hits();
    out["wbOverflows"] = p.wbOverflows;
    out["prefetchesIssued"] = p.prefetchesIssued;
    out["prefetchesUseful"] = p.prefetchesUseful;
    out["l1MissRatePct"] = 100.0 * p.l1MissRate();
    out["l2GlobalMissRatePct"] = 100.0 * p.l2GlobalMissRate();
    out["l1Misses"] = toJson(p.l1Misses());
    out["l2Misses"] = toJson(p.l2Misses());
    return out;
}

Json
toJson(const sim::SimStats &s)
{
    Json out = Json::object();
    Json procs = Json::array();
    for (const sim::ProcStats &p : s.procs)
        procs.push(toJson(p));
    out["procs"] = std::move(procs);

    const sim::ProcStats agg = s.aggregate();
    out["aggregate"] = toJson(agg);
    out["executionTime"] = s.executionTime();

    // Fig 6a fractions — same arithmetic as harness::timeBreakdown().
    Json breakdown = Json::object();
    const double total = static_cast<double>(agg.totalCycles());
    breakdown["totalCycles"] = agg.totalCycles();
    breakdown["busyPct"] =
        total > 0 ? 100.0 * static_cast<double>(agg.busy) / total : 0.0;
    breakdown["memPct"] =
        total > 0 ? 100.0 * static_cast<double>(agg.memStall) / total : 0.0;
    breakdown["msyncPct"] =
        total > 0 ? 100.0 * static_cast<double>(agg.syncStall) / total
                  : 0.0;
    out["breakdown"] = std::move(breakdown);

    // Fig 6b fractions — same arithmetic as harness::memBreakdown().
    Json mem = Json::object();
    const double totalMem = static_cast<double>(agg.memStall);
    for (std::size_t g = 0; g < sim::kNumClassGroups; ++g) {
        auto grp = static_cast<sim::ClassGroup>(g);
        mem[std::string(sim::classGroupName(grp))] =
            totalMem > 0
                ? 100.0 * static_cast<double>(agg.memStallByGroup[g]) /
                      totalMem
                : 0.0;
    }
    out["memByGroupPct"] = std::move(mem);
    return out;
}

Json
toJson(const sim::CacheConfig &c)
{
    Json out = Json::object();
    out["sizeBytes"] = c.sizeBytes;
    out["lineBytes"] = c.lineBytes;
    out["assoc"] = c.assoc;
    return out;
}

Json
toJson(const sim::LatencyConfig &l)
{
    Json out = Json::object();
    out["l1Hit"] = l.l1Hit;
    out["l2Hit"] = l.l2Hit;
    out["localMem"] = l.localMem;
    out["remote2Hop"] = l.remote2Hop;
    out["remote3Hop"] = l.remote3Hop;
    out["controllerOccupancy"] = l.controllerOccupancy;
    out["memBytesPerCycle"] = l.memBytesPerCycle;
    out["ctrlBytesPerCycle"] = l.ctrlBytesPerCycle;
    return out;
}

Json
toJson(const sim::MachineConfig &m)
{
    Json out = Json::object();
    out["nprocs"] = m.nprocs;
    // The two-level names are pinned by the golden reports; deeper
    // chains append the extra levels without disturbing them.
    out["l1"] = toJson(m.l1());
    out["l2"] = toJson(m.l2());
    if (m.numLevels() > 2) {
        Json levels = Json::array();
        for (const sim::LevelConfig &lc : m.levels) {
            Json lvl = toJson(static_cast<const sim::CacheConfig &>(lc));
            lvl["hitCycles"] = lc.hitCycles;
            lvl["shared"] = lc.shared;
            levels.push(std::move(lvl));
        }
        out["levels"] = std::move(levels);
    }
    out["writeBufferEntries"] = m.writeBufferEntries;
    out["pageBytes"] = m.pageBytes;
    out["latency"] = toJson(m.lat);
    out["prefetchData"] = m.prefetchData;
    out["prefetchDegree"] = m.prefetchDegree;
    out["issueCyclesPerRef"] = m.issueCyclesPerRef;
    return out;
}

} // namespace obs
} // namespace dss
