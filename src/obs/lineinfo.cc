#include "obs/lineinfo.hh"

#include <stdexcept>

namespace dss {
namespace obs {

void
RegionMap::insert(sim::Addr base, sim::Addr end, std::size_t stride,
                  std::string label)
{
    if (end <= base)
        throw std::invalid_argument("RegionMap: empty region '" + label +
                                    "'");
    // Reject overlap with the nearest regions on either side.
    auto next = regions_.lower_bound(base);
    if (next != regions_.end() && next->first < end)
        throw std::invalid_argument("RegionMap: '" + label +
                                    "' overlaps '" + next->second.label +
                                    "'");
    if (next != regions_.begin()) {
        auto prev = std::prev(next);
        if (prev->second.end > base)
            throw std::invalid_argument("RegionMap: '" + label +
                                        "' overlaps '" +
                                        prev->second.label + "'");
    }
    regions_.emplace(base, Region{end, stride, std::move(label)});
}

void
RegionMap::add(sim::Addr base, std::size_t bytes, std::string label)
{
    insert(base, base + bytes, 0, std::move(label));
}

void
RegionMap::addIndexed(sim::Addr base, std::size_t count, std::size_t stride,
                      std::string label)
{
    if (stride == 0)
        throw std::invalid_argument("RegionMap: zero stride for '" + label +
                                    "'");
    insert(base, base + count * stride, stride, std::move(label));
}

std::string
RegionMap::resolve(sim::Addr addr) const
{
    auto it = regions_.upper_bound(addr);
    if (it == regions_.begin())
        return {};
    --it;
    const Region &r = it->second;
    if (addr >= r.end)
        return {};
    if (r.stride == 0)
        return r.label;
    return r.label + " " + std::to_string((addr - it->first) / r.stride);
}

} // namespace obs
} // namespace dss
