/**
 * @file
 * JSON serialization of the simulator's statistics and configuration.
 *
 * toJson(SimStats) embeds the derived quantities the paper's figures are
 * built from — the Fig 6a Busy/Mem/MSync fractions, the Fig 6b memory
 * -stall decomposition by structure group, and the Fig 7 miss tables — so
 * a run's JSON file is self-contained: no consumer needs to re-derive the
 * breakdowns from raw counters (though the raw counters are all there
 * too). The percentage fields use the same arithmetic as the text tables
 * in harness/report.cc, which a test pins down.
 */

#ifndef DSS_OBS_STATS_JSON_HH
#define DSS_OBS_STATS_JSON_HH

#include "obs/json.hh"
#include "sim/machine.hh"
#include "sim/stats.hh"

namespace dss {
namespace obs {

/** Per class x type miss counts; zero rows omitted, totals included. */
Json toJson(const sim::MissTable &t);

/** Raw counters of one processor plus its derived miss rates. */
Json toJson(const sim::ProcStats &p);

/**
 * Whole-run statistics: per-processor stats, the aggregate, execution
 * time, and the figure-style breakdowns (busyPct/memPct/msyncPct of total
 * time; memByGroupPct of memory stall).
 */
Json toJson(const sim::SimStats &s);

Json toJson(const sim::CacheConfig &c);
Json toJson(const sim::LatencyConfig &l);
Json toJson(const sim::MachineConfig &m);

} // namespace obs
} // namespace dss

#endif // DSS_OBS_STATS_JSON_HH
