#include "obs/pageprof.hh"

#include <stdexcept>

namespace dss {
namespace obs {

PageProfile::PageProfile(std::size_t page_bytes, sim::Addr private_base)
    : pageBytes_(page_bytes), privateBase_(private_base)
{
    if (pageBytes_ == 0)
        throw std::invalid_argument("PageProfile: zero page size");
}

void
PageProfile::addTraces(const std::vector<const sim::TraceStream *> &traces)
{
    for (std::size_t p = 0; p < traces.size(); ++p) {
        if (!traces[p])
            continue;
        for (const sim::TraceEntry &e : traces[p]->entries()) {
            if (e.op == sim::Op::Busy || e.addr >= privateBase_)
                continue;
            const sim::Addr page = e.addr - e.addr % pageBytes_;
            std::vector<std::uint64_t> &row = counts_[page];
            if (row.size() <= p)
                row.resize(p + 1, 0);
            ++row[p];
        }
    }
}

std::vector<sim::PageAccessCounts>
PageProfile::toCounts() const
{
    std::vector<sim::PageAccessCounts> out;
    out.reserve(counts_.size());
    for (const auto &[page, row] : counts_)
        out.push_back({page, row});
    return out;
}

Json
PageProfile::toJson() const
{
    Json doc = Json::object();
    doc["page_bytes"] = pageBytes_;
    Json pages = Json::array();
    for (const auto &[page, row] : counts_) {
        Json entry = Json::object();
        entry["page"] = page;
        Json cj = Json::array();
        for (std::uint64_t c : row)
            cj.push(c);
        entry["counts"] = std::move(cj);
        pages.push(std::move(entry));
    }
    doc["pages"] = std::move(pages);
    return doc;
}

std::vector<sim::PageAccessCounts>
PageProfile::parse(const Json &doc, std::size_t expect_page_bytes)
{
    const Json *pb = doc.find("page_bytes");
    const Json *pages = doc.find("pages");
    if (!pb || !pb->isNumber() || !pages || !pages->isArray())
        throw std::runtime_error(
            "page profile: expected {page_bytes, pages[]}");
    if (expect_page_bytes != 0 && pb->asUint() != expect_page_bytes)
        throw std::runtime_error(
            "page profile: page_bytes " + std::to_string(pb->asUint()) +
            " does not match the machine's " +
            std::to_string(expect_page_bytes));
    std::vector<sim::PageAccessCounts> out;
    out.reserve(pages->size());
    for (std::size_t i = 0; i < pages->size(); ++i) {
        const Json &entry = pages->at(i);
        const Json *page = entry.find("page");
        const Json *counts = entry.find("counts");
        if (!page || !page->isNumber() || !counts || !counts->isArray())
            throw std::runtime_error(
                "page profile: expected {page, counts[]} entries");
        sim::PageAccessCounts pc;
        pc.page = page->asUint();
        pc.counts.reserve(counts->size());
        for (std::size_t q = 0; q < counts->size(); ++q)
            pc.counts.push_back(counts->at(q).asUint());
        out.push_back(std::move(pc));
    }
    return out;
}

} // namespace obs
} // namespace dss
