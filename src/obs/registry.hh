/**
 * @file
 * Counter/gauge registry with hierarchical dotted names.
 *
 * Simulator components (Machine, Cache, Directory, WriteBuffer, LockTable)
 * register named views over their internal counters, e.g.
 * "proc0.l1.miss.cold.index" or "dir.home2.queue_cycles". Registration
 * stores a *reader* — a callback bound to the live component — so one
 * registry snapshot reflects the component state at the moment it is read,
 * in the style of kernel monitors like DAMON: cheap to register, paid for
 * only when sampled.
 *
 * Names must be unique; registering a duplicate throws, which catches
 * wiring mistakes (two components claiming the same metric) early.
 */

#ifndef DSS_OBS_REGISTRY_HH
#define DSS_OBS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/json.hh"

namespace dss {
namespace obs {

class Registry
{
  public:
    using CounterFn = std::function<std::uint64_t()>;
    using GaugeFn = std::function<double()>;

    /**
     * Register a monotonically increasing counter under @p name.
     * @throw std::invalid_argument if @p name is already taken.
     */
    void addCounter(const std::string &name, CounterFn read);

    /** Register a point-in-time double-valued gauge under @p name. */
    void addGauge(const std::string &name, GaugeFn read);

    bool contains(const std::string &name) const;
    std::size_t size() const { return entries_.size(); }

    /** Current value of a registered counter; throws if unknown. */
    std::uint64_t counterValue(const std::string &name) const;

    /** Current value of a registered gauge; throws if unknown. */
    double gaugeValue(const std::string &name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    /** Names of the counters only (no gauges), sorted. */
    std::vector<std::string> counterNames() const;

    /**
     * Snapshot every metric into a flat JSON object keyed by the dotted
     * names, sorted so output is diffable.
     */
    Json toJson() const;

  private:
    struct Entry
    {
        bool isCounter;
        CounterFn counter;
        GaugeFn gauge;
    };

    const Entry &entryOf(const std::string &name) const;

    std::unordered_map<std::string, Entry> entries_;
};

/** Join name segments with '.', skipping empty ones ("proc0" + "l1"). */
std::string metricName(const std::string &prefix, const std::string &leaf);

} // namespace obs
} // namespace dss

#endif // DSS_OBS_REGISTRY_HH
