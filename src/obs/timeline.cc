#include "obs/timeline.hh"

#include <ostream>
#include <sstream>

namespace dss {
namespace obs {

std::string_view
spanKindName(SpanKind k)
{
    switch (k) {
      case SpanKind::Busy: return "busy";
      case SpanKind::Mem: return "mem";
      case SpanKind::Sync: return "sync";
      case SpanKind::LockHold: return "hold";
      case SpanKind::LockSpin: return "spin";
    }
    return "?";
}

void
Timeline::beginRun()
{
    offset_ = maxEnd_;
    runStarts_.push_back(offset_);
}

void
Timeline::exec(sim::ProcId p, SpanKind k, sim::Cycles start, sim::Cycles end)
{
    if (end <= start)
        return;
    start += offset_;
    end += offset_;
    if (procs_.size() <= p)
        procs_.resize(p + 1);
    std::vector<Span> &lane = procs_[p];
    // Coalesce contiguous same-state spans, but never across a run
    // boundary: a span that started in an earlier run stays separate.
    if (!lane.empty() && lane.back().kind == k &&
        lane.back().end == start && lane.back().start >= offset_) {
        lane.back().end = end;
    } else if (!lane.empty() && lane.back().end > start) {
        return; // overlap would corrupt the lane; drop defensively
    } else {
        lane.push_back({p, k, start, end});
    }
    if (end > maxEnd_)
        maxEnd_ = end;
}

void
Timeline::lockSpan(sim::Addr w, sim::DataClass cls, SpanKind k,
                   sim::ProcId p, sim::Cycles start, sim::Cycles end)
{
    if (end <= start)
        return;
    start += offset_;
    end += offset_;
    auto [it, inserted] = locks_.try_emplace(w, LockLane{cls, {}});
    it->second.spans.push_back({p, k, start, end});
    if (end > maxEnd_)
        maxEnd_ = end;
}

std::size_t
Timeline::spanCount() const
{
    std::size_t n = 0;
    for (const auto &lane : procs_)
        n += lane.size();
    for (const auto &[w, lane] : locks_)
        n += lane.spans.size();
    return n;
}

const std::vector<Span> &
Timeline::procSpans(sim::ProcId p) const
{
    static const std::vector<Span> kEmpty;
    return p < procs_.size() ? procs_[p] : kEmpty;
}

namespace {

constexpr int kProcPid = 1;
constexpr int kLockPid = 2;

Json
metaEvent(const char *what, int pid, int tid, const std::string &name)
{
    Json e = Json::object();
    e["name"] = what;
    e["ph"] = "M";
    e["pid"] = pid;
    e["tid"] = tid;
    Json args = Json::object();
    args["name"] = name;
    e["args"] = std::move(args);
    return e;
}

Json
completeEvent(const std::string &name, const char *cat, int pid, int tid,
              const Span &s)
{
    Json e = Json::object();
    e["name"] = name;
    e["cat"] = cat;
    e["ph"] = "X";
    e["pid"] = pid;
    e["tid"] = tid;
    e["ts"] = s.start; // 1 simulated cycle == 1 trace microsecond
    e["dur"] = s.end - s.start;
    return e;
}

std::string
hexAddr(sim::Addr a)
{
    std::ostringstream ss;
    ss << "0x" << std::hex << a;
    return ss.str();
}

} // namespace

Json
Timeline::toChromeJson() const
{
    Json events = Json::array();
    events.push(metaEvent("process_name", kProcPid, 0, "processors"));
    if (!locks_.empty())
        events.push(metaEvent("process_name", kLockPid, 0, "metalocks"));

    for (std::size_t p = 0; p < procs_.size(); ++p) {
        events.push(metaEvent("thread_name", kProcPid, static_cast<int>(p),
                              "proc" + std::to_string(p)));
        for (const Span &s : procs_[p]) {
            events.push(completeEvent(std::string(spanKindName(s.kind)),
                                      "exec", kProcPid,
                                      static_cast<int>(p), s));
        }
    }

    int lockTid = 0;
    for (const auto &[word, lane] : locks_) {
        events.push(metaEvent(
            "thread_name", kLockPid, lockTid,
            std::string(sim::dataClassName(lane.cls)) + " " +
                hexAddr(word)));
        for (const Span &s : lane.spans) {
            Json e = completeEvent(std::string(spanKindName(s.kind)) +
                                       " p" + std::to_string(s.proc),
                                   "lock", kLockPid, lockTid, s);
            Json args = Json::object();
            args["proc"] = s.proc;
            args["word"] = hexAddr(word);
            e["args"] = std::move(args);
            events.push(std::move(e));
        }
        ++lockTid;
    }

    Json doc = Json::object();
    doc["traceEvents"] = std::move(events);
    doc["displayTimeUnit"] = "ms";
    Json runs = Json::array();
    for (sim::Cycles r : runStarts_)
        runs.push(r);
    doc["runStartsUs"] = std::move(runs);
    return doc;
}

void
Timeline::writeChromeJson(std::ostream &os) const
{
    toChromeJson().dump(os, 1);
}

} // namespace obs
} // namespace dss
