#include "obs/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dss {
namespace obs {

Json::Type
Json::type() const
{
    switch (value_.index()) {
      case 0: return Type::Null;
      case 1: return Type::Bool;
      case 2: return Type::Int;
      case 3: return Type::Uint;
      case 4: return Type::Double;
      case 5: return Type::String;
      case 6: return Type::Array;
      default: return Type::Object;
    }
}

bool
Json::isNumber() const
{
    Type t = type();
    return t == Type::Int || t == Type::Uint || t == Type::Double;
}

bool
Json::asBool() const
{
    if (auto *b = std::get_if<bool>(&value_))
        return *b;
    throw std::runtime_error("Json: not a bool");
}

double
Json::asDouble() const
{
    switch (type()) {
      case Type::Int: return static_cast<double>(std::get<std::int64_t>(value_));
      case Type::Uint:
        return static_cast<double>(std::get<std::uint64_t>(value_));
      case Type::Double: return std::get<double>(value_);
      default: throw std::runtime_error("Json: not a number");
    }
}

std::int64_t
Json::asInt() const
{
    switch (type()) {
      case Type::Int: return std::get<std::int64_t>(value_);
      case Type::Uint:
        return static_cast<std::int64_t>(std::get<std::uint64_t>(value_));
      case Type::Double:
        return static_cast<std::int64_t>(std::get<double>(value_));
      default: throw std::runtime_error("Json: not a number");
    }
}

std::uint64_t
Json::asUint() const
{
    switch (type()) {
      case Type::Int:
        return static_cast<std::uint64_t>(std::get<std::int64_t>(value_));
      case Type::Uint: return std::get<std::uint64_t>(value_);
      case Type::Double:
        return static_cast<std::uint64_t>(std::get<double>(value_));
      default: throw std::runtime_error("Json: not a number");
    }
}

const std::string &
Json::asString() const
{
    if (auto *s = std::get_if<std::string>(&value_))
        return *s;
    throw std::runtime_error("Json: not a string");
}

Json &
Json::operator[](const std::string &key)
{
    if (type() == Type::Null)
        value_ = Object{};
    auto *obj = std::get_if<Object>(&value_);
    if (!obj)
        throw std::runtime_error("Json: not an object");
    for (auto &[k, v] : *obj)
        if (k == key)
            return v;
    obj->emplace_back(key, Json());
    return obj->back().second;
}

const Json *
Json::find(const std::string &key) const
{
    auto *obj = std::get_if<Object>(&value_);
    if (!obj)
        return nullptr;
    for (const auto &[k, v] : *obj)
        if (k == key)
            return &v;
    return nullptr;
}

std::size_t
Json::size() const
{
    if (auto *a = std::get_if<Array>(&value_))
        return a->size();
    if (auto *o = std::get_if<Object>(&value_))
        return o->size();
    return 0;
}

Json &
Json::push(Json v)
{
    if (type() == Type::Null)
        value_ = Array{};
    auto *a = std::get_if<Array>(&value_);
    if (!a)
        throw std::runtime_error("Json: not an array");
    a->push_back(std::move(v));
    return *this;
}

const Json &
Json::at(std::size_t i) const
{
    auto *a = std::get_if<Array>(&value_);
    if (!a || i >= a->size())
        throw std::runtime_error("Json: bad array index");
    return (*a)[i];
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    auto *o = std::get_if<Object>(&value_);
    if (!o)
        throw std::runtime_error("Json: not an object");
    return *o;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

namespace {

void
writeDouble(std::ostream &os, double v)
{
    // Non-finite values are not representable in JSON; emit null so the
    // output always parses (the reporting layer guards these upstream).
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    // Trim to the shortest representation that round-trips.
    for (int prec = 1; prec < 17; ++prec) {
        char t[32];
        std::snprintf(t, sizeof t, "%.*g", prec, v);
        if (std::strtod(t, nullptr) == v) {
            os << t;
            return;
        }
    }
    os << buf;
}

} // namespace

void
Json::dumpTo(std::ostream &os, int indent, int depth) const
{
    const bool pretty = indent >= 0;
    auto newline = [&](int d) {
        if (pretty)
            os << '\n' << std::string(static_cast<std::size_t>(indent * d),
                                      ' ');
    };
    switch (type()) {
      case Type::Null: os << "null"; break;
      case Type::Bool: os << (std::get<bool>(value_) ? "true" : "false");
        break;
      case Type::Int: os << std::get<std::int64_t>(value_); break;
      case Type::Uint: os << std::get<std::uint64_t>(value_); break;
      case Type::Double: writeDouble(os, std::get<double>(value_)); break;
      case Type::String:
        os << '"' << jsonEscape(std::get<std::string>(value_)) << '"';
        break;
      case Type::Array: {
        const auto &a = std::get<Array>(value_);
        if (a.empty()) {
            os << "[]";
            break;
        }
        os << '[';
        for (std::size_t i = 0; i < a.size(); ++i) {
            if (i)
                os << ',';
            newline(depth + 1);
            a[i].dumpTo(os, indent, depth + 1);
        }
        newline(depth);
        os << ']';
        break;
      }
      case Type::Object: {
        const auto &o = std::get<Object>(value_);
        if (o.empty()) {
            os << "{}";
            break;
        }
        os << '{';
        for (std::size_t i = 0; i < o.size(); ++i) {
            if (i)
                os << ',';
            newline(depth + 1);
            os << '"' << jsonEscape(o[i].first) << "\":";
            if (pretty)
                os << ' ';
            o[i].second.dumpTo(os, indent, depth + 1);
        }
        newline(depth);
        os << '}';
        break;
      }
    }
}

void
Json::dump(std::ostream &os, int indent) const
{
    dumpTo(os, indent, 0);
}

std::string
Json::dump(int indent) const
{
    std::ostringstream os;
    dumpTo(os, indent, 0);
    return os.str();
}

namespace {

/** Recursive-descent JSON parser over a string view. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    Json
    parse()
    {
        Json v = value();
        skipWs();
        if (pos_ != s_.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("Json::parse: " + what + " at offset " +
                                 std::to_string(pos_));
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= s_.size())
            fail("unexpected end of input");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t n = std::char_traits<char>::length(lit);
        if (s_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    unsigned
    hex4()
    {
        if (pos_ + 4 > s_.size())
            fail("truncated \\u escape");
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            char c = s_[pos_++];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("bad hex digit in \\u escape");
        }
        return v;
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            char c = s_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                if (static_cast<unsigned char>(c) < 0x20)
                    fail("raw control character in string");
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                fail("truncated escape");
            char e = s_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned cp = hex4();
                // Combine surrogate pairs into one code point.
                if (cp >= 0xd800 && cp <= 0xdbff &&
                    s_.compare(pos_, 2, "\\u") == 0) {
                    pos_ += 2;
                    unsigned lo = hex4();
                    if (lo >= 0xdc00 && lo <= 0xdfff)
                        cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                    else
                        fail("unpaired surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default: fail("bad escape character");
            }
        }
    }

    Json
    number()
    {
        std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        bool integral = true;
        while (pos_ < s_.size()) {
            char c = s_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        std::string tok = s_.substr(start, pos_ - start);
        if (tok.empty() || tok == "-")
            fail("bad number");
        errno = 0;
        if (integral) {
            if (tok[0] != '-') {
                char *end = nullptr;
                std::uint64_t u = std::strtoull(tok.c_str(), &end, 10);
                if (errno == 0 && end && *end == '\0')
                    return Json(u);
            } else {
                char *end = nullptr;
                std::int64_t i = std::strtoll(tok.c_str(), &end, 10);
                if (errno == 0 && end && *end == '\0')
                    return Json(i);
            }
        }
        char *end = nullptr;
        double d = std::strtod(tok.c_str(), &end);
        if (!end || *end != '\0')
            fail("bad number");
        return Json(d);
    }

    Json
    value()
    {
        char c = peek();
        switch (c) {
          case '{': {
            ++pos_;
            Json obj = Json::object();
            if (peek() == '}') {
                ++pos_;
                return obj;
            }
            for (;;) {
                skipWs();
                std::string key = string();
                expect(':');
                obj[key] = value();
                char n = peek();
                ++pos_;
                if (n == '}')
                    return obj;
                if (n != ',')
                    fail("expected ',' or '}'");
            }
          }
          case '[': {
            ++pos_;
            Json arr = Json::array();
            if (peek() == ']') {
                ++pos_;
                return arr;
            }
            for (;;) {
                arr.push(value());
                char n = peek();
                ++pos_;
                if (n == ']')
                    return arr;
                if (n != ',')
                    fail("expected ',' or ']'");
            }
          }
          case '"': return Json(string());
          case 't':
            if (consumeLiteral("true"))
                return Json(true);
            fail("bad literal");
          case 'f':
            if (consumeLiteral("false"))
                return Json(false);
            fail("bad literal");
          case 'n':
            if (consumeLiteral("null"))
                return Json(nullptr);
            fail("bad literal");
          default: return number();
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace obs
} // namespace dss
