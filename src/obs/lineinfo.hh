/**
 * @file
 * Address-to-structure symbolization for the line-level memory profiler.
 *
 * The db layer registers every shared region it allocates — heap blocks,
 * B-tree pages, buffer descriptors, lookup/lock/xid hash buckets, the
 * metalock words — into a RegionMap. The profiler then resolves a cache
 * line to a human-readable owner ("lineitem heap blk 412", "lock hash
 * bucket 7", "orders(o_orderdate) btree inner lvl 2 blk 5"), so hot-line
 * reports read like the paper's Figure 4 at line granularity.
 */

#ifndef DSS_OBS_LINEINFO_HH
#define DSS_OBS_LINEINFO_HH

#include <cstdint>
#include <map>
#include <string>

#include "sim/addr.hh"

namespace dss {
namespace obs {

/**
 * Ordered map from address ranges to structure labels. Regions must not
 * overlap (registration throws), which catches double-registration — e.g.
 * a B-tree labelling a heap block — at wiring time.
 */
class RegionMap
{
  public:
    /** Register [base, base+bytes) as @p label. */
    void add(sim::Addr base, std::size_t bytes, std::string label);

    /**
     * Register @p count elements of @p stride bytes starting at @p base;
     * element k resolves to "<label> <k>" ("lock hash bucket 7").
     */
    void addIndexed(sim::Addr base, std::size_t count, std::size_t stride,
                    std::string label);

    /**
     * Label of the region containing @p addr, with the element index
     * appended for indexed regions. Empty string if unmapped.
     */
    std::string resolve(sim::Addr addr) const;

    std::size_t size() const { return regions_.size(); }
    bool empty() const { return regions_.empty(); }

  private:
    struct Region
    {
        sim::Addr end = 0;       ///< one past the last byte
        std::size_t stride = 0;  ///< element size; 0 = flat region
        std::string label;
    };

    void insert(sim::Addr base, sim::Addr end, std::size_t stride,
                std::string label);

    std::map<sim::Addr, Region> regions_; ///< keyed by base address
};

} // namespace obs
} // namespace dss

#endif // DSS_OBS_LINEINFO_HH
