#include "obs/sampler.hh"

#include <stdexcept>

#include "obs/registry.hh"

namespace dss {
namespace obs {

Sampler::Sampler(sim::Cycles epoch_cycles) : epochCycles_(epoch_cycles)
{
    if (epoch_cycles == 0)
        throw std::invalid_argument("Sampler: epoch must be > 0 cycles");
}

void
Sampler::attachRegistry(const Registry *reg)
{
    registry_ = reg;
    lastCounters_.clear();
    if (registry_) {
        for (const std::string &name : registry_->counterNames())
            lastCounters_[name] = registry_->counterValue(name);
    }
}

void
Sampler::beginRun(std::size_t nprocs)
{
    run_ = inRun_ ? run_ + 1 : run_;
    inRun_ = true;
    epochStart_ = 0;
    nextBoundary_ = epochCycles_;
    last_.assign(nprocs, sim::ProcStats{});
    if (registry_) {
        lastCounters_.clear();
        for (const std::string &name : registry_->counterNames())
            lastCounters_[name] = registry_->counterValue(name);
    }
}

void
Sampler::emit(sim::Cycles end, const std::vector<sim::ProcStats> &cumulative)
{
    EpochSample s;
    s.run = run_;
    s.start = epochStart_;
    s.end = end;
    s.procs.reserve(cumulative.size());
    for (std::size_t p = 0; p < cumulative.size(); ++p) {
        sim::ProcStats d = cumulative[p];
        if (p < last_.size())
            d -= last_[p];
        s.procs.push_back(std::move(d));
    }
    if (registry_) {
        // Re-enumerate the counter set every epoch: the registry may have
        // grown since the last tick, and a baseline keyed by name (rather
        // than a vector frozen at the first tick) reconciles any counter
        // registered mid-epoch against zero instead of dropping it.
        std::map<std::string, std::uint64_t> now;
        for (const std::string &name : registry_->counterNames())
            now[name] = registry_->counterValue(name);
        s.registrySize = registry_->size();
        for (const auto &[name, cur] : now) {
            auto it = lastCounters_.find(name);
            const std::uint64_t base =
                it != lastCounters_.end() ? it->second : 0;
            if (cur != base)
                s.counters.emplace_back(name, cur - base);
        }
        lastCounters_ = std::move(now);
    }
    samples_.push_back(std::move(s));
    last_ = cumulative;
    epochStart_ = end;
}

void
Sampler::sample(sim::Cycles min_clock,
                const std::vector<sim::ProcStats> &cumulative)
{
    if (!due(min_clock))
        return;
    // Close every boundary crossed as one interval (see header).
    const sim::Cycles end = (min_clock / epochCycles_) * epochCycles_;
    emit(end, cumulative);
    nextBoundary_ = end + epochCycles_;
}

void
Sampler::finishRun(sim::Cycles end,
                   const std::vector<sim::ProcStats> &cumulative)
{
    // The final partial epoch; skipped only if no time passed since the
    // last boundary and nothing changed (avoids empty trailing samples).
    if (end > epochStart_ || samples_.empty() ||
        samples_.back().run != run_)
        emit(end, cumulative);
}

sim::ProcStats
Sampler::runTotal(unsigned run, std::size_t p) const
{
    sim::ProcStats out;
    for (const EpochSample &s : samples_)
        if (s.run == run && p < s.procs.size())
            out += s.procs[p];
    return out;
}

std::uint64_t
Sampler::counterTotal(unsigned run, const std::string &name) const
{
    std::uint64_t out = 0;
    for (const EpochSample &s : samples_) {
        if (s.run != run)
            continue;
        for (const auto &[n, d] : s.counters)
            if (n == name)
                out += d;
    }
    return out;
}

Json
Sampler::toJson() const
{
    Json series = Json::object();
    series["epochCycles"] = epochCycles_;
    Json arr = Json::array();
    for (const EpochSample &s : samples_) {
        Json js = Json::object();
        js["run"] = s.run;
        js["start"] = s.start;
        js["end"] = s.end;
        Json procs = Json::array();
        for (const sim::ProcStats &d : s.procs) {
            Json jp = Json::object();
            jp["busy"] = d.busy;
            jp["memStall"] = d.memStall;
            jp["syncStall"] = d.syncStall;
            jp["reads"] = d.reads;
            jp["writes"] = d.writes;
            auto missByClass = [](const sim::MissTable &t) {
                Json m = Json::object();
                for (std::size_t c = 0; c < sim::kNumDataClasses; ++c) {
                    auto cls = static_cast<sim::DataClass>(c);
                    std::uint64_t n = t.byClass(cls);
                    if (n)
                        m[std::string(sim::dataClassName(cls))] = n;
                }
                return m;
            };
            jp["l1MissByClass"] = missByClass(d.l1Misses());
            jp["l2MissByClass"] = missByClass(d.l2Misses());
            procs.push(std::move(jp));
        }
        js["procs"] = std::move(procs);
        // Registry sampling is opt-in (attachRegistry): these members
        // only appear then, so the default epochs block — pinned by the
        // golden fixtures — is byte-identical without it.
        if (s.registrySize) {
            js["registrySize"] = s.registrySize;
            Json ctrs = Json::object();
            for (const auto &[name, d] : s.counters)
                ctrs[name] = d;
            js["counters"] = std::move(ctrs);
        }
        arr.push(std::move(js));
    }
    series["samples"] = std::move(arr);
    return series;
}

} // namespace obs
} // namespace dss
