#include "obs/registry.hh"

#include <algorithm>
#include <stdexcept>

namespace dss {
namespace obs {

void
Registry::addCounter(const std::string &name, CounterFn read)
{
    Entry e{true, std::move(read), nullptr};
    if (!entries_.emplace(name, std::move(e)).second)
        throw std::invalid_argument("Registry: duplicate metric '" + name +
                                    "'");
}

void
Registry::addGauge(const std::string &name, GaugeFn read)
{
    Entry e{false, nullptr, std::move(read)};
    if (!entries_.emplace(name, std::move(e)).second)
        throw std::invalid_argument("Registry: duplicate metric '" + name +
                                    "'");
}

bool
Registry::contains(const std::string &name) const
{
    return entries_.count(name) != 0;
}

const Registry::Entry &
Registry::entryOf(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end())
        throw std::invalid_argument("Registry: unknown metric '" + name +
                                    "'");
    return it->second;
}

std::uint64_t
Registry::counterValue(const std::string &name) const
{
    const Entry &e = entryOf(name);
    if (!e.isCounter)
        throw std::invalid_argument("Registry: '" + name +
                                    "' is not a counter");
    return e.counter();
}

double
Registry::gaugeValue(const std::string &name) const
{
    const Entry &e = entryOf(name);
    if (e.isCounter)
        throw std::invalid_argument("Registry: '" + name +
                                    "' is not a gauge");
    return e.gauge();
}

std::vector<std::string>
Registry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[name, e] : entries_)
        out.push_back(name);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::string>
Registry::counterNames() const
{
    std::vector<std::string> out;
    for (const auto &[name, e] : entries_)
        if (e.isCounter)
            out.push_back(name);
    std::sort(out.begin(), out.end());
    return out;
}

Json
Registry::toJson() const
{
    Json out = Json::object();
    for (const std::string &name : names()) {
        const Entry &e = entries_.at(name);
        if (e.isCounter)
            out[name] = e.counter();
        else
            out[name] = e.gauge();
    }
    return out;
}

std::string
metricName(const std::string &prefix, const std::string &leaf)
{
    if (prefix.empty())
        return leaf;
    if (leaf.empty())
        return prefix;
    return prefix + "." + leaf;
}

} // namespace obs
} // namespace dss
