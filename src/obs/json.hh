/**
 * @file
 * Dependency-free JSON value type with a writer and a parser.
 *
 * The observability layer serializes every run (stats, config, epoch
 * time-series, Chrome traces) as JSON so downstream tooling — regression
 * tracking, BENCH_*.json trajectories, plotting — can consume it without
 * scraping text tables. Objects preserve insertion order so emitted files
 * are stable and diffable across runs.
 *
 * Numbers keep their original flavour (signed / unsigned / double):
 * cycle counters are uint64 and are written as exact integers, never
 * routed through a double.
 */

#ifndef DSS_OBS_JSON_HH
#define DSS_OBS_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace dss {
namespace obs {

class Json
{
  public:
    enum class Type { Null, Bool, Int, Uint, Double, String, Array, Object };

    Json() : value_(nullptr) {}
    Json(std::nullptr_t) : value_(nullptr) {}
    Json(bool b) : value_(b) {}
    Json(int v) : value_(static_cast<std::int64_t>(v)) {}
    Json(long v) : value_(static_cast<std::int64_t>(v)) {}
    Json(long long v) : value_(static_cast<std::int64_t>(v)) {}
    Json(unsigned v) : value_(static_cast<std::uint64_t>(v)) {}
    Json(unsigned long v) : value_(static_cast<std::uint64_t>(v)) {}
    Json(unsigned long long v) : value_(static_cast<std::uint64_t>(v)) {}
    Json(double v) : value_(v) {}
    Json(const char *s) : value_(std::string(s)) {}
    Json(std::string s) : value_(std::move(s)) {}

    static Json array() { Json j; j.value_ = Array{}; return j; }
    static Json object() { Json j; j.value_ = Object{}; return j; }

    Type type() const;
    bool isNull() const { return type() == Type::Null; }
    bool isObject() const { return type() == Type::Object; }
    bool isArray() const { return type() == Type::Array; }
    bool isString() const { return type() == Type::String; }
    bool isNumber() const;

    bool asBool() const;
    /** Any numeric flavour, converted. */
    double asDouble() const;
    std::int64_t asInt() const;
    std::uint64_t asUint() const;
    const std::string &asString() const;

    /** Object: insert-or-fetch (insertion order preserved). */
    Json &operator[](const std::string &key);
    /** Object: member lookup, nullptr if absent (or not an object). */
    const Json *find(const std::string &key) const;
    /** Object/Array element count; 0 for scalars. */
    std::size_t size() const;

    /** Array: append. Turns a Null into an empty array first. */
    Json &push(Json v);
    /** Array: element access. */
    const Json &at(std::size_t i) const;

    /** Object members, in insertion order. */
    const std::vector<std::pair<std::string, Json>> &members() const;

    /**
     * Serialize. @p indent < 0 gives compact one-line output; >= 0 pretty
     * prints with that many spaces per level.
     */
    std::string dump(int indent = -1) const;
    void dump(std::ostream &os, int indent = -1) const;

    /** Parse @p text; throws std::runtime_error on malformed input. */
    static Json parse(const std::string &text);

    bool operator==(const Json &o) const { return value_ == o.value_; }

  private:
    using Array = std::vector<Json>;
    using Object = std::vector<std::pair<std::string, Json>>;
    using Value = std::variant<std::nullptr_t, bool, std::int64_t,
                               std::uint64_t, double, std::string, Array,
                               Object>;

    void dumpTo(std::ostream &os, int indent, int depth) const;

    Value value_;
};

/** Escape @p s for inclusion in a JSON string literal (no quotes added). */
std::string jsonEscape(const std::string &s);

} // namespace obs
} // namespace dss

#endif // DSS_OBS_JSON_HH
