#include "obs/memprof.hh"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace dss {
namespace obs {

MemProfile::MemProfile(const MemProfileConfig &cfg)
    : cfg_(cfg), tracker_(cfg.nprocs)
{
    if (cfg_.nprocs == 0 || cfg_.nprocs > sim::SharingTracker::kMaxProcs)
        throw std::invalid_argument("MemProfile: bad processor count");
    caches_.reserve(cfg_.nprocs);
    for (unsigned p = 0; p < cfg_.nprocs; ++p)
        caches_.push_back(std::make_unique<sim::Cache>(cfg_.l2));
    confBySet_.assign(caches_[0]->numSets(), 0);
}

void
MemProfile::addTraces(const std::vector<const sim::TraceStream *> &traces)
{
    if (traces.size() > cfg_.nprocs)
        throw std::invalid_argument("MemProfile: more traces than procs");
    // Canonical position-major round-robin merge: position k of every
    // processor before position k+1 of any. This fixed order — not the
    // Machine's timing-dependent interleaving — is what makes the profile
    // a pure function of the traces and thus engine/thread invariant.
    std::size_t max_len = 0;
    for (const sim::TraceStream *t : traces)
        max_len = std::max(max_len, t ? t->size() : 0);
    for (std::size_t pos = 0; pos < max_len; ++pos) {
        for (unsigned p = 0; p < traces.size(); ++p) {
            if (traces[p] && pos < traces[p]->size())
                replayOne(p, traces[p]->entries()[pos]);
        }
    }
}

void
MemProfile::replayOne(unsigned p, const sim::TraceEntry &e)
{
    switch (e.op) {
      case sim::Op::Read:
        read(p, e.addr, e.cls, e.size);
        break;
      case sim::Op::Write:
      // Lock operations read-modify-write the lock word; the store side
      // is what moves lines between caches, so both replay as writes.
      case sim::Op::LockAcq:
      case sim::Op::LockRel:
        write(p, e.addr, e.cls, e.size);
        break;
      case sim::Op::Busy:
        break;
    }
}

LineRecord &
MemProfile::recordOf(sim::Addr line, sim::DataClass cls)
{
    auto [it, fresh] = lines_.try_emplace(line);
    if (fresh)
        it->second.cls = cls;
    return it->second;
}

bool
MemProfile::isThreeHop(unsigned p, sim::Addr line) const
{
    // A miss is 3-hop when a third node holds the line dirty: requester
    // -> home directory -> owner. Home is the page's interleaved node.
    auto own = dirtyOwner_.find(line);
    if (own == dirtyOwner_.end() || own->second == p)
        return false;
    const unsigned home =
        static_cast<unsigned>((line / cfg_.pageBytes) % cfg_.nprocs);
    return home != p && home != own->second;
}

void
MemProfile::classifyMiss(LineRecord &rec, unsigned p, sim::Addr addr,
                         sim::Addr line, unsigned size, sim::MissType mt)
{
    switch (mt) {
      case sim::MissType::Cold:
        ++rec.cold;
        break;
      case sim::MissType::Conf:
        ++rec.conf;
        break;
      case sim::MissType::Cohe: {
        // Torrellas split: true sharing iff the words this access touches
        // intersect the words written remotely since p lost its copy.
        // Must run before recordStore/recordFill reset p's stale mask.
        const sim::WordMask wm =
            sim::wordMaskOf(addr, size, line, cfg_.l2.lineBytes);
        if (tracker_.isTrueSharing(p, line, wm))
            ++rec.coheTrue;
        else
            ++rec.coheFalse;
        break;
      }
      default:
        break;
    }
}

void
MemProfile::read(unsigned p, sim::Addr addr, sim::DataClass cls,
                 unsigned size)
{
    sim::Cache &c = *caches_[p];
    const sim::Addr line = c.lineAddrOf(addr);
    LineRecord &rec = recordOf(line, cls);
    LineRecord &agg = classes_[static_cast<std::size_t>(cls)];
    ++rec.accesses;
    ++rec.reads;
    ++agg.accesses;
    ++agg.reads;
    if (c.access(addr))
        return;
    const sim::MissType mt = c.classifyMiss(addr);
    classifyMiss(rec, p, addr, line, size, mt);
    classifyMiss(agg, p, addr, line, size, mt);
    if (mt == sim::MissType::Conf)
        ++confBySet_[(line / cfg_.l2.lineBytes) % confBySet_.size()];
    if (isThreeHop(p, line)) {
        ++rec.hop3;
        ++agg.hop3;
    }
    // A remote dirty owner supplies the data and downgrades to shared.
    auto own = dirtyOwner_.find(line);
    if (own != dirtyOwner_.end() && own->second != p) {
        caches_[own->second]->markClean(line);
        dirtyOwner_.erase(own);
    }
    const sim::Cache::Victim v = c.fill(addr, false);
    if (v.valid && v.dirty) {
        auto vo = dirtyOwner_.find(v.lineAddr);
        if (vo != dirtyOwner_.end() && vo->second == p)
            dirtyOwner_.erase(vo);
    }
    tracker_.recordFill(p, line);
}

void
MemProfile::write(unsigned p, sim::Addr addr, sim::DataClass cls,
                  unsigned size)
{
    sim::Cache &c = *caches_[p];
    const sim::Addr line = c.lineAddrOf(addr);
    LineRecord &rec = recordOf(line, cls);
    LineRecord &agg = classes_[static_cast<std::size_t>(cls)];
    ++rec.accesses;
    ++rec.writes;
    ++agg.accesses;
    ++agg.writes;
    const bool hit = c.access(addr, /*set_dirty=*/true);
    auto own = dirtyOwner_.find(line);
    const bool exclusive =
        hit && own != dirtyOwner_.end() && own->second == p;
    if (!hit) {
        const sim::MissType mt = c.classifyMiss(addr);
        classifyMiss(rec, p, addr, line, size, mt);
        classifyMiss(agg, p, addr, line, size, mt);
        if (mt == sim::MissType::Conf)
            ++confBySet_[(line / cfg_.l2.lineBytes) % confBySet_.size()];
        if (isThreeHop(p, line)) {
            ++rec.hop3;
            ++agg.hop3;
        }
    } else if (!exclusive) {
        ++rec.upgrades;
        ++agg.upgrades;
    }
    if (!exclusive) {
        // Gaining write permission invalidates every remote copy.
        for (unsigned q = 0; q < cfg_.nprocs; ++q) {
            if (q != p)
                caches_[q]->invalidate(line, /*coherence=*/true);
        }
        if (own != dirtyOwner_.end() && own->second != p)
            dirtyOwner_.erase(own);
    }
    dirtyOwner_[line] = p;
    if (!hit) {
        const sim::Cache::Victim v = c.fill(addr, true);
        if (v.valid && v.dirty) {
            auto vo = dirtyOwner_.find(v.lineAddr);
            if (vo != dirtyOwner_.end() && vo->second == p)
                dirtyOwner_.erase(vo);
        }
    }
    // After the true/false split above: this store now defines the new
    // last-writer words for every other processor.
    tracker_.recordStore(
        p, line, sim::wordMaskOf(addr, size, line, cfg_.l2.lineBytes));
}

LineRecord
MemProfile::totals() const
{
    LineRecord t;
    for (const auto &[addr, r] : lines_) {
        (void)addr;
        t.accesses += r.accesses;
        t.reads += r.reads;
        t.writes += r.writes;
        t.cold += r.cold;
        t.conf += r.conf;
        t.coheTrue += r.coheTrue;
        t.coheFalse += r.coheFalse;
        t.upgrades += r.upgrades;
        t.hop3 += r.hop3;
    }
    return t;
}

namespace {

void
fillRecord(Json &j, const LineRecord &r)
{
    j["accesses"] = r.accesses;
    j["reads"] = r.reads;
    j["writes"] = r.writes;
    j["cold"] = r.cold;
    j["conf"] = r.conf;
    j["coheTrue"] = r.coheTrue;
    j["coheFalse"] = r.coheFalse;
    j["upgrades"] = r.upgrades;
    j["hop3"] = r.hop3;
}

Json
recordJson(const LineRecord &r)
{
    Json j = Json::object();
    fillRecord(j, r);
    return j;
}

} // namespace

Json
MemProfile::toJson(unsigned top_n, const RegionMap *symbols) const
{
    Json doc = Json::object();
    doc["lineBytes"] = static_cast<std::uint64_t>(cfg_.l2.lineBytes);
    doc["nprocs"] = static_cast<std::uint64_t>(cfg_.nprocs);
    doc["linesTracked"] = static_cast<std::uint64_t>(lines_.size());

    // Hot lines: by misses desc, then address asc (total order => stable).
    std::vector<std::pair<sim::Addr, const LineRecord *>> ranked;
    ranked.reserve(lines_.size());
    for (const auto &[addr, r] : lines_) {
        if (r.misses() || r.upgrades)
            ranked.emplace_back(addr, &r);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  if (a.second->misses() != b.second->misses())
                      return a.second->misses() > b.second->misses();
                  return a.first < b.first;
              });
    if (ranked.size() > top_n)
        ranked.resize(top_n);
    Json lines = Json::array();
    for (const auto &[addr, r] : ranked) {
        Json out = Json::object();
        out["addr"] = addr;
        std::string sym;
        if (symbols)
            sym = symbols->resolve(addr);
        if (sym.empty())
            sym = std::string(sim::dataClassName(r->cls));
        out["symbol"] = std::move(sym);
        out["class"] = std::string(sim::dataClassName(r->cls));
        fillRecord(out, *r);
        lines.push(std::move(out));
    }
    doc["lines"] = std::move(lines);

    Json classes = Json::object();
    for (std::size_t cidx = 0; cidx < sim::kNumDataClasses; ++cidx) {
        const LineRecord &r = classes_[cidx];
        if (!r.accesses)
            continue;
        classes[std::string(
            sim::dataClassName(static_cast<sim::DataClass>(cidx)))] =
            recordJson(r);
    }
    doc["classes"] = std::move(classes);

    // Hot sets: conflict misses by set, desc then set asc.
    std::vector<std::pair<std::size_t, std::uint64_t>> sets;
    for (std::size_t s = 0; s < confBySet_.size(); ++s) {
        if (confBySet_[s])
            sets.emplace_back(s, confBySet_[s]);
    }
    std::sort(sets.begin(), sets.end(), [](const auto &a, const auto &b) {
        if (a.second != b.second)
            return a.second > b.second;
        return a.first < b.first;
    });
    if (sets.size() > top_n)
        sets.resize(top_n);
    Json jsets = Json::array();
    for (const auto &[s, n] : sets) {
        Json j = Json::object();
        j["set"] = static_cast<std::uint64_t>(s);
        j["conf"] = n;
        jsets.push(std::move(j));
    }
    doc["sets"] = std::move(jsets);

    doc["totals"] = recordJson(totals());
    return doc;
}

} // namespace obs
} // namespace dss
