/**
 * @file
 * Line-level memory profiler: per-cache-line access/miss histories with
 * true/false-sharing classification, hot-set conflict attribution and
 * structure symbolization.
 *
 * The Machine's ProcStats aggregate misses per data class; this profiler
 * answers the next question the paper's Section 5 raises — *which lines*
 * inside a class ping-pong, and whether their coherence misses are true
 * sharing (the words written remotely are the words read) or false
 * sharing (victims of line-granularity invalidation only).
 *
 * Determinism: the profiler never observes the Machine. It replays the
 * captured per-processor trace streams itself, in a canonical
 * position-major round-robin order (position 0 of every processor, then
 * position 1, ...), against its own model caches and SharingTracker.
 * Because traces are pure per-processor artifacts of the (read-only
 * TPC-D) database engine, the profile is a pure function of the traces:
 * bit-identical across `--engine seq|par`, any thread count, and reruns.
 *
 * The model is the machine's L2 level without L1 filtering or timing:
 * one model L2 per processor (machine geometry), MESI-style exclusivity
 * (a write invalidates every remote copy), word-granular last-writer
 * masks for the true/false split, and a dirty-owner map for 3-hop
 * detection. Absolute event counts therefore differ slightly from the
 * Machine's ProcStats (the L1 absorbs some read hits); the profile's
 * job is *ranking and classification*, which the L2-level replay
 * captures exactly.
 */

#ifndef DSS_OBS_MEMPROF_HH
#define DSS_OBS_MEMPROF_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "obs/json.hh"
#include "obs/lineinfo.hh"
#include "sim/addr.hh"
#include "sim/cache.hh"
#include "sim/sharing.hh"
#include "sim/trace.hh"

namespace dss {
namespace obs {

/** Geometry of the profiler's model replay. */
struct MemProfileConfig
{
    sim::CacheConfig l2;  ///< model cache geometry (use the machine's L2)
    unsigned nprocs = 4;
    /** Page size for home-node attribution (3-hop detection). */
    std::size_t pageBytes = 8 * 1024;
};

/** Everything recorded about one cache line. */
struct LineRecord
{
    sim::DataClass cls = sim::DataClass::Priv; ///< class of first access
    std::uint64_t accesses = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0; ///< includes lock acquire/release stores
    std::uint64_t cold = 0;
    std::uint64_t conf = 0;
    std::uint64_t coheTrue = 0;
    std::uint64_t coheFalse = 0;
    std::uint64_t upgrades = 0; ///< writes that hit a non-exclusive copy
    std::uint64_t hop3 = 0;     ///< misses served dirty from a third node

    std::uint64_t
    misses() const
    {
        return cold + conf + coheTrue + coheFalse;
    }
};

class MemProfile
{
  public:
    explicit MemProfile(const MemProfileConfig &cfg);

    /**
     * Replay @p traces (indexed by processor) through the model,
     * accumulating into the profile. Callable repeatedly: warm-start
     * chains keep the model caches warm across calls, mirroring the
     * Machine's warm runs.
     */
    void addTraces(const std::vector<const sim::TraceStream *> &traces);

    /** Per-line records, keyed by line address (deterministic order). */
    const std::map<sim::Addr, LineRecord> &lines() const { return lines_; }

    /** Aggregate record over every line (totals row). */
    LineRecord totals() const;

    /** Conflict misses attributed to cache set @p s. */
    std::uint64_t confOfSet(std::size_t s) const { return confBySet_[s]; }

    const MemProfileConfig &config() const { return cfg_; }

    /**
     * Serialize the profile:
     *  - "lines": top @p top_n lines ranked by misses (desc, then
     *    address asc), each with its symbol — resolved through
     *    @p symbols when given, falling back to the data-class name.
     *  - "classes": per-data-class access/miss/true/false/upgrade split.
     *  - "sets": top @p top_n conflict-miss sets (desc, then set asc).
     *  - "totals": whole-profile sums.
     * Byte-stable for identical inputs.
     */
    Json toJson(unsigned top_n, const RegionMap *symbols = nullptr) const;

  private:
    void replayOne(unsigned p, const sim::TraceEntry &e);
    void read(unsigned p, sim::Addr addr, sim::DataClass cls,
              unsigned size);
    void write(unsigned p, sim::Addr addr, sim::DataClass cls,
               unsigned size);
    LineRecord &recordOf(sim::Addr line, sim::DataClass cls);
    void classifyMiss(LineRecord &rec, unsigned p, sim::Addr addr,
                      sim::Addr line, unsigned size, sim::MissType mt);
    bool isThreeHop(unsigned p, sim::Addr line) const;

    MemProfileConfig cfg_;
    std::vector<std::unique_ptr<sim::Cache>> caches_; ///< one model L2/proc
    sim::SharingTracker tracker_;
    /** line address -> processor holding it dirty (model MESI owner). */
    std::map<sim::Addr, unsigned> dirtyOwner_;
    std::map<sim::Addr, LineRecord> lines_;
    /** Per-data-class aggregate (same fields as a line record). */
    LineRecord classes_[sim::kNumDataClasses];
    std::vector<std::uint64_t> confBySet_;
};

} // namespace obs
} // namespace dss

#endif // DSS_OBS_MEMPROF_HH
