/**
 * @file
 * Per-page access histogram collector — the first pass of the profile
 * placement policy (sim/placement.hh).
 *
 * A PageProfile counts, for every shared page, how many traced
 * references each processor makes to it. The counts are accumulated
 * straight from TraceStreams (order-independent sums, so the result is
 * trivially identical under either engine), serialized to JSON by the
 * --page-profile flag, and consumed by --placement=profile:<path> in a
 * second run, which homes each page at its majority accessor.
 */

#ifndef DSS_OBS_PAGEPROF_HH
#define DSS_OBS_PAGEPROF_HH

#include <cstdint>
#include <map>
#include <vector>

#include "obs/json.hh"
#include "sim/arena.hh"
#include "sim/placement.hh"
#include "sim/trace.hh"

namespace dss {
namespace obs {

class PageProfile
{
  public:
    /**
     * @param page_bytes Placement granularity (the machine's page size).
     * @param private_base Addresses at or above this are private and not
     *        profiled: every policy homes them at their owner already.
     */
    explicit PageProfile(std::size_t page_bytes = 8 * 1024,
                         sim::Addr private_base =
                             sim::AddressSpace::kPrivateBase);

    /**
     * Accumulate every non-Busy shared reference of @p traces, indexing
     * processors by trace position. Call once per simulated run (the
     * harness runner does, before retries, so each run counts once).
     */
    void addTraces(const std::vector<const sim::TraceStream *> &traces);

    /** Distinct shared pages seen so far. */
    std::size_t pageCount() const { return counts_.size(); }

    std::size_t pageBytes() const { return pageBytes_; }

    /** The histogram in the profile policy's input form. */
    std::vector<sim::PageAccessCounts> toCounts() const;

    /**
     * {"page_bytes": N, "pages": [{"page": addr, "counts": [..]}, ...]},
     * pages sorted by address — byte-stable for identical inputs.
     */
    Json toJson() const;

    /**
     * Parse a histogram document back into policy input. Throws
     * std::runtime_error on malformed documents or when @p expect_page_bytes
     * (if nonzero) does not match the document's page_bytes.
     */
    static std::vector<sim::PageAccessCounts>
    parse(const Json &doc, std::size_t expect_page_bytes = 0);

  private:
    std::size_t pageBytes_;
    sim::Addr privateBase_;
    /** page base address -> per-processor reference counts (ordered for
     * deterministic serialization). */
    std::map<sim::Addr, std::vector<std::uint64_t>> counts_;
};

} // namespace obs
} // namespace dss

#endif // DSS_OBS_PAGEPROF_HH
