/**
 * @file
 * Per-processor write buffer (16 entries in the baseline machine).
 *
 * The paper's processors do not stall on stores: stores enter a write
 * buffer that drains to the memory system in FIFO order, one transaction at
 * a time. The processor stalls only when it issues a store and the buffer
 * is full (write-buffer overflow), which the paper counts as Mem time.
 *
 * The *state* effect of a store (marking lines dirty, invalidating other
 * processors' copies) is applied by the Machine at issue time; this class
 * models only the occupancy/timing side.
 */

#ifndef DSS_SIM_WRITE_BUFFER_HH
#define DSS_SIM_WRITE_BUFFER_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/addr.hh"

namespace dss {
namespace obs {
class Registry;
} // namespace obs

namespace sim {

class WriteBuffer
{
  public:
    explicit WriteBuffer(std::size_t capacity = 16) : capacity_(capacity) {}

    /**
     * Issue a store to @p line_addr at time @p now whose drain transaction
     * costs @p drain_latency cycles.
     *
     * @return processor stall cycles (non-zero only on overflow).
     */
    Cycles push(Cycles now, Cycles drain_latency, Addr line_addr);

    /**
     * True if a store to @p line_addr is still buffered at @p now
     * (loads check the buffer before the caches).
     */
    bool containsLine(Addr line_addr, Cycles now);

    /** Number of stores still in flight at @p now. */
    std::size_t occupancy(Cycles now);

    /**
     * True if the pending stores would retire in FIFO order (retire
     * times monotonically non-decreasing) — the WbFifo invariant. The
     * push() arithmetic maintains this by construction; the invariant
     * checker verifies it stayed true.
     */
    bool fifoOrdered() const;

    /** Test hook: swap the retire times of the two oldest pending
     * stores, breaking FIFO order for checker-validation tests. */
    void corruptReorderForTest();

    /**
     * Line addresses of the pending stores in FIFO order, without
     * retiring anything (the model checker's state-extraction view;
     * drains are explicit events there, never a side effect of looking).
     */
    std::vector<Addr> pendingLines() const;

    /** Retire the oldest pending store unconditionally (the model
     * checker's explicit writeback-drain event). No-op when empty. */
    void retireOldest();

    /** Drop all pending stores (cold start). */
    void reset();

    std::size_t capacity() const { return capacity_; }

    /** Lifetime counters (observability); not cleared by reset(). */
    struct Counters
    {
        std::uint64_t stores = 0;      ///< push() calls
        std::uint64_t overflows = 0;   ///< pushes that stalled
        std::uint64_t stallCycles = 0; ///< total overflow stall imposed
        std::uint64_t maxOccupancy = 0;
    };

    const Counters &counters() const { return ctrs_; }

    /** Register the counters under "<prefix>.<leaf>" names. */
    void registerStats(obs::Registry &reg, const std::string &prefix) const;

  private:
    struct Pending
    {
        Cycles retireAt;
        Addr lineAddr;
    };

    void retireUpTo(Cycles now);

    std::size_t capacity_;
    std::deque<Pending> pending_;
    Cycles lastRetire_ = 0;
    Counters ctrs_;
};

} // namespace sim
} // namespace dss

#endif // DSS_SIM_WRITE_BUFFER_HH
