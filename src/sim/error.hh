/**
 * @file
 * Typed simulator failure carrying a structured machine-state dump.
 *
 * A SimError replaces the bare asserts the engines used to die with: when
 * the machine reaches a state it cannot make progress from (every live
 * processor blocked on a metalock — a simulated deadlock), it unwinds with
 * a SimError whose dump() JSON records each processor's clock, trace
 * position, pending access and lock state plus the full metalock table.
 * harness::guardedMain turns that into an error report on stderr and a
 * distinct exit code instead of a core dump.
 */

#ifndef DSS_SIM_ERROR_HH
#define DSS_SIM_ERROR_HH

#include <stdexcept>
#include <string>

#include "obs/json.hh"

namespace dss {
namespace sim {

class SimError : public std::runtime_error
{
  public:
    SimError(const std::string &what, obs::Json dump)
        : std::runtime_error(what), dump_(std::move(dump))
    {}

    /** Structured machine state at the point of failure. */
    const obs::Json &dump() const { return dump_; }

  private:
    obs::Json dump_;
};

} // namespace sim
} // namespace dss

#endif // DSS_SIM_ERROR_HH
