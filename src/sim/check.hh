/**
 * @file
 * Inline coherence invariant checker (the --check flag).
 *
 * Validates, at every state transition, the invariants the directory
 * protocol of Section 4.3 is supposed to maintain:
 *
 *  - Swmr:       single-writer/multiple-reader — at most one Modified
 *                (dirty) L2 copy of a line, and never a dirty copy
 *                coexisting with other cached copies
 *  - DirState:   the directory entry for a line agrees with the caches —
 *                Dirty entries name a real dirty owner, Shared sharer
 *                bits match exactly the caches holding clean copies,
 *                Uncached lines are cached nowhere
 *  - Inclusion:  every resident L1 line's enclosing L2 line is resident
 *  - WbFifo:     each write buffer drains in FIFO order (retire times
 *                monotonically non-decreasing)
 *  - LockState:  the metalock table is consistent — free locks have no
 *                waiters, holders/waiters are valid processors, and a
 *                blocked processor waits in exactly one queue
 *
 * Violations are recorded as structured CheckViolation records and
 * surfaced through the obs counter registry ("check.*") instead of
 * aborting, so a perturbed run (fault injection) can complete and report.
 * The checker only *reads* machine state: enabling it never changes a
 * single timing or statistic.
 *
 * Checking granularity: the sequential engine checks the touched line
 * after every step; the parallel engine checks the lines named by parked
 * operations after every barrier (phase A intentionally lets per-window
 * overlays diverge from the live state, so mid-window checks would be
 * false positives). Both end the run with a full sweep.
 *
 * One documented tolerance: with prefetching enabled (cfg.prefetchData),
 * the parallel engine's prefetch-share back-off at the barrier can leave
 * a stale *clean* unregistered copy in the prefetcher's caches (see
 * DESIGN.md §12). DirState therefore ignores extra clean copies when
 * prefetching is on; a stale *dirty* copy is always a violation.
 */

#ifndef DSS_SIM_CHECK_HH
#define DSS_SIM_CHECK_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "sim/addr.hh"
#include "sim/trace.hh"

namespace dss {
namespace obs {
class Registry;
} // namespace obs

namespace sim {

class Machine;

enum class Invariant : std::uint8_t {
    Swmr,
    DirState,
    Inclusion,
    WbFifo,
    LockState,
};
constexpr std::size_t kNumInvariants = 5;

std::string_view invariantName(Invariant inv);

/** One detected violation: which invariant, where, and a description. */
struct CheckViolation
{
    Invariant inv;
    Addr addr = 0;   ///< line or lock word (0 when not line-local)
    ProcId proc = 0; ///< processor involved (0 when machine-global)
    std::string detail;
};

class InvariantChecker
{
  public:
    // ----- hooks called by the engines -----

    /** Sequential engine: after one processor step on entry @p e. */
    void onStep(const Machine &m, ProcId p, const TraceEntry &e);

    /** Parallel engine: after a barrier applied ops on @p lines. */
    void onBarrier(const Machine &m, const std::vector<Addr> &lines);

    /** End of Machine::run: full sweep of all tracked state. */
    void onRunEnd(const Machine &m);

    // ----- direct entry points (tests and the sweep) -----

    void checkLine(const Machine &m, Addr addr);
    void checkWriteBuffer(const Machine &m, ProcId p);
    void checkLocks(const Machine &m);
    void sweep(const Machine &m);

    // ----- results -----

    std::uint64_t totalViolations() const { return total_; }
    std::uint64_t countOf(Invariant inv) const
    {
        return counts_[static_cast<std::size_t>(inv)];
    }

    /** The first kMaxRecorded violations, in detection order. */
    static constexpr std::size_t kMaxRecorded = 64;
    const std::vector<CheckViolation> &violations() const
    {
        return recorded_;
    }

    /** Register "check.*" violation counters into @p reg (live views). */
    void registerStats(obs::Registry &reg, const std::string &prefix) const;

    /** Counters plus recorded violation details for JSON reports. */
    obs::Json toJson() const;

  private:
    void report(Invariant inv, Addr addr, ProcId proc, std::string detail);

    std::array<std::uint64_t, kNumInvariants> counts_{};
    std::uint64_t total_ = 0;
    std::vector<CheckViolation> recorded_;
};

} // namespace sim
} // namespace dss

#endif // DSS_SIM_CHECK_HH
