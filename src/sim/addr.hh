/**
 * @file
 * Fundamental address and data-classification types shared by the
 * memory-hierarchy simulator (dss::sim) and the DBMS engine (dss::db).
 *
 * The taxonomy mirrors the HPCA'97 paper: every traced reference carries a
 * DataClass naming the *software* structure it touches, so misses and stall
 * time can be broken down exactly like the paper's Figures 6-12.
 */

#ifndef DSS_SIM_ADDR_HH
#define DSS_SIM_ADDR_HH

#include <cstdint>
#include <string_view>

namespace dss {
namespace sim {

/** Simulated virtual address. */
using Addr = std::uint64_t;

/** Simulated time in processor cycles (500 MHz in the paper). */
using Cycles = std::uint64_t;

/** Processor (node) identifier; the baseline machine has 4. */
using ProcId = std::uint32_t;

/**
 * Software data structure classification of a memory reference.
 *
 * The five metadata classes (BufDesc..LockSLock) are the Postgres95 shared
 * control structures of the paper's Figure 4; reports aggregate them into
 * "Metadata" where the paper does (Figs 6b, 8, 10) and keep them separate
 * where the paper does (Fig 7).
 */
enum class DataClass : std::uint8_t {
    Priv,       ///< Private heap (tuple copies, temp tables, hash tables)
    Data,       ///< Shared database data (heap tuples in buffer blocks)
    Index,      ///< Shared database indices (B-tree pages in buffer blocks)
    BufDesc,    ///< Buffer descriptors
    BufLook,    ///< Buffer lookup hash table
    LockHash,   ///< Lock manager: lock hash table
    XidHash,    ///< Lock manager: transaction (xid) hash table
    LockSLock,  ///< Metalock spinlock words (LockMgrLock, BufMgrLock, ...)
    MetaOther,  ///< Remaining shared engine metadata (catalog, inval cache)
    NumClasses
};

constexpr std::size_t kNumDataClasses =
    static_cast<std::size_t>(DataClass::NumClasses);

/** Short printable name, matching the paper's figure labels. */
constexpr std::string_view
dataClassName(DataClass c)
{
    switch (c) {
      case DataClass::Priv: return "Priv";
      case DataClass::Data: return "Data";
      case DataClass::Index: return "Index";
      case DataClass::BufDesc: return "BufDesc";
      case DataClass::BufLook: return "BufLook";
      case DataClass::LockHash: return "LockHash";
      case DataClass::XidHash: return "XidHash";
      case DataClass::LockSLock: return "LockSLock";
      case DataClass::MetaOther: return "MetaOther";
      default: return "?";
    }
}

/** True for the classes the paper aggregates as "Metadata". */
constexpr bool
isMetadataClass(DataClass c)
{
    switch (c) {
      case DataClass::BufDesc:
      case DataClass::BufLook:
      case DataClass::LockHash:
      case DataClass::XidHash:
      case DataClass::LockSLock:
      case DataClass::MetaOther:
        return true;
      default:
        return false;
    }
}

/** True for every shared class (everything except private heap). */
constexpr bool
isSharedClass(DataClass c)
{
    return c != DataClass::Priv;
}

/**
 * Coarse grouping used by Figures 6b, 8 and 10: Priv / Data / Index /
 * Metadata.
 */
enum class ClassGroup : std::uint8_t { Priv, Data, Index, Metadata, NumGroups };

constexpr std::size_t kNumClassGroups =
    static_cast<std::size_t>(ClassGroup::NumGroups);

constexpr ClassGroup
groupOf(DataClass c)
{
    switch (c) {
      case DataClass::Priv: return ClassGroup::Priv;
      case DataClass::Data: return ClassGroup::Data;
      case DataClass::Index: return ClassGroup::Index;
      default: return ClassGroup::Metadata;
    }
}

constexpr std::string_view
classGroupName(ClassGroup g)
{
    switch (g) {
      case ClassGroup::Priv: return "Priv";
      case ClassGroup::Data: return "Data";
      case ClassGroup::Index: return "Index";
      case ClassGroup::Metadata: return "Metadata";
      default: return "?";
    }
}

} // namespace sim
} // namespace dss

#endif // DSS_SIM_ADDR_HH
