/**
 * @file
 * Tagged simulated-memory arenas.
 *
 * The DBMS engine stores its data (pages, hash tables, lock words, private
 * tuple copies) in MemArena objects. An arena couples three things:
 *
 *   1. host backing storage, so the engine runs for real;
 *   2. a simulated base address, so traces see a coherent address space;
 *   3. a per-64-byte-granule DataClass map, so every traced reference can
 *      be attributed to the software structure it touches.
 *
 * An AddressSpace owns one shared arena (the Postgres95 shared memory
 * segment analog) plus one private arena per simulated process.
 */

#ifndef DSS_SIM_ARENA_HH
#define DSS_SIM_ARENA_HH

#include <cassert>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "sim/addr.hh"

namespace dss {
namespace sim {

/**
 * A contiguous region of simulated memory with host backing and per-granule
 * DataClass tags.
 */
class MemArena
{
  public:
    /** Tag granularity; fine enough for any cache line size we sweep. */
    static constexpr std::size_t kGranule = 16;

    /**
     * @param name Debug name ("shared", "priv0", ...)
     * @param base Simulated base address (granule-aligned)
     * @param capacity Maximum bytes this arena may hold
     * @param default_class Tag for memory not explicitly retagged
     */
    MemArena(std::string name, Addr base, std::size_t capacity,
             DataClass default_class);

    /**
     * Allocate @p bytes with @p align alignment, tagged @p cls.
     * @return simulated address of the allocation.
     */
    Addr alloc(std::size_t bytes, DataClass cls,
               std::size_t align = kGranule);

    /** Re-tag an address range (e.g. a buffer block loaded with an index). */
    void setClass(Addr addr, std::size_t bytes, DataClass cls);

    /**
     * Rewind the allocation cursor to a previous used() mark, releasing
     * everything allocated after it (private per-query heaps).
     */
    void rewind(std::size_t mark);

    /** Class tag of one address. */
    DataClass classOf(Addr addr) const;

    /**
     * Majority class tag over [addr, addr+bytes), clipped to the
     * allocated span; ties break toward the lower enum value and an
     * empty intersection yields the arena default. Placement policies
     * use this to classify whole pages (sim/placement.hh).
     */
    DataClass dominantClassIn(Addr addr, std::size_t bytes) const;

    /** True if @p addr lies inside this arena's allocated span. */
    bool
    contains(Addr addr) const
    {
        return addr >= base_ && addr < base_ + used_;
    }

    /** Host pointer backing a simulated address. */
    std::uint8_t *
    host(Addr addr)
    {
        assert(contains(addr));
        return backing_.data() + (addr - base_);
    }

    const std::uint8_t *
    host(Addr addr) const
    {
        assert(contains(addr));
        return backing_.data() + (addr - base_);
    }

    Addr base() const { return base_; }
    std::size_t used() const { return used_; }
    std::size_t capacity() const { return capacity_; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    Addr base_;
    std::size_t capacity_;
    std::size_t used_ = 0;
    DataClass defaultClass_;
    std::vector<std::uint8_t> backing_;
    std::vector<DataClass> tags_; // one per granule
};

/**
 * The full simulated address space: one shared arena plus one private arena
 * per simulated process, with disjoint simulated address ranges and a
 * resolver from address to arena.
 */
class AddressSpace
{
  public:
    static constexpr Addr kSharedBase = 0x1000'0000;
    static constexpr Addr kPrivateBase = 0x40'0000'0000;
    static constexpr Addr kPrivateStride = 0x1'0000'0000;

    /**
     * @param nprocs Number of simulated processes/processors.
     * @param shared_capacity Bytes for the shared segment.
     * @param private_capacity Bytes for each private heap.
     */
    AddressSpace(unsigned nprocs, std::size_t shared_capacity,
                 std::size_t private_capacity);

    MemArena &shared() { return *shared_; }
    const MemArena &shared() const { return *shared_; }

    MemArena &priv(ProcId p) { return *private_.at(p); }
    const MemArena &priv(ProcId p) const { return *private_.at(p); }

    unsigned nprocs() const { return static_cast<unsigned>(private_.size()); }

    /** Arena containing @p addr; null if unmapped. */
    MemArena *arenaOf(Addr addr);
    const MemArena *arenaOf(Addr addr) const;

    /** Class tag of @p addr (MetaOther if unmapped). */
    DataClass classOf(Addr addr) const;

    /** True if @p addr lies in the shared segment's range. */
    static bool
    isShared(Addr addr)
    {
        return addr < kPrivateBase;
    }

    /** Owning process of a private address (nprocs() if shared). */
    ProcId ownerOf(Addr addr) const;

    /**
     * Majority class of the @p page_bytes page containing @p addr: Priv
     * for private addresses, the shared arena's dominant tag for mapped
     * shared pages, MetaOther for unmapped ones.
     */
    DataClass pageClassOf(Addr addr, std::size_t page_bytes) const;

  private:
    std::unique_ptr<MemArena> shared_;
    std::vector<std::unique_ptr<MemArena>> private_;
};

} // namespace sim
} // namespace dss

#endif // DSS_SIM_ARENA_HH
