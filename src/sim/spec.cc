#include "sim/spec.hh"

#include <fstream>
#include <sstream>

#include "sim/error.hh"

namespace dss {
namespace sim {

namespace {

[[noreturn]] void
fail(const std::string &what, const std::string &detail)
{
    obs::Json dump = obs::Json::object();
    dump["error"] = "invalid machine spec";
    dump["detail"] = detail;
    throw SimError("invalid machine spec: " + what, std::move(dump));
}

/**
 * Strict object reader: every key the caller consumes is checked off,
 * and finish() rejects the leftovers — a misspelled key can never fall
 * back to a default silently.
 */
class StrictObject
{
  public:
    StrictObject(const obs::Json &j, std::string where)
        : j_(j), where_(std::move(where))
    {
        if (!j.isObject())
            fail(where_ + " must be a JSON object", where_);
    }

    const obs::Json *
    take(const std::string &key)
    {
        seen_.push_back(key);
        return j_.find(key);
    }

    std::uint64_t
    uintOr(const std::string &key, std::uint64_t dflt)
    {
        const obs::Json *v = take(key);
        if (!v)
            return dflt;
        if (!v->isNumber())
            fail(where_ + "." + key + " must be a number", key);
        return v->asUint();
    }

    bool
    boolOr(const std::string &key, bool dflt)
    {
        const obs::Json *v = take(key);
        return v ? v->asBool() : dflt;
    }

    void
    finish()
    {
        for (const auto &[key, value] : j_.members()) {
            (void)value;
            bool known = false;
            for (const std::string &s : seen_)
                if (s == key)
                    known = true;
            if (!known)
                fail("unknown key \"" + key + "\" in " + where_,
                     where_ + "." + key);
        }
    }

  private:
    const obs::Json &j_;
    std::string where_;
    std::vector<std::string> seen_;
};

LevelConfig
levelFromJson(const obs::Json &j, const std::string &where)
{
    StrictObject o(j, where);
    LevelConfig lc;
    lc.sizeBytes = o.uintOr("sizeBytes", lc.sizeBytes);
    lc.lineBytes = o.uintOr("lineBytes", lc.lineBytes);
    lc.assoc = static_cast<unsigned>(o.uintOr("assoc", lc.assoc));
    lc.hitCycles = o.uintOr("hitCycles", lc.hitCycles);
    lc.shared = o.boolOr("shared", lc.shared);
    o.finish();
    return lc;
}

LatencyConfig
latencyFromJson(const obs::Json &j)
{
    StrictObject o(j, "latency");
    LatencyConfig lat;
    lat.l1Hit = o.uintOr("l1Hit", lat.l1Hit);
    lat.l2Hit = o.uintOr("l2Hit", lat.l2Hit);
    lat.localMem = o.uintOr("localMem", lat.localMem);
    lat.remote2Hop = o.uintOr("remote2Hop", lat.remote2Hop);
    lat.remote3Hop = o.uintOr("remote3Hop", lat.remote3Hop);
    lat.controllerOccupancy =
        o.uintOr("controllerOccupancy", lat.controllerOccupancy);
    lat.memBytesPerCycle = o.uintOr("memBytesPerCycle", lat.memBytesPerCycle);
    lat.ctrlBytesPerCycle =
        o.uintOr("ctrlBytesPerCycle", lat.ctrlBytesPerCycle);
    o.finish();
    return lat;
}

MachineSpec
modernPreset()
{
    MachineSpec spec;
    spec.name = "modern";
    MachineConfig &c = spec.config;

    LevelConfig l1;
    l1.sizeBytes = 32 * 1024;
    l1.lineBytes = 64;
    l1.assoc = 8;
    l1.hitCycles = 1;
    LevelConfig l2;
    l2.sizeBytes = 256 * 1024;
    l2.lineBytes = 64;
    l2.assoc = 8;
    l2.hitCycles = 14;
    LevelConfig llc;
    llc.sizeBytes = 8 * 1024 * 1024;
    llc.lineBytes = 64;
    llc.assoc = 16;
    llc.hitCycles = 48;
    llc.shared = true;
    c.levels = {l1, l2, llc};
    return spec;
}

} // namespace

std::vector<std::string>
machinePresetNames()
{
    return {"paper1997", "modern", "scaled64"};
}

MachineSpec
machinePreset(const std::string &name)
{
    if (name == "paper1997")
        return {"paper1997", MachineConfig::baseline()};
    if (name == "modern")
        return modernPreset();
    if (name == "scaled64") {
        MachineSpec spec{"scaled64", MachineConfig::baseline()};
        spec.config.nprocs = 64;
        return spec;
    }
    std::string names;
    for (const std::string &n : machinePresetNames())
        names += (names.empty() ? "" : ", ") + n;
    fail("unknown preset \"" + name + "\" (have: " + names + ")", name);
}

MachineSpec
specFromJson(const obs::Json &j, const std::string &name)
{
    StrictObject o(j, "spec");
    MachineSpec spec;
    spec.name = name;
    MachineConfig &c = spec.config;
    if (const obs::Json *n = o.take("name"); n && n->isString())
        spec.name = n->asString();
    c.nprocs = static_cast<unsigned>(o.uintOr("nprocs", c.nprocs));
    if (const obs::Json *levels = o.take("levels")) {
        if (!levels->isArray() || levels->size() == 0)
            fail("\"levels\" must be a non-empty array", "levels");
        c.levels.clear();
        for (std::size_t i = 0; i < levels->size(); ++i)
            c.levels.push_back(
                levelFromJson(levels->at(i), levelName(i)));
    }
    c.writeBufferEntries =
        o.uintOr("writeBufferEntries", c.writeBufferEntries);
    c.pageBytes = o.uintOr("pageBytes", c.pageBytes);
    if (const obs::Json *lat = o.take("latency"))
        c.lat = latencyFromJson(*lat);
    c.prefetchData = o.boolOr("prefetchData", c.prefetchData);
    c.prefetchDegree =
        static_cast<unsigned>(o.uintOr("prefetchDegree", c.prefetchDegree));
    c.issueCyclesPerRef = o.uintOr("issueCyclesPerRef", c.issueCyclesPerRef);
    o.finish();
    c.validate();
    return spec;
}

MachineSpec
loadSpec(const std::string &nameOrPath)
{
    const bool is_file =
        (nameOrPath.size() > 5 &&
         nameOrPath.compare(nameOrPath.size() - 5, 5, ".json") == 0) ||
        nameOrPath.find('/') != std::string::npos;
    if (!is_file)
        return machinePreset(nameOrPath);

    std::ifstream in(nameOrPath);
    if (!in)
        fail("cannot read machine-spec file " + nameOrPath, nameOrPath);
    std::ostringstream text;
    text << in.rdbuf();
    obs::Json j;
    try {
        j = obs::Json::parse(text.str());
    } catch (const std::exception &e) {
        fail("malformed JSON in " + nameOrPath + ": " + e.what(),
             nameOrPath);
    }
    return specFromJson(j, nameOrPath);
}

obs::Json
toJson(const MachineSpec &spec)
{
    const MachineConfig &c = spec.config;
    obs::Json out = obs::Json::object();
    out["name"] = spec.name;
    out["nprocs"] = c.nprocs;
    obs::Json levels = obs::Json::array();
    for (const LevelConfig &lc : c.levels) {
        obs::Json lvl = obs::Json::object();
        lvl["sizeBytes"] = lc.sizeBytes;
        lvl["lineBytes"] = lc.lineBytes;
        lvl["assoc"] = lc.assoc;
        lvl["hitCycles"] = lc.hitCycles;
        lvl["shared"] = lc.shared;
        levels.push(std::move(lvl));
    }
    out["levels"] = std::move(levels);
    out["writeBufferEntries"] = c.writeBufferEntries;
    out["pageBytes"] = c.pageBytes;
    obs::Json lat = obs::Json::object();
    lat["l1Hit"] = c.lat.l1Hit;
    lat["l2Hit"] = c.lat.l2Hit;
    lat["localMem"] = c.lat.localMem;
    lat["remote2Hop"] = c.lat.remote2Hop;
    lat["remote3Hop"] = c.lat.remote3Hop;
    lat["controllerOccupancy"] = c.lat.controllerOccupancy;
    lat["memBytesPerCycle"] = c.lat.memBytesPerCycle;
    lat["ctrlBytesPerCycle"] = c.lat.ctrlBytesPerCycle;
    out["latency"] = std::move(lat);
    out["prefetchData"] = c.prefetchData;
    out["prefetchDegree"] = c.prefetchDegree;
    out["issueCyclesPerRef"] = c.issueCyclesPerRef;
    return out;
}

} // namespace sim
} // namespace dss
