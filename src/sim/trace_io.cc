#include "sim/trace_io.hh"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace dss {
namespace sim {

namespace {

constexpr char kMagic[8] = {'D', 'S', 'S', 'T', 'R', 'C', '0', '1'};

template <typename T>
void
writePod(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    T v;
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    if (!is)
        throw std::runtime_error("trace file truncated");
    return v;
}

void
validate(const TraceEntry &e)
{
    switch (e.op) {
      case Op::Read:
      case Op::Write:
      case Op::Busy:
      case Op::LockAcq:
      case Op::LockRel:
        break;
      default:
        throw std::runtime_error("trace file: bad op code");
    }
    if (static_cast<std::size_t>(e.cls) >= kNumDataClasses)
        throw std::runtime_error("trace file: bad data class");
}

} // namespace

void
saveTraces(std::ostream &os, const std::vector<TraceStream> &streams)
{
    os.write(kMagic, sizeof(kMagic));
    writePod<std::uint32_t>(os, static_cast<std::uint32_t>(streams.size()));
    for (const TraceStream &s : streams) {
        writePod<std::uint64_t>(os, s.size());
        const auto &entries = s.entries();
        os.write(reinterpret_cast<const char *>(entries.data()),
                 static_cast<std::streamsize>(entries.size() *
                                              sizeof(TraceEntry)));
    }
    if (!os)
        throw std::runtime_error("trace save failed");
}

std::vector<TraceStream>
loadTraces(std::istream &is)
{
    char magic[8];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        throw std::runtime_error("not a dss trace file (bad magic)");

    auto nstreams = readPod<std::uint32_t>(is);
    std::vector<TraceStream> out(nstreams);
    for (std::uint32_t i = 0; i < nstreams; ++i) {
        auto n = readPod<std::uint64_t>(is);
        for (std::uint64_t j = 0; j < n; ++j) {
            auto e = readPod<TraceEntry>(is);
            validate(e);
            // Use record() so an already-coalesced stream round-trips
            // to identical contents.
            out[i].record(e);
        }
    }
    return out;
}

void
saveTracesFile(const std::string &path,
               const std::vector<TraceStream> &streams)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("cannot open " + path + " for writing");
    saveTraces(os, streams);
}

std::vector<TraceStream>
loadTracesFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("cannot open " + path);
    return loadTraces(is);
}

} // namespace sim
} // namespace dss
