/**
 * @file
 * The simulated 4-processor CC-NUMA machine of the paper's Section 4.3.
 *
 * Per node: one processor with a direct-mapped write-through L1
 * (4 KB / 32 B lines in the baseline), a 2-way write-back L2
 * (128 KB / 64 B lines), and a 16-entry write buffer; plus a slice of the
 * interleaved main memory with its directory controller. The processor
 * stalls on read misses and on write-buffer overflow. Round-trip read-miss
 * latencies: L2 16, local memory 80, 2-hop remote 249, 3-hop remote 351
 * cycles. Contention is modeled at the home memory controllers; the network
 * is a fixed delay (paper's simplification).
 *
 * The Machine consumes one TraceStream per processor, interleaving them by
 * local virtual time. Metalock acquire/release markers are resolved
 * dynamically against the LockTable so spinning, hand-off and lock-word
 * coherence misses reflect the simulated interleaving.
 *
 * Cache, directory and classification state persists across run() calls,
 * which is how the warm-start experiments of Fig 12 chain queries;
 * call resetMemoryState() for a cold start.
 */

#ifndef DSS_SIM_MACHINE_HH
#define DSS_SIM_MACHINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/addr.hh"
#include "sim/cache.hh"
#include "sim/directory.hh"
#include "sim/engine.hh"
#include "sim/sharing.hh"
#include "sim/spinlock_model.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"
#include "sim/write_buffer.hh"

namespace dss {
namespace obs {
class Registry;
class Sampler;
class Timeline;
enum class SpanKind : std::uint8_t;
} // namespace obs

namespace sim {

/** Full architecture configuration. */
struct MachineConfig
{
    unsigned nprocs = 4;
    CacheConfig l1{4 * 1024, 32, 1};
    CacheConfig l2{128 * 1024, 64, 2};
    std::size_t writeBufferEntries = 16;
    std::size_t pageBytes = 8 * 1024;
    LatencyConfig lat;

    /** Sequential next-N-line prefetch of Data-class reads (Fig 13). */
    bool prefetchData = false;
    unsigned prefetchDegree = 4;

    /** Issue cost charged to Busy per memory reference. */
    Cycles issueCyclesPerRef = 1;

    /** The paper's baseline machine. */
    static MachineConfig baseline();

    /**
     * Same machine with @p l2_line byte L2 lines; the L1 line is always
     * half the L2 line (paper Section 4.3).
     */
    MachineConfig withLineSize(std::size_t l2_line) const;

    /** Same machine with different cache capacities. */
    MachineConfig withCacheSizes(std::size_t l1_bytes,
                                 std::size_t l2_bytes) const;
};

class ParEngine;
class FaultPlan;
class InvariantChecker;

class Machine
{
  public:
    explicit Machine(const MachineConfig &cfg);

    /**
     * Simulate one trace per processor (pass fewer traces than processors
     * to leave some idle). Clocks restart at zero; caches, directory and
     * miss-classification history persist from previous runs.
     *
     * An attached @p sampler receives per-epoch counter deltas (the
     * time-series behind warm-up and contention analysis); an attached
     * @p timeline receives busy/stall/sync intervals and metalock
     * hold/spin spans for Chrome-trace export. Both may be null, and one
     * sampler/timeline may observe several consecutive runs.
     *
     * @return statistics for this run only.
     */
    SimStats run(const std::vector<const TraceStream *> &traces,
                 obs::Sampler *sampler = nullptr,
                 obs::Timeline *timeline = nullptr);

    /**
     * Same, with an explicit engine: EngineKind::Seq replays in exact
     * simulated-time order on the calling thread; EngineKind::Par shards
     * the processor pipelines across host threads in deterministic
     * barrier-synchronized windows (see sim/engine.hh). The parallel
     * engine's output is bit-identical for any thread count.
     */
    SimStats run(const std::vector<const TraceStream *> &traces,
                 const EngineConfig &engine,
                 obs::Sampler *sampler = nullptr,
                 obs::Timeline *timeline = nullptr);

    /** Cold-start: drop caches, directory state and classification. */
    void resetMemoryState();

    /**
     * Register every counter of this machine — per-processor ProcStats
     * views ("proc0.busy", "proc0.l1.miss.cold.index"), per-node cache and
     * write-buffer counters, and the shared directory ("dir.*") and
     * metalock table ("locks.*") — into @p reg. The readers are live
     * views: they report whatever the machine's counters hold when the
     * registry is read, so the machine must outlive @p reg's use.
     */
    void registerStats(obs::Registry &reg,
                       const std::string &prefix = "") const;

    const MachineConfig &config() const { return cfg_; }

    /**
     * Attach a deterministic fault plan (sim/fault.hh). The plan must
     * outlive the machine's use of it; pass nullptr to detach. Decisions
     * are keyed on per-processor trace positions, so the same plan
     * replays identically under both engines.
     */
    void setFaultPlan(FaultPlan *plan) { fault_ = plan; }

    /**
     * Attach an invariant checker (sim/check.hh, the --check flag). The
     * checker only reads machine state: attaching it never changes a
     * timing or statistic. Pass nullptr to detach.
     */
    void setChecker(InvariantChecker *checker) { checker_ = checker; }

    /**
     * Attach a page-placement policy (sim/placement.hh, the --placement
     * flag). Borrowed and mutable: run() calls its beginRun() hook so
     * first-touch claims resolve before either engine starts. Pass
     * nullptr to return to the machine's own default interleave policy
     * (bit-identical to the historical hardwired rule).
     */
    void setPlacement(PlacementPolicy *placement);

    /** The active placement policy (never null). */
    const PlacementPolicy &placement() const { return *placement_; }

    /**
     * Enable word-granular sharing tracking (sim/sharing.hh, the
     * --memprof flag) so L2 coherence misses split into true vs. false
     * sharing (ProcStats::l2CoheTrue/l2CoheFalse and the
     * proc*.miss.cohe.{true,false} registry counters). Off by default;
     * when off the pipelines pay a single null test inside the miss
     * branches and the split counters stay zero. Enabling mid-experiment
     * starts from an empty history, exactly like a cold classification.
     */
    void enableSharing(bool on);

    /** The sharing tracker, or nullptr when disabled (tests). */
    const SharingTracker *sharingTracker() const { return sharing_.get(); }

    /**
     * Clear the lifetime statistics that survive run() boundaries (the
     * directory's per-home contention counters). The harness runner
     * calls this before every repetition so consecutive runs do not
     * accumulate each other's counts; memory/cache state is untouched
     * (warm-start chains stay warm).
     */
    void resetStats();

    /** Direct cache access for tests. */
    Cache &l1(ProcId p) { return nodes_.at(p)->l1; }
    Cache &l2(ProcId p) { return nodes_.at(p)->l2; }

    /** Directory access for tests (final-state equivalence checks). */
    const Directory &directory() const { return dir_; }

    /** Metalock table access for tests. */
    const LockTable &locks() const { return locks_; }

    /** Mutable directory/lock/write-buffer access for checker-validation
     * tests that deliberately corrupt machine state. */
    Directory &directoryForTest() { return dir_; }
    LockTable &locksForTest() { return locks_; }
    WriteBuffer &writeBufferForTest(ProcId p) { return nodes_.at(p)->wb; }

  private:
    struct Node
    {
        Node(const MachineConfig &cfg)
            : l1(cfg.l1), l2(cfg.l2), wb(cfg.writeBufferEntries)
        {}

        Cache l1;
        Cache l2;
        WriteBuffer wb;
        /** L1 lines filled by prefetch -> cycle the data arrives. A demand
         * read that gets there first waits for the remainder. */
        std::unordered_map<Addr, Cycles> prefetched;
    };

    /** Per-run execution state of one processor. */
    struct ProcRun
    {
        const std::vector<TraceEntry> *entries = nullptr;
        std::size_t pos = 0;
        Cycles clock = 0;
        bool blocked = false;
        Cycles blockStart = 0;
        /** A test&set transaction completed; the grab happens next step. */
        bool acqPending = false;
        ProcStats stats;

        bool done() const { return !entries || pos >= entries->size(); }
    };

    /** Outcome of one load, for stall accounting. */
    struct ReadOutcome
    {
        Cycles latency = 0; ///< total, including the issue cycle
    };

    /**
     * The memory-access pipelines are templates over a Port — the seam
     * between a processor's own node state (always mutated directly) and
     * the *shared* state (directory entries, home-controller occupancy,
     * timeline spans). SeqPort reads and mutates the shared state in
     * place, which reproduces the reference engine exactly; the parallel
     * engine's port reads a frozen window snapshot and parks mutations in
     * a per-processor mailbox for the barrier to apply in deterministic
     * order. Bodies live in machine_impl.hh (included by machine.cc and
     * par_engine.cc only).
     */
    struct SeqPort;

    template <typename Port>
    ReadOutcome readAccessT(Port &port, ProcId p, Addr addr, DataClass cls,
                            unsigned size);

    /**
     * Apply the coherence state changes of a store and return the drain
     * latency of its write-buffer transaction.
     */
    template <typename Port>
    Cycles writeTransactionT(Port &port, ProcId p, Addr addr, DataClass cls,
                             unsigned size);

    /**
     * Atomic read-modify-write on a lock word (test&set): acquires
     * exclusive ownership, the processor waits for completion.
     * @return total latency including the issue cycle.
     */
    template <typename Port>
    Cycles rmwAccessT(Port &port, ProcId p, Addr addr, DataClass cls,
                      unsigned size);

    template <typename Port>
    void issuePrefetchesT(Port &port, ProcId p, Addr addr);
    template <typename Port>
    void fillL2T(Port &port, ProcId p, Addr addr, bool dirty);

    /** Fault hook: force-evict the L2 line of @p addr (plus its L1
     * sublines) from p's own caches, keeping the directory in sync. */
    template <typename Port>
    void faultEvictT(Port &port, ProcId p, Addr addr);

    void fillL1(ProcId p, Addr addr);
    void invalidateOtherCaches(Addr l2_line, ProcId except);
    void dropFromDirectory(ProcId p, Addr l2_line);

    /**
     * Shared-state mutation operators. Each takes only (processor, line)
     * and re-derives its decisions from the live directory entry, so the
     * parallel engine can replay parked mutations at the barrier and land
     * in exactly the state the sequential engine would have produced.
     */
    void applyReadFillDir(ProcId p, Addr l2_line);
    void applyStoreDir(ProcId p, Addr l2_line, WordMask wmask);
    void applyPrefetchShareDir(ProcId p, Addr l2_line);

    /**
     * Split-classify an L2 coherence miss into true/false sharing. Only
     * called from the pipelines' (rare) Cohe miss branches, and a no-op
     * unless enableSharing is on. Reads the tracker without mutating it,
     * so phase-A workers may call it against the masks frozen at the
     * last barrier.
     */
    void classifyCoheMiss(ProcStats &st, ProcId p, Addr addr, unsigned size,
                          Addr l2_line) const;

    /**
     * Re-derive a directory entry from the caches after a parallel
     * barrier has replayed every parked op on @p l2_line. Replayed
     * invalidations can land after the eager phase-A fill they target,
     * leaving the entry naming copies that no longer exist; the caches
     * are the ground truth. Sequential runs never need this.
     */
    void reconcileDirAfterBarrier(Addr l2_line);

    void step(ProcId p);
    template <typename Port>
    void doReadT(Port &port, ProcId p, const TraceEntry &e);
    template <typename Port>
    void doWriteT(Port &port, ProcId p, const TraceEntry &e);
    template <typename Port>
    void doBusyT(Port &port, ProcId p, const TraceEntry &e);
    /** Fault hook: apply a LockPreempt hold-time stretch (if the plan
     * schedules one for this release) before the release store. */
    template <typename Port>
    void preemptReleaseT(Port &port, ProcId p);

    void doLockAcq(ProcId p, const TraceEntry &e);
    void doLockRel(ProcId p, const TraceEntry &e);
    /**
     * Release half of doLockRel: hand off the metalock and wake spinners
     * (the store half already ran).
     * @return the woken waiter, or LockTable::kNoWaiter.
     */
    ProcId releaseLock(ProcId p, const TraceEntry &e, Cycles rel_clock);

    /** The reference engine: global min-(clock, procid) replay. */
    void runSeq(std::size_t nrun);

    /** Unwind with a SimError dumping every processor's state and the
     * metalock table (simulated deadlock: all live processors blocked). */
    [[noreturn]] void throwDeadlock(const char *engine) const;

    /** Timeline helper: emit [start, end) of @p k on @p p if attached. */
    void span(ProcId p, obs::SpanKind k, Cycles start, Cycles end);
    /** Snapshot of the first @p n processors' cumulative run stats. */
    std::vector<ProcStats> statsSnapshot(std::size_t n) const;

    MachineConfig cfg_;
    Cycles l2HitLat_; ///< L2 round trip adjusted for the L1 line transfer
    std::vector<std::unique_ptr<Node>> nodes_;
    Directory dir_;
    LockTable locks_;
    std::vector<ProcRun> runs_;
    obs::Sampler *sampler_ = nullptr;   ///< valid during run()
    obs::Timeline *timeline_ = nullptr; ///< valid during run()
    FaultPlan *fault_ = nullptr;        ///< optional, not owned
    InvariantChecker *checker_ = nullptr; ///< optional, not owned
    /** Word-granular sharing tracker; null unless enableSharing(true). */
    std::unique_ptr<SharingTracker> sharing_;
    /** Fallback interleave policy owned by the machine, so homeOf always
     * takes the precomputed-table fast path even with no external
     * policy attached. */
    std::unique_ptr<PlacementPolicy> defaultPlacement_;
    PlacementPolicy *placement_ = nullptr; ///< active policy, never null
    /** Metalock word -> cycle its current hold began (timeline only). */
    std::unordered_map<Addr, Cycles> holdStart_;

    friend class ParEngine;
    friend class InvariantChecker;
};

} // namespace sim
} // namespace dss

#endif // DSS_SIM_MACHINE_HH
