/**
 * @file
 * The simulated 4-processor CC-NUMA machine of the paper's Section 4.3.
 *
 * Per node: one processor with a direct-mapped write-through L1
 * (4 KB / 32 B lines in the baseline), a 2-way write-back L2
 * (128 KB / 64 B lines), and a 16-entry write buffer; plus a slice of the
 * interleaved main memory with its directory controller. The processor
 * stalls on read misses and on write-buffer overflow. Round-trip read-miss
 * latencies: L2 16, local memory 80, 2-hop remote 249, 3-hop remote 351
 * cycles. Contention is modeled at the home memory controllers; the network
 * is a fixed delay (paper's simplification).
 *
 * The Machine consumes one TraceStream per processor, interleaving them by
 * local virtual time. Metalock acquire/release markers are resolved
 * dynamically against the LockTable so spinning, hand-off and lock-word
 * coherence misses reflect the simulated interleaving.
 *
 * Cache, directory and classification state persists across run() calls,
 * which is how the warm-start experiments of Fig 12 chain queries;
 * call resetMemoryState() for a cold start.
 */

#ifndef DSS_SIM_MACHINE_HH
#define DSS_SIM_MACHINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/addr.hh"
#include "sim/cache.hh"
#include "sim/directory.hh"
#include "sim/engine.hh"
#include "sim/hierarchy.hh"
#include "sim/sharing.hh"
#include "sim/spinlock_model.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"
#include "sim/write_buffer.hh"

namespace dss {
namespace obs {
class Registry;
class Sampler;
class Timeline;
enum class SpanKind : std::uint8_t;
} // namespace obs

namespace sim {

/** Full architecture configuration. */
struct MachineConfig
{
    unsigned nprocs = 4;

    /**
     * The cache-level chain, index 0 nearest the processor
     * (sim/hierarchy.hh). Defaults to the paper's L1/L2 pair; the named
     * l1()/l2() accessors keep every existing configuration site reading
     * and writing the slots it always did.
     */
    LevelChain levels = paperLevels();

    std::size_t writeBufferEntries = 16;
    std::size_t pageBytes = 8 * 1024;
    LatencyConfig lat;

    /** Sequential next-N-line prefetch of Data-class reads (Fig 13). */
    bool prefetchData = false;
    unsigned prefetchDegree = 4;

    /** Issue cost charged to Busy per memory reference. */
    Cycles issueCyclesPerRef = 1;

    /** The primary cache (level 0). */
    LevelConfig &l1() { return levels.front(); }
    const LevelConfig &l1() const { return levels.front(); }

    /** The secondary cache (level 1 — on the baseline two-level chain
     * this is also the coherent level). */
    LevelConfig &l2() { return levels[1]; }
    const LevelConfig &l2() const { return levels[1]; }

    /** The coherent (last) level: dirty data, directory granularity. */
    LevelConfig &coherent() { return levels.back(); }
    const LevelConfig &coherent() const { return levels.back(); }

    std::size_t numLevels() const { return levels.size(); }

    /** Validate geometry and latencies; throws SimError (hierarchy.hh). */
    void validate() const;

    /** The paper's baseline machine. */
    static MachineConfig baseline();

    /**
     * Same machine with @p l2_line byte coherent-level lines; the L1 line
     * is always half of it (paper Section 4.3); intermediate levels (if
     * any) adopt the coherent line. Throws SimError on invalid geometry.
     */
    MachineConfig withLineSize(std::size_t l2_line) const;

    /** Same machine with different L1/last-level capacities. Throws
     * SimError on invalid geometry. */
    MachineConfig withCacheSizes(std::size_t l1_bytes,
                                 std::size_t l2_bytes) const;
};

class ParEngine;
class FaultPlan;
class InvariantChecker;

class Machine
{
  public:
    explicit Machine(const MachineConfig &cfg);

    /**
     * Simulate one trace per processor (pass fewer traces than processors
     * to leave some idle). Clocks restart at zero; caches, directory and
     * miss-classification history persist from previous runs.
     *
     * An attached @p sampler receives per-epoch counter deltas (the
     * time-series behind warm-up and contention analysis); an attached
     * @p timeline receives busy/stall/sync intervals and metalock
     * hold/spin spans for Chrome-trace export. Both may be null, and one
     * sampler/timeline may observe several consecutive runs.
     *
     * @return statistics for this run only.
     */
    SimStats run(const std::vector<const TraceStream *> &traces,
                 obs::Sampler *sampler = nullptr,
                 obs::Timeline *timeline = nullptr);

    /**
     * Same, with an explicit engine: EngineKind::Seq replays in exact
     * simulated-time order on the calling thread; EngineKind::Par shards
     * the processor pipelines across host threads in deterministic
     * barrier-synchronized windows (see sim/engine.hh). The parallel
     * engine's output is bit-identical for any thread count.
     */
    SimStats run(const std::vector<const TraceStream *> &traces,
                 const EngineConfig &engine,
                 obs::Sampler *sampler = nullptr,
                 obs::Timeline *timeline = nullptr);

    /** Cold-start: drop caches, directory state and classification. */
    void resetMemoryState();

    /**
     * Register every counter of this machine — per-processor ProcStats
     * views ("proc0.busy", "proc0.l1.miss.cold.index"), per-node cache and
     * write-buffer counters, and the shared directory ("dir.*") and
     * metalock table ("locks.*") — into @p reg. The readers are live
     * views: they report whatever the machine's counters hold when the
     * registry is read, so the machine must outlive @p reg's use.
     */
    void registerStats(obs::Registry &reg,
                       const std::string &prefix = "") const;

    const MachineConfig &config() const { return cfg_; }

    /**
     * Attach a deterministic fault plan (sim/fault.hh). The plan must
     * outlive the machine's use of it; pass nullptr to detach. Decisions
     * are keyed on per-processor trace positions, so the same plan
     * replays identically under both engines.
     */
    void setFaultPlan(FaultPlan *plan) { fault_ = plan; }

    /**
     * Attach an invariant checker (sim/check.hh, the --check flag). The
     * checker only reads machine state: attaching it never changes a
     * timing or statistic. Pass nullptr to detach.
     */
    void setChecker(InvariantChecker *checker) { checker_ = checker; }

    /**
     * Attach a page-placement policy (sim/placement.hh, the --placement
     * flag). Borrowed and mutable: run() calls its beginRun() hook so
     * first-touch claims resolve before either engine starts. Pass
     * nullptr to return to the machine's own default interleave policy
     * (bit-identical to the historical hardwired rule).
     */
    void setPlacement(PlacementPolicy *placement);

    /** The active placement policy (never null). */
    const PlacementPolicy &placement() const { return *placement_; }

    /**
     * Enable word-granular sharing tracking (sim/sharing.hh, the
     * --memprof flag) so L2 coherence misses split into true vs. false
     * sharing (ProcStats::l2CoheTrue/l2CoheFalse and the
     * proc*.miss.cohe.{true,false} registry counters). Off by default;
     * when off the pipelines pay a single null test inside the miss
     * branches and the split counters stay zero. Enabling mid-experiment
     * starts from an empty history, exactly like a cold classification.
     */
    void enableSharing(bool on);

    /** The sharing tracker, or nullptr when disabled (tests). */
    const SharingTracker *sharingTracker() const { return sharing_.get(); }

    /**
     * Clear the lifetime statistics that survive run() boundaries (the
     * directory's per-home contention counters). The harness runner
     * calls this before every repetition so consecutive runs do not
     * accumulate each other's counts; memory/cache state is untouched
     * (warm-start chains stay warm).
     */
    void resetStats();

    /** Direct cache access for tests. l2() names the *coherent* (last)
     * level — on the baseline two-level chain, the cache it always named. */
    Cache &l1(ProcId p) { return nodes_.at(p)->caches.front(); }
    Cache &l2(ProcId p) { return nodes_.at(p)->caches.back(); }
    /** Any level of @p p's chain (tests of deeper hierarchies). */
    Cache &level(ProcId p, std::size_t lvl)
    {
        return nodes_.at(p)->caches.at(lvl);
    }

    /** Directory access for tests (final-state equivalence checks). */
    const Directory &directory() const { return dir_; }

    /** Metalock table access for tests. */
    const LockTable &locks() const { return locks_; }

    /** Mutable directory/lock/write-buffer access for checker-validation
     * tests that deliberately corrupt machine state. */
    Directory &directoryForTest() { return dir_; }
    LockTable &locksForTest() { return locks_; }
    WriteBuffer &writeBufferForTest(ProcId p) { return nodes_.at(p)->wb; }

    // ----- explicit-state verification hooks (src/verify/) -----
    //
    // The model checker synthesizes protocol events instead of replaying
    // workload traces, but every transition must run through the *real*
    // pipelines above. These hooks expose a side-effect-free stepping
    // API: no sampler, timeline, fault plan or trace stream is involved,
    // and the only state that changes is what the pipelines themselves
    // touch. Timing and statistics still accrue (they are protocol-
    // irrelevant and the checker ignores them).

    /**
     * Arm manual stepping: cold-start the memory state (caches,
     * directory, locks, write buffers, classification) and initialize
     * per-processor execution state exactly as run() would, without
     * consuming traces. Call before the first modelStep().
     */
    void beginModelSteps();

    /**
     * Drive one synthesized trace entry through the real access
     * pipelines on the sequential port. Requires beginModelSteps().
     * LockAcq entries keep their two-phase semantics: one call runs one
     * phase (test&set transaction, then the grab/spin decision), exactly
     * as one runSeq() step would.
     */
    void modelStep(ProcId p, const TraceEntry &e);

    /** Force-evict the coherent line of @p addr from @p p's caches (the
     * fault-injection eviction path, directory kept in sync). */
    void modelEvict(ProcId p, Addr addr);

    /** Load a processor's lock-continuation flags (blocked spinner /
     * completed test&set) when reconstructing a mid-protocol state. */
    void setProcWaitState(ProcId p, bool blocked, bool acq_pending);

    /** The engine's blocked-spinner flag for @p p (const view). */
    bool procBlocked(ProcId p) const { return runs_.at(p).blocked; }
    /** The two-phase acquire continuation flag for @p p (const view). */
    bool procAcqPending(ProcId p) const { return runs_.at(p).acqPending; }
    /** @p p's virtual clock (counterexample trace emission). */
    Cycles procClock(ProcId p) const { return runs_.at(p).clock; }

    /** Const cache access (the checker-facing read-only counterparts of
     * the mutable test hooks above). */
    const Cache &l1(ProcId p) const { return nodes_.at(p)->caches.front(); }
    const Cache &l2(ProcId p) const { return nodes_.at(p)->caches.back(); }
    const Cache &level(ProcId p, std::size_t lvl) const
    {
        return nodes_.at(p)->caches.at(lvl);
    }
    const WriteBuffer &writeBuffer(ProcId p) const
    {
        return nodes_.at(p)->wb;
    }

  private:
    struct Node
    {
        Node(const MachineConfig &cfg) : wb(cfg.writeBufferEntries)
        {
            caches.reserve(cfg.levels.size());
            for (const LevelConfig &lc : cfg.levels)
                caches.emplace_back(lc);
            // The chain never resizes after construction; the endpoint
            // pointers keep the per-access paths off vector front()/
            // back() arithmetic (replay throughput is guarded by
            // BM_MachineReplay).
            l1_ = &caches.front();
            coh_ = &caches.back();
        }

        /** The level chain, index 0 nearest the processor. */
        std::vector<Cache> caches;
        WriteBuffer wb;
        /** L1 lines filled by prefetch -> cycle the data arrives. A demand
         * read that gets there first waits for the remainder. */
        std::unordered_map<Addr, Cycles> prefetched;

        Cache &l1() { return *l1_; }
        const Cache &l1() const { return *l1_; }
        /** The coherent (last) level. */
        Cache &coh() { return *coh_; }
        const Cache &coh() const { return *coh_; }

      private:
        Cache *l1_;
        Cache *coh_;
    };

    /** Per-run execution state of one processor. */
    struct ProcRun
    {
        const std::vector<TraceEntry> *entries = nullptr;
        std::size_t pos = 0;
        Cycles clock = 0;
        bool blocked = false;
        Cycles blockStart = 0;
        /** A test&set transaction completed; the grab happens next step. */
        bool acqPending = false;
        ProcStats stats;

        bool done() const { return !entries || pos >= entries->size(); }
    };

    /** Outcome of one load, for stall accounting. */
    struct ReadOutcome
    {
        Cycles latency = 0; ///< total, including the issue cycle
    };

    /**
     * The memory-access pipelines are templates over a Port — the seam
     * between a processor's own node state (always mutated directly) and
     * the *shared* state (directory entries, home-controller occupancy,
     * timeline spans). SeqPort reads and mutates the shared state in
     * place, which reproduces the reference engine exactly; the parallel
     * engine's port reads a frozen window snapshot and parks mutations in
     * a per-processor mailbox for the barrier to apply in deterministic
     * order. Bodies live in machine_impl.hh (included by machine.cc and
     * par_engine.cc only).
     */
    struct SeqPort;

    template <typename Port>
    ReadOutcome readAccessT(Port &port, ProcId p, Addr addr, DataClass cls,
                            unsigned size);

    /**
     * Apply the coherence state changes of a store and return the drain
     * latency of its write-buffer transaction.
     */
    template <typename Port>
    Cycles writeTransactionT(Port &port, ProcId p, Addr addr, DataClass cls,
                             unsigned size);

    /**
     * Atomic read-modify-write on a lock word (test&set): acquires
     * exclusive ownership, the processor waits for completion.
     * @return total latency including the issue cycle.
     */
    template <typename Port>
    Cycles rmwAccessT(Port &port, ProcId p, Addr addr, DataClass cls,
                      unsigned size);

    template <typename Port>
    void issuePrefetchesT(Port &port, ProcId p, Addr addr);

    /**
     * Fill the coherent (last) level, evicting its LRU victim: upper
     * levels drop the victim's sublines (strict inclusion), the
     * directory drops the copy, and a dirty victim writes back in the
     * background.
     */
    template <typename Port>
    void fillCoherentT(Port &port, ProcId p, Addr addr, bool dirty);

    /** Fault hook: force-evict the coherent line of @p addr (plus its
     * upper-level sublines) from p's own caches, keeping the directory in
     * sync. */
    template <typename Port>
    void faultEvictT(Port &port, ProcId p, Addr addr);

    void fillL1(ProcId p, Addr addr);

    /**
     * Fill every intermediate level (1..n-2) missing @p addr, deepest
     * first so inclusion holds at each step. Intermediates hold clean
     * copies only, so victims drop silently (the level below still holds
     * them) after their upper-level sublines are invalidated. A chain of
     * two levels has no intermediates: this is a no-op there.
     */
    void fillIntermediates(ProcId p, Addr addr);

    /**
     * Invalidate every level above the coherent one for the sublines of
     * coherent line @p line on node @p p (eviction or remote
     * invalidation), dropping pending prefetches with them.
     */
    void invalidateUpperLevels(ProcId p, Addr line, bool coherence);

    void invalidateOtherCaches(Addr l2_line, ProcId except);
    void dropFromDirectory(ProcId p, Addr l2_line);

    /**
     * Shared-state mutation operators. Each takes only (processor, line)
     * and re-derives its decisions from the live directory entry, so the
     * parallel engine can replay parked mutations at the barrier and land
     * in exactly the state the sequential engine would have produced.
     */
    void applyReadFillDir(ProcId p, Addr l2_line);
    void applyStoreDir(ProcId p, Addr l2_line, WordMask wmask);
    void applyPrefetchShareDir(ProcId p, Addr l2_line);

    /**
     * Split-classify an L2 coherence miss into true/false sharing. Only
     * called from the pipelines' (rare) Cohe miss branches, and a no-op
     * unless enableSharing is on. Reads the tracker without mutating it,
     * so phase-A workers may call it against the masks frozen at the
     * last barrier.
     */
    void classifyCoheMiss(ProcStats &st, ProcId p, Addr addr, unsigned size,
                          Addr l2_line) const;

    /**
     * Re-derive a directory entry from the caches after a parallel
     * barrier has replayed every parked op on @p l2_line. Replayed
     * invalidations can land after the eager phase-A fill they target,
     * leaving the entry naming copies that no longer exist; the caches
     * are the ground truth. Sequential runs never need this.
     */
    void reconcileDirAfterBarrier(Addr l2_line);

    void step(ProcId p);
    /** Dispatch one explicit entry through the pipelines (step() body;
     * also the modelStep() entry point, where @p e is synthesized). */
    void stepEntry(ProcId p, const TraceEntry &e);
    template <typename Port>
    void doReadT(Port &port, ProcId p, const TraceEntry &e);
    template <typename Port>
    void doWriteT(Port &port, ProcId p, const TraceEntry &e);
    template <typename Port>
    void doBusyT(Port &port, ProcId p, const TraceEntry &e);
    /** Fault hook: apply a LockPreempt hold-time stretch (if the plan
     * schedules one for this release) before the release store. */
    template <typename Port>
    void preemptReleaseT(Port &port, ProcId p);

    void doLockAcq(ProcId p, const TraceEntry &e);
    void doLockRel(ProcId p, const TraceEntry &e);
    /**
     * Release half of doLockRel: hand off the metalock and wake spinners
     * (the store half already ran).
     * @return the woken waiter, or LockTable::kNoWaiter.
     */
    ProcId releaseLock(ProcId p, const TraceEntry &e, Cycles rel_clock);

    /** The reference engine: global min-(clock, procid) replay. */
    void runSeq(std::size_t nrun);

    /** Unwind with a SimError dumping every processor's state and the
     * metalock table (simulated deadlock: all live processors blocked). */
    [[noreturn]] void throwDeadlock(const char *engine) const;

    /** Timeline helper: emit [start, end) of @p k on @p p if attached. */
    void span(ProcId p, obs::SpanKind k, Cycles start, Cycles end);
    /** Snapshot of the first @p n processors' cumulative run stats. */
    std::vector<ProcStats> statsSnapshot(std::size_t n) const;

    MachineConfig cfg_;
    /** Chain depth (== cfg_.numLevels()), cached for the access paths. */
    std::size_t nlev_ = 2;
    /** Per-level hit round trips, adjusted for the L1 line transfer;
     * [0] is lat.l1Hit, [nlev_-1] the coherent level's (cohHitLat_). */
    std::array<Cycles, kMaxCacheLevels> levelHitLat_ = {};
    Cycles cohHitLat_ = 0;
    std::vector<std::unique_ptr<Node>> nodes_;
    Directory dir_;
    LockTable locks_;
    std::vector<ProcRun> runs_;
    obs::Sampler *sampler_ = nullptr;   ///< valid during run()
    obs::Timeline *timeline_ = nullptr; ///< valid during run()
    FaultPlan *fault_ = nullptr;        ///< optional, not owned
    InvariantChecker *checker_ = nullptr; ///< optional, not owned
    /** Word-granular sharing tracker; null unless enableSharing(true). */
    std::unique_ptr<SharingTracker> sharing_;
    /** Fallback interleave policy owned by the machine, so homeOf always
     * takes the precomputed-table fast path even with no external
     * policy attached. */
    std::unique_ptr<PlacementPolicy> defaultPlacement_;
    PlacementPolicy *placement_ = nullptr; ///< active policy, never null
    /** Metalock word -> cycle its current hold began (timeline only). */
    std::unordered_map<Addr, Cycles> holdStart_;

    friend class ParEngine;
    friend class InvariantChecker;
};

} // namespace sim
} // namespace dss

#endif // DSS_SIM_MACHINE_HH
